// Package exokernel's benchmarks regenerate the paper's evaluation under
// `go test -bench`. Each BenchmarkTableN_* / BenchmarkFigN_* corresponds to
// a table or figure of the paper; the simulated result is reported via the
// "sim-us/op" metric (cycles on the simulated 25 MHz machine), while the
// standard ns/op column measures the simulator's host cost. For the packet
// filter comparison (Table 7) the host wall clock itself is the meaningful
// axis, exactly as the paper measured DPF in user space.
//
// The printable tables (paper value next to measured value) come from
// `go run ./cmd/aegisbench`.
package exokernel

import (
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/bench"
	"exokernel/internal/dpf"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/mpf"
	"exokernel/internal/pathfinder"
	"exokernel/internal/pkt"
	"exokernel/internal/stride"
	"exokernel/internal/ultrix"
)

// simPerOp measures fn b.N times and reports mean simulated microseconds.
func simPerOp(b *testing.B, m *hw.Machine, fn func()) {
	b.Helper()
	b.ResetTimer()
	start := m.Clock.Cycles()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.ReportMetric(m.Micros(m.Clock.Cycles()-start)/float64(b.N), "sim-us/op")
}

func newAegis() (*hw.Machine, *aegis.Kernel) {
	m := hw.NewMachine(hw.DEC5000)
	return m, aegis.New(m)
}

func newUltrix() (*hw.Machine, *ultrix.Kernel) {
	m := hw.NewMachine(hw.DEC5000)
	return m, ultrix.New(m)
}

// --- Table 2: null procedure and system call ---------------------------

func BenchmarkTable2_AegisNullSyscall(b *testing.B) {
	m, k := newAegis()
	env, err := k.NewEnv(nil)
	if err != nil {
		b.Fatal(err)
	}
	env.NativeExc = func(k *aegis.Kernel, t aegis.TrapInfo) {}
	simPerOp(b, m, func() {
		m.CPU.SetReg(hw.RegV0, aegis.SysNull)
		m.RaiseException(hw.ExcSyscall, 0, 0)
	})
}

func BenchmarkTable2_UltrixGetpid(b *testing.B) {
	m, k := newUltrix()
	p := k.NewProc(nil)
	simPerOp(b, m, func() { k.Getpid(p) })
}

// --- Table 3: primitive operations --------------------------------------

func BenchmarkTable3_YieldPair(b *testing.B) {
	m, k := newAegis()
	a, _ := k.NewEnv(nil)
	bb, _ := k.NewEnv(nil)
	simPerOp(b, m, func() {
		if k.CurEnv() == a {
			k.Yield(bb.ID)
		} else {
			k.Yield(a.ID)
		}
	})
}

func BenchmarkTable3_AllocDeallocPage(b *testing.B) {
	m, k := newAegis()
	env, _ := k.NewEnv(nil)
	simPerOp(b, m, func() {
		f, g, err := k.AllocPage(env, aegis.AnyFrame)
		if err != nil {
			b.Fatal(err)
		}
		if err := k.DeallocPage(f, g); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkTable3_InstallMapping(b *testing.B) {
	m, k := newAegis()
	env, _ := k.NewEnv(nil)
	f, g, err := k.AllocPage(env, aegis.AnyFrame)
	if err != nil {
		b.Fatal(err)
	}
	simPerOp(b, m, func() {
		if err := k.InstallMapping(env, 0x4000_0000, f, hw.PermWrite, g); err != nil {
			b.Fatal(err)
		}
	})
}

// --- Table 4/5: exception dispatch --------------------------------------

func BenchmarkTable4_AegisExceptionRoundTrip(b *testing.B) {
	m, k := newAegis()
	env, _ := k.NewEnv(nil)
	env.NativeExc = func(k *aegis.Kernel, t aegis.TrapInfo) {
		k.ReturnFromException(env, aegis.ResumeSkip)
	}
	simPerOp(b, m, func() { m.RaiseException(hw.ExcOverflow, 0, 0) })
}

func BenchmarkTable4_UltrixSignalRoundTrip(b *testing.B) {
	m, k := newUltrix()
	p := k.NewProc(nil)
	p.NativeSig = func(k *ultrix.Kernel, p *ultrix.Proc, c hw.Exc, va uint32) ultrix.SigAction {
		return ultrix.SigSkip
	}
	simPerOp(b, m, func() { m.RaiseException(hw.ExcOverflow, 0, 0) })
}

func BenchmarkTable5_AegisProtTrap(b *testing.B) {
	m, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x5000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		b.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		b.Fatal(err)
	}
	os.OnFault = func(o *exos.LibOS, fva uint32, w bool) bool {
		return o.Unprotect(fva&^(hw.PageSize-1)) == nil
	}
	simPerOp(b, m, func() {
		if err := os.Protect(va); err != nil {
			b.Fatal(err)
		}
		if err := os.TouchWrite(va); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkTable5_UltrixProtTrap(b *testing.B) {
	m, k := newUltrix()
	p := k.NewProc(nil)
	const va = 0x5000_0000
	if err := k.MapPage(p, va, true); err != nil {
		b.Fatal(err)
	}
	if err := k.TouchWrite(p, va); err != nil {
		b.Fatal(err)
	}
	p.NativeSig = func(k *ultrix.Kernel, pr *ultrix.Proc, c hw.Exc, fva uint32) ultrix.SigAction {
		if err := k.Mprotect(pr, []uint32{fva &^ (hw.PageSize - 1)}, true); err != nil {
			return ultrix.SigKill
		}
		return ultrix.SigRetry
	}
	simPerOp(b, m, func() {
		if err := k.Mprotect(p, []uint32{va}, false); err != nil {
			b.Fatal(err)
		}
		if err := k.TouchWrite(p, va); err != nil {
			b.Fatal(err)
		}
	})
}

// --- Table 6: protected control transfer --------------------------------

func BenchmarkTable6_ProtectedControlTransfer(b *testing.B) {
	m, k := newAegis()
	a, _ := k.NewEnv(nil)
	srv, _ := k.NewEnv(nil)
	srv.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {
		if err := k.ProtCall(a.ID, false); err != nil {
			b.Fatal(err)
		}
	}
	a.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {}
	simPerOp(b, m, func() {
		if err := k.ProtCall(srv.ID, false); err != nil {
			b.Fatal(err)
		}
	})
}

// --- Table 7: packet filters (host wall clock, like the paper) -----------

func table7Workload(b *testing.B) ([]pkt.Flow, []byte) {
	b.Helper()
	flows := make([]pkt.Flow, 10)
	for i := range flows {
		flows[i] = pkt.Flow{
			Proto: pkt.ProtoTCP,
			SrcIP: pkt.IP(18, 26, 0, byte(10+i)), DstIP: pkt.IP(18, 26, 0, 1),
			SrcPort: uint16(2000 + i), DstPort: uint16(4000 + i),
		}
	}
	return flows, pkt.Build(pkt.Addr{2}, pkt.Addr{1}, flows[9], []byte("payload"))
}

func BenchmarkTable7_DPF(b *testing.B) {
	flows, frame := table7Workload(b)
	e := dpf.NewEngine()
	for _, f := range flows {
		if _, err := e.Insert(dpf.FlowFilter(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Classify(frame); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTable7_MPF(b *testing.B) {
	flows, frame := table7Workload(b)
	e := mpf.NewEngine()
	for _, f := range flows {
		if _, err := e.Insert(mpf.FlowProgram(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Classify(frame); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTable7_PATHFINDER(b *testing.B) {
	flows, frame := table7Workload(b)
	e := pathfinder.NewEngine()
	for _, f := range flows {
		if _, err := e.Insert(pathfinder.FlowPattern(f)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.Classify(frame); !ok {
			b.Fatal("miss")
		}
	}
}

// --- Table 8 / 12: IPC ----------------------------------------------------

func BenchmarkTable8_ExOSPipe(b *testing.B) {
	_, k := newAegis()
	a, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	bb, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	pa, pb, err := exos.NewPipe(a, bb)
	if err != nil {
		b.Fatal(err)
	}
	simPerOp(b, k.M, func() {
		pa.Write(1)
		pb.Read()
	})
}

func BenchmarkTable8_UltrixPipe(b *testing.B) {
	m, k := newUltrix()
	p1 := k.NewProc(nil)
	p2 := k.NewProc(nil)
	pipe := k.NewPipe()
	simPerOp(b, m, func() {
		pipe.WriteWord(p1, 1)
		pipe.ReadWord(p2)
	})
}

func BenchmarkTable8_ExOSShm(b *testing.B) {
	_, k := newAegis()
	a, _ := exos.Boot(k)
	bb, _ := exos.Boot(k)
	sa, sb, err := exos.NewShm(a, bb)
	if err != nil {
		b.Fatal(err)
	}
	i := uint32(0)
	simPerOp(b, k.M, func() {
		i++
		sa.Store(i)
		sb.AwaitChange(i - 1)
	})
}

func BenchmarkTable8_LRPC(b *testing.B) {
	benchRPC(b, false)
}

func BenchmarkTable12_TLRPC(b *testing.B) {
	benchRPC(b, true)
}

func benchRPC(b *testing.B, trusted bool) {
	b.Helper()
	_, k := newAegis()
	sOS, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	cOS, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	srv := exos.NewServer(sOS)
	srv.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{args[0] + 1, 0} })
	cli := exos.NewClient(cOS, srv, trusted)
	simPerOp(b, k.M, func() {
		if _, err := cli.Call(1, [4]uint32{1}); err != nil {
			b.Fatal(err)
		}
	})
}

// --- Table 9 / 10: virtual memory ----------------------------------------

func BenchmarkTable9_MatmulBothSystems(b *testing.B) {
	// One full Table 9 run (both kernels) per iteration, small matrix.
	old := bench.Table9MatrixN
	bench.Table9MatrixN = 48
	defer func() { bench.Table9MatrixN = old }()
	for i := 0; i < b.N; i++ {
		bench.Table9()
	}
}

func BenchmarkTable10_ExOSDirtyQuery(b *testing.B) {
	_, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x6000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		b.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		b.Fatal(err)
	}
	simPerOp(b, k.M, func() {
		if !os.IsDirty(va) {
			b.Fatal("not dirty")
		}
	})
}

func BenchmarkTable10_ExOSProtUnprot(b *testing.B) {
	_, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x6000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		b.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		b.Fatal(err)
	}
	simPerOp(b, k.M, func() {
		if err := os.Protect(va); err != nil {
			b.Fatal(err)
		}
		if err := os.Unprotect(va); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkTable10_UltrixMprotect(b *testing.B) {
	m, k := newUltrix()
	p := k.NewProc(nil)
	const va = 0x6000_0000
	if err := k.MapPage(p, va, true); err != nil {
		b.Fatal(err)
	}
	vas := []uint32{va}
	simPerOp(b, m, func() {
		if err := k.Mprotect(p, vas, false); err != nil {
			b.Fatal(err)
		}
		if err := k.Mprotect(p, vas, true); err != nil {
			b.Fatal(err)
		}
	})
}

// --- Table 11 / Figure 2: network round trips -----------------------------

func benchRoundTrip(b *testing.B, ash bool, spinners int) {
	seg := ether.NewSegment()
	ma, ka := newAegis()
	mb, kb := newAegis()
	seg.Attach(ma)
	seg.Attach(mb)
	ka.SetQuantum(6250)
	kb.SetQuantum(6250)
	netA := exos.NewNet(ka, pkt.Addr{0xA}, pkt.IP(10, 0, 0, 1))
	netB := exos.NewNet(kb, pkt.Addr{0xB}, pkt.IP(10, 0, 0, 2))
	osA, _ := exos.Boot(ka)
	osB, _ := exos.Boot(kb)
	sockA, err := netA.Bind(osA, 7)
	if err != nil {
		b.Fatal(err)
	}
	sockB, err := netB.Bind(osB, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < spinners; i++ {
		if _, err := exos.NewSpinner(kb); err != nil {
			b.Fatal(err)
		}
	}
	if ash {
		if err := sockB.AttachEchoASH(); err != nil {
			b.Fatal(err)
		}
	} else {
		osB.Env.NativeRun = func(k *aegis.Kernel) {
			for {
				data, flow, ok := sockB.TryRecv()
				if !ok {
					return
				}
				sockB.SendTo(pkt.Addr{0xA}, flow.SrcIP, flow.SrcPort, data)
			}
		}
	}
	payload := make([]byte, 18)
	b.ResetTimer()
	start := ma.Clock.Cycles()
	for i := 0; i < b.N; i++ {
		sockA.SendTo(pkt.Addr{0xB}, pkt.IP(10, 0, 0, 2), 7, payload)
		guard := 0
		for sockA.Pending() == 0 {
			if !kb.DispatchNative() && sockA.Pending() == 0 {
				b.Fatal("reply lost")
			}
			if guard++; guard > 1000000 {
				b.Fatal("no reply")
			}
		}
		sockA.TryRecv()
		seg.Sync()
	}
	b.ReportMetric(ma.Micros(ma.Clock.Cycles()-start)/float64(b.N), "sim-us/op")
	_ = mb
}

func BenchmarkTable11_ExOSEchoASH(b *testing.B) { benchRoundTrip(b, true, 0) }
func BenchmarkTable11_ExOSAppEcho(b *testing.B) { benchRoundTrip(b, false, 0) }
func BenchmarkFig2_ASH8Spinners(b *testing.B)   { benchRoundTrip(b, true, 8) }
func BenchmarkFig2_NoASH8Spinners(b *testing.B) { benchRoundTrip(b, false, 8) }

func BenchmarkTable11_UltrixSockets(b *testing.B) {
	seg := ether.NewSegment()
	ma, ka := newUltrix()
	mb, kb := newUltrix()
	seg.Attach(ma)
	seg.Attach(mb)
	pa := ka.NewProc(nil)
	sockA := ka.NewSocket(pa, pkt.Addr{0xA}, pkt.IP(10, 0, 0, 1), 7)
	pb := kb.NewProc(nil)
	sockB := kb.NewSocket(pb, pkt.Addr{0xB}, pkt.IP(10, 0, 0, 2), 7)
	pb.NativeRun = func(k *ultrix.Kernel) {
		for {
			data, flow, ok := sockB.TryRecv()
			if !ok {
				return
			}
			sockB.Sendto(pkt.Addr{0xA}, flow.SrcIP, flow.SrcPort, data)
		}
	}
	payload := make([]byte, 18)
	b.ResetTimer()
	start := ma.Clock.Cycles()
	for i := 0; i < b.N; i++ {
		sockA.Sendto(pkt.Addr{0xB}, pkt.IP(10, 0, 0, 2), 7, payload)
		guard := 0
		for {
			kb.RunRound()
			if _, _, ok := sockA.TryRecv(); ok {
				break
			}
			if guard++; guard > 1000000 {
				b.Fatal("no reply")
			}
		}
		seg.Sync()
	}
	b.ReportMetric(ma.Micros(ma.Clock.Cycles()-start)/float64(b.N), "sim-us/op")
	_ = mb
}

// --- Figure 3: stride scheduling -------------------------------------------

func BenchmarkFig3_StrideDispatch(b *testing.B) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetQuantum(1000)
	s, err := stride.New(k)
	if err != nil {
		b.Fatal(err)
	}
	for _, tickets := range []uint64{3, 2, 1} {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Add(w.ID, tickets); err != nil {
			b.Fatal(err)
		}
	}
	k.SetSliceVector([]aegis.EnvID{s.Env.ID})
	simPerOp(b, m, func() {
		if !k.DispatchNative() {
			b.Fatal("starved")
		}
	})
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblation_STLBOn(b *testing.B)  { benchSTLB(b, true) }
func BenchmarkAblation_STLBOff(b *testing.B) { benchSTLB(b, false) }

func benchSTLB(b *testing.B, enabled bool) {
	b.Helper()
	_, k := newAegis()
	k.STLBEnabled = enabled
	os, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	const pages = 128
	vas := make([]uint32, pages)
	for i := range vas {
		vas[i] = 0x4000_0000 + uint32(i)*hw.PageSize
		if _, err := os.AllocAndMap(vas[i]); err != nil {
			b.Fatal(err)
		}
		if err := os.Touch(vas[i]); err != nil {
			b.Fatal(err)
		}
	}
	i := 0
	simPerOp(b, k.M, func() {
		if err := os.Touch(vas[i%pages]); err != nil {
			b.Fatal(err)
		}
		i++
	})
}

func BenchmarkAblation_DPFUnmerged(b *testing.B) {
	flows, frame := table7Workload(b)
	var singles []*dpf.Engine
	for _, f := range flows {
		e := dpf.NewEngine()
		if _, err := e.Insert(dpf.FlowFilter(f)); err != nil {
			b.Fatal(err)
		}
		singles = append(singles, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := false
		for _, e := range singles {
			if _, _, ok := e.Classify(frame); ok {
				hit = true
				break
			}
		}
		if !hit {
			b.Fatal("miss")
		}
	}
}

// --- File system (extended substrate) ----------------------------------------

func benchFS(b *testing.B, cacheFrames int) (*hw.Machine, *exos.FS, exos.Inum) {
	b.Helper()
	m, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := exos.NewAegisDev(os, 512)
	if err != nil {
		b.Fatal(err)
	}
	cache, err := exos.NewFSCache(os, dev, cacheFrames, exos.NewLRU())
	if err != nil {
		b.Fatal(err)
	}
	fs, err := exos.Format(dev, cache, 16)
	if err != nil {
		b.Fatal(err)
	}
	inum, err := fs.Create("bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteAt(inum, 0, make([]byte, 64*hw.PageSize)); err != nil {
		b.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
	return m, fs, inum
}

// BenchmarkFS_CachedRead: library-FS read that hits the application's
// buffer cache — no kernel crossing at all.
func BenchmarkFS_CachedRead(b *testing.B) {
	m, fs, inum := benchFS(b, 80) // whole file fits
	buf := make([]byte, hw.PageSize)
	fs.ReadAt(inum, 0, buf) // warm
	simPerOp(b, m, func() {
		if _, err := fs.ReadAt(inum, 0, buf); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFS_ColdRead: every read misses a 4-frame cache and goes to the
// simulated disk (seek + transfer dominate).
func BenchmarkFS_ColdRead(b *testing.B) {
	m, fs, inum := benchFS(b, 4)
	buf := make([]byte, hw.PageSize)
	i := uint32(0)
	simPerOp(b, m, func() {
		if _, err := fs.ReadAt(inum, (i%64)*hw.PageSize, buf); err != nil {
			b.Fatal(err)
		}
		i += 16 // stride defeats the tiny cache
	})
}

// BenchmarkFS_UltrixRead: the same cached read through the monolithic FS:
// crossing plus the extra kernel-buffer copy.
func BenchmarkFS_UltrixRead(b *testing.B) {
	m, k := newUltrix()
	p := k.NewProc(nil)
	kfs, err := k.NewKernelFS(0, 512, 80, 16)
	if err != nil {
		b.Fatal(err)
	}
	inum, err := kfs.Create(p, "bench")
	if err != nil {
		b.Fatal(err)
	}
	if err := kfs.Write(p, inum, 0, make([]byte, 8*hw.PageSize)); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, hw.PageSize)
	kfs.Read(p, inum, 0, buf) // warm
	simPerOp(b, m, func() {
		if _, err := kfs.Read(p, inum, 0, buf); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFork_COWBreak: one copy-on-write break (fault + page copy +
// remap) — the cost a library-level fork defers until first write.
func BenchmarkFork_COWBreak(b *testing.B) {
	m, k := newAegis()
	parent, err := exos.Boot(k)
	if err != nil {
		b.Fatal(err)
	}
	const va = 0x1000_0000
	if _, err := parent.AllocAndMap(va); err != nil {
		b.Fatal(err)
	}
	if err := parent.TouchWrite(va); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var simCycles uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		child, err := parent.Fork()
		if err != nil {
			b.Fatal(err)
		}
		child.Enter()
		b.StartTimer()
		c0 := m.Clock.Cycles()
		if err := child.TouchWrite(va); err != nil {
			b.Fatal(err)
		}
		simCycles += m.Clock.Cycles() - c0
		b.StopTimer()
		parent.Enter()
		k.DestroyEnv(child.Env) // reclaim the child's frames between runs
		b.StartTimer()
	}
	b.ReportMetric(m.Micros(simCycles)/float64(b.N), "sim-us/op")
}
