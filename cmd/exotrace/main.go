// Command exotrace runs a workload under the ktrace kernel flight
// recorder and writes the recording for offline analysis.
//
// Workloads are the aegisbench experiments (substring match, as in
// `aegisbench -only`) or the built-in `demo`, a small grand tour that
// exercises every event class: syscall-style primitives, TLB misses
// serviced by ExOS, context switches, packet classification and delivery,
// disk I/O, revocation, and environment destruction.
//
// Usage:
//
//	exotrace -list                       # list workloads
//	exotrace -o trace.json table3        # Chrome trace_event (Perfetto)
//	exotrace -format jsonl -o t.jsonl demo
//	exotrace -format text demo           # human-readable log to stdout
//	exotrace -in t.jsonl -format text    # re-render a recorded JSONL trace
//
// With -in, no workload runs: the JSONL trace is parsed back (a
// truncated final line — a writer that died mid-dump — is skipped with
// a stderr warning, never silently) and re-rendered in -format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/bench"
	"exokernel/internal/cliutil"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "chrome", "trace format: chrome, jsonl, or text")
	bufCap := flag.Int("buf", 1<<20, "flight-recorder capacity in events (oldest overwritten)")
	list := flag.Bool("list", false, "list workloads and exit")
	quiet := flag.Bool("q", false, "suppress the workload's own output")
	in := flag.String("in", "", "re-render this JSONL trace instead of running a workload")
	flag.Parse()

	if *list {
		fmt.Println("demo         built-in grand tour (every event class)")
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if (*in == "" && flag.NArg() != 1) || (*in != "" && flag.NArg() != 0) {
		fmt.Fprintln(os.Stderr, "usage: exotrace [-o file] [-format chrome|jsonl|text] <workload>")
		fmt.Fprintln(os.Stderr, "       exotrace -in trace.jsonl [-o file] [-format ...]")
		fmt.Fprintln(os.Stderr, "       exotrace -list")
		os.Exit(2)
	}
	if err := cliutil.CheckFormat("exotrace", *format, "chrome", "jsonl", "text"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *in != "" {
		if err := rerender(*in, *format, *out); err != nil {
			fmt.Fprintf(os.Stderr, "exotrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rec := ktrace.New(*bufCap)
	// Workload narration goes to stderr when the trace itself is written
	// to stdout, so `exotrace -format jsonl demo | jq` sees pure trace.
	narrate := io.Writer(os.Stdout)
	if *out == "" {
		narrate = os.Stderr
	}
	report := func(s string) {
		if !*quiet {
			fmt.Fprint(narrate, s)
		}
	}

	name := flag.Arg(0)
	if strings.EqualFold(name, "demo") {
		if err := demo(rec, report); err != nil {
			fmt.Fprintf(os.Stderr, "exotrace: demo: %v\n", err)
			os.Exit(1)
		}
	} else {
		bench.Tracer = rec
		needle := strings.ToLower(strings.ReplaceAll(name, " ", ""))
		ran := 0
		for _, e := range bench.All() {
			id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
			if !strings.Contains(id, needle) && !strings.Contains(strings.ToLower(e.Title), needle) {
				continue
			}
			report(e.Run().Format() + "\n")
			ran++
		}
		if ran == 0 {
			fmt.Fprintf(os.Stderr, "exotrace: no workload matches %q\n", name)
			os.Exit(1)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exotrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	events := rec.Events()
	var err error
	switch *format {
	case "chrome":
		err = ktrace.WriteChrome(w, events, hw.DEC5000.MHz)
	case "jsonl":
		err = ktrace.WriteJSONL(w, events)
	case "text":
		err = ktrace.WriteText(w, events)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "exotrace: writing trace: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "exotrace: wrote %d events to %s (%d recorded, %d overwritten)\n",
			rec.Len(), *out, rec.Total(), rec.Dropped())
	}
}

// rerender parses a recorded JSONL trace back and renders it in the
// requested format. A truncated final line (the writer died mid-dump) is
// skipped, and the loss is reported on stderr rather than silently
// dropped — at crash-analysis time a missing tail is itself a finding.
func rerender(in, format, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	events, truncated, err := ktrace.ParseJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if truncated > 0 {
		fmt.Fprintf(os.Stderr, "exotrace: warning: %s: skipped %d truncated tail line(s) (writer died mid-dump?)\n",
			in, truncated)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		file, err := os.Create(out)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	switch format {
	case "chrome":
		err = ktrace.WriteChrome(w, events, hw.DEC5000.MHz)
	case "jsonl":
		err = ktrace.WriteJSONL(w, events)
	case "text":
		err = ktrace.WriteText(w, events)
	}
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "exotrace: re-rendered %d events from %s to %s\n", len(events), in, out)
	}
	return nil
}

// oddByteFilter accepts frames whose first byte matches.
type oddByteFilter byte

func (f oddByteFilter) Match(frame []byte) (bool, uint64) {
	return len(frame) > 0 && frame[0] == byte(f), 4
}

// demo is the built-in grand tour: two ExOS environments doing memory,
// network, disk, scheduling, and revocation work, then a destroy.
func demo(rec *ktrace.Recorder, report func(string)) error {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetTracer(rec)

	a, err := exos.Boot(k)
	if err != nil {
		return err
	}
	b, err := exos.Boot(k)
	if err != nil {
		return err
	}

	// Memory: pages allocated and mapped by the application's own page
	// table; first touches take TLB-miss upcalls into ExOS.
	const base = 0x1000_0000
	for p := uint32(0); p < 4; p++ {
		if _, err := a.AllocAndMap(base + p*hw.PageSize); err != nil {
			return err
		}
		if err := a.TouchWrite(base + p*hw.PageSize); err != nil {
			return err
		}
	}

	// Scheduling: donate slices back and forth.
	for i := 0; i < 3; i++ {
		k.Yield(b.Env.ID)
		k.Yield(a.Env.ID)
	}

	// Network: a downloaded filter per environment, three deliveries and
	// one drop.
	if _, err := k.InstallFilter(a.Env, oddByteFilter(1)); err != nil {
		return err
	}
	if _, err := k.InstallFilter(b.Env, oddByteFilter(2)); err != nil {
		return err
	}
	m.NIC.Deliver(hw.Packet{Data: []byte{1, 10, 11}})
	m.NIC.Deliver(hw.Packet{Data: []byte{2, 20, 21}})
	m.NIC.Deliver(hw.Packet{Data: []byte{1, 12, 13}})
	m.NIC.Deliver(hw.Packet{Data: []byte{9, 0, 0}}) // no filter: dropped

	// Disk: an extent and one write+read through secure bindings.
	start, extCap, err := k.AllocExtent(b.Env, 8)
	if err != nil {
		return err
	}
	frame, frameCap, err := k.AllocPage(b.Env, aegis.AnyFrame)
	if err != nil {
		return err
	}
	if err := k.DiskWrite(start, 8, 0, extCap, frame, frameCap); err != nil {
		return err
	}
	if err := k.DiskRead(start, 8, 0, extCap, frame, frameCap); err != nil {
		return err
	}

	// Revocation: ask a to give a page back (its ExOS complies, releasing
	// the page through its own page table).
	for f := uint32(0); f < uint32(m.Phys.NumPages()); f++ {
		if k.FrameOwner(f) == a.Env.ID && f != a.Env.SaveArea>>hw.PageShift {
			if _, err := k.RevokePage(f); err != nil {
				return err
			}
			break
		}
	}

	// Introspection: the /proc-style reads applications tune themselves by.
	for _, path := range []string{"/proc/stat", "/proc/self/status", "/proc/2/status"} {
		s, err := a.ProcRead(path)
		if err != nil {
			return err
		}
		report(fmt.Sprintf("--- %s\n%s", path, s))
	}

	// Destruction: b's frames, extent, and endpoint are reclaimed.
	k.DestroyEnv(b.Env)
	report(fmt.Sprintf("--- destroyed env %d; %.1f simulated us elapsed\n",
		b.Env.ID, m.Micros(m.Clock.Cycles())))
	return nil
}
