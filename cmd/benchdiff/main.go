// Command benchdiff is the perf-regression gate: it compares two BENCH
// JSON files written by `aegisbench -format json` and fails if any
// measured time metric got slower than the threshold allows.
//
// Usage:
//
//	benchdiff old.json new.json      # gate new against old (default 5%)
//	benchdiff -threshold 10 a.json b.json
//	benchdiff -format json a.json b.json   # machine-readable report
//	benchdiff -validate file.json    # schema-check one file, no diff
//
// Only metrics with source "measured" and unit "us" are gated, on their
// min and p50 fields; quoted paper constants and ratio columns are never
// gated. Host wall-clock metrics (host/wall_ns) are reported on their
// best-of-trials field but never gate — they track the engines' host
// speed (e.g. the trace-JIT tier) across baseline regenerations. Exit
// status: 0 the gate passes, 1 a regression exceeded the threshold, 2
// usage error or a file that fails schema validation.
//
// With -prof the inputs are PROF JSON cycle profiles (written by
// `aegisbench -prof` or `exoprof -format json`) and the output is the
// regression root-causer: the top per-site cycle deltas, guest and
// kernel-class attribution separated, deterministically ranked. The
// profile diff is informational (exact profiles move on any intended
// change), so it always exits 0 on valid inputs:
//
//	benchdiff -prof old.json new.json        # top cycle-delta sites
//	benchdiff -prof -top 40 old.json new.json
//	benchdiff -prof -validate file.json      # schema-check a profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"exokernel/internal/bench"
	"exokernel/internal/cliutil"
	"exokernel/internal/prof"
)

func load(path string) (*bench.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f bench.File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := bench.Validate(&f); err != nil {
		return nil, fmt.Errorf("%s: invalid BENCH JSON: %v", path, err)
	}
	return &f, nil
}

func loadProf(path string) (*prof.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pf, err := prof.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: invalid PROF JSON: %v", path, err)
	}
	return pf, nil
}

func main() {
	threshold := flag.Float64("threshold", 5, "regression threshold in percent, applied to min and p50")
	validate := flag.Bool("validate", false, "validate a single file against the schema and exit")
	profMode := flag.Bool("prof", false, "inputs are PROF JSON cycle profiles: print top cycle-delta sites (informational, always exits 0 on valid files)")
	top := flag.Int("top", 20, "with -prof, how many delta sites to print")
	format := flag.String("format", "text", "gate-report output format: text or json")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckFormat("benchdiff", *format, "text", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *threshold < 0 {
		fail(fmt.Errorf("-threshold %g, want >= 0", *threshold))
	}

	if *profMode {
		if *validate {
			if flag.NArg() != 1 {
				fail(fmt.Errorf("-prof -validate takes exactly one file, got %d", flag.NArg()))
			}
			pf, err := loadProf(flag.Arg(0))
			if err != nil {
				fail(err)
			}
			sites := 0
			for _, m := range pf.Machines {
				for _, e := range m.Envs {
					sites += len(e.Sites)
				}
			}
			fmt.Printf("benchdiff: %s: valid PROF (%d machines, %d sites, %d hot blocks)\n",
				flag.Arg(0), len(pf.Machines), sites, len(pf.HotBlocks))
			return
		}
		if flag.NArg() != 2 {
			fail(fmt.Errorf("want: benchdiff -prof [-top n] old.json new.json"))
		}
		oldP, err := loadProf(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		newP, err := loadProf(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		prof.RenderDiff(os.Stdout, oldP, newP, *top)
		return
	}

	if *validate {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("-validate takes exactly one file, got %d", flag.NArg()))
		}
		f, err := load(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		metrics := 0
		for _, e := range f.Experiments {
			metrics += len(e.Metrics)
		}
		fmt.Printf("benchdiff: %s: valid (%d experiments, %d metrics, %d trials)\n",
			flag.Arg(0), len(f.Experiments), metrics, f.Trials)
		return
	}

	if flag.NArg() != 2 {
		fail(fmt.Errorf("want: benchdiff [-threshold pct] old.json new.json"))
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	r := bench.Diff(oldF, newF, *threshold/100)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fail(err)
		}
	} else {
		fmt.Print(r.Render())
	}
	if !r.OK() {
		os.Exit(1)
	}
}
