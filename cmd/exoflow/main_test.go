package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExoflowGolden pins the text rendering of the default scenario:
// every number in the trees, critical paths, and breakdowns derives from
// simulated state and seeded span identities, so the output is
// byte-stable. `go test ./cmd/exoflow -run Golden -update` rewrites the
// golden after an intentional change.
func TestExoflowGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 1, 3, "text"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	path := filepath.Join("testdata", "flow_seed1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exoflow output drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
	// The scenario's essentials are present: a cross-machine critical
	// path with wire time, an ASH hop, the DSM transfer, both swap pager
	// spans, and no broken trees.
	for _, needle := range []string{"wire+queue", "ash [B", "dsm-xfer", "swap-out", "swap-in", "orphans=0", "critical path ("} {
		if !strings.Contains(got, needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

// TestExoflowSameSeedByteIdentical is the determinism acceptance pin:
// two runs of one seed render identical bytes in every format.
func TestExoflowSameSeedByteIdentical(t *testing.T) {
	for _, format := range []string{"text", "json", "perfetto"} {
		var a, b bytes.Buffer
		if err := run(&a, 7, 2, format); err != nil {
			t.Fatal(err)
		}
		if err := run(&b, 7, 2, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("format %s: same seed rendered different bytes", format)
		}
	}
}

// TestExoflowJSONParses: every line of -format json is a standalone JSON
// document with the breakdown fields.
func TestExoflowJSONParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 1, 2, "json"); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	docs := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d not JSON: %v", docs+1, err)
		}
		for _, k := range []string{"trace", "total_cycles", "handler_cycles", "wire_cycles", "tree"} {
			if _, ok := doc[k]; !ok {
				t.Fatalf("trace document missing %q: %v", k, doc)
			}
		}
		docs++
	}
	if docs != 5 { // 2 rpc requests + echo + dsm + swap
		t.Errorf("json documents = %d, want 5", docs)
	}
}
