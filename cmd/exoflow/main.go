// Command exoflow renders causal request traces: the span trees the
// fleet's machines recorded for each request, the critical path through
// them, and where the cycles went (handler vs. queue vs. wire).
//
// It drives the built-in flowdemo scenario — two machines, a client on A,
// a front end and PCT backend on B, plus an ASH echo endpoint — and
// renders every assembled trace. The run is deterministic: the same seed
// always produces byte-identical output (pinned by the golden test).
//
// Usage:
//
//	exoflow                          # text trees + critical paths
//	exoflow -seed 7 -requests 5      # more round trips, different IDs
//	exoflow -format json             # one JSON document per trace
//	exoflow -format perfetto -o t.json   # Chrome/Perfetto with flow arrows
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exokernel/internal/cliutil"
	"exokernel/internal/fleet"
	"exokernel/internal/flowdemo"
)

func main() {
	seed := flag.Uint64("seed", 1, "scenario seed (span identities + payload bytes)")
	requests := flag.Int("requests", 3, "client→front→backend round trips before the ASH echo")
	format := flag.String("format", "text", "output format: text, json, or perfetto")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := cliutil.CheckFormat("exoflow", *format, "text", "json", "perfetto"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exoflow: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(w, *seed, *requests, *format); err != nil {
		fmt.Fprintf(os.Stderr, "exoflow: %v\n", err)
		os.Exit(1)
	}
}

// run executes the scenario and renders its traces in the given format.
func run(w io.Writer, seed uint64, requests int, format string) error {
	res, err := flowdemo.Run(flowdemo.Config{Seed: seed, Requests: requests})
	if err != nil {
		return err
	}
	if format == "perfetto" {
		return res.Bus.WriteChromeSpans(w)
	}
	traces := fleet.AssembleTraces(res.Bus.MergedSpans())
	for i, tr := range traces {
		switch format {
		case "json":
			if err := fleet.WriteTraceJSON(w, tr); err != nil {
				return err
			}
		default:
			if i > 0 {
				fmt.Fprintln(w)
			}
			fleet.RenderTrace(w, tr)
		}
	}
	return nil
}
