// Command soak is the continuous soak gate: a long-horizon chaos driver
// that runs the two-machine fault schedule round after round under
// rotating seeds, every round through the full invariant gate, and
// writes a versioned SOAK JSON trending invariant-check latency, fault
// events per second, and host wall time per 10⁵ events (see
// internal/chaos/soak.go for the schema). `make soak` runs the 10⁶-event
// configuration; scripts/check.sh runs a 10⁴-event smoke; the committed
// SOAK_baseline.json is the first trend to diff against.
//
// Usage:
//
//	soak                                  # default: 4 rounds x 2500 events
//	soak -rounds 100 -events 10000        # the `make soak` 10⁶-event run
//	soak -seed 1 -o SOAK.json             # write the JSON to a file
//	soak -q                               # no per-round progress on stderr
//
// Exit status is nonzero if any round breaks a kernel invariant or a
// workload check; the failing seed is in the error, and rerunning
// `chaos -seed N` reproduces that round fault for fault.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exokernel/internal/chaos"
)

func main() {
	seed := flag.Uint64("seed", 1, "first round's seed; round i uses seed+i")
	rounds := flag.Int("rounds", 4, "number of chaos rounds")
	events := flag.Uint64("events", 2500, "fault-event target per round")
	out := flag.String("o", "", "write SOAK JSON to this file (default stdout)")
	quiet := flag.Bool("q", false, "suppress per-round progress on stderr")
	flag.Parse()

	cfg := chaos.SoakConfig{SeedStart: *seed, Rounds: *rounds, EventsPerRound: *events}
	if !*quiet {
		cfg.Progress = func(w chaos.SoakWindow) {
			fmt.Fprintf(os.Stderr, "soak: round %d/%d seed=%d: %d events, %d steps, %.0f ev/sec, invariant p99=%dns\n",
				w.Round+1, *rounds, w.Seed, w.FaultEvents, w.Steps, w.EventsPerSec, w.InvariantNS.P99)
		}
	}
	rep, err := chaos.Soak(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", cerr)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprint(os.Stderr, rep.TrendTable())
	}
}
