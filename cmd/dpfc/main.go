// Command dpfc demonstrates the dynamic packet filter engine: it installs
// the Table 7 workload (ten TCP/IP filters), shows the declarative filters,
// classifies sample packets through the three engines (DPF, MPF,
// PATHFINDER), and prints the per-engine cost so the effect of merging and
// compilation is visible.
//
// Usage:
//
//	dpfc [-flows n] [-trials n]
package main

import (
	"flag"
	"fmt"
	"time"

	"exokernel/internal/dpf"
	"exokernel/internal/mpf"
	"exokernel/internal/pathfinder"
	"exokernel/internal/pkt"
)

func main() {
	nflows := flag.Int("flows", 10, "number of installed TCP/IP filters")
	trials := flag.Int("trials", 1_000_000, "classification trials for wall-clock timing")
	flag.Parse()

	flows := make([]pkt.Flow, *nflows)
	for i := range flows {
		flows[i] = pkt.Flow{
			Proto: pkt.ProtoTCP,
			SrcIP: pkt.IP(18, 26, 0, byte(10+i)), DstIP: pkt.IP(18, 26, 0, 1),
			SrcPort: uint16(2000 + i), DstPort: uint16(4000 + i),
		}
	}

	fmt.Printf("filter for flow 0 (declarative atoms, as downloaded into the kernel):\n")
	for _, a := range dpf.FlowFilter(flows[0]) {
		fmt.Printf("  match %d byte(s) at offset %2d against %#x\n", a.Size, a.Off, a.Val)
	}

	de := dpf.NewEngine()
	me := mpf.NewEngine()
	pe := pathfinder.NewEngine()
	for _, f := range flows {
		if _, err := de.Insert(dpf.FlowFilter(f)); err != nil {
			panic(err)
		}
		if _, err := me.Insert(mpf.FlowProgram(f)); err != nil {
			panic(err)
		}
		if _, err := pe.Insert(pathfinder.FlowPattern(f)); err != nil {
			panic(err)
		}
	}
	frame := pkt.Build(pkt.Addr{2}, pkt.Addr{1}, flows[len(flows)-1], []byte("payload"))
	fmt.Printf("\n%d filters installed; classifying a packet for the last one\n\n", *nflows)

	type engine struct {
		name     string
		classify func([]byte) (dpf.FilterID, uint64, bool)
	}
	engines := []engine{
		{"DPF (compiled+merged)", de.Classify},
		{"PATHFINDER (interp+merged)", pe.Classify},
		{"MPF (interp, per-filter)", me.Classify},
	}
	fmt.Printf("  %-28s %14s %16s %12s\n", "engine", "sim cycles", "sim us @25MHz", "host ns")
	for _, e := range engines {
		id, cycles, ok := e.classify(frame)
		if !ok || id != dpf.FilterID(*nflows-1) {
			fmt.Printf("  %-28s MISCLASSIFIED (id=%d ok=%v)\n", e.name, id, ok)
			continue
		}
		start := time.Now()
		for i := 0; i < *trials; i++ {
			e.classify(frame)
		}
		host := float64(time.Since(start).Nanoseconds()) / float64(*trials)
		fmt.Printf("  %-28s %14d %16.2f %12.1f\n", e.name, cycles, float64(cycles)/25, host)
	}
	fmt.Println("\npaper (DEC5000/200): MPF 35.0 us, PATHFINDER 19.0 us, DPF 1.35 us")
}
