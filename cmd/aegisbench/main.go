// Command aegisbench regenerates every table and figure of the paper's
// evaluation against the simulated machines and prints them with the
// paper's numbers alongside.
//
// Usage:
//
//	aegisbench              # run everything
//	aegisbench -only table7 # run a subset (substring match, case-folded)
//	aegisbench -list        # list experiments
//	aegisbench -n 64        # smaller Table 9 matrix for quick runs
//	aegisbench -only table3 -trace out.json
//	                        # run under the kernel flight recorder and
//	                        # write a Chrome trace_event file (open in
//	                        # chrome://tracing or Perfetto)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"exokernel/internal/bench"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

func main() {
	only := flag.String("only", "", "run only experiments whose ID or title contains this substring")
	list := flag.Bool("list", false, "list experiments and exit")
	matN := flag.Int("n", bench.Table9MatrixN, "matrix dimension for Table 9")
	format := flag.String("format", "text", "output format: text or csv")
	traceFile := flag.String("trace", "", "write a Chrome trace_event recording of the run to this file")
	traceBuf := flag.Int("tracebuf", 1<<20, "flight-recorder capacity in events (oldest overwritten)")
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "aegisbench: unknown -format %q (want text or csv)\n", *format)
		flag.Usage()
		os.Exit(2)
	}

	var rec *ktrace.Recorder
	if *traceFile != "" {
		rec = ktrace.New(*traceBuf)
		bench.Tracer = rec
	}

	bench.Table9MatrixN = *matN
	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	needle := strings.ToLower(strings.ReplaceAll(*only, " ", ""))
	ran := 0
	for _, e := range exps {
		id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
		title := strings.ToLower(e.Title)
		if needle != "" && !strings.Contains(id, needle) && !strings.Contains(title, needle) {
			continue
		}
		tb := e.Run()
		if *format == "csv" {
			fmt.Println(tb.CSV())
		} else {
			fmt.Println(tb.Format())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "aegisbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}
	if rec != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
		err = ktrace.WriteChrome(f, rec.Events(), hw.DEC5000.MHz)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "aegisbench: wrote %d events to %s (%d recorded, %d overwritten)\n",
			rec.Len(), *traceFile, rec.Total(), rec.Dropped())
	}
}
