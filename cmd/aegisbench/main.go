// Command aegisbench regenerates every table and figure of the paper's
// evaluation against the simulated machines and prints them with the
// paper's numbers alongside.
//
// Usage:
//
//	aegisbench              # run everything
//	aegisbench -only table7 # run a subset (substring match, case-folded)
//	aegisbench -list        # list experiments
//	aegisbench -n 64        # smaller Table 9 matrix for quick runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"exokernel/internal/bench"
)

func main() {
	only := flag.String("only", "", "run only experiments whose ID or title contains this substring")
	list := flag.Bool("list", false, "list experiments and exit")
	matN := flag.Int("n", bench.Table9MatrixN, "matrix dimension for Table 9")
	format := flag.String("format", "text", "output format: text or csv")
	flag.Parse()

	bench.Table9MatrixN = *matN
	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	needle := strings.ToLower(strings.ReplaceAll(*only, " ", ""))
	ran := 0
	for _, e := range exps {
		id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
		title := strings.ToLower(e.Title)
		if needle != "" && !strings.Contains(id, needle) && !strings.Contains(title, needle) {
			continue
		}
		tb := e.Run()
		if *format == "csv" {
			fmt.Println(tb.CSV())
		} else {
			fmt.Println(tb.Format())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "aegisbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}
}
