// Command aegisbench regenerates every table and figure of the paper's
// evaluation against the simulated machines and prints them with the
// paper's numbers alongside.
//
// Usage:
//
//	aegisbench              # run everything
//	aegisbench -only table7 # run a subset (substring match, case-folded)
//	aegisbench -list        # list experiments
//	aegisbench -n 64        # smaller Table 9 matrix for quick runs
//	aegisbench -format json -trials 3 > BENCH.json
//	                        # machine-readable BENCH JSON: every numeric
//	                        # table cell becomes a metric with its trial
//	                        # distribution (see internal/bench/json.go for
//	                        # the schema; cmd/benchdiff compares two files)
//	aegisbench -only table3 -trace out.json
//	                        # run under the kernel flight recorder and
//	                        # write a Chrome trace_event file (open in
//	                        # chrome://tracing or Perfetto)
//	aegisbench -only table9 -cpuprofile cpu.pprof
//	                        # profile the host-side cost of the run
//	                        # (go tool pprof cpu.pprof); `make profile`
//	                        # wraps this
//
// -trials repeats each experiment (default 1) and applies to every
// format; text and csv print each repetition, json aggregates them into
// per-metric distributions. -only composes with all of them: the JSON
// file contains exactly the selected experiments, so a baseline written
// with -only must be diffed against files written with the same
// selection (benchdiff reports disjoint metrics as churn, not failure).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/bench"
	"exokernel/internal/cliutil"
	"exokernel/internal/fleet"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/prof"
)

func main() {
	only := flag.String("only", "", "run only experiments whose ID or title contains this substring")
	list := flag.Bool("list", false, "list experiments and exit")
	matN := flag.Int("n", bench.Table9MatrixN, "matrix dimension for Table 9")
	format := flag.String("format", "text", "output format: text, csv, or json")
	trials := flag.Int("trials", 1, "repetitions per experiment")
	traceFile := flag.String("trace", "", "write a Chrome trace_event recording of the run to this file")
	traceBuf := flag.Int("tracebuf", 1<<20, "flight-recorder capacity in events (oldest overwritten)")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU profile of the run to this file")
	profFile := flag.String("prof", "", "write a simulated-cycle PROF JSON profile of the run to this file (cmd/exoprof renders it)")
	top := flag.Bool("top", false, "after the run, print an exotop-style fleet view of every booted kernel to stderr")
	flag.Parse()

	if err := cliutil.CheckFormat("aegisbench", *format, "text", "csv", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if *trials < 1 {
		fmt.Fprintf(os.Stderr, "aegisbench: -trials %d, want >= 1\n", *trials)
		os.Exit(2)
	}

	var rec *ktrace.Recorder
	if *traceFile != "" {
		rec = ktrace.New(*traceBuf)
		bench.Tracer = rec
	}
	var bus *fleet.Bus
	if *top {
		bus = fleet.NewBus()
		bench.Bus = bus
	}
	var profs []*prof.Profiler
	if *profFile != "" {
		bench.Prof = func(name string) *prof.Profiler {
			p := prof.New(name, aegis.OpNames())
			profs = append(profs, p)
			return p
		}
	}

	bench.Table9MatrixN = *matN
	exps := bench.All()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	needle := strings.ToLower(strings.ReplaceAll(*only, " ", ""))
	var selected []bench.Experiment
	for _, e := range exps {
		id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
		title := strings.ToLower(e.Title)
		if needle != "" && !strings.Contains(id, needle) && !strings.Contains(title, needle) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "aegisbench: no experiment matches %q\n", *only)
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *format == "json" {
		platform := fmt.Sprintf("%s (simulated, %g MHz)", hw.DEC5000.Name, hw.DEC5000.MHz)
		f := bench.CollectJSON(selected, *trials, platform)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f); err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
	} else {
		for _, e := range selected {
			for trial := 0; trial < *trials; trial++ {
				tb := e.Run()
				if *format == "csv" {
					fmt.Println(tb.CSV())
				} else {
					fmt.Println(tb.Format())
				}
			}
		}
	}

	if rec != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
		err = ktrace.WriteChrome(f, rec.Events(), hw.DEC5000.MHz)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "aegisbench: wrote %d events to %s (%d recorded, %d overwritten)\n",
			rec.Len(), *traceFile, rec.Total(), rec.Dropped())
	}
	if bus != nil {
		fmt.Fprint(os.Stderr, fleet.RenderTop(bus.Snapshot(), nil, 12))
	}
	if *profFile != "" {
		var machines []prof.Profile
		for _, p := range profs {
			machines = append(machines, p.Snapshot())
		}
		var ids []string
		for _, e := range selected {
			ids = append(ids, e.ID)
		}
		platform := fmt.Sprintf("%s (simulated, %g MHz)", hw.DEC5000.Name, hw.DEC5000.MHz)
		pf := prof.Collect(platform, ids, machines, 50)
		f, err := os.Create(*profFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: %v\n", err)
			os.Exit(1)
		}
		err = pf.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "aegisbench: writing profile: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "aegisbench: wrote profile of %d machines to %s\n", len(machines), *profFile)
	}
}
