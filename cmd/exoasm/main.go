// Command exoasm assembles, disassembles, verifies, and runs programs for
// the simulated ISA.
//
// Usage:
//
//	exoasm [-run] [-verify ash|handler] [-steps n] file.s
//	exoasm -                      # read from stdin
//
// -run executes the program on a bare machine (flat identity mapping, no
// kernel) and dumps the registers at halt; -verify applies the downloaded-
// code sandbox policy and reports the static step bound.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/sandbox"
	"exokernel/internal/vm"
)

func main() {
	run := flag.Bool("run", false, "execute the program on a bare machine")
	verify := flag.String("verify", "", "verify under a sandbox policy: ash or handler")
	steps := flag.Uint64("steps", 1_000_000, "step budget for -run")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	code, labels, err := asm.AssembleWithLabels(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %d instructions, %d labels\n", len(code), len(labels))
	fmt.Print(isa.Disassemble(code))

	if *verify != "" {
		policy := sandbox.PolicyASH
		if *verify == "handler" {
			policy = sandbox.PolicyHandler
		}
		res, err := sandbox.Verify(code, policy)
		if err != nil {
			fmt.Printf("verification FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("verified: bounded at %d steps\n", res.MaxSteps)
	}

	if *run {
		m := hw.NewMachine(hw.DEC5000)
		// Identity-map low memory so programs can use data freely.
		for vpn := uint32(0); vpn < 64; vpn++ {
			m.TLB.WriteRandom(hw.TLBEntry{VPN: vpn, PFN: vpn, Perms: hw.PermValid | hw.PermWrite})
		}
		m.SetTrapHandler(haltOnTrap{})
		m.CPU.Mode = hw.ModeUser
		in := vm.New(m, vm.FixedCode(code))
		reason := in.Run(*steps)
		fmt.Printf("\nstopped: %v after %d steps, %d simulated cycles (%.2f us at 25 MHz)\n",
			reason, in.Steps, m.Clock.Cycles(), m.Micros(m.Clock.Cycles()))
		for r := 0; r < hw.NumRegs; r += 4 {
			for c := 0; c < 4; c++ {
				fmt.Printf("  r%-2d %08x", r+c, m.CPU.Reg(uint8(r+c)))
			}
			fmt.Println()
		}
	}
}

// haltOnTrap reports the trap and stops (bare machine: no kernel to fix
// anything up).
type haltOnTrap struct{}

func (haltOnTrap) HandleTrap(m *hw.Machine) {
	fmt.Printf("trap: %v at pc %d (badva %#x) — skipping\n", m.CPU.Cause, m.CPU.EPC, m.CPU.BadVAddr)
	m.CPU.PC = m.CPU.EPC + 1
	m.CPU.Mode = hw.ModeUser
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exoasm:", err)
	os.Exit(1)
}
