// Command soakdiff is the soak-trend regression gate: it compares two
// SOAK JSON files written by `soak -format json` and fails if the trend
// degraded beyond the threshold — or, for files from the same soak
// configuration, if any determinism witness (seed, fault count, steps,
// simulated cycles, trace hash) differs at all.
//
// Usage:
//
//	soakdiff old.json new.json        # gate new against old (default 30%)
//	soakdiff -threshold 50 a.json b.json
//	soakdiff -format json a.json b.json   # machine-readable report
//	soakdiff -validate file.json      # schema-check one file, no diff
//
// Trend metrics (ev/sec, wall_ns/100k, invariant-latency percentiles)
// are host-side and wear the tolerance; determinism witnesses are
// simulated-side and wear none. Exit status: 0 the gate passes, 1 a
// regression or witness mismatch, 2 usage error or invalid SOAK JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"exokernel/internal/chaos"
	"exokernel/internal/cliutil"
)

func load(path string) (*chaos.SoakReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := chaos.ParseSoakJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

func main() {
	threshold := flag.Float64("threshold", 30, "trend-regression threshold in percent")
	validate := flag.Bool("validate", false, "validate a single file against the schema and exit")
	format := flag.String("format", "text", "diff-report output format: text or json")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "soakdiff: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckFormat("soakdiff", *format, "text", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *threshold < 0 {
		fail(fmt.Errorf("-threshold %g, want >= 0", *threshold))
	}

	if *validate {
		if flag.NArg() != 1 {
			fail(fmt.Errorf("-validate takes exactly one file, got %d", flag.NArg()))
		}
		r, err := load(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		fmt.Printf("soakdiff: %s: valid (%d rounds x %d events, %d windows)\n",
			flag.Arg(0), r.Rounds, r.EventsPerRound, len(r.Windows))
		return
	}

	if flag.NArg() != 2 {
		fail(fmt.Errorf("want: soakdiff [-threshold pct] old.json new.json"))
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	r := chaos.DiffSoak(oldR, newR, *threshold/100)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fail(err)
		}
	} else {
		fmt.Print(r.Render())
	}
	if !r.OK() {
		os.Exit(1)
	}
}
