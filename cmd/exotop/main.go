// Command exotop is the top-style fleet view: every machine in a run —
// its per-env cycles, syscall and TLB/STLB rates, packet drops, NIC
// overflow, revocations — plus the harness's live gauges (faults
// injected by class, workload counters) and probes (invariant-check
// latency), rendered from the fleet observability bus (internal/fleet).
//
// Workloads:
//
//	chaos          the two-machine chaos schedule (default), watched live
//	<bench-id>     any aegisbench experiment (substring match, as in
//	               `aegisbench -only`), snapshot at the end of the run
//
// Usage:
//
//	exotop                               # live view of a chaos run
//	exotop -seed 7 -target 20000         # bigger run, chosen seed
//	exotop -once -seed 1 -target 300     # one plaintext snapshot, then exit
//	exotop -once table3                  # fleet view of a bench experiment
//	exotop -trace merged.json -once      # also write the merged Perfetto
//	                                     # timeline (one track per machine)
//	exotop -jsonl merged.jsonl -once     # machine-tagged JSONL instead
//
// In live mode the screen redraws every -every schedule steps (ANSI
// clear; -plain appends screens instead, for dumb terminals and pipes).
// Rates are deltas per simulated millisecond between redraws — functions
// of simulated time only, so the same seed renders the same numbers.
// -once renders a single snapshot after the run completes; its output is
// deterministic and is pinned by a golden test in internal/fleet.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"exokernel/internal/bench"
	"exokernel/internal/chaos"
	"exokernel/internal/fleet"
)

func main() {
	once := flag.Bool("once", false, "render one snapshot at the end of the run and exit")
	seed := flag.Uint64("seed", 1, "chaos schedule + injector seed")
	target := flag.Uint64("target", 5000, "chaos fault-event target")
	steps := flag.Int("steps", 0, "chaos max schedule steps (0 = scaled default)")
	every := flag.Int("every", 250, "live mode: redraw every N schedule steps")
	maxEnvs := flag.Int("envs", 12, "max environments listed (0 = all)")
	plain := flag.Bool("plain", false, "live mode: no ANSI clear, append screens")
	traceOut := flag.String("trace", "", "write the merged Chrome/Perfetto trace to this file")
	jsonlOut := flag.String("jsonl", "", "write the merged machine-tagged JSONL trace to this file")
	flag.Parse()

	workload := "chaos"
	if flag.NArg() == 1 {
		workload = flag.Arg(0)
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: exotop [flags] [chaos|<bench-id>]")
		os.Exit(2)
	}

	bus := fleet.NewBus()
	var err error
	if strings.EqualFold(workload, "chaos") {
		err = runChaos(bus, *seed, *target, *steps, *every, *once, *plain, *maxEnvs)
	} else {
		err = runBench(bus, workload)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "exotop: %v\n", err)
		os.Exit(1)
	}

	if *once {
		fmt.Print(fleet.RenderTop(bus.Snapshot(), nil, *maxEnvs))
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, bus.WriteChrome); err != nil {
			fmt.Fprintf(os.Stderr, "exotop: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "exotop: wrote merged trace (%d machines) to %s\n",
			len(bus.Members()), *traceOut)
	}
	if *jsonlOut != "" {
		if err := writeTo(*jsonlOut, bus.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "exotop: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "exotop: wrote merged JSONL to %s\n", *jsonlOut)
	}
}

// runChaos drives the two-machine chaos schedule over the bus, redrawing
// in live mode.
func runChaos(bus *fleet.Bus, seed, target uint64, steps, every int, once, plain bool, maxEnvs int) error {
	if steps == 0 {
		steps = 3*int(target) + 20000
	}
	var prev *fleet.Snapshot
	cfg := chaos.Config{Seed: seed, TargetFaults: target, MaxSteps: steps, Bus: bus}
	if !once {
		cfg.OnStep = func(step int) {
			if step%every != 0 {
				return
			}
			cur := bus.Snapshot()
			if !plain {
				fmt.Print("\033[H\033[2J")
			}
			fmt.Printf("exotop: chaos seed=%#x step=%d\n", seed, step)
			fmt.Print(fleet.RenderTop(cur, prev, maxEnvs))
			prev = cur
		}
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	if !once {
		if !plain {
			fmt.Print("\033[H\033[2J")
		}
		fmt.Printf("exotop: chaos seed=%#x done: %d steps, %d fault events, tcp intact=%v\n",
			seed, rep.Steps, rep.FaultEvents, rep.TCPIntact)
		fmt.Print(fleet.RenderTop(bus.Snapshot(), prev, maxEnvs))
	}
	return nil
}

// runBench runs the matching aegisbench experiments with every booted
// kernel registered on the bus (bench.Bus), so the final snapshot covers
// the whole experiment's machines.
func runBench(bus *fleet.Bus, name string) error {
	bench.Bus = bus
	needle := strings.ToLower(strings.ReplaceAll(name, " ", ""))
	ran := 0
	for _, e := range bench.All() {
		id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
		if !strings.Contains(id, needle) && !strings.Contains(strings.ToLower(e.Title), needle) {
			continue
		}
		fmt.Fprint(os.Stderr, e.Run().Format()+"\n")
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no workload matches %q (try `aegisbench -list`, or `chaos`)", name)
	}
	return nil
}

// writeTo creates path and streams write into it.
func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
