package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exokernel/internal/prof"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExoprofGolden pins the text rendering byte for byte (the run is
// deterministic, so the golden only moves when the profiler or the
// workload changes — regenerate with `go test ./cmd/exoprof -update`).
func TestExoprofGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2", "text", 10, 32); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prof_table2.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (regenerate with -update):\n%s", golden, buf.String())
	}
	for _, needle := range []string{"aegis-prof v1", "hot blocks", "syscall", "machine m1"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("output missing %q", needle)
		}
	}
}

// TestExoprofByteIdentical: every format is a pure function of the
// workload.
func TestExoprofByteIdentical(t *testing.T) {
	for _, format := range []string{"text", "folded", "chrome", "pprof", "json"} {
		var a, b bytes.Buffer
		if err := run(&a, "table2", format, 10, 32); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if err := run(&b, "table2", format, 10, 32); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s output not byte-identical across runs", format)
		}
	}
}

// TestExoprofJSONValidates: the json format emits a parseable,
// schema-valid PROF file, and the comma-separated selection runs the
// union.
func TestExoprofJSONValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table2,table4", "json", 10, 32); err != nil {
		t.Fatal(err)
	}
	f, err := prof.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workloads) != 2 {
		t.Errorf("workloads = %v, want the two selected", f.Workloads)
	}
	if len(f.Machines) == 0 || len(f.HotBlocks) == 0 {
		t.Errorf("profile empty: %d machines, %d hot blocks", len(f.Machines), len(f.HotBlocks))
	}
}

// TestExoprofNoMatch: an unmatched selection is an error, not an empty
// profile.
func TestExoprofNoMatch(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "definitely-not-a-workload", "text", 10, 32); err == nil {
		t.Fatal("want error for unmatched workload")
	}
}

// TestExoprofCandidates: the -candidates view is deterministic, marks
// the workload's dominant blocks as selectable, and reads back from a
// committed PROF JSON identically.
func TestExoprofCandidates(t *testing.T) {
	var live bytes.Buffer
	if err := runCandidates(&live, "table2", 0, 32, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(live.String(), "jit candidates:") || !strings.Contains(live.String(), "jit  ") {
		t.Errorf("candidate view selected nothing:\n%s", live.String())
	}

	var js bytes.Buffer
	if err := run(&js, "table2", "json", 10, 32); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "PROF.json")
	if err := os.WriteFile(path, js.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromFile bytes.Buffer
	if err := runFile(&fromFile, path, true, "text", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), fromFile.Bytes()) {
		t.Errorf("-in candidate view differs from live run:\nlive:\n%s\nfile:\n%s", live.String(), fromFile.String())
	}
}
