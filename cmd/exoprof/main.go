// Command exoprof runs bench workloads under the deterministic
// simulated-cycle profiler and renders where the cycles went: per guest
// PC, per environment, per machine, with kernel service split out by
// operation class and hot basic blocks ranked for JIT candidacy.
//
// Profiles are exact and deterministic — every simulated cycle is
// attributed, none are sampled, and the same seed produces the same
// bytes — so two profiles diff exactly (`benchdiff -prof`).
//
// Usage:
//
//	exoprof -list                         # list workloads
//	exoprof table9                        # text profile (substring match)
//	exoprof table9,table10 -top 30        # several workloads, one profile
//	exoprof -format folded table9         # folded stacks (flamegraph.pl)
//	exoprof -format chrome -o flame.json table9
//	exoprof -format pprof -o p.pb.gz table9   # go tool pprof p.pb.gz
//	exoprof -format json -o PROF.json table9  # versioned PROF JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/bench"
	"exokernel/internal/cliutil"
	"exokernel/internal/hw"
	"exokernel/internal/prof"
)

func main() {
	format := flag.String("format", "text", "output format: text, folded, chrome, pprof, or json")
	out := flag.String("o", "", "output file (default stdout)")
	top := flag.Int("top", 20, "rows per section in text output")
	matN := flag.Int("n", bench.Table9MatrixN, "matrix dimension for Table 9")
	list := flag.Bool("list", false, "list workloads and exit")
	candidates := flag.Bool("candidates", false, "print the superblocks the trace-JIT would select")
	blocks := flag.Bool("blocks", false, "alias for -candidates")
	threshold := flag.Uint64("threshold", 0, "JIT entry threshold for -candidates (0 = the tier's default)")
	in := flag.String("in", "", "read a committed PROF JSON file instead of running workloads")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	if err := cliutil.CheckFormat("exoprof", *format, "text", "folded", "chrome", "pprof", "json"); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	*candidates = *candidates || *blocks
	if wantArgs := 1; (*in != "") == (flag.NArg() == wantArgs) {
		fmt.Fprintln(os.Stderr, "usage: exoprof [-format text|folded|chrome|pprof|json] [-o file] [-top n] <workload>[,<workload>...]")
		fmt.Fprintln(os.Stderr, "       exoprof -candidates [-threshold n] (<workload>... | -in PROF.json)")
		fmt.Fprintln(os.Stderr, "       exoprof -list")
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exoprof: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch {
	case *in != "":
		err = runFile(w, *in, *candidates, *format, *top, *threshold)
	case *candidates:
		err = runCandidates(w, flag.Arg(0), *top, *matN, *threshold)
	default:
		err = run(w, flag.Arg(0), *format, *top, *matN)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "exoprof: %v\n", err)
		os.Exit(1)
	}
}

// runFile renders a committed PROF JSON file — the candidate view, or
// any of the standard formats — without re-running workloads.
func runFile(w io.Writer, path string, candidates bool, format string, top int, threshold uint64) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	f, err := prof.Parse(fh)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if candidates {
		return prof.WriteCandidates(w, f, threshold, top)
	}
	switch format {
	case "folded":
		return prof.WriteFolded(w, f)
	case "chrome":
		return prof.WriteChrome(w, f)
	case "pprof":
		return prof.WritePprof(w, f)
	case "json":
		return f.Write(w)
	default:
		return prof.WriteText(w, f, top)
	}
}

// runCandidates profiles the selected workloads and prints the JIT
// candidate view instead of the full profile.
func runCandidates(w io.Writer, workloads string, top, matN int, threshold uint64) error {
	f, err := collect(workloads, matN)
	if err != nil {
		return err
	}
	return prof.WriteCandidates(w, f, threshold, top)
}

// run profiles the selected workloads and renders the result in the
// requested format.
func run(w io.Writer, workloads, format string, top, matN int) error {
	f, err := collect(workloads, matN)
	if err != nil {
		return err
	}
	switch format {
	case "folded":
		return prof.WriteFolded(w, f)
	case "chrome":
		return prof.WriteChrome(w, f)
	case "pprof":
		return prof.WritePprof(w, f)
	case "json":
		return f.Write(w)
	default:
		return prof.WriteText(w, f, top)
	}
}

// collect profiles the selected workloads into a PROF document. The
// workloads argument is a comma-separated list of substrings matched
// against experiment IDs and titles (as in `aegisbench -only`); the
// union runs in the experiments' canonical order.
func collect(workloads string, matN int) (*prof.File, error) {
	savedProf, savedN := bench.Prof, bench.Table9MatrixN
	defer func() { bench.Prof, bench.Table9MatrixN = savedProf, savedN }()
	bench.Table9MatrixN = matN
	bench.ResetMachineSeq()

	var needles []string
	for _, n := range strings.Split(workloads, ",") {
		n = strings.ToLower(strings.ReplaceAll(n, " ", ""))
		if n != "" {
			needles = append(needles, n)
		}
	}
	var selected []bench.Experiment
	for _, e := range bench.All() {
		id := strings.ToLower(strings.ReplaceAll(e.ID, " ", ""))
		title := strings.ToLower(e.Title)
		for _, n := range needles {
			if strings.Contains(id, n) || strings.Contains(title, n) {
				selected = append(selected, e)
				break
			}
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no workload matches %q", workloads)
	}

	var profs []*prof.Profiler
	bench.Prof = func(name string) *prof.Profiler {
		p := prof.New(name, aegis.OpNames())
		profs = append(profs, p)
		return p
	}
	var ids []string
	for _, e := range selected {
		e.Run() // tables are discarded: the profile is the output
		ids = append(ids, e.ID)
	}

	var machines []prof.Profile
	for _, p := range profs {
		machines = append(machines, p.Snapshot())
	}
	platform := fmt.Sprintf("%s (simulated, %g MHz)", hw.DEC5000.Name, hw.DEC5000.MHz)
	return prof.Collect(platform, ids, machines, 50), nil
}
