// Command chaos runs the randomized fault schedule with the kernel
// invariant gate (internal/chaos): three machines — live TCP and disk
// workloads on two, a journaled file system under power-fail crash and
// reboot rounds on the third — a seeded injector abusing the hardware,
// and forced revocations and environment kills abusing the kernel API,
// with every bookkeeping invariant checked after every step.
//
// Usage:
//
//	chaos                       # one run, default seed and fault target
//	chaos -seed 7 -target 5000  # bigger run, chosen seed
//	chaos -reboots 100          # require ≥100 kill-and-reboot rounds
//	chaos -verify               # run the seed twice, require identical
//	                            # fault logs, traces, and clocks
//	chaos -seeds 20             # sweep seeds 1..20 (a soak)
//
// Exit status is nonzero if any invariant broke, a workload check
// failed, or (-verify) the two runs diverged. A failure prints the seed;
// rerunning with that seed reproduces the identical schedule, fault for
// fault.
package main

import (
	"flag"
	"fmt"
	"os"

	"exokernel/internal/chaos"
	"exokernel/internal/fault"
)

func main() {
	seed := flag.Uint64("seed", 1, "schedule + injector seed")
	target := flag.Uint64("target", 1000, "fault events to inject before quiescing")
	reboots := flag.Int("reboots", 0, "minimum kill-and-reboot rounds on the journaled-FS machine")
	steps := flag.Int("steps", 0, "max schedule steps (0 = default)")
	verify := flag.Bool("verify", false, "run twice; require bit-identical fault log and traces")
	seeds := flag.Int("seeds", 0, "sweep this many consecutive seeds starting at -seed")
	quiet := flag.Bool("q", false, "only print failures")
	flag.Parse()

	n := *seeds
	if n <= 0 {
		n = 1
	}
	failed := false
	for i := 0; i < n; i++ {
		s := *seed + uint64(i)
		cfg := chaos.Config{Seed: s, TargetFaults: *target, MaxSteps: *steps, MinReboots: *reboots}
		rep, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL seed %#x: %v\n", s, err)
			failed = true
			continue
		}
		if *verify {
			rep2, err := chaos.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "FAIL seed %#x (replay): %v\n", s, err)
				failed = true
				continue
			}
			if d := diverged(rep, rep2); d != "" {
				fmt.Fprintf(os.Stderr, "FAIL seed %#x: replay diverged: %s\n", s, d)
				failed = true
				continue
			}
		}
		if !*quiet {
			print(rep, *verify)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// diverged compares the determinism witnesses of two runs of one seed.
func diverged(a, b *chaos.Report) string {
	if len(a.Events) != len(b.Events) {
		return fmt.Sprintf("fault log length %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return fmt.Sprintf("fault log event %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if a.TraceHash != b.TraceHash {
		return fmt.Sprintf("trace hash %#x vs %#x", a.TraceHash, b.TraceHash)
	}
	if a.SpanHash != b.SpanHash {
		return fmt.Sprintf("span hash %#x vs %#x", a.SpanHash, b.SpanHash)
	}
	if a.CyclesA != b.CyclesA || a.CyclesB != b.CyclesB || a.CyclesC != b.CyclesC {
		return fmt.Sprintf("clocks %d/%d/%d vs %d/%d/%d",
			a.CyclesA, a.CyclesB, a.CyclesC, b.CyclesA, b.CyclesB, b.CyclesC)
	}
	if len(a.EventsC) != len(b.EventsC) {
		return fmt.Sprintf("machine C fault log length %d vs %d", len(a.EventsC), len(b.EventsC))
	}
	for i := range a.EventsC {
		if a.EventsC[i] != b.EventsC[i] {
			return fmt.Sprintf("machine C fault log event %d: %v vs %v", i, a.EventsC[i], b.EventsC[i])
		}
	}
	if a.Reboots != b.Reboots || a.CrashKept != b.CrashKept || a.CrashLost != b.CrashLost {
		return fmt.Sprintf("crash census %d/%d/%d vs %d/%d/%d",
			a.Reboots, a.CrashKept, a.CrashLost, b.Reboots, b.CrashKept, b.CrashLost)
	}
	return ""
}

func print(r *chaos.Report, verified bool) {
	tag := ""
	if verified {
		tag = " replay-verified"
	}
	fmt.Printf("chaos seed=%#x ok%s\n", r.Seed, tag)
	fmt.Printf("  %d steps, %d fault events, clocks %d/%d cycles, trace %#x\n",
		r.Steps, r.FaultEvents, r.CyclesA, r.CyclesB, r.TraceHash)
	fmt.Printf("  faults:")
	for k := 0; k < fault.NumKinds; k++ {
		if r.Counts[k] > 0 {
			fmt.Printf(" %s=%d", fault.Kind(k), r.Counts[k])
		}
	}
	fmt.Println()
	fmt.Printf("  envs: %d created, %d killed; revocations: %d (%d complied, %d aborted)\n",
		r.EnvsCreated, r.EnvsKilled, r.Revocations, r.Complied, r.Aborted)
	fmt.Printf("  tcp: %d bytes intact=%v; disk: %d writes, %d reads, %d recovered errors\n",
		r.TCPBytesSent, r.TCPIntact, r.DiskWrites, r.DiskReads, r.DiskErrs)
	fmt.Printf("  reboots: %d (%d scheduled, %d mid-io, %d during recovery); cached writes kept/lost %d/%d\n",
		r.Reboots, r.ScheduledCrashes, r.MidIOCrashes, r.RecoveryCrashes, r.CrashKept, r.CrashLost)
	fmt.Printf("  fs: %d ops, %d syncs; recovery mounts: %d replayed, %d rolled back, %d clean; %d audit violations\n",
		r.FSOps, r.FSSyncs, r.MountsReplayed, r.MountsRolledBack, r.MountsClean, r.AuditViolations)
	fmt.Printf("  nic overflow drops: %d/%d\n", r.RxOverflowA, r.RxOverflowB)
	fmt.Printf("  spans: %d/%d recorded, %d traces, %d orphans, %d open, hash %#x\n",
		r.SpanTotalA, r.SpanTotalB, r.SpanTraces, r.SpanOrphans, r.SpanOpen, r.SpanHash)
	inv := r.InvariantNS
	fmt.Printf("  invariant checks: %d sweeps, host ns p50=%d p99=%d max=%d\n",
		inv.Count, inv.P50, inv.P99, inv.Max)
}
