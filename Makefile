# Local development gate. `make check` is the tier-1+ verify command
# recorded in ROADMAP.md; tier-1 proper is build + test.

GO ?= go

.PHONY: all build test check fmt vet race bench results baseline benchdiff invariance profile prof profdiff chaos soak soakbaseline soakdiff top flow

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

check:
	./scripts/check.sh

bench:
	$(GO) run ./cmd/aegisbench

# Regenerate the committed human-readable results.
results:
	$(GO) run ./cmd/aegisbench > results_aegisbench.txt

# Regenerate the committed BENCH JSON baseline the regression gate
# compares against (see cmd/benchdiff; schema in internal/bench/json.go).
baseline:
	$(GO) run ./cmd/aegisbench -format json -trials 3 > BENCH_aegisbench.json

# Gate the current tree against the committed baseline (default 5%).
benchdiff:
	$(GO) run ./cmd/aegisbench -format json -trials 3 > /tmp/bench_new.json
	$(GO) run ./cmd/benchdiff BENCH_aegisbench.json /tmp/bench_new.json

# Full engine-invariance gate: every simulated number must be identical
# across all three engine tiers — fast+JIT (default), the fast
# interpreter (EXO_NOJIT=1), and the reference engine (EXO_SLOWPATH=1) —
# byte-identical text tables, zero-threshold JSON diff. Host wall-clock
# metrics are informational and never gated.
invariance:
	$(GO) run ./cmd/aegisbench > /tmp/bench_fast.txt
	EXO_NOJIT=1 $(GO) run ./cmd/aegisbench > /tmp/bench_nojit.txt
	cmp /tmp/bench_fast.txt /tmp/bench_nojit.txt
	EXO_SLOWPATH=1 $(GO) run ./cmd/aegisbench > /tmp/bench_slow.txt
	cmp /tmp/bench_fast.txt /tmp/bench_slow.txt
	$(GO) run ./cmd/aegisbench -format json -trials 1 > /tmp/bench_fast.json
	EXO_SLOWPATH=1 $(GO) run ./cmd/aegisbench -format json -trials 1 > /tmp/bench_slow.json
	$(GO) run ./cmd/benchdiff -threshold 0 /tmp/bench_slow.json /tmp/bench_fast.json
	@echo "invariance: OK"

# Chaos gate: fixed-seed randomized fault schedule (1000+ injected
# faults across wire/disk/NIC plus forced revocations and env kills,
# and at least 100 power-fail kill-and-reboot rounds on the
# journaled-FS machine), kernel invariants checked after every step,
# and the whole run replayed to prove the seed reproduces it
# bit-identically — crash census included (see cmd/chaos).
chaos:
	$(GO) run ./cmd/chaos -seed 1 -target 1000 -reboots 100 -verify

# Continuous soak gate: a 10⁶-event long-horizon chaos run (100 rounds
# of 10⁴ fault events under rotating seeds, invariants checked after
# every step) through the fleet observability bus, writing versioned
# SOAK JSON that trends invariant-check latency, events/sec, and host
# wall time per 10⁵ events (see internal/chaos/soak.go; cmd/soak -h for
# knobs). scripts/check.sh runs a 10⁴-event smoke of the same gate.
soak:
	$(GO) run ./cmd/soak -seed 1 -rounds 100 -events 10000 -o SOAK_soak.json
	@echo "wrote SOAK_soak.json"

# Regenerate the committed SOAK baseline (small fixed config so the
# trend file is cheap to refresh and diff).
soakbaseline:
	$(GO) run ./cmd/soak -seed 1 -rounds 4 -events 2500 -q -o SOAK_baseline.json
	@echo "wrote SOAK_baseline.json"

# Gate a fresh soak run against the committed SOAK baseline: simulated
# determinism witnesses (seeds, fault counts, steps, reboots, sim
# cycles, trace hashes) at zero tolerance, host-side trend metrics
# (ev/sec, wall_ns/100k, invariant-latency percentiles) at
# SOAKDIFF_THRESHOLD (default 30%; CI uses a huge value to keep
# shared-runner wall-clock noise out of the gate — witnesses are
# never relaxed). See cmd/soakdiff.
SOAKDIFF_THRESHOLD ?= 0.3
soakdiff:
	$(GO) run ./cmd/soak -seed 1 -rounds 4 -events 2500 -q -o /tmp/soak_new.json
	$(GO) run ./cmd/soakdiff -threshold $(SOAKDIFF_THRESHOLD) SOAK_baseline.json /tmp/soak_new.json

# Causal trace of the built-in cross-machine request scenario: span
# trees, critical paths, and queue/handler/wire breakdowns
# (cmd/exoflow; -format json|perfetto for machine-readable output).
flow:
	$(GO) run ./cmd/exoflow

# Live fleet view of a chaos run (cmd/exotop; -once for one snapshot).
top:
	$(GO) run ./cmd/exotop -seed 1 -target 2000

# CPU-profile the hottest workload (Table 9) for host-speed work:
# go tool pprof cpu.pprof
profile:
	$(GO) run ./cmd/aegisbench -only table9 -cpuprofile cpu.pprof > /dev/null
	@echo "wrote cpu.pprof; inspect with: go tool pprof cpu.pprof"

# Regenerate the committed simulated-cycle profile baseline: exact
# per-PC attribution of the matrix workload (Table 9) and the Appel-Li
# protection-primitive suite (Table 10), kernel time split out by
# operation class (cmd/exoprof; schema in internal/prof/json.go).
prof:
	$(GO) run ./cmd/exoprof -format json -o PROF_baseline.json table9,table10
	@echo "wrote PROF_baseline.json"

# Root-cause a bench regression: profile the same workloads now and
# rank the largest per-site cycle deltas against the committed baseline.
profdiff:
	$(GO) run ./cmd/exoprof -format json -o /tmp/prof_new.json table9,table10
	$(GO) run ./cmd/benchdiff -prof PROF_baseline.json /tmp/prof_new.json
