# Local development gate. `make check` is the tier-1+ verify command
# recorded in ROADMAP.md; tier-1 proper is build + test.

GO ?= go

.PHONY: all build test check fmt vet race bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

check:
	./scripts/check.sh

bench:
	$(GO) run ./cmd/aegisbench
