// Ashnet: two simulated DECstations on an Ethernet segment ping-pong
// 60-byte UDP packets while the receiver gets progressively busier. With a
// downloaded application-specific handler (ASH), the echo reply is
// generated in the kernel's interrupt context and latency stays flat; with
// an ordinary application-level echo server, the reply waits for the
// scheduler and latency grows linearly with the run queue. This is the
// paper's Figure 2, live.
package main

import (
	"fmt"
	"log"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
)

const port = 7

func roundTrip(spinners int, ash bool) float64 {
	seg := ether.NewSegment()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	kb := aegis.New(mb)
	seg.Attach(ma)
	seg.Attach(mb)
	ka.SetQuantum(6250)
	kb.SetQuantum(6250)

	netA := exos.NewNet(ka, pkt.Addr{0xA}, pkt.IP(18, 26, 4, 10))
	netB := exos.NewNet(kb, pkt.Addr{0xB}, pkt.IP(18, 26, 4, 11))
	osA, err := exos.Boot(ka)
	if err != nil {
		log.Fatal(err)
	}
	osB, err := exos.Boot(kb)
	if err != nil {
		log.Fatal(err)
	}
	sockA, err := netA.Bind(osA, port)
	if err != nil {
		log.Fatal(err)
	}
	sockB, err := netB.Bind(osB, port)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < spinners; i++ {
		if _, err := exos.NewSpinner(kb); err != nil {
			log.Fatal(err)
		}
	}
	if ash {
		// Download the verified echo handler into B's kernel.
		if err := sockB.AttachEchoASH(); err != nil {
			log.Fatal(err)
		}
	} else {
		osB.Env.NativeRun = func(k *aegis.Kernel) {
			for {
				data, flow, ok := sockB.TryRecv()
				if !ok {
					return
				}
				sockB.SendTo(pkt.Addr{0xA}, flow.SrcIP, flow.SrcPort, data)
			}
		}
	}

	payload := make([]byte, 60-pkt.UDPPayload)
	const trips = 32
	var total float64
	for i := 0; i < trips; i++ {
		start := ma.Clock.Cycles()
		sockA.SendTo(pkt.Addr{0xB}, pkt.IP(18, 26, 4, 11), port, payload)
		for sockA.Pending() == 0 {
			if !kb.DispatchNative() && sockA.Pending() == 0 {
				log.Fatal("reply lost")
			}
		}
		sockA.TryRecv()
		total += ma.Micros(ma.Clock.Cycles() - start)
		seg.Sync()
	}
	return total / trips
}

func main() {
	fmt.Println("60-byte UDP round-trip between two machines (simulated us)")
	fmt.Println("wire lower bound: 253 us (two Ethernet traversals)")
	fmt.Println("\n  busy receiver procs   with ASH   without ASH")
	for n := 0; n <= 8; n++ {
		withASH := roundTrip(n, true)
		without := roundTrip(n, false)
		bar := ""
		for i := 0; i < int(without/150); i++ {
			bar += "#"
		}
		fmt.Printf("  %19d   %7.0f    %9.0f  %s\n", n, withASH, without, bar)
	}
	fmt.Println("\nthe ASH answers from the kernel's interrupt context — the receiver's")
	fmt.Println("run queue is irrelevant; without it, the reply waits to be scheduled.")
}
