; fib.s — compute fib(20) iteratively; a sample program for the simulated
; ISA toolchain. Run with:
;
;   go run ./cmd/exoasm -run examples/asm/fib.s
;
; Result lands in s0 (r16). The bare-machine runner identity-maps low
; memory, so the scratch stores at 0x100 work without a kernel.
entry:
    addiu t0, zero, 20      ; n
    addiu t1, zero, 0       ; fib(0)
    addiu t2, zero, 1       ; fib(1)
loop:
    addu  t3, t1, t2        ; next
    addu  t1, t2, zero
    addu  t2, t3, zero
    addiu t0, t0, -1
    bgtz  t0, loop
    addu  s0, t1, zero      ; s0 = fib(20) = 6765
    sw    s0, 0x100(zero)   ; and to memory, through the TLB
    halt
