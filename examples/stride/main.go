// Stride: the paper's §7.3 experiment as a runnable program. Three
// compute-bound sub-processes get CPU in a 3:2:1 ratio — but the kernel
// has no idea: the proportional-share policy lives in an unprivileged
// application-level scheduler that receives kernel time slices and
// re-donates them with directed yields. Reproduces Figure 3.
package main

import (
	"fmt"
	"log"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/stride"
)

func main() {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetQuantum(25000) // 1 ms slices at 25 MHz

	sched, err := stride.New(k)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"A", "B", "C"}
	tickets := []uint64{3, 2, 1}
	var clients []*stride.Client
	for i := range tickets {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) {
			k.M.Clock.Tick(k.Quantum()) // burn the donated slice
		})
		if err != nil {
			log.Fatal(err)
		}
		c, err := sched.Add(w.ID, tickets[i])
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, c)
		fmt.Printf("process %s: environment %d, %d tickets\n", names[i], w.ID, tickets[i])
	}
	// Every kernel slice goes to the scheduler environment; policy is its
	// problem from here on.
	k.SetSliceVector([]aegis.EnvID{sched.Env.ID})

	fmt.Println("\n  quanta        A        B        C     shares (want 0.500/0.333/0.167)")
	total := 0
	for _, checkpoint := range []int{30, 60, 120, 240, 480, 960} {
		for ; total < checkpoint; total++ {
			if !k.DispatchNative() {
				log.Fatal("nothing runnable")
			}
		}
		s := sched.Shares()
		fmt.Printf("  %6d   %6d   %6d   %6d     %.3f/%.3f/%.3f\n",
			checkpoint, clients[0].Quanta, clients[1].Quanta, clients[2].Quanta, s[0], s[1], s[2])
	}
	fmt.Printf("\nsimulated time: %.1f ms; the kernel made %d context switches but zero policy decisions\n",
		m.Micros(m.Clock.Cycles())/1000, sched.Dispatches)
}
