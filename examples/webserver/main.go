// Webserver: a little HTTP/0.9-ish server built from library parts — the
// Cheetah lineage (the exokernel group's fast webserver) in miniature.
// The transport is ExOS's application-level TCP (three-way handshake,
// retransmission, in-order delivery); the content comes from the
// application-level file system; the kernel multiplexes frames and disk
// blocks and knows neither protocol. A lossy wire is injected to show the
// transport earning its keep.
package main

import (
	"fmt"
	"log"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
)

var (
	macSrv = pkt.Addr{2, 0, 0, 0, 0, 1}
	macCli = pkt.Addr{2, 0, 0, 0, 0, 2}
	ipSrv  = pkt.IP(18, 26, 4, 80)
	ipCli  = pkt.IP(18, 26, 4, 81)
)

func main() {
	seg := ether.NewSegment()
	srvM := hw.NewMachine(hw.DEC5000)
	cliM := hw.NewMachine(hw.DEC5000)
	srvK := aegis.New(srvM)
	cliK := aegis.New(cliM)
	seg.Attach(srvM)
	seg.Attach(cliM)

	// Server: FS + TCP listener, all library code.
	srvNet := exos.NewNet(srvK, macSrv, ipSrv)
	srvOS, err := exos.Boot(srvK)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := exos.NewAegisDev(srvOS, 128)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := exos.NewFSCache(srvOS, dev, 16, exos.NewLRU())
	if err != nil {
		log.Fatal(err)
	}
	fs, err := exos.Format(dev, cache, 16)
	if err != nil {
		log.Fatal(err)
	}
	index := "<html>the kernel exports hardware, not abstractions</html>\n"
	inum, err := fs.Create("index.html")
	if err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteAt(inum, 0, []byte(index)); err != nil {
		log.Fatal(err)
	}
	big, err := fs.Create("paper.txt")
	if err != nil {
		log.Fatal(err)
	}
	body := strings.Repeat("exterminate all operating system abstractions. ", 60)
	if err := fs.WriteAt(big, 0, []byte(body)); err != nil {
		log.Fatal(err)
	}

	// A lossy wire: drop ~20% of frames, deterministically.
	rng := uint64(12345)
	seg.Drop = func(from *hw.Machine, frame []byte) bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33%5 == 0
	}
	fmt.Println("wire: dropping ~20% of frames; the library TCP retransmits")

	serve := func(path string) {
		srv, err := exos.ListenTCP(srvNet, srvOS, 80)
		if err != nil {
			log.Fatal(err)
		}
		cliNet := exos.NewNet(cliK, macCli, ipCli)
		cliOS, err := exos.Boot(cliK)
		if err != nil {
			log.Fatal(err)
		}
		cli, err := exos.DialTCP(cliNet, cliOS, 40000, macSrv, ipSrv, 80)
		if err != nil {
			log.Fatal(err)
		}
		var reqSeen bool
		var response []byte
		pump := func(done func() bool) {
			for round := 0; round < 3000 && !done(); round++ {
				cli.Process()
				srv.Process()
				// Server application: answer one GET.
				if req := srv.Recv(); len(req) > 0 && !reqSeen {
					reqSeen = true
					name := strings.TrimSpace(strings.TrimPrefix(string(req), "GET /"))
					if in, err := fs.Lookup(name); err == nil {
						size, _ := fs.Size(in)
						buf := make([]byte, size)
						fs.ReadAt(in, 0, buf)
						srv.Send(append([]byte("200 "), buf...))
					} else {
						srv.Send([]byte("404 not found"))
					}
					srv.Close() // response then FIN: EOF marks the end
				}
				response = append(response, cli.Recv()...)
				cliM.Clock.Tick(4000)
				srvM.Clock.Tick(4000)
				seg.Sync()
			}
		}
		pump(func() bool { return cli.Established() && srv.Established() })
		start := cliM.Clock.Cycles()
		if err := cli.Send([]byte("GET /" + path)); err != nil {
			log.Fatal(err)
		}
		// The server closes after the response; the FIN is ordered behind
		// the data, so seeing it means the whole response arrived.
		pump(func() bool { return cli.State() == "close-wait" })
		ms := cliM.Micros(cliM.Clock.Cycles()-start) / 1000
		preview := string(response)
		if len(preview) > 40 {
			preview = preview[:40] + "..."
		}
		fmt.Printf("  GET /%-10s -> %5d bytes in %6.1f ms (client retx %d, server retx %d)  %q\n",
			path, len(response), ms, cli.Retransmits, srv.Retransmits, preview)
		cli.Close()
		srv.Release()
		cli.Release()
	}

	serve("index.html")
	serve("paper.txt")
	serve("missing")
	fmt.Printf("\nwire dropped %d frames; every byte still arrived in order\n", seg.Dropped)
}
