// Fileserver: the whole stack in one program. A server machine runs an
// application-level file system (library code over a capability-guarded
// disk extent) and serves file contents over UDP (library protocol stack
// over downloaded packet filters); a client machine requests files by
// name. The kernel on each side multiplexed a disk, some pages, and a
// NIC — it never learned what a file or a datagram was.
package main

import (
	"fmt"
	"log"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
)

const filePort = 79

var (
	macServer = pkt.Addr{2, 0, 0, 0, 0, 1}
	macClient = pkt.Addr{2, 0, 0, 0, 0, 2}
	ipServer  = pkt.IP(18, 26, 4, 96)
	ipClient  = pkt.IP(18, 26, 4, 97)
)

func main() {
	seg := ether.NewSegment()
	srvM := hw.NewMachine(hw.DEC5000)
	cliM := hw.NewMachine(hw.DEC5000)
	srvK := aegis.New(srvM)
	cliK := aegis.New(cliM)
	seg.Attach(srvM)
	seg.Attach(cliM)

	// --- Server: library FS + library UDP -------------------------------
	srvNet := exos.NewNet(srvK, macServer, ipServer)
	srvOS, err := exos.Boot(srvK)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := exos.NewAegisDev(srvOS, 256)
	if err != nil {
		log.Fatal(err)
	}
	cache, err := exos.NewFSCache(srvOS, dev, 16, exos.NewScanAware())
	if err != nil {
		log.Fatal(err)
	}
	fs, err := exos.Format(dev, cache, 32)
	if err != nil {
		log.Fatal(err)
	}
	for name, body := range map[string]string{
		"motd":   "secure multiplexing, not abstraction\n",
		"passwd": "root:exo:0:0\n",
		"grades": strings.Repeat("A+\n", 40),
	} {
		inum, err := fs.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := fs.WriteAt(inum, 0, []byte(body)); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d-block extent at disk block %d, %d files, scan-aware cache\n",
		dev.NBlocks, dev.Start, 3)

	srvSock, err := srvNet.Bind(srvOS, filePort)
	if err != nil {
		log.Fatal(err)
	}
	srvOS.Env.NativeRun = func(k *aegis.Kernel) {
		for {
			req, flow, ok := srvSock.TryRecv()
			if !ok {
				return
			}
			name := string(req)
			inum, err := fs.Lookup(name)
			var reply []byte
			if err != nil {
				reply = []byte("ERR no such file")
			} else {
				size, _ := fs.Size(inum)
				reply = make([]byte, size)
				if _, err := fs.ReadAt(inum, 0, reply); err != nil {
					reply = []byte("ERR read failed")
				}
			}
			srvSock.SendTo(macClient, flow.SrcIP, flow.SrcPort, reply)
		}
	}

	// --- Client ----------------------------------------------------------
	cliNet := exos.NewNet(cliK, macClient, ipClient)
	cliOS, err := exos.Boot(cliK)
	if err != nil {
		log.Fatal(err)
	}
	cliSock, err := cliNet.Bind(cliOS, filePort)
	if err != nil {
		log.Fatal(err)
	}

	fetch := func(name string) {
		start := cliM.Clock.Cycles()
		cliSock.SendTo(macServer, ipServer, filePort, []byte(name))
		for cliSock.Pending() == 0 {
			if !srvK.DispatchNative() && cliSock.Pending() == 0 {
				log.Fatal("no reply")
			}
		}
		data, _, _ := cliSock.TryRecv()
		us := cliM.Micros(cliM.Clock.Cycles() - start)
		seg.Sync()
		preview := string(data)
		if len(preview) > 30 {
			preview = preview[:30] + "..."
		}
		fmt.Printf("  GET %-8s -> %4d bytes in %6.0f us   %q\n", name, len(data), us, strings.ReplaceAll(preview, "\n", "\\n"))
	}

	fmt.Println("\nclient requests over the simulated Ethernet:")
	fetch("motd")
	fetch("passwd")
	fetch("grades")
	fetch("grades") // warm: the server's cache absorbs the disk
	fetch("nope")

	fmt.Printf("\nserver stats: %d cache hits, %d misses, %d disk reads; kernel saw %d packets and 0 file systems\n",
		fs.Cache().Hits, fs.Cache().Misses, srvM.Disk.Reads, srvK.Stats.PktDelivered)
}
