// Quickstart: boot a simulated DECstation, start the Aegis exokernel, and
// walk the three ideas the paper is built on — secure bindings (allocate a
// physical page and prove a forged capability is useless), application-
// level virtual memory (take a real TLB miss serviced by ExOS's own page
// table), and application-level fault handling (catch a write-protection
// trap in ordinary library code and repair it).
package main

import (
	"fmt"
	"log"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

func main() {
	// A 25 MHz DECstation 5000/125-class machine and its exokernel.
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	fmt.Printf("booted %s: %d pages of memory, %d-entry TLB, %d-entry STLB\n",
		m.Config.Name, m.Phys.NumPages(), m.TLB.Size(), m.Config.STLBSize)

	// An application with its library operating system. The kernel gave it
	// an environment (save area + four contexts) and nothing else; paging
	// policy, fault handling, everything else is ExOS's, i.e. ours.
	os, err := exos.Boot(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("environment %d created; ExOS attached\n", os.Env.ID)

	// --- Secure bindings -------------------------------------------------
	frame, guard, err := k.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocated physical frame %d (physical names are public in an exokernel)\n", frame)

	forged := cap.Capability{Resource: uint64(frame), Rights: cap.Read | cap.Write}
	if err := k.InstallMapping(os.Env, 0x1000_0000, frame, hw.PermWrite, forged); err != nil {
		fmt.Printf("forged capability rejected: %v\n", err)
	}
	if err := os.Map(0x1000_0000, frame, guard, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("genuine capability accepted: page entered into ExOS's own page table")

	// --- Application-level virtual memory ---------------------------------
	misses := k.Stats.TLBUpcalls
	if err := os.TouchWrite(0x1000_0000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst store took %d TLB-miss upcall(s); ExOS's refill handler installed the binding\n",
		k.Stats.TLBUpcalls-misses)
	fmt.Printf("dirty bit (kept by ExOS, no system call needed): %v\n", os.IsDirty(0x1000_0000))

	// --- Application-level fault handling ----------------------------------
	faults := 0
	os.OnFault = func(o *exos.LibOS, va uint32, write bool) bool {
		faults++
		fmt.Printf("  fault handler: write=%v va=%#x — unprotecting and retrying\n", write, va)
		return o.Unprotect(va&^(hw.PageSize-1)) == nil
	}
	if err := os.Protect(0x1000_0000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npage write-protected; storing again...")
	start := m.Clock.StartWatch()
	if err := os.TouchWrite(0x1000_0000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trap + handler + retry took %.2f simulated us (%d fault)\n",
		m.Micros(start.Elapsed()), faults)

	fmt.Printf("\ntotal simulated time: %.1f us in %d kernel crossings (%d syscalls, %d exceptions)\n",
		m.Micros(m.Clock.Cycles()), k.Stats.Syscalls+k.Stats.Exceptions+k.Stats.TLBMisses,
		k.Stats.Syscalls, k.Stats.Exceptions)
}
