// DSM: a miniature page-based distributed shared memory built on ExOS —
// one of the "ambitious applications" the paper says fast application-level
// protection traps make practical (§5.3, refs [5, 50]). Two environments
// share one virtual page under a single-writer / multiple-reader protocol
// implemented entirely in library code: ownership moves on write faults,
// copies happen on read faults, and the kernel knows nothing about any of
// it — it only checks capabilities when bindings are installed.
package main

import (
	"fmt"
	"log"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

// sharedVA is where both environments see the DSM page.
const sharedVA = 0x4000_0000

// node is one DSM participant: a library OS plus its local physical copy
// of the shared page.
type node struct {
	name  string
	os    *exos.LibOS
	frame uint32
	guard cap.Capability
	// canWrite tracks this node's view of the protocol state.
	canWrite bool
}

// dsm coordinates the nodes (it plays the role of the DSM library's
// directory: in a real system this state is itself replicated).
type dsm struct {
	m     *hw.Machine
	k     *aegis.Kernel
	nodes []*node
	owner *node // current writer, nil if page is read-shared
	// Faults counts protocol faults serviced (the currency of DSM cost).
	Faults int
}

func (d *dsm) add(name string) *node {
	os, err := exos.Boot(d.k)
	if err != nil {
		log.Fatal(err)
	}
	frame, guard, err := d.k.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		log.Fatal(err)
	}
	n := &node{name: name, os: os, frame: frame, guard: guard}
	// The page starts *unmapped*: the first access of any kind faults into
	// the protocol below. Mapping presence is the DSM's access bit.
	os.OnFault = func(_ *exos.LibOS, va uint32, write bool) bool {
		return d.fault(n, va, write)
	}
	d.nodes = append(d.nodes, n)
	return n
}

// fault is the whole DSM protocol: single writer, multiple readers.
// A node's rights are encoded purely in its own page table — unmapped
// (invalid), mapped read-only (shared), or mapped writable (owner).
func (d *dsm) fault(n *node, va uint32, write bool) bool {
	d.Faults++
	if write {
		// Acquire ownership: take the owner's latest bytes, then
		// invalidate every other copy.
		if d.owner != nil && d.owner != n {
			d.fetch(n, d.owner)
		}
		for _, other := range d.nodes {
			if other == n {
				continue
			}
			other.os.Unmap(sharedVA)
			other.canWrite = false
		}
		d.owner = n
		n.canWrite = true
		n.os.Unmap(sharedVA)
		return n.os.Map(sharedVA, n.frame, n.guard, true) == nil
	}
	// Read fault: copy from the current owner and downgrade it; the page
	// becomes read-shared.
	if d.owner != nil && d.owner != n {
		d.fetch(n, d.owner)
		d.owner.os.Unmap(sharedVA)
		if d.owner.os.Map(sharedVA, d.owner.frame, d.owner.guard, false) != nil {
			return false
		}
		d.owner.canWrite = false
		d.owner = nil
	}
	return n.os.Map(sharedVA, n.frame, n.guard, false) == nil
}

// fetch copies the shared page between the nodes' physical frames,
// charging the word moves like any application copy.
func (d *dsm) fetch(to, from *node) {
	src := d.m.Phys.Page(from.frame)
	d.m.Phys.CopyIn(to.frame<<hw.PageShift, src)
	fmt.Printf("    [dsm] page copied %s -> %s\n", from.name, to.name)
}

// write stores a word into the shared page as node n (faulting as needed).
func (d *dsm) write(n *node, off, val uint32) {
	n.os.Enter()
	if err := n.os.TouchWrite(sharedVA + off); err != nil {
		log.Fatal(err)
	}
	d.m.Phys.WriteWord(n.frame<<hw.PageShift+off, val)
}

// read loads a word as node n.
func (d *dsm) read(n *node, off uint32) uint32 {
	n.os.Enter()
	if err := n.os.Touch(sharedVA + off); err != nil {
		log.Fatal(err)
	}
	return d.m.Phys.ReadWord(n.frame<<hw.PageShift + off)
}

func main() {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	d := &dsm{m: m, k: k}
	a := d.add("A")
	b := d.add("B")
	fmt.Printf("two environments share va %#x; protocol state lives in library code\n\n", sharedVA)

	w := m.Clock.StartWatch()

	fmt.Println("A writes 1111 (write fault: A acquires ownership)")
	d.write(a, 64, 1111)

	fmt.Println("B reads       (read fault: page copied A->B, both read-only)")
	if v := d.read(b, 64); v != 1111 {
		log.Fatalf("B read %d, want 1111", v)
	}
	fmt.Println("    B sees 1111")

	fmt.Println("B writes 2222 (write fault: ownership moves A->B)")
	d.write(b, 64, 2222)

	fmt.Println("A reads       (read fault: page copied B->A)")
	if v := d.read(a, 64); v != 2222 {
		log.Fatalf("A read %d, want 2222", v)
	}
	fmt.Println("    A sees 2222")

	fmt.Println("A reads again (no fault: binding cached)")
	if v := d.read(a, 64); v != 2222 {
		log.Fatalf("A re-read %d, want 2222", v)
	}

	fmt.Printf("\n%d protocol faults, %.1f simulated us total\n", d.Faults, m.Micros(w.Elapsed()))
	fmt.Println("on the monolithic baseline each of those faults costs ~10-15x more (Table 10 'trap'),")
	fmt.Println("which is why the paper argues DSM wants application-level exceptions.")
}
