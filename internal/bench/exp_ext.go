package bench

import (
	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/pkt"
)

// AblationILP quantifies the §5.5.2 claim about integrated layer
// processing: "by downloading code into the kernel, applications can
// integrate operations such as checksumming during the copy of the
// message... Such integration can improve performance by almost a factor
// of two [22]." Two verified ASH programs process the same 512-byte
// message: one copies then checksums in a second pass (the layered
// structure a fixed kernel interface forces), the other folds the
// checksum into the copy (possible only because the application wrote the
// handler). Both are loop-free generated code, run in the kernel's
// message context, with every instruction charged.
func AblationILP() *Table {
	t := &Table{ID: "Ablation F", Title: "ASH integrated layer processing: copy+checksum over a 512-byte message",
		Cols: []string{"sim us", "speedup"}}
	const msgWords = 128

	gen := func(integrated bool) isa.Code {
		var code isa.Code
		emit := func(op isa.Op, rd, rs, rt uint8, imm int32) {
			code = append(code, isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt, Imm: imm})
		}
		const (
			t0  = hw.RegT0
			sum = hw.RegT1
		)
		if integrated {
			// One pass: load word, accumulate, store.
			for w := int32(0); w < msgWords; w++ {
				emit(isa.PKTLW, t0, hw.RegZero, 0, w*4)
				emit(isa.ADDU, sum, sum, t0, 0)
				emit(isa.SW, 0, hw.RegZero, t0, w*4)
			}
		} else {
			// Two passes: copy, then checksum the copy.
			for w := int32(0); w < msgWords; w++ {
				emit(isa.PKTLW, t0, hw.RegZero, 0, w*4)
				emit(isa.SW, 0, hw.RegZero, t0, w*4)
			}
			for w := int32(0); w < msgWords; w++ {
				emit(isa.LW, t0, hw.RegZero, 0, w*4)
				emit(isa.ADDU, sum, sum, t0, 0)
			}
		}
		emit(isa.SW, 0, hw.RegZero, sum, msgWords*4) // publish the checksum
		emit(isa.HALT, 0, 0, 0, 0)
		return code
	}

	msg := make([]byte, msgWords*4)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	run := func(code isa.Code) float64 {
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		k.SetTracer(Tracer)
		registerFleet(m, k)
		env, err := k.NewEnv(nil)
		if err != nil {
			panic(err)
		}
		ep, err := k.InstallFilter(env, matchAll{})
		if err != nil {
			panic(err)
		}
		frame, guard, err := k.AllocPage(env, aegis.AnyFrame)
		if err != nil {
			panic(err)
		}
		if _, err := k.InstallASH(ep, code, frame, guard); err != nil {
			panic(err)
		}
		w := m.Clock.StartWatch()
		m.NIC.Deliver(hw.Packet{Data: msg})
		return m.Micros(w.Elapsed())
	}

	layered := run(gen(false))
	integrated := run(gen(true))
	t.Add("layered (copy, then checksum)", Us(layered), Value{})
	t.Add("integrated (checksum during copy)", Us(integrated), X(layered/integrated))
	t.Note("paper, citing [22]: integration 'can improve performance by almost a factor of two'")
	return t
}

// matchAll accepts every frame (single-endpoint ASH benches).
type matchAll struct{}

// Match implements aegis.Filter.
func (matchAll) Match(frame []byte) (bool, uint64) { return true, 2 }

var _ aegis.Filter = matchAll{}

// AblationDSM measures the cross-machine DSM built on the fast primitives:
// the simulated cost of moving page ownership between two machines
// (protection fault + request + invalidate + page transfer + remap) and of
// a remote read. The paper's argument is that these protocols only make
// sense when traps and messages are fast; the measured total is dominated
// by two wire crossings, not by kernel overhead.
func AblationDSM() *Table {
	t := &Table{ID: "Ablation G", Title: "Cross-machine DSM page operations (measured, simulated us)",
		Cols: []string{"time", "of which wire"}}
	seg := ether.NewSegment()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	kb := aegis.New(mb)
	ka.SetTracer(Tracer)
	kb.SetTracer(Tracer)
	registerFleet(ma, ka)
	registerFleet(mb, kb)
	seg.Attach(ma)
	seg.Attach(mb)
	na := exos.NewNet(ka, pkt.Addr{0xA}, pkt.IP(10, 9, 0, 1))
	nb := exos.NewNet(kb, pkt.Addr{0xB}, pkt.IP(10, 9, 0, 2))
	osA, err := exos.Boot(ka)
	if err != nil {
		panic(err)
	}
	osB, err := exos.Boot(kb)
	if err != nil {
		panic(err)
	}
	a, err := exos.NewDSMNode(na, osA, 3111, pkt.Addr{0xB}, pkt.IP(10, 9, 0, 2))
	if err != nil {
		panic(err)
	}
	b, err := exos.NewDSMNode(nb, osB, 3111, pkt.Addr{0xA}, pkt.IP(10, 9, 0, 1))
	if err != nil {
		panic(err)
	}
	a.Pump = func() { b.Service(); ma.Clock.Tick(500); seg.Sync() }
	b.Pump = func() { a.Service(); mb.Clock.Tick(500); seg.Sync() }
	const va = 0x5000_0000
	if err := a.AddPage(va, true); err != nil {
		panic(err)
	}
	if err := b.AddPage(va, false); err != nil {
		panic(err)
	}

	osA.Enter()
	if err := osA.TouchWrite(va); err != nil {
		panic(err)
	}

	// Remote read: B pulls the page.
	osB.Enter()
	w := mb.Clock.StartWatch()
	if err := osB.Touch(va); err != nil {
		panic(err)
	}
	read := mb.Micros(w.Elapsed())

	// Ownership migration: B writes (invalidate A, upgrade B).
	w = mb.Clock.StartWatch()
	if err := osB.TouchWrite(va); err != nil {
		panic(err)
	}
	write := mb.Micros(w.Elapsed())

	wire := 2 * float64(ether.DefaultWireCycles) / 25
	t.Add("remote read (page copy)", Us(read), Us(wire))
	t.Add("ownership migration (write)", Us(write), Us(wire))
	t.Note("page transfers carry %d bytes of payload; everything above the wire bound is library protocol + kernel fast paths", hw.PageSize)
	return t
}
