package bench

import (
	"strings"
	"testing"
)

// These tests pin the qualitative claims of the paper — who wins, by
// roughly what factor, where the crossovers are — so a regression in any
// subsystem that changes the *shape* of a result fails loudly.

// cell finds a row by name prefix and returns its cells.
func cell(t *testing.T, tb *Table, rowPrefix string) []Value {
	t.Helper()
	for _, r := range tb.Rows {
		if strings.HasPrefix(r.Name, rowPrefix) {
			return r.Cells
		}
	}
	t.Fatalf("%s: no row %q", tb.ID, rowPrefix)
	return nil
}

func TestTable2Shape(t *testing.T) {
	tb := Table2()
	proc := cell(t, tb, "procedure call")
	// Identical user code; the only difference is the cost of faulting the
	// stack page in once (ExOS upcall vs kernel refill) amortized over the
	// loop, so the two must agree to well under a percent.
	if diff := proc[0].V/proc[1].V - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("procedure call differs across systems: %v vs %v", proc[0].V, proc[1].V)
	}
	sys := cell(t, tb, "system call")
	if slow := sys[2].V; slow < 5 || slow > 100 {
		t.Errorf("syscall slowdown = %.1fx, want within the paper's 10-100x band (>=5 tolerated)", slow)
	}
	if sys[0].V > 2.0 {
		t.Errorf("Aegis null syscall = %.2f us, paper reports ~1-2 us", sys[0].V)
	}
}

func TestTable3AllPrimitivesFast(t *testing.T) {
	tb := Table3()
	for _, r := range tb.Rows {
		if r.Cells[0].V > 5.0 {
			t.Errorf("primitive %q = %.2f us; Aegis primitives are single-digit microseconds", r.Name, r.Cells[0].V)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tb := Table4()
	d := cell(t, tb, "dispatch")[0].V
	if d < 1.0 || d > 2.5 {
		t.Errorf("Aegis dispatch = %.2f us, paper reports 1.5 us", d)
	}
	rt := cell(t, tb, "trap + handler + resume")
	if rt[2].V < 5 {
		t.Errorf("trap roundtrip slowdown = %.1fx, want >=5x", rt[2].V)
	}
}

func TestTable5Shape(t *testing.T) {
	tb := Table5()
	for _, kind := range []string{"unalign", "overflow", "coproc"} {
		if v := cell(t, tb, kind)[0].V; v < 1 || v > 6 {
			t.Errorf("%s = %.2f us, want low single-digit", kind, v)
		}
	}
	if !cell(t, tb, "unalign")[1].NA {
		t.Error("Ultrix unalign should be n/a (kernel emulates)")
	}
	if !cell(t, tb, "coproc")[1].NA {
		t.Error("Ultrix coproc should be n/a (kernel-managed FPU)")
	}
	prot := cell(t, tb, "prot")
	if prot[2].V < 5 {
		t.Errorf("prot slowdown = %.1fx, want >=5x", prot[2].V)
	}
}

func TestTable6Shape(t *testing.T) {
	tb := Table6()
	speedup := cell(t, tb, "speedup")[0].V
	if speedup < 4 || speedup > 12 {
		t.Errorf("PCT speedup vs scaled L3 = %.1fx, paper says almost 7x", speedup)
	}
}

func TestTable7Ordering(t *testing.T) {
	tb := Table7()
	mpf := cell(t, tb, "MPF")[0].V
	pf := cell(t, tb, "PATHFINDER")[0].V
	dpf := cell(t, tb, "DPF")[0].V
	if !(dpf < pf && pf < mpf) {
		t.Fatalf("ordering broken: DPF=%.2f PATHFINDER=%.2f MPF=%.2f", dpf, pf, mpf)
	}
	if mpf/dpf < 10 {
		t.Errorf("DPF vs MPF = %.1fx, paper reports ~20x (want >=10x)", mpf/dpf)
	}
	if pf/dpf < 5 {
		t.Errorf("DPF vs PATHFINDER = %.1fx, paper reports ~10x (want >=5x)", pf/dpf)
	}
}

func TestTable8Shape(t *testing.T) {
	tb := Table8()
	for _, row := range []string{"pipe", "shm"} {
		c := cell(t, tb, row)
		if c[2].V < 4 || c[2].V > 60 {
			t.Errorf("%s slowdown = %.1fx, paper band is 5-40x", row, c[2].V)
		}
	}
	pipe := cell(t, tb, "pipe")[0].V
	pipeOpt := cell(t, tb, "pipe'")[0].V
	if pipeOpt >= pipe {
		t.Errorf("pipe' (%.2f) not faster than pipe (%.2f)", pipeOpt, pipe)
	}
	lrpc := cell(t, tb, "lrpc")[0].V
	if lrpc > 15 {
		t.Errorf("lrpc = %.2f us, want low double-digit at most", lrpc)
	}
}

func TestTable9Shape(t *testing.T) {
	old := Table9MatrixN
	Table9MatrixN = 48 // keep the test fast; the shape is n-independent
	defer func() { Table9MatrixN = old }()
	tb := Table9()
	ratio := cell(t, tb, "ratio")[0].V
	if ratio < 0.95 || ratio > 1.1 {
		t.Errorf("matmul ratio = %.3f, paper reports ~1.0 (applications that don't use VM don't pay)", ratio)
	}
}

func TestTable10Shape(t *testing.T) {
	tb := Table10()
	if !cell(t, tb, "dirty")[1].NA {
		t.Error("Ultrix dirty should be n/a")
	}
	if d := cell(t, tb, "dirty")[0].V; d > 2 {
		t.Errorf("ExOS dirty = %.2f us; a page-table lookup should be cheap", d)
	}
	for _, row := range []string{"prot1", "trap", "appel1", "appel2"} {
		c := cell(t, tb, row)
		if c[2].V < 3 {
			t.Errorf("%s slowdown = %.1fx, want >=3x", row, c[2].V)
		}
	}
	// appel2 ≤ appel1: appel1 does both a protect and an unprotect in the
	// handler (noted in the paper).
	a1 := cell(t, tb, "appel1")[0].V
	a2 := cell(t, tb, "appel2")[0].V
	if a2 > a1*1.15 {
		t.Errorf("appel2 (%.2f) should not exceed appel1 (%.2f)", a2, a1)
	}
}

func TestTable11Shape(t *testing.T) {
	tb := Table11()
	ash := cell(t, tb, "ExOS with echo ASH")[0].V
	app := cell(t, tb, "ExOS, application echo")[0].V
	ult := cell(t, tb, "Ultrix-model")[0].V
	wire := cell(t, tb, "wire lower bound")[0].V
	if ash < wire {
		t.Errorf("ASH roundtrip %.0f beats the wire bound %.0f", ash, wire)
	}
	if ash-wire > 30 {
		t.Errorf("ASH overhead over the wire = %.0f us, paper reports ~6 us (allow 30)", ash-wire)
	}
	if ult < ash || ult < app {
		t.Errorf("monolithic sockets (%.0f) should be the slowest (ash=%.0f app=%.0f)", ult, ash, app)
	}
}

func TestFigure2Shape(t *testing.T) {
	tb := Figure2()
	var ash, noASH []float64
	for _, r := range tb.Rows {
		ash = append(ash, r.Cells[0].V)
		noASH = append(noASH, r.Cells[1].V)
	}
	// ASH: flat under load.
	for i := 1; i < len(ash); i++ {
		if ash[i]-ash[0] > 25 {
			t.Errorf("ASH latency grew with load: %v", ash)
			break
		}
	}
	// Without ASH: strictly increasing with the run queue, ending well
	// above the ASH line.
	for i := 1; i < len(noASH); i++ {
		if noASH[i] <= noASH[i-1] {
			t.Errorf("non-ASH latency not increasing: %v", noASH)
			break
		}
	}
	if noASH[len(noASH)-1] < 3*ash[len(ash)-1] {
		t.Errorf("under load the non-ASH latency (%.0f) should dwarf ASH (%.0f)", noASH[len(noASH)-1], ash[len(ash)-1])
	}
}

func TestFigure3Shape(t *testing.T) {
	tb := Figure3()
	last := tb.Rows[len(tb.Rows)-1]
	a, b, c := last.Cells[0].V, last.Cells[1].V, last.Cells[2].V
	total := a + b + c
	if total == 0 {
		t.Fatal("no quanta distributed")
	}
	for i, want := range []float64{0.5, 1.0 / 3, 1.0 / 6} {
		got := []float64{a, b, c}[i] / total
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("share %d = %.3f, want %.3f", i, got, want)
		}
	}
}

func TestAblationSTLBShape(t *testing.T) {
	tb := AblationSTLB()
	on := tb.Rows[0]
	off := tb.Rows[1]
	if on.Cells[0].V >= off.Cells[0].V {
		t.Errorf("STLB on (%.2f) not cheaper than off (%.2f)", on.Cells[0].V, off.Cells[0].V)
	}
	if on.Cells[2].V != 0 {
		t.Errorf("STLB enabled but %v upcalls escaped", on.Cells[2].V)
	}
	if off.Cells[1].V != 0 {
		t.Errorf("STLB disabled but %v hits recorded", off.Cells[1].V)
	}
}

func TestAblationDPFMergeShape(t *testing.T) {
	tb := AblationDPFMerge()
	both := tb.Rows[0].Cells[0].V
	unmerged := tb.Rows[1].Cells[0].V
	uncompiled := tb.Rows[2].Cells[0].V
	if !(both < unmerged && both < uncompiled) {
		t.Errorf("DPF (%.2f) should beat unmerged (%.2f) and uncompiled (%.2f)", both, unmerged, uncompiled)
	}
}

func TestAblationCachingShape(t *testing.T) {
	tb := AblationCaching()
	app := tb.Rows[0].Cells[0].V
	lru := tb.Rows[1].Cells[0].V
	mono := tb.Rows[2].Cells[0].V
	if !(app < lru && lru < mono) {
		t.Fatalf("ordering broken: app=%.0f lru=%.0f mono=%.0f", app, lru, mono)
	}
	// Cao et al. [10]: "up to 45%" runtime reduction; require at least 20%.
	if saved := 1 - app/lru; saved < 0.20 {
		t.Errorf("application policy saved only %.0f%% vs LRU, want >=20%%", saved*100)
	}
	// Identical engines ⇒ identical miss counts for the two LRU rows.
	if tb.Rows[1].Cells[2].V != tb.Rows[2].Cells[2].V {
		t.Error("LRU and monolithic rows should have identical cache behaviour")
	}
}

func TestAblationSchedShape(t *testing.T) {
	tb := AblationSched()
	strideErr := tb.Rows[0].Cells[0].V
	lotteryErr := tb.Rows[1].Cells[0].V
	if strideErr > 2 {
		t.Errorf("stride max error = %.1f quanta, want O(1)", strideErr)
	}
	if lotteryErr < 5*strideErr {
		t.Errorf("lottery error (%.1f) should dwarf stride's (%.1f)", lotteryErr, strideErr)
	}
}

func TestAblationPTShape(t *testing.T) {
	tb := AblationPT()
	get := func(name string) (lookup, kb float64) {
		c := cell(t, tb, name)
		return c[0].V, c[1].V
	}
	_, denseTwoKB := get("dense layout, two-level")
	_, denseInvKB := get("dense layout, inverted")
	sparseTwoUs, sparseTwoKB := get("sparse layout (1 page / 4MB), two-level")
	sparseInvUs, sparseInvKB := get("sparse layout (1 page / 4MB), inverted")
	if sparseInvKB*10 > sparseTwoKB {
		t.Errorf("inverted (%v KB) should be >10x smaller than two-level (%v KB) when sparse", sparseInvKB, sparseTwoKB)
	}
	if denseInvKB > denseTwoKB {
		t.Errorf("inverted (%v KB) larger than two-level (%v KB) even when dense", denseInvKB, denseTwoKB)
	}
	// Neither lookup should be more than ~3x the other: the trade is
	// space, not order-of-magnitude time.
	if sparseInvUs > 3*sparseTwoUs || sparseTwoUs > 3*sparseInvUs {
		t.Errorf("lookup costs diverged: %v vs %v us", sparseTwoUs, sparseInvUs)
	}
}

func TestAblationILPShape(t *testing.T) {
	tb := AblationILP()
	layered := tb.Rows[0].Cells[0].V
	integrated := tb.Rows[1].Cells[0].V
	if integrated >= layered {
		t.Fatalf("integration (%0.1f) not faster than layering (%0.1f)", integrated, layered)
	}
	if speedup := layered / integrated; speedup < 1.2 {
		t.Errorf("integration speedup = %.2fx, want >=1.2x (paper: 'almost a factor of two')", speedup)
	}
}

func TestAblationDSMShape(t *testing.T) {
	tb := AblationDSM()
	for _, r := range tb.Rows {
		total, wire := r.Cells[0].V, r.Cells[1].V
		if total < wire {
			t.Errorf("%s: %.0f us beats the wire bound %.0f", r.Name, total, wire)
		}
		if total > 3*wire {
			t.Errorf("%s: %.0f us; protocol overhead should not dwarf the wire (%.0f)", r.Name, total, wire)
		}
	}
}

func TestAllExperimentsRunAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	old := Table9MatrixN
	Table9MatrixN = 32
	defer func() { Table9MatrixN = old }()
	for _, e := range All() {
		tb := e.Run()
		if tb == nil || len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", e.ID)
			continue
		}
		out := tb.Format()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s output missing its ID:\n%s", e.ID, out)
		}
	}
}

func TestValueFormatting(t *testing.T) {
	cases := map[string]Value{
		"1.50 us":   Us(1.5),
		"120 us":    Us(120),
		"n/a":       NA(""),
		"n/a (why)": NA("why"),
		"2 x":       X(2),
		"2.50 x":    X(2.5),
		"":          {},
		"text":      {Note: "text"},
		"5 us (hm)": {V: 5, Unit: "us", Note: "hm"},
	}
	for want, v := range cases {
		if got := v.Str(); got != want {
			t.Errorf("Str(%+v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "Table X", Title: "csv, test", Cols: []string{"a", "b"}}
	tb.Add("row,1", Us(1.5), NA("why"))
	out := tb.CSV()
	for _, want := range []string{"# Table X: csv, test", "row,a,b", "\"row,1\",1.50 us,n/a (why)"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
