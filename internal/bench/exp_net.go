package bench

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/pkt"
	"exokernel/internal/ultrix"
)

// Network round-trip experiments (Table 11 and Figure 2): two machines on
// a simulated Ethernet ping-pong a counter in a 60-byte UDP packet. Three
// receiver configurations: ExOS with a downloaded echo ASH (the reply
// happens in the kernel's interrupt context), ExOS without (the reply
// waits for the application to be scheduled), and the monolithic kernel's
// socket path. FRPC [49] is quoted from the literature, as in the paper.

const (
	rtPort     = 7 // echo
	rtPayload  = 60 - pkt.UDPPayload
	rtWarmups  = 8
	rtMeasured = 64 // paper used 4096; the latency is deterministic here
)

var (
	macA = pkt.Addr{0x02, 0, 0, 0, 0, 0xA}
	macB = pkt.Addr{0x02, 0, 0, 0, 0, 0xB}
	ipA  = pkt.IP(18, 26, 4, 10)
	ipB  = pkt.IP(18, 26, 4, 11)
)

// exosRoundTrip measures the mean round-trip time with `spinners` extra
// compute-bound processes on the receiver, with or without the echo ASH.
func exosRoundTrip(spinners int, ash bool) float64 {
	seg := ether.NewSegment()
	ma, ka := newAegis()
	mb, kb := newAegis()
	seg.Attach(ma)
	seg.Attach(mb)
	ka.SetQuantum(6250) // 250 us slices
	kb.SetQuantum(6250)

	netA := exos.NewNet(ka, macA, ipA)
	netB := exos.NewNet(kb, macB, ipB)

	osA, err := exos.Boot(ka)
	if err != nil {
		panic(err)
	}
	sockA, err := netA.Bind(osA, rtPort)
	if err != nil {
		panic(err)
	}

	osB, err := exos.Boot(kb)
	if err != nil {
		panic(err)
	}
	sockB, err := netB.Bind(osB, rtPort)
	if err != nil {
		panic(err)
	}
	for i := 0; i < spinners; i++ {
		if _, err := exos.NewSpinner(kb); err != nil {
			panic(err)
		}
	}

	if ash {
		// Only the receiver carries the echo handler; the sender's socket
		// receives replies through the ordinary delivery path.
		if err := sockB.AttachEchoASH(); err != nil {
			panic(err)
		}
	} else {
		// Application-level echo server: replies when scheduled.
		osB.Env.NativeRun = func(k *aegis.Kernel) {
			for {
				data, flow, ok := sockB.TryRecv()
				if !ok {
					return
				}
				sockB.SendTo(macA, flow.SrcIP, flow.SrcPort, data)
			}
		}
	}

	payload := make([]byte, rtPayload)
	var total float64
	for i := 0; i < rtWarmups+rtMeasured; i++ {
		payload[0] = byte(i)
		start := ma.Clock.Cycles()
		sockA.SendTo(macB, ipB, rtPort, payload)
		// Drive the receiver machine until the reply lands back at A.
		guard := 0
		for sockA.Pending() == 0 {
			if !kb.DispatchNative() {
				// Nothing runnable on B (pure-ASH case): the reply must
				// already have been generated in interrupt context.
				if sockA.Pending() == 0 {
					panic("bench: reply lost")
				}
				break
			}
			if guard++; guard > 100000 {
				panic("bench: no reply after 100000 receiver rounds")
			}
		}
		data, _, _ := sockA.TryRecv()
		if len(data) != rtPayload || data[0] != byte(i) {
			panic("bench: reply payload mismatch")
		}
		if i >= rtWarmups {
			total += ma.Micros(ma.Clock.Cycles() - start)
		}
		seg.Sync()
	}
	return total / rtMeasured
}

// ultrixRoundTrip is the kernel-socket baseline.
func ultrixRoundTrip(spinners int) float64 {
	seg := ether.NewSegment()
	ma, ka := newUltrix()
	mb, kb := newUltrix()
	seg.Attach(ma)
	seg.Attach(mb)
	ka.M.Timer.Arm(6250)
	kb.M.Timer.Arm(6250)

	pa := ka.NewProc(nil)
	sockA := ka.NewSocket(pa, macA, ipA, rtPort)
	pb := kb.NewProc(nil)
	sockB := kb.NewSocket(pb, macB, ipB, rtPort)
	for i := 0; i < spinners; i++ {
		sp := kb.NewProc(nil)
		sp.NativeRun = func(k *ultrix.Kernel) { k.M.Clock.Tick(6250) }
	}
	pb.NativeRun = func(k *ultrix.Kernel) {
		for {
			data, flow, ok := sockB.TryRecv()
			if !ok {
				return
			}
			sockB.Sendto(macA, flow.SrcIP, flow.SrcPort, data)
		}
	}

	payload := make([]byte, rtPayload)
	var total float64
	for i := 0; i < rtWarmups+rtMeasured; i++ {
		payload[0] = byte(i)
		start := ma.Clock.Cycles()
		sockA.Sendto(macB, ipB, rtPort, payload)
		guard := 0
		for {
			kb.RunRound()
			if data, _, ok := sockA.TryRecv(); ok {
				if len(data) != rtPayload || data[0] != byte(i) {
					panic("bench: ultrix reply mismatch")
				}
				break
			}
			if guard++; guard > 100000 {
				panic("bench: ultrix reply lost")
			}
		}
		if i >= rtWarmups {
			total += ma.Micros(ma.Clock.Cycles() - start)
		}
		seg.Sync()
	}
	return total / rtMeasured
}

// Table11 is the headline network comparison. Paper (DEC5000/125s,
// 60-byte UDP over Ethernet): ExOS/ASH 259 us, ExOS 320 us, Ultrix 3400*,
// FRPC 340 us (DEC5000/200); wire lower bound 253 us. (*the paper's
// Ultrix number includes its full socket stack.)
func Table11() *Table {
	t := &Table{ID: "Table 11", Title: "UDP round-trip over Ethernet (measured, simulated us)",
		Cols: []string{"measured", "paper"}}
	ash := exosRoundTrip(0, true)
	noASH := exosRoundTrip(0, false)
	ult := ultrixRoundTrip(0)
	t.Add("ExOS with echo ASH", Us(ash), Us(259))
	t.Add("ExOS, application echo", Us(noASH), Us(320))
	t.Add("Ultrix-model sockets", Us(ult), Us(3400))
	t.Add("FRPC on DEC5000/200 (published)", NA("not implemented"), Us(340))
	t.Add("wire lower bound (2 traversals)", Us(2*float64(ether.DefaultWireCycles)/25), Us(253))
	t.Note("the ASH reply is generated in the kernel's interrupt context; no receiver scheduling occurs")
	return t
}

// Figure2 sweeps the number of active receiver processes: with an ASH the
// round trip is flat; without, the reply waits for the scheduler, so
// latency grows linearly with the run queue.
func Figure2() *Table {
	t := &Table{ID: "Figure 2", Title: "Round-trip vs. active receiver processes (measured, simulated us)",
		Cols: []string{"ExOS w/ ASH", "ExOS w/o ASH"}}
	for n := 0; n <= 8; n += 2 {
		withASH := exosRoundTrip(n, true)
		without := exosRoundTrip(n, false)
		t.Add(fmt.Sprintf("%d competing processes", n), Us(withASH), Us(without))
	}
	t.Note("paper Figure 2 shows the same shape: flat with ASHs, linear growth without")
	return t
}
