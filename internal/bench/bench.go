// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5-§7) against the simulated machines,
// printing paper values next to measured ones. Measured values are
// *simulated microseconds*: cycles on the machine's clock divided by its
// clock rate (25 MHz unless stated). Paper values are quoted constants and
// are labelled as such — they are never produced by the simulator.
package bench

import (
	"fmt"
	"math"
	"strings"
)

// Value is one cell of a results table.
type Value struct {
	V    float64
	Unit string
	NA   bool
	Note string
}

// Us makes a microseconds cell.
func Us(v float64) Value { return Value{V: v, Unit: "us"} }

// N makes a unitless numeric cell.
func N(v float64) Value { return Value{V: v} }

// X makes a ratio cell ("×").
func X(v float64) Value { return Value{V: v, Unit: "x"} }

// NA makes an unavailable cell (with an optional reason).
func NA(note string) Value { return Value{NA: true, Note: note} }

// Str renders the cell. The zero Value renders empty (used as a spacer in
// rows where a column does not apply).
func (v Value) Str() string {
	if v == (Value{}) {
		return ""
	}
	if !v.NA && v.V == 0 && v.Unit == "" && v.Note != "" {
		return v.Note // text-only cell
	}
	if v.NA {
		if v.Note != "" {
			return "n/a (" + v.Note + ")"
		}
		return "n/a"
	}
	var s string
	switch {
	case v.V == math.Trunc(v.V) && math.Abs(v.V) < 1e6:
		s = fmt.Sprintf("%.0f", v.V)
	case math.Abs(v.V) >= 100:
		s = fmt.Sprintf("%.0f", v.V)
	case math.Abs(v.V) >= 10:
		s = fmt.Sprintf("%.1f", v.V)
	default:
		s = fmt.Sprintf("%.2f", v.V)
	}
	if v.Unit != "" {
		s += " " + v.Unit
	}
	if v.Note != "" {
		s += " (" + v.Note + ")"
	}
	return s
}

// Row is one line of a table.
type Row struct {
	Name  string
	Cells []Value
}

// Table is one experiment's result.
type Table struct {
	ID    string // "Table 2", "Figure 3", ...
	Title string
	Cols  []string // column headings, not counting the row-name column
	Rows  []Row
	Notes []string

	// PaperRefs maps "row/col" metric names to the value the paper
	// reports for that measurement (quoted constants, never produced by
	// the simulator). The BENCH JSON exporter attaches them so every
	// measured distribution carries its paper reference.
	PaperRefs map[string]float64
}

// Add appends a row.
func (t *Table) Add(name string, cells ...Value) {
	t.Rows = append(t.Rows, Row{Name: name, Cells: cells})
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// PaperRef records the paper's reported value for the metric named
// "row/col" (see MetricName).
func (t *Table) PaperRef(row, col string, v float64) {
	if t.PaperRefs == nil {
		t.PaperRefs = make(map[string]float64)
	}
	t.PaperRefs[MetricName(row, col)] = v
}

// MetricName is the canonical "row/col" identifier of one table cell in
// the BENCH JSON schema.
func MetricName(row, col string) string { return row + "/" + col }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	headers := append([]string{""}, t.Cols...)
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		line := make([]string, len(headers))
		line[0] = row.Name
		for c, v := range row.Cells {
			if c+1 < len(line) {
				line[c+1] = v.Str()
			}
		}
		for i, s := range line {
			if len(s) > width[i] {
				width[i] = len(s)
			}
		}
		cells[r] = line
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeLine := func(line []string) {
		for i, s := range line {
			if i == 0 {
				fmt.Fprintf(&b, "  %-*s", width[i], s)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], s)
			}
		}
		b.WriteByte('\n')
	}
	writeLine(headers)
	for _, line := range cells {
		writeLine(line)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"Table 1", "Experimental platforms", Table1},
		{"Table 2", "Null procedure and system call", Table2},
		{"Table 3", "Aegis primitive operations", Table3},
		{"Table 4", "Exception dispatch", Table4},
		{"Table 5", "Exception dispatch by kind", Table5},
		{"Table 6", "Protected control transfer", Table6},
		{"Table 7", "Packet-filter demultiplexing (10 TCP/IP filters)", Table7},
		{"Table 8", "IPC abstractions", Table8},
		{"Table 9", "150x150 matrix multiplication", Table9},
		{"Table 10", "Appel-Li virtual memory operations (100 pages)", Table10},
		{"Table 11", "UDP round-trip latency over Ethernet (60-byte frames)", Table11},
		{"Table 12", "Extensible RPC: trusted vs untrusting stubs", Table12},
		{"Figure 2", "Round-trip latency vs. active receiver processes", Figure2},
		{"Figure 3", "Application-level stride scheduling, 3:2:1 tickets", Figure3},
		{"Ablation A", "Software TLB on/off", AblationSTLB},
		{"Ablation B", "Filter merging: DPF trie vs per-filter classification", AblationDPFMerge},
		{"Ablation C", "Application-controlled file caching (claim [10])", AblationCaching},
		{"Ablation D", "Stride vs lottery application-level scheduling", AblationSched},
		{"Ablation E", "Application-defined page-table structures", AblationPT},
		{"Ablation F", "ASH integrated layer processing (§5.5.2 / [22])", AblationILP},
		{"Ablation G", "Cross-machine DSM over the fast primitives", AblationDSM},
	}
}

// CSV renders the table as comma-separated values (plotting-friendly
// output for the figures; `aegisbench -format csv`).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString("row")
	for _, c := range t.Cols {
		b.WriteString("," + esc(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(esc(r.Name))
		for i := range t.Cols {
			cell := ""
			if i < len(r.Cells) {
				cell = r.Cells[i].Str()
			}
			b.WriteString("," + esc(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
