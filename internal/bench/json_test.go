package bench

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// fakeExp builds a deterministic synthetic experiment: one measured time
// row, one paper-constant row, one ratio row, one n/a cell, one text-only
// cell. scale lets tests fabricate a "regressed" run of the same shape.
func fakeExp(scale float64) Experiment {
	return Experiment{ID: "Table T", Title: "synthetic", Run: func() *Table {
		t := &Table{ID: "Table T", Title: "synthetic",
			Cols: []string{"measured", "paper"}}
		t.Add("op", Us(2.0*scale), Us(1.6))
		t.Add("ratio", X(3.5*scale), Value{})
		t.Add("missing", NA("no interface"), Value{})
		t.Add("comment", Value{Note: "text only"}, Value{})
		t.PaperRef("op", "measured", 1.6)
		t.Note("a footnote")
		return t
	}}
}

func TestCollectJSONShape(t *testing.T) {
	f := CollectJSON([]Experiment{fakeExp(1)}, 3, "testbox")
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f.Schema != SchemaName || f.SchemaVersion != SchemaVersion {
		t.Fatalf("discriminator %q v%d", f.Schema, f.SchemaVersion)
	}
	if f.Platform != "testbox" || f.Trials != 3 {
		t.Fatalf("platform %q trials %d", f.Platform, f.Trials)
	}
	if len(f.Experiments) != 1 {
		t.Fatalf("experiments = %d", len(f.Experiments))
	}
	e := f.Experiments[0]
	if len(e.Notes) != 1 || e.Notes[0] != "a footnote" {
		t.Fatalf("notes = %v", e.Notes)
	}
	// Numeric cells only: op/measured, op/paper, ratio/measured — plus
	// the synthesized host wall-clock metric. The n/a and text-only
	// cells and the spacer cells must not become metrics.
	want := map[string]struct {
		unit, source string
		v            float64
		paper        bool
	}{
		"op/measured":    {"us", SourceMeasured, 2.0, true},
		"op/paper":       {"us", SourcePaper, 1.6, false},
		"ratio/measured": {"x", SourceMeasured, 3.5, false},
	}
	if len(e.Metrics) != len(want)+1 {
		t.Fatalf("got %d metrics, want %d: %+v", len(e.Metrics), len(want)+1, e.Metrics)
	}
	for _, m := range e.Metrics {
		if m.Name == HostMetricName {
			if m.Unit != "ns" || m.Source != SourceHost {
				t.Errorf("%s: unit %q source %q, want ns host", m.Name, m.Unit, m.Source)
			}
			if m.Trials != 3 || len(m.Samples) != 3 {
				t.Errorf("%s: trials %d samples %d", m.Name, m.Trials, len(m.Samples))
			}
			for _, s := range m.Samples {
				if s < 0 {
					t.Errorf("%s: negative wall-clock sample %g", m.Name, s)
				}
			}
			continue
		}
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected metric %q", m.Name)
		}
		if m.Unit != w.unit || m.Source != w.source {
			t.Errorf("%s: unit %q source %q, want %q %q", m.Name, m.Unit, m.Source, w.unit, w.source)
		}
		if m.Trials != 3 || len(m.Samples) != 3 {
			t.Errorf("%s: trials %d samples %d", m.Name, m.Trials, len(m.Samples))
		}
		// Deterministic: every sample equal, so all stats collapse.
		for _, s := range m.Samples {
			if s != w.v {
				t.Errorf("%s: sample %g, want %g", m.Name, s, w.v)
			}
		}
		if m.Min != w.v || math.Abs(m.Mean-w.v) > 1e-9 || m.P50 != w.v || m.P99 != w.v || m.Max != w.v {
			t.Errorf("%s: stats %g/%g/%g/%g/%g, want all %g", m.Name, m.Min, m.Mean, m.P50, m.P99, m.Max, w.v)
		}
		if w.paper {
			if m.Paper == nil || *m.Paper != 1.6 {
				t.Errorf("%s: paper ref %v, want 1.6", m.Name, m.Paper)
			}
		} else if m.Paper != nil {
			t.Errorf("%s: unexpected paper ref %g", m.Name, *m.Paper)
		}
	}
}

func TestCollectJSONRoundTripsThroughEncoding(t *testing.T) {
	f := CollectJSON([]Experiment{fakeExp(1)}, 2, "testbox")
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&back); err != nil {
		t.Fatalf("Validate after round trip: %v", err)
	}
	if !strings.Contains(string(data), `"schema": "aegis-bench"`) {
		t.Fatalf("discriminator missing from encoding:\n%s", data)
	}
}

func TestSampleStats(t *testing.T) {
	min, mean, p50, p99, max := sampleStats([]float64{5, 1, 3, 2, 4})
	if min != 1 || max != 5 || mean != 3 || p50 != 3 || p99 != 5 {
		t.Fatalf("got %g %g %g %g %g", min, mean, p50, p99, max)
	}
	min, mean, p50, p99, max = sampleStats([]float64{7})
	if min != 7 || mean != 7 || p50 != 7 || p99 != 7 || max != 7 {
		t.Fatalf("single sample: got %g %g %g %g %g", min, mean, p50, p99, max)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	good := func() *File { return CollectJSON([]Experiment{fakeExp(1)}, 2, "x") }
	cases := []struct {
		name   string
		break_ func(*File)
	}{
		{"wrong schema", func(f *File) { f.Schema = "not-bench" }},
		{"wrong version", func(f *File) { f.SchemaVersion = 99 }},
		{"zero trials", func(f *File) { f.Trials = 0 }},
		{"no experiments", func(f *File) { f.Experiments = nil }},
		{"empty id", func(f *File) { f.Experiments[0].ID = "" }},
		{"dup experiment", func(f *File) { f.Experiments = append(f.Experiments, f.Experiments[0]) }},
		{"empty metric name", func(f *File) { f.Experiments[0].Metrics[0].Name = "" }},
		{"dup metric", func(f *File) {
			e := &f.Experiments[0]
			e.Metrics = append(e.Metrics, e.Metrics[0])
		}},
		{"bad source", func(f *File) { f.Experiments[0].Metrics[0].Source = "vibes" }},
		{"trials mismatch", func(f *File) { f.Experiments[0].Metrics[0].Trials = 7 }},
		{"sample count", func(f *File) {
			m := &f.Experiments[0].Metrics[0]
			m.Samples = m.Samples[:1]
		}},
		{"unordered stats", func(f *File) { f.Experiments[0].Metrics[0].Min = 1e9 }},
		{"mean out of range", func(f *File) { f.Experiments[0].Metrics[0].Mean = -1 }},
	}
	for _, tc := range cases {
		f := good()
		if err := Validate(f); err != nil {
			t.Fatalf("%s: baseline invalid: %v", tc.name, err)
		}
		tc.break_(f)
		if err := Validate(f); err == nil {
			t.Errorf("%s: Validate accepted a broken file", tc.name)
		}
	}
}

func TestDiffSelfCompareIsClean(t *testing.T) {
	f := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	r := Diff(f, f, 0) // 0% threshold: any delta at all would trip
	if !r.OK() {
		t.Fatalf("self-compare failed:\n%s", r.Render())
	}
	if len(r.Regressions) != 0 || len(r.Improvements) != 0 ||
		len(r.MissingInNew) != 0 || len(r.AddedInNew) != 0 {
		t.Fatalf("self-compare not clean:\n%s", r.Render())
	}
	if r.Compared != 1 { // only op/measured is gated (us + measured)
		t.Fatalf("Compared = %d, want 1", r.Compared)
	}
}

func TestDiffFlagsInflatedMetric(t *testing.T) {
	old := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	inflated := CollectJSON([]Experiment{fakeExp(1.10)}, 2, "x") // +10%
	r := Diff(old, inflated, 0.05)
	if r.OK() {
		t.Fatalf("10%% inflation passed a 5%% gate:\n%s", r.Render())
	}
	// Both gated fields (min and p50) of op/measured regressed; the ratio
	// row and the paper column moved too but are not gated.
	if len(r.Regressions) != 2 {
		t.Fatalf("regressions = %d, want 2 (min+p50):\n%s", len(r.Regressions), r.Render())
	}
	for _, d := range r.Regressions {
		if d.Metric != "op/measured" {
			t.Errorf("gated wrong metric %q", d.Metric)
		}
		if math.Abs(d.Delta-0.10) > 1e-9 {
			t.Errorf("%s delta %g, want 0.10", d.Field, d.Delta)
		}
	}
	if !strings.Contains(r.Render(), "gate: FAIL") {
		t.Errorf("Render lacks FAIL marker:\n%s", r.Render())
	}
	// The same inflation under a looser gate passes and is not even an
	// improvement.
	if r := Diff(old, inflated, 0.20); !r.OK() {
		t.Fatalf("10%% inflation failed a 20%% gate:\n%s", r.Render())
	}
}

func TestDiffReportsImprovementAndChurn(t *testing.T) {
	old := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	better := CollectJSON([]Experiment{fakeExp(0.5)}, 2, "x")
	r := Diff(old, better, 0.05)
	if !r.OK() {
		t.Fatalf("speedup flagged as regression:\n%s", r.Render())
	}
	if len(r.Improvements) != 2 {
		t.Fatalf("improvements = %d, want 2:\n%s", len(r.Improvements), r.Render())
	}

	// A gated metric vanishing or appearing is churn, not a gate failure.
	renamed := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	renamed.Experiments[0].Metrics[0].Name = "op2/measured"
	r = Diff(old, renamed, 0.05)
	if !r.OK() {
		t.Fatalf("churn failed the gate:\n%s", r.Render())
	}
	if len(r.MissingInNew) != 1 || len(r.AddedInNew) != 1 {
		t.Fatalf("churn not reported:\n%s", r.Render())
	}
}

func TestRelDelta(t *testing.T) {
	if d := relDelta(0, 0); d != 0 {
		t.Errorf("relDelta(0,0) = %g", d)
	}
	if d := relDelta(0, 1); !math.IsInf(d, 1) {
		t.Errorf("relDelta(0,1) = %g, want +Inf", d)
	}
	if d := relDelta(2, 3); d != 0.5 {
		t.Errorf("relDelta(2,3) = %g", d)
	}
	if d := relDelta(4, 2); d != -0.5 {
		t.Errorf("relDelta(4,2) = %g", d)
	}
}

func TestMetricSource(t *testing.T) {
	cases := []struct {
		row, col, want string
	}{
		{"op", "measured", SourceMeasured},
		{"op", "paper", SourcePaper},
		{"L3 scaled by SPECint92 (paper)", "time", SourcePaper},
		{"dirty", "ExOS/Aegis", SourceMeasured},
	}
	for _, c := range cases {
		if got := metricSource(c.row, c.col); got != c.want {
			t.Errorf("metricSource(%q, %q) = %q, want %q", c.row, c.col, got, c.want)
		}
	}
}

// TestBenchJSONOverRealExperiment exercises the full path on an actual
// simulator experiment: Table 2 collected over 2 trials must validate,
// carry its paper references, and self-diff clean — the deterministic
// simulator yields identical samples across trials.
func TestBenchJSONOverRealExperiment(t *testing.T) {
	exps := []Experiment{{ID: "Table 2", Title: "null calls", Run: Table2}}
	f := CollectJSON(exps, 2, "test")
	if err := Validate(f); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var sys *MetricJSON
	for i, m := range f.Experiments[0].Metrics {
		if m.Name == "system call (null/getpid)/Aegis" {
			sys = &f.Experiments[0].Metrics[i]
		}
	}
	if sys == nil {
		t.Fatalf("syscall metric missing: %+v", f.Experiments[0].Metrics)
	}
	if sys.Paper == nil || *sys.Paper != 1.6 {
		t.Errorf("syscall paper ref = %v, want 1.6", sys.Paper)
	}
	if sys.Samples[0] != sys.Samples[1] {
		t.Errorf("simulator nondeterministic: samples %v", sys.Samples)
	}
	if r := Diff(f, f, 0); !r.OK() {
		t.Errorf("self-diff failed:\n%s", r.Render())
	}
}

// TestBenchOutputIdenticalWithMetricsOff is the harness-level half of the
// observation contract (the kernel-level half is aegis.TestMetricsOffIsFree):
// turning histogram recording off must leave every rendered number of a
// measured table byte-for-byte identical, because recording never advances
// the simulated clock.
func TestBenchOutputIdenticalWithMetricsOff(t *testing.T) {
	if MetricsOff {
		t.Fatal("MetricsOff already set")
	}
	on := Table2().Format()
	MetricsOff = true
	defer func() { MetricsOff = false }()
	off := Table2().Format()
	if on != off {
		t.Fatalf("Table 2 output differs with metrics off:\n--- metrics on ---\n%s\n--- metrics off ---\n%s", on, off)
	}
}

// TestDiffHostDeltas: host wall-clock metrics are reported (best-of-
// trials) but never gate, no matter how large the movement — host time
// varies with the machine; only simulated time wears the threshold.
func TestDiffHostDeltas(t *testing.T) {
	old := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	slower := CollectJSON([]Experiment{fakeExp(1)}, 2, "x")
	for ei := range slower.Experiments {
		for mi, m := range slower.Experiments[ei].Metrics {
			if m.Name == HostMetricName {
				m.Min *= 100
				m.Mean *= 100
				m.P50 *= 100
				m.P99 *= 100
				m.Max *= 100
				slower.Experiments[ei].Metrics[mi] = m
			}
		}
	}
	r := Diff(old, slower, 0)
	if !r.OK() {
		t.Fatalf("host wall-clock movement tripped the gate:\n%s", r.Render())
	}
	if len(r.HostDeltas) != 1 {
		t.Fatalf("host deltas = %d, want 1:\n%s", len(r.HostDeltas), r.Render())
	}
	d := r.HostDeltas[0]
	if d.Metric != HostMetricName || d.Field != "min" || d.Delta <= 0 {
		t.Errorf("host delta = %+v", d)
	}
	if !strings.Contains(r.Render(), "host (not gated)") {
		t.Errorf("Render lacks the host section:\n%s", r.Render())
	}
}
