package bench

import (
	"strings"
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

// Host-side performance harness for the two execution engines, and the
// table-level half of the invariance contract. The benchmarks measure
// host wall-clock (ns/op) for the paper's heaviest workloads under the
// fast engine and the reference engine:
//
//	go test ./internal/bench -bench HostMatmul -run xx
//	go test ./internal/bench -bench HostAppel  -run xx
//
// The Fast/Ref ratio is the speedup the host-speed fast path buys; the
// simulated numbers are identical either way (TestEngineInvarianceTables
// below, plus the full-run gate in scripts/check.sh and `make invariance`).

// benchMatmulN keeps the per-iteration cost reasonable for `go test
// -bench` while staying large enough (3 × 16 pages) to exercise real TLB
// pressure.
const benchMatmulN = 64

func benchmarkHostMatmul(b *testing.B, slowPath bool) {
	m, _, run, err := aegisMatmul(benchMatmulN)
	if err != nil {
		b.Fatal(err)
	}
	m.SetSlowPath(slowPath)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkHostMatmulFast(b *testing.B) { benchmarkHostMatmul(b, false) }
func BenchmarkHostMatmulRef(b *testing.B)  { benchmarkHostMatmul(b, true) }

// appelSweepSource is the interpreted Appel–Li-style workload (the
// pattern behind Table 10's numbers, e.g. a concurrent GC): sweep a
// working set larger than the 64-entry TLB so page visits take capacity
// misses serviced by the ExOS refill handler, write-touch each page,
// then scan the faulted page's contents, for a2 passes.
// a0 = base, a1 = pages, a2 = passes.
const appelSweepSource = `
entry:
	addiu t3, zero, 0      ; pass counter
pass:
	addu  t0, a0, zero     ; addr = base
	addiu t1, zero, 0      ; page counter
page:
	sw    t1, 0(t0)        ; dirty the page (miss + install on most visits)
	addu  t5, t0, zero     ; scan the faulted page
	addiu t6, zero, 256    ; words to scan
scan:
	lw    t4, 0(t5)
	addiu t5, t5, 4
	addiu t6, t6, -1
	bgtz  t6, scan
	addiu t0, t0, 4096     ; next page
	addiu t1, t1, 1
	bne   t1, a1, page
	addiu t3, t3, 1
	bne   t3, a2, pass
	halt
`

func benchmarkHostAppel(b *testing.B, slowPath bool) {
	const passes = 5
	m, k := newAegis()
	m.SetSlowPath(slowPath)
	code, labels, err := asm.AssembleWithLabels(appelSweepSource)
	if err != nil {
		b.Fatal(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		b.Fatal(err)
	}
	os := exos.Attach(k, env)
	for i := 0; i < appelPages; i++ {
		if _, err := os.AllocAndMap(appelBase + uint32(i)*hw.PageSize); err != nil {
			b.Fatal(err)
		}
	}
	entry := uint32(labels["entry"])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.PC = entry
		m.CPU.PC = entry
		m.CPU.SetReg(hw.RegA0, appelBase)
		m.CPU.SetReg(hw.RegA1, appelPages)
		m.CPU.SetReg(hw.RegA2, passes)
		runToHalt(k.Interp, uint64(passes)*appelPages*1024+4096)
	}
}

func BenchmarkHostAppelFast(b *testing.B) { benchmarkHostAppel(b, false) }
func BenchmarkHostAppelRef(b *testing.B)  { benchmarkHostAppel(b, true) }

// TestEngineInvarianceTables renders benchmark tables under the fast
// engine and again with EXO_SLOWPATH=1 and requires the text output —
// every simulated number the repo reports — to be byte-identical. Short
// mode covers the trap-heavy tables; the full run sweeps every
// experiment (with a small Table 9 matrix, like the full-sweep test).
func TestEngineInvarianceTables(t *testing.T) {
	old := Table9MatrixN
	Table9MatrixN = 32
	defer func() { Table9MatrixN = old }()
	shortSet := map[string]bool{"Table 2": true, "Table 4": true, "Table 5": true, "Table 10": true}
	for _, e := range All() {
		if testing.Short() && !shortSet[e.ID] {
			continue
		}
		t.Setenv("EXO_SLOWPATH", "")
		fast := e.Run().Format()
		t.Setenv("EXO_SLOWPATH", "1")
		ref := e.Run().Format()
		if fast != ref {
			t.Errorf("%s: output differs between engines:\n--- fast ---\n%s\n--- reference ---\n%s",
				e.ID, fast, ref)
		}
		if !strings.Contains(fast, e.ID) {
			t.Errorf("%s: output missing its ID", e.ID)
		}
	}
}
