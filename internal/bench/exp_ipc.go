package bench

import (
	"exokernel/internal/exos"
)

// Table8 reproduces the IPC abstraction comparison (§6.1): pipes, shared
// memory and LRPC built by *application code* on Aegis primitives versus
// the monolithic kernel's implementations. Paper (DEC2100): ExOS pipe
// 30.9 us vs Ultrix 326 us; shm 12.4 vs 466; lrpc 13.9 vs n/a — "five to
// 40 times faster".
func Table8() *Table {
	t := &Table{ID: "Table 8", Title: "IPC latency, one-way (measured, simulated us)",
		Cols: []string{"ExOS/Aegis", "Ultrix-model", "slowdown"}}
	const iters = 256

	// pipe: ping-pong a word through a pair of pipes.
	{
		_, k := newAegis()
		a, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		b, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		ab1, ab2, err := exos.NewPipe(a, b)
		if err != nil {
			panic(err)
		}
		ba1, ba2, err := exos.NewPipe(b, a)
		if err != nil {
			panic(err)
		}
		exosPipe := perOp(k.M, iters, func() {
			ab1.Write(7)
			v := ab2.Read()
			ba1.Write(v + 1)
			if ba2.Read() != 8 {
				panic("bench: pipe payload mismatch")
			}
		}) / 2

		um, uk := newUltrix()
		pa := uk.NewProc(nil)
		pb := uk.NewProc(nil)
		up1 := uk.NewPipe()
		up2 := uk.NewPipe()
		ultrixPipe := perOp(um, iters, func() {
			up1.WriteWord(pa, 7)
			v, ok := up1.ReadWord(pb)
			if !ok || v != 7 {
				panic("bench: ultrix pipe payload mismatch")
			}
			up2.WriteWord(pb, v+1)
			if w, ok := up2.ReadWord(pa); !ok || w != 8 {
				panic("bench: ultrix pipe payload mismatch")
			}
		}) / 2
		t.Add("pipe", Us(exosPipe), Us(ultrixPipe), X(ultrixPipe/exosPipe))

		// pipe': the specialized single-word variant (§6.1's "pipe'").
		ab1.SetOptimized(true)
		ab2.SetOptimized(true)
		ba1.SetOptimized(true)
		ba2.SetOptimized(true)
		exosPipeOpt := perOp(k.M, iters, func() {
			ab1.Write(7)
			v := ab2.Read()
			ba1.Write(v + 1)
			ba2.Read()
		}) / 2
		t.Add("pipe' (specialized)", Us(exosPipeOpt), NA("no kernel equivalent"), Value{})
	}

	// shm: ping-pong through a shared memory word.
	{
		_, k := newAegis()
		a, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		b, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		sa, sb, err := exos.NewShm(a, b)
		if err != nil {
			panic(err)
		}
		turn := uint32(0)
		exosShm := perOp(k.M, iters, func() {
			turn++
			sa.Store(turn)
			sb.AwaitChange(turn - 1)
			turn++
			sb.Store(turn)
			sa.AwaitChange(turn - 1)
		}) / 2

		// Monolithic shm ping-pong: the data lives in a shared mapping but
		// the *synchronization* needs the kernel (sleep/wakeup crossings
		// plus a context switch each way).
		um, uk := newUltrix()
		pa := uk.NewProc(nil)
		_ = uk.NewProc(nil)
		ultrixShm := perOp(um, iters, func() {
			uk.SleepWakeupPair(pa)
			uk.SleepWakeupPair(pa)
		}) / 2
		t.Add("shm", Us(exosShm), Us(ultrixShm), X(ultrixShm/exosShm))
	}

	// lrpc: four-word call, two-word reply over protected control transfer.
	{
		_, k := newAegis()
		srvOS, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		cliOS, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		srv := exos.NewServer(srvOS)
		srv.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{args[0] + args[1], 0} })
		cli := exos.NewClient(cliOS, srv, false)
		lrpc := perOp(k.M, iters, func() {
			res, err := cli.Call(1, [4]uint32{2, 3, 0, 0})
			if err != nil || res[0] != 5 {
				panic("bench: lrpc failed")
			}
		})
		t.Add("lrpc (round trip)", Us(lrpc), NA("no kernel equivalent"), Value{})
	}

	t.Note("paper (DEC2100): pipe 30.9 vs 326 us; shm 12.4 vs 466 us; lrpc 13.9 us — factors of 5-40x")
	return t
}

// Table12 reproduces the extensibility experiment (§7.1): tlrpc trusts the
// server to preserve callee-saved registers, trading protection the
// application does not need for time. Paper: tlrpc 8.6/6.3 us vs lrpc
// 13.9/10.4 us (DEC2100/DEC3100).
func Table12() *Table {
	t := &Table{ID: "Table 12", Title: "Trusted vs untrusting RPC, round trip (measured, simulated us)",
		Cols: []string{"time"}}
	const iters = 256
	_, k := newAegis()
	srvOS, err := exos.Boot(k)
	if err != nil {
		panic(err)
	}
	cliOS, err := exos.Boot(k)
	if err != nil {
		panic(err)
	}
	srv := exos.NewServer(srvOS)
	srv.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{args[0] * 2, 0} })

	lcli := exos.NewClient(cliOS, srv, false)
	lrpc := perOp(k.M, iters, func() {
		if _, err := lcli.Call(1, [4]uint32{21}); err != nil {
			panic(err)
		}
	})

	tcliOS, err := exos.Boot(k)
	if err != nil {
		panic(err)
	}
	tcli := exos.NewClient(tcliOS, srv, true)
	tlrpc := perOp(k.M, iters, func() {
		if _, err := tcli.Call(1, [4]uint32{21}); err != nil {
			panic(err)
		}
	})
	t.Add("lrpc (untrusting stub)", Us(lrpc))
	t.Add("tlrpc (trusted server)", Us(tlrpc))
	t.Add("saving", X(lrpc/tlrpc))
	t.Note("paper: tlrpc 8.6 us vs lrpc 13.9 us on the DEC2100 (~1.6x)")
	return t
}
