package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Machine-readable benchmark output: the BENCH JSON schema. Where the
// paper's tables (and our text/CSV renderings of them) collapse each
// measurement to one number, the JSON form carries the full trial
// distribution — min/mean/p50/p99/max over N independent repetitions —
// plus the paper's reference value where the table records one. This is
// the file cmd/benchdiff gates perf regressions against: every future
// change to a hot path is judged by comparing two of these files.
//
// Schema (version 1):
//
//	{
//	  "schema": "aegis-bench",          // constant discriminator
//	  "schema_version": 1,
//	  "platform": "...",                // simulated machine
//	  "trials": N,                      // repetitions per experiment
//	  "experiments": [{
//	    "id": "Table 2", "title": "...",
//	    "notes": ["..."],               // table footnotes (incl. paper values as prose)
//	    "metrics": [{
//	      "name": "row/col",            // canonical metric identifier
//	      "row": "...", "col": "...",
//	      "unit": "us" | "x" | "ns" | "",      // simulated µs, ratio, host ns, unitless
//	      "source": "measured"|"paper"|"host", // only measured µs metrics are gated
//	      "paper": 1.6,                 // optional: the paper's reference value
//	      "trials": N,
//	      "samples": [...],             // one value per trial, in trial order
//	      "min": .., "mean": .., "p50": .., "p99": .., "max": ..
//	    }]
//	  }]
//	}
//
// The simulator is deterministic, so today all samples of a simulated
// metric are equal and min == p50 == max; the distribution fields exist
// so that the moment any nondeterminism (or real tail behavior) enters
// the pipeline, it is visible in the trajectory rather than averaged
// away. The one deliberately nondeterministic metric is "host/wall_ns"
// (source "host"): each experiment's host-side wall-clock per trial,
// recorded as an informational trajectory and never gated.

// SchemaName discriminates BENCH JSON files from other JSON.
const SchemaName = "aegis-bench"

// SchemaVersion is bumped on any incompatible schema change.
const SchemaVersion = 1

// File is the top-level BENCH JSON document.
type File struct {
	Schema        string           `json:"schema"`
	SchemaVersion int              `json:"schema_version"`
	Platform      string           `json:"platform"`
	Trials        int              `json:"trials"`
	Experiments   []ExperimentJSON `json:"experiments"`
}

// ExperimentJSON is one experiment's structured result.
type ExperimentJSON struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Notes   []string     `json:"notes,omitempty"`
	Metrics []MetricJSON `json:"metrics"`
}

// MetricJSON is one table cell's trial distribution.
type MetricJSON struct {
	Name    string    `json:"name"`
	Row     string    `json:"row"`
	Col     string    `json:"col"`
	Unit    string    `json:"unit"`
	Source  string    `json:"source"`
	Paper   *float64  `json:"paper,omitempty"`
	Trials  int       `json:"trials"`
	Samples []float64 `json:"samples"`
	Min     float64   `json:"min"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P99     float64   `json:"p99"`
	Max     float64   `json:"max"`
}

// Metric source values. Only "measured" time metrics are gated by
// cmd/benchdiff; "paper" marks quoted constants and "host" marks
// informational host-side wall-clock measurements (nondeterministic by
// nature, tracked as a trajectory, never gated).
const (
	SourceMeasured = "measured"
	SourcePaper    = "paper"
	SourceHost     = "host"
)

// HostMetricName is the per-experiment host wall-clock metric: the
// host-side nanoseconds one run of the experiment took, one sample per
// trial. It rides alongside the simulated-time metrics so the BENCH
// files track a host-perf trajectory, but it is never part of the
// regression gate (see gated in diff.go) and never appears in the text
// or CSV tables — simulated output stays byte-identical across hosts.
var HostMetricName = MetricName("host", "wall_ns")

// metricSource classifies a cell: rows or columns quoting the paper
// ("L3 ... (paper)", the "paper" column of Table 7) are labelled so
// benchdiff never gates on a constant.
func metricSource(rowName, colName string) string {
	if strings.Contains(strings.ToLower(rowName), "paper") ||
		strings.Contains(strings.ToLower(colName), "paper") {
		return SourcePaper
	}
	return SourceMeasured
}

// sampleStats summarizes one metric's trial samples: min/mean/p50/p99/max
// with nearest-rank quantiles over the sorted copy.
func sampleStats(samples []float64) (min, mean, p50, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0, 0, 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return sorted[0], sum / float64(len(sorted)), rank(0.50), rank(0.99), sorted[len(sorted)-1]
}

// numericCell reports whether a cell is a gateable number (not a spacer,
// not n/a, not a text-only note).
func numericCell(v Value) bool {
	if v == (Value{}) || v.NA {
		return false
	}
	if v.V == 0 && v.Unit == "" && v.Note != "" {
		return false // text-only cell
	}
	return true
}

// CollectJSON runs each experiment `trials` times and aggregates every
// numeric table cell into a metric with its trial distribution. The
// metric set is defined by the first trial; a later trial whose table
// shape diverges is a harness bug and panics.
func CollectJSON(exps []Experiment, trials int, platform string) *File {
	if trials < 1 {
		trials = 1
	}
	f := &File{Schema: SchemaName, SchemaVersion: SchemaVersion, Platform: platform, Trials: trials}
	for _, e := range exps {
		var ej *ExperimentJSON
		var wall []float64        // host ns per trial
		index := map[string]int{} // metric name -> index in ej.Metrics
		for trial := 0; trial < trials; trial++ {
			hostStart := time.Now()
			tb := e.Run()
			wall = append(wall, float64(time.Since(hostStart).Nanoseconds()))
			if trial == 0 {
				ej = &ExperimentJSON{ID: tb.ID, Title: tb.Title, Notes: tb.Notes}
			}
			for _, row := range tb.Rows {
				for c, cell := range row.Cells {
					if c >= len(tb.Cols) || !numericCell(cell) {
						continue
					}
					name := MetricName(row.Name, tb.Cols[c])
					i, seen := index[name]
					if !seen {
						if trial != 0 {
							panic(fmt.Sprintf("bench: %s: metric %q appeared in trial %d but not trial 0", tb.ID, name, trial))
						}
						m := MetricJSON{
							Name:   name,
							Row:    row.Name,
							Col:    tb.Cols[c],
							Unit:   cell.Unit,
							Source: metricSource(row.Name, tb.Cols[c]),
							Trials: trials,
						}
						if ref, ok := tb.PaperRefs[name]; ok {
							r := ref
							m.Paper = &r
						}
						index[name] = len(ej.Metrics)
						i = len(ej.Metrics)
						ej.Metrics = append(ej.Metrics, m)
					}
					ej.Metrics[i].Samples = append(ej.Metrics[i].Samples, cell.V)
				}
			}
		}
		ej.Metrics = append(ej.Metrics, MetricJSON{
			Name:    HostMetricName,
			Row:     "host",
			Col:     "wall_ns",
			Unit:    "ns",
			Source:  SourceHost,
			Trials:  trials,
			Samples: wall,
		})
		for i := range ej.Metrics {
			m := &ej.Metrics[i]
			if len(m.Samples) != trials {
				panic(fmt.Sprintf("bench: %s: metric %q has %d samples over %d trials", ej.ID, m.Name, len(m.Samples), trials))
			}
			m.Min, m.Mean, m.P50, m.P99, m.Max = sampleStats(m.Samples)
		}
		f.Experiments = append(f.Experiments, *ej)
	}
	return f
}
