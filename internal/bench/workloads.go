package bench

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/asm"
	"exokernel/internal/exos"
	"exokernel/internal/fleet"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
	"exokernel/internal/prof"
	"exokernel/internal/ultrix"
	"exokernel/internal/vm"
)

// Shared machinery: machine construction, measurement, and the VM
// workloads used by several experiments.

// Tracer, when non-nil, is attached to every Aegis kernel the harness
// boots, so a whole experiment runs under the flight recorder
// (aegisbench -trace, cmd/exotrace). Each experiment boots fresh
// machines whose clocks start at zero; tracing one experiment at a time
// gives the cleanest timeline.
var Tracer *ktrace.Recorder

// MetricsOff, when true, disables kernel latency histograms on every
// Aegis kernel the harness boots. Histogram recording is free on the
// simulated clock (the ktrace observation contract), so this must never
// change a measured number — TestBenchOutputIdenticalWithMetricsOff pins
// that by comparing byte-identical table output both ways.
var MetricsOff bool

// Bus, when non-nil, registers every Aegis kernel the harness boots as a
// fleet member (m1, m2, ...), so cmd/exotop and `aegisbench -top` can
// render a fleet view of a whole experiment run. Registration is pure
// observation — the fleet bus never ticks a simulated clock — so wiring
// it cannot change a measured number.
var Bus *fleet.Bus

// Prof, when non-nil, is called with each freshly booted machine's name
// ("m1", "m2", ...) and may return a cycle profiler to attach to it
// (aegisbench -prof, cmd/exoprof). Profiling is free on the simulated
// clock — TestProfilingIsFree pins byte-identical output either way.
var Prof func(name string) *prof.Profiler

// bootSeq numbers the Aegis machines booted within one process; it is
// the shared naming sequence for the fleet bus and the profiler hook.
var bootSeq int

// ResetMachineSeq restarts machine naming at m1. Harnesses that run the
// same selection repeatedly (tests, cmd/exoprof) call it so each run
// boots identically-named machines — the condition for byte-identical
// repeated output.
func ResetMachineSeq() { bootSeq = 0 }

// registerFleet wires the requested observers onto a freshly booted
// kernel: fleet-bus membership and/or a per-machine profiler (no-op
// when neither global is set).
func registerFleet(m *hw.Machine, k *aegis.Kernel) {
	if Bus == nil && Prof == nil {
		return
	}
	bootSeq++
	name := fmt.Sprintf("m%d", bootSeq)
	if Bus != nil {
		Bus.Register(name, m, k, Tracer)
	}
	if Prof != nil {
		if p := Prof(name); p != nil {
			k.SetProf(p)
			if Bus != nil {
				Bus.AttachProf(name, p)
			}
		}
	}
}

// newAegis boots Aegis on a fresh primary-platform machine.
func newAegis() (*hw.Machine, *aegis.Kernel) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetTracer(Tracer)
	k.Stats.MetricsOn = !MetricsOff
	registerFleet(m, k)
	return m, k
}

// newUltrix boots the monolithic baseline on identical hardware.
func newUltrix() (*hw.Machine, *ultrix.Kernel) {
	m := hw.NewMachine(hw.DEC5000)
	return m, ultrix.New(m)
}

// usOn measures the simulated time of f on machine m, in microseconds.
func usOn(m *hw.Machine, f func()) float64 {
	w := m.Clock.StartWatch()
	f()
	return m.Micros(w.Elapsed())
}

// perOp runs f iters times and returns the mean simulated microseconds.
func perOp(m *hw.Machine, iters int, f func()) float64 {
	total := usOn(m, func() {
		for i := 0; i < iters; i++ {
			f()
		}
	})
	return total / float64(iters)
}

// runToHalt executes the current environment's VM code until HALT,
// panicking if the program dies instead (an experiment bug, not a result).
func runToHalt(in *vm.Interp, maxSteps uint64) {
	if r := in.Run(maxSteps); r != vm.StopHalt {
		panic(fmt.Sprintf("bench: VM program stopped with %v, want halt", r))
	}
}

// lcg is the deterministic pseudo-random source for workloads (seeded per
// experiment: no wall-clock, no global state).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// perm returns a seeded pseudo-random permutation of [0,n).
func (r *lcg) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// matmulSource is the VM matrix-multiply kernel used by Table 9: plain
// three-loop matmul with all data references through the MMU. Inputs:
// a0=A base, a1=B base, a2=C base, a3=n. C must start zeroed (fresh pages
// are). Row-major int32 matrices.
const matmulSource = `
		nop
	entry:
		addiu s0, zero, 0      ; i
	iloop:
		addiu s1, zero, 0      ; j
	jloop:
		addiu s2, zero, 0      ; k
		addiu t7, zero, 0      ; acc
	kloop:
		; t0 = A[i*n+k]
		mul   t1, s0, a3
		addu  t1, t1, s2
		sll   t1, t1, 2
		addu  t1, t1, a0
		lw    t0, 0(t1)
		; t2 = B[k*n+j]
		mul   t3, s2, a3
		addu  t3, t3, s1
		sll   t3, t3, 2
		addu  t3, t3, a1
		lw    t2, 0(t3)
		mul   t4, t0, t2
		addu  t7, t7, t4
		addiu s2, s2, 1
		bne   s2, a3, kloop
		; C[i*n+j] = acc
		mul   t5, s0, a3
		addu  t5, t5, s1
		sll   t5, t5, 2
		addu  t5, t5, a2
		sw    t7, 0(t5)
		addiu s1, s1, 1
		bne   s1, a3, jloop
		addiu s0, s0, 1
		bne   s0, a3, iloop
		halt
`

// matmulBases are the virtual bases of the three matrices.
var matmulBases = [3]uint32{0x0100_0000, 0x0200_0000, 0x0300_0000}

// matmulSteps bounds interpreter steps for an n×n multiply.
func matmulSteps(n int) uint64 { return uint64(n)*uint64(n)*uint64(n)*24 + 4096 }

// matmulPages is how many pages one n×n int32 matrix spans.
func matmulPages(n int) int {
	return (n*n*4 + hw.PageSize - 1) / hw.PageSize
}

// aegisMatmul builds an Aegis environment, an ExOS instance, and the
// mapped matrices, returning a closure that runs one multiply.
func aegisMatmul(n int) (m *hw.Machine, k *aegis.Kernel, run func(), err error) {
	m, k = newAegis()
	code, labels, err := asm.AssembleWithLabels(matmulSource)
	if err != nil {
		return nil, nil, nil, err
	}
	env, err := k.NewEnv(code)
	if err != nil {
		return nil, nil, nil, err
	}
	os := exos.Attach(k, env)
	for _, base := range matmulBases {
		for p := 0; p < matmulPages(n); p++ {
			if _, err := os.AllocAndMap(base + uint32(p*hw.PageSize)); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	entry := uint32(labels["entry"])
	run = func() {
		env.PC = entry
		m.CPU.PC = entry
		m.CPU.SetReg(hw.RegA0, matmulBases[0])
		m.CPU.SetReg(hw.RegA1, matmulBases[1])
		m.CPU.SetReg(hw.RegA2, matmulBases[2])
		m.CPU.SetReg(hw.RegA3, uint32(n))
		runToHalt(k.Interp, matmulSteps(n))
	}
	return m, k, run, nil
}

// ultrixMatmul is the same workload under the monolithic kernel.
func ultrixMatmul(n int) (m *hw.Machine, run func(), err error) {
	m, k := newUltrix()
	code, labels, err := asm.AssembleWithLabels(matmulSource)
	if err != nil {
		return nil, nil, err
	}
	p := k.NewProc(code)
	for _, base := range matmulBases {
		for pg := 0; pg < matmulPages(n); pg++ {
			if err := k.MapPage(p, base+uint32(pg*hw.PageSize), true); err != nil {
				return nil, nil, err
			}
		}
	}
	entry := uint32(labels["entry"])
	run = func() {
		p.PC = entry
		m.CPU.PC = entry
		m.CPU.SetReg(hw.RegA0, matmulBases[0])
		m.CPU.SetReg(hw.RegA1, matmulBases[1])
		m.CPU.SetReg(hw.RegA2, matmulBases[2])
		m.CPU.SetReg(hw.RegA3, uint32(n))
		runToHalt(k.Interp, matmulSteps(n))
	}
	return m, run, nil
}

// tenFlows builds the ten TCP flows of the Table 7 workload. The paper
// classifies packets destined for the *last* installed filter; flows
// differ in ports and addresses.
func tenFlows() []pkt.Flow {
	flows := make([]pkt.Flow, 10)
	for i := range flows {
		flows[i] = pkt.Flow{
			Proto:   pkt.ProtoTCP,
			SrcIP:   pkt.IP(18, 26, 0, byte(10+i)),
			DstIP:   pkt.IP(18, 26, 0, 1),
			SrcPort: uint16(2000 + i),
			DstPort: uint16(4000 + i),
		}
	}
	return flows
}
