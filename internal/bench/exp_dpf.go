package bench

import (
	"exokernel/internal/dpf"
	"exokernel/internal/mpf"
	"exokernel/internal/pathfinder"
	"exokernel/internal/pkt"
)

// Table7 reproduces the demultiplexing comparison: ten TCP/IP filters
// installed, classify a packet destined for the last one. Paper (measured
// user-space on a DEC5000/200): MPF 35.0 us, PATHFINDER 19.0 us, DPF
// 1.35 us — "DPF is 20 times faster than MPF and 10 times faster than
// PATHFINDER", the gain coming from dynamic code generation.
func Table7() *Table {
	t := &Table{ID: "Table 7", Title: "Packet-filter demultiplexing, 10 TCP/IP filters (simulated us/packet)",
		Cols: []string{"measured", "paper"}}
	flows := tenFlows()
	frame := pkt.Build(pkt.Addr{2}, pkt.Addr{1}, flows[9], []byte("payload"))

	me := mpf.NewEngine()
	pe := pathfinder.NewEngine()
	de := dpf.NewEngine()
	for _, f := range flows {
		if _, err := me.Insert(mpf.FlowProgram(f)); err != nil {
			panic(err)
		}
		if _, err := pe.Insert(pathfinder.FlowPattern(f)); err != nil {
			panic(err)
		}
		if _, err := de.Insert(dpf.FlowFilter(f)); err != nil {
			panic(err)
		}
	}

	classUs := func(classify func([]byte) (dpf.FilterID, uint64, bool)) float64 {
		id, cycles, ok := classify(frame)
		if !ok || id != dpf.FilterID(9) {
			panic("bench: misclassified Table 7 packet")
		}
		return float64(cycles) / 25.0 // cycles → us at 25 MHz
	}
	mU := classUs(me.Classify)
	pU := classUs(pe.Classify)
	dU := classUs(de.Classify)
	t.Add("MPF (interpreted, per-filter)", Us(mU), Us(35.0))
	t.Add("PATHFINDER (interpreted, merged)", Us(pU), Us(19.0))
	t.Add("DPF (compiled, merged)", Us(dU), Us(1.35))
	t.Add("DPF speedup vs MPF", X(mU/dU), X(35.0/1.35))
	t.Add("DPF speedup vs PATHFINDER", X(pU/dU), X(19.0/1.35))
	t.PaperRef("MPF (interpreted, per-filter)", "measured", 35.0)
	t.PaperRef("PATHFINDER (interpreted, merged)", "measured", 19.0)
	t.PaperRef("DPF (compiled, merged)", "measured", 1.35)
	t.Note("wall-clock host-time comparison of the same three engines is in BenchmarkTable7_* (go test -bench)")
	return t
}

// AblationDPFMerge quantifies filter merging separately from compilation:
// the same ten filters classified through (a) the merged compiled trie,
// (b) ten single-filter compiled engines tried in order (compilation
// without merging), and (c) the interpreted merged matcher (merging
// without compilation).
func AblationDPFMerge() *Table {
	t := &Table{ID: "Ablation B", Title: "What buys what: merging vs compilation (simulated us/packet)",
		Cols: []string{"time"}}
	flows := tenFlows()
	frame := pkt.Build(pkt.Addr{2}, pkt.Addr{1}, flows[9], []byte("payload"))

	merged := dpf.NewEngine()
	var singles []*dpf.Engine
	pe := pathfinder.NewEngine()
	for _, f := range flows {
		if _, err := merged.Insert(dpf.FlowFilter(f)); err != nil {
			panic(err)
		}
		e := dpf.NewEngine()
		if _, err := e.Insert(dpf.FlowFilter(f)); err != nil {
			panic(err)
		}
		singles = append(singles, e)
		if _, err := pe.Insert(pathfinder.FlowPattern(f)); err != nil {
			panic(err)
		}
	}

	_, cyc, ok := merged.Classify(frame)
	if !ok {
		panic("bench: merged classify failed")
	}
	t.Add("compiled + merged (DPF)", Us(float64(cyc)/25))

	var linear uint64
	hit := false
	for _, e := range singles {
		_, c, ok := e.Classify(frame)
		linear += c
		if ok {
			hit = true
			break
		}
	}
	if !hit {
		panic("bench: linear classify failed")
	}
	t.Add("compiled, not merged (per-filter)", Us(float64(linear)/25))

	_, pc, ok := pe.Classify(frame)
	if !ok {
		panic("bench: pathfinder classify failed")
	}
	t.Add("merged, not compiled (PATHFINDER)", Us(float64(pc)/25))
	return t
}
