package bench

import (
	"fmt"
	"math"
	"strings"
)

// Validation and comparison of BENCH JSON files — the perf-regression
// gate. cmd/benchdiff is a thin wrapper over Validate and Diff so the
// policy lives here, under test.

// Validate checks that a decoded File is structurally sound against
// schema version 1: right discriminator, coherent trial counts, and
// internally consistent statistics (min ≤ p50 ≤ p99 ≤ max, mean within
// range). A file that fails Validate is not worth diffing.
func Validate(f *File) error {
	if f.Schema != SchemaName {
		return fmt.Errorf("schema %q, want %q", f.Schema, SchemaName)
	}
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("schema_version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Trials < 1 {
		return fmt.Errorf("trials %d, want >= 1", f.Trials)
	}
	if len(f.Experiments) == 0 {
		return fmt.Errorf("no experiments")
	}
	seen := map[string]bool{}
	for _, e := range f.Experiments {
		if e.ID == "" {
			return fmt.Errorf("experiment with empty id")
		}
		if seen[e.ID] {
			return fmt.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		names := map[string]bool{}
		for _, m := range e.Metrics {
			where := fmt.Sprintf("%s metric %q", e.ID, m.Name)
			if m.Name == "" {
				return fmt.Errorf("%s: empty name", e.ID)
			}
			if names[m.Name] {
				return fmt.Errorf("%s: duplicate", where)
			}
			names[m.Name] = true
			if m.Source != SourceMeasured && m.Source != SourcePaper && m.Source != SourceHost {
				return fmt.Errorf("%s: bad source %q", where, m.Source)
			}
			if m.Trials != f.Trials {
				return fmt.Errorf("%s: trials %d != file trials %d", where, m.Trials, f.Trials)
			}
			if len(m.Samples) != m.Trials {
				return fmt.Errorf("%s: %d samples over %d trials", where, len(m.Samples), m.Trials)
			}
			const eps = 1e-9
			if m.Min > m.P50+eps || m.P50 > m.P99+eps || m.P99 > m.Max+eps {
				return fmt.Errorf("%s: unordered stats min=%g p50=%g p99=%g max=%g", where, m.Min, m.P50, m.P99, m.Max)
			}
			if m.Mean < m.Min-eps || m.Mean > m.Max+eps {
				return fmt.Errorf("%s: mean %g outside [min, max]", where, m.Mean)
			}
		}
	}
	return nil
}

// DiffEntry is one metric field that moved between two BENCH files.
type DiffEntry struct {
	Experiment string
	Metric     string
	Field      string // "min" or "p50"
	Old, New   float64
	Delta      float64 // fractional change, (new-old)/old
}

func (d DiffEntry) String() string {
	return fmt.Sprintf("%s %s %s: %.4g -> %.4g (%+.1f%%)",
		d.Experiment, d.Metric, d.Field, d.Old, d.New, d.Delta*100)
}

// DiffReport is the outcome of comparing two BENCH files.
type DiffReport struct {
	Threshold    float64 // fractional threshold the gate used
	Compared     int     // measured time metrics present in both files
	Regressions  []DiffEntry
	Improvements []DiffEntry
	MissingInNew []string // metrics the old file has and the new lacks
	AddedInNew   []string // metrics only the new file has
	// HostDeltas tracks host wall-clock movement (source "host", unit
	// "ns") on the best-of-trials field. Informational only — host times
	// vary with the machine and its load — so these never gate, but the
	// committed baseline keeps a host-perf trajectory (e.g. the JIT
	// tier's 3x+ claim) reviewable in diffs.
	HostDeltas []DiffEntry
}

// OK reports whether the gate passes (no regression beyond threshold).
func (r *DiffReport) OK() bool { return len(r.Regressions) == 0 }

// Render formats the report for humans.
func (r *DiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff: %d time metrics compared, threshold %.1f%%\n", r.Compared, r.Threshold*100)
	for _, d := range r.Regressions {
		fmt.Fprintf(&b, "  REGRESSION  %s\n", d)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(&b, "  improvement %s\n", d)
	}
	for _, name := range r.MissingInNew {
		fmt.Fprintf(&b, "  warning: metric disappeared: %s\n", name)
	}
	for _, name := range r.AddedInNew {
		fmt.Fprintf(&b, "  new metric: %s\n", name)
	}
	for _, d := range r.HostDeltas {
		fmt.Fprintf(&b, "  host (not gated) %s\n", d)
	}
	if r.OK() {
		b.WriteString("  gate: PASS\n")
	} else {
		fmt.Fprintf(&b, "  gate: FAIL (%d regressions)\n", len(r.Regressions))
	}
	return b.String()
}

// gated reports whether a metric participates in the regression gate:
// measured (never a quoted paper constant) and time-valued (simulated
// microseconds, where lower is better). Ratios and counts are reported
// in the JSON but not gated — a "slowdown ×" column moving is a symptom;
// the gated time metric is the cause. Host wall-clock metrics (source
// "host", unit "ns") are informational only: they vary with the host.
func gated(m MetricJSON) bool {
	return m.Source == SourceMeasured && m.Unit == "us"
}

// hostMetric reports whether a metric is an informational host
// wall-clock measurement: reported in diffs (best-of-trials), never
// gated.
func hostMetric(m MetricJSON) bool {
	return m.Source == SourceHost && m.Unit == "ns"
}

// Diff compares two BENCH files metric by metric. For every gated metric
// present in both, the min and p50 fields are checked: new exceeding old
// by more than threshold (fractional, e.g. 0.05) is a regression;
// improving by more than threshold is reported as an improvement. The
// same file diffed against itself always passes with zero deltas.
func Diff(oldF, newF *File, threshold float64) *DiffReport {
	r := &DiffReport{Threshold: threshold}
	type key struct{ exp, metric string }
	oldIdx := map[key]MetricJSON{}
	for _, e := range oldF.Experiments {
		for _, m := range e.Metrics {
			oldIdx[key{e.ID, m.Name}] = m
		}
	}
	newSeen := map[key]bool{}
	for _, e := range newF.Experiments {
		for _, m := range e.Metrics {
			k := key{e.ID, m.Name}
			newSeen[k] = true
			om, ok := oldIdx[k]
			if !ok {
				if gated(m) {
					r.AddedInNew = append(r.AddedInNew, e.ID+" "+m.Name)
				}
				continue
			}
			if hostMetric(m) && hostMetric(om) {
				r.HostDeltas = append(r.HostDeltas, DiffEntry{
					Experiment: e.ID, Metric: m.Name, Field: "min",
					Old: om.Min, New: m.Min, Delta: relDelta(om.Min, m.Min),
				})
				continue
			}
			if !gated(m) || !gated(om) {
				continue
			}
			r.Compared++
			for _, f := range []struct {
				name     string
				old, new float64
			}{
				{"min", om.Min, m.Min},
				{"p50", om.P50, m.P50},
			} {
				delta := relDelta(f.old, f.new)
				entry := DiffEntry{Experiment: e.ID, Metric: m.Name, Field: f.name, Old: f.old, New: f.new, Delta: delta}
				switch {
				case delta > threshold:
					r.Regressions = append(r.Regressions, entry)
				case delta < -threshold:
					r.Improvements = append(r.Improvements, entry)
				}
			}
		}
	}
	for _, e := range oldF.Experiments {
		for _, m := range e.Metrics {
			if gated(m) && !newSeen[key{e.ID, m.Name}] {
				r.MissingInNew = append(r.MissingInNew, e.ID+" "+m.Name)
			}
		}
	}
	return r
}

// relDelta is the fractional change from old to new, treating a zero old
// value specially: 0 -> 0 is no change; 0 -> x is an infinite regression.
func relDelta(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return (new - old) / old
}
