package bench

import (
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/ultrix"
)

// Table9MatrixN is the matrix dimension for Table 9. The paper used
// 150×150; the working set (3 × 22 pages) then exceeds the 64-entry
// hardware TLB, which is the point of the experiment: applications that
// don't care about VM pay nothing for application-level VM.
var Table9MatrixN = 150

// Table9 runs the identical VM matmul program under both systems.
func Table9() *Table {
	n := Table9MatrixN
	t := &Table{ID: "Table 9", Title: "Matrix multiplication (measured, simulated seconds)",
		Cols: []string{"Aegis/ExOS", "Ultrix-model"}}
	ma, _, runA, err := aegisMatmul(n)
	if err != nil {
		panic(err)
	}
	aU := usOn(ma, runA)
	mu, runU, err := ultrixMatmul(n)
	if err != nil {
		panic(err)
	}
	uU := usOn(mu, runU)
	t.Add("matmul", Value{V: aU / 1e6, Unit: "s"}, Value{V: uU / 1e6, Unit: "s"})
	t.Add("ratio (Ultrix/Aegis)", X(uU/aU), Value{})
	t.Note("matrix dimension n=%d; paper (150x150, DEC2100): Aegis 7.1 s, Ultrix 7.3 s — approximately equal", n)
	return t
}

// appelPages is the working-set size of the Appel-Li experiments.
const appelPages = 100

const appelBase = 0x6000_0000

// Table10 reproduces the Appel-Li virtual-memory operation suite
// (Table 10): the operations "crucial for the construction of ambitious
// systems, such as page-based DSM and garbage collectors".
func Table10() *Table {
	t := &Table{ID: "Table 10", Title: "Appel-Li VM operations (measured, simulated us)",
		Cols: []string{"ExOS/Aegis", "Ultrix-model", "slowdown"}}

	// --- ExOS side -----------------------------------------------------
	m, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		panic(err)
	}
	vas := make([]uint32, appelPages)
	for i := range vas {
		vas[i] = appelBase + uint32(i)*hw.PageSize
		if _, err := os.AllocAndMap(vas[i]); err != nil {
			panic(err)
		}
		if err := os.TouchWrite(vas[i]); err != nil { // fault in, dirty
			panic(err)
		}
	}
	rng := lcg(12345)

	// dirty: query a random page's dirty bit — a page-table lookup.
	order := rng.perm(appelPages)
	dirtyA := perOp(m, appelPages, func() {
		va := vas[order[0]]
		order = append(order[1:], order[0])
		if !os.IsDirty(va) {
			panic("bench: page should be dirty")
		}
	})

	// prot1: write-protect one page (unprotect outside the timer).
	var protA float64
	for i := 0; i < appelPages; i++ {
		protA += usOn(m, func() {
			if err := os.Protect(vas[i]); err != nil {
				panic(err)
			}
		})
		if err := os.Unprotect(vas[i]); err != nil {
			panic(err)
		}
	}
	protA /= appelPages

	// prot100 / unprot100: the whole batch.
	prot100A := usOn(m, func() {
		if err := os.ProtectN(vas); err != nil {
			panic(err)
		}
	})
	unprot100A := usOn(m, func() {
		for _, va := range vas {
			if err := os.Unprotect(va); err != nil {
				panic(err)
			}
		}
	})

	// trap: protection fault, handler unprotects, write retries.
	os.OnFault = func(o *exos.LibOS, va uint32, write bool) bool {
		return o.Unprotect(va&^(hw.PageSize-1)) == nil
	}
	var trapA float64
	for i := 0; i < appelPages; i++ {
		if err := os.Protect(vas[i]); err != nil {
			panic(err)
		}
		trapA += usOn(m, func() {
			if err := os.TouchWrite(vas[i]); err != nil {
				panic(err)
			}
		})
	}
	trapA /= appelPages

	// appel1: access a random protected page; in the handler, protect
	// another page and unprotect the faulting one (prot1+trap+unprot).
	other := 0
	os.OnFault = func(o *exos.LibOS, va uint32, write bool) bool {
		if err := o.Protect(vas[other]); err != nil {
			return false
		}
		other = (other + 1) % appelPages
		return o.Unprotect(va&^(hw.PageSize-1)) == nil
	}
	for _, va := range vas {
		if err := os.Unprotect(va); err != nil {
			panic(err)
		}
		if err := os.Protect(va); err != nil {
			panic(err)
		}
	}
	seq := rng.perm(appelPages)
	appel1A := usOn(m, func() {
		for _, i := range seq {
			if err := os.TouchWrite(vas[i]); err != nil {
				panic(err)
			}
		}
	}) / appelPages

	// appel2: protect 100 pages, then access each in random order with the
	// handler unprotecting the faulting page (protN+trap+unprot).
	os.OnFault = func(o *exos.LibOS, va uint32, write bool) bool {
		return o.Unprotect(va&^(hw.PageSize-1)) == nil
	}
	seq2 := rng.perm(appelPages)
	appel2A := usOn(m, func() {
		if err := os.ProtectN(vas); err != nil {
			panic(err)
		}
		for _, i := range seq2 {
			if err := os.TouchWrite(vas[i]); err != nil {
				panic(err)
			}
		}
	}) / appelPages

	// --- Ultrix side ----------------------------------------------------
	um, uk := newUltrix()
	p := uk.NewProc(nil)
	for i := range vas {
		if err := uk.MapPage(p, vas[i], true); err != nil {
			panic(err)
		}
		if err := uk.TouchWrite(p, vas[i]); err != nil {
			panic(err)
		}
	}

	var protU float64
	for i := 0; i < appelPages; i++ {
		protU += usOn(um, func() {
			if err := uk.Mprotect(p, vas[i:i+1], false); err != nil {
				panic(err)
			}
		})
		if err := uk.Mprotect(p, vas[i:i+1], true); err != nil {
			panic(err)
		}
	}
	protU /= appelPages

	prot100U := usOn(um, func() {
		if err := uk.Mprotect(p, vas, false); err != nil {
			panic(err)
		}
	})
	unprot100U := usOn(um, func() {
		if err := uk.Mprotect(p, vas, true); err != nil {
			panic(err)
		}
	})

	p.NativeSig = func(k *ultrix.Kernel, p *ultrix.Proc, cause hw.Exc, va uint32) ultrix.SigAction {
		if err := k.Mprotect(p, []uint32{va &^ (hw.PageSize - 1)}, true); err != nil {
			return ultrix.SigKill
		}
		return ultrix.SigRetry
	}
	var trapU float64
	for i := 0; i < appelPages; i++ {
		if err := uk.Mprotect(p, vas[i:i+1], false); err != nil {
			panic(err)
		}
		trapU += usOn(um, func() {
			if err := uk.TouchWrite(p, vas[i]); err != nil {
				panic(err)
			}
		})
	}
	trapU /= appelPages

	otherU := 0
	p.NativeSig = func(k *ultrix.Kernel, pr *ultrix.Proc, cause hw.Exc, va uint32) ultrix.SigAction {
		if err := k.Mprotect(pr, vas[otherU:otherU+1], false); err != nil {
			return ultrix.SigKill
		}
		otherU = (otherU + 1) % appelPages
		if err := k.Mprotect(pr, []uint32{va &^ (hw.PageSize - 1)}, true); err != nil {
			return ultrix.SigKill
		}
		return ultrix.SigRetry
	}
	if err := uk.Mprotect(p, vas, true); err != nil {
		panic(err)
	}
	if err := uk.Mprotect(p, vas, false); err != nil {
		panic(err)
	}
	appel1U := usOn(um, func() {
		for _, i := range seq {
			if err := uk.TouchWrite(p, vas[i]); err != nil {
				panic(err)
			}
		}
	}) / appelPages

	p.NativeSig = func(k *ultrix.Kernel, pr *ultrix.Proc, cause hw.Exc, va uint32) ultrix.SigAction {
		if err := k.Mprotect(pr, []uint32{va &^ (hw.PageSize - 1)}, true); err != nil {
			return ultrix.SigKill
		}
		return ultrix.SigRetry
	}
	if err := uk.Mprotect(p, vas, true); err != nil {
		panic(err)
	}
	appel2U := usOn(um, func() {
		if err := uk.Mprotect(p, vas, false); err != nil {
			panic(err)
		}
		for _, i := range seq2 {
			if err := uk.TouchWrite(p, vas[i]); err != nil {
				panic(err)
			}
		}
	}) / appelPages

	t.Add("dirty", Us(dirtyA), NA("no kernel interface"), Value{})
	t.Add("prot1", Us(protA), Us(protU), X(protU/protA))
	t.Add("prot100 (whole batch)", Us(prot100A), Us(prot100U), X(prot100U/prot100A))
	t.Add("unprot100 (whole batch)", Us(unprot100A), Us(unprot100U), X(unprot100U/unprot100A))
	t.Add("trap", Us(trapA), Us(trapU), X(trapU/trapA))
	t.Add("appel1 (per page)", Us(appel1A), Us(appel1U), X(appel1U/appel1A))
	t.Add("appel2 (per page)", Us(appel2A), Us(appel2U), X(appel2U/appel2A))
	t.PaperRef("dirty", "ExOS/Aegis", 17.5)
	t.PaperRef("prot1", "ExOS/Aegis", 11.1)
	t.PaperRef("prot100 (whole batch)", "ExOS/Aegis", 1170)
	t.PaperRef("unprot100 (whole batch)", "ExOS/Aegis", 1030)
	t.PaperRef("trap", "ExOS/Aegis", 37.5)
	t.PaperRef("appel1 (per page)", "ExOS/Aegis", 54.4)
	t.PaperRef("appel2 (per page)", "ExOS/Aegis", 45.9)
	t.Note("paper (DEC5000/125): ExOS dirty 17.5, prot1 11.1, prot100 1170, unprot100 1030, trap 37.5, appel1 54.4, appel2 45.9 us; Ultrix 5-40x slower and no dirty interface")
	t.Note("random orders are seeded and identical across both systems")
	return t
}

// AblationSTLB measures the software TLB's contribution with a working
// set of 128 pages cycled repeatedly — twice the 64-entry hardware TLB, so
// every pass takes capacity misses. With the STLB those misses are
// absorbed inside the kernel; without it, each one vectors to the
// application's refill handler and walks the page table.
func AblationSTLB() *Table {
	t := &Table{ID: "Ablation A", Title: "Software TLB on/off (128-page cyclic sweep, simulated us/ref)",
		Cols: []string{"per reference", "STLB hits", "TLB upcalls"}}
	const pages = 128
	const passes = 20
	for _, enabled := range []bool{true, false} {
		m, k := newAegis()
		k.STLBEnabled = enabled
		os, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		vas := make([]uint32, pages)
		for i := range vas {
			vas[i] = 0x4000_0000 + uint32(i)*hw.PageSize
			if _, err := os.AllocAndMap(vas[i]); err != nil {
				panic(err)
			}
			if err := os.Touch(vas[i]); err != nil { // compulsory miss, warm STLB
				panic(err)
			}
		}
		k.Stats.STLBHits = 0
		k.Stats.TLBUpcalls = 0
		per := usOn(m, func() {
			for p := 0; p < passes; p++ {
				for _, va := range vas {
					if err := os.Touch(va); err != nil {
						panic(err)
					}
				}
			}
		}) / (pages * passes)
		name := "STLB enabled"
		if !enabled {
			name = "STLB disabled"
		}
		t.Add(name, Us(per), N(float64(k.Stats.STLBHits)), N(float64(k.Stats.TLBUpcalls)))
	}
	t.Note("with the STLB, capacity misses never reach the application (§5.2, refs [7,28])")
	return t
}
