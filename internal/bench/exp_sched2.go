package bench

import (
	"fmt"
	"math"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/stride"
)

// AblationSched compares the two application-level proportional-share
// schedulers on throughput accuracy: stride [54] (deterministic, the one
// the paper's §7.3 experiment uses) against lottery [53] (randomized, the
// prior work stride improves on). Both run unprivileged over directed
// yield; the measured quantity is the maximum absolute error between a
// client's actual and ideal cumulative allocation over the run — O(1)
// quanta for stride, O(sqrt(n)) for lottery.
func AblationSched() *Table {
	t := &Table{ID: "Ablation D", Title: "Stride vs lottery scheduling, 3:2:1 tickets over 3000 quanta",
		Cols: []string{"max abs error (quanta)", "final shares"}}
	tickets := []uint64{3, 2, 1}
	const rounds = 3000

	// Stride.
	{
		_, k := newAegis()
		k.SetQuantum(1000)
		s, err := stride.New(k)
		if err != nil {
			panic(err)
		}
		clients := addWorkers(k, tickets, func(env aegis.EnvID, tk uint64) *stride.Client {
			c, err := s.Add(env, tk)
			if err != nil {
				panic(err)
			}
			return c
		})
		k.SetSliceVector([]aegis.EnvID{s.Env.ID})
		maxErr := runSched(k, clients, tickets, rounds)
		sh := s.Shares()
		t.Add("stride (deterministic)", N(maxErr), Value{Note: fmt.Sprintf("%.3f/%.3f/%.3f", sh[0], sh[1], sh[2])})
	}

	// Lottery.
	{
		_, k := newAegis()
		k.SetQuantum(1000)
		l, err := stride.NewLottery(k, 42)
		if err != nil {
			panic(err)
		}
		clients := addWorkers(k, tickets, func(env aegis.EnvID, tk uint64) *stride.Client {
			c, err := l.Add(env, tk)
			if err != nil {
				panic(err)
			}
			return c
		})
		k.SetSliceVector([]aegis.EnvID{l.Env.ID})
		maxErr := runSched(k, clients, tickets, rounds)
		sh := l.Shares()
		t.Add("lottery (randomized, seed 42)", N(maxErr), Value{Note: fmt.Sprintf("%.3f/%.3f/%.3f", sh[0], sh[1], sh[2])})
	}
	t.Note("error = max over all prefixes and clients of |actual - ideal| quanta; stride's is O(1), lottery's grows as sqrt(n)")
	return t
}

func addWorkers(k *aegis.Kernel, tickets []uint64, add func(aegis.EnvID, uint64) *stride.Client) []*stride.Client {
	var clients []*stride.Client
	for _, tk := range tickets {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		if err != nil {
			panic(err)
		}
		clients = append(clients, add(w.ID, tk))
	}
	return clients
}

func runSched(k *aegis.Kernel, clients []*stride.Client, tickets []uint64, rounds int) float64 {
	var sum uint64
	for _, tk := range tickets {
		sum += tk
	}
	maxErr := 0.0
	for r := 1; r <= rounds; r++ {
		if !k.DispatchNative() {
			panic("bench: scheduler starved")
		}
		for i, c := range clients {
			ideal := float64(r) * float64(tickets[i]) / float64(sum)
			if e := math.Abs(float64(c.Quanta) - ideal); e > maxErr {
				maxErr = e
			}
		}
	}
	return maxErr
}
