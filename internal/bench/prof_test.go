package bench

import (
	"bytes"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/ktrace"
	"exokernel/internal/prof"
)

// profWorkloads is the selection TestProfilingIsFree runs: a
// syscall-heavy table, the VM-fault-heavy Appel-Li sweep, and the
// matmul loop (shrunk), together covering guest loops, kernel windows,
// and multi-machine boots.
func profWorkloads() []Experiment {
	var sel []Experiment
	for _, e := range All() {
		switch e.ID {
		case "Table 2", "Table 9", "Table 10":
			sel = append(sel, e)
		}
	}
	return sel
}

// profRun executes the selection once, returning the concatenated table
// text (every measured number, so any clock perturbation shows) and the
// rendered trace (every event's cycle stamp). withProf additionally
// returns the collected PROF JSON bytes.
func profRun(t *testing.T, withProf bool) (tables, trace, profile []byte) {
	t.Helper()
	savedTracer, savedProf, savedN := Tracer, Prof, Table9MatrixN
	savedSeq := bootSeq
	defer func() { Tracer, Prof, Table9MatrixN, bootSeq = savedTracer, savedProf, savedN, savedSeq }()
	bootSeq = 0
	Table9MatrixN = 32
	rec := ktrace.New(1 << 16)
	Tracer = rec
	var profs []*prof.Profiler
	Prof = nil
	if withProf {
		Prof = func(name string) *prof.Profiler {
			p := prof.New(name, aegis.OpNames())
			profs = append(profs, p)
			return p
		}
	}

	var tbuf bytes.Buffer
	for _, e := range profWorkloads() {
		tbuf.WriteString(e.Run().Format())
	}
	var trbuf bytes.Buffer
	if err := ktrace.WriteText(&trbuf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if withProf {
		var machines []prof.Profile
		for _, p := range profs {
			machines = append(machines, p.Snapshot())
		}
		var pbuf bytes.Buffer
		if err := prof.Collect("test", nil, machines, 0).Write(&pbuf); err != nil {
			t.Fatal(err)
		}
		profile = pbuf.Bytes()
	}
	return tbuf.Bytes(), trbuf.Bytes(), profile
}

// TestProfilingIsFree pins the profiler's observation contract:
// attaching it changes nothing observable (every measured table number
// and every trace event stamp is byte-identical with profiling on or
// off), the profile itself is deterministic across runs, and the fast
// and reference engines produce exactly the same profile.
func TestProfilingIsFree(t *testing.T) {
	baseTables, baseTrace, _ := profRun(t, false)
	profTables, profTrace, profile := profRun(t, true)

	if !bytes.Equal(baseTables, profTables) {
		t.Errorf("table output differs with profiling attached:\n--- off ---\n%s\n--- on ---\n%s", baseTables, profTables)
	}
	if !bytes.Equal(baseTrace, profTrace) {
		t.Errorf("trace differs with profiling attached (%d vs %d bytes)", len(baseTrace), len(profTrace))
	}
	if len(profile) == 0 {
		t.Fatal("no profile collected")
	}

	_, _, again := profRun(t, true)
	if !bytes.Equal(profile, again) {
		t.Errorf("same-seed profile not deterministic (%d vs %d bytes)", len(profile), len(again))
	}

	// Engine equivalence at workload scale: the reference engine must
	// produce the identical profile (the quickcheck in internal/vm does
	// the same for random programs).
	t.Setenv("EXO_SLOWPATH", "1")
	refTables, refTrace, refProfile := profRun(t, true)
	if !bytes.Equal(baseTables, refTables) {
		t.Errorf("reference-engine table output differs")
	}
	if !bytes.Equal(baseTrace, refTrace) {
		t.Errorf("reference-engine trace differs")
	}
	if !bytes.Equal(profile, refProfile) {
		t.Errorf("fast and reference engines produced different profiles (%d vs %d bytes)", len(profile), len(refProfile))
	}
}
