package bench

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/asm"
	"exokernel/internal/cap"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
	"exokernel/internal/ultrix"
)

// Table1 prints the simulated platforms (the paper's experimental
// environment table). Only the DEC5000/125 model is used for measured
// numbers; the others exist for scaling comparisons.
func Table1() *Table {
	t := &Table{ID: "Table 1", Title: "Experimental platforms (simulated)",
		Cols: []string{"MHz", "SPECint92", "memory (MB)", "TLB entries", "STLB entries"}}
	for _, c := range hw.Platforms() {
		t.Add(c.Name, N(c.MHz), N(c.SPECint92),
			N(float64(c.MemPages*hw.PageSize)/(1024*1024)), N(float64(c.TLBSize)), N(float64(c.STLBSize)))
	}
	t.Note("1 simulated cycle = 1/MHz microseconds; all measured results below use the %s model", hw.DEC5000.Name)
	return t
}

const callLoopIters = 1000

// procCallSource is a C-style call: frame push, save/restore ra, return.
// The loop overhead (2 instructions/iteration) is included, as the paper's
// measurement loops were ("the time includes the overhead of incrementing
// a counter and performing a branch").
const procCallSource = `
		nop
	entry:
		addiu t9, zero, %d
	loop:
		jal   f
		addiu t9, t9, -1
		bgtz  t9, loop
		halt
	f:
		addiu sp, sp, -8
		sw    ra, 4(sp)
		lw    ra, 4(sp)
		addiu sp, sp, 8
		jr    ra
`

// syscallLoopSource invokes the null system call (code in %d) in a loop.
const syscallLoopSource = `
		nop
	entry:
		addiu t9, zero, %d
	loop:
		addiu v0, zero, %d
		syscall
		addiu t9, t9, -1
		bgtz  t9, loop
		halt
`

const stackBase = 0x7000_0000

// Table2 measures the null procedure call and the null system call on both
// systems (paper Table 2: Aegis system calls are 10x+ cheaper because the
// kernel does almost nothing on the way through).
func Table2() *Table {
	t := &Table{ID: "Table 2", Title: "Null procedure and system call (measured, simulated us)",
		Cols: []string{"Aegis", "Ultrix-model", "slowdown"}}

	// Procedure call, identical user-level code on both systems.
	callA := runAegisVM(fmt.Sprintf(procCallSource, callLoopIters), true, nil) / callLoopIters
	callU := runUltrixVM(fmt.Sprintf(procCallSource, callLoopIters), true, nil) / callLoopIters
	t.Add("procedure call", Us(callA), Us(callU), X(callU/callA))

	sysA := runAegisVM(fmt.Sprintf(syscallLoopSource, callLoopIters, aegis.SysNull), false, nil) / callLoopIters
	sysU := runUltrixVM(fmt.Sprintf(syscallLoopSource, callLoopIters, ultrix.SysGetpid), false, nil) / callLoopIters
	t.Add("system call (null/getpid)", Us(sysA), Us(sysU), X(sysU/sysA))

	t.PaperRef("procedure call", "Aegis", 0.59)
	t.PaperRef("system call (null/getpid)", "Aegis", 1.6)
	t.Note("paper (DEC2100): procedure call 0.59 us; Aegis syscall 1.6/2.3 us vs Ultrix ~10x slower")
	t.Note("loop overhead (2 instructions/iteration) included, as in the paper")
	return t
}

// runAegisVM assembles src, boots Aegis+ExOS, optionally maps a stack, and
// returns total simulated microseconds from entry to halt.
func runAegisVM(src string, stack bool, setup func(*aegis.Kernel, *exos.LibOS)) float64 {
	m, k := newAegis()
	code, labels, err := asm.AssembleWithLabels(src)
	if err != nil {
		panic(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		panic(err)
	}
	os := exos.Attach(k, env)
	if stack {
		if _, err := os.AllocAndMap(stackBase); err != nil {
			panic(err)
		}
	}
	if setup != nil {
		setup(k, os)
	}
	m.CPU.PC = uint32(labels["entry"])
	m.CPU.SetReg(hw.RegSP, stackBase+hw.PageSize-16)
	return usOn(m, func() { runToHalt(k.Interp, 0) })
}

// runUltrixVM is the monolithic twin of runAegisVM.
func runUltrixVM(src string, stack bool, setup func(*ultrix.Kernel, *ultrix.Proc)) float64 {
	m, k := newUltrix()
	code, labels, err := asm.AssembleWithLabels(src)
	if err != nil {
		panic(err)
	}
	p := k.NewProc(code)
	if stack {
		if err := k.MapPage(p, stackBase, true); err != nil {
			panic(err)
		}
	}
	if setup != nil {
		setup(k, p)
	}
	m.CPU.PC = uint32(labels["entry"])
	m.CPU.SetReg(hw.RegSP, stackBase+hw.PageSize-16)
	return usOn(m, func() { runToHalt(k.Interp, 0) })
}

// Table3 samples Aegis primitive operations (paper Table 3): the
// pseudo-instruction flavor of the kernel interface.
func Table3() *Table {
	t := &Table{ID: "Table 3", Title: "Aegis primitive operations (measured, simulated us)",
		Cols: []string{"time"}}

	// Trap-entered primitives, measured from real VM programs (loop
	// overhead included, as in Table 2).
	for _, prim := range []struct {
		name string
		code uint32
	}{
		{"scall (null)", aegis.SysNull},
		{"getenv", aegis.SysGetEnv},
		{"read cycle counter", aegis.SysCycles},
	} {
		us := runAegisVM(fmt.Sprintf(syscallLoopSource, callLoopIters, prim.code), false, nil) / callLoopIters
		t.Add(prim.name, Us(us))
	}

	m, k := newAegis()
	a, err := k.NewEnv(nil)
	if err != nil {
		panic(err)
	}
	b, err := k.NewEnv(nil)
	if err != nil {
		panic(err)
	}

	t.Add("yield (to self)", Us(perOp(m, 256, func() { k.Yield(k.CurEnv().ID) })))
	t.Add("yield (directed, other env)", Us(perOp(m, 256, func() {
		if k.CurEnv() == a {
			k.Yield(b.ID)
		} else {
			k.Yield(a.ID)
		}
	})))

	type envCap struct {
		frame uint32
		guard cap.Capability
	}
	caps := make([]envCap, 0, 256)
	t.Add("alloc physical page", Us(perOp(m, 256, func() {
		f, c, err := k.AllocPage(a, aegis.AnyFrame)
		if err != nil {
			panic(err)
		}
		caps = append(caps, envCap{frame: f, guard: c})
	})))
	i := 0
	t.Add("install TLB mapping (dsd)", Us(perOp(m, 256, func() {
		c := caps[i%len(caps)]
		if err := k.InstallMapping(a, 0x4000_0000+uint32(i)*hw.PageSize, c.frame, hw.PermWrite, c.guard); err != nil {
			panic(err)
		}
		i++
	})))
	i = 0
	t.Add("unmap TLB entry", Us(perOp(m, 256, func() {
		k.UnmapPage(a, 0x4000_0000+uint32(i)*hw.PageSize)
		i++
	})))
	i = 0
	t.Add("dealloc physical page", Us(perOp(m, 256, func() {
		c := caps[i%len(caps)]
		if err := k.DeallocPage(c.frame, c.guard); err != nil {
			panic(err)
		}
		i++
	})))
	t.Note("paper reports e.g. yield and protection operations in the 0.2-4 us range on the DEC5000")
	return t
}

// Table4 measures exception dispatch (paper Table 4 / §5.3: "Aegis
// dispatches exceptions in 18 instructions ... 1.5 microseconds", over 5x
// faster than the best published implementation [50], ~2 orders of
// magnitude faster than Ultrix).
func Table4() *Table {
	t := &Table{ID: "Table 4", Title: "Exception dispatch (measured, simulated us)",
		Cols: []string{"Aegis", "Ultrix-model", "slowdown"}}

	// Dispatch-only latency: raise → first handler instruction.
	m, k := newAegis()
	env, err := k.NewEnv(nil)
	if err != nil {
		panic(err)
	}
	var entry uint64
	env.NativeExc = func(k *aegis.Kernel, tr aegis.TrapInfo) {
		entry = m.Clock.Cycles()
		k.ReturnFromException(env, aegis.ResumeSkip)
	}
	var dispatch float64
	const iters = 256
	for i := 0; i < iters; i++ {
		c0 := m.Clock.Cycles()
		m.RaiseException(hw.ExcOverflow, 0, 0)
		dispatch += m.Micros(entry - c0)
	}
	dispatch /= iters
	t.Add("dispatch to application handler", Us(dispatch), NA("kernel hides exceptions"), Value{})

	// Full trap-and-resume round trip, identical VM programs.
	const trapIters = 500
	rtA := runAegisVM(trapProgram(trapIters, "break", aegis.SysRetExc), false,
		func(k *aegis.Kernel, os *exos.LibOS) {
			os.Env.NativeExc = nil // use the VM handler, not ExOS's native one
			setVMTrapHandler(os.Env, hw.ExcBreak)
		}) / trapIters
	rtU := runUltrixVM(trapProgram(trapIters, "break", ultrix.SysSigreturn), false,
		func(k *ultrix.Kernel, p *ultrix.Proc) { setUltrixSigHandler(p, hw.ExcBreak) }) / trapIters
	t.Add("trap + handler + resume", Us(rtA), Us(rtU), X(rtU/rtA))

	t.PaperRef("dispatch to application handler", "Aegis", 1.5)
	t.Note("paper: Aegis dispatch 1.5 us (DEC5000/125); best published 8 us [50]; Ultrix ~2 orders of magnitude slower")
	t.Note("Ultrix-model round trip is conservative: the real signal path also recomputed masks and touched the u-area")
	return t
}

// trapProgram builds the shared trap-measurement loop: `body` faults, the
// handler resumes past it via the system call `retSys` with a0=1 (skip).
func trapProgram(iters int, body string, retSys uint32) string {
	return fmt.Sprintf(`
		nop
	entry:
		addiu t9, zero, %d
		lui   t0, 0x7fff       ; operand for the overflow case
	loop:
		%s
		addiu t9, t9, -1
		bgtz  t9, loop
		halt
	handler:
		addiu v0, zero, %d
		addiu a0, zero, 1
		syscall
`, iters, body, retSys)
}

// setVMTrapHandler points an environment's exception vector for cause at
// the "handler" label (index found by convention: the label table isn't
// available here, so the handler is located by scanning for the trailer).
func setVMTrapHandler(env *aegis.Env, cause hw.Exc) {
	env.ExcVec[cause&15] = handlerPC(len(env.Code))
}

func setUltrixSigHandler(p *ultrix.Proc, cause hw.Exc) {
	p.SetSignalHandler(cause, handlerPC(len(p.Code)))
}

// handlerPC computes the "handler" label of trapProgram: the final three
// instructions before the implicit end.
func handlerPC(codeLen int) uint32 { return uint32(codeLen - 3) }

// Table5 measures dispatch per exception kind (paper Table 5): unaligned
// access, arithmetic overflow, coprocessor unusable, and page protection.
// Under Aegis every one is the application's to handle; the monolithic
// kernel hides two of them outright.
func Table5() *Table {
	t := &Table{ID: "Table 5", Title: "Exception dispatch by kind (measured, simulated us)",
		Cols: []string{"Aegis/ExOS", "Ultrix-model", "slowdown"}}
	const iters = 500

	vmCase := func(body string, cause hw.Exc) (float64, float64) {
		a := runAegisVM(trapProgram(iters, body, aegis.SysRetExc), false,
			func(k *aegis.Kernel, os *exos.LibOS) {
				os.Env.NativeExc = nil
				setVMTrapHandler(os.Env, cause)
			}) / iters
		u := runUltrixVM(trapProgram(iters, body, ultrix.SysSigreturn), false,
			func(k *ultrix.Kernel, p *ultrix.Proc) { setUltrixSigHandler(p, cause) }) / iters
		return a, u
	}

	// unalign: Ultrix never lets the application see it.
	aU, _ := vmCase("lw t0, 1(zero)", hw.ExcAddrErrL)
	mU, kU := newUltrix()
	kU.NewProc(nil)
	fixup := perOp(mU, 64, func() { mU.RaiseException(hw.ExcAddrErrL, 0, 1) })
	t.Add("unalign", Us(aU), NA("kernel emulates"), Value{})
	t.Note("Ultrix-model in-kernel unaligned fixup costs %.1f us but is invisible to the application (as in the paper)", fixup)

	aO, uO := vmCase("add t1, t0, t0", hw.ExcOverflow)
	t.Add("overflow", Us(aO), Us(uO), X(uO/aO))

	// coproc: Ultrix manages the FPU itself; only the first use traps.
	aC, _ := vmCase("cop1", hw.ExcCoproc)
	mC, kC := newUltrix()
	kC.NewProc(nil)
	fpu := usOn(mC, func() { mC.RaiseException(hw.ExcCoproc, 0, 0) })
	t.Add("coproc", Us(aC), NA("kernel-managed FPU"), Value{})
	t.Note("Ultrix-model lazy FPU enable costs %.1f us, once per process (application cannot interpose)", fpu)

	// prot: write to a write-protected page, handler unprotects, retry.
	aP := aegisProtTrap(iters)
	uP := ultrixProtTrap(iters)
	t.Add("prot", Us(aP), Us(uP), X(uP/aP))

	t.Note("paper (DEC5000/125): Aegis 2.8-3.0 us per kind; Ultrix prot ~100x slower and unalign/coproc not deliverable")
	return t
}

// aegisProtTrap measures: protected write → fault → app handler
// unprotects → retried write (protection reinstalled outside the timer).
func aegisProtTrap(iters int) float64 {
	m, k := newAegis()
	os, err := exos.Boot(k)
	if err != nil {
		panic(err)
	}
	const va = 0x5000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		panic(err)
	}
	if err := os.TouchWrite(va); err != nil {
		panic(err)
	}
	os.OnFault = func(os *exos.LibOS, fva uint32, write bool) bool {
		return os.Unprotect(fva&^(hw.PageSize-1)) == nil
	}
	var total float64
	for i := 0; i < iters; i++ {
		if err := os.Protect(va); err != nil {
			panic(err)
		}
		total += usOn(m, func() {
			if err := os.TouchWrite(va); err != nil {
				panic(err)
			}
		})
	}
	return total / float64(iters)
}

// ultrixProtTrap is the monolithic twin: SIGSEGV → handler mprotects →
// kernel retries.
func ultrixProtTrap(iters int) float64 {
	m, k := newUltrix()
	p := k.NewProc(nil)
	const va = 0x5000_0000
	if err := k.MapPage(p, va, true); err != nil {
		panic(err)
	}
	if err := k.TouchWrite(p, va); err != nil {
		panic(err)
	}
	p.NativeSig = func(k *ultrix.Kernel, p *ultrix.Proc, cause hw.Exc, fva uint32) ultrix.SigAction {
		if err := k.Mprotect(p, []uint32{fva &^ (hw.PageSize - 1)}, true); err != nil {
			return ultrix.SigKill
		}
		return ultrix.SigRetry
	}
	var total float64
	for i := 0; i < iters; i++ {
		if err := k.Mprotect(p, []uint32{va}, false); err != nil {
			panic(err)
		}
		total += usOn(m, func() {
			if err := k.TouchWrite(p, va); err != nil {
				panic(err)
			}
		})
	}
	return total / float64(iters)
}

// Table6 measures protected control transfer (paper Table 6: Aegis PCT is
// "almost seven times faster" than L3, the fastest published IPC, scaled
// by SPECint92).
func Table6() *Table {
	t := &Table{ID: "Table 6", Title: "Protected control transfer, one-way (simulated us)",
		Cols: []string{"time"}}
	m, k := newAegis()
	a, err := k.NewEnv(nil)
	if err != nil {
		panic(err)
	}
	b, err := k.NewEnv(nil)
	if err != nil {
		panic(err)
	}
	b.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {
		if err := k.ProtCall(a.ID, false); err != nil {
			panic(err)
		}
	}
	a.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {}

	const iters = 512
	oneWay := perOp(m, iters, func() {
		if err := k.ProtCall(b.ID, false); err != nil {
			panic(err)
		}
	}) / 2
	t.Add("Aegis PCT (measured)", Us(oneWay))
	l3 := 5.0 * 30.1 / 16.1
	t.Add("L3 scaled by SPECint92 (paper)", Us(l3))
	t.Add("speedup", X(l3/oneWay))
	t.Note("paper: L3 measured 5 us on a 486DX-50 (SPECint92 30.1); DEC5000/125 is 16.1")
	return t
}
