package bench

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/stride"
)

// Figure3 reproduces the application-level scheduler experiment (§7.3):
// three sub-processes with a 3:2:1 ticket allocation, scheduled entirely
// by unprivileged stride-scheduler code re-donating its kernel time
// slices. The figure in the paper plots cumulative allocations over time;
// the rows below are that series at increasing quantum counts.
func Figure3() *Table {
	t := &Table{ID: "Figure 3", Title: "Application-level stride scheduler, cumulative quanta (3:2:1 tickets)",
		Cols: []string{"proc A (3)", "proc B (2)", "proc C (1)", "shares"}}
	_, k := newAegis()
	k.SetQuantum(2500)
	sched, err := stride.New(k)
	if err != nil {
		panic(err)
	}
	var clients []*stride.Client
	for _, tickets := range []uint64{3, 2, 1} {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		if err != nil {
			panic(err)
		}
		// Workers are the scheduler's, not the kernel's: remove them from
		// the kernel slice vector so only the scheduler environment gets
		// kernel slices, which it re-donates by policy.
		c, err := sched.Add(w.ID, tickets)
		if err != nil {
			panic(err)
		}
		clients = append(clients, c)
	}
	k.SetSliceVector([]aegis.EnvID{sched.Env.ID})

	total := 0
	for _, checkpoint := range []int{60, 120, 240, 480, 960} {
		for ; total < checkpoint; total++ {
			if !k.DispatchNative() {
				panic("bench: scheduler starved")
			}
		}
		s := sched.Shares()
		t.Add(fmt.Sprintf("after %4d quanta", checkpoint),
			N(float64(clients[0].Quanta)), N(float64(clients[1].Quanta)), N(float64(clients[2].Quanta)),
			Value{Note: fmt.Sprintf("%.3f/%.3f/%.3f", s[0], s[1], s[2])})
	}
	t.Note("expected shares 0.500/0.333/0.167; the kernel never sees tickets — only directed yields")
	return t
}
