package bench

import (
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

// AblationCaching reproduces the claim the paper's introduction leans on
// (Cao et al. [10]): "application-level control over file caching can
// reduce application running time by 45%". The workload interleaves a
// repeated sequential scan of a large file with random accesses to a hot
// file, under a buffer cache smaller than the scan:
//
//   - library FS, application policy: the application advises the scan,
//     so the scan-aware policy recycles scan blocks and the hot set stays
//     resident;
//   - library FS, kernel-default LRU: every scan flushes the hot set;
//   - monolithic FS: fixed LRU *and* a system-call crossing plus an extra
//     copy on every operation, with no advice interface at all.
func AblationCaching() *Table {
	t := &Table{ID: "Ablation C", Title: "Application-controlled file caching (claim [10] from the paper's introduction)",
		Cols: []string{"runtime (sim ms)", "cache hits", "misses", "vs app policy"}}

	const (
		cacheFrames = 32
		hotBlocks   = 24
		scanBlocks  = 48
		rounds      = 10
		hotReads    = 48
	)

	type result struct {
		name   string
		ms     float64
		hits   uint64
		misses uint64
	}
	var results []result

	runExOS := func(name string, policy exos.CachePolicy, advise bool) {
		m, k := newAegis()
		os, err := exos.Boot(k)
		if err != nil {
			panic(err)
		}
		dev, err := exos.NewAegisDev(os, 512)
		if err != nil {
			panic(err)
		}
		cache, err := exos.NewFSCache(os, dev, cacheFrames, policy)
		if err != nil {
			panic(err)
		}
		fs, err := exos.Format(dev, cache, 16)
		if err != nil {
			panic(err)
		}
		hot, scan := prepFiles(fs, hotBlocks, scanBlocks)
		w := m.Clock.StartWatch()
		rng := lcg(99)
		buf := make([]byte, hw.PageSize)
		for r := 0; r < rounds; r++ {
			if advise {
				fs.Advise(exos.AdviceSequential)
			}
			for b := uint32(0); b < scanBlocks; b++ {
				if _, err := fs.ReadAt(scan, b*hw.PageSize, buf); err != nil {
					panic(err)
				}
			}
			fs.Advise(exos.AdviceNormal)
			for i := 0; i < hotReads; i++ {
				b := uint32(rng.next() % hotBlocks)
				if _, err := fs.ReadAt(hot, b*hw.PageSize, buf); err != nil {
					panic(err)
				}
			}
		}
		results = append(results, result{name, m.Micros(w.Elapsed()) / 1000, cache.Hits, cache.Misses})
	}

	runExOS("library FS, scan-aware policy + advice", exos.NewScanAware(), true)
	runExOS("library FS, kernel-default LRU", exos.NewLRU(), false)

	// Monolithic baseline.
	{
		m, uk := newUltrix()
		p := uk.NewProc(nil)
		kfs, err := uk.NewKernelFS(0, 512, cacheFrames, 16)
		if err != nil {
			panic(err)
		}
		hot, err := kfs.Create(p, "hot")
		if err != nil {
			panic(err)
		}
		scan, err := kfs.Create(p, "scan")
		if err != nil {
			panic(err)
		}
		blk := make([]byte, hw.PageSize)
		for b := uint32(0); b < hotBlocks; b++ {
			if err := kfs.Write(p, hot, b*hw.PageSize, blk); err != nil {
				panic(err)
			}
		}
		for b := uint32(0); b < scanBlocks; b++ {
			if err := kfs.Write(p, scan, b*hw.PageSize, blk); err != nil {
				panic(err)
			}
		}
		w := m.Clock.StartWatch()
		rng := lcg(99)
		buf := make([]byte, hw.PageSize)
		for r := 0; r < rounds; r++ {
			for b := uint32(0); b < scanBlocks; b++ {
				if _, err := kfs.Read(p, scan, b*hw.PageSize, buf); err != nil {
					panic(err)
				}
			}
			for i := 0; i < hotReads; i++ {
				b := uint32(rng.next() % hotBlocks)
				if _, err := kfs.Read(p, hot, b*hw.PageSize, buf); err != nil {
					panic(err)
				}
			}
		}
		results = append(results, result{"monolithic FS (crossing + fixed LRU)",
			m.Micros(w.Elapsed()) / 1000, kfs.Stats().Hits, kfs.Stats().Misses})
	}

	base := results[0].ms
	for _, r := range results {
		t.Add(r.name, Value{V: r.ms, Unit: "ms"}, N(float64(r.hits)), N(float64(r.misses)), X(r.ms/base))
	}
	t.Note("workload: %d rounds of (scan %d blocks sequentially, then %d random reads in a %d-block hot file), %d-frame cache",
		rounds, scanBlocks, hotReads, hotBlocks, cacheFrames)
	t.Note("Cao et al. [10] measured up to 45%% runtime reduction from application-controlled caching")
	return t
}

// prepFiles writes the two files used by the workload.
func prepFiles(fs *exos.FS, hotBlocks, scanBlocks uint32) (hot, scan exos.Inum) {
	var err error
	hot, err = fs.Create("hot")
	if err != nil {
		panic(err)
	}
	scan, err = fs.Create("scan")
	if err != nil {
		panic(err)
	}
	blk := make([]byte, hw.PageSize)
	for b := uint32(0); b < hotBlocks; b++ {
		if err := fs.WriteAt(hot, b*hw.PageSize, blk); err != nil {
			panic(err)
		}
	}
	for b := uint32(0); b < scanBlocks; b++ {
		if err := fs.WriteAt(scan, b*hw.PageSize, blk); err != nil {
			panic(err)
		}
	}
	return hot, scan
}
