package bench

import (
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

// AblationPT compares the two application-chosen page-table structures —
// the §8 claim that "page-table structures ... cannot be modified in
// micro-kernels" (and can here). Dense layout: 64 contiguous pages. Sparse
// layout: 64 pages spread one per 4 MB region (persistent-store style).
// The dense tree pays a full second-level table per touched region; the
// inverted table's space tracks the mapping count.
func AblationPT() *Table {
	t := &Table{ID: "Ablation E", Title: "Application-defined page-table structures (64 mappings)",
		Cols: []string{"lookup (sim us)", "table size (KB)"}}

	layouts := []struct {
		name   string
		sparse bool
	}{
		{"dense layout", false},
		{"sparse layout (1 page / 4MB)", true},
	}
	for _, layout := range layouts {
		for _, inverted := range []bool{false, true} {
			m, k := newAegis()
			os, err := exos.Boot(k)
			if err != nil {
				panic(err)
			}
			if inverted {
				if err := os.UsePageTable(exos.NewInvertedPT(k, 7)); err != nil {
					panic(err)
				}
			}
			vas := make([]uint32, 64)
			for i := range vas {
				if layout.sparse {
					vas[i] = 0x1000_0000 + uint32(i)<<22
				} else {
					vas[i] = 0x1000_0000 + uint32(i)<<hw.PageShift
				}
				if _, err := os.AllocAndMap(vas[i]); err != nil {
					panic(err)
				}
			}
			lookup := perOp(m, 256, func() {
				for _, va := range vas {
					if os.PT.Lookup(va) == nil {
						panic("bench: mapping lost")
					}
				}
			}) / 64
			name := layout.name + ", " + os.PT.Name()
			t.Add(name, Us(lookup), N(float64(os.PT.SizeWords())*4/1024))
		}
	}
	t.Note("the kernel is oblivious to the structure: both run the same refill upcalls and capability checks")
	return t
}
