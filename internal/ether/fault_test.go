package ether

import (
	"testing"

	"exokernel/internal/fault"
	"exokernel/internal/hw"
)

// scriptedWire replays a fixed verdict per frame, in order; frames past
// the script are delivered intact. Scripted verdicts make the segment's
// fault plumbing testable without probabilities.
type scriptedWire struct {
	verdicts []fault.WireVerdict
	i        int
}

func (s *scriptedWire) FrameFate(frame []byte) fault.WireVerdict {
	if s.i >= len(s.verdicts) {
		return fault.WireVerdict{CorruptOff: -1}
	}
	v := s.verdicts[s.i]
	s.i++
	return v
}

func faultPair(t *testing.T, w *scriptedWire) (*Segment, *hw.Machine, *hw.Machine) {
	t.Helper()
	seg := NewSegment()
	seg.Fault = w
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	return seg, a, b
}

func TestInjectedDrop(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{Drop: true, CorruptOff: -1},
	}})
	a.NIC.Send(hw.Packet{Data: []byte{1}})
	if b.NIC.Pending() != 0 {
		t.Error("dropped frame was delivered")
	}
	if seg.Dropped != 1 {
		t.Errorf("Dropped = %d", seg.Dropped)
	}
	a.NIC.Send(hw.Packet{Data: []byte{2}})
	if b.NIC.Pending() != 1 {
		t.Error("frame after the script was not delivered intact")
	}
}

func TestInjectedDuplicate(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{Dup: true, CorruptOff: -1},
	}})
	a.NIC.Send(hw.Packet{Data: []byte{7}})
	if b.NIC.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (duplicate)", b.NIC.Pending())
	}
	if seg.Duplicated != 1 {
		t.Errorf("Duplicated = %d", seg.Duplicated)
	}
}

func TestInjectedCorruptionFlipsOneByteInCopy(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{CorruptOff: 1, CorruptXor: 0xFF},
	}})
	src := []byte{10, 20, 30}
	a.NIC.Send(hw.Packet{Data: src})
	p, ok := b.NIC.Recv()
	if !ok {
		t.Fatal("corrupted frame not delivered")
	}
	if p.Data[0] != 10 || p.Data[1] != 20^0xFF || p.Data[2] != 30 {
		t.Errorf("received %v, want one flipped byte at offset 1", p.Data)
	}
	if src[1] != 20 {
		t.Error("corruption mutated the sender's buffer")
	}
	if seg.Corrupted != 1 {
		t.Errorf("Corrupted = %d", seg.Corrupted)
	}
}

// A held frame is overtaken by at most HoldSpan later frames, then
// delivered — bounded reorder, not loss.
func TestInjectedHoldReordersBounded(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{Hold: true, CorruptOff: -1},
	}})
	seg.HoldSpan = 2
	a.NIC.Send(hw.Packet{Data: []byte{1}}) // held
	a.NIC.Send(hw.Packet{Data: []byte{2}}) // overtakes
	a.NIC.Send(hw.Packet{Data: []byte{3}}) // overtakes
	a.NIC.Send(hw.Packet{Data: []byte{4}}) // pushes the held frame out
	var got []byte
	for {
		p, ok := b.NIC.Recv()
		if !ok {
			break
		}
		got = append(got, p.Data[0])
	}
	want := []byte{2, 3, 4, 1}
	if len(got) != len(want) {
		t.Fatalf("received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("received %v, want %v", got, want)
		}
	}
	if seg.Reordered != 1 {
		t.Errorf("Reordered = %d", seg.Reordered)
	}
}

// Sync flushes held frames so nothing is starved across phases.
func TestSyncFlushesHeldFrames(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{Hold: true, CorruptOff: -1},
	}})
	a.NIC.Send(hw.Packet{Data: []byte{5}})
	if b.NIC.Pending() != 0 {
		t.Fatal("held frame delivered early")
	}
	seg.Sync()
	if b.NIC.Pending() != 1 {
		t.Error("Sync did not flush the held frame")
	}
}

// The held frame keeps its original causal arrival time: delivery after
// later frames must not rewind the receiver's clock.
func TestHeldFrameKeepsCausalArrival(t *testing.T) {
	seg, a, b := faultPair(t, &scriptedWire{verdicts: []fault.WireVerdict{
		{Hold: true, CorruptOff: -1},
	}})
	seg.WireCycles = 1000
	a.NIC.Send(hw.Packet{Data: []byte{1}})
	a.Clock.Tick(50_000)
	a.NIC.Send(hw.Packet{Data: []byte{2}})
	before := b.Clock.Cycles()
	seg.Sync()
	if b.Clock.Cycles() < before {
		t.Errorf("receiver clock rewound: %d -> %d", before, b.Clock.Cycles())
	}
}
