package ether

import (
	"testing"

	"exokernel/internal/hw"
)

func TestBroadcastReachesOthersOnly(t *testing.T) {
	seg := NewSegment()
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	c := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	seg.Attach(c)
	a.NIC.Send(hw.Packet{Data: []byte{1, 2, 3}})
	if a.NIC.Pending() != 0 {
		t.Error("sender received its own frame")
	}
	if b.NIC.Pending() != 1 || c.NIC.Pending() != 1 {
		t.Errorf("pending: b=%d c=%d", b.NIC.Pending(), c.NIC.Pending())
	}
	if seg.Frames != 2 {
		t.Errorf("Frames = %d", seg.Frames)
	}
}

func TestWireLatencyAdvancesReceiverClock(t *testing.T) {
	seg := NewSegment()
	seg.WireCycles = 1000
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	a.Clock.Tick(500)
	a.NIC.Send(hw.Packet{Data: make([]byte, 60)})
	// Arrival time = sender time (500 + tx copy charge) + 1000 wire.
	if got := b.Clock.Cycles(); got < 1500 {
		t.Errorf("receiver clock = %d, want >= 1500", got)
	}
}

func TestCausalityNeverRewindsClocks(t *testing.T) {
	seg := NewSegment()
	seg.WireCycles = 10
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	b.Clock.Tick(100000) // receiver far ahead
	a.NIC.Send(hw.Packet{Data: []byte{1}})
	if b.Clock.Cycles() != 100000 {
		t.Errorf("receiver clock moved backwards/forwards wrongly: %d", b.Clock.Cycles())
	}
}

func TestFramesAreCopied(t *testing.T) {
	seg := NewSegment()
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	buf := []byte{9, 9, 9}
	a.NIC.Send(hw.Packet{Data: buf})
	buf[0] = 0 // sender reuses its buffer
	p, ok := b.NIC.Recv()
	if !ok || p.Data[0] != 9 {
		t.Error("frame aliased the sender's buffer")
	}
}

func TestSyncAlignsClocks(t *testing.T) {
	seg := NewSegment()
	a := hw.NewMachine(hw.DEC5000)
	b := hw.NewMachine(hw.DEC5000)
	seg.Attach(a)
	seg.Attach(b)
	a.Clock.Tick(123)
	seg.Sync()
	if a.Clock.Cycles() != b.Clock.Cycles() {
		t.Errorf("clocks unaligned: %d vs %d", a.Clock.Cycles(), b.Clock.Cycles())
	}
}

func TestDefaultWireLatencyMatchesLowerBound(t *testing.T) {
	// Two traversals of the default wire ≈ the paper's 253 us Ethernet
	// round-trip lower bound at 25 MHz.
	us := 2 * float64(DefaultWireCycles) / 25.0
	if us < 250 || us > 256 {
		t.Errorf("2x default wire = %.1f us, want ~253", us)
	}
}
