// Package ether simulates an Ethernet segment connecting machines. Each
// machine keeps its own cycle clock; the segment imposes a wire latency
// and keeps clocks causally consistent: a frame sent at sender-time t
// arrives at receiver-time max(receiver clock, t + wire latency), and the
// receiver's clock is advanced to the arrival time. Round-trip
// measurements on the initiating machine therefore include the remote
// processing time, as they would on real hardware.
package ether

import (
	"exokernel/internal/fault"
	"exokernel/internal/hw"
)

// DefaultWireCycles is the one-way frame latency in cycles at 25 MHz:
// ~126 µs, calibrated so that the paper's "lower bound for cross-machine
// communication on Ethernet" (253 µs round trip for 60-byte frames,
// measured on DECstations [49]) is reproduced by two bare traversals.
const DefaultWireCycles = 3160

// WireFault decides, per broadcast frame, whether the wire misbehaves:
// loss, duplication, a flipped byte, or a bounded hold-back (reorder).
// nil means a perfect wire — the default.
type WireFault interface {
	FrameFate(frame []byte) fault.WireVerdict
}

// DefaultHoldSpan is how many later frames may overtake a held frame
// before the segment releases it (bounded reorder, not starvation).
const DefaultHoldSpan = 2

// heldFrame is a frame under an injected hold: it keeps its original
// causal arrival time but is delivered after up to HoldSpan later frames.
type heldFrame struct {
	from    *hw.Machine
	data    []byte
	arrival uint64
	age     int
}

// Segment is one shared wire.
type Segment struct {
	WireCycles uint64
	machines   []*hw.Machine
	// Frames counts deliveries (diagnostics).
	Frames uint64
	// Drop, when set, is consulted per frame: returning true discards it
	// (loss injection for protocol testing).
	Drop func(from *hw.Machine, frame []byte) bool
	// Dropped counts frames discarded by Drop or by injected loss.
	Dropped uint64

	// Fault, when non-nil, is the seeded fault layer (internal/fault).
	Fault WireFault
	// HoldSpan bounds reorder depth (0 means DefaultHoldSpan).
	HoldSpan int
	held     []heldFrame
	// Fault-injection stats; all zero with Fault nil.
	Corrupted, Duplicated, Reordered uint64
}

// NewSegment creates a segment with the default wire latency.
func NewSegment() *Segment { return &Segment{WireCycles: DefaultWireCycles} }

// Attach connects a machine's NIC to the wire.
func (s *Segment) Attach(m *hw.Machine) {
	s.machines = append(s.machines, m)
	m.NIC.ConnectTx(func(p hw.Packet) { s.broadcast(m, p) })
}

// broadcast delivers a frame to every other machine on the segment,
// advancing receiver clocks to the causal arrival time. With a fault
// layer attached the frame may instead be dropped, duplicated, held back
// behind later frames, or delivered with one byte flipped.
func (s *Segment) broadcast(from *hw.Machine, p hw.Packet) {
	if s.Drop != nil && s.Drop(from, p.Data) {
		s.Dropped++
		return
	}
	if s.Fault == nil {
		s.deliver(from, p.Data, from.Clock.Cycles()+s.WireCycles)
		return
	}
	v := s.Fault.FrameFate(p.Data)
	if v.Drop {
		s.Dropped++
		s.releaseHeld(false)
		return
	}
	data := p.Data
	if v.CorruptOff >= 0 && len(data) > 0 {
		buf := make([]byte, len(data))
		copy(buf, data)
		buf[v.CorruptOff%len(buf)] ^= v.CorruptXor
		data = buf
		s.Corrupted++
	}
	arrival := from.Clock.Cycles() + s.WireCycles
	if v.Hold {
		buf := make([]byte, len(data))
		copy(buf, data)
		s.held = append(s.held, heldFrame{from: from, data: buf, arrival: arrival})
		s.Reordered++
		return
	}
	s.deliver(from, data, arrival)
	if v.Dup {
		s.Duplicated++
		s.deliver(from, data, arrival)
	}
	s.releaseHeld(false)
}

// releaseHeld ages held frames by one delivery slot and delivers those
// whose hold has expired (or all of them, on a flush). It detaches the
// queue before iterating: a delivery can re-enter broadcast (an ASH
// transmitting from interrupt context), which may append fresh holds.
func (s *Segment) releaseHeld(flush bool) {
	span := s.HoldSpan
	if span == 0 {
		span = DefaultHoldSpan
	}
	pending := s.held
	s.held = nil
	for i := range pending {
		h := pending[i]
		h.age++
		if flush || h.age > span {
			s.deliver(h.from, h.data, h.arrival)
		} else {
			s.held = append(s.held, h)
		}
	}
}

// deliver hands one frame to every machine except the sender.
func (s *Segment) deliver(from *hw.Machine, data []byte, arrival uint64) {
	for _, m := range s.machines {
		if m == from {
			continue
		}
		if m.Clock.Cycles() < arrival {
			m.Clock.Tick(arrival - m.Clock.Cycles())
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		m.NIC.Deliver(hw.Packet{Data: buf})
		s.Frames++
	}
}

// Sync flushes any held frames and advances every attached clock to the
// maximum across the segment — used by experiment drivers between phases
// so no machine lags behind (and no frame is held back forever).
func (s *Segment) Sync() {
	// Flushing can trigger replies that are themselves held; drain a
	// bounded number of rounds (leftovers go out on the next Sync).
	for i := 0; i < 64 && len(s.held) > 0; i++ {
		s.releaseHeld(true)
	}
	var max uint64
	for _, m := range s.machines {
		if c := m.Clock.Cycles(); c > max {
			max = c
		}
	}
	for _, m := range s.machines {
		if c := m.Clock.Cycles(); c < max {
			m.Clock.Tick(max - c)
		}
	}
}
