// Package ether simulates an Ethernet segment connecting machines. Each
// machine keeps its own cycle clock; the segment imposes a wire latency
// and keeps clocks causally consistent: a frame sent at sender-time t
// arrives at receiver-time max(receiver clock, t + wire latency), and the
// receiver's clock is advanced to the arrival time. Round-trip
// measurements on the initiating machine therefore include the remote
// processing time, as they would on real hardware.
package ether

import "exokernel/internal/hw"

// DefaultWireCycles is the one-way frame latency in cycles at 25 MHz:
// ~126 µs, calibrated so that the paper's "lower bound for cross-machine
// communication on Ethernet" (253 µs round trip for 60-byte frames,
// measured on DECstations [49]) is reproduced by two bare traversals.
const DefaultWireCycles = 3160

// Segment is one shared wire.
type Segment struct {
	WireCycles uint64
	machines   []*hw.Machine
	// Frames counts deliveries (diagnostics).
	Frames uint64
	// Drop, when set, is consulted per frame: returning true discards it
	// (loss injection for protocol testing).
	Drop func(from *hw.Machine, frame []byte) bool
	// Dropped counts frames discarded by Drop.
	Dropped uint64
}

// NewSegment creates a segment with the default wire latency.
func NewSegment() *Segment { return &Segment{WireCycles: DefaultWireCycles} }

// Attach connects a machine's NIC to the wire.
func (s *Segment) Attach(m *hw.Machine) {
	s.machines = append(s.machines, m)
	m.NIC.ConnectTx(func(p hw.Packet) { s.broadcast(m, p) })
}

// broadcast delivers a frame to every other machine on the segment,
// advancing receiver clocks to the causal arrival time.
func (s *Segment) broadcast(from *hw.Machine, p hw.Packet) {
	if s.Drop != nil && s.Drop(from, p.Data) {
		s.Dropped++
		return
	}
	arrival := from.Clock.Cycles() + s.WireCycles
	for _, m := range s.machines {
		if m == from {
			continue
		}
		if m.Clock.Cycles() < arrival {
			m.Clock.Tick(arrival - m.Clock.Cycles())
		}
		buf := make([]byte, len(p.Data))
		copy(buf, p.Data)
		m.NIC.Deliver(hw.Packet{Data: buf})
		s.Frames++
	}
}

// Sync advances every attached clock to the maximum across the segment —
// used by experiment drivers between phases so no machine lags behind.
func (s *Segment) Sync() {
	var max uint64
	for _, m := range s.machines {
		if c := m.Clock.Cycles(); c > max {
			max = c
		}
	}
	for _, m := range s.machines {
		if c := m.Clock.Cycles(); c < max {
			m.Clock.Tick(max - c)
		}
	}
}
