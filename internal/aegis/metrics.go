package aegis

import "exokernel/internal/metrics"

// Cycle-latency histograms. The accounting registry's counters say *how
// often* each kernel decision was made; the histograms here say *how
// long* each one took — the full distribution, not the minima the
// paper's tables settle for, because our software kernel has real tails
// (STLB eviction, ASH runs, revocation storms) that single numbers hide.
//
// Recording follows the ktrace contract: it never ticks the simulated
// clock, so the cost model is byte-identical with histograms on or off
// (pinned by TestMetricsOffIsFree). Durations are measured as the cycles
// the clock advanced between entering a kernel path and leaving it, so
// they reflect exactly what the cost model charged.

// OpClass names one instrumented class of kernel operation.
type OpClass uint8

// Operation classes, one histogram each (globally and per environment).
const (
	OpSyscall    OpClass = iota // syscall dispatch, enter to exit (any path)
	OpException                 // exception dispatch to handler entry
	OpSTLBRefill                // hardware TLB miss absorbed by the STLB
	OpProtCall                  // protected control transfer, caller to callee entry
	OpDemux                     // packet classify + deliver (DPF match + ASH run)
	OpASHRun                    // application-specific handler execution alone
	OpDiskIO                    // disk read/write, capability checks + DMA
	OpCtxSwitch                 // kernel-forced context switch
	NumOpClasses
)

var opNames = [NumOpClasses]string{
	OpSyscall:    "syscall",
	OpException:  "exception",
	OpSTLBRefill: "stlb-refill",
	OpProtCall:   "prot-call",
	OpDemux:      "pkt-demux",
	OpASHRun:     "ash-run",
	OpDiskIO:     "disk-io",
	OpCtxSwitch:  "ctx-switch",
}

func (o OpClass) String() string {
	if o < NumOpClasses {
		return opNames[o]
	}
	return "op?"
}

// syscallNames label the per-number syscall histograms (and /proc
// renderings). Index = syscall code; the final slot collects undecoded
// codes.
var syscallNames = [sysMaxDecoded + 1]string{
	SysNull:       "null",
	SysGetEnv:     "getenv",
	SysYield:      "yield",
	SysAllocPage:  "allocpage",
	SysDealloc:    "dealloc",
	SysMapTLB:     "maptlb",
	SysUnmapTLB:   "unmaptlb",
	SysRetExc:     "retexc",
	SysPCTSync:    "pctsync",
	SysPCTAsync:   "pctasync",
	SysCycles:     "cycles",
	SysExit:       "exit",
	SysSetExcVec:  "setexcvec",
	SysSetTLBVec:  "settlbvec",
	SysSetIntVec:  "setintvec",
	SysSetEntry:   "setentry",
	sysMaxDecoded: "unknown",
}

// SyscallName returns the mnemonic for a syscall code ("unknown" for
// codes the dispatcher does not decode).
func SyscallName(code uint32) string {
	if code < sysMaxDecoded {
		return syscallNames[code]
	}
	return syscallNames[sysMaxDecoded]
}

// NumSyscallHists is the size of the per-syscall histogram table.
const NumSyscallHists = sysMaxDecoded + 1

// envHist is one environment's set of operation histograms.
type envHist [NumOpClasses]metrics.Hist

// Reset zeroes every histogram in the set (DestroyEnv reclamation).
func (h *envHist) Reset() { *h = envHist{} }

// noEnvHist swallows samples attributed to "no environment" (boot work,
// packet drops), mirroring noAccount.
var noEnvHist envHist

// envOps returns the mutable histogram set for an environment, growing
// the table on first touch (same dense-EnvID discipline as acct).
func (r *Registry) envOps(id EnvID) *envHist {
	if id == 0 {
		return &noEnvHist
	}
	for int(id) > len(r.perEnvOps) {
		r.perEnvOps = append(r.perEnvOps, envHist{})
	}
	return &r.perEnvOps[id-1]
}

// OpSnapshot summarizes one kernel-wide operation-class histogram.
func (r *Registry) OpSnapshot(op OpClass) metrics.Snapshot {
	if op >= NumOpClasses {
		return metrics.Snapshot{}
	}
	return r.Ops[op].Snapshot()
}

// SyscallSnapshot summarizes the kernel-wide histogram for one syscall
// number (clamped to the "unknown" slot for undecoded codes).
func (r *Registry) SyscallSnapshot(code uint32) metrics.Snapshot {
	if code >= sysMaxDecoded {
		code = sysMaxDecoded
	}
	return r.SyscallOps[code].Snapshot()
}

// EnvOpSnapshot summarizes one environment's histogram for one operation
// class. Unknown environments — and destroyed ones, whose histograms are
// reclaimed with their other resources — report the zero Snapshot.
func (r *Registry) EnvOpSnapshot(id EnvID, op OpClass) metrics.Snapshot {
	if id == 0 || int(id) > len(r.perEnvOps) || op >= NumOpClasses {
		return metrics.Snapshot{}
	}
	return r.perEnvOps[id-1][op].Snapshot()
}

// --- Kernel-side recording ------------------------------------------------

// opStart samples the clock at a kernel path's entry. It exists so the
// instrumentation sites read as a pair (start := k.opStart(); ...;
// k.recordOp(op, env, start)) and so the read itself is visibly not a
// Tick.
func (k *Kernel) opStart() uint64 { return k.M.Clock.Cycles() }

// recordOp attributes the cycles elapsed since start to an operation
// class, both kernel-wide and on the responsible environment's account.
// Pure observation: no clock ticks, no allocation. The profiler bridge
// runs before the MetricsOn check — the two observers are independent,
// and every recordOp site doubles as a profiler kernel window.
func (k *Kernel) recordOp(op OpClass, env EnvID, start uint64) {
	if k.Prof != nil {
		k.Prof.KernelWindow(uint8(op), uint32(env), start, k.M.Clock.Cycles())
	}
	if !k.Stats.MetricsOn {
		return
	}
	d := k.M.Clock.Cycles() - start
	k.Stats.Ops[op].Record(d)
	k.Stats.envOps(env)[op].Record(d)
}

// recordSyscall is recordOp for the syscall class plus the per-number
// breakdown.
func (k *Kernel) recordSyscall(code uint32, env EnvID, start uint64) {
	if k.Prof != nil {
		k.Prof.KernelWindow(uint8(OpSyscall), uint32(env), start, k.M.Clock.Cycles())
	}
	if !k.Stats.MetricsOn {
		return
	}
	d := k.M.Clock.Cycles() - start
	k.Stats.Ops[OpSyscall].Record(d)
	if code >= sysMaxDecoded {
		code = sysMaxDecoded
	}
	k.Stats.SyscallOps[code].Record(d)
	k.Stats.envOps(env)[OpSyscall].Record(d)
}

// OpNames returns the operation-class labels indexed by class value,
// in the layout the profiler's kernel buckets use.
func OpNames() []string {
	names := make([]string, NumOpClasses)
	for i := range names {
		names[i] = opNames[i]
	}
	return names
}
