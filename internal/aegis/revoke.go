package aegis

import (
	"fmt"

	"exokernel/internal/ktrace"
)

// Resource revocation (§3.3–3.4). Aegis revokes *visibly*: it asks the
// owning library OS to release a specific physical page, so the application
// can pick victims, write back state, and update its own bookkeeping. Only
// if the library OS fails to comply does the kernel fall back to the abort
// protocol: "breaking all existing secure bindings of the resource by
// force" and informing the library OS through its repossession vector.

// RevokeOutcome reports how a revocation was resolved.
type RevokeOutcome int

// Revocation outcomes.
const (
	// RevokeComplied: the library OS released the page itself.
	RevokeComplied RevokeOutcome = iota
	// RevokeAborted: the kernel repossessed the page by force.
	RevokeAborted
	// RevokeNoOwner: the frame was not allocated.
	RevokeNoOwner
)

func (o RevokeOutcome) String() string {
	switch o {
	case RevokeComplied:
		return "complied"
	case RevokeAborted:
		return "aborted"
	case RevokeNoOwner:
		return "no-owner"
	}
	return "revoke?"
}

// RevokePage asks the owner of a frame to give it back, aborting on
// non-compliance. It returns how the page came back.
func (k *Kernel) RevokePage(frame uint32) (RevokeOutcome, error) {
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return RevokeNoOwner, fmt.Errorf("aegis: revoke of unallocated frame %d", frame)
	}
	k.Stats.Revocations++
	ownerID := k.frames[frame].owner
	owner, _ := k.Env(ownerID)
	k.trace(ktrace.KindRevokeRequest, ownerID, uint64(frame), 0, 0)

	// Visible phase: upcall into the library OS ("please release a page").
	if owner != nil && owner.NativeRevoke != nil {
		k.charge(12) // upcall dispatch
		if owner.NativeRevoke(k, frame) && !k.frames[frame].bound {
			k.trace(ktrace.KindRevokeComply, ownerID, uint64(frame), 0, 0)
			return RevokeComplied, nil
		}
	}

	// Abort protocol: break the bindings by force and record the loss in
	// the repossession vector.
	k.Stats.Aborts++
	k.charge(10)
	k.breakBindings(frame)
	k.frames[frame] = frameBinding{}
	if a := k.Stats.acct(ownerID); a.Frames > 0 {
		a.Frames--
	}
	k.trace(ktrace.KindRevokeAbort, ownerID, uint64(frame), 0, 0)
	k.trace(ktrace.KindFrameUnbind, ownerID, uint64(frame), 0, 0)
	if err := k.M.Phys.FreeFrame(frame); err != nil {
		return RevokeAborted, err
	}
	if owner != nil {
		owner.Repossessed = append(owner.Repossessed, frame)
	}
	return RevokeAborted, nil
}
