package aegis

import (
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// Save-area layout (word offsets). The dispatcher spills the three scratch
// registers and the exception report here using physical addresses, so the
// spill itself can never fault (§5.3: "To avoid TLB exceptions, Aegis does
// this operation using physical addresses").
const (
	saveAT = iota * hw.WordSize
	saveK0
	saveK1
	saveEPC
)

// Resume tells the kernel how to continue after a native handler returns.
type Resume int

// Resume actions.
const (
	// ResumeRetry re-executes the faulting instruction (the normal case
	// after a TLB or protection fix-up).
	ResumeRetry Resume = iota
	// ResumeSkip continues at the instruction after the fault (emulation,
	// or benchmarks that only want the dispatch).
	ResumeSkip
	// ResumeNone means the handler already rearranged control flow
	// (yielded, killed the environment, performed a protected call).
	ResumeNone
)

// HandleTrap is the machine's single entry into the kernel. Cause, EPC and
// BadVAddr are in the CPU report registers.
func (k *Kernel) HandleTrap(m *hw.Machine) {
	switch m.CPU.Cause {
	case hw.ExcSyscall:
		k.syscall()
	case hw.ExcInterrupt:
		k.interrupt()
	case hw.ExcTLBMissL, hw.ExcTLBMissS:
		k.tlbMiss()
	default:
		k.dispatchException()
	}
}

// dispatchException forwards a hardware exception to the application
// (§5.3). The entire kernel path is: save three scratch registers to the
// agreed-upon save area (physical addresses), load EPC / BadVAddr / cause
// into those registers, and jump to the application handler in user mode.
// "Aegis dispatches exceptions in 18 instructions."
func (k *Kernel) dispatchException() {
	start := k.opStart()
	k.Stats.Exceptions++
	cpu := &k.M.CPU
	e := k.CurEnv()
	if e == nil {
		k.Interp.RequestStop()
		return
	}
	k.Stats.acct(e.ID).Exceptions++
	k.trace(ktrace.KindException, e.ID, uint64(cpu.Cause), uint64(cpu.EPC), uint64(cpu.BadVAddr))
	t := TrapInfo{Cause: cpu.Cause, EPC: cpu.EPC, BadVAddr: cpu.BadVAddr}

	k.spillScratch(e)

	if e.NativeExc != nil {
		// Dispatch latency ends where the handler begins; the handler's
		// own work is not the kernel's dispatch cost.
		k.recordOp(OpException, e.ID, start)
		e.NativeExc(k, t)
		return
	}
	if vec := e.ExcVec[cpu.Cause&15]; vec != 0 {
		// Step 4: enter the application handler in user mode.
		cpu.PC = vec
		cpu.Mode = hw.ModeUser
		k.recordOp(OpException, e.ID, start)
		return
	}
	// No handler installed: the environment cannot make progress.
	k.recordOp(OpException, e.ID, start)
	k.kill(e, t)
}

// ReturnFromException restores the spilled scratch registers and resumes
// the interrupted computation. VM handlers reach it through the retexc
// system call; native handlers return a Resume action and the trap paths
// call it directly.
func (k *Kernel) ReturnFromException(e *Env, action Resume) {
	cpu := &k.M.CPU
	phys := k.M.Phys
	cpu.SetReg(hw.RegAT, phys.ReadWordUncached(e.SaveArea+saveAT))
	cpu.SetReg(hw.RegK0, phys.ReadWordUncached(e.SaveArea+saveK0))
	cpu.SetReg(hw.RegK1, phys.ReadWordUncached(e.SaveArea+saveK1))
	epc := phys.ReadWordUncached(e.SaveArea + saveEPC)
	k.M.Clock.Tick(hw.CostExcReturn)
	switch action {
	case ResumeRetry:
		cpu.PC = epc
	case ResumeSkip:
		cpu.PC = epc + 1
	case ResumeNone:
		return
	}
	cpu.Mode = hw.ModeUser
}

// tlbMiss services a hardware TLB refill (§5.2). Fast path: the software
// TLB absorbs capacity misses entirely inside the kernel. Slow path: the
// miss is the application's to handle — ExOS installs a native hook (its
// page table), or a VM environment installs a TLBVec handler.
func (k *Kernel) tlbMiss() {
	start := k.opStart()
	k.Stats.TLBMisses++
	cpu := &k.M.CPU
	e := k.CurEnv()
	if e == nil {
		k.Interp.RequestStop()
		return
	}
	vpn := cpu.BadVAddr >> hw.PageShift
	k.Stats.acct(e.ID).TLBMisses++
	k.trace(ktrace.KindTLBMiss, e.ID, uint64(vpn), b2u(cpu.Cause == hw.ExcTLBMissS), 0)
	if k.STLBEnabled {
		k.M.Clock.Tick(hw.CostSTLBLookup)
		if entry, ok := k.stlb.lookup(vpn, cpu.ASID); ok {
			// The miss never reaches the application: install and retry.
			k.M.TLB.WriteRandom(entry)
			k.Stats.STLBHits++
			k.trace(ktrace.KindSTLBHit, e.ID, uint64(vpn), 0, 0)
			cpu.PC = cpu.EPC
			cpu.Mode = hw.ModeUser
			k.recordOp(OpSTLBRefill, e.ID, start)
			return
		}
	}
	k.Stats.TLBUpcalls++
	k.Stats.acct(e.ID).TLBUpcalls++
	k.trace(ktrace.KindTLBUpcall, e.ID, uint64(vpn), 0, 0)
	write := cpu.Cause == hw.ExcTLBMissS
	if e.NativeTLBMiss != nil {
		// Charge the same dispatch prologue an upcall costs (the spills
		// are real work even when the handler is modelled natively).
		k.charge(18)
		if e.NativeTLBMiss(k, cpu.BadVAddr, write) {
			cpu.PC = cpu.EPC // mapping installed; restart the instruction
			cpu.Mode = hw.ModeUser
			return
		}
		// Unmapped at application level too: deliver as an exception so
		// the library OS's fault machinery (or the kill path) runs.
		k.dispatchException()
		return
	}
	if e.TLBVec != 0 {
		k.dispatchTo(e, e.TLBVec)
		return
	}
	k.kill(e, TrapInfo{Cause: cpu.Cause, EPC: cpu.EPC, BadVAddr: cpu.BadVAddr})
}

// spillScratch is the dispatch prologue (§5.3 steps 1-3): save the three
// scratch registers and the exception PC to the agreed-upon save area
// using physical addresses (4 uncached stores), load EPC / BadVAddr /
// cause into the freed registers, and demultiplex — the remaining ~9
// instructions of the 18-instruction dispatch path.
func (k *Kernel) spillScratch(e *Env) {
	cpu := &k.M.CPU
	phys := k.M.Phys
	phys.WriteWordUncached(e.SaveArea+saveAT, cpu.Reg(hw.RegAT))
	phys.WriteWordUncached(e.SaveArea+saveK0, cpu.Reg(hw.RegK0))
	phys.WriteWordUncached(e.SaveArea+saveK1, cpu.Reg(hw.RegK1))
	phys.WriteWordUncached(e.SaveArea+saveEPC, cpu.EPC)
	cpu.SetReg(hw.RegK0, cpu.EPC)
	cpu.SetReg(hw.RegK1, cpu.BadVAddr)
	cpu.SetReg(hw.RegAT, uint32(cpu.Cause))
	k.charge(9)
}

// dispatchTo runs the standard dispatch prologue and enters a specific
// handler PC (used for the TLB and interrupt contexts).
func (k *Kernel) dispatchTo(e *Env, vec uint32) {
	k.spillScratch(e)
	cpu := &k.M.CPU
	cpu.PC = vec
	cpu.Mode = hw.ModeUser
}

// b2u converts a bool to a trace argument.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// interrupt demultiplexes external interrupts.
func (k *Kernel) interrupt() {
	cpu := &k.M.CPU
	k.charge(4)
	if cpu.Pending&hw.IRQNIC != 0 {
		k.serviceNIC()
	}
	if cpu.Pending&hw.IRQTimer != 0 {
		cpu.Pending &^= hw.IRQTimer
		k.timerTick()
		return
	}
	// Return to the interrupted environment.
	cpu.PC = cpu.EPC
	if k.cur != 0 {
		cpu.Mode = hw.ModeUser
	}
}
