package aegis

import (
	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/ktrace"
)

// EnvID names an environment. 0 is never a valid environment.
type EnvID uint32

// TrapInfo describes a dispatched exception to a native handler.
type TrapInfo struct {
	Cause    hw.Exc
	EPC      uint32
	BadVAddr uint32
}

// Env is an environment: the exokernel's minimal process state. Aegis keeps
// only what secure multiplexing needs — saved registers and the four
// contexts of §4.1 (exception, interrupt, protected entry, addressing).
// Everything else (threads, address-space layout, signals...) belongs to
// the library OS.
type Env struct {
	ID   EnvID
	ASID uint8

	// Saved processor state while not running.
	Regs [hw.NumRegs]uint32
	PC   uint32
	FPU  bool

	// Code is the instruction segment for VM-run environments (nil for
	// purely native environments).
	Code isa.Code

	// SaveArea is the physical address of the agreed-upon save area the
	// dispatcher spills the three scratch registers into (§5.3 step 1).
	SaveArea uint32

	// Exception context: per-cause program counters in the environment's
	// code segment. Zero means "not installed" (PC 0 is reserved by
	// convention: segments begin with a guard instruction).
	ExcVec [16]uint32
	// TLBVec is the PC of the TLB-miss handler (addressing context).
	TLBVec uint32
	// IntVec is the PC of the time-slice interrupt handler.
	IntVec uint32
	// EntrySync and EntryAsync are the protected entry points callable by
	// other environments.
	EntrySync, EntryAsync uint32

	// Native hooks model library-OS code written in Go; each charges the
	// simulated clock for the work it does. A hook takes precedence over
	// the corresponding VM vector.
	NativeExc     func(k *Kernel, t TrapInfo)
	NativeTLBMiss func(k *Kernel, va uint32, write bool) bool
	NativeInt     func(k *Kernel)
	NativeEntry   func(k *Kernel, caller EnvID)
	// NativeRevoke is the visible-revocation upcall: "please release a
	// page". It returns true if the library OS complied.
	NativeRevoke func(k *Kernel, frame uint32) bool
	// NativeRun is the body of a native environment; the scheduler calls
	// it each time the environment is dispatched.
	NativeRun func(k *Kernel)

	// caps is the environment's capability list for the VM syscall ABI
	// (register-sized handles for heap-sized capabilities). Native code
	// holds cap.Capability values directly.
	caps []cap.Capability

	// Trace is the environment's active span context — the causal identity
	// of the request it is currently working for. Protected control
	// transfers copy it caller→callee the same way registers carry the
	// message; library code sets and clears it around request boundaries.
	// Pure observation metadata: no kernel decision ever reads it.
	Trace ktrace.SpanContext

	// Repossession vector (§3.4): physical pages the kernel took by force,
	// so the library OS can discover losses after an abort.
	Repossessed []uint32

	// Scheduling accounting.
	Slices uint64 // time slices consumed
	Excess uint64 // excess-time penalty (slices forfeited)

	// Dead marks an exited or killed environment.
	Dead bool
	// LastFault records the last exception the kernel could not dispatch
	// (no handler installed); diagnostic.
	LastFault TrapInfo
}

// AddCap appends a capability to the environment's c-list and returns its
// register-sized handle.
func (e *Env) AddCap(c cap.Capability) uint32 {
	e.caps = append(e.caps, c)
	return uint32(len(e.caps) - 1)
}

// Cap resolves a handle.
func (e *Env) Cap(handle uint32) (cap.Capability, bool) {
	if int(handle) >= len(e.caps) {
		return cap.Capability{}, false
	}
	return e.caps[handle], true
}
