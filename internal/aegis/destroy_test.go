package aegis

import (
	"testing"

	"exokernel/internal/hw"
)

func TestDestroyEnvReclaimsEverything(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	free0 := m.Phys.FreeFrames()

	// Give a: three pages (one mapped), an extent, an endpoint with an ASH.
	var frames []uint32
	for i := 0; i < 3; i++ {
		f, g, err := k.AllocPage(a, AnyFrame)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		if i == 0 {
			if err := k.InstallMapping(a, 0x1000_0000, f, hw.PermWrite, g); err != nil {
				t.Fatal(err)
			}
		}
		_ = g
	}
	if _, _, err := k.AllocExtent(a, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := k.InstallFilter(a, byteFilter(9)); err != nil {
		t.Fatal(err)
	}

	k.DestroyEnv(a)

	if !a.Dead {
		t.Error("env not dead")
	}
	// All three pages came back, plus the save area a was born with (free0
	// was sampled after a's creation, so the net is +1).
	if got := m.Phys.FreeFrames(); got != free0+1 {
		t.Errorf("free frames = %d, want %d", got, free0+1)
	}
	// The frames are reusable by others.
	for _, f := range frames {
		if !m.Phys.AllocFrameAt(f) {
			t.Errorf("frame %d not reusable", f)
		}
		m.Phys.FreeFrame(f)
	}
	// Translations are gone.
	m.CPU.ASID = a.ASID
	if _, exc := m.Translate(0x1000_0000, false); exc == hw.ExcNone {
		t.Error("destroyed env still has live translations")
	}
	// The endpoint no longer receives.
	m.NIC.Deliver(hw.Packet{Data: []byte{9}})
	if k.Stats.PktDelivered != 0 {
		t.Error("destroyed env's filter still matches")
	}
	// The whole disk is allocatable again (b can take everything).
	if _, _, err := k.AllocExtent(b, uint32(m.Disk.NumBlocks())); err != nil {
		t.Errorf("extent space not reclaimed: %v", err)
	}
}

func TestDestroyEnvLeavesOthersAlone(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	fb, gb, err := k.AllocPage(b, AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.InstallMapping(b, 0x2000_0000, fb, hw.PermWrite, gb); err != nil {
		t.Fatal(err)
	}
	epB, err := k.InstallFilter(b, byteFilter(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := k.AllocPage(a, AnyFrame); err != nil {
		t.Fatal(err)
	}

	k.DestroyEnv(a)

	if k.FrameOwner(fb) != b.ID {
		t.Error("b's frame reclaimed")
	}
	m.CPU.ASID = b.ASID
	if _, exc := m.Translate(0x2000_0000, true); exc != hw.ExcNone {
		t.Error("b's mapping destroyed")
	}
	m.NIC.Deliver(hw.Packet{Data: []byte{5}})
	if epB.Delivered != 1 {
		t.Error("b's endpoint no longer receives")
	}
}
