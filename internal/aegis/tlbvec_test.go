package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/vm"
)

// TestDownloadedTLBMissHandler runs the fully application-level refill
// path with the handler itself written in the simulated ISA: the program
// allocates a page, installs its own TLB-miss handler (the "addressing
// context"), and then touches unmapped memory — the kernel vectors the
// miss to the downloaded handler, which services it with the maptlb
// system call and retries the faulting instruction.
func TestDownloadedTLBMissHandler(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	code, labels, err := asm.AssembleWithLabels(`
		nop
	entry:
		addiu v0, zero, 3      ; allocpage
		addiu a0, zero, -1
		syscall
		addu  s0, v0, zero     ; frame
		addu  s1, v1, zero     ; cap handle
		addiu v0, zero, 13     ; set TLB-miss vector
		addiu a0, zero, refill
		syscall
		; touch va 0x20000: misses, handler maps it, store retries
		lui   t0, 2
		addiu t1, zero, 314
		sw    t1, 0(t0)
		lw    s2, 0(t0)
		halt
	refill:
		; k1 = faulting va (placed there by the dispatcher)
		addiu v0, zero, 5      ; maptlb
		addu  a0, k1, zero
		addu  a1, s0, zero
		addiu a2, zero, 2      ; writable
		addu  a3, s1, zero
		syscall
		addiu v0, zero, 7      ; retexc, retry
		addiu a0, zero, 0
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		t.Fatal(err)
	}
	// Make the miss reach the handler, not the software TLB fast path
	// (nothing cached yet, so the STLB misses anyway — this documents it).
	m.CPU.PC = uint32(labels["entry"])
	if r := k.Interp.Run(10000); r != vm.StopHalt {
		t.Fatalf("program stopped: %v (dead=%v fault=%+v)", r, env.Dead, env.LastFault)
	}
	if got := m.CPU.Reg(hw.RegS2); got != 314 {
		t.Errorf("s2 = %d, want 314 (store/load via downloaded refill handler)", got)
	}
	if k.Stats.TLBUpcalls == 0 {
		t.Error("no TLB upcall recorded")
	}
	if env.TLBVec != uint32(labels["refill"]) {
		t.Errorf("TLBVec = %d", env.TLBVec)
	}
}

// TestDownloadedInterruptHandler exercises the VM interrupt context: the
// time-slice handler saves what it needs and yields with a system call.
func TestDownloadedInterruptHandler(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	spin, labels, err := asm.AssembleWithLabels(`
		nop
	entry:
		addiu v0, zero, 14     ; set interrupt vector
		addiu a0, zero, slice
		syscall
	loop:
		addiu t9, t9, 1
		j     loop
	slice:
		; donate the slice onward (a real libOS would save registers
		; first; t9 survives because yield preserves the register file
		; into our environment)
		addiu v0, zero, 2
		addiu a0, zero, 0      ; yield-next
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := k.NewEnv(spin)
	if err != nil {
		t.Fatal(err)
	}
	halter := asm.MustAssemble(`
		addiu s7, zero, 5
		halt
	`)
	b, err := k.NewEnv(halter)
	if err != nil {
		t.Fatal(err)
	}
	k.SetQuantum(200)
	m.CPU.PC = uint32(labels["entry"])
	if r := k.Interp.Run(100000); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(hw.RegS7) != 5 {
		t.Error("second environment never ran")
	}
	if a.Slices == 0 {
		t.Error("spinner consumed no slices")
	}
	_ = b
}
