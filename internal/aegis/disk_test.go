package aegis

import (
	"testing"

	"exokernel/internal/cap"
)

func TestExtentAllocationDisjoint(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	s1, g1, err := k.AllocExtent(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := k.AllocExtent(a, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < s2+50 && s2 < s1+100 {
		t.Errorf("extents overlap: %d+100 and %d+50", s1, s2)
	}
	if _, _, err := k.AllocExtent(a, 0); err == nil {
		t.Error("empty extent accepted")
	}
	if err := k.FreeExtent(s1, 100, g1); err != nil {
		t.Fatal(err)
	}
	// Freed space is reusable.
	s3, _, err := k.AllocExtent(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("first-fit did not reuse freed space: got %d, want %d", s3, s1)
	}
}

func TestExtentCapabilityChecks(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	start, guard, err := k.AllocExtent(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	frame, fguard, err := k.AllocPage(a, AnyFrame)
	if err != nil {
		t.Fatal(err)
	}

	// Happy path.
	if err := k.DiskWrite(start, 10, 3, guard, frame, fguard); err != nil {
		t.Fatalf("genuine write failed: %v", err)
	}
	if err := k.DiskRead(start, 10, 3, guard, frame, fguard); err != nil {
		t.Fatalf("genuine read failed: %v", err)
	}

	// Forged extent capability.
	forged := cap.Capability{Resource: diskResource(start, 10), Rights: cap.Read | cap.Write}
	if err := k.DiskRead(start, 10, 3, forged, frame, fguard); err == nil {
		t.Error("forged extent capability accepted")
	}
	// Out-of-extent offset.
	if err := k.DiskRead(start, 10, 10, guard, frame, fguard); err == nil {
		t.Error("offset past extent accepted")
	}
	// Mislabeled extent (capability for different range).
	if err := k.DiskRead(start+1, 9, 0, guard, frame, fguard); err == nil {
		t.Error("capability accepted for different extent")
	}
	// Bad frame capability.
	badf := cap.Capability{Resource: uint64(frame), Rights: cap.Write}
	if err := k.DiskRead(start, 10, 0, guard, frame, badf); err == nil {
		t.Error("forged frame capability accepted")
	}
	// Read-only derived extent capability cannot write.
	ro, ok := k.Auth.Derive(guard, cap.Read)
	if !ok {
		t.Fatal("derive failed")
	}
	if err := k.DiskWrite(start, 10, 0, ro, frame, fguard); err == nil {
		t.Error("read capability wrote to disk")
	}
	if err := k.DiskRead(start, 10, 0, ro, frame, fguard); err != nil {
		t.Errorf("read with read capability failed: %v", err)
	}
}

func TestFreeExtentChecks(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	start, guard, err := k.AllocExtent(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	bad := cap.Capability{Resource: diskResource(start, 5), Rights: cap.Write}
	if err := k.FreeExtent(start, 5, bad); err == nil {
		t.Error("forged free accepted")
	}
	if err := k.FreeExtent(start, 5, guard); err != nil {
		t.Fatal(err)
	}
	if err := k.FreeExtent(start, 5, guard); err == nil {
		t.Error("double free accepted")
	}
}

func TestExtentExhaustion(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	total := uint32(k.M.Disk.NumBlocks())
	if _, _, err := k.AllocExtent(a, total+1); err == nil {
		t.Error("oversized extent accepted")
	}
	if _, _, err := k.AllocExtent(a, total); err != nil {
		t.Errorf("whole-disk extent failed: %v", err)
	}
	if _, _, err := k.AllocExtent(a, 1); err == nil {
		t.Error("allocation from full disk succeeded")
	}
}
