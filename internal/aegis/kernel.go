package aegis

import (
	"fmt"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/ktrace"
	"exokernel/internal/prof"
	"exokernel/internal/vm"
)

// frameBinding records the secure binding on one physical frame: who
// allocated it and the self-authenticating capability that guards it.
// Access checks happen at *bind* time (installing a TLB mapping), never on
// individual memory references — that is the essence of a secure binding.
type frameBinding struct {
	owner EnvID
	bound bool
	guard cap.Capability
}

// Kernel is the Aegis exokernel for one machine.
type Kernel struct {
	M      *hw.Machine
	Interp *vm.Interp
	Auth   *cap.Authority

	envs []*Env // index = EnvID-1
	cur  EnvID
	// curCode mirrors the current environment's code segment for the
	// per-instruction fetch path. Republished by setCode at every point
	// where cur changes; Env.Code itself is immutable after NewEnv.
	curCode isa.Code

	frames  []frameBinding
	extents []extent
	stlb    *stlb
	// STLBEnabled can be cleared for the ablation benchmark.
	STLBEnabled bool

	// Time-slice vector (§5.1.1): the CPU as a linear vector of slices.
	slices   []EnvID
	slicePos int
	quantum  uint64

	// Network endpoints, in filter-priority order, and the optional
	// shared classifier that replaces the linear filter walk.
	endpoints []*Endpoint
	demux     Demux

	// Stats is the accounting registry: the kernel-wide counters
	// (promoted, so k.Stats.Syscalls reads as before) plus one account
	// per environment (account.go).
	Stats Registry

	// Tracer, when non-nil, is the attached flight recorder. It records
	// cycle-stamped events but never advances the clock: the cost model
	// is identical traced or untraced.
	Tracer *ktrace.Recorder
	// Spans, when non-nil, collects causal request spans (same
	// contract as Tracer: observation only, zero clock perturbation; a
	// nil recorder is valid and inert).
	Spans *ktrace.SpanRecorder
	// TraceParse and TraceStamp are library-installed wire hooks (the
	// SetDemux pattern: the kernel knows no protocols, so the library
	// that owns the frame format tells it where trace context lives).
	// TraceParse extracts the span context carried by an incoming
	// frame; TraceStamp writes a context into an outgoing one. Either
	// may be nil.
	TraceParse func(frame []byte) ktrace.SpanContext
	TraceStamp func(frame []byte, ctx ktrace.SpanContext)
	// Prof, when non-nil, is the attached cycle profiler (same contract
	// again: observation only, never a Tick). Every recordOp site
	// doubles as a profiler kernel window; attach with SetProf so the
	// interpreter hooks are wired too.
	Prof *prof.Profiler
	// runStart is the cycle at which the current environment's
	// attribution span began (see settleCycles).
	runStart uint64
}

// SetSpans attaches (or detaches, nil) the span recorder.
func (k *Kernel) SetSpans(r *ktrace.SpanRecorder) { k.Spans = r }

// SetProf attaches (or detaches, nil) the cycle profiler to both the
// kernel's operation windows and the interpreter's per-instruction
// hooks.
func (k *Kernel) SetProf(p *prof.Profiler) {
	k.Prof = p
	k.Interp.Prof = p
}

// SetTraceWire installs the wire-format trace hooks.
func (k *Kernel) SetTraceWire(parse func([]byte) ktrace.SpanContext, stamp func([]byte, ktrace.SpanContext)) {
	k.TraceParse = parse
	k.TraceStamp = stamp
}

// wireCtx reads the trace context of a frame via the installed hook.
func (k *Kernel) wireCtx(frame []byte) ktrace.SpanContext {
	if k.TraceParse == nil {
		return ktrace.SpanContext{}
	}
	return k.TraceParse(frame)
}

// Stats counts kernel events.
type Stats struct {
	Syscalls     uint64
	Exceptions   uint64
	TLBMisses    uint64
	STLBHits     uint64
	TLBUpcalls   uint64
	ProtCalls    uint64
	TimerTicks   uint64
	PktDelivered uint64
	PktDropped   uint64
	ASHRuns      uint64
	Revocations  uint64
	Aborts       uint64
	KilledEnvs   uint64
	// RxOverflow counts frames that died at the NIC receive ring before
	// classification. The hardware used to drop these silently
	// (hw.NIC.Deliver past the ring depth); the kernel now observes every
	// one through the NIC's OnDrop hook. Ring drops happen before any
	// filter runs, so no environment owns them — the loss is a
	// machine-level fact, surfaced here and in /proc/stat.
	RxOverflow uint64
}

// New boots Aegis on a machine.
func New(m *hw.Machine) *Kernel {
	k := &Kernel{
		M:           m,
		Auth:        cap.NewAuthority([]byte(m.Config.Name)),
		frames:      make([]frameBinding, m.Phys.NumPages()),
		stlb:        newSTLB(m.Config.STLBSize),
		STLBEnabled: m.Config.STLBSize > 0,
		quantum:     25000, // 1 ms at 25 MHz
	}
	k.Stats.MetricsOn = true
	k.Interp = vm.New(m, k)
	m.SetTrapHandler(k)
	m.NIC.OnDrop = func() {
		k.Stats.RxOverflow++
		k.trace(ktrace.KindNICOverflow, 0, k.Stats.RxOverflow, 0, 0)
	}
	return k
}

// charge accounts for n kernel instructions on the simulated clock.
func (k *Kernel) charge(n uint64) { k.M.Clock.Tick(n * hw.CostInstr) }

// NewEnv creates an environment running the given code segment (nil for a
// native environment). The kernel allocates one physical frame as the
// environment's save area and adds one slice to the time-slice vector.
func (k *Kernel) NewEnv(code isa.Code) (*Env, error) {
	frame, ok := k.M.Phys.AllocFrame()
	if !ok {
		return nil, fmt.Errorf("aegis: out of physical memory for save area")
	}
	id := EnvID(len(k.envs) + 1)
	e := &Env{
		ID:       id,
		ASID:     uint8(id),
		Code:     code,
		SaveArea: frame << hw.PageShift,
	}
	k.frames[frame] = frameBinding{owner: id, bound: true, guard: k.Auth.Mint(uint64(frame), cap.Read|cap.Write)}
	k.envs = append(k.envs, e)
	k.slices = append(k.slices, id)
	k.Stats.acct(id).Frames++ // the save area is a held frame
	k.trace(ktrace.KindEnvCreate, id, uint64(frame), 0, 0)
	k.trace(ktrace.KindFrameBind, id, uint64(frame), 0, 0)
	if k.cur == 0 {
		k.installEnv(e)
	}
	return e, nil
}

// Env resolves an ID.
func (k *Kernel) Env(id EnvID) (*Env, bool) {
	if id == 0 || int(id) > len(k.envs) {
		return nil, false
	}
	return k.envs[id-1], true
}

// CurEnv returns the running environment (nil before the first NewEnv).
func (k *Kernel) CurEnv() *Env {
	e, _ := k.Env(k.cur)
	return e
}

// Envs returns all environments (diagnostics).
func (k *Kernel) Envs() []*Env { return k.envs }

// installEnv loads an environment's processor state without saving the
// previous one (boot, or after the caller has saved explicitly).
func (k *Kernel) installEnv(e *Env) {
	k.settleCycles()
	cpu := &k.M.CPU
	cpu.Regs = e.Regs
	cpu.PC = e.PC
	cpu.ASID = e.ASID
	cpu.FPUOn = e.FPU
	cpu.Mode = hw.ModeUser
	k.cur = e.ID
	k.setCode(e.Code)
}

// setCode publishes the current environment's code segment to both fetch
// paths: the hoisted guard state Fetch reads, and the interpreter's
// direct-fetch slice. The two always change together, so the engines
// cannot disagree about what the current PC maps to.
func (k *Kernel) setCode(code isa.Code) {
	k.curCode = code
	k.Interp.SetCode(code)
}

// saveEnv captures the processor state into the environment.
func (k *Kernel) saveEnv(e *Env) {
	cpu := &k.M.CPU
	e.Regs = cpu.Regs
	e.PC = cpu.PC
	e.FPU = cpu.FPUOn
}

// switchTo performs a full context switch: the hardware cost is the
// address-space tag change; register save/restore is the *application's*
// job in Aegis (its interrupt handler does it), so switchTo is only used on
// kernel-forced switches, where it charges for the register file moves the
// kernel performs on the environment's behalf.
func (k *Kernel) switchTo(e *Env, chargeRegs bool) {
	start := k.opStart()
	out := k.cur
	k.trace(ktrace.KindCtxSwitch, k.cur, uint64(e.ID), 0, 0)
	if cur := k.CurEnv(); cur != nil {
		k.saveEnv(cur)
		if chargeRegs {
			k.charge(hw.NumRegs)
		}
	}
	if chargeRegs {
		k.charge(hw.NumRegs)
	}
	k.M.Clock.Tick(hw.CostContextID)
	k.installEnv(e)
	k.recordOp(OpCtxSwitch, out, start)
}

// Fetch implements vm.CodeSource: instructions come from the current
// environment's segment. The per-instruction nil-env and nil-code guards
// are hoisted out of this path: they can only change at context-switch
// boundaries, where setCode republishes curCode, and a vacant or
// code-less environment leaves curCode nil — which the bounds check
// rejects (len(nil) == 0) with the same address error as before.
func (k *Kernel) Fetch(pc uint32) (isa.Inst, hw.Exc) {
	if int(pc) >= len(k.curCode) {
		return isa.Inst{}, hw.ExcAddrErrL
	}
	return k.curCode[pc], hw.ExcNone
}

// Kill terminates an environment: a library OS uses it when a fault has no
// handler (the moral equivalent of an uncaught fatal signal).
func (k *Kernel) Kill(e *Env, t TrapInfo) { k.kill(e, t) }

// DestroyEnv terminates an environment and reclaims every resource bound
// to it: physical frames (bindings broken, pages freed), disk extents,
// network endpoints and their downloaded code, and the save area. This is
// the deallocation half of the environment life cycle; resources another
// environment obtained *capabilities* to are gone with the frames — a
// capability names a binding, and the bindings no longer exist.
func (k *Kernel) DestroyEnv(e *Env) {
	if !e.Dead {
		k.kill(e, TrapInfo{})
	}
	k.charge(20)
	var freedFrames, freedExtents, freedEndpoints uint64
	// Network endpoints (and any ASHs riding them).
	kept := k.endpoints[:0]
	for _, ep := range k.endpoints {
		if ep.Owner != e.ID {
			kept = append(kept, ep)
		} else {
			freedEndpoints++
		}
	}
	k.endpoints = kept
	// Disk extents.
	exts := k.extents[:0]
	for _, x := range k.extents {
		if x.owner != e.ID {
			exts = append(exts, x)
		} else {
			freedExtents++
		}
	}
	k.extents = exts
	// Physical frames, including the save area.
	for frame := range k.frames {
		if k.frames[frame].bound && k.frames[frame].owner == e.ID {
			k.breakBindings(uint32(frame))
			k.frames[frame] = frameBinding{}
			_ = k.M.Phys.FreeFrame(uint32(frame))
			freedFrames++
		}
	}
	// Reclaim the account: held-resource counters go to zero with the
	// bindings; activity counters stay for post-mortem inspection. The
	// latency histograms are reclaimed outright — a destroyed
	// environment's /proc/<id>/hist reads back zeroed, never stale.
	acct := k.Stats.acct(e.ID)
	acct.Frames, acct.Extents, acct.Endpoints = 0, 0, 0
	k.Stats.envOps(e.ID).Reset()
	k.trace(ktrace.KindEnvDestroy, e.ID, freedFrames, freedExtents, freedEndpoints)
}

// kill marks an environment dead, frees its slices, and stops the
// interpreter if nothing remains runnable.
func (k *Kernel) kill(e *Env, t TrapInfo) {
	e.Dead = true
	e.LastFault = t
	k.Stats.KilledEnvs++
	k.trace(ktrace.KindEnvKill, e.ID, uint64(t.Cause), uint64(t.EPC), 0)
	live := k.slices[:0]
	for _, id := range k.slices {
		if id != e.ID {
			live = append(live, id)
		}
	}
	k.slices = live
	if k.cur == e.ID {
		if next := k.nextRunnable(); next != nil {
			k.switchTo(next, true)
		} else {
			k.Interp.RequestStop()
		}
	}
}
