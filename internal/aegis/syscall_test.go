package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/vm"
)

// runVM assembles a program into a fresh environment and runs it to HALT.
func runVM(t *testing.T, src string) (*hw.Machine, *Kernel, *Env) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	code, labels, err := asm.AssembleWithLabels(src)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		t.Fatal(err)
	}
	if entry, ok := labels["entry"]; ok {
		m.CPU.PC = uint32(entry)
	}
	if r := k.Interp.Run(100000); r != vm.StopHalt {
		t.Fatalf("program stopped with %v (dead=%v fault=%+v)", r, env.Dead, env.LastFault)
	}
	return m, k, env
}

func TestSysGetEnvAndCycles(t *testing.T) {
	m, _, env := runVM(t, `
		nop
	entry:
		addiu v0, zero, 1     ; getenv
		syscall
		addu  s0, v0, zero
		addiu v0, zero, 10    ; cycles
		syscall
		addu  s1, v0, zero
		halt
	`)
	if got := m.CPU.Reg(hw.RegS0); got != uint32(env.ID) {
		t.Errorf("getenv = %d, want %d", got, env.ID)
	}
	if m.CPU.Reg(hw.RegS1) == 0 {
		t.Error("cycles syscall returned zero")
	}
}

func TestSysNullChargesLittle(t *testing.T) {
	m, _, _ := runVM(t, `
		nop
	entry:
		addiu v0, zero, 0
		syscall
		halt
	`)
	// Null syscall total ≈ exception entry + demux + body + return; it
	// must be well under a microsecond of simulated time at 25 MHz.
	if us := m.Micros(m.Clock.Cycles()); us > 2.0 {
		t.Errorf("trivial program took %.2f us simulated", us)
	}
}

func TestSysSetExcVecAndTrap(t *testing.T) {
	m, k, _ := runVM(t, `
		nop
	entry:
		addiu v0, zero, 12     ; set exception vector
		addiu a0, zero, 9      ; cause 9 = overflow
		addiu a1, zero, handler
		syscall
		lui   t0, 0x7fff
		add   t1, t0, t0       ; overflow trap
		addiu s0, zero, 1      ; reached after handler skips
		halt
	handler:
		addiu v0, zero, 7      ; retexc
		addiu a0, zero, 1      ; skip
		syscall
	`)
	if m.CPU.Reg(hw.RegS0) != 1 {
		t.Error("execution did not resume after handled trap")
	}
	if k.Stats.Exceptions != 1 {
		t.Errorf("Exceptions = %d", k.Stats.Exceptions)
	}
}

func TestSysYieldBetweenVMEnvs(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	// Env A yields to env B; B halts.
	codeA := asm.MustAssemble(`
		addiu v0, zero, 2
		addiu a0, zero, 2   ; yield to env 2
		syscall
		halt
	`)
	codeB := asm.MustAssemble(`
		addiu s7, zero, 42
		halt
	`)
	a, _ := k.NewEnv(codeA)
	b, _ := k.NewEnv(codeB)
	if r := k.Interp.Run(1000); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(hw.RegS7) != 42 {
		t.Error("env B never ran after yield")
	}
	if k.CurEnv() != b {
		t.Error("current env is not B")
	}
	_ = a
}

func TestSysExitStopsWhenAlone(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	code := asm.MustAssemble(`
		addiu v0, zero, 11
		syscall
		halt
	`)
	env, _ := k.NewEnv(code)
	if r := k.Interp.Run(1000); r != vm.StopRequested {
		t.Fatalf("run = %v, want requested stop", r)
	}
	if !env.Dead {
		t.Error("env not dead after exit")
	}
}

func TestSysFailureCodes(t *testing.T) {
	m, _, _ := runVM(t, `
		nop
	entry:
		addiu v0, zero, 4      ; dealloc with bogus cap handle
		addiu a0, zero, 3
		addiu a1, zero, 99
		syscall
		addu  s0, v0, zero
		addiu v0, zero, 999    ; unknown syscall
		syscall
		addu  s1, v0, zero
		addiu v0, zero, 12     ; set exc vec out of range
		addiu a0, zero, 99
		syscall
		addu  s2, v0, zero
		halt
	`)
	for reg, name := range map[uint8]string{hw.RegS0: "dealloc", hw.RegS1: "unknown", hw.RegS2: "setvec"} {
		if m.CPU.Reg(reg) != SysFail {
			t.Errorf("%s did not fail: %#x", name, m.CPU.Reg(reg))
		}
	}
}

func TestSysSetEntryAndVMPCT(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	// Client: PCT to server env 2; resumes when server PCTs back.
	client, clabels, err := asm.AssembleWithLabels(`
		nop
	entry:
		addiu v0, zero, 15        ; set our entry points
		addiu a0, zero, back
		addiu a1, zero, back
		syscall
		addiu a0, zero, 1234      ; message in a0
		addiu v0, zero, 8         ; pct sync
		addiu a0, zero, 2
		syscall
		halt                      ; never reached
	back:
		addu  s6, a1, zero        ; server's reply message (in a1)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	server, slabels, err := asm.AssembleWithLabels(`
		nop
	sentry:
		addiu a1, zero, 4321      ; reply message
		addiu v0, zero, 8         ; pct back to caller (in v1)
		addu  a0, v1, zero
		syscall
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cenv, _ := k.NewEnv(client)
	senv, _ := k.NewEnv(server)
	senv.EntrySync = uint32(slabels["sentry"])
	m.CPU.PC = uint32(clabels["entry"])
	if r := k.Interp.Run(1000); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(22) != 4321 { // s6
		t.Errorf("s6 = %d, want 4321 (reply via register message)", m.CPU.Reg(22))
	}
	if k.CurEnv() != cenv {
		t.Error("control did not return to the client")
	}
}
