package aegis

import (
	"testing"

	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// accountWorkload is a fixed deterministic workload touching every
// instrumented subsystem: memory bindings, mappings, packets, disk
// extents and I/O, yields, and a revocation.
func accountWorkload(t *testing.T, k *Kernel, m *hw.Machine) {
	t.Helper()
	a, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	var frames []uint32
	for i := 0; i < 3; i++ {
		f, g, err := k.AllocPage(a, AnyFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.InstallMapping(a, 0x1000_0000+uint32(i)*hw.PageSize, f, hw.PermWrite, g); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := k.InstallFilter(a, byteFilter(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.InstallFilter(b, byteFilter(2)); err != nil {
		t.Fatal(err)
	}
	m.NIC.Deliver(hw.Packet{Data: []byte{1, 0}})
	m.NIC.Deliver(hw.Packet{Data: []byte{2, 0}})
	m.NIC.Deliver(hw.Packet{Data: []byte{7, 0}}) // dropped
	start, extCap, err := k.AllocExtent(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	fb, gb, err := k.AllocPage(b, AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DiskWrite(start, 4, 1, extCap, fb, gb); err != nil {
		t.Fatal(err)
	}
	k.Yield(b.ID)
	k.Yield(a.ID)
	if _, err := k.RevokePage(frames[2]); err != nil {
		t.Fatal(err)
	}
}

// TestTracingOffIsFree: the same fixed workload must consume exactly the
// same number of simulated cycles with tracing attached and without —
// the flight recorder observes the clock, never advances it.
func TestTracingOffIsFree(t *testing.T) {
	run := func(rec *ktrace.Recorder) uint64 {
		m := hw.NewMachine(hw.DEC5000)
		k := New(m)
		k.SetTracer(rec)
		accountWorkload(t, k, m)
		return m.Clock.Cycles()
	}
	plain := run(nil)
	traced := run(ktrace.New(4096))
	if plain != traced {
		t.Errorf("cycles differ: untraced %d, traced %d", plain, traced)
	}
	if plain == 0 {
		t.Error("workload consumed no cycles")
	}
}

// TestPerEnvAccounting checks attribution: resources held per environment
// match what the workload allocated, activity counters land on the right
// environment, and cycles are attributed to whoever was installed.
func TestPerEnvAccounting(t *testing.T) {
	m, k := boot(t)
	accountWorkload(t, k, m)

	a := k.Account(1)
	b := k.Account(2)
	// a: save area + 3 pages - 1 revoked (ExOS-less env: abort path) = 3.
	if a.Frames != 3 {
		t.Errorf("a.Frames = %d, want 3", a.Frames)
	}
	if a.Endpoints != 1 || b.Endpoints != 1 {
		t.Errorf("endpoints = %d/%d, want 1/1", a.Endpoints, b.Endpoints)
	}
	// b: save area + 1 page.
	if b.Frames != 2 {
		t.Errorf("b.Frames = %d, want 2", b.Frames)
	}
	if a.Extents != 0 || b.Extents != 1 {
		t.Errorf("extents = %d/%d, want 0/1", a.Extents, b.Extents)
	}
	if a.PktDelivered != 1 || b.PktDelivered != 1 {
		t.Errorf("pkt delivered = %d/%d, want 1/1", a.PktDelivered, b.PktDelivered)
	}
	if a.Cycles == 0 || b.Cycles == 0 {
		t.Errorf("cycles = %d/%d, want both nonzero", a.Cycles, b.Cycles)
	}
	// Every cycle is attributed to exactly one environment (env 1 was
	// installed at boot, so nothing predates attribution).
	if total := a.Cycles + b.Cycles; total != m.Clock.Cycles() {
		t.Errorf("attributed %d cycles, clock shows %d", total, m.Clock.Cycles())
	}
}

// TestDestroyReclaimsAccounting: after DestroyEnv the environment's held-
// resource counters are zero and the trace carries an env-destroy event
// with the freed totals.
func TestDestroyReclaimsAccounting(t *testing.T) {
	m, k := boot(t)
	rec := ktrace.New(4096)
	k.SetTracer(rec)

	e, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := k.AllocPage(e, AnyFrame); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := k.AllocExtent(e, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := k.InstallFilter(e, byteFilter(3)); err != nil {
		t.Fatal(err)
	}
	pre := k.Account(e.ID)
	if pre.Frames != 3 || pre.Extents != 1 || pre.Endpoints != 1 {
		t.Fatalf("pre-destroy account = %+v", pre)
	}

	k.DestroyEnv(e)

	post := k.Account(e.ID)
	if post.Frames != 0 || post.Extents != 0 || post.Endpoints != 0 {
		t.Errorf("post-destroy account not reclaimed: %+v", post)
	}
	var destroy *ktrace.Event
	for _, ev := range rec.Events() {
		if ev.Kind == ktrace.KindEnvDestroy && ev.Env == uint32(e.ID) {
			cp := ev
			destroy = &cp
		}
	}
	if destroy == nil {
		t.Fatal("no env-destroy event recorded")
	}
	// Freed totals: 2 pages + save area, 1 extent, 1 endpoint.
	if destroy.Arg0 != 3 || destroy.Arg1 != 1 || destroy.Arg2 != 1 {
		t.Errorf("env-destroy freed totals = %d/%d/%d, want 3/1/1",
			destroy.Arg0, destroy.Arg1, destroy.Arg2)
	}
	_ = m
}

// TestTraceEventAttribution spot-checks that hot-path events carry the
// responsible EnvID.
func TestTraceEventAttribution(t *testing.T) {
	m, k := boot(t)
	rec := ktrace.New(8192)
	k.SetTracer(rec)
	accountWorkload(t, k, m)

	byKind := map[ktrace.Kind][]ktrace.Event{}
	for _, ev := range rec.Events() {
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}
	if evs := byKind[ktrace.KindPktDeliver]; len(evs) != 2 || evs[0].Env != 1 || evs[1].Env != 2 {
		t.Errorf("pkt-deliver events = %+v, want one for env 1 then env 2", evs)
	}
	if evs := byKind[ktrace.KindPktDrop]; len(evs) != 1 {
		t.Errorf("pkt-drop events = %d, want 1", len(evs))
	}
	if evs := byKind[ktrace.KindCtxSwitch]; len(evs) < 2 {
		t.Errorf("ctx-switch events = %d, want >= 2", len(evs))
	}
	if evs := byKind[ktrace.KindDiskWrite]; len(evs) != 1 {
		t.Errorf("disk-write events = %d, want 1", len(evs))
	}
	if evs := byKind[ktrace.KindRevokeRequest]; len(evs) != 1 || evs[0].Env != 1 {
		t.Errorf("revoke-request events = %+v, want one for env 1", evs)
	}
	// Cycle stamps are non-decreasing across the whole recording.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("trace not cycle-ordered at %d", i)
		}
	}
}
