// Package aegis implements the paper's core contribution: an exokernel that
// securely multiplexes raw hardware resources and leaves every abstraction
// to untrusted application-level software.
//
// The kernel exports exactly what the hardware has — CPU time slices,
// physical pages, the hardware TLB, exceptions, interrupts, and the network
// interface — using the paper's three techniques:
//
//   - Secure bindings (§3): capabilities guard physical pages; TLB entries
//     are bindings checked at map time, not on every access; the 4096-entry
//     software TLB caches bindings past the hardware TLB's capacity;
//     downloaded packet filters and ASHs bind network messages to
//     applications.
//   - Visible revocation (§3.3): the kernel asks the library OS to give
//     resources back and lets it pick victims.
//   - Abort protocol (§3.4): if a library OS does not comply, the kernel
//     breaks its secure bindings by force and records what it took in a
//     repossession vector.
//
// Processes are "environments": a register save area and four contexts
// (exception, interrupt, protected entry, addressing — §4.1 of the paper).
// An environment's program is either simulated-ISA code run by internal/vm,
// or native Go hooks that model library-OS code and charge the simulated
// clock for the work they do. Both take the same kernel paths.
package aegis
