package aegis

import (
	"fmt"

	"exokernel/internal/hw"
)

// Kernel self-verification. The exokernel contract is a set of
// bookkeeping invariants — secure bindings, the accounting registry, and
// the cached translations must all tell the same story about who holds
// what. The chaos harness (internal/chaos) calls CheckInvariants after
// every step of a randomized fault/kill/revoke schedule; tests call it
// after targeted scenarios. The check is host-side only: it never ticks
// the simulated clock, so running it cannot change a measurement.

// CheckInvariants audits the kernel's resource bookkeeping and returns
// the first violation found (nil if consistent):
//
//  1. Frame conservation: every physical frame is either on the free
//     list or carries exactly one secure binding — no leaked, no
//     double-booked frames.
//  2. Registry accuracy: each environment's account (frames, extents,
//     endpoints held) equals what the binding tables actually record,
//     and a dead-and-reclaimed environment holds nothing.
//  3. Translation consistency: every valid hardware TLB and software
//     TLB entry maps a bound frame — a revoked or freed page can leave
//     no cached translation behind (the abort protocol's "break all
//     existing secure bindings" made real).
//  4. Schedule sanity: the time-slice vector names only live
//     environments.
func (k *Kernel) CheckInvariants() error {
	// 1. Frame conservation against the physical free list.
	bound := 0
	for f := range k.frames {
		if k.frames[f].bound {
			bound++
			if k.frames[f].owner == 0 {
				return fmt.Errorf("invariant: frame %d bound with no owner", f)
			}
		}
	}
	allocated := k.M.Phys.NumPages() - k.M.Phys.FreeFrames()
	if bound != allocated {
		return fmt.Errorf("invariant: %d frames bound but %d allocated (leak or double-book)",
			bound, allocated)
	}

	// 2. Per-environment accounts vs the binding tables.
	frameCount := make(map[EnvID]uint64)
	for f := range k.frames {
		if k.frames[f].bound {
			frameCount[k.frames[f].owner]++
		}
	}
	extentCount := make(map[EnvID]uint64)
	for _, x := range k.extents {
		extentCount[x.owner]++
	}
	endpointCount := make(map[EnvID]uint64)
	for _, ep := range k.endpoints {
		endpointCount[ep.Owner]++
	}
	for _, e := range k.envs {
		a := k.Stats.EnvAccount(e.ID)
		if a.Frames != frameCount[e.ID] {
			return fmt.Errorf("invariant: env %d account says %d frames, binding table says %d",
				e.ID, a.Frames, frameCount[e.ID])
		}
		if a.Extents != extentCount[e.ID] {
			return fmt.Errorf("invariant: env %d account says %d extents, extent table says %d",
				e.ID, a.Extents, extentCount[e.ID])
		}
		if a.Endpoints != endpointCount[e.ID] {
			return fmt.Errorf("invariant: env %d account says %d endpoints, endpoint list says %d",
				e.ID, a.Endpoints, endpointCount[e.ID])
		}
	}

	// 3. No cached translation may outlive its binding.
	for _, te := range k.M.TLB.Entries() {
		if te.Perms&hw.PermValid == 0 {
			continue
		}
		if int(te.PFN) >= len(k.frames) || !k.frames[te.PFN].bound {
			return fmt.Errorf("invariant: TLB maps vpn %#x to unbound frame %d (asid %d)",
				te.VPN, te.PFN, te.ASID)
		}
	}
	for _, se := range k.stlb.entries {
		if se.Perms&hw.PermValid == 0 {
			continue
		}
		if int(se.PFN) >= len(k.frames) || !k.frames[se.PFN].bound {
			return fmt.Errorf("invariant: STLB maps vpn %#x to unbound frame %d (asid %d)",
				se.VPN, se.PFN, se.ASID)
		}
	}

	// 4. The slice vector names only live environments.
	for _, id := range k.slices {
		e, ok := k.Env(id)
		if !ok {
			return fmt.Errorf("invariant: slice vector names unknown env %d", id)
		}
		if e.Dead {
			return fmt.Errorf("invariant: slice vector still holds dead env %d", id)
		}
	}
	return nil
}
