package aegis

import (
	"exokernel/internal/ktrace"
	"exokernel/internal/metrics"
)

// Accounting and tracing. The paper's physical-name/visible-revocation
// discipline only works if applications can *see* what they hold and what
// the kernel did; this file is that visibility. Two mechanisms:
//
//   - Registry: the global counters (the old flat Stats) plus a
//     per-environment account — cycles consumed, syscalls, misses, and the
//     resources currently held. Always on; increments never touch the
//     simulated clock, so the cost model is identical with or without it.
//   - Tracer: an optional ktrace flight recorder. Every instrumentation
//     site is a single pointer check when tracing is off.

// EnvAccount is the per-environment resource and activity record.
type EnvAccount struct {
	// Activity counters.
	Cycles       uint64 // simulated cycles attributed to this environment
	Syscalls     uint64
	Exceptions   uint64
	TLBMisses    uint64 // hardware refill faults taken while running
	TLBUpcalls   uint64 // misses that escaped the STLB to the application
	PktDelivered uint64

	// Resources currently held (bindings this environment owns).
	Frames    uint64 // physical frames, including the save area
	Extents   uint64 // disk extents
	Endpoints uint64 // network endpoints (downloaded filters)
}

// Registry keeps the kernel-wide counters (the embedded Stats, so
// k.Stats.Syscalls keeps meaning what it always meant), one EnvAccount
// per environment, and the cycle-latency histograms (metrics.go).
type Registry struct {
	Stats

	// MetricsOn gates histogram recording. Recording never ticks the
	// simulated clock, so toggling it cannot change a measured cycle
	// count (pinned by TestMetricsOffIsFree); the switch exists to
	// prove exactly that, and to spare host CPU in tight loops.
	MetricsOn bool
	// Ops are the kernel-wide latency histograms, one per operation
	// class, in simulated cycles.
	Ops [NumOpClasses]metrics.Hist
	// SyscallOps break the syscall class down by syscall number (the
	// last slot collects undecoded codes).
	SyscallOps [NumSyscallHists]metrics.Hist

	perEnv    []EnvAccount // index = EnvID-1
	perEnvOps []envHist    // index = EnvID-1 (grown independently of perEnv)
}

// acct returns the mutable account for an environment, growing the table
// on first touch. EnvIDs are dense (allocated 1,2,3...), so this is an
// array index, not a map lookup, on the hot path.
func (r *Registry) acct(id EnvID) *EnvAccount {
	if id == 0 {
		return &noAccount
	}
	for int(id) > len(r.perEnv) {
		r.perEnv = append(r.perEnv, EnvAccount{})
	}
	return &r.perEnv[id-1]
}

// noAccount swallows updates attributed to "no environment" (boot,
// interrupt work before the first environment exists).
var noAccount EnvAccount

// EnvAccount returns a copy of an environment's account (zero value for
// unknown IDs).
func (r *Registry) EnvAccount(id EnvID) EnvAccount {
	if id == 0 || int(id) > len(r.perEnv) {
		return EnvAccount{}
	}
	return r.perEnv[id-1]
}

// --- Kernel-side plumbing -------------------------------------------------

// SetTracer attaches (or, with nil, detaches) a flight recorder. The
// recorder never ticks the simulated clock: enabling tracing cannot change
// a single measured cycle count.
func (k *Kernel) SetTracer(r *ktrace.Recorder) { k.Tracer = r }

// trace records one event at the current cycle. The nil check is the
// entire cost of an untraced run.
func (k *Kernel) trace(kind ktrace.Kind, env EnvID, a0, a1, a2 uint64) {
	if k.Tracer == nil {
		return
	}
	k.Tracer.Emit(k.M.Clock.Cycles(), kind, uint32(env), a0, a1, a2)
}

// settleCycles attributes the cycles elapsed since the last settlement to
// the environment that was running, and restarts the span. Called on every
// change of k.cur and before any accounting read, so EnvAccount.Cycles is
// exact at observation points.
func (k *Kernel) settleCycles() {
	now := k.M.Clock.Cycles()
	if k.cur != 0 {
		k.Stats.acct(k.cur).Cycles += now - k.runStart
	}
	k.runStart = now
}

// Account returns an up-to-date copy of an environment's accounting
// record. This is the kernel half of the /proc-style read ExOS exposes.
func (k *Kernel) Account(id EnvID) EnvAccount {
	k.settleCycles()
	return k.Stats.EnvAccount(id)
}

// GlobalStats returns a copy of the kernel-wide counters.
func (k *Kernel) GlobalStats() Stats { return k.Stats.Stats }

// Accounts returns a settled copy of every environment's account,
// indexed by EnvID-1 (the table may be shorter than Envs() when trailing
// environments were never charged anything). One settle, one copy: the
// fleet bus snapshots a whole machine in a single call, and — like every
// accounting read — without touching the simulated clock.
func (k *Kernel) Accounts() []EnvAccount {
	k.settleCycles()
	return append([]EnvAccount(nil), k.Stats.perEnv...)
}
