package aegis

import (
	"fmt"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// AllocPage allocates a physical page for an environment and mints the
// capability that guards it (the secure binding, §3.2: "the exokernel
// creates a secure binding for that page by recording the owner and the
// read and write capabilities"). frame == AnyFrame lets the kernel pick;
// otherwise the specific frame is requested (expose allocation — the
// library OS may want particular physical pages for cache coloring).
func (k *Kernel) AllocPage(e *Env, frame uint32) (uint32, cap.Capability, error) {
	k.charge(6) // free-list pop, owner record, bookkeeping
	var f uint32
	if frame == AnyFrame {
		var ok bool
		f, ok = k.M.Phys.AllocFrame()
		if !ok {
			return 0, cap.Capability{}, fmt.Errorf("aegis: out of physical memory")
		}
	} else {
		if int(frame) >= len(k.frames) {
			return 0, cap.Capability{}, fmt.Errorf("aegis: no such frame %d", frame)
		}
		if !k.M.Phys.AllocFrameAt(frame) {
			return 0, cap.Capability{}, fmt.Errorf("aegis: frame %d not free", frame)
		}
		f = frame
	}
	guard := k.Auth.Mint(uint64(f), cap.Read|cap.Write|cap.Grant)
	k.frames[f] = frameBinding{owner: e.ID, bound: true, guard: guard}
	k.Stats.acct(e.ID).Frames++
	k.trace(ktrace.KindFrameBind, e.ID, uint64(f), 0, 0)
	return f, guard, nil
}

// AnyFrame asks AllocPage to choose the frame.
const AnyFrame = ^uint32(0)

// DeallocPage releases a page. The caller must present a write-capable
// capability for the frame; ownership alone is not consulted — capabilities
// are the protection model.
func (k *Kernel) DeallocPage(frame uint32, c cap.Capability) error {
	k.charge(6)
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return fmt.Errorf("aegis: frame %d not allocated", frame)
	}
	if c.Resource != uint64(frame) || !k.Auth.Check(c, cap.Write) {
		return fmt.Errorf("aegis: capability check failed for frame %d", frame)
	}
	owner := k.frames[frame].owner
	k.breakBindings(frame)
	k.frames[frame] = frameBinding{}
	if a := k.Stats.acct(owner); a.Frames > 0 {
		a.Frames--
	}
	k.trace(ktrace.KindFrameUnbind, owner, uint64(frame), 0, 0)
	return k.M.Phys.FreeFrame(frame)
}

// FrameOwner reports the owner of a frame (0 if unallocated). Physical
// names are public in an exokernel; ownership is not a secret.
func (k *Kernel) FrameOwner(frame uint32) EnvID {
	if int(frame) >= len(k.frames) {
		return 0
	}
	return k.frames[frame].owner
}

// InstallMapping installs a virtual→physical translation for the current
// address space. This is the access-time half of the secure binding: the
// presented capability is validated against the frame's guard; on success
// the mapping enters the hardware TLB and the software TLB. Perms is a
// subset of hw.PermWrite.
func (k *Kernel) InstallMapping(e *Env, va uint32, frame uint32, perms uint8, c cap.Capability) error {
	k.charge(8) // argument decode + binding lookup
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return fmt.Errorf("aegis: frame %d not allocated", frame)
	}
	need := cap.Read
	if perms&hw.PermWrite != 0 {
		need |= cap.Write
	}
	if c.Resource != uint64(frame) || !k.Auth.Check(c, need) {
		return fmt.Errorf("aegis: capability check failed mapping frame %d", frame)
	}
	entry := hw.TLBEntry{
		VPN:   va >> hw.PageShift,
		ASID:  e.ASID,
		PFN:   frame,
		Perms: perms&hw.PermWrite | hw.PermValid,
	}
	k.M.TLB.WriteRandom(entry)
	if k.STLBEnabled {
		k.M.Clock.Tick(hw.CostSTLBLookup)
		k.stlb.insert(entry)
	}
	return nil
}

// UnmapPage removes a translation from both TLBs. Applications use it to
// implement protection changes: ExOS's mprotect is unmap-then-fault-remap.
func (k *Kernel) UnmapPage(e *Env, va uint32) {
	k.charge(4)
	vpn := va >> hw.PageShift
	k.M.TLB.Invalidate(vpn, e.ASID)
	if k.STLBEnabled {
		k.M.Clock.Tick(hw.CostSTLBLookup)
		k.stlb.invalidate(vpn, e.ASID)
	}
}

// breakBindings severs every cached translation of a frame — the
// mechanical core of both deallocation and the abort protocol.
func (k *Kernel) breakBindings(frame uint32) {
	k.M.TLB.FlushFrame(frame)
	k.stlb.invalidateFrame(frame)
}
