package aegis

import (
	"fmt"

	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// Protected control transfer (§5.4): the substrate for all IPC. A PCT
// changes the program counter to an agreed-upon value in the callee,
// donates the current time slice to the callee, and installs the callee's
// processor context (addressing-context identifier, address of the
// environment's save area). Two guarantees matter:
//
//  1. atomicity — once initiated, the transfer reaches the callee;
//  2. the kernel does not overwrite any application-visible register,
//     so "the large register sets of modern processors [can] be used as a
//     temporary message buffer" [14].
//
// "Currently, our synchronous protected control transfer operation takes
// 30 instructions." The path below performs that work: validate the
// callee, switch the addressing context, publish the caller's identity,
// and enter the callee at its protected entry point — charging the
// documented instruction count, with the TLB-context change costed by the
// hardware model.

// ProtCall transfers control to callee's protected entry point.
// Synchronous calls donate the current slice *and* future ones until a
// return; asynchronous calls donate only the slice's remainder — the
// distinction is a scheduling property; the register contract is the same.
// The caller's ID is placed in v1 so the callee can reply; all other
// registers pass through untouched (they are the message).
func (k *Kernel) ProtCall(callee EnvID, async bool) error {
	start := k.opStart()
	k.Stats.ProtCalls++
	// 30-instruction kernel path, less the work modelled separately below
	// (context-ID switch is charged by switchAddressing).
	k.charge(30)
	target, ok := k.Env(callee)
	if !ok || target.Dead {
		return fmt.Errorf("aegis: protected call to invalid environment %d", callee)
	}
	entry := target.EntrySync
	if async {
		entry = target.EntryAsync
	}
	cur := k.CurEnv()
	cpu := &k.M.CPU

	// Bookkeep the caller's control state (PC only — registers are the
	// message and deliberately flow to the callee).
	if cur != nil {
		cur.PC = cpu.PC
	}

	k.trace(ktrace.KindProtCall, callerID(cur), uint64(callee), b2u(async), 0)

	// The caller's span context rides the transfer exactly like the
	// register file does: copied to the callee, untouched by the kernel.
	// The PCT itself is a point span under the caller's context — the
	// hop that moved the request between environments.
	if cur != nil {
		if cur.Trace.Valid() {
			now := k.M.Clock.Cycles()
			k.Spans.End(k.Spans.Begin(now, ktrace.SpanPCT, uint32(cur.ID), cur.Trace, uint64(callee)), now)
		}
		target.Trace = cur.Trace
	}

	// Install the callee's addressing context. Register file is NOT
	// touched: that is the contract.
	k.M.Clock.Tick(hw.CostContextID)
	k.settleCycles()
	k.cur = target.ID
	k.setCode(target.Code)
	cpu.ASID = target.ASID
	cpu.SetReg(hw.RegV1, uint32(callerID(cur)))

	if target.NativeEntry != nil {
		// The transfer is complete at callee entry; the callee's work is
		// not part of PCT latency.
		k.recordOp(OpProtCall, callerID(cur), start)
		target.NativeEntry(k, callerID(cur))
		return nil
	}
	if entry == 0 {
		return fmt.Errorf("aegis: environment %d has no protected entry", callee)
	}
	cpu.PC = entry
	cpu.Mode = hw.ModeUser
	k.recordOp(OpProtCall, callerID(cur), start)
	return nil
}

func callerID(e *Env) EnvID {
	if e == nil {
		return 0
	}
	return e.ID
}
