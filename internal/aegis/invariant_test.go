package aegis

import (
	"testing"
	"testing/quick"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
)

// Property: under any sequence of page operations, the kernel's secure-
// binding invariants hold —
//
//  1. every valid hardware-TLB entry maps a frame that is currently bound;
//  2. a frame is never on the free list while bound;
//  3. capability checks are the only authority: operations with forged
//     capabilities never change TLB or binding state.
func TestQuickSecureBindingInvariants(t *testing.T) {
	type op struct {
		Kind  uint8
		Frame uint8
		VA    uint16
		Forge bool
	}
	f := func(ops []op) bool {
		m := hw.NewMachine(hw.DEC2100) // small memory: allocation pressure
		k := New(m)
		e, err := k.NewEnv(nil)
		if err != nil {
			return false
		}
		type owned struct {
			frame uint32
			guard cap.Capability
		}
		var pages []owned
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0: // alloc
				frame, guard, err := k.AllocPage(e, AnyFrame)
				if err == nil {
					pages = append(pages, owned{frame, guard})
				}
			case 1: // map (possibly forged)
				if len(pages) == 0 {
					continue
				}
				p := pages[int(o.Frame)%len(pages)]
				guard := p.guard
				if o.Forge {
					guard = cap.Capability{Resource: uint64(p.frame), Rights: cap.Read | cap.Write}
				}
				va := uint32(o.VA) << hw.PageShift
				err := k.InstallMapping(e, va, p.frame, hw.PermWrite, guard)
				if o.Forge && err == nil {
					return false // forged capability accepted!
				}
			case 2: // unmap
				k.UnmapPage(e, uint32(o.VA)<<hw.PageShift)
			case 3: // dealloc (possibly forged)
				if len(pages) == 0 {
					continue
				}
				i := int(o.Frame) % len(pages)
				p := pages[i]
				guard := p.guard
				if o.Forge {
					guard = cap.Capability{Resource: uint64(p.frame), Rights: cap.Write}
				}
				err := k.DeallocPage(p.frame, guard)
				if o.Forge {
					if err == nil {
						return false
					}
					continue
				}
				if err == nil {
					pages = append(pages[:i], pages[i+1:]...)
				}
			}
		}
		// Invariant 1: every binding we still hold is intact.
		for _, p := range pages {
			if k.FrameOwner(p.frame) != e.ID {
				return false // lost a binding we still hold
			}
		}
		// Invariant 2: bound frames are not reallocatable without dealloc.
		for _, p := range pages {
			if m.Phys.AllocFrameAt(p.frame) {
				return false
			}
		}
		// Invariant 3 is enforced inline above (forged ops must fail).
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
