package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/vm"
)

// metricsWorkload exercises several instrumented paths: syscalls (alloc,
// map, getenv, null), a store/load through the TLB, and a halt.
const metricsWorkload = `
	nop
entry:
	addiu v0, zero, 3       ; allocpage
	addiu a0, zero, -1
	syscall
	addu  s0, v0, zero
	addu  s1, v1, zero
	addiu v0, zero, 5       ; maptlb va 0x10000 -> frame, writable
	lui   a0, 1
	addu  a1, s0, zero
	addiu a2, zero, 2
	addu  a3, s1, zero
	syscall
	lui   t0, 1
	addiu t1, zero, 42
	sw    t1, 8(t0)
	lw    t2, 8(t0)
	addiu v0, zero, 1       ; getenv
	syscall
	addiu v0, zero, 0       ; null
	syscall
	halt
reload:
	lui   t0, 1
	lw    t3, 8(t0)
	halt
`

// runMetricsWorkload boots a kernel with histogram recording set to `on`,
// runs both phases of metricsWorkload (the second after a hardware TLB
// flush, forcing an STLB refill), and returns the machine and kernel.
func runMetricsWorkload(t *testing.T, on bool) (*hw.Machine, *Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	k.Stats.MetricsOn = on
	code, labels, err := asm.AssembleWithLabels(metricsWorkload)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		t.Fatal(err)
	}
	m.CPU.PC = uint32(labels["entry"])
	if r := k.Interp.Run(100000); r != vm.StopHalt {
		t.Fatalf("phase 1 stopped with %v (fault=%+v)", r, env.LastFault)
	}
	m.TLB.Flush()
	m.CPU.PC = uint32(labels["reload"])
	if r := k.Interp.Run(100000); r != vm.StopHalt {
		t.Fatalf("phase 2 stopped with %v (fault=%+v)", r, env.LastFault)
	}
	return m, k
}

// TestMetricsOffIsFree pins the invariant the whole metrics layer rests
// on: histogram recording never advances the simulated clock, so an
// identical workload costs the identical number of cycles with recording
// on or off.
func TestMetricsOffIsFree(t *testing.T) {
	mOn, kOn := runMetricsWorkload(t, true)
	mOff, kOff := runMetricsWorkload(t, false)

	if on, off := mOn.Clock.Cycles(), mOff.Clock.Cycles(); on != off {
		t.Fatalf("metrics perturbed the cost model: %d cycles with recording on, %d off", on, off)
	}
	if kOn.Stats.OpSnapshot(OpSyscall).Count == 0 {
		t.Error("recording on, but the syscall histogram is empty")
	}
	if kOff.Stats.OpSnapshot(OpSyscall).Count != 0 {
		t.Error("recording off, but the syscall histogram has samples")
	}
}

func TestSyscallHistogramPerNumber(t *testing.T) {
	_, k := runMetricsWorkload(t, true)

	// 4 decoded syscalls ran: allocpage, maptlb, getenv, null.
	if got := k.Stats.OpSnapshot(OpSyscall).Count; got != 4 {
		t.Errorf("syscall class count = %d, want 4", got)
	}
	for _, code := range []uint32{SysNull, SysGetEnv, SysAllocPage, SysMapTLB} {
		s := k.Stats.SyscallSnapshot(code)
		if s.Count != 1 {
			t.Errorf("syscall %q count = %d, want 1", SyscallName(code), s.Count)
		}
		if s.Min == 0 || s.Min > s.Max {
			t.Errorf("syscall %q snapshot malformed: %+v", SyscallName(code), s)
		}
	}
	// Latency must be plausible: the null syscall charges 10 (demux) + 3
	// (body) + return, so its recorded latency is well above zero.
	if s := k.Stats.SyscallSnapshot(SysNull); s.Min < 10 {
		t.Errorf("null syscall min latency = %d cycles, want >= 10 (the dispatch alone)", s.Min)
	}
}

func TestSTLBRefillHistogram(t *testing.T) {
	_, k := runMetricsWorkload(t, true)
	s := k.Stats.OpSnapshot(OpSTLBRefill)
	if s.Count == 0 {
		t.Fatal("no STLB refill recorded despite the post-flush reload")
	}
	if s.Min == 0 {
		t.Errorf("STLB refill min = 0 cycles; the lookup charges %d", hw.CostSTLBLookup)
	}
}

func TestEnvHistogramAndGlobalAgree(t *testing.T) {
	_, k := runMetricsWorkload(t, true)
	global := k.Stats.OpSnapshot(OpSyscall)
	env := k.Stats.EnvOpSnapshot(1, OpSyscall)
	if env != global {
		t.Errorf("single-environment run: per-env snapshot %+v != global %+v", env, global)
	}
	if k.Stats.EnvOpSnapshot(99, OpSyscall).Count != 0 {
		t.Error("unknown environment reports samples")
	}
}

func TestCtxSwitchHistogram(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	a, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Yield(b.ID) || !k.Yield(a.ID) {
		t.Fatal("yield failed")
	}
	s := k.Stats.OpSnapshot(OpCtxSwitch)
	if s.Count != 2 {
		t.Errorf("ctx-switch count = %d, want 2", s.Count)
	}
	if s.Min == 0 {
		t.Error("ctx-switch recorded zero cycles; register saves and the context-ID change are charged")
	}
}

func TestDestroyEnvReclaimsHistograms(t *testing.T) {
	_, k := runMetricsWorkload(t, true)
	e, ok := k.Env(1)
	if !ok {
		t.Fatal("environment 1 missing")
	}
	if k.Stats.EnvOpSnapshot(1, OpSyscall).Count == 0 {
		t.Fatal("precondition: environment 1 has syscall samples")
	}
	k.DestroyEnv(e)
	for op := OpClass(0); op < NumOpClasses; op++ {
		if s := k.Stats.EnvOpSnapshot(1, op); s.Count != 0 {
			t.Errorf("destroyed environment still reports %q samples: %+v", op, s)
		}
	}
	// The kernel-wide histograms survive: they are the machine's history,
	// not the environment's property.
	if k.Stats.OpSnapshot(OpSyscall).Count == 0 {
		t.Error("kernel-wide histogram was lost with the environment")
	}
}

func TestOpClassNames(t *testing.T) {
	for op := OpClass(0); op < NumOpClasses; op++ {
		if op.String() == "" || op.String() == "op?" {
			t.Errorf("operation class %d has no name", op)
		}
	}
	if OpClass(200).String() != "op?" {
		t.Error("out-of-range class should render op?")
	}
	if SyscallName(SysNull) != "null" || SyscallName(12345) != "unknown" {
		t.Error("syscall naming broken")
	}
}
