package aegis

import (
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// CPU scheduling (§5.1.1). "Aegis represents the CPU as a linear vector,
// where each element corresponds to a time slice"; the vector is walked
// round-robin. The kernel owns only the vector and the timer; *policy*
// lives in applications: an environment may donate the rest of its slice
// to any other environment ("directed yield"), which is the whole substrate
// application-level schedulers (internal/stride) need.

// Quantum reports the time-slice length in cycles.
func (k *Kernel) Quantum() uint64 { return k.quantum }

// SetQuantum sets the slice length and arms the interval timer.
func (k *Kernel) SetQuantum(cycles uint64) {
	k.quantum = cycles
	k.M.Timer.Arm(cycles)
}

// SliceVector returns a copy of the time-slice vector (positions are
// public: "expose names" applies to time slices too).
func (k *Kernel) SliceVector() []EnvID {
	out := make([]EnvID, len(k.slices))
	copy(out, k.slices)
	return out
}

// SetSliceVector replaces the vector. Callers allocate slices to
// environments by listing IDs; an ID may appear many times for a larger
// share.
func (k *Kernel) SetSliceVector(v []EnvID) {
	k.slices = append(k.slices[:0], v...)
	if k.slicePos >= len(k.slices) {
		k.slicePos = 0
	}
}

// nextRunnable finds the next live environment in the vector after the
// current position, advancing the position. Nil if none.
func (k *Kernel) nextRunnable() *Env {
	for i := 0; i < len(k.slices); i++ {
		k.slicePos = (k.slicePos + 1) % len(k.slices)
		if e, ok := k.Env(k.slices[k.slicePos]); ok && !e.Dead {
			return e
		}
	}
	return nil
}

// nextRunnableVM is nextRunnable restricted to environments the
// instruction loop can execute (those with a code segment), falling back
// to cur. Nil if nothing qualifies.
func (k *Kernel) nextRunnableVM(cur *Env) *Env {
	for i := 0; i < len(k.slices); i++ {
		k.slicePos = (k.slicePos + 1) % len(k.slices)
		if e, ok := k.Env(k.slices[k.slicePos]); ok && !e.Dead && e.Code != nil {
			return e
		}
	}
	if cur != nil && !cur.Dead && cur.Code != nil {
		return cur
	}
	return nil
}

// timerTick ends the current slice. The application's interrupt context
// is responsible for general-purpose context switching — "saving and
// restoring live registers, releasing locks, etc." — so the kernel only
// charges for the dispatch and lets the application (native hook or IntVec
// handler) save state and yield. Environments without an interrupt context
// get a kernel-forced switch and pay for the full register save the kernel
// does on their behalf.
func (k *Kernel) timerTick() {
	k.Stats.TimerTicks++
	e := k.CurEnv()
	if e == nil {
		return
	}
	e.Slices++
	k.trace(ktrace.KindSliceExpiry, e.ID, e.Slices, 0, 0)
	if e.NativeInt != nil {
		k.charge(9)
		e.NativeInt(k)
		return
	}
	if e.IntVec != 0 {
		k.dispatchTo(e, e.IntVec)
		return
	}
	// Kernel-forced switch: only environments with code can run under the
	// interpreter; purely-native environments are dispatched by
	// DispatchNative rounds, not by the instruction loop, so they are
	// skipped here rather than installed into a context that would fault.
	if next := k.nextRunnableVM(e); next != nil && next != e {
		k.switchTo(next, true)
		return
	}
	// Sole runnable environment: resume it.
	k.M.CPU.PC = k.M.CPU.EPC
	k.M.CPU.Mode = hw.ModeUser
}

// Yield donates the remainder of the current slice to target (§5.1.1:
// "an environment can donate its remaining time slice to another (explicitly
// specified) environment"). Target YieldNext picks the vector's next
// runnable environment. The caller's registers were saved by its own
// context-switching code (that work is charged here on its behalf: a full
// register-file save and restore plus the addressing-context switch).
func (k *Kernel) Yield(target EnvID) bool {
	k.charge(8) // entry + validate target
	k.trace(ktrace.KindYield, k.cur, uint64(target), 0, 0)
	var next *Env
	if target == YieldNext {
		next = k.nextRunnable()
	} else if e, ok := k.Env(target); ok && !e.Dead {
		next = e
	}
	if next == nil {
		return false
	}
	cur := k.CurEnv()
	if cur == next {
		return true
	}
	k.switchTo(next, true)
	return true
}

// YieldNext directs Yield to the next environment in the slice vector.
const YieldNext = EnvID(0)

// DispatchNative runs one scheduling round for native environments: it
// services pending device interrupts (so ASHs run regardless of what is
// scheduled — the property Figure 2 measures), then dispatches the next
// runnable environment's NativeRun body for one slice. It reports false
// when nothing is runnable.
func (k *Kernel) DispatchNative() bool {
	k.M.Timer.Check()
	cpu := &k.M.CPU
	if cpu.Pending&hw.IRQNIC != 0 {
		cpu.Pending &^= hw.IRQNIC
		k.serviceNIC()
	}
	cpu.Pending &^= hw.IRQTimer
	e := k.nextRunnable()
	if e == nil {
		return false
	}
	if cur := k.CurEnv(); cur != e {
		k.switchTo(e, true)
	}
	e.Slices++
	if k.ConsumeExcess(e) {
		// Forfeited slice: the environment pays its excess-time penalty.
		return true
	}
	if e.NativeRun != nil {
		e.NativeRun(k)
	}
	return true
}

// ChargeExcess applies the excess-time penalty: an environment that
// overran its context-save bound forfeits a future slice ("applications
// pay for each excess time slice consumed by forfeiting a subsequent time
// slice"). The library OS's interrupt code calls this when it detects it
// missed the save deadline.
func (k *Kernel) ChargeExcess(e *Env, slices uint64) {
	e.Excess += slices
}

// ConsumeExcess burns one unit of accumulated penalty; the scheduler's
// clients (and tests) use it to decide whether to skip a slice.
func (k *Kernel) ConsumeExcess(e *Env) bool {
	if e.Excess == 0 {
		return false
	}
	e.Excess--
	return true
}
