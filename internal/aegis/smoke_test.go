package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/vm"
)

// TestSmokeVMSyscallAndTLB boots Aegis, runs a VM program that allocates a
// page, maps it, stores/loads through the TLB (taking a real refill), and
// exits. It is the end-to-end sanity check for the trap plumbing.
func TestSmokeVMSyscallAndTLB(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)

	code, labels, err := asm.AssembleWithLabels(`
		nop                     ; pc 0 is a guard by convention
		; v0 = sysAllocPage, a0 = AnyFrame
		addiu v0, zero, 3
		addiu a0, zero, -1
		syscall                 ; v0 = frame, v1 = cap handle
		addu  s0, v0, zero      ; frame
		addu  s1, v1, zero      ; cap handle
		; map va 0x10000 -> frame, writable (perms = 2)
		addiu v0, zero, 5
		lui   a0, 1             ; 0x10000
		addu  a1, s0, zero
		addiu a2, zero, 2
		addu  a3, s1, zero
		syscall
		; store 42 at va 0x10008, load it back
		lui   t0, 1
		addiu t1, zero, 42
		sw    t1, 8(t0)
		lw    t2, 8(t0)
		halt
	reload:
		; second phase, entered after the test flushes the hardware TLB:
		; the load misses in hardware and is refilled from the STLB.
		lui   t0, 1
		lw    t3, 8(t0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	env, err := k.NewEnv(code)
	if err != nil {
		t.Fatal(err)
	}
	env.PC = 1
	k.installEnv(env)

	reason := k.Interp.Run(10000)
	if reason != vm.StopHalt {
		t.Fatalf("program did not halt: %v (env dead=%v fault=%+v)", reason, env.Dead, env.LastFault)
	}
	if got := m.CPU.Reg(hw.RegT2); got != 42 {
		t.Errorf("t2 = %d, want 42 (store/load through TLB)", got)
	}

	// Phase 2: evict the hardware TLB; the STLB must absorb the refill.
	m.TLB.Flush()
	m.CPU.PC = uint32(labels["reload"])
	if reason := k.Interp.Run(10000); reason != vm.StopHalt {
		t.Fatalf("reload phase did not halt: %v (fault=%+v)", reason, env.LastFault)
	}
	if got := m.CPU.Reg(hw.RegT3); got != 42 {
		t.Errorf("t3 = %d, want 42 (reload via STLB refill)", got)
	}
	if k.Stats.TLBMisses == 0 {
		t.Error("expected at least one hardware TLB miss")
	}
	if k.Stats.STLBHits == 0 {
		t.Error("expected the post-unmap miss to hit the software TLB")
	}
	if m.Clock.Cycles() == 0 {
		t.Error("simulated clock did not advance")
	}
}
