package aegis

import (
	"fmt"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/ktrace"
	"exokernel/internal/sandbox"
	"exokernel/internal/vm"
)

// Network multiplexing (§3.2, §5.5 of the paper). The kernel knows no
// protocols: applications download *packet filters* — predicates over the
// raw frame — and the kernel delivers each incoming message to the first
// endpoint whose filter accepts it. An endpoint may also carry an ASH
// (application-specific handler): verified code the kernel executes in the
// interrupt context, so the application can vector the message, integrate
// computation, and send replies without being scheduled.

// Filter is a downloaded demultiplexing predicate. Match reports whether
// the frame belongs to the endpoint, and how many simulated cycles the
// classification consumed (a compiled DPF filter reports far fewer cycles
// than an interpreted one — that difference is Table 7).
type Filter interface {
	Match(frame []byte) (accept bool, cycles uint64)
}

// Endpoint binds a filter to an environment's receive path.
type Endpoint struct {
	Owner EnvID
	Filt  Filter

	// ASH, when non-nil, runs in the kernel at delivery time.
	ASH *ASH

	// Deliver is the native delivery hook (library-OS code): it copies the
	// message wherever the application wants it and charges for the copy.
	// When nil, the kernel queues the frame on Queue and the application
	// drains it when scheduled.
	Deliver func(k *Kernel, frame []byte)
	Queue   [][]byte

	// Delivered counts frames accepted by this endpoint.
	Delivered uint64
}

// InstallFilter downloads a packet filter for an environment. In the
// prototype, "simple security precautions such as only allowing a trusted
// server to install filters" guard against filters that lie; here the
// check is that the environment exists and is alive — the trusted-server
// refinement lives with the caller, as in the paper.
func (k *Kernel) InstallFilter(e *Env, f Filter) (*Endpoint, error) {
	if e == nil || e.Dead {
		return nil, fmt.Errorf("aegis: filter install for dead environment")
	}
	k.charge(20) // filter insertion bookkeeping
	ep := &Endpoint{Owner: e.ID, Filt: f}
	k.endpoints = append(k.endpoints, ep)
	k.Stats.acct(e.ID).Endpoints++
	k.trace(ktrace.KindEndpointBind, e.ID, 0, 0, 0)
	return ep, nil
}

// RemoveEndpoint uninstalls a filter.
func (k *Kernel) RemoveEndpoint(ep *Endpoint) {
	for i, x := range k.endpoints {
		if x == ep {
			k.endpoints = append(k.endpoints[:i], k.endpoints[i+1:]...)
			if a := k.Stats.acct(ep.Owner); a.Endpoints > 0 {
				a.Endpoints--
			}
			k.trace(ktrace.KindEndpointUnbind, ep.Owner, 0, 0, 0)
			return
		}
	}
}

// ASH is a verified application-specific handler bound to an endpoint.
type ASH struct {
	Code     isa.Code
	Budget   int    // static step bound from the verifier
	Sandbox  uint32 // physical base of the handler's scratch region
	SandMask uint32
}

// InstallASH verifies handler code (inspection + sandboxing) and attaches
// it to an endpoint. The sandbox region is one page the application owns;
// the capability must prove write access — the ASH will store into it from
// kernel context, so the binding must be checked *now*, at download time.
func (k *Kernel) InstallASH(ep *Endpoint, code isa.Code, frame uint32, guard cap.Capability) (*ASH, error) {
	res, err := sandbox.Verify(code, sandbox.PolicyASH)
	if err != nil {
		return nil, err
	}
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return nil, fmt.Errorf("aegis: ASH sandbox frame %d not allocated", frame)
	}
	if guard.Resource != uint64(frame) || !k.Auth.Check(guard, cap.Write) {
		return nil, fmt.Errorf("aegis: capability check failed for ASH sandbox")
	}
	// Verification cost is paid once, at download time: one pass.
	k.charge(uint64(len(code)) * 2)
	ash := &ASH{
		Code:     code,
		Budget:   res.MaxSteps,
		Sandbox:  frame << hw.PageShift,
		SandMask: hw.PageSize - 1,
	}
	ep.ASH = ash
	return ash, nil
}

// serviceNIC drains the receive ring, classifying and delivering each
// frame. It runs in interrupt context: ASHs execute immediately; plain
// endpoints get the frame queued/copied for when their owner is scheduled.
func (k *Kernel) serviceNIC() {
	for {
		pkt, ok := k.M.NIC.Recv()
		if !ok {
			return
		}
		k.deliver(pkt.Data)
	}
}

// Demux is a shared classifier covering all endpoints at once (a merged
// DPF trie). When installed, it replaces the linear walk of per-endpoint
// filters.
type Demux func(frame []byte) (ep *Endpoint, cycles uint64, ok bool)

// SetDemux installs a shared classifier (nil restores the linear walk).
func (k *Kernel) SetDemux(d Demux) { k.demux = d }

// deliver classifies one frame against the installed filters and hands it
// to the owning endpoint.
func (k *Kernel) deliver(frame []byte) {
	// The demux-path histogram spans classification through delivery
	// (filter match, ASH run or copy-out) — the end-to-end latency a
	// multiplexed receiver actually experiences. Drops are attributed
	// to the kernel (environment 0): no one owns an unclaimed frame.
	start := k.opStart()
	k.charge(6) // interrupt-level receive bookkeeping
	if k.demux != nil {
		ep, cycles, ok := k.demux(frame)
		k.M.Clock.Tick(cycles)
		k.trace(ktrace.KindPktClassify, k.cur, uint64(len(frame)), cycles, 0)
		if !ok || ep == nil {
			k.Stats.PktDropped++
			k.trace(ktrace.KindPktDrop, 0, uint64(len(frame)), 0, 0)
			k.recordOp(OpDemux, 0, start)
			return
		}
		k.deliverTo(ep, frame)
		k.recordOp(OpDemux, ep.Owner, start)
		return
	}
	var spent uint64
	for _, ep := range k.endpoints {
		accept, cycles := ep.Filt.Match(frame)
		k.M.Clock.Tick(cycles)
		spent += cycles
		if !accept {
			continue
		}
		k.trace(ktrace.KindPktClassify, k.cur, uint64(len(frame)), spent, 0)
		k.deliverTo(ep, frame)
		k.recordOp(OpDemux, ep.Owner, start)
		return
	}
	k.Stats.PktDropped++
	k.trace(ktrace.KindPktClassify, k.cur, uint64(len(frame)), spent, 0)
	k.trace(ktrace.KindPktDrop, 0, uint64(len(frame)), 0, 0)
	k.recordOp(OpDemux, 0, start)
}

// deliverTo hands an accepted frame to its endpoint: ASH in interrupt
// context, native delivery hook, or the kernel's default queue.
func (k *Kernel) deliverTo(ep *Endpoint, frame []byte) {
	ep.Delivered++
	k.Stats.PktDelivered++
	k.Stats.acct(ep.Owner).PktDelivered++
	k.trace(ktrace.KindPktDeliver, ep.Owner, uint64(len(frame)), 0, 0)
	if ep.ASH != nil {
		k.runASH(ep, frame)
		return
	}
	if ep.Deliver != nil {
		ep.Deliver(k, frame)
		return
	}
	// Kernel default: copy into a kernel buffer for later pickup.
	buf := make([]byte, len(frame))
	copy(buf, frame)
	k.M.Clock.Tick(uint64((len(frame) + 3) / 4))
	ep.Queue = append(ep.Queue, buf)
}

// runASH executes a verified handler in the kernel's message context:
// the caller's registers are preserved around the run (the handler has its
// own register context), memory instructions are sandboxed, and execution
// is bounded by the verifier's budget — belt and suspenders.
func (k *Kernel) runASH(ep *Endpoint, frame []byte) {
	start := k.opStart()
	defer k.recordOp(OpASHRun, ep.Owner, start)
	k.Stats.ASHRuns++
	k.trace(ktrace.KindASHRun, ep.Owner, uint64(len(frame)), 0, 0)
	// The handler run is a span under whatever request the frame carries
	// (wire hook; zero context if none). Replies the handler transmits
	// are stamped with the ASH span's context, so the echo's receiver
	// parents under the handler — the causal chain survives a request
	// that never leaves interrupt level.
	ash := k.Spans.Begin(start, ktrace.SpanASH, uint32(ep.Owner), k.wireCtx(frame), uint64(len(frame)))
	defer func() { k.Spans.End(ash, k.M.Clock.Cycles()) }()
	cpu := &k.M.CPU
	savedRegs := cpu.Regs
	savedPC := cpu.PC
	savedMode := cpu.Mode
	k.charge(8) // handler entry: set up the message context

	ashInterp := vm.New(k.M, vm.FixedCode(ep.ASH.Code))
	ashInterp.ASH = &vm.ASHContext{
		Packet:      frame,
		SandboxBase: ep.ASH.Sandbox,
		SandboxMask: ep.ASH.SandMask,
		Phys:        k.M.Phys,
		Xmit: func(data []byte) {
			if k.TraceStamp != nil && ash.Ctx().Valid() {
				k.TraceStamp(data, ash.Ctx())
			}
			k.M.NIC.Send(hw.Packet{Data: data})
		},
	}
	savedIntr := cpu.IntrOn
	cpu.Regs = [hw.NumRegs]uint32{}
	cpu.PC = 0
	cpu.Mode = hw.ModeKernel
	cpu.IntrOn = false // handlers run at interrupt level
	ashInterp.Run(uint64(ep.ASH.Budget))

	cpu.Regs = savedRegs
	cpu.PC = savedPC
	cpu.Mode = savedMode
	cpu.IntrOn = savedIntr
}
