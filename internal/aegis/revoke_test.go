package aegis

import (
	"testing"

	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// The abort protocol (§3.4): when the library OS fails the visible
// revocation request, the kernel must break the secure bindings by force,
// reclaim the frame, fix the books, and tell the owner through its
// repossession vector. These tests pin every one of those obligations for
// the three ways an owner can be uncooperative: no handler installed,
// handler refuses, handler lies (returns true without releasing).

func revokeWorld(t *testing.T) (*Kernel, *Env, uint32) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	e, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	frame, guard, err := k.AllocPage(e, AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	// Map it so there are cached translations to break.
	if err := k.InstallMapping(e, 0x4000, frame, hw.PermWrite, guard); err != nil {
		t.Fatal(err)
	}
	return k, e, frame
}

// checkAborted asserts the full post-abort contract.
func checkAborted(t *testing.T, k *Kernel, e *Env, frame uint32, framesBefore uint64) {
	t.Helper()
	if k.Stats.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", k.Stats.Aborts)
	}
	// Binding gone, frame back on the free list.
	if k.FrameOwner(frame) != 0 {
		t.Errorf("frame %d still owned by env %d after abort", frame, k.FrameOwner(frame))
	}
	if !k.M.Phys.AllocFrameAt(frame) {
		t.Errorf("frame %d not reallocatable after abort", frame)
	}
	_ = k.M.Phys.FreeFrame(frame)
	// Cached translations broken: no valid TLB entry may name the frame.
	for _, te := range k.M.TLB.Entries() {
		if te.Perms&hw.PermValid != 0 && te.PFN == frame {
			t.Errorf("TLB still maps repossessed frame %d (vpn %#x)", frame, te.VPN)
		}
	}
	// Repossession vector informed.
	if len(e.Repossessed) != 1 || e.Repossessed[0] != frame {
		t.Errorf("repossession vector = %v, want [%d]", e.Repossessed, frame)
	}
	// Account decremented by exactly the repossessed frame.
	if got := k.Stats.EnvAccount(e.ID).Frames; got != framesBefore-1 {
		t.Errorf("account Frames = %d, want %d", got, framesBefore-1)
	}
	// And the books still balance.
	if err := k.CheckInvariants(); err != nil {
		t.Errorf("post-abort invariants: %v", err)
	}
}

func TestRevokeAbortNoHandler(t *testing.T) {
	k, e, frame := revokeWorld(t)
	framesBefore := k.Stats.EnvAccount(e.ID).Frames
	e.NativeRevoke = nil

	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeAborted {
		t.Fatalf("outcome = %v, want aborted", out)
	}
	checkAborted(t, k, e, frame, framesBefore)
}

func TestRevokeAbortHandlerRefuses(t *testing.T) {
	k, e, frame := revokeWorld(t)
	framesBefore := k.Stats.EnvAccount(e.ID).Frames
	upcalls := 0
	e.NativeRevoke = func(*Kernel, uint32) bool { upcalls++; return false }

	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeAborted {
		t.Fatalf("outcome = %v, want aborted", out)
	}
	if upcalls != 1 {
		t.Errorf("visible phase ran %d times, want 1", upcalls)
	}
	checkAborted(t, k, e, frame, framesBefore)
}

// A handler that claims compliance without actually releasing the frame
// must not be believed: the kernel checks the binding, not the return
// value, and repossesses anyway.
func TestRevokeAbortHandlerLies(t *testing.T) {
	k, e, frame := revokeWorld(t)
	framesBefore := k.Stats.EnvAccount(e.ID).Frames
	e.NativeRevoke = func(*Kernel, uint32) bool { return true }

	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeAborted {
		t.Fatalf("outcome = %v, want aborted (handler lied)", out)
	}
	checkAborted(t, k, e, frame, framesBefore)
}

// Every revocation must resolve: the trace stream shows request →
// (comply | abort), never a dangling request.
func TestRevokeTraceResolves(t *testing.T) {
	k, e, frame := revokeWorld(t)
	rec := ktrace.New(64)
	k.SetTracer(rec)
	e.NativeRevoke = func(*Kernel, uint32) bool { return false }

	if _, err := k.RevokePage(frame); err != nil {
		t.Fatal(err)
	}
	var requests, resolutions int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case ktrace.KindRevokeRequest:
			requests++
		case ktrace.KindRevokeComply, ktrace.KindRevokeAbort:
			resolutions++
		}
	}
	if requests != 1 || resolutions != 1 {
		t.Errorf("trace: %d requests, %d resolutions; want 1 and 1", requests, resolutions)
	}
}

// CheckInvariants itself must detect cooked books: corrupt each table the
// checker audits and confirm it notices.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	t.Run("leaked-frame", func(t *testing.T) {
		k, _, frame := revokeWorld(t)
		// Free the frame behind the binding table's back.
		_ = k.M.Phys.FreeFrame(frame)
		if err := k.CheckInvariants(); err == nil {
			t.Error("leaked frame not detected")
		}
	})
	t.Run("account-drift", func(t *testing.T) {
		k, e, _ := revokeWorld(t)
		k.Stats.acct(e.ID).Frames += 3
		if err := k.CheckInvariants(); err == nil {
			t.Error("account drift not detected")
		}
	})
	t.Run("stale-tlb", func(t *testing.T) {
		k, e, frame := revokeWorld(t)
		// Tear the binding down without breaking translations.
		k.frames[frame] = frameBinding{}
		_ = k.M.Phys.FreeFrame(frame)
		if a := k.Stats.acct(e.ID); a.Frames > 0 {
			a.Frames--
		}
		if err := k.CheckInvariants(); err == nil {
			t.Error("stale TLB entry not detected")
		}
	})
	t.Run("dead-env-in-slices", func(t *testing.T) {
		k, e, _ := revokeWorld(t)
		e.Dead = true // marked dead without going through kill()
		if err := k.CheckInvariants(); err == nil {
			t.Error("dead env in slice vector not detected")
		}
	})
	t.Run("clean", func(t *testing.T) {
		k, _, _ := revokeWorld(t)
		if err := k.CheckInvariants(); err != nil {
			t.Errorf("clean kernel flagged: %v", err)
		}
	})
}
