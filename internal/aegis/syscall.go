package aegis

import (
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// System-call numbers for the VM ABI (code in v0, arguments in a0–a3,
// results in v0/v1). These are Aegis's *primitive operations*: they
// "encapsulate privileged instructions and are guaranteed not to alter
// application-visible registers" beyond the declared results — the
// pseudo-instruction style of Table 3.
const (
	SysNull       = 0  // measurement: enter and return
	SysGetEnv     = 1  // v0 = environment ID
	SysYield      = 2  // a0 = target env (0 = next in vector)
	SysAllocPage  = 3  // a0 = frame or AnyFrame → v0 = frame, v1 = cap handle
	SysDealloc    = 4  // a0 = frame, a1 = cap handle
	SysMapTLB     = 5  // a0 = va, a1 = frame, a2 = perms, a3 = cap handle
	SysUnmapTLB   = 6  // a0 = va
	SysRetExc     = 7  // a0 = 0 retry / 1 skip
	SysPCTSync    = 8  // a0 = callee env
	SysPCTAsync   = 9  // a0 = callee env
	SysCycles     = 10 // v0 = low 32 bits of the cycle counter
	SysExit       = 11 // terminate this environment
	SysSetExcVec  = 12 // a0 = cause, a1 = handler pc
	SysSetTLBVec  = 13 // a0 = handler pc
	SysSetIntVec  = 14 // a0 = handler pc
	SysSetEntry   = 15 // a0 = sync entry pc, a1 = async entry pc
	SysFail       = ^uint32(0)
	sysMaxDecoded = 16
)

// syscall services the SYSCALL exception. "Roughly ten of these
// instructions are used to distinguish the system call exception from
// other hardware exceptions on the MIPS architecture" — charged as the
// demultiplex cost; each operation then charges its own body.
func (k *Kernel) syscall() {
	start := k.opStart()
	k.Stats.Syscalls++
	k.charge(10)
	cpu := &k.M.CPU
	e := k.CurEnv()
	if e == nil {
		k.Interp.RequestStop()
		return
	}
	code := cpu.Reg(hw.RegV0)
	a0, a1 := cpu.Reg(hw.RegA0), cpu.Reg(hw.RegA1)
	a2, a3 := cpu.Reg(hw.RegA2), cpu.Reg(hw.RegA3)
	k.Stats.acct(e.ID).Syscalls++
	// Latency is stamped when the operation's body has charged its
	// cycles, whichever return path it leaves by (same shape as the
	// exit trace below).
	defer k.recordSyscall(code, e.ID, start)
	if k.Tracer != nil {
		k.trace(ktrace.KindSyscallEnter, e.ID, uint64(code), uint64(a0), uint64(a1))
		// The exit stamp is taken when the operation's body has charged
		// its cycles, whichever return path it leaves by.
		defer k.trace(ktrace.KindSyscallExit, e.ID, uint64(code), 0, 0)
	}

	// Most calls fall through to "advance past the SYSCALL and continue";
	// control-transfer calls redirect and return directly.
	switch code {
	case SysNull:
		k.charge(3)
	case SysGetEnv:
		cpu.SetReg(hw.RegV0, uint32(e.ID))
	case SysYield:
		cpu.PC = cpu.EPC + 1 // resume after the syscall when re-scheduled
		if !k.Yield(EnvID(a0)) {
			cpu.SetReg(hw.RegV0, SysFail)
		}
		cpu.Mode = hw.ModeUser
		return
	case SysAllocPage:
		frame, guard, err := k.AllocPage(e, a0)
		if err != nil {
			cpu.SetReg(hw.RegV0, SysFail)
		} else {
			cpu.SetReg(hw.RegV0, frame)
			cpu.SetReg(hw.RegV1, e.AddCap(guard))
		}
	case SysDealloc:
		c, ok := e.Cap(a1)
		if !ok || k.DeallocPage(a0, c) != nil {
			cpu.SetReg(hw.RegV0, SysFail)
		} else {
			cpu.SetReg(hw.RegV0, 0)
		}
	case SysMapTLB:
		c, ok := e.Cap(a3)
		if !ok || k.InstallMapping(e, a0, a1, uint8(a2), c) != nil {
			cpu.SetReg(hw.RegV0, SysFail)
		} else {
			cpu.SetReg(hw.RegV0, 0)
		}
	case SysUnmapTLB:
		k.UnmapPage(e, a0)
		cpu.SetReg(hw.RegV0, 0)
	case SysRetExc:
		action := ResumeRetry
		if a0 == 1 {
			action = ResumeSkip
		}
		k.ReturnFromException(e, action)
		return
	case SysPCTSync, SysPCTAsync:
		cpu.PC = cpu.EPC + 1 // where the caller resumes on a return call
		if err := k.ProtCall(EnvID(a0), code == SysPCTAsync); err != nil {
			cpu.SetReg(hw.RegV0, SysFail)
			cpu.Mode = hw.ModeUser
		}
		return
	case SysCycles:
		cpu.SetReg(hw.RegV0, uint32(k.M.Clock.Cycles()))
	case SysExit:
		k.kill(e, TrapInfo{})
		return
	case SysSetExcVec:
		if a0 < uint32(len(e.ExcVec)) {
			e.ExcVec[a0] = a1
			cpu.SetReg(hw.RegV0, 0)
		} else {
			cpu.SetReg(hw.RegV0, SysFail)
		}
	case SysSetTLBVec:
		e.TLBVec = a0
		cpu.SetReg(hw.RegV0, 0)
	case SysSetIntVec:
		e.IntVec = a0
		cpu.SetReg(hw.RegV0, 0)
	case SysSetEntry:
		e.EntrySync, e.EntryAsync = a0, a1
		cpu.SetReg(hw.RegV0, 0)
	default:
		cpu.SetReg(hw.RegV0, SysFail)
	}
	cpu.PC = cpu.EPC + 1
	cpu.Mode = hw.ModeUser
	k.M.Clock.Tick(hw.CostExcReturn)
}
