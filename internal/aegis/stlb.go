package aegis

import "exokernel/internal/hw"

// stlb is the software TLB (§5.2, refs [7,28]): a large direct-mapped
// cache of secure bindings overlaying the hardware TLB. On a hardware TLB
// miss Aegis consults it before vectoring to the application; capacity
// misses are absorbed here, so applications only see compulsory misses and
// protection changes.
type stlb struct {
	entries []hw.TLBEntry
	mask    uint32
}

func newSTLB(size int) *stlb {
	if size == 0 {
		return &stlb{}
	}
	if size&(size-1) != 0 {
		panic("aegis: STLB size must be a power of two")
	}
	return &stlb{entries: make([]hw.TLBEntry, size), mask: uint32(size - 1)}
}

func (s *stlb) index(vpn uint32, asid uint8) uint32 {
	// Cheap hash: the ASID xor-folded over the VPN. The real STLB was
	// direct-mapped and occasionally conflicted; so does this one.
	return (vpn ^ uint32(asid)<<7) & s.mask
}

// lookup probes the STLB.
func (s *stlb) lookup(vpn uint32, asid uint8) (hw.TLBEntry, bool) {
	if s.entries == nil {
		return hw.TLBEntry{}, false
	}
	e := s.entries[s.index(vpn, asid)]
	if e.Perms&hw.PermValid != 0 && e.VPN == vpn && e.ASID == asid {
		return e, true
	}
	return hw.TLBEntry{}, false
}

// insert caches a binding.
func (s *stlb) insert(e hw.TLBEntry) {
	if s.entries == nil {
		return
	}
	s.entries[s.index(e.VPN, e.ASID)] = e
}

// invalidate drops a binding if present.
func (s *stlb) invalidate(vpn uint32, asid uint8) {
	if s.entries == nil {
		return
	}
	i := s.index(vpn, asid)
	e := &s.entries[i]
	if e.VPN == vpn && e.ASID == asid {
		*e = hw.TLBEntry{}
	}
}

// invalidateFrame drops every binding that maps a physical frame (used by
// the abort protocol, which must break all bindings to a repossessed page).
func (s *stlb) invalidateFrame(pfn uint32) {
	for i := range s.entries {
		if s.entries[i].Perms&hw.PermValid != 0 && s.entries[i].PFN == pfn {
			s.entries[i] = hw.TLBEntry{}
		}
	}
}
