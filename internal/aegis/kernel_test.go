package aegis

import (
	"testing"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
)

func boot(t *testing.T) (*hw.Machine, *Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	return m, New(m)
}

func TestEnvLifecycle(t *testing.T) {
	m, k := boot(t)
	free := m.Phys.FreeFrames()
	a, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != 1 || a.ASID != 1 {
		t.Errorf("env ids: %d/%d", a.ID, a.ASID)
	}
	if m.Phys.FreeFrames() != free-1 {
		t.Error("save area frame not allocated")
	}
	if k.CurEnv() != a {
		t.Error("first env not installed as current")
	}
	b, _ := k.NewEnv(nil)
	if got, ok := k.Env(b.ID); !ok || got != b {
		t.Error("Env lookup failed")
	}
	if _, ok := k.Env(0); ok {
		t.Error("Env(0) resolved")
	}
	if _, ok := k.Env(99); ok {
		t.Error("Env(99) resolved")
	}
	if len(k.SliceVector()) != 2 {
		t.Errorf("slice vector = %v", k.SliceVector())
	}
}

func TestAllocPageCapabilityProtection(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)

	frame, guard, err := k.AllocPage(a, AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	if k.FrameOwner(frame) != a.ID {
		t.Errorf("owner = %d", k.FrameOwner(frame))
	}

	// A forged capability must not map or free the page.
	forged := cap.Capability{Resource: uint64(frame), Rights: cap.Read | cap.Write}
	if err := k.InstallMapping(b, 0x1000_0000, frame, hw.PermWrite, forged); err == nil {
		t.Error("forged capability installed a mapping")
	}
	if err := k.DeallocPage(frame, forged); err == nil {
		t.Error("forged capability freed the page")
	}

	// The real capability works for any holder — capabilities, not
	// identity, are the protection model.
	if err := k.InstallMapping(b, 0x1000_0000, frame, hw.PermWrite, guard); err != nil {
		t.Errorf("genuine capability rejected: %v", err)
	}
	if err := k.DeallocPage(frame, guard); err != nil {
		t.Errorf("genuine dealloc failed: %v", err)
	}
	// Double free fails.
	if err := k.DeallocPage(frame, guard); err == nil {
		t.Error("double free succeeded")
	}
}

func TestAllocSpecificFrame(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, _, err := k.AllocPage(a, 100)
	if err != nil || frame != 100 {
		t.Fatalf("AllocPage(100) = %d, %v", frame, err)
	}
	if _, _, err := k.AllocPage(a, 100); err == nil {
		t.Error("frame 100 allocated twice")
	}
	if _, _, err := k.AllocPage(a, 1<<20); err == nil {
		t.Error("nonexistent frame allocated")
	}
}

func TestReadOnlyCapabilityCannotMapWritable(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, guard, _ := k.AllocPage(a, AnyFrame)
	ro, ok := k.Auth.Derive(guard, cap.Read)
	if !ok {
		t.Fatal("derive failed")
	}
	if err := k.InstallMapping(a, 0x2000_0000, frame, hw.PermWrite, ro); err == nil {
		t.Error("read capability installed a writable mapping")
	}
	if err := k.InstallMapping(a, 0x2000_0000, frame, 0, ro); err != nil {
		t.Errorf("read-only mapping rejected: %v", err)
	}
}

func TestUnmapRemovesTranslationEverywhere(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, guard, _ := k.AllocPage(a, AnyFrame)
	const va = 0x3000_0000
	if err := k.InstallMapping(a, va, frame, hw.PermWrite, guard); err != nil {
		t.Fatal(err)
	}
	m.CPU.ASID = a.ASID
	if _, exc := m.Translate(va, true); exc != hw.ExcNone {
		t.Fatalf("mapping not live: %v", exc)
	}
	k.UnmapPage(a, va)
	if _, exc := m.Translate(va, true); exc == hw.ExcNone {
		t.Fatal("hardware TLB still maps after unmap")
	}
	// STLB must not resurrect it: a miss should reach the upcall path.
	called := false
	a.NativeTLBMiss = func(k *Kernel, va uint32, write bool) bool {
		called = true
		return false
	}
	a.NativeExc = func(k *Kernel, tr TrapInfo) { k.ReturnFromException(a, ResumeSkip) }
	m.RaiseException(hw.ExcTLBMissS, 0, va)
	if !called {
		t.Error("STLB served a stale binding after unmap")
	}
}

func TestSTLBAbsorbsCapacityMisses(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	// Map 80 pages: more than the 64-entry hardware TLB.
	for i := 0; i < 80; i++ {
		frame, guard, err := k.AllocPage(a, AnyFrame)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.InstallMapping(a, 0x4000_0000+uint32(i)<<hw.PageShift, frame, hw.PermWrite, guard); err != nil {
			t.Fatal(err)
		}
	}
	m.CPU.ASID = a.ASID
	upcalls := 0
	a.NativeTLBMiss = func(k *Kernel, va uint32, write bool) bool {
		upcalls++
		return false
	}
	misses := 0
	for i := 0; i < 80; i++ {
		va := 0x4000_0000 + uint32(i)<<hw.PageShift
		if _, exc := m.Translate(va, false); exc != hw.ExcNone {
			misses++
			m.RaiseException(exc, 0, va)
		}
	}
	if misses == 0 {
		t.Fatal("expected hardware capacity misses with 80 mappings")
	}
	if upcalls != 0 {
		t.Errorf("%d misses escaped to the application; STLB should absorb all", upcalls)
	}
	if k.Stats.STLBHits == 0 {
		t.Error("no STLB hits recorded")
	}
}

func TestExceptionDispatchSavesScratchAndReturns(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	m.CPU.SetReg(hw.RegAT, 0x11)
	m.CPU.SetReg(hw.RegK0, 0x22)
	m.CPU.SetReg(hw.RegK1, 0x33)
	var seen TrapInfo
	a.NativeExc = func(k *Kernel, tr TrapInfo) {
		seen = tr
		// The dispatcher handed us EPC/BadVAddr/cause in the scratch regs.
		if m.CPU.Reg(hw.RegK0) != tr.EPC || m.CPU.Reg(hw.RegK1) != tr.BadVAddr {
			t.Error("scratch registers do not carry the exception state")
		}
		k.ReturnFromException(a, ResumeRetry)
	}
	m.RaiseException(hw.ExcOverflow, 77, 0xBAD)
	if seen.Cause != hw.ExcOverflow || seen.EPC != 77 || seen.BadVAddr != 0xBAD {
		t.Errorf("TrapInfo = %+v", seen)
	}
	// After return, the scratch registers are restored and PC is back.
	if m.CPU.Reg(hw.RegAT) != 0x11 || m.CPU.Reg(hw.RegK0) != 0x22 || m.CPU.Reg(hw.RegK1) != 0x33 {
		t.Error("scratch registers not restored")
	}
	if m.CPU.PC != 77 {
		t.Errorf("PC = %d, want 77 (retry)", m.CPU.PC)
	}
	if m.CPU.Mode != hw.ModeUser {
		t.Error("not back in user mode")
	}
}

func TestUnhandledExceptionKillsEnv(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	m.RaiseException(hw.ExcOverflow, 5, 0)
	if !a.Dead {
		t.Fatal("env with no handler survived")
	}
	if a.LastFault.Cause != hw.ExcOverflow {
		t.Errorf("LastFault = %+v", a.LastFault)
	}
	if k.CurEnv() != b {
		t.Error("kernel did not switch to the survivor")
	}
	if k.Stats.KilledEnvs != 1 {
		t.Errorf("KilledEnvs = %d", k.Stats.KilledEnvs)
	}
	for _, id := range k.SliceVector() {
		if id == a.ID {
			t.Error("dead env still holds slices")
		}
	}
}

func TestYieldDirectedAndNext(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	c, _ := k.NewEnv(nil)
	if k.CurEnv() != a {
		t.Fatal("setup")
	}
	if !k.Yield(c.ID) {
		t.Fatal("directed yield failed")
	}
	if k.CurEnv() != c {
		t.Error("directed yield went elsewhere")
	}
	if k.Yield(99) {
		t.Error("yield to nonexistent env succeeded")
	}
	if !k.Yield(YieldNext) {
		t.Fatal("yield-next failed")
	}
	if k.CurEnv() == c {
		t.Error("yield-next stayed put with other envs runnable")
	}
	_ = b
}

func TestYieldRegisterStateSwitches(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	m.CPU.SetReg(hw.RegS0, 1234)
	k.Yield(b.ID)
	if m.CPU.Reg(hw.RegS0) == 1234 {
		t.Error("callee sees caller's registers after kernel-forced switch")
	}
	k.Yield(a.ID)
	if m.CPU.Reg(hw.RegS0) != 1234 {
		t.Error("caller's registers not restored on return")
	}
	if m.CPU.ASID != a.ASID {
		t.Error("addressing context not restored")
	}
}

func TestExcessTimeAccounting(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	k.ChargeExcess(a, 2)
	if !k.ConsumeExcess(a) || !k.ConsumeExcess(a) {
		t.Error("excess not consumable")
	}
	if k.ConsumeExcess(a) {
		t.Error("excess over-consumed")
	}
	// DispatchNative burns penalized slices without running the env.
	ran := false
	a.NativeRun = func(k *Kernel) { ran = true }
	k.ChargeExcess(a, 1)
	if !k.DispatchNative() {
		t.Fatal("dispatch failed")
	}
	if ran {
		t.Error("penalized slice still ran the environment")
	}
	if !k.DispatchNative() {
		t.Fatal("second dispatch failed")
	}
	if !ran {
		t.Error("environment never ran after penalty was paid")
	}
}

func TestTimerTickForcesSwitchWithoutHandlers(t *testing.T) {
	m, k := boot(t)
	// The kernel-forced switch only considers environments the interpreter
	// can run, so both get a (trivial) code segment.
	code := isa.Code{{Op: isa.NOP}, {Op: isa.J, Imm: 0}}
	a, _ := k.NewEnv(code)
	b, _ := k.NewEnv(code)
	k.SetQuantum(1000)
	m.Clock.Tick(1001)
	m.Timer.Check()
	m.PollInterrupts()
	if k.CurEnv() != b {
		t.Errorf("current = %v, want switch to b", k.CurEnv().ID)
	}
	if a.Slices != 1 {
		t.Errorf("a.Slices = %d", a.Slices)
	}
	if k.Stats.TimerTicks != 1 {
		t.Errorf("TimerTicks = %d", k.Stats.TimerTicks)
	}
}

func TestTimerTickCallsNativeInt(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	called := false
	a.NativeInt = func(k *Kernel) { called = true }
	k.SetQuantum(500)
	m.Clock.Tick(501)
	m.Timer.Check()
	m.PollInterrupts()
	if !called {
		t.Error("interrupt context not invoked")
	}
}

func TestProtCallRegisterContract(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	var calleeSawA0 uint32
	var calleeSawCaller EnvID
	b.NativeEntry = func(k *Kernel, caller EnvID) {
		calleeSawA0 = m.CPU.Reg(hw.RegA0)
		calleeSawCaller = caller
	}
	m.CPU.SetReg(hw.RegA0, 0xFEED)
	if err := k.ProtCall(b.ID, false); err != nil {
		t.Fatal(err)
	}
	if calleeSawA0 != 0xFEED {
		t.Error("registers did not flow to the callee (they are the message)")
	}
	if calleeSawCaller != a.ID {
		t.Errorf("caller id = %d", calleeSawCaller)
	}
	if m.CPU.Reg(hw.RegV1) != uint32(a.ID) {
		t.Error("v1 does not carry the caller id")
	}
	if m.CPU.ASID != b.ASID {
		t.Error("addressing context not switched")
	}
	if err := k.ProtCall(99, false); err == nil {
		t.Error("PCT to nonexistent env succeeded")
	}
	if k.Stats.ProtCalls == 0 {
		t.Error("stats not counted")
	}
}

func TestProtCallAsyncEntryPoint(t *testing.T) {
	m, k := boot(t)
	_, _ = k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	b.EntrySync = 10
	b.EntryAsync = 20
	if err := k.ProtCall(b.ID, true); err != nil {
		t.Fatal(err)
	}
	if m.CPU.PC != 20 {
		t.Errorf("async entry PC = %d, want 20", m.CPU.PC)
	}
	if err := k.ProtCall(b.ID, false); err != nil {
		t.Fatal(err)
	}
	if m.CPU.PC != 10 {
		t.Errorf("sync entry PC = %d, want 10", m.CPU.PC)
	}
}

func TestProtCallNoEntryFails(t *testing.T) {
	_, k := boot(t)
	k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	if err := k.ProtCall(b.ID, false); err == nil {
		t.Error("PCT to env without entry succeeded")
	}
}

func TestKillExported(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	k.Kill(a, TrapInfo{Cause: hw.ExcBreak})
	if !a.Dead || a.LastFault.Cause != hw.ExcBreak {
		t.Error("Kill did not mark env")
	}
	if k.CurEnv() != b {
		t.Error("Kill did not reschedule")
	}
}
