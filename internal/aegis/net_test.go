package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
)

// byteFilter accepts frames whose first byte matches.
type byteFilter byte

func (f byteFilter) Match(frame []byte) (bool, uint64) {
	return len(frame) > 0 && frame[0] == byte(f), 2
}

func TestFilterDemuxAndQueue(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	b, _ := k.NewEnv(nil)
	epA, err := k.InstallFilter(a, byteFilter(1))
	if err != nil {
		t.Fatal(err)
	}
	epB, err := k.InstallFilter(b, byteFilter(2))
	if err != nil {
		t.Fatal(err)
	}
	m.NIC.Deliver(hw.Packet{Data: []byte{1, 10}})
	m.NIC.Deliver(hw.Packet{Data: []byte{2, 20}})
	m.NIC.Deliver(hw.Packet{Data: []byte{9, 90}}) // matches nobody
	if len(epA.Queue) != 1 || epA.Queue[0][1] != 10 {
		t.Errorf("epA queue = %v", epA.Queue)
	}
	if len(epB.Queue) != 1 || epB.Queue[0][1] != 20 {
		t.Errorf("epB queue = %v", epB.Queue)
	}
	if k.Stats.PktDropped != 1 {
		t.Errorf("dropped = %d", k.Stats.PktDropped)
	}
	if epA.Delivered != 1 || epB.Delivered != 1 {
		t.Error("delivery counters wrong")
	}
}

func TestDeliverHook(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	ep, _ := k.InstallFilter(a, byteFilter(5))
	var got []byte
	ep.Deliver = func(k *Kernel, frame []byte) { got = append([]byte(nil), frame...) }
	m.NIC.Deliver(hw.Packet{Data: []byte{5, 55}})
	if len(got) != 2 || got[1] != 55 {
		t.Errorf("deliver hook got %v", got)
	}
	if len(ep.Queue) != 0 {
		t.Error("frame queued despite hook")
	}
}

func TestSharedDemuxOverridesLinearWalk(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	epWrong, _ := k.InstallFilter(a, byteFilter(1))
	epRight, _ := k.InstallFilter(a, byteFilter(1)) // same predicate, later in line
	k.SetDemux(func(frame []byte) (*Endpoint, uint64, bool) {
		return epRight, 3, true
	})
	m.NIC.Deliver(hw.Packet{Data: []byte{1}})
	if epRight.Delivered != 1 || epWrong.Delivered != 0 {
		t.Error("shared demux not consulted")
	}
	k.SetDemux(nil)
	m.NIC.Deliver(hw.Packet{Data: []byte{1}})
	if epWrong.Delivered != 1 {
		t.Error("linear walk not restored")
	}
}

func TestRemoveEndpoint(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	ep, _ := k.InstallFilter(a, byteFilter(1))
	k.RemoveEndpoint(ep)
	m.NIC.Deliver(hw.Packet{Data: []byte{1}})
	if ep.Delivered != 0 {
		t.Error("removed endpoint still receives")
	}
	if k.Stats.PktDropped != 1 {
		t.Error("frame not dropped after removal")
	}
}

func TestInstallFilterRejectsDeadEnv(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	k.NewEnv(nil)
	k.Kill(a, TrapInfo{})
	if _, err := k.InstallFilter(a, byteFilter(1)); err == nil {
		t.Error("filter installed for dead env")
	}
}

func TestASHInstallVerification(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	ep, _ := k.InstallFilter(a, byteFilter(1))
	frame, guard, _ := k.AllocPage(a, AnyFrame)

	// Looping code is rejected at download time.
	loop := asm.MustAssemble("loop:\n j loop\n")
	if _, err := k.InstallASH(ep, loop, frame, guard); err == nil {
		t.Error("looping ASH accepted")
	}
	// Privileged code is rejected.
	priv := isa.Code{{Op: isa.TLBWR}, {Op: isa.HALT}}
	if _, err := k.InstallASH(ep, priv, frame, guard); err == nil {
		t.Error("privileged ASH accepted")
	}
	// A forged sandbox capability is rejected.
	ok := asm.MustAssemble("pktlen t0\nhalt\n")
	forged := cap.Capability{Resource: uint64(frame), Rights: cap.Write}
	if _, err := k.InstallASH(ep, ok, frame, forged); err == nil {
		t.Error("forged sandbox capability accepted")
	}
	// Unallocated sandbox frame is rejected.
	if _, err := k.InstallASH(ep, ok, 9999, guard); err == nil {
		t.Error("bad sandbox frame accepted")
	}
	// And the good case.
	ash, err := k.InstallASH(ep, ok, frame, guard)
	if err != nil {
		t.Fatal(err)
	}
	if ash.Budget != 2 {
		t.Errorf("budget = %d", ash.Budget)
	}
}

func TestASHRunsInInterruptContextAndReplies(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	ep, _ := k.InstallFilter(a, byteFilter(7))
	frame, guard, _ := k.AllocPage(a, AnyFrame)
	// Echo ASH: copy first word, transmit 4 bytes.
	code := asm.MustAssemble(`
		pktlw t0, 0(zero)
		sw    t0, 0(zero)
		addiu t1, zero, 4
		xmit  zero, t1
		halt
	`)
	if _, err := k.InstallASH(ep, code, frame, guard); err != nil {
		t.Fatal(err)
	}
	var sent []hw.Packet
	m.NIC.ConnectTx(func(p hw.Packet) { sent = append(sent, p) })

	// Preserve the interrupted computation's registers.
	m.CPU.SetReg(hw.RegT0, 0xAAAA)
	pcBefore := m.CPU.PC
	m.NIC.Deliver(hw.Packet{Data: []byte{7, 1, 2, 3}})

	if len(sent) != 1 {
		t.Fatalf("ASH sent %d frames", len(sent))
	}
	if sent[0].Data[0] != 7 || sent[0].Data[3] != 3 {
		t.Errorf("echo payload = %v", sent[0].Data)
	}
	if m.CPU.Reg(hw.RegT0) != 0xAAAA || m.CPU.PC != pcBefore {
		t.Error("ASH execution clobbered the interrupted context")
	}
	if k.Stats.ASHRuns != 1 {
		t.Errorf("ASHRuns = %d", k.Stats.ASHRuns)
	}
	// The sandbox page belongs to the application: the ASH's store is
	// visible there (direct, dynamic message vectoring).
	if got := m.Phys.ReadWord(frame << hw.PageShift); got != 0x03020107 {
		t.Errorf("sandbox word = %#x", got)
	}
}

func TestRevocationVisiblePhase(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, guard, _ := k.AllocPage(a, AnyFrame)
	released := false
	a.NativeRevoke = func(k *Kernel, f uint32) bool {
		released = true
		return k.DeallocPage(f, guard) == nil
	}
	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeComplied || !released {
		t.Errorf("outcome = %v, released = %v", out, released)
	}
	if len(a.Repossessed) != 0 {
		t.Error("compliant revocation filled the repossession vector")
	}
	if k.Stats.Aborts != 0 {
		t.Error("abort counted despite compliance")
	}
}

func TestRevocationAbortProtocol(t *testing.T) {
	m, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, guard, _ := k.AllocPage(a, AnyFrame)
	const va = 0x5000_0000
	if err := k.InstallMapping(a, va, frame, hw.PermWrite, guard); err != nil {
		t.Fatal(err)
	}
	// The library OS refuses to cooperate.
	a.NativeRevoke = func(k *Kernel, f uint32) bool { return false }
	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeAborted {
		t.Errorf("outcome = %v", out)
	}
	if len(a.Repossessed) != 1 || a.Repossessed[0] != frame {
		t.Errorf("repossession vector = %v", a.Repossessed)
	}
	// All secure bindings are broken: the old mapping is gone.
	m.CPU.ASID = a.ASID
	if _, exc := m.Translate(va, false); exc == hw.ExcNone {
		t.Error("abort left a live translation")
	}
	// The frame is reusable.
	if f2, _, err := k.AllocPage(a, frame); err != nil || f2 != frame {
		t.Errorf("frame not reusable after abort: %v", err)
	}
	if out, _ := k.RevokePage(9999); out != RevokeNoOwner {
		t.Error("revoking unallocated frame misreported")
	}
}

func TestRevocationWithoutHandlerAborts(t *testing.T) {
	_, k := boot(t)
	a, _ := k.NewEnv(nil)
	frame, _, _ := k.AllocPage(a, AnyFrame)
	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != RevokeAborted {
		t.Errorf("outcome = %v", out)
	}
	if len(a.Repossessed) != 1 {
		t.Error("loss not recorded")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []RevokeOutcome{RevokeComplied, RevokeAborted, RevokeNoOwner} {
		if o.String() == "revoke?" {
			t.Errorf("outcome %d unnamed", o)
		}
	}
}
