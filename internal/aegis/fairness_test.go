package aegis

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
)

// TestPreemptiveFairnessVMEnvs runs two compute-bound VM environments
// under the timer with no application interrupt handlers installed (the
// kernel's forced round-robin) and checks both make comparable progress —
// the baseline fairness the time-slice vector guarantees before any
// application policy is layered on.
func TestPreemptiveFairnessVMEnvs(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	spinner := `
	loop:
		addiu s0, s0, 1
		j loop
	`
	a, err := k.NewEnv(asm.MustAssemble(spinner))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.NewEnv(asm.MustAssemble(spinner))
	if err != nil {
		t.Fatal(err)
	}
	k.SetQuantum(500)
	k.Interp.Run(100000)

	// Counters live in each env's saved s0 (one is live in the CPU).
	counts := []uint64{uint64(a.Regs[hw.RegS0]), uint64(b.Regs[hw.RegS0])}
	if k.CurEnv() == a {
		counts[0] = uint64(m.CPU.Reg(hw.RegS0))
	} else {
		counts[1] = uint64(m.CPU.Reg(hw.RegS0))
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("an environment starved: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("progress ratio = %.2f (%v), want ~1.0", ratio, counts)
	}
	if a.Slices == 0 || b.Slices == 0 {
		t.Errorf("slice accounting: %d/%d", a.Slices, b.Slices)
	}
	if k.Stats.TimerTicks < 10 {
		t.Errorf("only %d timer ticks", k.Stats.TimerTicks)
	}
}

// TestMixedVMAndNativeEnvs checks a VM spinner and a native environment
// coexist under preemption: the native env's interrupt hook runs when its
// slice ends and hands the CPU back.
func TestMixedVMAndNativeEnvs(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := New(m)
	vmEnv, err := k.NewEnv(asm.MustAssemble("loop:\n addiu s0, s0, 1\n j loop\n"))
	if err != nil {
		t.Fatal(err)
	}
	native, err := k.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	k.SetQuantum(400)
	k.Interp.Run(50000)
	if vmEnv.Slices == 0 {
		t.Error("VM env never ran")
	}
	if native.Dead {
		t.Error("code-less native env was scheduled into the interpreter and died")
	}
	if k.Stats.TimerTicks == 0 {
		t.Error("no preemption happened")
	}
	if k.Stats.KilledEnvs != 0 {
		t.Errorf("environments died under preemption: %d", k.Stats.KilledEnvs)
	}
}
