package aegis

import (
	"fmt"

	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// Secure bindings for stable storage. "An exokernel should protect
// framebuffers without understanding windowing systems and disks without
// understanding file systems" (§3). The kernel's entire disk interface is:
// allocate an *extent* of raw blocks guarded by a capability, and move
// blocks between an extent and physical memory after checking that
// capability. File systems — layout, naming, caching, consistency — are
// library code (internal/exos/fs.go).

// diskResource encodes an extent identity into a capability resource:
// a tag in the top byte keeps disk extents and physical frames in
// disjoint namespaces under one minting authority.
func diskResource(start, nblocks uint32) uint64 {
	return 1<<56 | uint64(start)<<24 | uint64(nblocks)
}

// extent records one secure binding on a block range.
type extent struct {
	owner   EnvID
	start   uint32
	nblocks uint32
}

// AllocExtent allocates a contiguous range of nblocks disk blocks for an
// environment and mints the guarding capability. First-fit: disk layout
// is the application's concern, and physical block numbers are exposed
// ("expose names" applies to disk addresses too).
func (k *Kernel) AllocExtent(e *Env, nblocks uint32) (uint32, cap.Capability, error) {
	if nblocks == 0 {
		return 0, cap.Capability{}, fmt.Errorf("aegis: empty extent")
	}
	k.charge(12)
	total := uint32(k.M.Disk.NumBlocks())
	for start := uint32(0); start+nblocks <= total; {
		if conflict, next := k.extentConflict(start, nblocks); conflict {
			start = next
			continue
		}
		guard := k.Auth.Mint(diskResource(start, nblocks), cap.Read|cap.Write|cap.Grant)
		k.extents = append(k.extents, extent{owner: e.ID, start: start, nblocks: nblocks})
		k.Stats.acct(e.ID).Extents++
		k.trace(ktrace.KindExtentAlloc, e.ID, uint64(start), uint64(nblocks), 0)
		return start, guard, nil
	}
	return 0, cap.Capability{}, fmt.Errorf("aegis: no contiguous %d-block extent free", nblocks)
}

// extentConflict reports whether [start, start+n) overlaps an allocated
// extent, and the first candidate start past the conflict.
func (k *Kernel) extentConflict(start, n uint32) (bool, uint32) {
	for _, x := range k.extents {
		if start < x.start+x.nblocks && x.start < start+n {
			return true, x.start + x.nblocks
		}
	}
	return false, 0
}

// FreeExtent releases an extent; the capability must prove write access.
func (k *Kernel) FreeExtent(start, nblocks uint32, guard cap.Capability) error {
	k.charge(8)
	if guard.Resource != diskResource(start, nblocks) || !k.Auth.Check(guard, cap.Write) {
		return fmt.Errorf("aegis: capability check failed for extent %d+%d", start, nblocks)
	}
	for i, x := range k.extents {
		if x.start == start && x.nblocks == nblocks {
			k.extents = append(k.extents[:i], k.extents[i+1:]...)
			if a := k.Stats.acct(x.owner); a.Extents > 0 {
				a.Extents--
			}
			k.trace(ktrace.KindExtentFree, x.owner, uint64(start), uint64(nblocks), 0)
			return nil
		}
	}
	return fmt.Errorf("aegis: extent %d+%d not allocated", start, nblocks)
}

// checkExtentAccess validates a block access against an extent capability.
func (k *Kernel) checkExtentAccess(start, nblocks, off uint32, guard cap.Capability, need cap.Rights) error {
	k.charge(10)
	if off >= nblocks {
		return fmt.Errorf("aegis: block offset %d outside extent of %d", off, nblocks)
	}
	if guard.Resource != diskResource(start, nblocks) || !k.Auth.Check(guard, need) {
		return fmt.Errorf("aegis: extent capability check failed")
	}
	return nil
}

// DiskRead DMAs extent block (start+off) into a physical frame. Two
// capabilities are checked once per operation — read on the extent, write
// on the frame — and then the device does the work; the kernel never
// interprets the bytes.
func (k *Kernel) DiskRead(start, nblocks, off uint32, extCap cap.Capability, frame uint32, frameCap cap.Capability) error {
	c0 := k.opStart()
	if err := k.checkExtentAccess(start, nblocks, off, extCap, cap.Read); err != nil {
		return err
	}
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return fmt.Errorf("aegis: disk read into unallocated frame %d", frame)
	}
	if frameCap.Resource != uint64(frame) || !k.Auth.Check(frameCap, cap.Write) {
		return fmt.Errorf("aegis: frame capability check failed")
	}
	k.trace(ktrace.KindDiskRead, k.cur, uint64(start+off), uint64(frame), 0)
	err := k.M.Disk.ReadBlock(start+off, k.M.Phys, frame)
	if err == nil {
		k.recordOp(OpDiskIO, k.cur, c0)
	}
	return err
}

// DiskWrite DMAs a physical frame into extent block (start+off).
func (k *Kernel) DiskWrite(start, nblocks, off uint32, extCap cap.Capability, frame uint32, frameCap cap.Capability) error {
	c0 := k.opStart()
	if err := k.checkExtentAccess(start, nblocks, off, extCap, cap.Write); err != nil {
		return err
	}
	if int(frame) >= len(k.frames) || !k.frames[frame].bound {
		return fmt.Errorf("aegis: disk write from unallocated frame %d", frame)
	}
	if frameCap.Resource != uint64(frame) || !k.Auth.Check(frameCap, cap.Read) {
		return fmt.Errorf("aegis: frame capability check failed")
	}
	k.trace(ktrace.KindDiskWrite, k.cur, uint64(start+off), uint64(frame), 0)
	err := k.M.Disk.WriteBlock(start+off, k.M.Phys, frame)
	if err == nil {
		k.recordOp(OpDiskIO, k.cur, c0)
	}
	return err
}

// DiskFlush issues the disk's write barrier on behalf of an extent
// holder: every cached write on the device is made stable before the
// call returns. Write access to the extent is required (a flush is a
// mutation of durability state), but the barrier itself is device-wide —
// the disk has one write cache, and the kernel does not track which
// cached blocks belong to whom; the capability check only proves the
// caller is a legitimate writer. File systems decide *when* to flush
// (commit points, swap-frame reuse); the kernel only checks and issues.
func (k *Kernel) DiskFlush(start, nblocks uint32, extCap cap.Capability) error {
	c0 := k.opStart()
	if err := k.checkExtentAccess(start, nblocks, 0, extCap, cap.Write); err != nil {
		return err
	}
	before := k.M.Disk.FlushedBlocks
	err := k.M.Disk.Flush()
	if err == nil {
		k.trace(ktrace.KindDiskFlush, k.cur, uint64(start), k.M.Disk.FlushedBlocks-before, 0)
		k.recordOp(OpDiskIO, k.cur, c0)
	}
	return err
}

// hw import check (Disk block size must match the page size for 1:1 DMA).
var _ = [1]struct{}{}[hw.PageSize-hw.DiskBlockSize]
