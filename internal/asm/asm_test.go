package asm

import (
	"os"
	"strings"
	"testing"
	"testing/quick"

	"exokernel/internal/isa"
)

func TestAssembleBasics(t *testing.T) {
	code, labels, err := AssembleWithLabels(`
		; a tiny program
		start:
			addiu t0, zero, 10   # decimal
			addiu t1, zero, 0x10 ; hex
		loop:
			addiu t0, t0, -1
			bgtz  t0, loop
			j     done
		done:
			halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 6 {
		t.Fatalf("len(code) = %d, want 6", len(code))
	}
	if labels["start"] != 0 || labels["loop"] != 2 || labels["done"] != 5 {
		t.Errorf("labels = %v", labels)
	}
	if code[1].Imm != 0x10 {
		t.Errorf("hex immediate parsed as %d", code[1].Imm)
	}
	if code[3].Op != isa.BGTZ || code[3].Imm != 2 {
		t.Errorf("branch target not resolved: %+v", code[3])
	}
	if code[4].Op != isa.J || code[4].Imm != 5 {
		t.Errorf("jump target not resolved: %+v", code[4])
	}
	if code[5].Op != isa.HALT {
		t.Errorf("final op = %v", code[5].Op)
	}
}

func TestAssembleMemoryOperands(t *testing.T) {
	code := MustAssemble(`
		lw  v0, 4(sp)
		sw  v0, -8(fp)
		lbu t0, (a0)
	`)
	if code[0].Rd != 2 || code[0].Rs != 29 || code[0].Imm != 4 {
		t.Errorf("lw parsed %+v", code[0])
	}
	if code[1].Rt != 2 || code[1].Rs != 30 || code[1].Imm != -8 {
		t.Errorf("sw parsed %+v", code[1])
	}
	if code[2].Rs != 4 || code[2].Imm != 0 {
		t.Errorf("implicit-zero offset parsed %+v", code[2])
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	code := MustAssemble("addu k0, k1, ra")
	if code[0].Rd != 26 || code[0].Rs != 27 || code[0].Rt != 31 {
		t.Errorf("aliases parsed %+v", code[0])
	}
	code = MustAssemble("addu r5, r0, r31")
	if code[0].Rd != 5 || code[0].Rs != 0 || code[0].Rt != 31 {
		t.Errorf("numeric registers parsed %+v", code[0])
	}
}

func TestAssembleTrailingLabel(t *testing.T) {
	_, labels, err := AssembleWithLabels("nop\nend:\n")
	if err != nil {
		t.Fatal(err)
	}
	if labels["end"] != 1 {
		t.Errorf("trailing label = %d, want 1", labels["end"])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"frobnicate r1":        "unknown mnemonic",
		"addu r1, r2":          "takes 3 operands",
		"addu r1, r2, r99":     "bad register",
		"addiu r1, r2, banana": "bad immediate",
		"lw r1, r2":            "bad memory operand",
		"x: nop\nx: nop":       "duplicate label",
		": nop":                "empty label",
	}
	for src, wantSub := range cases {
		_, err := Assemble(src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Assemble(%q) error = %v, want substring %q", src, err, wantSub)
		}
		var ae *Error
		if ok := errorsAs(err, &ae); !ok || ae.Line == 0 {
			t.Errorf("Assemble(%q) error lacks line info: %v", src, err)
		}
	}
}

func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus")
}

// Property: disassembling assembled code and re-assembling it reproduces
// the same instructions (String() output is valid assembler input for the
// register-register and immediate forms).
func TestQuickRoundTripALU(t *testing.T) {
	ops := []isa.Op{isa.ADDU, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT}
	f := func(opIdx, rd, rs, rt uint8) bool {
		in := isa.Inst{Op: ops[int(opIdx)%len(ops)], Rd: rd % 32, Rs: rs % 32, Rt: rt % 32}
		code, err := Assemble(in.String())
		if err != nil {
			return false
		}
		return len(code) == 1 && code[0] == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: labels always resolve within [0, len(code)].
func TestQuickLabelResolution(t *testing.T) {
	f := func(n uint8) bool {
		var b strings.Builder
		count := int(n%30) + 1
		for i := 0; i < count; i++ {
			b.WriteString("nop\n")
		}
		b.WriteString("tail:\n j tail\n")
		code, labels, err := AssembleWithLabels(b.String())
		if err != nil {
			return false
		}
		target := labels["tail"]
		return target == count && int(code[count].Imm) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssembleShippedPrograms(t *testing.T) {
	// The sample programs under examples/asm must keep assembling.
	src, err := os.ReadFile("../../examples/asm/fib.s")
	if err != nil {
		t.Fatal(err)
	}
	code, labels, err := AssembleWithLabels(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(code) == 0 || labels["entry"] != 0 {
		t.Errorf("fib.s: %d instructions, entry=%d", len(code), labels["entry"])
	}
}
