// Package asm is a two-pass assembler for the simulated ISA. It exists so
// that downloaded code — exception handlers, ASHs, test programs — can be
// written legibly in the examples and tests rather than as instruction
// literals.
//
// Syntax, one instruction per line:
//
//	; comment        # comment
//	loop:                       ; label
//	    addiu t0, t0, 1
//	    lw    v0, 4(a0)
//	    bne   t0, a1, loop      ; branch targets may be labels or numbers
//	    jal   subroutine
//	    halt
//
// Registers are r0..r31 or the MIPS aliases (zero, at, v0, v1, a0-a3,
// t0-t7, s0-s7, t8, t9, k0, k1, gp, sp, fp, ra).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"exokernel/internal/isa"
)

var regAlias = map[string]uint8{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for o := 0; o < isa.NumOps; o++ {
		m[isa.Op(o).String()] = isa.Op(o)
	}
	return m
}()

// Error reports an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type line struct {
	num    int
	op     isa.Op
	args   []string
	labels []string
}

// Assemble translates source text into a code segment.
func Assemble(src string) (isa.Code, error) {
	code, _, err := AssembleWithLabels(src)
	return code, err
}

// AssembleWithLabels translates source text and also returns the label
// table (label → instruction index), which callers use to locate entry
// points and handler vectors inside a segment.
func AssembleWithLabels(src string) (isa.Code, map[string]int, error) {
	lines, labels, err := firstPass(src)
	if err != nil {
		return nil, nil, err
	}
	code := make(isa.Code, 0, len(lines))
	for pc, ln := range lines {
		in, err := encode(ln, pc, labels)
		if err != nil {
			return nil, nil, err
		}
		code = append(code, in)
	}
	return code, labels, nil
}

// Labels returns just the label table of a source text.
func Labels(src string) (map[string]int, error) {
	_, labels, err := AssembleWithLabels(src)
	return labels, err
}

// MustAssemble is Assemble, panicking on error; for tests and fixed
// in-tree programs.
func MustAssemble(src string) isa.Code {
	code, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return code
}

func firstPass(src string) ([]line, map[string]int, error) {
	var lines []line
	labels := make(map[string]int)
	pendingLabels := []string{}
	for num, raw := range strings.Split(src, "\n") {
		text := raw
		if i := strings.IndexAny(text, ";#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		for text != "" {
			if i := strings.Index(text, ":"); i >= 0 && !strings.ContainsAny(text[:i], " \t(") {
				label := strings.TrimSpace(text[:i])
				if label == "" {
					return nil, nil, &Error{num + 1, "empty label"}
				}
				if _, dup := labels[label]; dup {
					return nil, nil, &Error{num + 1, fmt.Sprintf("duplicate label %q", label)}
				}
				labels[label] = len(lines)
				pendingLabels = append(pendingLabels, label)
				text = strings.TrimSpace(text[i+1:])
				continue
			}
			break
		}
		if text == "" {
			continue
		}
		fields := strings.SplitN(text, " ", 2)
		mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
		op, ok := opByName[mnemonic]
		if !ok {
			return nil, nil, &Error{num + 1, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
		}
		var args []string
		if len(fields) == 2 {
			for _, a := range strings.Split(fields[1], ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		lines = append(lines, line{num: num + 1, op: op, args: args, labels: pendingLabels})
		pendingLabels = nil
	}
	if len(pendingLabels) > 0 {
		// Trailing labels point one past the end (e.g. an "end:" marker).
		for _, l := range pendingLabels {
			labels[l] = len(lines)
		}
	}
	return lines, labels, nil
}

func parseReg(s string, ln int) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAlias[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint8(n), nil
		}
	}
	return 0, &Error{ln, fmt.Sprintf("bad register %q", s)}
}

func parseImm(s string, ln int, labels map[string]int) (int32, error) {
	s = strings.TrimSpace(s)
	if v, ok := labels[s]; ok {
		return int32(v), nil
	}
	n, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, &Error{ln, fmt.Sprintf("bad immediate %q", s)}
	}
	if n < -(1<<31) || n > 1<<32-1 {
		return 0, &Error{ln, fmt.Sprintf("immediate %d out of range", n)}
	}
	return int32(uint32(n)), nil
}

// parseMem parses "imm(reg)" operands.
func parseMem(s string, ln int, labels map[string]int) (uint8, int32, error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, &Error{ln, fmt.Sprintf("bad memory operand %q (want imm(reg))", s)}
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := parseImm(offStr, ln, labels)
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s[open+1:close], ln)
	if err != nil {
		return 0, 0, err
	}
	return reg, off, nil
}

func wantArgs(ln line, n int) error {
	if len(ln.args) != n {
		return &Error{ln.num, fmt.Sprintf("%s takes %d operands, got %d", ln.op, n, len(ln.args))}
	}
	return nil
}

func encode(ln line, pc int, labels map[string]int) (isa.Inst, error) {
	in := isa.Inst{Op: ln.op}
	var err error
	switch ln.op {
	case isa.NOP, isa.HALT, isa.RFE, isa.SYSCALL, isa.BREAK, isa.COP1:
		err = wantArgs(ln, 0)
	case isa.ADD, isa.ADDU, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND,
		isa.OR, isa.XOR, isa.NOR, isa.SLT, isa.SLTU:
		if err = wantArgs(ln, 3); err == nil {
			if in.Rd, err = parseReg(ln.args[0], ln.num); err == nil {
				if in.Rs, err = parseReg(ln.args[1], ln.num); err == nil {
					in.Rt, err = parseReg(ln.args[2], ln.num)
				}
			}
		}
	case isa.ADDI, isa.ADDIU, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI,
		isa.SLL, isa.SRL, isa.SRA:
		if err = wantArgs(ln, 3); err == nil {
			if in.Rd, err = parseReg(ln.args[0], ln.num); err == nil {
				if in.Rs, err = parseReg(ln.args[1], ln.num); err == nil {
					in.Imm, err = parseImm(ln.args[2], ln.num, labels)
				}
			}
		}
	case isa.LUI:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rd, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Imm, err = parseImm(ln.args[1], ln.num, labels)
			}
		}
	case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.PKTLW, isa.PKTLB:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rd, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Rs, in.Imm, err = parseMem(ln.args[1], ln.num, labels)
			}
		}
	case isa.SW, isa.SH, isa.SB:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rt, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Rs, in.Imm, err = parseMem(ln.args[1], ln.num, labels)
			}
		}
	case isa.BEQ, isa.BNE:
		if err = wantArgs(ln, 3); err == nil {
			if in.Rs, err = parseReg(ln.args[0], ln.num); err == nil {
				if in.Rt, err = parseReg(ln.args[1], ln.num); err == nil {
					in.Imm, err = parseImm(ln.args[2], ln.num, labels)
				}
			}
		}
	case isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rs, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Imm, err = parseImm(ln.args[1], ln.num, labels)
			}
		}
	case isa.J, isa.JAL:
		if err = wantArgs(ln, 1); err == nil {
			in.Imm, err = parseImm(ln.args[0], ln.num, labels)
		}
	case isa.JR:
		if err = wantArgs(ln, 1); err == nil {
			in.Rs, err = parseReg(ln.args[0], ln.num)
		}
	case isa.JALR:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rd, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Rs, err = parseReg(ln.args[1], ln.num)
			}
		}
	case isa.TLBWR:
		err = wantArgs(ln, 0)
	case isa.PKTLEN:
		if err = wantArgs(ln, 1); err == nil {
			in.Rd, err = parseReg(ln.args[0], ln.num)
		}
	case isa.XMIT:
		if err = wantArgs(ln, 2); err == nil {
			if in.Rs, err = parseReg(ln.args[0], ln.num); err == nil {
				in.Rt, err = parseReg(ln.args[1], ln.num)
			}
		}
	default:
		err = &Error{ln.num, fmt.Sprintf("cannot encode %s", ln.op)}
	}
	return in, err
}
