package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/prof"
)

// Tests for the two-engine contract: runFast and runRef must be
// indistinguishable in simulated time and in every architectural effect.
// See DESIGN.md "Host speed vs simulated time".

// TestRequestStopFromInterruptHandler is the regression test for the
// collapsed stop check: a RequestStop issued by an interrupt handler must
// stop the engine before the next instruction executes, on both engines.
func TestRequestStopFromInterruptHandler(t *testing.T) {
	for _, slow := range []bool{false, true} {
		m := hw.NewMachine(hw.DEC5000)
		m.SetSlowPath(slow)
		m.CPU.Mode = hw.ModeUser
		code := asm.MustAssemble(`
		loop:
			addiu t0, t0, 1
			j loop
		`)
		in := New(m, FixedCode(code))
		var stepsAtStop uint64
		h := &trapLog{}
		h.fix = func(m *hw.Machine) {
			if m.CPU.Cause != hw.ExcInterrupt {
				t.Fatalf("slow=%v: unexpected trap %v", slow, m.CPU.Cause)
			}
			m.CPU.Pending &^= hw.IRQTimer
			stepsAtStop = in.Steps
			in.RequestStop()
			m.CPU.PC = m.CPU.EPC
			m.CPU.Mode = hw.ModeUser
		}
		m.SetTrapHandler(h)
		m.Timer.Arm(10)
		if r := in.Run(1000); r != StopRequested {
			t.Fatalf("slow=%v: Run = %v, want requested", slow, r)
		}
		if in.Steps != stepsAtStop {
			t.Errorf("slow=%v: %d instruction(s) ran after the handler requested stop",
				slow, in.Steps-stepsAtStop)
		}
		if m.Timer.Fired == 0 {
			t.Errorf("slow=%v: timer never fired", slow)
		}
	}
}

// genProgram builds a random but well-formed program from a seed: every
// opcode the interpreter implements that a user-mode program can reach,
// with branch targets confined to the program and memory operands around
// the mapped test pages. Faults are expected and fine — the harness
// skips them — the property under test is that both engines fault, trap,
// and resume identically.
func genProgram(seed uint64) isa.Code {
	r := seed
	next := func(n uint32) uint32 {
		r = r*6364136223846793005 + 1442695040888963407
		return uint32(r>>33) % n
	}
	ops := []isa.Op{
		isa.NOP, isa.ADD, isa.ADDI, isa.ADDU, isa.ADDIU, isa.SUB, isa.MUL,
		isa.DIV, isa.REM, isa.AND, isa.ANDI, isa.OR, isa.ORI, isa.XOR,
		isa.XORI, isa.NOR, isa.SLT, isa.SLTU, isa.SLTI, isa.LUI, isa.SLL,
		isa.SRL, isa.SRA,
		isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.SW, isa.SH, isa.SB,
		isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ,
		isa.J, isa.JAL,
		isa.SYSCALL, isa.BREAK, isa.COP1, isa.TLBWR, isa.RFE,
	}
	n := 24 + next(40)
	code := make(isa.Code, 0, n+1)
	reg := func() uint8 { return uint8(8 + next(16)) } // t0..s7, leave zero/ra/sp alone
	for i := uint32(0); i < n; i++ {
		inst := isa.Inst{Op: ops[next(uint32(len(ops)))], Rd: reg(), Rs: reg(), Rt: reg()}
		switch inst.Op {
		case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.SW, isa.SH, isa.SB:
			// Base register t0 is seeded inside the mapped region; small
			// offsets keep most references on the three test pages while
			// still producing misses and alignment faults.
			inst.Rs = hw.RegT0
			inst.Imm = int32(next(3*hw.PageSize)) - hw.PageSize/2
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ, isa.J, isa.JAL:
			inst.Imm = int32(next(n + 1)) // branch anywhere in the program
		default:
			inst.Imm = int32(next(1 << 16))
		}
		code = append(code, inst)
	}
	return append(code, isa.Inst{Op: isa.HALT})
}

// engineRun executes a generated program on a fresh machine with the
// given engine and returns every architectural observable.
type engineResult struct {
	stop   StopReason
	steps  uint64
	cycles uint64
	regs   [hw.NumRegs]uint32
	pc     uint32
	pages  [3][]byte
	causes []hw.Exc
	badvas []uint32
	fired  uint64
	// profile is the attached profiler's snapshot rendered as PROF JSON:
	// both engines must drive the hooks identically, byte for byte.
	profile []byte
}

func engineRun(seed uint64, slowPath bool) engineResult {
	m := hw.NewMachine(hw.DEC5000)
	m.SetSlowPath(slowPath)
	h := &trapLog{}
	h.fix = func(m *hw.Machine) {
		if m.CPU.Cause == hw.ExcInterrupt {
			m.CPU.Pending = 0
			m.CPU.PC = m.CPU.EPC
		} else {
			m.CPU.PC = m.CPU.EPC + 1
		}
		m.CPU.Mode = hw.ModeUser
	}
	m.SetTrapHandler(h)
	// Three pages: two writable, one read-only (store faults exercise the
	// Mod path and the store micro-cache's permission recheck).
	m.CPU.ASID = 1
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 8, ASID: 1, PFN: 3, Perms: hw.PermValid | hw.PermWrite})
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 9, ASID: 1, PFN: 4, Perms: hw.PermValid})
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 10, ASID: 1, PFN: 5, Perms: hw.PermValid | hw.PermWrite})
	m.CPU.Mode = hw.ModeUser
	m.CPU.SetReg(hw.RegT0, 8<<hw.PageShift+hw.PageSize/2)
	m.CPU.SetReg(hw.RegT1, uint32(seed))
	m.CPU.SetReg(hw.RegT2, uint32(seed>>32))
	m.Timer.Arm(97) // prime-ish period: interrupts land on varied PCs
	in := New(m, FixedCode(genProgram(seed)))
	in.Prof = prof.New("quick", nil)

	res := engineResult{stop: in.Run(2000)}
	var pbuf bytes.Buffer
	snap := in.Prof.Snapshot()
	if err := prof.Collect("quick", nil, []prof.Profile{snap}, 0).Write(&pbuf); err != nil {
		panic(err)
	}
	res.profile = pbuf.Bytes()
	res.steps = in.Steps
	res.cycles = m.Clock.Cycles()
	res.regs = m.CPU.Regs
	res.pc = m.CPU.PC
	for i, f := range []uint32{3, 4, 5} {
		res.pages[i] = append([]byte(nil), m.Phys.Page(f)...)
	}
	res.causes = h.causes
	res.badvas = h.badvas
	res.fired = m.Timer.Fired
	return res
}

// TestQuickEngineEquivalence is the property-test half of the invariance
// contract: for random programs, the fast engine and the reference engine
// finish with identical registers, memory image, simulated clock, and
// trap log.
func TestQuickEngineEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		fast := engineRun(seed, false)
		slow := engineRun(seed, true)
		if fast.stop != slow.stop || fast.steps != slow.steps ||
			fast.cycles != slow.cycles || fast.pc != slow.pc ||
			fast.regs != slow.regs || fast.fired != slow.fired {
			t.Logf("seed %d: fast {stop %v steps %d cycles %d pc %d} slow {stop %v steps %d cycles %d pc %d}",
				seed, fast.stop, fast.steps, fast.cycles, fast.pc,
				slow.stop, slow.steps, slow.cycles, slow.pc)
			return false
		}
		if len(fast.causes) != len(slow.causes) {
			t.Logf("seed %d: trap counts %d fast, %d slow", seed, len(fast.causes), len(slow.causes))
			return false
		}
		for i := range fast.causes {
			if fast.causes[i] != slow.causes[i] || fast.badvas[i] != slow.badvas[i] {
				t.Logf("seed %d: trap %d: %v@%#x fast, %v@%#x slow", seed, i,
					fast.causes[i], fast.badvas[i], slow.causes[i], slow.badvas[i])
				return false
			}
		}
		for p := range fast.pages {
			for i := range fast.pages[p] {
				if fast.pages[p][i] != slow.pages[p][i] {
					t.Logf("seed %d: memory diverged on page %d byte %d", seed, p, i)
					return false
				}
			}
		}
		if !bytes.Equal(fast.profile, slow.profile) {
			t.Logf("seed %d: profiles diverged:\nfast:\n%s\nslow:\n%s", seed, fast.profile, slow.profile)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
