package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/prof"
)

// Tests for the two-engine contract: runFast and runRef must be
// indistinguishable in simulated time and in every architectural effect.
// See DESIGN.md "Host speed vs simulated time".

// TestRequestStopFromInterruptHandler is the regression test for the
// collapsed stop check: a RequestStop issued by an interrupt handler must
// stop the engine before the next instruction executes, on both engines.
func TestRequestStopFromInterruptHandler(t *testing.T) {
	for _, slow := range []bool{false, true} {
		m := hw.NewMachine(hw.DEC5000)
		m.SetSlowPath(slow)
		m.CPU.Mode = hw.ModeUser
		code := asm.MustAssemble(`
		loop:
			addiu t0, t0, 1
			j loop
		`)
		in := New(m, FixedCode(code))
		var stepsAtStop uint64
		h := &trapLog{}
		h.fix = func(m *hw.Machine) {
			if m.CPU.Cause != hw.ExcInterrupt {
				t.Fatalf("slow=%v: unexpected trap %v", slow, m.CPU.Cause)
			}
			m.CPU.Pending &^= hw.IRQTimer
			stepsAtStop = in.Steps
			in.RequestStop()
			m.CPU.PC = m.CPU.EPC
			m.CPU.Mode = hw.ModeUser
		}
		m.SetTrapHandler(h)
		m.Timer.Arm(10)
		if r := in.Run(1000); r != StopRequested {
			t.Fatalf("slow=%v: Run = %v, want requested", slow, r)
		}
		if in.Steps != stepsAtStop {
			t.Errorf("slow=%v: %d instruction(s) ran after the handler requested stop",
				slow, in.Steps-stepsAtStop)
		}
		if m.Timer.Fired == 0 {
			t.Errorf("slow=%v: timer never fired", slow)
		}
	}
}

// genProgram builds a random but well-formed program from a seed: every
// opcode the interpreter implements that a user-mode program can reach,
// with branch targets confined to the program and memory operands around
// the mapped test pages. Faults are expected and fine — the harness
// skips them — the property under test is that both engines fault, trap,
// and resume identically.
func genProgram(seed uint64) isa.Code {
	r := seed
	next := func(n uint32) uint32 {
		r = r*6364136223846793005 + 1442695040888963407
		return uint32(r>>33) % n
	}
	ops := []isa.Op{
		isa.NOP, isa.ADD, isa.ADDI, isa.ADDU, isa.ADDIU, isa.SUB, isa.MUL,
		isa.DIV, isa.REM, isa.AND, isa.ANDI, isa.OR, isa.ORI, isa.XOR,
		isa.XORI, isa.NOR, isa.SLT, isa.SLTU, isa.SLTI, isa.LUI, isa.SLL,
		isa.SRL, isa.SRA,
		isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.SW, isa.SH, isa.SB,
		isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ,
		isa.J, isa.JAL,
		isa.SYSCALL, isa.BREAK, isa.COP1, isa.TLBWR, isa.RFE,
	}
	n := 24 + next(40)
	code := make(isa.Code, 0, n+1)
	reg := func() uint8 { return uint8(8 + next(16)) } // t0..s7, leave zero/ra/sp alone
	for i := uint32(0); i < n; i++ {
		inst := isa.Inst{Op: ops[next(uint32(len(ops)))], Rd: reg(), Rs: reg(), Rt: reg()}
		switch inst.Op {
		case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.SW, isa.SH, isa.SB:
			// Base register t0 is seeded inside the mapped region; small
			// offsets keep most references on the three test pages while
			// still producing misses and alignment faults.
			inst.Rs = hw.RegT0
			inst.Imm = int32(next(3*hw.PageSize)) - hw.PageSize/2
		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ, isa.J, isa.JAL:
			inst.Imm = int32(next(n + 1)) // branch anywhere in the program
		default:
			inst.Imm = int32(next(1 << 16))
		}
		code = append(code, inst)
	}
	return append(code, isa.Inst{Op: isa.HALT})
}

// engineRun executes a generated program on a fresh machine with the
// given engine and returns every architectural observable.
type engineResult struct {
	stop   StopReason
	steps  uint64
	cycles uint64
	regs   [hw.NumRegs]uint32
	pc     uint32
	pages  [3][]byte
	causes []hw.Exc
	badvas []uint32
	fired  uint64
	// profile is the attached profiler's snapshot rendered as PROF JSON:
	// both engines must drive the hooks identically, byte for byte.
	profile []byte
}

// engineCfg selects an engine variant for engineRun. The zero value is
// the default fast engine with the JIT tier at its normal threshold.
type engineCfg struct {
	name    string
	slow    bool   // EXO_SLOWPATH: reference engine
	nojit   bool   // EXO_NOJIT: fast interpreter only
	hotAt   uint32 // JITThreshold override (1 compiles on first entry)
	quantum uint64 // run in micro-quanta of this many steps (0 = one call)
	noProf  bool   // run without a profiler (exercises the deferred JIT runner)
}

// engineVariants is every engine configuration the equivalence property
// quantifies over. All architectural observables must match across the
// whole set; profiles must match across the profiled subset. The hostile
// variants force deopt at each guard class: quantum=7 trips the step-
// budget guard at nearly every block dispatch, hotAt=1 compiles every
// block so even cold paths run jitted, and the generated programs
// (TLBWR, SYSCALL, BREAK, faults, a short timer) cover the epoch, trap,
// and event-horizon guards.
var engineVariants = []engineCfg{
	{name: "ref", slow: true},
	{name: "fast-nojit", nojit: true},
	{name: "jit-prof", hotAt: 1},
	{name: "jit", hotAt: 1, noProf: true},
	{name: "jit-microbudget", hotAt: 1, quantum: 7, noProf: true},
	{name: "jit-default-threshold", noProf: true},
}

func engineRun(seed uint64, cfg engineCfg) engineResult {
	m := hw.NewMachine(hw.DEC5000)
	m.SetSlowPath(cfg.slow)
	m.SetNoJIT(cfg.nojit)
	h := &trapLog{}
	h.fix = func(m *hw.Machine) {
		if m.CPU.Cause == hw.ExcInterrupt {
			m.CPU.Pending = 0
			m.CPU.PC = m.CPU.EPC
		} else {
			m.CPU.PC = m.CPU.EPC + 1
		}
		m.CPU.Mode = hw.ModeUser
	}
	m.SetTrapHandler(h)
	// Three pages: two writable, one read-only (store faults exercise the
	// Mod path and the store micro-cache's permission recheck).
	m.CPU.ASID = 1
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 8, ASID: 1, PFN: 3, Perms: hw.PermValid | hw.PermWrite})
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 9, ASID: 1, PFN: 4, Perms: hw.PermValid})
	m.TLB.WriteRandom(hw.TLBEntry{VPN: 10, ASID: 1, PFN: 5, Perms: hw.PermValid | hw.PermWrite})
	m.CPU.Mode = hw.ModeUser
	m.CPU.SetReg(hw.RegT0, 8<<hw.PageShift+hw.PageSize/2)
	m.CPU.SetReg(hw.RegT1, uint32(seed))
	m.CPU.SetReg(hw.RegT2, uint32(seed>>32))
	m.Timer.Arm(97) // prime-ish period: interrupts land on varied PCs
	in := New(m, FixedCode(genProgram(seed)))
	in.JITThreshold = cfg.hotAt
	if !cfg.noProf {
		in.Prof = prof.New("quick", nil)
	}

	// Splitting the step budget into micro-quanta is behaviour-identical
	// on every engine — each Run entry re-derives exactly the per-
	// iteration checks — but forces the JIT's budget guard to deopt at
	// nearly every dispatch.
	const budget = 2000
	var res engineResult
	if cfg.quantum == 0 {
		res.stop = in.Run(budget)
	} else {
		for left := uint64(budget); ; {
			q := cfg.quantum
			if q > left {
				q = left
			}
			before := in.Steps
			res.stop = in.Run(q)
			left -= in.Steps - before
			if res.stop != StopSteps || left == 0 {
				break
			}
		}
	}
	if in.Prof != nil {
		var pbuf bytes.Buffer
		snap := in.Prof.Snapshot()
		if err := prof.Collect("quick", nil, []prof.Profile{snap}, 0).Write(&pbuf); err != nil {
			panic(err)
		}
		res.profile = pbuf.Bytes()
	}
	res.steps = in.Steps
	res.cycles = m.Clock.Cycles()
	res.regs = m.CPU.Regs
	res.pc = m.CPU.PC
	for i, f := range []uint32{3, 4, 5} {
		res.pages[i] = append([]byte(nil), m.Phys.Page(f)...)
	}
	res.causes = h.causes
	res.badvas = h.badvas
	res.fired = m.Timer.Fired
	return res
}

// checkEquivalence runs one seed under every engine variant and reports
// the first divergence from the reference run. Architectural observables
// must match everywhere; PROF bytes must match across the profiled
// variants.
func checkEquivalence(t *testing.T, seed uint64) bool {
	t.Helper()
	ref := engineRun(seed, engineVariants[0])
	ok := true
	for _, cfg := range engineVariants[1:] {
		got := engineRun(seed, cfg)
		if got.stop != ref.stop || got.steps != ref.steps ||
			got.cycles != ref.cycles || got.pc != ref.pc ||
			got.regs != ref.regs || got.fired != ref.fired {
			t.Logf("seed %d: %s {stop %v steps %d cycles %d pc %d} ref {stop %v steps %d cycles %d pc %d}",
				seed, cfg.name, got.stop, got.steps, got.cycles, got.pc,
				ref.stop, ref.steps, ref.cycles, ref.pc)
			ok = false
			continue
		}
		if len(got.causes) != len(ref.causes) {
			t.Logf("seed %d: %s: trap counts %d, ref %d", seed, cfg.name, len(got.causes), len(ref.causes))
			ok = false
			continue
		}
		for i := range got.causes {
			if got.causes[i] != ref.causes[i] || got.badvas[i] != ref.badvas[i] {
				t.Logf("seed %d: %s: trap %d: %v@%#x, ref %v@%#x", seed, cfg.name, i,
					got.causes[i], got.badvas[i], ref.causes[i], ref.badvas[i])
				ok = false
			}
		}
		for p := range got.pages {
			if !bytes.Equal(got.pages[p], ref.pages[p]) {
				t.Logf("seed %d: %s: memory diverged on page %d", seed, cfg.name, p)
				ok = false
			}
		}
		if got.profile != nil && !bytes.Equal(got.profile, ref.profile) {
			t.Logf("seed %d: %s: profiles diverged:\n%s:\n%s\nref:\n%s",
				seed, cfg.name, cfg.name, got.profile, ref.profile)
			ok = false
		}
	}
	return ok
}

// TestQuickEngineEquivalence is the property-test half of the invariance
// contract: for random programs, every engine variant — reference, fast
// interpreter, and the JIT tier under each forced-deopt regime — finishes
// with identical registers, memory image, simulated clock, trap log, and
// (where profiled) PROF bytes.
func TestQuickEngineEquivalence(t *testing.T) {
	f := func(seed uint64) bool { return checkEquivalence(t, seed) }
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// FuzzEngineEquivalence is the same property under the coverage-guided
// fuzzer: `go test -fuzz FuzzEngineEquivalence ./internal/vm` explores
// program seeds the LCG sweep above never reaches. The seed corpus pins a
// few regimes permanently (dense loops, trap storms, the zero seed).
func FuzzEngineEquivalence(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 42, 97, 1 << 33, ^uint64(0)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		if !checkEquivalence(t, seed) {
			t.Errorf("seed %d: engines diverged", seed)
		}
	})
}
