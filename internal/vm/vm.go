// Package vm executes simulated-ISA code against a machine. It is the
// user-level execution engine: applications, library-OS handlers, and
// downloaded ASHs all run here, taking real (simulated) TLB misses,
// protection faults, arithmetic traps, and interrupts, which the machine
// vectors to whatever kernel is installed.
package vm

import (
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/prof"
)

// CodeSource supplies instructions for the current program counter. The
// kernel implements it by mapping the PC into the current environment's
// code segment, so a context switch transparently changes what Fetch
// returns.
type CodeSource interface {
	Fetch(pc uint32) (isa.Inst, hw.Exc)
}

// FixedCode is a CodeSource for a single standalone segment.
type FixedCode isa.Code

// Fetch returns the instruction at pc, or an address error past the end.
func (c FixedCode) Fetch(pc uint32) (isa.Inst, hw.Exc) {
	if int(pc) >= len(c) {
		return isa.Inst{}, hw.ExcAddrErrL
	}
	return c[pc], hw.ExcNone
}

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	StopHalt      StopReason = iota // HALT executed
	StopSteps                       // step budget exhausted
	StopRequested                   // kernel requested stop (env exit, shutdown)
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopSteps:
		return "steps"
	case StopRequested:
		return "requested"
	}
	return "stop?"
}

// ASHContext is the restricted execution context for a downloaded handler
// running inside the kernel. Memory instructions are sandboxed by address
// masking into a pinned physical region (software fault isolation, [52]);
// the PKT*/XMIT instructions give the handler direct access to the incoming
// message and the transmit path.
type ASHContext struct {
	Packet      []byte
	SandboxBase uint32 // physical base of the handler's scratch region
	SandboxMask uint32 // region size - 1 (size is a power of two)
	Phys        *hw.PhysMem
	Xmit        func([]byte)
	// Sent counts frames transmitted by the handler.
	Sent int
}

// Interp is the instruction interpreter. One Interp drives one machine;
// the kernel multiplexes environments by swapping CPU state underneath it.
type Interp struct {
	M   *hw.Machine
	Src CodeSource

	// ASH, when non-nil, enables the message primitives and redirects
	// memory instructions through the sandbox. Set only by the kernel
	// while executing a verified handler.
	ASH *ASHContext

	stop bool
	// Steps counts instructions executed over the Interp's lifetime.
	Steps uint64

	// Prof, when non-nil, receives a BeginInstr/EndInstr pair around
	// every instruction execution attempt (including attempts that fault
	// at fetch). Off by default; the hot loop pays one nil test. The
	// hooks never tick the clock, so attaching a profiler cannot change
	// simulated behaviour.
	Prof *prof.Profiler

	// Direct-fetch fast path: when a code segment is published via
	// SetCode, the run loop indexes it straight off, skipping the
	// interface call through Src. The kernel republishes at every
	// context switch, so the slice always mirrors what Src.Fetch would
	// return.
	code   isa.Code
	direct bool

	// JITThreshold overrides the hot-entry count at which the fast
	// engine compiles a superblock (see jit.go); 0 selects the default.
	// Tests and tools lower it to force compilation early.
	JITThreshold uint32

	// Trace-JIT tier state (jit.go): the current segment's counters and
	// compiled blocks, plus the cache keyed on segment identity so
	// compiled state survives context switches.
	jitSeg   *segJIT
	jitCache map[*isa.Inst]*segJIT
}

// New creates an interpreter for machine m reading code from src. A
// FixedCode source is automatically published to the direct-fetch path.
func New(m *hw.Machine, src CodeSource) *Interp {
	in := &Interp{M: m, Src: src}
	if fc, ok := src.(FixedCode); ok {
		in.SetCode(isa.Code(fc))
	}
	return in
}

// SetCode publishes the current code segment to the direct-fetch path.
// The caller owns the invariant that fetching code[pc] is equivalent to
// Src.Fetch(pc) until the next SetCode; the kernel maintains it by
// republishing whenever the current environment changes. A nil segment is
// valid and fetches as an empty one (every PC takes an address error),
// matching a code-less environment.
func (in *Interp) SetCode(code isa.Code) {
	in.code = code
	in.direct = true
	in.jitSetSeg(code)
}

// RequestStop makes Run return StopRequested after the current instruction.
func (in *Interp) RequestStop() { in.stop = true }

// Run executes at most maxSteps instructions (0 means no budget) and
// reports why it stopped. Exceptions do not stop execution: they trap to
// the kernel, which redirects the CPU, and execution continues — exactly
// the hardware's behaviour.
//
// Two engines implement the loop: runFast (the default) and runRef (the
// reference, forced by EXO_SLOWPATH=1 / hw.Machine.SetSlowPath). They
// are cycle-identical by contract — runFast may only skip work that is
// provably a no-op this iteration — and the invariance tests hold them
// to it.
func (in *Interp) Run(maxSteps uint64) StopReason {
	if in.M.SlowPath() {
		return in.runRef(maxSteps)
	}
	return in.runFast(maxSteps)
}

// runRef is the reference engine: poll the timer and the interrupt lines
// unconditionally, fetch through the CodeSource interface.
func (in *Interp) runRef(maxSteps uint64) StopReason {
	cpu := &in.M.CPU
	p := in.Prof
	for n := uint64(0); maxSteps == 0 || n < maxSteps; n++ {
		in.M.Timer.Check()
		in.M.PollInterrupts()
		// One stop check per iteration, after interrupt delivery: it
		// sees both a stop requested before entry and one requested by
		// an interrupt handler just now, before any instruction runs.
		if in.stop {
			in.stop = false
			return StopRequested
		}
		inst, exc := in.Src.Fetch(cpu.PC)
		if exc != hw.ExcNone {
			// A fetch fault is an execution attempt at this PC: the
			// profiler window covers the exception-entry cost and the
			// kernel's service, attributed to the faulting address.
			if p != nil {
				p.BeginInstr(cpu.PC, cpu.ASID, in.M.Clock.Cycles())
			}
			in.M.RaiseException(exc, cpu.PC, cpu.PC)
			if p != nil {
				p.EndInstr(in.M.Clock.Cycles())
			}
			continue
		}
		if p != nil {
			p.BeginInstr(cpu.PC, cpu.ASID, in.M.Clock.Cycles())
		}
		in.M.Clock.Tick(hw.CostInstr)
		in.Steps++
		halted := in.Step(inst)
		if p != nil {
			p.EndInstr(in.M.Clock.Cycles())
		}
		if halted {
			return StopHalt
		}
	}
	return StopSteps
}

// runFast is the host-speed engine. Per iteration it skips Timer.Check
// unless the deadline has passed (TimerDue is Check's own firing
// condition) and PollInterrupts unless a line is pending and enabled
// (PollInterrupts' own guard) — the event-horizon conditions are
// re-derived every iteration because any instruction can advance the
// clock or re-arm the timer. Fetch indexes the published code slice
// directly when one is installed; the slice is re-read each iteration
// since a trap handler may have switched segments.
//
// On top of the interpreter sits the trace-JIT tier (jit.go): block
// entries — PCs reached by a non-sequential transfer — are counted, hot
// ones are compiled to superblocks, and the dispatcher runs a compiled
// block when its entry guard admits at least one pass. A dispatch that
// commits nothing (guard failure) falls through to interpret the entry
// instruction, so the engine always makes progress.
func (in *Interp) runFast(maxSteps uint64) StopReason {
	m := in.M
	cpu := &m.CPU
	p := in.Prof
	useJIT := in.ASH == nil && !m.NoJIT()
	lastPC := cpu.PC // any value ≠ pc−1: the first PC counts as an entry
	for n := uint64(0); maxSteps == 0 || n < maxSteps; n++ {
		if m.TimerDue() {
			m.Timer.Check()
		}
		if cpu.IntrOn && cpu.Pending != 0 {
			m.PollInterrupts()
		}
		if in.stop {
			in.stop = false
			return StopRequested
		}
		pc := cpu.PC
		if useJIT {
			if s := in.jitSeg; s != nil && int(pc) < len(s.blocks) {
				if b := s.blocks[pc]; b != nil {
					if b.n > 0 {
						remaining := ^uint64(0)
						if maxSteps != 0 {
							remaining = maxSteps - n
						}
						if k := in.jitRunBlock(b, remaining); k > 0 {
							lastPC = pc
							n += k - 1 // the loop increment counts the last one
							continue
						}
					}
				} else if pc != lastPC+1 {
					s.counts[pc]++
					if s.counts[pc] >= in.jitHotAt() {
						s.blocks[pc] = in.jitCompile(s.code, pc)
					}
				}
			}
			lastPC = pc
		}
		var inst isa.Inst
		if in.direct {
			if int(pc) >= len(in.code) {
				if p != nil {
					p.BeginInstr(pc, cpu.ASID, m.Clock.Cycles())
				}
				m.RaiseException(hw.ExcAddrErrL, pc, pc)
				if p != nil {
					p.EndInstr(m.Clock.Cycles())
				}
				continue
			}
			inst = in.code[pc]
		} else {
			var exc hw.Exc
			inst, exc = in.Src.Fetch(pc)
			if exc != hw.ExcNone {
				if p != nil {
					p.BeginInstr(pc, cpu.ASID, m.Clock.Cycles())
				}
				m.RaiseException(exc, pc, pc)
				if p != nil {
					p.EndInstr(m.Clock.Cycles())
				}
				continue
			}
		}
		if p != nil {
			p.BeginInstr(pc, cpu.ASID, m.Clock.Cycles())
		}
		m.Clock.Tick(hw.CostInstr)
		in.Steps++
		halted := in.Step(inst)
		if p != nil {
			p.EndInstr(m.Clock.Cycles())
		}
		if halted {
			return StopHalt
		}
	}
	return StopSteps
}

// Step executes one instruction, returning true on HALT. The PC has NOT
// been advanced; Step advances it except when the instruction faults
// (restart semantics) or branches.
func (in *Interp) Step(inst isa.Inst) (halted bool) {
	cpu := &in.M.CPU
	pc := cpu.PC
	next := pc + 1
	switch inst.Op {
	case isa.NOP:
	case isa.ADD, isa.ADDI:
		var b int32
		if inst.Op == isa.ADD {
			b = int32(cpu.Reg(inst.Rt))
		} else {
			b = inst.Imm
		}
		a := int32(cpu.Reg(inst.Rs))
		s := a + b
		if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
			in.M.RaiseException(hw.ExcOverflow, pc, 0)
			return false
		}
		cpu.SetReg(inst.Rd, uint32(s))
	case isa.ADDU:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)+cpu.Reg(inst.Rt))
	case isa.ADDIU:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)+uint32(inst.Imm))
	case isa.SUB:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)-cpu.Reg(inst.Rt))
	case isa.MUL:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)*cpu.Reg(inst.Rt))
	case isa.DIV, isa.REM:
		d := int32(cpu.Reg(inst.Rt))
		if d == 0 {
			in.M.RaiseException(hw.ExcBreak, pc, 0)
			return false
		}
		a := int32(cpu.Reg(inst.Rs))
		if a == -1<<31 && d == -1 {
			// MinInt32 / -1 overflows; MIPS leaves the result
			// implementation-defined — define it as the wrapped quotient
			// (MinInt32) and remainder 0 rather than crashing the host.
			if inst.Op == isa.DIV {
				cpu.SetReg(inst.Rd, 1<<31)
			} else {
				cpu.SetReg(inst.Rd, 0)
			}
			break
		}
		if inst.Op == isa.DIV {
			cpu.SetReg(inst.Rd, uint32(a/d))
		} else {
			cpu.SetReg(inst.Rd, uint32(a%d))
		}
	case isa.AND:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)&cpu.Reg(inst.Rt))
	case isa.ANDI:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)&uint32(inst.Imm))
	case isa.OR:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)|cpu.Reg(inst.Rt))
	case isa.ORI:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)|uint32(inst.Imm))
	case isa.XOR:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)^cpu.Reg(inst.Rt))
	case isa.XORI:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)^uint32(inst.Imm))
	case isa.NOR:
		cpu.SetReg(inst.Rd, ^(cpu.Reg(inst.Rs) | cpu.Reg(inst.Rt)))
	case isa.SLT:
		cpu.SetReg(inst.Rd, b2u(int32(cpu.Reg(inst.Rs)) < int32(cpu.Reg(inst.Rt))))
	case isa.SLTU:
		cpu.SetReg(inst.Rd, b2u(cpu.Reg(inst.Rs) < cpu.Reg(inst.Rt)))
	case isa.SLTI:
		cpu.SetReg(inst.Rd, b2u(int32(cpu.Reg(inst.Rs)) < inst.Imm))
	case isa.LUI:
		cpu.SetReg(inst.Rd, uint32(inst.Imm)<<16)
	case isa.SLL:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)<<uint(inst.Imm&31))
	case isa.SRL:
		cpu.SetReg(inst.Rd, cpu.Reg(inst.Rs)>>uint(inst.Imm&31))
	case isa.SRA:
		cpu.SetReg(inst.Rd, uint32(int32(cpu.Reg(inst.Rs))>>uint(inst.Imm&31)))

	case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU:
		if !in.load(inst, pc) {
			return false
		}
	case isa.SW, isa.SH, isa.SB:
		if !in.store(inst, pc) {
			return false
		}

	case isa.BEQ:
		if cpu.Reg(inst.Rs) == cpu.Reg(inst.Rt) {
			next = uint32(inst.Imm)
		}
	case isa.BNE:
		if cpu.Reg(inst.Rs) != cpu.Reg(inst.Rt) {
			next = uint32(inst.Imm)
		}
	case isa.BLEZ:
		if int32(cpu.Reg(inst.Rs)) <= 0 {
			next = uint32(inst.Imm)
		}
	case isa.BGTZ:
		if int32(cpu.Reg(inst.Rs)) > 0 {
			next = uint32(inst.Imm)
		}
	case isa.BLTZ:
		if int32(cpu.Reg(inst.Rs)) < 0 {
			next = uint32(inst.Imm)
		}
	case isa.BGEZ:
		if int32(cpu.Reg(inst.Rs)) >= 0 {
			next = uint32(inst.Imm)
		}
	case isa.J:
		next = uint32(inst.Imm)
	case isa.JAL:
		cpu.SetReg(hw.RegRA, pc+1)
		next = uint32(inst.Imm)
	case isa.JR:
		next = cpu.Reg(inst.Rs)
	case isa.JALR:
		cpu.SetReg(inst.Rd, pc+1)
		next = cpu.Reg(inst.Rs)

	case isa.SYSCALL:
		in.M.RaiseException(hw.ExcSyscall, pc, 0)
		return false
	case isa.BREAK:
		in.M.RaiseException(hw.ExcBreak, pc, 0)
		return false
	case isa.COP1:
		if !cpu.FPUOn {
			in.M.RaiseException(hw.ExcCoproc, pc, 0)
			return false
		}
	case isa.HALT:
		return true

	case isa.TLBWR:
		if cpu.Mode != hw.ModeKernel {
			in.M.RaiseException(hw.ExcPriv, pc, 0)
			return false
		}
		a0, a1 := cpu.Reg(hw.RegA0), cpu.Reg(hw.RegA1)
		in.M.TLB.WriteRandom(hw.TLBEntry{
			VPN:   a0 & 0xFFFFF,
			ASID:  uint8(a0 >> 24),
			PFN:   a1 & 0xFFFFF,
			Perms: uint8(a1>>28) | hw.PermValid,
		})
	case isa.RFE:
		if cpu.Mode != hw.ModeKernel {
			in.M.RaiseException(hw.ExcPriv, pc, 0)
			return false
		}
		in.M.Clock.Tick(hw.CostExcReturn)
		cpu.Mode = hw.ModeUser
		next = cpu.EPC

	case isa.PKTLW, isa.PKTLB, isa.PKTLEN, isa.XMIT:
		if in.ASH == nil {
			in.M.RaiseException(hw.ExcPriv, pc, 0)
			return false
		}
		in.ashOp(inst)

	default:
		in.M.RaiseException(hw.ExcBreak, pc, 0)
		return false
	}
	cpu.PC = next
	return false
}

func (in *Interp) load(inst isa.Inst, pc uint32) bool {
	cpu := &in.M.CPU
	va := cpu.Reg(inst.Rs) + uint32(inst.Imm)
	var width uint32
	switch inst.Op {
	case isa.LW:
		width = 4
	case isa.LH, isa.LHU:
		width = 2
	default:
		width = 1
	}
	if va%width != 0 {
		in.M.RaiseException(hw.ExcAddrErrL, pc, va)
		return false
	}
	pa, ok := in.translate(va, false, pc)
	if !ok {
		return false
	}
	var v uint32
	switch inst.Op {
	case isa.LW:
		v = in.readWord(pa)
	case isa.LH:
		v = uint32(int32(int16(in.readHalf(pa))))
	case isa.LHU:
		v = uint32(in.readHalf(pa))
	case isa.LB:
		v = uint32(int32(int8(in.readByte(pa))))
	case isa.LBU:
		v = uint32(in.readByte(pa))
	}
	cpu.SetReg(inst.Rd, v)
	return true
}

func (in *Interp) store(inst isa.Inst, pc uint32) bool {
	cpu := &in.M.CPU
	va := cpu.Reg(inst.Rs) + uint32(inst.Imm)
	var width uint32
	switch inst.Op {
	case isa.SW:
		width = 4
	case isa.SH:
		width = 2
	default:
		width = 1
	}
	if va%width != 0 {
		in.M.RaiseException(hw.ExcAddrErrS, pc, va)
		return false
	}
	pa, ok := in.translate(va, true, pc)
	if !ok {
		return false
	}
	v := cpu.Reg(inst.Rt)
	switch inst.Op {
	case isa.SW:
		in.M.Phys.WriteWord(pa, v)
	case isa.SH:
		in.M.Phys.WriteHalf(pa, uint16(v))
	case isa.SB:
		in.M.Phys.StoreByte(pa, byte(v))
	}
	return true
}

// translate maps a data address. In the ASH context addresses bypass the
// TLB and are masked into the sandbox region; otherwise the machine MMU
// runs and a failure traps to the kernel (returning ok=false so the
// instruction restarts after the kernel services the fault).
func (in *Interp) translate(va uint32, write bool, pc uint32) (uint32, bool) {
	if in.ASH != nil {
		return in.ASH.SandboxBase + (va & in.ASH.SandboxMask), true
	}
	pa, exc := in.M.Translate(va, write)
	if exc != hw.ExcNone {
		in.M.RaiseException(exc, pc, va)
		return 0, false
	}
	return pa, true
}

func (in *Interp) readWord(pa uint32) uint32 { return in.M.Phys.ReadWord(pa) }
func (in *Interp) readHalf(pa uint32) uint16 { return in.M.Phys.ReadHalf(pa) }
func (in *Interp) readByte(pa uint32) byte   { return in.M.Phys.LoadByte(pa) }

func (in *Interp) ashOp(inst isa.Inst) {
	cpu := &in.M.CPU
	a := in.ASH
	switch inst.Op {
	case isa.PKTLW:
		off := int(cpu.Reg(inst.Rs)) + int(inst.Imm)
		var v uint32
		for i := 0; i < 4; i++ {
			if off+i >= 0 && off+i < len(a.Packet) {
				v |= uint32(a.Packet[off+i]) << (8 * i)
			}
		}
		in.M.Clock.Tick(hw.CostMemWord)
		cpu.SetReg(inst.Rd, v)
	case isa.PKTLB:
		off := int(cpu.Reg(inst.Rs)) + int(inst.Imm)
		var v uint32
		if off >= 0 && off < len(a.Packet) {
			v = uint32(a.Packet[off])
		}
		in.M.Clock.Tick(hw.CostMemWord)
		cpu.SetReg(inst.Rd, v)
	case isa.PKTLEN:
		cpu.SetReg(inst.Rd, uint32(len(a.Packet)))
	case isa.XMIT:
		base := cpu.Reg(inst.Rs) & a.SandboxMask
		n := cpu.Reg(inst.Rt) & a.SandboxMask
		buf := make([]byte, n)
		a.Phys.CopyOut(buf, a.SandboxBase+base)
		a.Sent++
		if a.Xmit != nil {
			a.Xmit(buf)
		}
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
