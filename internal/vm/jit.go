// Trace-JIT tier for the fast engine (see DESIGN.md §4i).
//
// The fast interpreter still pays per instruction for work whose outcome
// is almost always known: the timer poll, the interrupt poll, the stop
// check, the bounds-checked fetch, and the operand decode. This tier
// counts basic-block entries (non-sequential PC transfers), and once an
// entry runs hot it compiles the straight-line instruction run from that
// PC — following unconditional jumps, running past not-taken conditional
// branches, ending at indirect or privileged control flow — into a
// superblock: a pre-decoded micro-op trace with the operands, immediates,
// successor PCs, and branch dispositions baked in at compile time,
// executed by a fused runner loop that keeps the CPU, register file,
// clock, MMU tags, and memory pinned in host registers for the whole
// pass. (A closure-per-instruction variant was tried first; reloading
// every captured operand from the closure environment on each indirect
// call cost more than the decode it saved.)
//
// The per-iteration checks are hoisted into a single fused guard at the
// pass boundary, which makes the skipped checks provably no-ops for a
// whole pass:
//
//	remaining step budget ≥ block length,  and
//	EventHorizon() − now  >  worst-case cycles one pass can consume.
//
// Between instructions of a guarded pass nothing can fire the timer or
// deliver an interrupt — only trap handlers could, and any trap exits the
// block immediately (see below) — so skipping those polls is invisible in
// simulated time, exactly the runFast contract. The guard extends to k
// back-to-back passes of a looping block for the same reason, so a hot
// inner loop re-derives the horizon once per k iterations, not once per
// iteration.
//
// Deoptimization is clean because simulated state is exact at every
// point it can be observed. When no profiler is attached the runner
// defers the per-instruction base-cost ticks, step counts, and PC stores
// to the pass boundary — legal because nothing inside a guarded pass
// reads them (the memory model charges by reference order, never by
// clock value) — and flushes them before any trap, so a handler sees
// precisely the clock, step count, and faulting PC the interpreter would
// have produced. With a profiler attached the runner falls back to the
// interpreter's full per-instruction commit protocol, keeping BeginInstr/
// EndInstr windows cycle-exact per PC. Either way a trap hands the kernel
// the same machine state as the interpreter (the kernel may switch
// segments, rewrite the PC, re-arm the timer, request a stop) and the
// block exits; the engine resumes interpreting at whatever PC the kernel
// chose. ktrace stamps, PROF attribution, and the BENCH tables are
// byte-identical across ref / fast / fast+JIT — the invariance gates and
// the engine-equivalence quickcheck hold the tier to it.
//
// Invalidation: compiled blocks are a pure function of the instruction
// slice, cached per code segment and dropped when SetCode publishes a
// different segment. Translations are NOT compiled in — each memory
// micro-op keeps a one-entry cache of its last TLB.Lookup result keyed by
// the TLB epoch, with the permission checks re-run on every reference
// (the inlined equivalent of hw.Machine.EntryTranslate), so a TLB
// mutation anywhere invalidates every site on its next access and a mode
// or ASID change needs no invalidation at all.
//
// Escape hatch: EXO_NOJIT=1 (or hw.Machine.SetNoJIT) forces the plain
// fast interpreter; EXO_SLOWPATH=1 forces the reference engine and
// subsumes it.
package vm

import (
	"exokernel/internal/hw"
	"exokernel/internal/isa"
)

const (
	// jitDefaultThreshold is the block-entry count at which a superblock
	// is compiled when Interp.JITThreshold is unset. Entries are counted
	// only on non-sequential transfers, so a loop head reaches it after
	// that many iterations. Compilation is cheap (operand pre-decode, no
	// codegen), so the threshold errs low; `exoprof -candidates` ranks
	// what it would select from a committed profile.
	jitDefaultThreshold = 16

	// jitMaxLen bounds superblock length in instructions: it caps both
	// compile work and the event-horizon guard's worst-case cost (a huge
	// block would deopt forever under a short timer quantum).
	jitMaxLen = 64

	// jitMinLen is the shortest run worth the per-pass guards; shorter
	// entries are marked dead and stay interpreted.
	jitMinLen = 2

	// jitMaxSegs caps the per-segment cache; beyond it the cache is
	// dropped wholesale (bounded memory under segment churn).
	jitMaxSegs = 64
)

// Per-instruction worst-case cycle costs for the event-horizon guard. A
// memory reference pays the base cost, the word charge, and possibly the
// cache-miss penalty; exception costs are excluded because a trap exits
// the block and re-enters the fully-checked loop.
const (
	jitALUCost = hw.CostInstr
	jitMemCost = hw.CostInstr + hw.CostMemWord + hw.CostCacheMiss
)

// jitOutcome reports how a micro-op left the block.
type jitOutcome uint8

const (
	jitNext jitOutcome = iota // committed; fall through to the next micro-op
	jitExit                   // committed; PC is outside the trace (taken branch, indirect jump, or trap)
	jitLoop                   // committed; took the back edge to the block entry
)

// jitKind enumerates micro-op kinds: one kind per specialized operation,
// not per ISA opcode. The compiler resolves LUI to a load-immediate,
// pre-masks shift amounts, splits trapping adds by operand form, and
// bakes each jump's disposition.
type jitKind uint8

const (
	jkNOP  jitKind = iota
	jkLI           // rd ← imm (LUI with the shift folded at compile time)
	jkADDU         // rd ← rs + rt
	jkADDI         // rd ← rs + imm (ADDIU)
	jkSUB
	jkMUL
	jkAND
	jkANDI
	jkOR
	jkORI
	jkXOR
	jkXORI
	jkNOR
	jkSLT
	jkSLTU
	jkSLTI
	jkSLL // shift amount pre-masked into imm
	jkSRL
	jkSRA
	jkADDV  // ADD: trapping signed add, rt operand
	jkADDIV // ADDI: trapping signed add, imm operand
	jkDIV
	jkREM
	jkLW
	jkLH
	jkLHU
	jkLB
	jkLBU
	jkSW
	jkSH
	jkSB
	jkBEQ
	jkBNE
	jkBLEZ
	jkBGTZ
	jkBLTZ
	jkBGEZ
	jkJ    // unconditional: next holds the target, out the disposition
	jkJAL  // as jkJ, plus link (imm holds pc+1)
	jkJR   // indirect: always exits
	jkJALR // indirect with link (imm holds pc+1)
)

// jitOp is one pre-decoded micro-op of a superblock trace. Register
// numbers are stored raw and re-masked at the use site (reg&31) so the
// bounds check compiles away; the hardwired-zero rule is an explicit
// rd != 0 test. next is the successor PC this op commits on the trace
// path; targ/out describe a branch's taken edge.
type jitOp struct {
	kind jitKind
	rd   uint8
	rs   uint8
	rt   uint8
	out  jitOutcome // taken-edge outcome for branches; disposition for jkJ/jkJAL
	imm  uint32
	pc   uint32
	next uint32
	targ uint32
	site *jitSite // translation cache, memory ops only
}

// jitBlock is one compiled superblock: the micro-op trace plus the pass
// guard's parameters.
type jitBlock struct {
	entry   uint32
	n       uint64 // instructions in one full pass (0 marks a dead entry)
	maxCost uint64 // worst-case cycles one pass can consume
	endPC   uint32 // PC after falling off the end of a full pass
	ops     []jitOp
}

// segJIT is the tier's per-segment state: entry counters and compiled
// blocks, both indexed by PC. It survives context switches — the kernel
// republishes the same slice at every switch and SetCode keys the cache
// on segment identity — and dies with the segment.
type segJIT struct {
	code   isa.Code
	counts []uint32
	blocks []*jitBlock
}

// jitSite is a compiled memory micro-op's one-entry translation cache:
// the last TLB.Lookup result, valid only while the TLB epoch it was
// filled under still matches. Permission checks are never cached — see
// the memory micro-ops in the runners, which re-run the EntryTranslate
// checks on every reference.
type jitSite struct {
	valid bool
	asid  uint8
	vpn   uint32
	epoch uint64
	entry hw.TLBEntry
}

// refill is the site cache's out-of-line miss path: look the page up in
// the hardware TLB (charges nothing, same as hw.Machine.Translate) and
// re-tag the site under the current epoch. The hit check and the
// per-reference permission checks stay inlined in the runners, which
// reproduce hw.Machine.EntryTranslate with the ASID, epoch, and mode
// hoisted out of the loop.
func (s *jitSite) refill(tlb *hw.TLB, vpn uint32, asid uint8, epoch uint64) bool {
	e, ok := tlb.Lookup(vpn, asid)
	if !ok {
		return false
	}
	s.entry, s.vpn, s.asid, s.epoch, s.valid = e, vpn, asid, epoch, true
	return true
}

// jitHotAt returns the effective compile threshold.
func (in *Interp) jitHotAt() uint32 {
	if in.JITThreshold != 0 {
		return in.JITThreshold
	}
	return jitDefaultThreshold
}

// jitSetSeg points the tier at the segment being published, reusing
// compiled state when the segment is one we have seen (identity = first
// instruction's address + length; segments are immutable once
// assembled). Called from SetCode, i.e. at every context switch.
func (in *Interp) jitSetSeg(code isa.Code) {
	if len(code) == 0 {
		in.jitSeg = nil
		return
	}
	key := &code[0]
	if s := in.jitSeg; s != nil && &s.code[0] == key && len(s.code) == len(code) {
		return // republication of the current segment
	}
	s, ok := in.jitCache[key]
	if !ok || len(s.code) != len(code) {
		s = &segJIT{
			code:   code,
			counts: make([]uint32, len(code)),
			blocks: make([]*jitBlock, len(code)),
		}
		if in.jitCache == nil {
			in.jitCache = make(map[*isa.Inst]*segJIT)
		} else if len(in.jitCache) >= jitMaxSegs {
			clear(in.jitCache)
		}
		in.jitCache[key] = s
	}
	in.jitSeg = s
}

// jitFlush commits the deferred per-instruction state of a partial pass
// before a trap: n instructions' base-cost ticks and step counts, and the
// faulting instruction's PC (restart semantics — the interpreter has not
// advanced the PC when an instruction faults). Called on trap paths only;
// the hot loop stays free of per-instruction clock and counter traffic.
func (in *Interp) jitFlush(n uint64, pc uint32) {
	in.M.Clock.Tick(n * hw.CostInstr)
	in.Steps += n
	in.M.CPU.PC = pc
}

// jitRunBlock executes guarded passes of b until a guard fails, the trace
// exits, or the budget runs out, returning how many instructions were
// committed. remaining is the caller's step budget (^0 for unlimited); a
// return of 0 means no guard admitted even one pass and the caller must
// interpret the entry instruction itself (progress guarantee: the engine
// never spins on a block it cannot enter).
//
// This is the deferred-commit runner, used when no profiler is attached:
// base-cost ticks, the step count, and the PC are committed at pass
// boundaries and flushed eagerly before any trap (jitFlush), so every
// state a trap handler can observe is exactly what the interpreter would
// have produced. Nothing else inside a guarded pass reads them: the
// memory model charges by reference order, never by clock value, and the
// skipped polls are covered by the pass guard. With a profiler attached
// jitRunBlockProf runs the full per-instruction protocol instead.
func (in *Interp) jitRunBlock(b *jitBlock, remaining uint64) uint64 {
	if in.Prof != nil {
		return in.jitRunBlockProf(b, remaining)
	}
	m := in.M
	cpu := &m.CPU
	regs := &cpu.Regs
	clock := m.Clock
	phys := m.Phys
	tlb := m.TLB
	start := in.Steps
	ops := b.ops
	// ASID, TLB epoch, and CPU mode are loop invariants: only a trap
	// handler (or RFE/TLBWR, which the compiler never traces) can change
	// them, and any trap exits the runner. Hoisting them lets the memory
	// micro-ops run the MMU checks against host registers.
	asid := cpu.ASID
	epoch := tlb.Epoch()
	kernelMode := cpu.Mode == hw.ModeKernel
	// pending counts committed instructions whose base-cost tick, step
	// count, and PC advance have not been materialized yet. It drains
	// here before the guard re-derivation (which reads the clock) and at
	// every trap or exit; between those points nothing reads the
	// deferred state.
	var pending uint64
	for {
		if pending != 0 {
			clock.Tick(pending * hw.CostInstr)
			in.Steps += pending
			pending = 0
		}
		done := in.Steps - start
		if remaining-done < b.n {
			return done
		}
		// Fused guard: no pass may cross the event horizon. h ≤ now
		// covers a deliverable interrupt (h == now) and an already-due
		// timer (h < now); the margin covers every skipped per-
		// instruction poll inside the pass.
		now := clock.Cycles()
		h := m.EventHorizon()
		if h <= now || h-now <= b.maxCost {
			return done
		}
		// The guard extends to k back-to-back passes: the horizon can
		// only shrink inside a trap handler, and a trap exits the block,
		// so while the trace keeps looping the horizon derived here
		// stands. Admit as many passes as the horizon margin and the
		// step budget cover and skip the re-derivation between them.
		k := (h - now - 1) / b.maxCost
		if kb := (remaining - done) / b.n; kb < k {
			k = kb
		}
		for ; k > 0; k-- {
			loop := false
		pass:
			for i := range ops {
				op := &ops[i]
				switch op.kind {
				case jkNOP:
				case jkLI:
					if op.rd != 0 {
						regs[op.rd&31] = op.imm
					}
				case jkADDU:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] + regs[op.rt&31]
					}
				case jkADDI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] + op.imm
					}
				case jkSUB:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] - regs[op.rt&31]
					}
				case jkMUL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] * regs[op.rt&31]
					}
				case jkAND:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] & regs[op.rt&31]
					}
				case jkANDI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] & op.imm
					}
				case jkOR:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] | regs[op.rt&31]
					}
				case jkORI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] | op.imm
					}
				case jkXOR:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] ^ regs[op.rt&31]
					}
				case jkXORI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] ^ op.imm
					}
				case jkNOR:
					if op.rd != 0 {
						regs[op.rd&31] = ^(regs[op.rs&31] | regs[op.rt&31])
					}
				case jkSLT:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(int32(regs[op.rs&31]) < int32(regs[op.rt&31]))
					}
				case jkSLTU:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(regs[op.rs&31] < regs[op.rt&31])
					}
				case jkSLTI:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(int32(regs[op.rs&31]) < int32(op.imm))
					}
				case jkSLL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] << (op.imm & 31)
					}
				case jkSRL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] >> (op.imm & 31)
					}
				case jkSRA:
					if op.rd != 0 {
						regs[op.rd&31] = uint32(int32(regs[op.rs&31]) >> (op.imm & 31))
					}

				case jkADDV, jkADDIV:
					a := int32(regs[op.rs&31])
					bv := int32(op.imm)
					if op.kind == jkADDV {
						bv = int32(regs[op.rt&31])
					}
					s := a + bv
					if (a >= 0 && bv >= 0 && s < 0) || (a < 0 && bv < 0 && s >= 0) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcOverflow, op.pc, 0)
						return in.Steps - start
					}
					if op.rd != 0 {
						regs[op.rd&31] = uint32(s)
					}

				case jkDIV, jkREM:
					d := int32(regs[op.rt&31])
					if d == 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcBreak, op.pc, 0)
						return in.Steps - start
					}
					a := int32(regs[op.rs&31])
					var v uint32
					switch {
					case a == -1<<31 && d == -1:
						// Same wrapped definition as the interpreter.
						if op.kind == jkDIV {
							v = 1 << 31
						}
					case op.kind == jkDIV:
						v = uint32(a / d)
					default:
						v = uint32(a % d)
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}

				case jkLW:
					va := regs[op.rs&31] + op.imm
					if va&3 != 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcAddrErrL, op.pc, va)
						return in.Steps - start
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := phys.ReadWord(pa)
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
				case jkLH, jkLHU:
					va := regs[op.rs&31] + op.imm
					if va&1 != 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcAddrErrL, op.pc, va)
						return in.Steps - start
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := uint32(phys.ReadHalf(pa))
					if op.kind == jkLH {
						v = uint32(int32(int16(v)))
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
				case jkLB, jkLBU:
					va := regs[op.rs&31] + op.imm
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := uint32(phys.LoadByte(pa))
					if op.kind == jkLB {
						v = uint32(int32(int8(v)))
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}

				case jkSW:
					va := regs[op.rs&31] + op.imm
					if va&3 != 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcAddrErrS, op.pc, va)
						return in.Steps - start
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.WriteWord(pa, regs[op.rt&31])
				case jkSH:
					va := regs[op.rs&31] + op.imm
					if va&1 != 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcAddrErrS, op.pc, va)
						return in.Steps - start
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.WriteHalf(pa, uint16(regs[op.rt&31]))
				case jkSB:
					va := regs[op.rs&31] + op.imm
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						return in.Steps - start
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						in.jitFlush(pending+uint64(i+1), op.pc)
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						return in.Steps - start
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.StoreByte(pa, byte(regs[op.rt&31]))

				case jkBEQ:
					if regs[op.rs&31] == regs[op.rt&31] {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}
				case jkBNE:
					if regs[op.rs&31] != regs[op.rt&31] {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}
				case jkBLEZ:
					if int32(regs[op.rs&31]) <= 0 {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}
				case jkBGTZ:
					if int32(regs[op.rs&31]) > 0 {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}
				case jkBLTZ:
					if int32(regs[op.rs&31]) < 0 {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}
				case jkBGEZ:
					if int32(regs[op.rs&31]) >= 0 {
						cpu.PC = op.targ
						if op.out == jitLoop {
							pending += uint64(i + 1)
							loop = true
							break pass
						}
						clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
						in.Steps += pending + uint64(i+1)
						return in.Steps - start
					}

				case jkJ, jkJAL:
					if op.kind == jkJAL {
						regs[hw.RegRA] = op.imm
					}
					if op.out == jitNext {
						break // followed jumps are trace-internal
					}
					cpu.PC = op.next
					if op.out == jitLoop {
						pending += uint64(i + 1)
						loop = true
						break pass
					}
					clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
					in.Steps += pending + uint64(i+1)
					return in.Steps - start
				case jkJR, jkJALR:
					if op.kind == jkJALR && op.rd != 0 {
						regs[op.rd&31] = op.imm
					}
					cpu.PC = regs[op.rs&31]
					clock.Tick((pending + uint64(i+1)) * hw.CostInstr)
					in.Steps += pending + uint64(i+1)
					return in.Steps - start
				}
			}
			if !loop {
				// Fell off the end of the trace: commit the full pass and
				// hand the successor PC back to the interpreter.
				clock.Tick((pending + b.n) * hw.CostInstr)
				in.Steps += pending + b.n
				cpu.PC = b.endPC
				return in.Steps - start
			}
		}
	}
}

// jitRunBlockProf is the profiled runner: identical block semantics, but
// the interpreter's full per-instruction commit protocol — BeginInstr
// window, base-cost tick, step count, operation, EndInstr window — so
// PROF attribution is cycle-exact per PC even for JIT-executed
// instructions. Host speed is secondary when a profiler is attached; the
// tier still runs so profiled and unprofiled executions share one code
// path shape.
func (in *Interp) jitRunBlockProf(b *jitBlock, remaining uint64) uint64 {
	m := in.M
	cpu := &m.CPU
	regs := &cpu.Regs
	clock := m.Clock
	phys := m.Phys
	tlb := m.TLB
	p := in.Prof
	start := in.Steps
	ops := b.ops
	asid := cpu.ASID
	epoch := tlb.Epoch()
	kernelMode := cpu.Mode == hw.ModeKernel
	for {
		done := in.Steps - start
		if remaining-done < b.n {
			return done
		}
		now := clock.Cycles()
		h := m.EventHorizon()
		if h <= now || h-now <= b.maxCost {
			return done
		}
		k := (h - now - 1) / b.maxCost
		if kb := (remaining - done) / b.n; kb < k {
			k = kb
		}
		for ; k > 0; k-- {
			loop := false
		pass:
			for i := range ops {
				op := &ops[i]
				p.BeginInstr(op.pc, asid, clock.Cycles())
				clock.Tick(hw.CostInstr)
				in.Steps++
				out := jitNext
				switch op.kind {
				case jkNOP:
					cpu.PC = op.next
				case jkLI:
					if op.rd != 0 {
						regs[op.rd&31] = op.imm
					}
					cpu.PC = op.next
				case jkADDU:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] + regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkADDI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] + op.imm
					}
					cpu.PC = op.next
				case jkSUB:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] - regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkMUL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] * regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkAND:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] & regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkANDI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] & op.imm
					}
					cpu.PC = op.next
				case jkOR:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] | regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkORI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] | op.imm
					}
					cpu.PC = op.next
				case jkXOR:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] ^ regs[op.rt&31]
					}
					cpu.PC = op.next
				case jkXORI:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] ^ op.imm
					}
					cpu.PC = op.next
				case jkNOR:
					if op.rd != 0 {
						regs[op.rd&31] = ^(regs[op.rs&31] | regs[op.rt&31])
					}
					cpu.PC = op.next
				case jkSLT:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(int32(regs[op.rs&31]) < int32(regs[op.rt&31]))
					}
					cpu.PC = op.next
				case jkSLTU:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(regs[op.rs&31] < regs[op.rt&31])
					}
					cpu.PC = op.next
				case jkSLTI:
					if op.rd != 0 {
						regs[op.rd&31] = b2u(int32(regs[op.rs&31]) < int32(op.imm))
					}
					cpu.PC = op.next
				case jkSLL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] << (op.imm & 31)
					}
					cpu.PC = op.next
				case jkSRL:
					if op.rd != 0 {
						regs[op.rd&31] = regs[op.rs&31] >> (op.imm & 31)
					}
					cpu.PC = op.next
				case jkSRA:
					if op.rd != 0 {
						regs[op.rd&31] = uint32(int32(regs[op.rs&31]) >> (op.imm & 31))
					}
					cpu.PC = op.next

				case jkADDV, jkADDIV:
					a := int32(regs[op.rs&31])
					bv := int32(op.imm)
					if op.kind == jkADDV {
						bv = int32(regs[op.rt&31])
					}
					s := a + bv
					if (a >= 0 && bv >= 0 && s < 0) || (a < 0 && bv < 0 && s >= 0) {
						m.RaiseException(hw.ExcOverflow, op.pc, 0)
						out = jitExit
						break
					}
					if op.rd != 0 {
						regs[op.rd&31] = uint32(s)
					}
					cpu.PC = op.next

				case jkDIV, jkREM:
					d := int32(regs[op.rt&31])
					if d == 0 {
						m.RaiseException(hw.ExcBreak, op.pc, 0)
						out = jitExit
						break
					}
					a := int32(regs[op.rs&31])
					var v uint32
					switch {
					case a == -1<<31 && d == -1:
						// Same wrapped definition as the interpreter.
						if op.kind == jkDIV {
							v = 1 << 31
						}
					case op.kind == jkDIV:
						v = uint32(a / d)
					default:
						v = uint32(a % d)
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
					cpu.PC = op.next

				case jkLW:
					va := regs[op.rs&31] + op.imm
					if va&3 != 0 {
						m.RaiseException(hw.ExcAddrErrL, op.pc, va)
						out = jitExit
						break
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := phys.ReadWord(pa)
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
					cpu.PC = op.next
				case jkLH, jkLHU:
					va := regs[op.rs&31] + op.imm
					if va&1 != 0 {
						m.RaiseException(hw.ExcAddrErrL, op.pc, va)
						out = jitExit
						break
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := uint32(phys.ReadHalf(pa))
					if op.kind == jkLH {
						v = uint32(int32(int16(v)))
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
					cpu.PC = op.next
				case jkLB, jkLBU:
					va := regs[op.rs&31] + op.imm
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissL, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					v := uint32(phys.LoadByte(pa))
					if op.kind == jkLB {
						v = uint32(int32(int8(v)))
					}
					if op.rd != 0 {
						regs[op.rd&31] = v
					}
					cpu.PC = op.next

				case jkSW:
					va := regs[op.rs&31] + op.imm
					if va&3 != 0 {
						m.RaiseException(hw.ExcAddrErrS, op.pc, va)
						out = jitExit
						break
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.WriteWord(pa, regs[op.rt&31])
					cpu.PC = op.next
				case jkSH:
					va := regs[op.rs&31] + op.imm
					if va&1 != 0 {
						m.RaiseException(hw.ExcAddrErrS, op.pc, va)
						out = jitExit
						break
					}
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.WriteHalf(pa, uint16(regs[op.rt&31]))
					cpu.PC = op.next
				case jkSB:
					va := regs[op.rs&31] + op.imm
					s := op.site
					vpn := va >> hw.PageShift
					if (!s.valid || s.vpn != vpn || s.asid != asid || s.epoch != epoch) &&
						!s.refill(tlb, vpn, asid, epoch) {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermKernel != 0 && !kernelMode {
						m.RaiseException(hw.ExcTLBMissS, op.pc, va)
						out = jitExit
						break
					}
					if s.entry.Perms&hw.PermWrite == 0 {
						m.RaiseException(hw.ExcTLBMod, op.pc, va)
						out = jitExit
						break
					}
					pa := s.entry.PFN<<hw.PageShift | va&(hw.PageSize-1)
					phys.StoreByte(pa, byte(regs[op.rt&31]))
					cpu.PC = op.next

				case jkBEQ:
					if regs[op.rs&31] == regs[op.rt&31] {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}
				case jkBNE:
					if regs[op.rs&31] != regs[op.rt&31] {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}
				case jkBLEZ:
					if int32(regs[op.rs&31]) <= 0 {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}
				case jkBGTZ:
					if int32(regs[op.rs&31]) > 0 {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}
				case jkBLTZ:
					if int32(regs[op.rs&31]) < 0 {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}
				case jkBGEZ:
					if int32(regs[op.rs&31]) >= 0 {
						cpu.PC = op.targ
						out = op.out
					} else {
						cpu.PC = op.next
					}

				case jkJ:
					cpu.PC = op.next
					out = op.out
				case jkJAL:
					regs[hw.RegRA] = op.imm
					cpu.PC = op.next
					out = op.out
				case jkJR:
					cpu.PC = regs[op.rs&31]
					out = jitExit
				case jkJALR:
					if op.rd != 0 {
						regs[op.rd&31] = op.imm
					}
					cpu.PC = regs[op.rs&31]
					out = jitExit
				}
				p.EndInstr(clock.Cycles())
				switch out {
				case jitNext:
				case jitExit:
					return in.Steps - start
				case jitLoop:
					loop = true
					break pass
				}
			}
			if !loop {
				return in.Steps - start // fell off the end; PC already advanced
			}
		}
	}
}

// jitCompile builds the superblock entered at entry, or a dead marker
// when the run is too short to pay for the guards.
//
// Micro-op invariant: on entry to an op, the simulated PC is that op's
// pc. The profiled runner maintains cpu.PC architecturally per op; the
// deferred runner tracks it positionally and materializes it at every
// exit and before every trap — either way a trap handler sees the
// faulting PC with the instruction not yet advanced, exactly the
// interpreter's restart semantics.
func (in *Interp) jitCompile(code isa.Code, entry uint32) *jitBlock {
	b := &jitBlock{entry: entry}
	pc := entry
compile:
	for uint32(len(b.ops)) < jitMaxLen && int(pc) < len(code) {
		inst := code[pc]
		op := jitOp{
			rd:   inst.Rd,
			rs:   inst.Rs,
			rt:   inst.Rt,
			imm:  uint32(inst.Imm),
			pc:   pc,
			next: pc + 1,
		}
		cost := uint64(jitALUCost)
		advance := pc + 1 // next pc the trace compiles (jumps override)
		ended := false    // terminator emitted: stop after this op

		switch inst.Op {
		case isa.NOP:
			op.kind = jkNOP
		case isa.ADDU:
			op.kind = jkADDU
		case isa.ADDIU:
			op.kind = jkADDI
		case isa.SUB:
			op.kind = jkSUB
		case isa.MUL:
			op.kind = jkMUL
		case isa.AND:
			op.kind = jkAND
		case isa.ANDI:
			op.kind = jkANDI
		case isa.OR:
			op.kind = jkOR
		case isa.ORI:
			op.kind = jkORI
		case isa.XOR:
			op.kind = jkXOR
		case isa.XORI:
			op.kind = jkXORI
		case isa.NOR:
			op.kind = jkNOR
		case isa.SLT:
			op.kind = jkSLT
		case isa.SLTU:
			op.kind = jkSLTU
		case isa.SLTI:
			op.kind = jkSLTI
		case isa.LUI:
			op.kind = jkLI
			op.imm = uint32(inst.Imm) << 16
		case isa.SLL:
			op.kind = jkSLL
			op.imm = uint32(inst.Imm) & 31
		case isa.SRL:
			op.kind = jkSRL
			op.imm = uint32(inst.Imm) & 31
		case isa.SRA:
			op.kind = jkSRA
			op.imm = uint32(inst.Imm) & 31
		case isa.ADD:
			op.kind = jkADDV
		case isa.ADDI:
			op.kind = jkADDIV
		case isa.DIV:
			op.kind = jkDIV
		case isa.REM:
			op.kind = jkREM

		case isa.LW:
			op.kind, op.site, cost = jkLW, &jitSite{}, jitMemCost
		case isa.LH:
			op.kind, op.site, cost = jkLH, &jitSite{}, jitMemCost
		case isa.LHU:
			op.kind, op.site, cost = jkLHU, &jitSite{}, jitMemCost
		case isa.LB:
			op.kind, op.site, cost = jkLB, &jitSite{}, jitMemCost
		case isa.LBU:
			op.kind, op.site, cost = jkLBU, &jitSite{}, jitMemCost
		case isa.SW:
			op.kind, op.site, cost = jkSW, &jitSite{}, jitMemCost
		case isa.SH:
			op.kind, op.site, cost = jkSH, &jitSite{}, jitMemCost
		case isa.SB:
			op.kind, op.site, cost = jkSB, &jitSite{}, jitMemCost

		case isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
			switch inst.Op {
			case isa.BEQ:
				op.kind = jkBEQ
			case isa.BNE:
				op.kind = jkBNE
			case isa.BLEZ:
				op.kind = jkBLEZ
			case isa.BGTZ:
				op.kind = jkBGTZ
			case isa.BLTZ:
				op.kind = jkBLTZ
			default:
				op.kind = jkBGEZ
			}
			op.targ = uint32(inst.Imm)
			op.out = jitExit
			if op.targ == entry {
				op.out = jitLoop // back edge: iterate inside the block
			}

		case isa.J, isa.JAL:
			// Resolved at compile time: a jump back to the entry is the
			// back edge, a jump the trace follows is a plain fall-through
			// into the jumped-to run, and anything else exits.
			target := uint32(inst.Imm)
			op.kind = jkJ
			if inst.Op == isa.JAL {
				op.kind = jkJAL
				op.imm = pc + 1 // link value
			}
			op.next = target
			op.out = jitNext
			switch {
			case target == entry:
				op.out = jitLoop
				ended = true
			case int(target) < len(code):
				advance = target // the trace follows the jump
			default:
				op.out = jitExit
				ended = true
			}

		case isa.JR:
			op.kind = jkJR
			ended = true
		case isa.JALR:
			op.kind = jkJALR
			op.imm = pc + 1 // link value
			ended = true

		default:
			// SYSCALL, BREAK, COP1, HALT, TLBWR, RFE, the ASH message
			// primitives, and undefined opcodes terminate the trace: they
			// trap, halt, or touch privileged state the interpreter's
			// fully-checked loop must own.
			break compile
		}

		b.ops = append(b.ops, op)
		b.maxCost += cost
		if ended {
			break
		}
		pc = advance
	}

	b.n = uint64(len(b.ops))
	b.endPC = pc // successor of the last trace op (unused when it exits itself)
	if b.n < jitMinLen {
		return &jitBlock{} // dead entry: keep interpreting, stop counting
	}
	return b
}
