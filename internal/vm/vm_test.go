package vm

import (
	"testing"
	"testing/quick"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/isa"
)

// trapLog records exceptions and (optionally) fixes them up.
type trapLog struct {
	causes []hw.Exc
	badvas []uint32
	fix    func(m *hw.Machine)
}

func (h *trapLog) HandleTrap(m *hw.Machine) {
	h.causes = append(h.causes, m.CPU.Cause)
	h.badvas = append(h.badvas, m.CPU.BadVAddr)
	if h.fix != nil {
		h.fix(m)
	} else {
		// Default: skip the faulting instruction and continue in user mode.
		m.CPU.PC = m.CPU.EPC + 1
		m.CPU.Mode = hw.ModeUser
	}
}

func newVM(t *testing.T, src string) (*hw.Machine, *Interp, *trapLog) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	h := &trapLog{}
	m.SetTrapHandler(h)
	m.CPU.Mode = hw.ModeUser
	code, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return m, New(m, FixedCode(code)), h
}

func TestArithmeticAndLogic(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, 21
		addu  t1, t0, t0      ; 42
		sub   t2, t1, t0      ; 21
		mul   t3, t0, t0      ; 441
		div   t4, t3, t0      ; 21
		rem   t5, t3, t1      ; 441 % 42 = 21
		ori   t6, zero, 0xF0
		andi  t6, t6, 0x3C    ; 0x30
		xori  t7, t6, 0xFF    ; 0xCF
		nor   s0, zero, zero  ; 0xFFFFFFFF
		slt   s1, t0, t1      ; 1
		sltu  s2, t1, t0      ; 0
		slti  s3, t0, 100     ; 1
		sll   s4, t0, 2       ; 84
		srl   s5, s0, 28      ; 0xF
		sra   s6, s0, 4       ; still all ones
		lui   s7, 0x1234
		halt
	`)
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	want := map[uint8]uint32{
		hw.RegT1: 42, hw.RegT2: 21, hw.RegT3: 441, 12: 21, 13: 21,
		14: 0x30, 15: 0xCF, hw.RegS0: 0xFFFFFFFF, 17: 1, 18: 0, 19: 1,
		20: 84, 21: 0xF, 22: 0xFFFFFFFF, 23: 0x1234 << 16,
	}
	for r, v := range want {
		if got := m.CPU.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestRegZeroHardwired(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu zero, zero, 99
		halt
	`)
	in.Run(10)
	if m.CPU.Reg(0) != 0 {
		t.Error("r0 was written")
	}
}

func TestBranchesAndJumps(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, 3
		addiu t1, zero, 0
	loop:
		addiu t1, t1, 10
		addiu t0, t0, -1
		bgtz  t0, loop
		jal   sub
		j     end
	sub:
		addiu t1, t1, 1
		jr    ra
	end:
		halt
	`)
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if got := m.CPU.Reg(hw.RegT1); got != 31 {
		t.Errorf("t1 = %d, want 31", got)
	}
}

func TestOverflowTrapsAndAddendsUnchanged(t *testing.T) {
	m, in, h := newVM(t, `
		lui  t0, 0x7fff
		add  t1, t0, t0
		addu t2, t0, t0
		halt
	`)
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if len(h.causes) != 1 || h.causes[0] != hw.ExcOverflow {
		t.Fatalf("causes = %v", h.causes)
	}
	if m.CPU.Reg(hw.RegT1) != 0 {
		t.Error("trapping add wrote its destination")
	}
	if m.CPU.Reg(hw.RegT2) != 0xFFFE0000 {
		t.Errorf("addu = %#x", m.CPU.Reg(hw.RegT2))
	}
}

func TestAddiOverflow(t *testing.T) {
	_, in, h := newVM(t, `
		lui  t0, 0x7fff
		ori  t0, t0, 0xFFFF
		addi t1, t0, 1
		halt
	`)
	in.Run(100)
	if len(h.causes) != 1 || h.causes[0] != hw.ExcOverflow {
		t.Fatalf("causes = %v", h.causes)
	}
}

func TestDivideByZeroBreaks(t *testing.T) {
	_, in, h := newVM(t, `
		div t0, t1, zero
		halt
	`)
	in.Run(10)
	if len(h.causes) != 1 || h.causes[0] != hw.ExcBreak {
		t.Fatalf("causes = %v", h.causes)
	}
}

func TestUnalignedAccessTraps(t *testing.T) {
	cases := []struct {
		src  string
		want hw.Exc
	}{
		{"lw t0, 1(zero)\nhalt", hw.ExcAddrErrL},
		{"lw t0, 2(zero)\nhalt", hw.ExcAddrErrL},
		{"lh t0, 1(zero)\nhalt", hw.ExcAddrErrL},
		{"sw t0, 3(zero)\nhalt", hw.ExcAddrErrS},
		{"sh t0, 1(zero)\nhalt", hw.ExcAddrErrS},
	}
	for _, c := range cases {
		_, in, h := newVM(t, c.src)
		in.Run(10)
		if len(h.causes) != 1 || h.causes[0] != c.want {
			t.Errorf("%q causes = %v, want [%v]", c.src, h.causes, c.want)
		}
		if h.badvas[0]%4 == 0 {
			t.Errorf("%q BadVAddr = %#x looks aligned", c.src, h.badvas[0])
		}
	}
}

func TestCoprocessorUnusable(t *testing.T) {
	m, in, h := newVM(t, `
		cop1
		cop1
		halt
	`)
	m.CPU.FPUOn = false
	in.Run(10)
	if len(h.causes) != 2 {
		t.Fatalf("causes = %v, want two coproc traps", h.causes)
	}
	m2, in2, h2 := newVM(t, "cop1\nhalt")
	m2.CPU.FPUOn = true
	in2.Run(10)
	if len(h2.causes) != 0 {
		t.Errorf("FPU-on cop1 trapped: %v", h2.causes)
	}
}

func TestPrivilegedInUserMode(t *testing.T) {
	for _, src := range []string{"tlbwr\nhalt", "rfe\nhalt"} {
		_, in, h := newVM(t, src)
		in.Run(10)
		if len(h.causes) != 1 || h.causes[0] != hw.ExcPriv {
			t.Errorf("%q causes = %v, want [priv]", src, h.causes)
		}
	}
}

func TestASHOpsOutsideASHContextTrap(t *testing.T) {
	for _, src := range []string{"pktlw t0, 0(zero)\nhalt", "xmit zero, t0\nhalt", "pktlen t0\nhalt"} {
		_, in, h := newVM(t, src)
		in.Run(10)
		if len(h.causes) != 1 || h.causes[0] != hw.ExcPriv {
			t.Errorf("%q causes = %v, want [priv]", src, h.causes)
		}
	}
}

func TestTLBMissRestartSemantics(t *testing.T) {
	m, in, h := newVM(t, `
		lui  t0, 1          ; va 0x10000
		addiu t1, zero, 77
		sw   t1, 0(t0)
		lw   t2, 0(t0)
		halt
	`)
	// Fix-up: install the mapping and retry the instruction.
	h.fix = func(m *hw.Machine) {
		if m.CPU.Cause == hw.ExcTLBMissS || m.CPU.Cause == hw.ExcTLBMissL {
			m.TLB.WriteRandom(hw.TLBEntry{
				VPN: m.CPU.BadVAddr >> hw.PageShift, ASID: m.CPU.ASID,
				PFN: 2, Perms: hw.PermValid | hw.PermWrite,
			})
			m.CPU.PC = m.CPU.EPC // restart
			m.CPU.Mode = hw.ModeUser
			return
		}
		t.Fatalf("unexpected cause %v", m.CPU.Cause)
	}
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if got := m.CPU.Reg(hw.RegT2); got != 77 {
		t.Errorf("t2 = %d, want 77 (store+load via fault fix-up)", got)
	}
	if len(h.causes) != 1 {
		t.Errorf("expected exactly one miss (the load hits), got %v", h.causes)
	}
	if got := m.Phys.ReadWord(2 << hw.PageShift); got != 77 {
		t.Errorf("physical word = %d", got)
	}
}

func TestFetchPastEndTraps(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	stopper := &trapLog{}
	stopper.fix = func(m *hw.Machine) {} // leave PC; Run loops until budget
	m.SetTrapHandler(stopper)
	in := New(m, FixedCode(isa.Code{{Op: isa.NOP}}))
	m.CPU.Mode = hw.ModeUser
	if r := in.Run(5); r != StopSteps {
		t.Fatalf("Run = %v, want steps exhausted", r)
	}
	if len(stopper.causes) == 0 || stopper.causes[0] != hw.ExcAddrErrL {
		t.Errorf("fetch past end causes = %v", stopper.causes)
	}
}

func TestRequestStop(t *testing.T) {
	_, in, _ := newVM(t, `
	loop:
		j loop
	`)
	in.RequestStop()
	if r := in.Run(0); r != StopRequested {
		t.Fatalf("Run = %v, want requested", r)
	}
}

func TestSyscallRaisesAndKernelResumes(t *testing.T) {
	m, in, h := newVM(t, `
		addiu v0, zero, 7
		syscall
		addiu t0, zero, 1
		halt
	`)
	h.fix = func(m *hw.Machine) {
		if m.CPU.Cause != hw.ExcSyscall {
			t.Fatalf("cause = %v", m.CPU.Cause)
		}
		m.CPU.SetReg(hw.RegV0, 99)
		m.CPU.PC = m.CPU.EPC + 1
		m.CPU.Mode = hw.ModeUser
	}
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if m.CPU.Reg(hw.RegV0) != 99 || m.CPU.Reg(hw.RegT0) != 1 {
		t.Error("syscall result or resume broken")
	}
}

func TestASHContextSandboxAndXmit(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	m.SetTrapHandler(&trapLog{})
	code := asm.MustAssemble(`
		pktlen t0
		pktlw  t1, 0(zero)
		sw     t1, 0(zero)       ; sandboxed: masked into the scratch page
		sw     t1, 8192(zero)    ; attempts to escape; masked back inside
		xmit   zero, t0
		halt
	`)
	in := New(m, FixedCode(code))
	var sent [][]byte
	in.ASH = &ASHContext{
		Packet:      []byte{1, 2, 3, 4, 5, 6},
		SandboxBase: 3 << hw.PageShift,
		SandboxMask: hw.PageSize - 1,
		Phys:        m.Phys,
		Xmit:        func(b []byte) { sent = append(sent, b) },
	}
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if got := m.CPU.Reg(hw.RegT0); got != 6 {
		t.Errorf("pktlen = %d", got)
	}
	if got := m.CPU.Reg(hw.RegT1); got != 0x04030201 {
		t.Errorf("pktlw = %#x", got)
	}
	// Both stores landed inside the sandbox page (the second was masked).
	if got := m.Phys.ReadWord(3 << hw.PageShift); got != 0x04030201 {
		t.Errorf("sandbox word = %#x", got)
	}
	if len(sent) != 1 || len(sent[0]) != 6 {
		t.Fatalf("xmit sent %v frames", sent)
	}
	if in.ASH.Sent != 1 {
		t.Errorf("Sent = %d", in.ASH.Sent)
	}
}

func TestPktLoadBeyondPacketReadsZero(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	m.SetTrapHandler(&trapLog{})
	code := asm.MustAssemble(`
		pktlw t0, 100(zero)
		pktlb t1, 100(zero)
		halt
	`)
	in := New(m, FixedCode(code))
	in.ASH = &ASHContext{Packet: []byte{1}, SandboxMask: hw.PageSize - 1, Phys: m.Phys}
	in.Run(10)
	if m.CPU.Reg(hw.RegT0) != 0 || m.CPU.Reg(hw.RegT1) != 0 {
		t.Error("out-of-packet loads returned nonzero")
	}
}

func TestStepCounterAndClockAdvance(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, 1
		addiu t0, t0, 1
		halt
	`)
	c0 := m.Clock.Cycles()
	in.Run(100)
	if in.Steps != 3 {
		t.Errorf("Steps = %d, want 3", in.Steps)
	}
	if m.Clock.Cycles()-c0 < 3 {
		t.Error("clock did not advance with instructions")
	}
}

// Property: ADDU/SUB round trip — for any a, b: (a+b)-b == a.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		m := hw.NewMachine(hw.DEC5000)
		m.SetTrapHandler(&trapLog{})
		m.CPU.Mode = hw.ModeUser
		m.CPU.SetReg(hw.RegT0, a)
		m.CPU.SetReg(hw.RegT1, b)
		code := asm.MustAssemble(`
			addu t2, t0, t1
			sub  t3, t2, t1
			halt
		`)
		in := New(m, FixedCode(code))
		in.Run(10)
		return m.CPU.Reg(hw.RegT3) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the sandbox mask confines every store to the scratch region.
func TestQuickSandboxConfinement(t *testing.T) {
	f := func(addr uint32, val uint32) bool {
		m := hw.NewMachine(hw.DEC5000)
		m.SetTrapHandler(&trapLog{})
		in := New(m, FixedCode(isa.Code{
			{Op: isa.SW, Rt: hw.RegT1, Rs: hw.RegT0, Imm: 0},
			{Op: isa.HALT},
		}))
		in.ASH = &ASHContext{Packet: nil, SandboxBase: 5 << hw.PageShift, SandboxMask: hw.PageSize - 1, Phys: m.Phys}
		m.CPU.SetReg(hw.RegT0, addr&^3) // aligned
		m.CPU.SetReg(hw.RegT1, val)
		in.Run(10)
		// Only the sandbox page may be dirty.
		for f := uint32(0); f < uint32(m.Phys.NumPages()); f++ {
			if f == 5 {
				continue
			}
			page := m.Phys.Page(f)
			for _, b := range page {
				if b != 0 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20} // full-memory scan is slow
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHalfwordAndByteSignExtension(t *testing.T) {
	m, in, h := newVM(t, `
		lui   t0, 0x1        ; va 0x10000
		lui   t1, 0x8765     ; 0x87650000
		ori   t1, t1, 0x4321
		sw    t1, 0(t0)
		lh    t2, 0(t0)      ; 0x4321 sign-extended (positive)
		lh    t3, 2(t0)      ; 0x8765 sign-extended (negative)
		lhu   t4, 2(t0)      ; 0x8765 zero-extended
		lb    t5, 3(t0)      ; 0x87 sign-extended
		lbu   t6, 3(t0)      ; 0x87 zero-extended
		sh    t1, 4(t0)      ; low half only
		lhu   t7, 4(t0)
		sb    t1, 6(t0)
		lbu   s0, 6(t0)
		halt
	`)
	h.fix = func(m *hw.Machine) {
		m.TLB.WriteRandom(hw.TLBEntry{
			VPN: m.CPU.BadVAddr >> hw.PageShift, ASID: m.CPU.ASID,
			PFN: 2, Perms: hw.PermValid | hw.PermWrite,
		})
		m.CPU.PC = m.CPU.EPC
		m.CPU.Mode = hw.ModeUser
	}
	if r := in.Run(100); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	want := map[uint8]uint32{
		hw.RegT2: 0x4321,
		hw.RegT3: 0xFFFF8765,
		12:       0x8765, // t4
		13:       0xFFFFFF87,
		14:       0x87,
		15:       0x4321,
		hw.RegS0: 0x21,
	}
	for r, v := range want {
		if got := m.CPU.Reg(r); got != v {
			t.Errorf("r%d = %#x, want %#x", r, got, v)
		}
	}
}

func TestJALRLinksAndJumps(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, target
		jalr  t1, t0
		halt
	target:
		addiu s0, t1, 0     ; s0 = link value
		halt
	`)
	if r := in.Run(20); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if got := m.CPU.Reg(hw.RegS0); got != 2 {
		t.Errorf("link = %d, want 2 (instruction after jalr)", got)
	}
}

func TestSignedVsUnsignedComparisons(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, -1   ; 0xFFFFFFFF
		addiu t1, zero, 1
		slt   t2, t0, t1     ; signed: -1 < 1 → 1
		sltu  t3, t0, t1     ; unsigned: max < 1 → 0
		slti  t4, t0, 0      ; -1 < 0 → 1
		halt
	`)
	in.Run(20)
	if m.CPU.Reg(hw.RegT2) != 1 || m.CPU.Reg(hw.RegT3) != 0 || m.CPU.Reg(12) != 1 {
		t.Errorf("slt=%d sltu=%d slti=%d", m.CPU.Reg(hw.RegT2), m.CPU.Reg(hw.RegT3), m.CPU.Reg(12))
	}
}

func TestBranchVariants(t *testing.T) {
	m, in, _ := newVM(t, `
		addiu t0, zero, -5
		addiu t1, zero, 0
		addiu t2, zero, 3
		bltz  t0, a
		addiu s0, s0, 100   ; skipped
	a:	bgez  t1, b
		addiu s0, s0, 100   ; skipped
	b:	blez  t1, c
		addiu s0, s0, 100   ; skipped
	c:	bgtz  t2, d
		addiu s0, s0, 100   ; skipped
	d:	addiu s0, s0, 1
		halt
	`)
	if r := in.Run(30); r != StopHalt {
		t.Fatalf("Run = %v", r)
	}
	if got := m.CPU.Reg(hw.RegS0); got != 1 {
		t.Errorf("s0 = %d, want 1 (all branches taken)", got)
	}
}

func TestDivMinInt32ByMinusOne(t *testing.T) {
	m, in, h := newVM(t, `
		lui   t0, 0x8000     ; MinInt32
		addiu t1, zero, -1
		div   t2, t0, t1
		rem   t3, t0, t1
		halt
	`)
	if r := in.Run(20); r != StopHalt {
		t.Fatalf("Run = %v (the host must not panic)", r)
	}
	if len(h.causes) != 0 {
		t.Errorf("causes = %v", h.causes)
	}
	if m.CPU.Reg(hw.RegT2) != 1<<31 || m.CPU.Reg(hw.RegT3) != 0 {
		t.Errorf("div=%#x rem=%#x, want wrapped quotient and zero remainder",
			m.CPU.Reg(hw.RegT2), m.CPU.Reg(hw.RegT3))
	}
}

// Property: for defined divisions, a == d*(a/d) + a%d.
func TestQuickDivRemIdentity(t *testing.T) {
	f := func(a, d int32) bool {
		if d == 0 {
			return true
		}
		m := hw.NewMachine(hw.DEC5000)
		m.SetTrapHandler(&trapLog{})
		m.CPU.Mode = hw.ModeUser
		m.CPU.SetReg(hw.RegT0, uint32(a))
		m.CPU.SetReg(hw.RegT1, uint32(d))
		code := asm.MustAssemble(`
			div t2, t0, t1
			rem t3, t0, t1
			halt
		`)
		New(m, FixedCode(code)).Run(10)
		q := int32(m.CPU.Reg(hw.RegT2))
		r := int32(m.CPU.Reg(hw.RegT3))
		return a == d*q+r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
