// Package fault is the deterministic fault-injection layer for the
// simulated hardware. The paper's robustness story — visible revocation
// with a forced abort protocol (§3.3–3.4), library operating systems that
// implement their own recovery policy — is only testable when resources
// actually fail or get yanked, so this package lets the simulated world
// misbehave on purpose: frames dropped, duplicated, corrupted, or held
// back on the wire; disk transfers that error, stall, or flip bits; NIC
// receive rings under artificial pressure.
//
// Two properties are load-bearing:
//
//   - Off by default. A nil injector (or one that is disabled) is never
//     consulted beyond a pointer check, so every benchmark and invariance
//     gate runs on the byte-identical perfect hardware it always had.
//   - Deterministic. All decisions come from one splitmix64 generator
//     keyed by a single seed; the simulation is single-threaded, so the
//     same seed over the same schedule yields the identical fault
//     sequence, cycle for cycle. A failing chaos run is reproduced by its
//     seed alone.
//
// Probabilities are expressed in parts-per-million (integer arithmetic:
// no float rounding in the decision path). The injector implements the
// device hook interfaces in internal/hw and internal/ether; it imports
// neither, so it threads under every layer without cycles.
package fault

import "fmt"

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds. NetHold is a bounded reorder: the frame is delivered, just
// after frames sent later. EnvKill is harness-driven (the injector cannot
// kill an environment itself) and enters the log through Note.
const (
	NetDrop Kind = iota
	NetDup
	NetCorrupt
	NetHold
	DiskReadErr
	DiskWriteErr
	DiskSlow
	DiskCorrupt
	NICPressure
	EnvKill
	PowerFail
	numKinds
)

var kindNames = [numKinds]string{
	NetDrop:      "net-drop",
	NetDup:       "net-dup",
	NetCorrupt:   "net-corrupt",
	NetHold:      "net-hold",
	DiskReadErr:  "disk-read-err",
	DiskWriteErr: "disk-write-err",
	DiskSlow:     "disk-slow",
	DiskCorrupt:  "disk-corrupt",
	NICPressure:  "nic-pressure",
	EnvKill:      "env-kill",
	PowerFail:    "power-fail",
}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "fault?"
}

// NumKinds is the number of fault kinds (for tables indexed by Kind).
const NumKinds = int(numKinds)

// Event is one injected fault, recorded in injection order.
type Event struct {
	Kind Kind
	// Arg identifies the victim: block number for disk faults, frame
	// length for wire faults, environment ID for kills.
	Arg uint64
}

// Config sets the per-decision fault rates. All rates are parts per
// million; the zero Config injects nothing.
type Config struct {
	Seed uint64

	// Wire (per frame broadcast on the segment).
	NetDropPPM    uint32
	NetDupPPM     uint32
	NetCorruptPPM uint32
	NetHoldPPM    uint32

	// Disk (per block transfer).
	DiskReadErrPPM  uint32
	DiskWriteErrPPM uint32
	DiskSlowPPM     uint32
	DiskCorruptPPM  uint32
	// DiskSlowCycles is the latency spike added when DiskSlow fires.
	DiskSlowCycles uint64

	// NIC (per delivery attempt): probability that queue pressure steals
	// RxPressureDepth slots of the receive ring.
	RxPressurePPM   uint32
	RxPressureDepth int

	// Power failure (per completed disk transfer — a disk-I/O boundary).
	// PowerFailPPM is the random rate; PowerFailAfterWrites, when
	// non-zero, fires deterministically at the completion of the Nth
	// write boundary (1-based, counted from injector creation or the last
	// ArmPowerFail) — the knob the crash-point exploration test sweeps;
	// PowerFailAtCycle, when non-zero, fires at the first boundary at or
	// after that simulated cycle. Each deterministic trigger fires once.
	PowerFailPPM         uint32
	PowerFailAfterWrites uint64
	PowerFailAtCycle     uint64
}

// Injector makes fault decisions. Methods are safe on a nil receiver
// (no faults) so device hooks need only a nil interface check.
type Injector struct {
	cfg     Config
	rng     uint64
	enabled bool

	// Counts tallies injected faults by kind.
	Counts [NumKinds]uint64
	// Log records every injected fault in order (the determinism witness;
	// Reset drops it).
	Log []Event
	// Observe, when set, sees each fault as it is injected — the chaos
	// harness wires it to the kernel flight recorder so fault events
	// interleave with the kernel's own trace.
	Observe func(Event)

	// Power-fail trigger state: completed write boundaries seen, and
	// whether each one-shot deterministic trigger has fired.
	writeBoundaries uint64
	afterFired      bool
	cycleFired      bool
}

// New creates an enabled injector for a config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: cfg.Seed, enabled: true}
}

// SetEnabled pauses (false) or resumes (true) injection. Disabled, every
// decision is "no fault" and the generator does not advance — re-enabling
// resumes the seeded sequence where it stopped.
func (in *Injector) SetEnabled(on bool) { in.enabled = on }

// Total reports the number of faults injected so far.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for _, c := range in.Counts {
		t += c
	}
	return t
}

// next advances the splitmix64 generator.
func (in *Injector) next() uint64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// chance draws one decision at ppm parts per million.
func (in *Injector) chance(ppm uint32) bool {
	if ppm == 0 {
		return false
	}
	return in.next()%1_000_000 < uint64(ppm)
}

// record tallies and publishes one injected fault.
func (in *Injector) record(k Kind, arg uint64) {
	in.Counts[k]++
	ev := Event{Kind: k, Arg: arg}
	in.Log = append(in.Log, ev)
	if in.Observe != nil {
		in.Observe(ev)
	}
}

// Note records a harness-driven fault (e.g. a forced environment kill)
// into the same log and counters as device-level injections.
func (in *Injector) Note(k Kind, arg uint64) {
	if in == nil {
		return
	}
	in.record(k, arg)
}

// --- Wire faults (implements ether.WireFault) ------------------------------

// WireVerdict is the fate of one frame in flight.
type WireVerdict struct {
	Drop bool // discard the frame
	Dup  bool // deliver it twice
	Hold bool // hold it back: delivered after later frames (bounded reorder)
	// CorruptOff/CorruptXor flip one byte; CorruptOff < 0 means intact.
	CorruptOff int
	CorruptXor byte
}

// FrameFate decides what happens to one broadcast frame of n bytes.
// At most one of Drop/Dup/Hold fires per frame; corruption composes with
// Dup and Hold (a duplicated frame may carry a flipped byte) but not with
// Drop. The RNG consumption per call is fixed by the configured rates,
// never by prior outcomes, so decision streams stay aligned across runs.
func (in *Injector) FrameFate(frame []byte) WireVerdict {
	v := WireVerdict{CorruptOff: -1}
	if in == nil || !in.enabled {
		return v
	}
	n := uint64(len(frame))
	if in.chance(in.cfg.NetDropPPM) {
		v.Drop = true
		in.record(NetDrop, n)
		return v
	}
	if in.chance(in.cfg.NetDupPPM) {
		v.Dup = true
		in.record(NetDup, n)
	} else if in.chance(in.cfg.NetHoldPPM) {
		v.Hold = true
		in.record(NetHold, n)
	}
	if len(frame) > 0 && in.chance(in.cfg.NetCorruptPPM) {
		v.CorruptOff = int(in.next() % n)
		v.CorruptXor = byte(in.next()%255) + 1 // never a no-op flip
		in.record(NetCorrupt, n)
	}
	return v
}

// --- Disk faults (implements hw.DiskFault) ---------------------------------

// DiskVerdict is the fate of one block transfer.
type DiskVerdict struct {
	// Delay is added to the access cost (a latency spike); charged even
	// when the transfer errors, as a stalled controller would.
	Delay uint64
	// Err, when non-nil, fails the transfer after the cost is paid.
	Err error
	// CorruptOff/CorruptXor flip one byte of the transferred block
	// (after a read, before a write hits the platter); CorruptOff < 0
	// means intact.
	CorruptOff int
	CorruptXor byte
}

// errInjected is the error type of injected disk failures; it lets
// recovery code (and tests) distinguish injected faults from structural
// errors like out-of-range blocks.
type errInjected struct {
	op    string
	block uint32
}

func (e errInjected) Error() string {
	return fmt.Sprintf("fault: injected disk %s error at block %d", e.op, e.block)
}

// IsInjected reports whether an error came from the injector.
func IsInjected(err error) bool {
	_, ok := err.(errInjected)
	return ok
}

func (in *Injector) diskFate(op string, write bool, b uint32, errPPM uint32) DiskVerdict {
	v := DiskVerdict{CorruptOff: -1}
	if in == nil || !in.enabled {
		return v
	}
	if in.chance(in.cfg.DiskSlowPPM) {
		v.Delay = in.cfg.DiskSlowCycles
		in.record(DiskSlow, uint64(b))
	}
	if in.chance(errPPM) {
		v.Err = errInjected{op: op, block: b}
		if write {
			in.record(DiskWriteErr, uint64(b))
		} else {
			in.record(DiskReadErr, uint64(b))
		}
		return v
	}
	if in.chance(in.cfg.DiskCorruptPPM) {
		// The device applies the offset modulo its block size.
		v.CorruptOff = int(in.next() % 65536)
		v.CorruptXor = byte(in.next()%255) + 1
		in.record(DiskCorrupt, uint64(b))
	}
	return v
}

// ReadFault decides the fate of a block read.
func (in *Injector) ReadFault(b uint32) DiskVerdict {
	return in.diskFate("read", false, b, in.cfgOrZero().DiskReadErrPPM)
}

// WriteFault decides the fate of a block write.
func (in *Injector) WriteFault(b uint32) DiskVerdict {
	return in.diskFate("write", true, b, in.cfgOrZero().DiskWriteErrPPM)
}

// cfgOrZero lets the exported fault methods run on a nil receiver.
func (in *Injector) cfgOrZero() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// --- Power failure (implements hw.DiskPower) -------------------------------

// ArmPowerFail re-arms the deterministic write-boundary trigger: the
// power will fail at the completion of the Nth write from now (1-based).
// The crash-point exploration test sweeps this knob across every write
// boundary of a workload. n = 0 disarms.
func (in *Injector) ArmPowerFail(n uint64) {
	in.cfg.PowerFailAfterWrites = n
	in.writeBoundaries = 0
	in.afterFired = n == 0
}

// PowerFail decides, at the completion of one disk transfer, whether
// the machine loses power at exactly that I/O boundary. Deterministic
// triggers (write-boundary count, simulated cycle) are checked before
// the random rate and never consume RNG draws, so arming them does not
// shift any other decision stream.
func (in *Injector) PowerFail(write bool, b uint32, cycle uint64) bool {
	if in == nil || !in.enabled {
		return false
	}
	if write {
		in.writeBoundaries++
		if !in.afterFired && in.cfg.PowerFailAfterWrites > 0 &&
			in.writeBoundaries >= in.cfg.PowerFailAfterWrites {
			in.afterFired = true
			in.record(PowerFail, uint64(b))
			return true
		}
	}
	if !in.cycleFired && in.cfg.PowerFailAtCycle > 0 && cycle >= in.cfg.PowerFailAtCycle {
		in.cycleFired = true
		in.record(PowerFail, uint64(b))
		return true
	}
	if in.chance(in.cfg.PowerFailPPM) {
		in.record(PowerFail, uint64(b))
		return true
	}
	return false
}

// --- NIC faults (implements hw.NICFault) -----------------------------------

// RxPressure reports how many receive-ring slots artificial queue
// pressure is occupying for this delivery (0 = none).
func (in *Injector) RxPressure() int {
	if in == nil || !in.enabled {
		return 0
	}
	if in.chance(in.cfg.RxPressurePPM) {
		depth := in.cfg.RxPressureDepth
		if depth <= 0 {
			depth = 64
		}
		in.record(NICPressure, uint64(depth))
		return depth
	}
	return 0
}
