package fault

import (
	"errors"
	"testing"
)

// A nil injector must be completely inert: zero verdicts, no panics.
// Device hooks rely on this so perfect hardware needs only a nil check.
func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	v := in.FrameFate(make([]byte, 60))
	if v.Drop || v.Dup || v.Hold || v.CorruptOff >= 0 {
		t.Errorf("nil injector produced a wire fault: %+v", v)
	}
	if d := in.ReadFault(3); d.Err != nil || d.Delay != 0 || d.CorruptOff >= 0 {
		t.Errorf("nil injector produced a disk fault: %+v", d)
	}
	if d := in.WriteFault(3); d.Err != nil || d.Delay != 0 || d.CorruptOff >= 0 {
		t.Errorf("nil injector produced a disk fault: %+v", d)
	}
	if in.RxPressure() != 0 {
		t.Error("nil injector produced rx pressure")
	}
	in.Note(EnvKill, 1) // must not panic
	if in.Total() != 0 {
		t.Errorf("nil injector Total = %d", in.Total())
	}
}

// everything is a config with every rate high enough to fire often.
func everything(seed uint64) Config {
	return Config{
		Seed:            seed,
		NetDropPPM:      200_000,
		NetDupPPM:       200_000,
		NetCorruptPPM:   200_000,
		NetHoldPPM:      200_000,
		DiskReadErrPPM:  200_000,
		DiskWriteErrPPM: 200_000,
		DiskSlowPPM:     200_000,
		DiskCorruptPPM:  200_000,
		DiskSlowCycles:  777,
		RxPressurePPM:   200_000,
		RxPressureDepth: 9,
	}
}

// Same seed, same call sequence, identical fault log — the property the
// whole chaos gate rests on.
func TestDeterminism(t *testing.T) {
	run := func() *Injector {
		in := New(everything(42))
		frame := make([]byte, 128)
		for i := 0; i < 500; i++ {
			switch i % 4 {
			case 0:
				in.FrameFate(frame)
			case 1:
				in.ReadFault(uint32(i))
			case 2:
				in.WriteFault(uint32(i))
			case 3:
				in.RxPressure()
			}
		}
		return in
	}
	a, b := run(), run()
	if len(a.Log) != len(b.Log) {
		t.Fatalf("log lengths diverged: %d vs %d", len(a.Log), len(b.Log))
	}
	if len(a.Log) == 0 {
		t.Fatal("no faults injected at 20% rates over 500 decisions")
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("log diverged at %d: %v vs %v", i, a.Log[i], b.Log[i])
		}
	}
	if a.Counts != b.Counts {
		t.Errorf("counts diverged: %v vs %v", a.Counts, b.Counts)
	}
}

// Disabling pauses the generator without advancing it: decisions made
// while disabled are all "no fault" and cost nothing, so re-enabling
// resumes the seeded sequence exactly where it stopped.
func TestSetEnabledPausesGenerator(t *testing.T) {
	frame := make([]byte, 64)
	straight := New(everything(7))
	paused := New(everything(7))
	for i := 0; i < 10; i++ {
		straight.FrameFate(frame)
		paused.FrameFate(frame)
	}
	paused.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if v := paused.FrameFate(frame); v.Drop || v.Dup || v.Hold || v.CorruptOff >= 0 {
			t.Fatal("disabled injector produced a fault")
		}
		if d := paused.ReadFault(0); d.Err != nil || d.Delay != 0 || d.CorruptOff >= 0 {
			t.Fatal("disabled injector produced a disk fault")
		}
	}
	paused.SetEnabled(true)
	for i := 0; i < 10; i++ {
		straight.FrameFate(frame)
		paused.FrameFate(frame)
	}
	if len(straight.Log) != len(paused.Log) {
		t.Fatalf("pause perturbed the sequence: %d vs %d events",
			len(straight.Log), len(paused.Log))
	}
	for i := range straight.Log {
		if straight.Log[i] != paused.Log[i] {
			t.Fatalf("pause perturbed event %d: %v vs %v",
				i, straight.Log[i], paused.Log[i])
		}
	}
}

// At most one of Drop/Dup/Hold per frame; corruption never rides on a
// dropped frame (there is nothing left to corrupt).
func TestFrameFateExclusivity(t *testing.T) {
	in := New(everything(3))
	frame := make([]byte, 100)
	for i := 0; i < 5000; i++ {
		v := in.FrameFate(frame)
		if v.Drop && (v.Dup || v.Hold || v.CorruptOff >= 0) {
			t.Fatalf("drop composed with another fate: %+v", v)
		}
		if v.Dup && v.Hold {
			t.Fatalf("dup and hold both fired: %+v", v)
		}
		if v.CorruptOff >= len(frame) {
			t.Fatalf("corrupt offset %d beyond frame", v.CorruptOff)
		}
		if v.CorruptOff >= 0 && v.CorruptXor == 0 {
			t.Fatal("no-op corruption (xor 0)")
		}
	}
	if in.Counts[NetDrop] == 0 || in.Counts[NetDup] == 0 ||
		in.Counts[NetHold] == 0 || in.Counts[NetCorrupt] == 0 {
		t.Errorf("some wire fates never fired: %v", in.Counts)
	}
}

// Injection rates must track the configured PPM (coarsely — this guards
// against unit mistakes like treating PPM as percent, not against bias).
func TestRateRoughlyMatchesPPM(t *testing.T) {
	in := New(Config{Seed: 11, NetDropPPM: 500_000})
	n := 4000
	for i := 0; i < n; i++ {
		in.FrameFate([]byte{1})
	}
	got := in.Counts[NetDrop]
	if got < uint64(n*40/100) || got > uint64(n*60/100) {
		t.Errorf("drop rate %d/%d at 50%% configured", got, n)
	}
}

// A slow verdict composes with an error (a stalled controller still
// consumed the time before failing); corruption never composes with an
// error (the transfer that would carry it failed).
func TestDiskVerdictComposition(t *testing.T) {
	in := New(Config{
		Seed:           5,
		DiskReadErrPPM: 500_000,
		DiskSlowPPM:    500_000,
		DiskCorruptPPM: 500_000,
		DiskSlowCycles: 1234,
	})
	sawSlowErr := false
	for i := 0; i < 2000; i++ {
		v := in.ReadFault(uint32(i))
		if v.Err != nil && v.CorruptOff >= 0 {
			t.Fatalf("error composed with corruption: %+v", v)
		}
		if v.Delay != 0 && v.Delay != 1234 {
			t.Fatalf("delay %d, configured 1234", v.Delay)
		}
		if v.Err != nil && v.Delay > 0 {
			sawSlowErr = true
		}
	}
	if !sawSlowErr {
		t.Error("slow+error never composed in 2000 draws at 50%/50%")
	}
}

// Injected errors are distinguishable from structural ones.
func TestIsInjected(t *testing.T) {
	in := New(Config{Seed: 1, DiskWriteErrPPM: 1_000_000})
	v := in.WriteFault(17)
	if v.Err == nil {
		t.Fatal("certain error did not fire")
	}
	if !IsInjected(v.Err) {
		t.Errorf("IsInjected(%v) = false", v.Err)
	}
	if IsInjected(errors.New("disk on fire")) {
		t.Error("IsInjected accepted a foreign error")
	}
	if in.Counts[DiskWriteErr] != 1 {
		t.Errorf("write-error count = %d", in.Counts[DiskWriteErr])
	}
}

// Note enters harness-driven faults into the same log, and Observe sees
// every event in injection order.
func TestNoteAndObserve(t *testing.T) {
	in := New(Config{Seed: 9, NetDropPPM: 1_000_000})
	var seen []Event
	in.Observe = func(ev Event) { seen = append(seen, ev) }
	in.FrameFate([]byte{1, 2, 3})
	in.Note(EnvKill, 44)
	want := []Event{{Kind: NetDrop, Arg: 3}, {Kind: EnvKill, Arg: 44}}
	if len(in.Log) != 2 || in.Log[0] != want[0] || in.Log[1] != want[1] {
		t.Errorf("log = %v, want %v", in.Log, want)
	}
	if len(seen) != 2 || seen[0] != want[0] || seen[1] != want[1] {
		t.Errorf("observed = %v, want %v", seen, want)
	}
	if in.Total() != 2 {
		t.Errorf("Total = %d", in.Total())
	}
}

// RxPressure reports the configured depth (default 64 when unset).
func TestRxPressureDepth(t *testing.T) {
	in := New(Config{Seed: 2, RxPressurePPM: 1_000_000, RxPressureDepth: 48})
	if d := in.RxPressure(); d != 48 {
		t.Errorf("depth = %d, want 48", d)
	}
	in = New(Config{Seed: 2, RxPressurePPM: 1_000_000})
	if d := in.RxPressure(); d != 64 {
		t.Errorf("default depth = %d, want 64", d)
	}
}
