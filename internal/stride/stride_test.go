package stride

import (
	"math"
	"testing"
	"testing/quick"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

func setup(t *testing.T, tickets []uint64) (*aegis.Kernel, *Scheduler, []*Client) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetQuantum(1000)
	s, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for _, tk := range tickets {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Add(w.ID, tk)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	k.SetSliceVector([]aegis.EnvID{s.Env.ID})
	return k, s, clients
}

func run(t *testing.T, k *aegis.Kernel, quanta int) {
	t.Helper()
	for i := 0; i < quanta; i++ {
		if !k.DispatchNative() {
			t.Fatal("nothing runnable")
		}
	}
}

func TestProportionalShare321(t *testing.T) {
	k, s, clients := setup(t, []uint64{3, 2, 1})
	run(t, k, 600)
	if got := clients[0].Quanta; got != 300 {
		t.Errorf("A quanta = %d, want 300", got)
	}
	if got := clients[1].Quanta; got != 200 {
		t.Errorf("B quanta = %d, want 200", got)
	}
	if got := clients[2].Quanta; got != 100 {
		t.Errorf("C quanta = %d, want 100", got)
	}
	shares := s.Shares()
	for i, want := range []float64{0.5, 1.0 / 3, 1.0 / 6} {
		if math.Abs(shares[i]-want) > 0.01 {
			t.Errorf("share[%d] = %.3f, want %.3f", i, shares[i], want)
		}
	}
}

func TestEqualTickets(t *testing.T) {
	k, _, clients := setup(t, []uint64{5, 5})
	run(t, k, 100)
	if clients[0].Quanta != 50 || clients[1].Quanta != 50 {
		t.Errorf("quanta = %d/%d", clients[0].Quanta, clients[1].Quanta)
	}
}

func TestThroughputErrorBounded(t *testing.T) {
	// Stride scheduling's claim: absolute error vs. the ideal share stays
	// O(1) quanta at every prefix of the schedule, not just at the end.
	k, _, clients := setup(t, []uint64{7, 3})
	total := 0
	for step := 0; step < 500; step++ {
		if !k.DispatchNative() {
			t.Fatal("nothing runnable")
		}
		total++
		ideal0 := float64(total) * 0.7
		if math.Abs(float64(clients[0].Quanta)-ideal0) > 1.5 {
			t.Fatalf("after %d quanta: client0 has %d, ideal %.1f", total, clients[0].Quanta, ideal0)
		}
	}
}

func TestDynamicJoin(t *testing.T) {
	k, s, clients := setup(t, []uint64{1})
	run(t, k, 100)
	w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
	if err != nil {
		t.Fatal(err)
	}
	late, err := s.Add(w.ID, 1)
	if err != nil {
		t.Fatal(err)
	}
	// NewEnv gave the worker its own kernel slice; all slices stay with
	// the scheduler, which re-donates them by ticket policy.
	k.SetSliceVector([]aegis.EnvID{s.Env.ID})
	run(t, k, 100)
	// The late joiner neither starves nor monopolizes: it gets roughly
	// half of the post-join quanta.
	if late.Quanta < 40 || late.Quanta > 60 {
		t.Errorf("late joiner quanta = %d, want ~50", late.Quanta)
	}
	if clients[0].Quanta < 140 {
		t.Errorf("original client lost history: %d", clients[0].Quanta)
	}
}

func TestZeroTicketsRejected(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	s, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(1, 0); err == nil {
		t.Error("zero tickets accepted")
	}
}

func TestSharesEmpty(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	s, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Shares(); len(got) != 0 {
		t.Errorf("Shares = %v", got)
	}
	// Dispatch with no clients is a no-op, not a crash.
	s.dispatch(k)
}

func TestLotteryConvergesButWanders(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	k.SetQuantum(1000)
	l, err := NewLottery(k, 7)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for _, tk := range []uint64{3, 1} {
		w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		if err != nil {
			t.Fatal(err)
		}
		c, err := l.Add(w.ID, tk)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	k.SetSliceVector([]aegis.EnvID{l.Env.ID})
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		if !k.DispatchNative() {
			t.Fatal("starved")
		}
	}
	share := float64(clients[0].Quanta) / rounds
	if share < 0.70 || share > 0.80 {
		t.Errorf("lottery share = %.3f, want ~0.75", share)
	}
	if _, err := l.Add(1, 0); err == nil {
		t.Error("zero tickets accepted")
	}
	if got := l.Shares(); len(got) != 2 {
		t.Errorf("Shares = %v", got)
	}
}

func TestLotteryDeterministicWithSeed(t *testing.T) {
	run := func() uint64 {
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		k.SetQuantum(1000)
		l, err := NewLottery(k, 99)
		if err != nil {
			t.Fatal(err)
		}
		w, _ := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		w2, _ := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
		c1, _ := l.Add(w.ID, 1)
		l.Add(w2.ID, 1)
		k.SetSliceVector([]aegis.EnvID{l.Env.ID})
		for i := 0; i < 500; i++ {
			k.DispatchNative()
		}
		return c1.Quanta
	}
	if run() != run() {
		t.Error("seeded lottery is not deterministic")
	}
}

// Property: for any ticket vector, long-run shares converge to the ticket
// proportions within a small tolerance.
func TestQuickProportionality(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 5 {
			return true
		}
		tickets := make([]uint64, len(raw))
		var sum uint64
		for i, r := range raw {
			tickets[i] = uint64(r%9) + 1
			sum += tickets[i]
		}
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		k.SetQuantum(100)
		s, err := New(k)
		if err != nil {
			return false
		}
		var clients []*Client
		for _, tk := range tickets {
			w, err := exos.NewWorker(k, func(k *aegis.Kernel) { k.M.Clock.Tick(k.Quantum()) })
			if err != nil {
				return false
			}
			c, err := s.Add(w.ID, tk)
			if err != nil {
				return false
			}
			clients = append(clients, c)
		}
		k.SetSliceVector([]aegis.EnvID{s.Env.ID})
		const rounds = 2000
		for i := 0; i < rounds; i++ {
			if !k.DispatchNative() {
				return false
			}
		}
		for i, c := range clients {
			ideal := float64(rounds) * float64(tickets[i]) / float64(sum)
			if math.Abs(float64(c.Quanta)-ideal) > float64(len(clients))+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
