package stride

import (
	"fmt"

	"exokernel/internal/aegis"
)

// Lottery is the randomized proportional-share scheduler of Waldspurger &
// Weihl [53] that stride scheduling improves on [54]: each quantum a
// winning ticket is drawn and its holder runs. Expected allocation matches
// the ticket ratio, but the throughput error grows as O(sqrt(allocations))
// where stride's is O(1) — the comparison the paper's §7.3 alludes to, and
// the AblationSched experiment quantifies. Like the stride scheduler it is
// unprivileged application code over directed yield; the random stream is
// a seeded generator (deterministic runs).
type Lottery struct {
	K   *aegis.Kernel
	Env *aegis.Env
	// Clients in registration order.
	Clients []*Client
	total   uint64
	rng     uint64
}

// NewLottery attaches a lottery scheduler to its own environment.
func NewLottery(k *aegis.Kernel, seed uint64) (*Lottery, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	l := &Lottery{K: k, Env: env, rng: seed | 1}
	env.NativeRun = l.dispatch
	return l, nil
}

// Add registers a sub-process with a ticket allocation.
func (l *Lottery) Add(env aegis.EnvID, tickets uint64) (*Client, error) {
	if tickets == 0 {
		return nil, fmt.Errorf("stride: zero tickets")
	}
	c := &Client{Env: env, Tickets: tickets}
	l.Clients = append(l.Clients, c)
	l.total += tickets
	return c, nil
}

func (l *Lottery) next() uint64 {
	l.rng = l.rng*6364136223846793005 + 1442695040888963407
	return l.rng >> 11
}

// dispatch draws a ticket and yields to the winner.
func (l *Lottery) dispatch(k *aegis.Kernel) {
	if l.total == 0 {
		return
	}
	k.M.Clock.Tick(uint64(6 + 2*len(l.Clients))) // draw + ticket walk
	win := l.next() % l.total
	var acc uint64
	for _, c := range l.Clients {
		acc += c.Tickets
		if win < acc {
			c.Quanta++
			k.Yield(c.Env)
			if e, ok := k.Env(c.Env); ok && e.NativeRun != nil {
				e.NativeRun(k)
			}
			return
		}
	}
}

// Shares reports each client's fraction of quanta so far.
func (l *Lottery) Shares() []float64 {
	var total uint64
	for _, c := range l.Clients {
		total += c.Quanta
	}
	out := make([]float64, len(l.Clients))
	if total == 0 {
		return out
	}
	for i, c := range l.Clients {
		out[i] = float64(c.Quanta) / float64(total)
	}
	return out
}
