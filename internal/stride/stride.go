// Package stride implements stride scheduling [54] as an *application
// level* scheduler (§7.3 of the paper): "The ExOS implementation maintains
// a list of processes for which it is responsible, along with the
// proportional share they are to receive of its time slice(s). On every
// time slice wakeup, the scheduler calculates which process is to be
// scheduled and yields to it directly."
//
// The kernel knows nothing about tickets or strides — it only sees the
// scheduler environment's directed yields. That an accurate
// proportional-share policy can live entirely in unprivileged code is the
// point of the experiment (Figure 3's 3:2:1 allocation).
package stride

import (
	"fmt"

	"exokernel/internal/aegis"
)

// stride1 is the stride constant: strides are stride1 / tickets.
const stride1 = 1 << 20

// Client is one scheduled sub-process.
type Client struct {
	Env     aegis.EnvID
	Tickets uint64
	stride  uint64
	pass    uint64
	// Quanta counts slices this client received.
	Quanta uint64
}

// Scheduler is the application-level proportional-share scheduler.
type Scheduler struct {
	K   *aegis.Kernel
	Env *aegis.Env
	// Clients in registration order.
	Clients []*Client
	// Dispatches counts scheduling decisions made.
	Dispatches uint64
}

// New attaches a stride scheduler to its own environment; the kernel's
// slice vector gives that environment slices, and the scheduler re-donates
// them to its clients.
func New(k *aegis.Kernel) (*Scheduler, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{K: k, Env: env}
	env.NativeRun = s.dispatch
	return s, nil
}

// Add registers a sub-process with a ticket allocation.
func (s *Scheduler) Add(env aegis.EnvID, tickets uint64) (*Client, error) {
	if tickets == 0 {
		return nil, fmt.Errorf("stride: zero tickets")
	}
	c := &Client{Env: env, Tickets: tickets, stride: stride1 / tickets}
	// New clients start at the minimum pass so they cannot be starved nor
	// monopolize (standard stride join rule).
	c.pass = s.minPass()
	s.Clients = append(s.Clients, c)
	return c, nil
}

func (s *Scheduler) minPass() uint64 {
	if len(s.Clients) == 0 {
		return 0
	}
	min := s.Clients[0].pass
	for _, c := range s.Clients[1:] {
		if c.pass < min {
			min = c.pass
		}
	}
	return min
}

// dispatch is the scheduler's slice body: pick the minimum-pass client,
// advance its pass by its stride, and yield the slice to it directly.
func (s *Scheduler) dispatch(k *aegis.Kernel) {
	if len(s.Clients) == 0 {
		return
	}
	// Scheduling decision: a handful of compares — application code,
	// charged like any other application code.
	k.M.Clock.Tick(uint64(4 + 2*len(s.Clients)))
	best := s.Clients[0]
	for _, c := range s.Clients[1:] {
		if c.pass < best.pass || (c.pass == best.pass && c.Tickets > best.Tickets) {
			best = c
		}
	}
	best.pass += best.stride
	best.Quanta++
	s.Dispatches++
	k.Yield(best.Env)
	if e, ok := k.Env(best.Env); ok && e.NativeRun != nil {
		// The donated slice runs the client's body.
		e.NativeRun(k)
	}
}

// Shares reports each client's fraction of quanta so far, in registration
// order.
func (s *Scheduler) Shares() []float64 {
	var total uint64
	for _, c := range s.Clients {
		total += c.Quanta
	}
	out := make([]float64, len(s.Clients))
	if total == 0 {
		return out
	}
	for i, c := range s.Clients {
		out[i] = float64(c.Quanta) / float64(total)
	}
	return out
}
