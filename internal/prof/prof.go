// Package prof is the deterministic simulated-cycle profiler: exact
// per-PC attribution of where a run's simulated cycles went, split into
// guest execution and the kernel operation classes serviced underneath
// each instruction. It is the measurement half of the trace-JIT plan
// (hot basic blocks must be found before they can be compiled) and the
// root-causing tool behind the bench regression gate: benchdiff can say
// a table got 5% slower, a profile diff says which PCs and which kernel
// paths paid for it.
//
// The contract is ktrace's: observation, never participation. The hooks
// never tick a simulated clock, so a run with profiling attached is
// cycle-identical to one without (pinned by TestProfilingIsFree), and
// both execution engines drive the same hooks at the same cycle stamps,
// so fast- and reference-engine profiles are byte-identical (pinned by
// the engine-equivalence quickcheck). Everything is counted in exact
// simulated cycles — no sampling, no host clocks — so the same seed
// always produces the same profile, and two profiles diff exactly.
package prof

// MaxClasses bounds the kernel operation-class dimension. aegis defines
// 8 classes today; fixed-size buckets keep the hot-path records
// allocation-free and leave room to grow without a schema change.
const MaxClasses = 16

// PCStat is the attribution record for one guest program counter.
type PCStat struct {
	// Count is how many times execution was attempted at this PC. A
	// faulting instruction that restarts counts each attempt — exactly
	// the executions the simulated machine performed.
	Count uint64
	// Cycles is inclusive: every cycle the clock advanced while this PC
	// was the current instruction, including kernel service (traps,
	// syscalls) nested underneath it. Guest-only time is Cycles minus
	// the Kernel buckets.
	Cycles uint64
	// Kernel buckets the nested kernel service by operation class.
	Kernel [MaxClasses]uint64
}

// envStat is one environment's attribution table.
type envStat struct {
	// pcs is indexed directly by PC — code segments are small and dense,
	// so a slice beats a map and keeps export order deterministic.
	pcs []PCStat
	// native buckets kernel work recorded while no guest instruction was
	// in flight: interrupt-time demux and ASH runs, and kernel services
	// invoked natively by library-OS Go code.
	native [MaxClasses]uint64
}

// Profiler collects one machine's profile. Attach with aegis.SetProf
// (which also wires the vm engines); a nil *Profiler everywhere means
// profiling off and costs the hot loop a single pointer test.
type Profiler struct {
	machine    string
	classNames []string

	envs []envStat // index = environment ID (== ASID by construction)

	// In-flight instruction state.
	inInstr bool
	curEnv  uint32
	curPC   uint32
	start   uint64

	// watermark is the highest cycle any kernel window has claimed.
	// Kernel paths nest (a yield syscall contains a context switch) and
	// each reports its full [start, end) on exit; clipping every window
	// to [max(start, watermark), end) makes the innermost class win its
	// own cycles, gives the outer class only its post-inner remainder,
	// and guarantees no cycle is attributed to two classes.
	watermark uint64
}

// New creates a profiler for one machine. classNames label the kernel
// operation classes by index (aegis.OpNames()); indexes past the slice
// render as "class<N>".
func New(machine string, classNames []string) *Profiler {
	return &Profiler{machine: machine, classNames: classNames}
}

// Machine returns the name the profiler was created with.
func (p *Profiler) Machine() string { return p.machine }

// env returns the mutable table for an environment, growing on demand.
func (p *Profiler) env(id uint32) *envStat {
	for int(id) >= len(p.envs) {
		p.envs = append(p.envs, envStat{})
	}
	return &p.envs[id]
}

// BeginInstr marks the start of one instruction execution attempt: the
// engines call it with the current PC, the running environment's address
// space ID, and the clock before any cost is charged. Never ticks the
// clock.
func (p *Profiler) BeginInstr(pc uint32, env uint8, cycle uint64) {
	p.inInstr = true
	p.curEnv = uint32(env)
	p.curPC = pc
	p.start = cycle
}

// EndInstr closes the attempt opened by BeginInstr, attributing every
// cycle the clock advanced in between — guest work plus any kernel
// service the instruction trapped into — to the instruction's PC.
func (p *Profiler) EndInstr(cycle uint64) {
	if !p.inInstr {
		return
	}
	p.inInstr = false
	e := p.env(p.curEnv)
	for int(p.curPC) >= len(e.pcs) {
		e.pcs = append(e.pcs, make([]PCStat, int(p.curPC)+1-len(e.pcs))...)
	}
	s := &e.pcs[p.curPC]
	s.Count++
	s.Cycles += cycle - p.start
}

// KernelWindow attributes one kernel operation's [start, end) cycle
// window to its class: under the in-flight instruction's PC when one is
// executing (a trap taken mid-instruction), otherwise to the
// environment's native bucket (interrupt-level work, library-OS calls).
// Nested windows are de-overlapped by the watermark — see the field
// comment. Never ticks the clock.
func (p *Profiler) KernelWindow(class uint8, env uint32, start, end uint64) {
	if end <= p.watermark {
		return // fully inside an inner window already claimed
	}
	if start < p.watermark {
		start = p.watermark
	}
	p.watermark = end
	d := end - start
	if class >= MaxClasses {
		class = MaxClasses - 1
	}
	if p.inInstr {
		e := p.env(p.curEnv)
		for int(p.curPC) >= len(e.pcs) {
			e.pcs = append(e.pcs, make([]PCStat, int(p.curPC)+1-len(e.pcs))...)
		}
		e.pcs[p.curPC].Kernel[class] += d
		return
	}
	p.env(env).native[class] += d
}

// KernelCycles is one kernel class's share of a site or bucket.
type KernelCycles struct {
	Class  string `json:"class"`
	Cycles uint64 `json:"cycles"`
}

// Site is one PC's attribution in a snapshot: only PCs that executed at
// least once appear, in ascending PC order.
type Site struct {
	PC     uint32         `json:"pc"`
	Count  uint64         `json:"count"`
	Cycles uint64         `json:"cycles"` // inclusive (guest + nested kernel)
	Kernel []KernelCycles `json:"kernel,omitempty"`
}

// Guest is the site's guest-only time: inclusive cycles minus nested
// kernel service.
func (s *Site) Guest() uint64 {
	g := s.Cycles
	for _, k := range s.Kernel {
		if k.Cycles >= g {
			return 0
		}
		g -= k.Cycles
	}
	return g
}

// EnvProfile is one environment's share of a machine profile.
type EnvProfile struct {
	Env    uint32         `json:"env"`
	Sites  []Site         `json:"sites"`
	Native []KernelCycles `json:"native,omitempty"`
}

// Profile is one machine's complete snapshot.
type Profile struct {
	Machine      string       `json:"machine"`
	Classes      []string     `json:"classes"`
	Instructions uint64       `json:"instructions"`
	Cycles       uint64       `json:"cycles"` // total attributed (inclusive + native)
	Envs         []EnvProfile `json:"envs"`
}

// className labels a class index.
func (p *Profiler) className(i int) string {
	if i < len(p.classNames) && p.classNames[i] != "" {
		return p.classNames[i]
	}
	return "class" + itoa(i)
}

// Snapshot renders the collected data as an export-ready Profile.
// Deterministic: environments ascend, sites ascend by PC, kernel
// buckets ascend by class index. Pure observation — snapshotting does
// not disturb collection.
func (p *Profiler) Snapshot() Profile {
	out := Profile{Machine: p.machine}
	classes := len(p.classNames)
	if classes == 0 {
		classes = MaxClasses
	}
	for i := 0; i < classes; i++ {
		out.Classes = append(out.Classes, p.className(i))
	}
	for id := range p.envs {
		e := &p.envs[id]
		ep := EnvProfile{Env: uint32(id)}
		for pc := range e.pcs {
			s := &e.pcs[pc]
			if s.Count == 0 && s.Cycles == 0 {
				continue
			}
			site := Site{PC: uint32(pc), Count: s.Count, Cycles: s.Cycles}
			for c := 0; c < MaxClasses; c++ {
				if s.Kernel[c] != 0 {
					site.Kernel = append(site.Kernel, KernelCycles{Class: p.className(c), Cycles: s.Kernel[c]})
				}
			}
			ep.Sites = append(ep.Sites, site)
			out.Instructions += s.Count
			out.Cycles += s.Cycles
		}
		for c := 0; c < MaxClasses; c++ {
			if e.native[c] != 0 {
				ep.Native = append(ep.Native, KernelCycles{Class: p.className(c), Cycles: e.native[c]})
				out.Cycles += e.native[c]
			}
		}
		if len(ep.Sites) == 0 && len(ep.Native) == 0 {
			continue
		}
		out.Envs = append(out.Envs, ep)
	}
	return out
}

// itoa avoids strconv in the one cold path that needs it (keeps the
// package import-free beyond encoding and io for the exporters).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
