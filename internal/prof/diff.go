package prof

import (
	"fmt"
	"io"
	"sort"
)

// Profile diffing: flatten two PROF files onto a common key space and
// rank cycle deltas. This is the regression root-causer — benchdiff
// says a table slowed down, the profile diff says which PCs and which
// kernel paths paid for it.

// DeltaSite is one attribution key's change between two profiles.
type DeltaSite struct {
	Key   string // "machine env frame", frame = pc | pc/class | native/class
	Old   uint64
	New   uint64
	Delta int64 // new - old, in cycles
}

// flatten maps every attribution site in a file to its cycle total.
// Guest time and kernel class time are separate keys so a diff can
// distinguish "the loop got longer" from "the loop now traps".
func flatten(f *File) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range f.Machines {
		for _, e := range m.Envs {
			for _, s := range e.Sites {
				base := fmt.Sprintf("%s env%d 0x%04x", m.Machine, e.Env, s.PC)
				if g := s.Guest(); g > 0 {
					out[base] += g
				}
				for _, k := range s.Kernel {
					out[base+"/"+k.Class] += k.Cycles
				}
			}
			for _, k := range e.Native {
				out[fmt.Sprintf("%s env%d native/%s", m.Machine, e.Env, k.Class)] += k.Cycles
			}
		}
	}
	return out
}

// Diff returns every key whose cycle total changed, ranked by absolute
// delta descending with key-ascending tie-break — deterministic for
// identical inputs.
func Diff(old, new *File) []DeltaSite {
	a, b := flatten(old), flatten(new)
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var out []DeltaSite
	for k := range keys {
		o, n := a[k], b[k]
		if o == n {
			continue
		}
		out = append(out, DeltaSite{Key: k, Old: o, New: n, Delta: int64(n) - int64(o)})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Delta, out[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// totalCycles sums all machine totals in a file.
func totalCycles(f *File) uint64 {
	var t uint64
	for _, m := range f.Machines {
		t += m.Cycles
	}
	return t
}

// RenderDiff prints the top cycle-delta sites between two profiles.
// Informational, never a gate: profiles are exact, so any intentional
// change moves them, and the reader decides what matters.
func RenderDiff(w io.Writer, old, new *File, top int) {
	if top <= 0 {
		top = 20
	}
	deltas := Diff(old, new)
	oldTotal, newTotal := totalCycles(old), totalCycles(new)
	fmt.Fprintf(w, "profile diff: total cycles %d -> %d (%+d)\n", oldTotal, newTotal, int64(newTotal)-int64(oldTotal))
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no per-site cycle deltas")
		return
	}
	n := len(deltas)
	if n > top {
		n = top
	}
	fmt.Fprintf(w, "top %d cycle-delta sites (of %d changed):\n", n, len(deltas))
	for i := 0; i < n; i++ {
		d := deltas[i]
		fmt.Fprintf(w, "  %+12d  %12d -> %-12d %s\n", d.Delta, d.Old, d.New, d.Key)
	}
}
