package prof

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"
)

// TestInstrAttribution: each Begin/End pair lands count and inclusive
// cycles on its PC, per env.
func TestInstrAttribution(t *testing.T) {
	p := New("m", []string{"syscall"})
	p.BeginInstr(3, 1, 100)
	p.EndInstr(104)
	p.BeginInstr(3, 1, 104)
	p.EndInstr(110)
	p.BeginInstr(7, 2, 110)
	p.EndInstr(111)
	s := p.Snapshot()
	if s.Instructions != 3 || s.Cycles != 11 {
		t.Fatalf("totals = %d instr %d cycles, want 3, 11", s.Instructions, s.Cycles)
	}
	if len(s.Envs) != 2 || s.Envs[0].Env != 1 || s.Envs[1].Env != 2 {
		t.Fatalf("envs = %+v", s.Envs)
	}
	site := s.Envs[0].Sites[0]
	if site.PC != 3 || site.Count != 2 || site.Cycles != 10 {
		t.Fatalf("site = %+v, want pc 3 count 2 cycles 10", site)
	}
}

// TestKernelWindowUnderInstr: a window reported while an instruction is
// in flight buckets under that instruction's PC, and the site's guest
// time excludes it.
func TestKernelWindowUnderInstr(t *testing.T) {
	p := New("m", []string{"syscall", "exception"})
	p.BeginInstr(5, 1, 0)
	p.KernelWindow(0, 9, 2, 30) // env arg ignored while in-instr
	p.EndInstr(32)
	s := p.Snapshot()
	site := s.Envs[0].Sites[0]
	if site.Cycles != 32 {
		t.Fatalf("inclusive cycles = %d, want 32", site.Cycles)
	}
	if len(site.Kernel) != 1 || site.Kernel[0].Class != "syscall" || site.Kernel[0].Cycles != 28 {
		t.Fatalf("kernel = %+v, want syscall=28", site.Kernel)
	}
	if g := site.Guest(); g != 4 {
		t.Fatalf("guest = %d, want 4", g)
	}
}

// TestWatermarkDeoverlap: nested kernel windows must not double-count.
// The inner class keeps its own cycles; the outer gets only its
// remainder after the inner's end.
func TestWatermarkDeoverlap(t *testing.T) {
	p := New("m", []string{"syscall", "ctx-switch"})
	p.BeginInstr(0, 1, 0)
	// Inner ctx-switch [10, 40) reports first (it returns first), outer
	// syscall [5, 50) reports second.
	p.KernelWindow(1, 1, 10, 40)
	p.KernelWindow(0, 1, 5, 50)
	p.EndInstr(60)
	site := p.Snapshot().Envs[0].Sites[0]
	var got [2]uint64
	for _, k := range site.Kernel {
		switch k.Class {
		case "syscall":
			got[0] = k.Cycles
		case "ctx-switch":
			got[1] = k.Cycles
		}
	}
	if got[1] != 30 {
		t.Fatalf("ctx-switch = %d, want 30 (its own window)", got[1])
	}
	if got[0] != 10 {
		t.Fatalf("syscall = %d, want 10 (the post-inner remainder of [40,50))", got[0])
	}
	// A window wholly inside already-claimed time contributes nothing.
	p2 := New("m", nil)
	p2.KernelWindow(0, 1, 0, 100)
	p2.KernelWindow(1, 1, 20, 80)
	s := p2.Snapshot()
	if s.Cycles != 100 {
		t.Fatalf("total = %d, want 100 (inner window fully absorbed)", s.Cycles)
	}
}

// TestNativeAttribution: windows outside any instruction land on the
// responsible env's native bucket.
func TestNativeAttribution(t *testing.T) {
	p := New("m", []string{"syscall", "exception", "stlb", "prot", "pkt-demux"})
	p.KernelWindow(4, 3, 100, 150)
	s := p.Snapshot()
	if len(s.Envs) != 1 || s.Envs[0].Env != 3 {
		t.Fatalf("envs = %+v", s.Envs)
	}
	n := s.Envs[0].Native
	if len(n) != 1 || n[0].Class != "pkt-demux" || n[0].Cycles != 50 {
		t.Fatalf("native = %+v, want pkt-demux=50", n)
	}
	if s.Cycles != 50 {
		t.Fatalf("total cycles = %d, want 50", s.Cycles)
	}
}

// TestHotBlocks: consecutive PCs with equal counts coalesce; ranking is
// score-descending with deterministic tie-breaks.
func TestHotBlocks(t *testing.T) {
	m := Profile{Machine: "m", Envs: []EnvProfile{{
		Env: 1,
		Sites: []Site{
			{PC: 2, Count: 10, Cycles: 10},
			{PC: 3, Count: 10, Cycles: 20},
			{PC: 4, Count: 10, Cycles: 10},
			{PC: 5, Count: 1, Cycles: 5}, // count changes: new block
			{PC: 9, Count: 7, Cycles: 7}, // gap: new block
		},
	}}}
	blocks := ExtractHotBlocks([]Profile{m}, 0)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %+v, want 3", blocks)
	}
	b := blocks[0]
	if b.Start != 2 || b.End != 4 || b.Count != 10 || b.Cycles != 40 || b.Score != 400 {
		t.Fatalf("top block = %+v", b)
	}
	if blocks[1].Start != 9 || blocks[2].Start != 5 {
		t.Fatalf("ranking = %+v", blocks)
	}
}

// TestJSONRoundTrip: Write then Parse reproduces the file, and Validate
// rejects incoherent totals.
func TestJSONRoundTrip(t *testing.T) {
	p := New("m1", []string{"syscall"})
	p.BeginInstr(1, 1, 0)
	p.KernelWindow(0, 1, 2, 8)
	p.EndInstr(10)
	f := Collect("test", []string{"w"}, []Profile{p.Snapshot()}, 10)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}

	bad := *f
	bad.Machines = append([]Profile(nil), f.Machines...)
	bad.Machines[0].Cycles++
	if err := Validate(&bad); err == nil {
		t.Fatal("Validate accepted incoherent machine totals")
	}
	bad2 := *f
	bad2.Schema = "nope"
	if err := Validate(&bad2); err == nil {
		t.Fatal("Validate accepted wrong schema")
	}
}

// TestPprofEncodes: the protobuf is valid gzip, structurally decodable
// protobuf, and deterministic.
func TestPprofEncodes(t *testing.T) {
	p := New("m1", []string{"syscall"})
	p.BeginInstr(1, 1, 0)
	p.KernelWindow(0, 1, 2, 8)
	p.EndInstr(10)
	p.KernelWindow(0, 2, 20, 25)
	f := Collect("test", nil, []Profile{p.Snapshot()}, 10)

	render := func() []byte {
		var buf bytes.Buffer
		if err := WritePprof(&buf, f); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("pprof output not deterministic")
	}

	gz, err := gzip.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	// Structural scan: every top-level field must parse as valid
	// tag+payload, and the fields used must be ones profile.proto
	// defines.
	fields := map[uint64]int{}
	for i := 0; i < len(raw); {
		tag, n := uvarint(raw[i:])
		if n <= 0 {
			t.Fatalf("bad tag at %d", i)
		}
		i += n
		field, wire := tag>>3, tag&7
		fields[field]++
		switch wire {
		case 0:
			_, n := uvarint(raw[i:])
			if n <= 0 {
				t.Fatalf("bad varint at %d", i)
			}
			i += n
		case 2:
			l, n := uvarint(raw[i:])
			if n <= 0 || i+n+int(l) > len(raw) {
				t.Fatalf("bad length at %d", i)
			}
			i += n + int(l)
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
	for _, want := range []uint64{1, 2, 4, 5, 6, 11, 12} {
		if fields[want] == 0 {
			t.Fatalf("missing profile.proto field %d (have %v)", want, fields)
		}
	}
	if fields[6] < 3 {
		t.Fatalf("string table suspiciously small: %d entries", fields[6])
	}
}

// uvarint is a test-local decoder (the encoder lives in pprof.go).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

// TestDiff: deltas are exact, ranked by |delta| with stable tie-break,
// and distinguish guest from kernel-class changes at the same PC.
func TestDiff(t *testing.T) {
	mk := func(guest, kernel uint64) *File {
		p := New("m", []string{"syscall"})
		p.BeginInstr(4, 1, 0)
		p.KernelWindow(0, 1, guest, guest+kernel)
		p.EndInstr(guest + kernel)
		return Collect("t", nil, []Profile{p.Snapshot()}, 0)
	}
	old, new_ := mk(10, 5), mk(10, 50)
	deltas := Diff(old, new_)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v, want 1 (guest unchanged)", deltas)
	}
	if !strings.Contains(deltas[0].Key, "0x0004/syscall") || deltas[0].Delta != 45 {
		t.Fatalf("delta = %+v", deltas[0])
	}
	if got := Diff(old, old); len(got) != 0 {
		t.Fatalf("self-diff = %+v, want empty", got)
	}
	var buf bytes.Buffer
	RenderDiff(&buf, old, new_, 10)
	for _, needle := range []string{"profile diff: total cycles 15 -> 60 (+45)", "0x0004/syscall"} {
		if !strings.Contains(buf.String(), needle) {
			t.Fatalf("render missing %q:\n%s", needle, buf.String())
		}
	}
}

// TestFoldedAndChrome: exporters are deterministic and carry the guest/
// kernel split.
func TestFoldedAndChrome(t *testing.T) {
	p := New("A", []string{"syscall"})
	p.BeginInstr(2, 1, 0)
	p.KernelWindow(0, 1, 3, 9)
	p.EndInstr(10)
	p.KernelWindow(0, 1, 20, 24)
	f := Collect("t", nil, []Profile{p.Snapshot()}, 0)

	var folded bytes.Buffer
	if err := WriteFolded(&folded, f); err != nil {
		t.Fatal(err)
	}
	want := "A;env1;0x0002 4\nA;env1;0x0002;syscall 6\nA;env1;native;syscall 4\n"
	if folded.String() != want {
		t.Fatalf("folded:\n%q\nwant\n%q", folded.String(), want)
	}

	var chrome bytes.Buffer
	if err := WriteChrome(&chrome, f); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"name":"0x0002"`, `"name":"syscall"`, `"name":"native:syscall"`, `"ph":"X"`} {
		if !strings.Contains(chrome.String(), needle) {
			t.Fatalf("chrome missing %q:\n%s", needle, chrome.String())
		}
	}
}

// TestCandidates: the JIT candidate view applies the tier's selection
// rule — entry count at threshold, minimum run length — and preserves
// the hot-block ranking.
func TestCandidates(t *testing.T) {
	f := &File{
		Schema:        SchemaName,
		SchemaVersion: SchemaVersion,
		HotBlocks: []HotBlock{
			{Machine: "m", Env: 1, Start: 2, End: 5, Count: 100, Cycles: 400, Score: 40000},
			{Machine: "m", Env: 1, Start: 9, End: 9, Count: 500, Cycles: 500, Score: 250000}, // too short
			{Machine: "m", Env: 1, Start: 20, End: 23, Count: 3, Cycles: 12, Score: 36},      // too cold
		},
	}
	cands := SelectCandidates(f, 16)
	if len(cands) != 3 {
		t.Fatalf("candidates = %+v, want 3", cands)
	}
	if !cands[0].Hot || cands[0].Len != 4 {
		t.Errorf("block 0 = %+v, want hot len 4", cands[0])
	}
	if cands[1].Hot {
		t.Errorf("single-instruction block selected: %+v", cands[1])
	}
	if cands[2].Hot {
		t.Errorf("cold block selected at threshold 16: %+v", cands[2])
	}
	// threshold 0 = the tier's default; 3 < 16 stays cold.
	if c := SelectCandidates(f, 0); c[2].Hot {
		t.Errorf("cold block selected at default threshold: %+v", c[2])
	}
	var buf bytes.Buffer
	if err := WriteCandidates(&buf, f, 16, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"1 of 3 blocks clear threshold 16", "jit  m/1", "0x2..0x5"} {
		if !strings.Contains(out, needle) {
			t.Errorf("candidate view missing %q:\n%s", needle, out)
		}
	}
}
