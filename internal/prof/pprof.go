package prof

import (
	"compress/gzip"
	"fmt"
	"io"
)

// pprof protobuf export, hand-encoded against the stable profile.proto
// wire format (the module takes no dependencies). Two sample types —
// executions/count and cycles/cycles — with leaf-first stacks:
//
//	pc            -> env@machine            guest execution
//	aegis:class -> pc -> env@machine        kernel service under an instruction
//	aegis:class -> native -> env@machine    interrupt/library-OS kernel work
//
// time_nanos is deliberately left unset and gzip carries a zero mtime,
// so the bytes are a pure function of the profile: same seed, same
// file.

// pbuf is a minimal protobuf writer.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// varint emits field as wire-type 0; zero values are omitted per proto3.
func (p *pbuf) varint(field int, v uint64) {
	if v == 0 {
		return
	}
	p.uvarint(uint64(field)<<3 | 0)
	p.uvarint(v)
}

// bytes emits field as a length-delimited record.
func (p *pbuf) bytes(field int, data []byte) {
	p.uvarint(uint64(field)<<3 | 2)
	p.uvarint(uint64(len(data)))
	p.b = append(p.b, data...)
}

// packed emits a repeated varint field in packed encoding.
func (p *pbuf) packed(field int, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vals {
		inner.uvarint(v)
	}
	p.bytes(field, inner.b)
}

// pprofBuilder interns strings/functions/locations and accumulates
// samples.
type pprofBuilder struct {
	strings  []string
	stridx   map[string]uint64
	funcs    pbuf // encoded Function messages (field 5)
	locs     pbuf // encoded Location messages (field 4)
	locIdx   map[string]uint64
	nextID   uint64
	samples  pbuf // encoded Sample messages (field 2)
	fileName map[string]string
}

func newPprofBuilder() *pprofBuilder {
	b := &pprofBuilder{stridx: map[string]uint64{}, locIdx: map[string]uint64{}}
	b.str("") // index 0 must be the empty string
	return b
}

func (b *pprofBuilder) str(s string) uint64 {
	if i, ok := b.stridx[s]; ok {
		return i
	}
	i := uint64(len(b.strings))
	b.strings = append(b.strings, s)
	b.stridx[s] = i
	return i
}

// loc interns a frame by display name, creating its Function and
// Location records on first use. line carries the guest PC for code
// frames so pprof's source view shows the address.
func (b *pprofBuilder) loc(name, filename string, line uint64) uint64 {
	if id, ok := b.locIdx[name]; ok {
		return id
	}
	b.nextID++
	id := b.nextID
	b.locIdx[name] = id

	var fn pbuf
	fn.varint(1, id) // function id (shared id space is fine: referenced per-table)
	fn.varint(2, b.str(name))
	fn.varint(3, b.str(name))
	if filename != "" {
		fn.varint(4, b.str(filename))
	}
	b.funcs.bytes(5, fn.b)

	var line1 pbuf
	line1.varint(1, id)
	line1.varint(2, line)
	var loc pbuf
	loc.varint(1, id)
	loc.bytes(4, line1.b)
	b.locs.bytes(4, loc.b)
	return id
}

// sample appends one leaf-first stack with its [executions, cycles]
// values.
func (b *pprofBuilder) sample(stack []uint64, count, cycles uint64) {
	if count == 0 && cycles == 0 {
		return
	}
	var s pbuf
	s.packed(1, stack)
	s.packed(2, []uint64{count, cycles})
	b.samples.bytes(2, s.b)
}

// WritePprof encodes the file as a gzipped pprof protobuf loadable by
// `go tool pprof`.
func WritePprof(w io.Writer, f *File) error {
	b := newPprofBuilder()
	for _, m := range f.Machines {
		for _, e := range m.Envs {
			envFrame := b.loc(fmt.Sprintf("env%d@%s", e.Env, m.Machine), m.Machine, 0)
			for _, s := range e.Sites {
				pcFrame := b.loc(fmt.Sprintf("%s/env%d/0x%04x", m.Machine, e.Env, s.PC), m.Machine, uint64(s.PC))
				b.sample([]uint64{pcFrame, envFrame}, s.Count, s.Guest())
				for _, k := range s.Kernel {
					kFrame := b.loc("aegis:"+k.Class, "", 0)
					b.sample([]uint64{kFrame, pcFrame, envFrame}, 0, k.Cycles)
				}
			}
			if len(e.Native) > 0 {
				natFrame := b.loc(fmt.Sprintf("%s/env%d/native", m.Machine, e.Env), m.Machine, 0)
				for _, k := range e.Native {
					kFrame := b.loc("aegis:"+k.Class, "", 0)
					b.sample([]uint64{kFrame, natFrame, envFrame}, 0, k.Cycles)
				}
			}
		}
	}

	var p pbuf
	// sample_type: executions/count, cycles/cycles.
	var st1, st2 pbuf
	st1.varint(1, b.str("executions"))
	st1.varint(2, b.str("count"))
	st2.varint(1, b.str("cycles"))
	st2.varint(2, b.str("cycles"))
	p.bytes(1, st1.b)
	p.bytes(1, st2.b)
	p.b = append(p.b, b.samples.b...)
	p.b = append(p.b, b.locs.b...)
	p.b = append(p.b, b.funcs.b...)
	for _, s := range b.strings {
		p.bytes(6, []byte(s))
	}
	// period: one cycle per cycle; default sample type: cycles.
	var pt pbuf
	pt.varint(1, b.stridx["cycles"])
	pt.varint(2, b.stridx["cycles"])
	p.bytes(11, pt.b)
	p.varint(12, 1)
	p.varint(14, b.stridx["cycles"])

	gz := gzip.NewWriter(w) // zero ModTime => deterministic bytes
	if _, err := gz.Write(p.b); err != nil {
		return err
	}
	return gz.Close()
}
