package prof

import (
	"fmt"
	"io"
)

// JIT candidate view: project a profile's hot-block ranking onto the
// trace-JIT tier's selection rule (vm/jit.go) so thresholds can be tuned
// from a committed PROF file instead of by re-running workloads. The
// profiler's blocks are maximal equal-count PC runs — the straight-line
// skeleton the JIT's superblocks grow from — so a block's count is the
// entry count its first PC would accumulate, and `hot` is exactly the
// compile decision the tier would make at the given threshold.

// CandidateMinLen mirrors vm's jitMinLen: runs shorter than this are
// never compiled (the per-pass guards cost more than they save).
const CandidateMinLen = 2

// CandidateDefaultThreshold mirrors vm's jitDefaultThreshold, the
// block-entry count at which the tier compiles when no override is set.
const CandidateDefaultThreshold = 16

// Candidate is one block judged against the JIT selection rule.
type Candidate struct {
	HotBlock
	Len uint32 // instructions in the run (End − Start + 1)
	Hot bool   // clears the threshold and the minimum length
}

// SelectCandidates applies the JIT selection rule to a profile's hot
// blocks at the given entry threshold (0 = the tier's default). The
// returned slice preserves the profile's deterministic score ranking and
// includes cold blocks (Hot=false) so near-misses are visible when
// tuning.
func SelectCandidates(f *File, threshold uint64) []Candidate {
	if threshold == 0 {
		threshold = CandidateDefaultThreshold
	}
	cands := make([]Candidate, 0, len(f.HotBlocks))
	for _, b := range f.HotBlocks {
		c := Candidate{HotBlock: b, Len: b.End - b.Start + 1}
		c.Hot = c.Len >= CandidateMinLen && b.Count >= threshold
		cands = append(cands, c)
	}
	return cands
}

// WriteCandidates renders the candidate view as text: one row per block,
// selection verdict first, ranked by score. top bounds the rows (0 =
// all).
func WriteCandidates(w io.Writer, f *File, threshold uint64, top int) error {
	if threshold == 0 {
		threshold = CandidateDefaultThreshold
	}
	cands := SelectCandidates(f, threshold)
	hot := 0
	for _, c := range cands {
		if c.Hot {
			hot++
		}
	}
	if _, err := fmt.Fprintf(w, "jit candidates: %d of %d blocks clear threshold %d (min len %d)\n",
		hot, len(cands), threshold, CandidateMinLen); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-16s %-15s %5s %8s %12s %16s\n",
		"sel", "machine/env", "pc", "len", "count", "cycles", "score"); err != nil {
		return err
	}
	n := len(cands)
	if top > 0 && n > top {
		n = top
	}
	for _, c := range cands[:n] {
		sel := "-"
		if c.Hot {
			sel = "jit"
		}
		me := fmt.Sprintf("%s/%d", c.Machine, c.Env)
		pc := fmt.Sprintf("%#x..%#x", c.Start, c.End)
		if _, err := fmt.Fprintf(w, "%-4s %-16s %-15s %5d %8d %12d %16d\n",
			sel, me, pc, c.Len, c.Count, c.Cycles, c.Score); err != nil {
			return err
		}
	}
	return nil
}
