package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PROF JSON: the versioned on-disk profile format, mirroring the BENCH
// and SOAK schemas. A file carries one or more machine profiles (the
// fleet dimension) plus the deterministic hot-block ranking so a
// committed baseline doubles as the trace-JIT candidate list.

// SchemaName is the discriminator for PROF JSON files.
const SchemaName = "aegis-prof"

// SchemaVersion is bumped on incompatible changes to File.
const SchemaVersion = 1

// HotBlock is a maximal straight-line run of guest PCs that executed
// the same number of times — the profiler's basic-block approximation,
// exact for code without internal branch targets. Score ranks JIT
// candidacy: blocks both hot (count) and heavy (cycles) float to the
// top.
type HotBlock struct {
	Machine string `json:"machine"`
	Env     uint32 `json:"env"`
	Start   uint32 `json:"start"`
	End     uint32 `json:"end"` // inclusive
	Count   uint64 `json:"count"`
	Cycles  uint64 `json:"cycles"`
	Score   uint64 `json:"score"` // count * cycles
}

// File is a complete PROF JSON document.
type File struct {
	Schema        string     `json:"schema"`
	SchemaVersion int        `json:"schema_version"`
	Platform      string     `json:"platform"`
	Workloads     []string   `json:"workloads,omitempty"`
	Machines      []Profile  `json:"machines"`
	HotBlocks     []HotBlock `json:"hot_blocks,omitempty"`
}

// Collect assembles a File from machine snapshots: hot blocks are
// extracted and ranked across the whole fleet, keeping the top
// maxBlocks (0 = keep all).
func Collect(platform string, workloads []string, machines []Profile, maxBlocks int) *File {
	f := &File{
		Schema:        SchemaName,
		SchemaVersion: SchemaVersion,
		Platform:      platform,
		Workloads:     workloads,
		Machines:      machines,
	}
	f.HotBlocks = ExtractHotBlocks(machines, maxBlocks)
	return f
}

// ExtractHotBlocks finds every maximal run of consecutive PCs with
// identical nonzero execution counts within each env, ranks by score
// descending (ties: cycles descending, then machine/env/start
// ascending — fully deterministic), and returns the top max (0 = all).
func ExtractHotBlocks(machines []Profile, max int) []HotBlock {
	var blocks []HotBlock
	for _, m := range machines {
		for _, e := range m.Envs {
			var cur *HotBlock
			for _, s := range e.Sites {
				if cur != nil && s.PC == cur.End+1 && s.Count == cur.Count {
					cur.End = s.PC
					cur.Cycles += s.Cycles
					continue
				}
				if cur != nil {
					cur.Score = cur.Count * cur.Cycles
					blocks = append(blocks, *cur)
				}
				cur = &HotBlock{Machine: m.Machine, Env: e.Env, Start: s.PC, End: s.PC, Count: s.Count, Cycles: s.Cycles}
			}
			if cur != nil {
				cur.Score = cur.Count * cur.Cycles
				blocks = append(blocks, *cur)
			}
		}
	}
	sort.Slice(blocks, func(i, j int) bool {
		a, b := blocks[i], blocks[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.Env != b.Env {
			return a.Env < b.Env
		}
		return a.Start < b.Start
	})
	if max > 0 && len(blocks) > max {
		blocks = blocks[:max]
	}
	return blocks
}

// Write emits the file as indented JSON with a trailing newline.
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Parse reads and validates a PROF JSON document.
func Parse(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("prof: parse: %w", err)
	}
	if err := Validate(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks a File for structural coherence: right schema and
// version, sites sorted and unique per env, hot-block ranges sane, and
// machine totals matching their sites.
func Validate(f *File) error {
	if f.Schema != SchemaName {
		return fmt.Errorf("prof: schema %q, want %q", f.Schema, SchemaName)
	}
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("prof: schema version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	for mi := range f.Machines {
		m := &f.Machines[mi]
		if m.Machine == "" {
			return fmt.Errorf("prof: machine %d: empty name", mi)
		}
		var instr, cycles uint64
		for ei := range m.Envs {
			e := &m.Envs[ei]
			lastPC := int64(-1)
			for _, s := range e.Sites {
				if int64(s.PC) <= lastPC {
					return fmt.Errorf("prof: machine %q env %d: sites not strictly ascending at pc %#x", m.Machine, e.Env, s.PC)
				}
				lastPC = int64(s.PC)
				if s.Count == 0 && s.Cycles == 0 {
					return fmt.Errorf("prof: machine %q env %d: zero site at pc %#x", m.Machine, e.Env, s.PC)
				}
				instr += s.Count
				cycles += s.Cycles
			}
			for _, k := range e.Native {
				cycles += k.Cycles
			}
		}
		if instr != m.Instructions || cycles != m.Cycles {
			return fmt.Errorf("prof: machine %q: totals instructions=%d cycles=%d disagree with sites (%d, %d)",
				m.Machine, m.Instructions, m.Cycles, instr, cycles)
		}
	}
	for _, b := range f.HotBlocks {
		if b.End < b.Start {
			return fmt.Errorf("prof: hot block %q env %d: end %#x < start %#x", b.Machine, b.Env, b.End, b.Start)
		}
		if b.Score != b.Count*b.Cycles {
			return fmt.Errorf("prof: hot block %q env %d pc %#x: score %d != count*cycles", b.Machine, b.Env, b.Start, b.Score)
		}
	}
	return nil
}
