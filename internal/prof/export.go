package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exporters. All output is deterministic: iteration follows the sorted
// order Snapshot already guarantees, and any re-ranking breaks ties on
// stable keys.

// textSite is one row of the WriteText top-sites table.
type textSite struct {
	machine string
	env     uint32
	site    Site
}

// WriteText renders the human-readable profile view: per-machine
// summary, the top sites by inclusive cycles, the hot-block ranking,
// and fleet-wide kernel class totals.
func WriteText(w io.Writer, f *File, top int) error {
	if top <= 0 {
		top = 20
	}
	fmt.Fprintf(w, "%s v%d  platform=%q", f.Schema, f.SchemaVersion, f.Platform)
	if len(f.Workloads) > 0 {
		fmt.Fprintf(w, "  workloads=%s", strings.Join(f.Workloads, ","))
	}
	fmt.Fprintln(w)
	var sites []textSite
	classTotals := map[string]uint64{}
	var classOrder []string
	addClass := func(name string, cycles uint64) {
		if _, ok := classTotals[name]; !ok {
			classOrder = append(classOrder, name)
		}
		classTotals[name] += cycles
	}
	for _, m := range f.Machines {
		fmt.Fprintf(w, "machine %-8s envs=%d instructions=%d cycles=%d\n", m.Machine, len(m.Envs), m.Instructions, m.Cycles)
		for _, e := range m.Envs {
			for _, s := range e.Sites {
				sites = append(sites, textSite{m.Machine, e.Env, s})
				for _, k := range s.Kernel {
					addClass(k.Class, k.Cycles)
				}
			}
			for _, k := range e.Native {
				addClass(k.Class, k.Cycles)
			}
		}
	}
	sort.SliceStable(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.site.Cycles != b.site.Cycles {
			return a.site.Cycles > b.site.Cycles
		}
		if a.machine != b.machine {
			return a.machine < b.machine
		}
		if a.env != b.env {
			return a.env < b.env
		}
		return a.site.PC < b.site.PC
	})
	n := len(sites)
	if n > top {
		n = top
	}
	fmt.Fprintf(w, "top %d sites (of %d, by inclusive cycles):\n", n, len(sites))
	fmt.Fprintf(w, "  %-8s %-4s %-8s %10s %12s %12s  %s\n", "machine", "env", "pc", "count", "cycles", "guest", "kernel")
	for i := 0; i < n; i++ {
		s := sites[i]
		var kparts []string
		for _, k := range s.site.Kernel {
			kparts = append(kparts, fmt.Sprintf("%s=%d", k.Class, k.Cycles))
		}
		kstr := "-"
		if len(kparts) > 0 {
			kstr = strings.Join(kparts, " ")
		}
		fmt.Fprintf(w, "  %-8s %-4d 0x%04x   %10d %12d %12d  %s\n",
			s.machine, s.env, s.site.PC, s.site.Count, s.site.Cycles, s.site.Guest(), kstr)
	}
	nb := len(f.HotBlocks)
	if nb > top {
		nb = top
	}
	fmt.Fprintf(w, "hot blocks (top %d of %d, score = count x cycles):\n", nb, len(f.HotBlocks))
	for i := 0; i < nb; i++ {
		b := f.HotBlocks[i]
		fmt.Fprintf(w, "  %-8s env%-3d 0x%04x-0x%04x count=%d cycles=%d score=%d\n",
			b.Machine, b.Env, b.Start, b.End, b.Count, b.Cycles, b.Score)
	}
	if len(classOrder) > 0 {
		sort.Strings(classOrder)
		fmt.Fprintln(w, "kernel class totals:")
		for _, name := range classOrder {
			fmt.Fprintf(w, "  %-12s %12d\n", name, classTotals[name])
		}
	}
	return nil
}

// WriteFolded emits the folded-stack flame format (one
// "frame;frame;frame value" line per stack) consumed by flamegraph.pl
// and speedscope. Guest time folds under machine;envN;pc, nested
// kernel service one frame deeper under its class, and native kernel
// work under a synthetic "native" frame.
func WriteFolded(w io.Writer, f *File) error {
	for _, m := range f.Machines {
		for _, e := range m.Envs {
			for _, s := range e.Sites {
				if g := s.Guest(); g > 0 {
					fmt.Fprintf(w, "%s;env%d;0x%04x %d\n", m.Machine, e.Env, s.PC, g)
				}
				for _, k := range s.Kernel {
					fmt.Fprintf(w, "%s;env%d;0x%04x;%s %d\n", m.Machine, e.Env, s.PC, k.Class, k.Cycles)
				}
			}
			for _, k := range e.Native {
				fmt.Fprintf(w, "%s;env%d;native;%s %d\n", m.Machine, e.Env, k.Class, k.Cycles)
			}
		}
	}
	return nil
}

// WriteChrome emits a synthetic flame strip as Chrome trace_event JSON
// (load in Perfetto/chrome://tracing): one process per machine, one
// thread per env, sites laid out back-to-back in PC order with their
// kernel service stacked beneath. Timestamps are cumulative cycles —
// a spatial profile view, not a timeline.
func WriteChrome(w io.Writer, f *File) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(name string, pid int, tid uint32, ts, dur uint64) {
		if !first {
			io.WriteString(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, `  {"name":%q,"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d}`, name, pid, tid, ts, dur)
	}
	for pid, m := range f.Machines {
		emit("machine "+m.Machine, pid, 0, 0, 0)
		for _, e := range m.Envs {
			var pos uint64
			for _, s := range e.Sites {
				emit(fmt.Sprintf("0x%04x", s.PC), pid, e.Env, pos, s.Cycles)
				kpos := pos + s.Guest()
				for _, k := range s.Kernel {
					emit(k.Class, pid, e.Env, kpos, k.Cycles)
					kpos += k.Cycles
				}
				pos += s.Cycles
			}
			for _, k := range e.Native {
				emit("native:"+k.Class, pid, e.Env, pos, k.Cycles)
				pos += k.Cycles
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
