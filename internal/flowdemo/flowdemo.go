// Package flowdemo is the deterministic cross-machine request scenario
// behind cmd/exoflow: two simulated machines on one Ethernet segment,
// where every request starts in a client environment on machine A,
// crosses the wire to a front-end environment on machine B, fans into a
// protected-control-transfer RPC to a backend environment on B, and
// returns over the wire to A. A final trio of requests covers the other
// substrate paths: an ASH echo (kernel-resident fast path), a DSM write
// fault whose page transfer crosses the wire, and a swap eviction plus
// refault through the application-level pager — so every kind of wait
// the simulator models shows up in one causal forest.
//
// Everything is keyed by the seed (span-recorder salts, payload bytes);
// the simulation is single-threaded and wall-clock free, so the same
// seed always produces byte-identical span trees — and a run with span
// collection disabled is cycle-identical to one with it enabled
// (TestFlowSpanCollectionIsFree), the observation contract the rest of
// the repo pins.
package flowdemo

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/fleet"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
	"exokernel/internal/prof"
)

// Config parameterizes one scenario run.
type Config struct {
	// Seed keys span-recorder salts and payload contents.
	Seed uint64
	// Requests is how many client→front→backend→client round trips to
	// issue (default 3). Three substrate requests — ASH echo, DSM page
	// transfer, swap eviction + refault — always follow them.
	Requests int
	// DisableSpans runs the identical schedule without span recorders —
	// the "tracing is free" control arm.
	DisableSpans bool
	// SpanCap sizes each machine's span ring (default 1024).
	SpanCap int
	// Prof, when non-nil, is called with each machine's name ("A", "B")
	// and may return a cycle profiler to attach — the profiling-is-free
	// control arm at scenario scale.
	Prof func(name string) *prof.Profiler
}

// Result is the finished world: the bus (machines registered as "A" and
// "B", span recorders attached) plus the verdicts the tests pin.
type Result struct {
	Bus            *fleet.Bus
	SpansA, SpansB *ktrace.SpanRecorder
	CyclesA        uint64
	CyclesB        uint64
	Replies        int  // RPC replies that came back with the right sum
	EchoOK         bool // the ASH echo round trip returned the payload
	DSMOK          bool // the DSM write fault pulled ownership across the wire
	SwapOK         bool // the pager evicted and refaulted the tracked page
}

const (
	portClient = 7000
	portFront  = 80
	portEcho   = 7
	portDSM    = 3111
	procSum    = 1
	payloadLen = 64
	dsmVA      = 0x3000_0000
	swapVA     = 0x2000_0000
)

// splitmix is the scenario's own deterministic stream (payload bytes).
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Run executes the scenario and returns its result.
func Run(cfg Config) (*Result, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 3
	}
	if cfg.SpanCap == 0 {
		cfg.SpanCap = 1024
	}

	seg := ether.NewSegment()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	kb := aegis.New(mb)
	seg.Attach(ma)
	seg.Attach(mb)

	res := &Result{Bus: fleet.NewBus()}
	recA, recB := ktrace.New(256), ktrace.New(256)
	ka.SetTracer(recA)
	kb.SetTracer(recB)
	res.Bus.Register("A", ma, ka, recA)
	res.Bus.Register("B", mb, kb, recB)
	if !cfg.DisableSpans {
		res.SpansA = ktrace.NewSpans(cfg.SpanCap, cfg.Seed^0xA11CE)
		res.SpansB = ktrace.NewSpans(cfg.SpanCap, cfg.Seed^0xB0B)
		ka.SetSpans(res.SpansA)
		kb.SetSpans(res.SpansB)
		res.Bus.AttachSpans("A", res.SpansA)
		res.Bus.AttachSpans("B", res.SpansB)
	}
	if cfg.Prof != nil {
		if p := cfg.Prof("A"); p != nil {
			res.Bus.AttachProf("A", p)
		}
		if p := cfg.Prof("B"); p != nil {
			res.Bus.AttachProf("B", p)
		}
	}

	macA := pkt.Addr{0x02, 0, 0, 0, 0, 0xA}
	macB := pkt.Addr{0x02, 0, 0, 0, 0, 0xB}
	na := exos.NewNet(ka, macA, 0x0A000001)
	nb := exos.NewNet(kb, macB, 0x0A000002)

	osA, err := exos.Boot(ka)
	if err != nil {
		return nil, err
	}
	front, err := exos.Boot(kb)
	if err != nil {
		return nil, err
	}
	backend, err := exos.Boot(kb)
	if err != nil {
		return nil, err
	}
	echoOS, err := exos.Boot(kb)
	if err != nil {
		return nil, err
	}

	sockA, err := na.Bind(osA, portClient)
	if err != nil {
		return nil, err
	}
	sockB, err := nb.Bind(front, portFront)
	if err != nil {
		return nil, err
	}
	sockE, err := nb.Bind(echoOS, portEcho)
	if err != nil {
		return nil, err
	}
	if err := sockE.AttachEchoASH(); err != nil {
		return nil, err
	}

	// Backend procedure: sum the four argument words after a fixed slab
	// of simulated work, so the serve span has visible width.
	srv := exos.NewServer(backend)
	srv.Register(procSum, func(args [4]uint32) [2]uint32 {
		kb.M.Clock.Tick(400)
		return [2]uint32{args[0] + args[1] + args[2] + args[3], 0}
	})
	rpc := exos.NewClient(front, srv, false)

	rng := splitmix{s: cfg.Seed ^ 0xF10D}
	payload := make([]byte, payloadLen)

	for i := 0; i < cfg.Requests; i++ {
		for j := range payload {
			payload[j] = byte(rng.next())
		}
		req := osA.BeginRequest(uint64(i + 1))
		sockA.SendTo(macB, 0x0A000002, portFront, payload)

		// Front end: drain the request (adopting its trace), consult the
		// backend over PCT, and send the answer home.
		data, flow, ok := sockB.TryRecv()
		if !ok {
			return res, fmt.Errorf("flowdemo: request %d never reached the front end", i)
		}
		var args [4]uint32
		for w := 0; w < 4; w++ {
			args[w] = binary.BigEndian.Uint32(data[4*w:])
		}
		out, err := rpc.Call(procSum, args)
		if err != nil {
			return res, fmt.Errorf("flowdemo: rpc: %w", err)
		}
		reply := make([]byte, 8)
		binary.BigEndian.PutUint32(reply[0:], out[0])
		binary.BigEndian.PutUint32(reply[4:], uint32(i+1))
		sockB.SendTo(macA, 0x0A000001, flow.SrcPort, reply)
		front.Env.Trace = ktrace.SpanContext{} // idle between requests

		// Client: drain the reply and close the request.
		got, _, ok := sockA.TryRecv()
		if ok && len(got) == 8 &&
			binary.BigEndian.Uint32(got) == args[0]+args[1]+args[2]+args[3] {
			res.Replies++
		}
		osA.EndRequest(req)
		ma.Clock.Tick(2_000)
		mb.Clock.Tick(2_000)
	}

	// The ASH leg: the echo handler answers from the kernel's interrupt
	// context on B, so the round trip is wire → ASH → wire with no
	// scheduled environment in the middle. The payload stays inside the
	// handler's unrolled 64-byte frame copy.
	echo := make([]byte, 16)
	for j := range echo {
		echo[j] = byte(rng.next())
	}
	req := osA.BeginRequest(uint64(cfg.Requests + 1))
	sockA.SendTo(macB, 0x0A000002, portEcho, echo)
	if got, _, ok := sockA.TryRecv(); ok && len(got) == len(echo) {
		res.EchoOK = true
		for j := range got {
			if got[j] != echo[j] {
				res.EchoOK = false
				break
			}
		}
	}
	osA.EndRequest(req)

	// The DSM leg: an environment on B owns a shared page; the client's
	// write fault pulls ownership across the wire. The whole transfer —
	// fault, request, the owner's invalidate + reply, remap — is one
	// dsm-xfer span with the protocol's wire crossings parented under it.
	dsmOS, err := exos.Boot(kb)
	if err != nil {
		return nil, err
	}
	nodeB, err := exos.NewDSMNode(nb, dsmOS, portDSM, macA, 0x0A000001)
	if err != nil {
		return nil, err
	}
	nodeA, err := exos.NewDSMNode(na, osA, portDSM, macB, 0x0A000002)
	if err != nil {
		return nil, err
	}
	if err := nodeB.AddPage(dsmVA, true); err != nil {
		return nil, err
	}
	if err := nodeA.AddPage(dsmVA, false); err != nil {
		return nil, err
	}
	nodeA.Pump = func() { nodeB.Service(); ma.Clock.Tick(500); seg.Sync() }
	req = osA.BeginRequest(uint64(cfg.Requests + 2))
	if err := osA.TouchWrite(dsmVA); err == nil && nodeA.State(dsmVA) == "writable" {
		res.DSMOK = true
	}
	osA.EndRequest(req)

	// The swap leg: the kernel revokes the frame under a tracked page
	// (visible revocation, §3.3), the application-level pager evicts it
	// to its swap extent, and the next touch faults it back in — a
	// swap-out and a swap-in span on the same request's critical path.
	sw, err := exos.NewSwapper(osA, 8)
	if err != nil {
		return nil, err
	}
	frame, err := osA.AllocAndMap(swapVA)
	if err != nil {
		return nil, err
	}
	sw.Track(swapVA)
	if err := osA.TouchWrite(swapVA); err != nil { // dirty it before any eviction
		return nil, err
	}
	req = osA.BeginRequest(uint64(cfg.Requests + 3))
	if _, err := ka.RevokePage(frame); err == nil && !sw.Resident(swapVA) {
		if err := osA.TouchWrite(swapVA); err == nil && sw.Resident(swapVA) {
			res.SwapOK = true
		}
	}
	osA.EndRequest(req)

	res.CyclesA = ma.Clock.Cycles()
	res.CyclesB = mb.Clock.Cycles()
	return res, nil
}
