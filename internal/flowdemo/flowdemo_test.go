package flowdemo

import (
	"bytes"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/fleet"
	"exokernel/internal/prof"
)

func TestFlowDemoTraces(t *testing.T) {
	res, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies != 3 {
		t.Fatalf("replies = %d, want 3", res.Replies)
	}
	if !res.EchoOK {
		t.Fatalf("ASH echo round trip failed")
	}
	if !res.DSMOK {
		t.Fatalf("DSM write fault did not take ownership")
	}
	if !res.SwapOK {
		t.Fatalf("swap eviction + refault did not round trip")
	}
	traces := fleet.AssembleTraces(res.Bus.MergedSpans())
	if len(traces) != 6 {
		t.Fatalf("traces = %d, want 6 (3 rpc + echo + dsm + swap)", len(traces))
	}
	for i, tr := range traces[:3] {
		if len(tr.Orphans) != 0 || tr.Open != 0 {
			t.Fatalf("rpc trace %d broken: orphans=%d open=%d", i, len(tr.Orphans), tr.Open)
		}
		// req, udp-tx, rx, recv, ipc-call, pct, ipc-serve, pct, udp-tx, rx, recv.
		if tr.Spans != 11 {
			t.Fatalf("rpc trace %d has %d spans, want 11", i, tr.Spans)
		}
		// The request crosses machines: the critical path must charge wire
		// time, and every trace has exactly one root.
		if len(tr.Roots) != 1 {
			t.Fatalf("rpc trace %d has %d roots", i, len(tr.Roots))
		}
		_, bd := fleet.CriticalPath(tr)
		if bd.Wire == 0 || bd.Handler == 0 {
			t.Fatalf("rpc trace %d breakdown has empty components: %+v", i, bd)
		}
		if bd.Total != bd.Handler+bd.Queue+bd.Wire {
			t.Fatalf("rpc trace %d breakdown does not sum: %+v", i, bd)
		}
	}
	// The echo trace runs through the ASH: req, udp-tx, ash, rx, recv.
	echo := traces[3]
	if echo.Spans != 5 || len(echo.Orphans) != 0 || echo.Open != 0 {
		t.Fatalf("echo trace shape: spans=%d orphans=%d open=%d", echo.Spans, len(echo.Orphans), echo.Open)
	}
	found := false
	var walk func(n *fleet.SpanNode)
	walk = func(n *fleet.SpanNode) {
		if n.Kind.String() == "ash" && n.Machine == "B" {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range echo.Roots {
		walk(r)
	}
	if !found {
		t.Fatalf("echo trace has no ASH span on machine B")
	}

	// The DSM and swap traces put the substrate waits on the request tree:
	// the page transfer span with its wire crossings underneath, and the
	// pager's eviction + refault pair.
	kinds := func(tr *fleet.Trace) map[string]int {
		m := map[string]int{}
		var walk func(n *fleet.SpanNode)
		walk = func(n *fleet.SpanNode) {
			m[n.Kind.String()]++
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range tr.Roots {
			walk(r)
		}
		return m
	}
	dsm := traces[4]
	if len(dsm.Orphans) != 0 || dsm.Open != 0 {
		t.Fatalf("dsm trace broken: orphans=%d open=%d", len(dsm.Orphans), dsm.Open)
	}
	dk := kinds(dsm)
	if dk["dsm-xfer"] != 1 || dk["udp-tx"] < 2 {
		t.Fatalf("dsm trace kinds = %v, want one dsm-xfer over both wire crossings", dk)
	}
	swap := traces[5]
	if len(swap.Orphans) != 0 || swap.Open != 0 {
		t.Fatalf("swap trace broken: orphans=%d open=%d", len(swap.Orphans), swap.Open)
	}
	sk := kinds(swap)
	if sk["swap-out"] != 1 || sk["swap-in"] != 1 {
		t.Fatalf("swap trace kinds = %v, want one swap-out and one swap-in", sk)
	}
}

// TestFlowSpanCollectionIsFree pins the observation contract end to end:
// the same schedule with span recorders attached is cycle-identical to
// one without them. Collection, stamping, and context propagation cost
// zero simulated cycles.
func TestFlowSpanCollectionIsFree(t *testing.T) {
	on, err := Run(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{Seed: 7, DisableSpans: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.CyclesA != off.CyclesA || on.CyclesB != off.CyclesB {
		t.Fatalf("span collection moved the clocks: on=(%d,%d) off=(%d,%d)",
			on.CyclesA, on.CyclesB, off.CyclesA, off.CyclesB)
	}
	if on.Replies != off.Replies || on.EchoOK != off.EchoOK {
		t.Fatalf("span collection changed the workload: on=(%d,%v) off=(%d,%v)",
			on.Replies, on.EchoOK, off.Replies, off.EchoOK)
	}
	if off.SpansA != nil || off.SpansB != nil {
		t.Fatalf("disabled run still has recorders")
	}
}

// TestFlowProfilingIsFree extends the observation contract to the cycle
// profiler: attaching profilers to both machines changes no clock, no
// verdict, and no span tree — and the profile itself is deterministic.
func TestFlowProfilingIsFree(t *testing.T) {
	render := func(res *Result) []byte {
		var buf bytes.Buffer
		for _, tr := range fleet.AssembleTraces(res.Bus.MergedSpans()) {
			fleet.RenderTrace(&buf, tr)
		}
		return buf.Bytes()
	}
	profiled := func() (*Result, []byte) {
		res, err := Run(Config{Seed: 7, Prof: func(name string) *prof.Profiler {
			return prof.New(name, aegis.OpNames())
		}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		f := prof.Collect("flowdemo", nil, res.Bus.MergedProfiles(), 10)
		if err := f.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	on, profA := profiled()
	off, err := Run(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if on.CyclesA != off.CyclesA || on.CyclesB != off.CyclesB {
		t.Fatalf("profiling moved the clocks: on=(%d,%d) off=(%d,%d)",
			on.CyclesA, on.CyclesB, off.CyclesA, off.CyclesB)
	}
	if on.Replies != off.Replies || on.EchoOK != off.EchoOK ||
		on.DSMOK != off.DSMOK || on.SwapOK != off.SwapOK {
		t.Fatalf("profiling changed the workload")
	}
	if !bytes.Equal(render(on), render(off)) {
		t.Fatalf("profiling changed the span trees")
	}
	_, profB := profiled()
	if !bytes.Equal(profA, profB) {
		t.Fatalf("same seed produced different profiles")
	}
	if len(profA) == 0 || !bytes.Contains(profA, []byte(`"machine": "A"`)) {
		t.Fatalf("profile missing machine A: %s", profA)
	}
}

// TestFlowSameSeedByteIdentical pins determinism: the same seed renders
// the same bytes, span IDs included.
func TestFlowSameSeedByteIdentical(t *testing.T) {
	render := func() []byte {
		res, err := Run(Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tr := range fleet.AssembleTraces(res.Bus.MergedSpans()) {
			fleet.RenderTrace(&buf, tr)
		}
		if err := res.Bus.WriteChromeSpans(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed rendered different bytes")
	}
	// A different seed changes span identities but not the schedule.
	res, err := Run(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tr := range fleet.AssembleTraces(res.Bus.MergedSpans()) {
		fleet.RenderTrace(&buf, tr)
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Fatalf("different seeds rendered identical span identities")
	}
}
