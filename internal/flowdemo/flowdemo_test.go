package flowdemo

import (
	"bytes"
	"testing"

	"exokernel/internal/fleet"
)

func TestFlowDemoTraces(t *testing.T) {
	res, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replies != 3 {
		t.Fatalf("replies = %d, want 3", res.Replies)
	}
	if !res.EchoOK {
		t.Fatalf("ASH echo round trip failed")
	}
	traces := fleet.AssembleTraces(res.Bus.MergedSpans())
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4 (3 rpc + 1 echo)", len(traces))
	}
	for i, tr := range traces[:3] {
		if len(tr.Orphans) != 0 || tr.Open != 0 {
			t.Fatalf("rpc trace %d broken: orphans=%d open=%d", i, len(tr.Orphans), tr.Open)
		}
		// req, udp-tx, rx, recv, ipc-call, pct, ipc-serve, pct, udp-tx, rx, recv.
		if tr.Spans != 11 {
			t.Fatalf("rpc trace %d has %d spans, want 11", i, tr.Spans)
		}
		// The request crosses machines: the critical path must charge wire
		// time, and every trace has exactly one root.
		if len(tr.Roots) != 1 {
			t.Fatalf("rpc trace %d has %d roots", i, len(tr.Roots))
		}
		_, bd := fleet.CriticalPath(tr)
		if bd.Wire == 0 || bd.Handler == 0 {
			t.Fatalf("rpc trace %d breakdown has empty components: %+v", i, bd)
		}
		if bd.Total != bd.Handler+bd.Queue+bd.Wire {
			t.Fatalf("rpc trace %d breakdown does not sum: %+v", i, bd)
		}
	}
	// The echo trace runs through the ASH: req, udp-tx, ash, rx, recv.
	echo := traces[3]
	if echo.Spans != 5 || len(echo.Orphans) != 0 || echo.Open != 0 {
		t.Fatalf("echo trace shape: spans=%d orphans=%d open=%d", echo.Spans, len(echo.Orphans), echo.Open)
	}
	found := false
	var walk func(n *fleet.SpanNode)
	walk = func(n *fleet.SpanNode) {
		if n.Kind.String() == "ash" && n.Machine == "B" {
			found = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range echo.Roots {
		walk(r)
	}
	if !found {
		t.Fatalf("echo trace has no ASH span on machine B")
	}
}

// TestFlowSpanCollectionIsFree pins the observation contract end to end:
// the same schedule with span recorders attached is cycle-identical to
// one without them. Collection, stamping, and context propagation cost
// zero simulated cycles.
func TestFlowSpanCollectionIsFree(t *testing.T) {
	on, err := Run(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{Seed: 7, DisableSpans: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.CyclesA != off.CyclesA || on.CyclesB != off.CyclesB {
		t.Fatalf("span collection moved the clocks: on=(%d,%d) off=(%d,%d)",
			on.CyclesA, on.CyclesB, off.CyclesA, off.CyclesB)
	}
	if on.Replies != off.Replies || on.EchoOK != off.EchoOK {
		t.Fatalf("span collection changed the workload: on=(%d,%v) off=(%d,%v)",
			on.Replies, on.EchoOK, off.Replies, off.EchoOK)
	}
	if off.SpansA != nil || off.SpansB != nil {
		t.Fatalf("disabled run still has recorders")
	}
}

// TestFlowSameSeedByteIdentical pins determinism: the same seed renders
// the same bytes, span IDs included.
func TestFlowSameSeedByteIdentical(t *testing.T) {
	render := func() []byte {
		res, err := Run(Config{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tr := range fleet.AssembleTraces(res.Bus.MergedSpans()) {
			fleet.RenderTrace(&buf, tr)
		}
		if err := res.Bus.WriteChromeSpans(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed rendered different bytes")
	}
	// A different seed changes span identities but not the schedule.
	res, err := Run(Config{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tr := range fleet.AssembleTraces(res.Bus.MergedSpans()) {
		fleet.RenderTrace(&buf, tr)
	}
	if bytes.Equal(a, buf.Bytes()) {
		t.Fatalf("different seeds rendered identical span identities")
	}
}
