package exos

import (
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
)

// Causal tracing glue: ExOS owns the wire format, so it owns where trace
// context lives in a frame (the pkt trace-context trailer) and tells the
// protocol-agnostic kernel via SetTraceWire. The propagation rule
// everywhere in the library is uniform: a span is recorded only when a
// valid parent context exists (or a root is opened explicitly with
// BeginRequest), the active context rides Env.Trace between hops, and
// outgoing frames are stamped with the span that transmitted them. All
// of it is observation: no clock ticks, and with no span recorder
// attached every path below degrades to the zero context.

// wireParse reads a frame's trace context (zero context if absent or
// corrupted — the receiver simply starts fresh).
func wireParse(frame []byte) ktrace.SpanContext {
	tr, sp, ok := pkt.TraceOpt(frame)
	if !ok {
		return ktrace.SpanContext{}
	}
	return ktrace.SpanContext{Trace: ktrace.TraceID(tr), Span: ktrace.SpanID(sp)}
}

// wireStamp writes a span context into an outgoing frame's trailer.
func wireStamp(frame []byte, ctx ktrace.SpanContext) {
	pkt.StampTraceOpt(frame, uint64(ctx.Trace), uint64(ctx.Span))
}

// BeginRequest opens a root span for one logical request and makes it the
// environment's active context: everything the application does until
// EndRequest — IPC calls, packet sends, the work servers do on the far
// end — becomes part of this trace. arg tags the request (an ID, a byte
// count; the application's choice).
func (os *LibOS) BeginRequest(arg uint64) ktrace.SpanRef {
	ref := os.K.Spans.Begin(os.K.M.Clock.Cycles(), ktrace.SpanReq, uint32(os.Env.ID), ktrace.SpanContext{}, arg)
	os.Env.Trace = ref.Ctx()
	return ref
}

// EndRequest closes a request span and clears the active context.
func (os *LibOS) EndRequest(ref ktrace.SpanRef) {
	os.K.Spans.End(ref, os.K.M.Clock.Cycles())
	os.Env.Trace = ktrace.SpanContext{}
}
