package exos

import "exokernel/internal/aegis"

// Process helpers used by the scheduling experiments and examples.

// NewSpinner creates a compute-bound native environment: each time it is
// dispatched it consumes its whole time slice (modelled as a clock advance
// of one quantum — a busy loop's worth of work).
func NewSpinner(k *aegis.Kernel) (*aegis.Env, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	env.NativeRun = func(k *aegis.Kernel) {
		k.M.Clock.Tick(k.Quantum())
	}
	return env, nil
}

// NewWorker creates a native environment that runs fn each slice; fn
// should consume at most a quantum of simulated time.
func NewWorker(k *aegis.Kernel, fn func(k *aegis.Kernel)) (*aegis.Env, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	env.NativeRun = fn
	return env, nil
}
