package exos

import (
	"bytes"
	"strings"
	"testing"

	"exokernel/internal/fault"
)

// The acceptance scenario for the hardened transport: a faulty wire
// losing 10% of frames and flipping a byte in 1% more must not corrupt
// the byte stream. Loss is recovered by the retransmission timer;
// corruption is caught by the segment checksum (a corrupted segment is
// dropped unacknowledged, so it too becomes a retransmission).
func TestTCPUnderLossAndCorruption(t *testing.T) {
	w := newTCPWorld(t)
	inj := fault.New(fault.Config{
		Seed:          0xFA17,
		NetDropPPM:    100_000, // 10% loss
		NetCorruptPPM: 10_000,  // 1% single-byte corruption
	})
	inj.SetEnabled(true)
	w.seg.Fault = inj

	// The handshake runs under fire too: SYN loss is just another
	// retransmission.
	cli, srv := dialPair(t, w)

	msg := bytes.Repeat([]byte("bytes-must-survive-the-wire."), 250) // 7 KB, 14 segments
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.pump(t, cli, srv, func() bool {
		got = append(got, srv.Recv()...)
		return len(got) >= len(msg)
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(msg))
	}

	// The reverse direction under the same fire.
	reply := bytes.Repeat([]byte("and-back-again."), 150) // ~2.2 KB
	if err := srv.Send(reply); err != nil {
		t.Fatal(err)
	}
	var back []byte
	w.pump(t, cli, srv, func() bool {
		back = append(back, cli.Recv()...)
		return len(back) >= len(reply)
	})
	if !bytes.Equal(back, reply) {
		t.Fatalf("reverse stream corrupted: got %d bytes, want %d", len(back), len(reply))
	}

	// The injector really fired across both fault classes.
	if inj.Counts[fault.NetDrop] == 0 {
		t.Error("injector never dropped a frame at 10% loss")
	}
	if inj.Counts[fault.NetCorrupt] == 0 {
		t.Error("injector never corrupted a frame at 1%")
	}
	if cli.Retransmits == 0 && srv.Retransmits == 0 {
		t.Error("no retransmissions despite injected loss")
	}
}

// Pin the detection path itself: under heavy corruption and no loss,
// every delivered-but-damaged segment must be caught by the checksum
// (a corrupted frame can also die earlier — a flipped IP header byte
// misroutes it at the filter — so detection is checksum rejects at TCP
// plus classification drops at the kernel; nothing may slip through).
func TestTCPChecksumCatchesCorruption(t *testing.T) {
	w := newTCPWorld(t)
	inj := fault.New(fault.Config{Seed: 7, NetCorruptPPM: 200_000}) // 20%
	inj.SetEnabled(true)
	w.seg.Fault = inj

	cli, srv := dialPair(t, w)
	msg := bytes.Repeat([]byte("poisoned-wire."), 500) // 7 KB
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.pump(t, cli, srv, func() bool {
		got = append(got, srv.Recv()...)
		return len(got) >= len(msg)
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(msg))
	}
	if inj.Counts[fault.NetCorrupt] == 0 {
		t.Fatal("injector never corrupted a frame at 20%")
	}
	if cli.ChecksumDrops+srv.ChecksumDrops == 0 {
		t.Error("no checksum rejects despite heavy corruption")
	}
}

// The recovery counters must be auditable through /proc/net/tcp.
func TestProcNetTCP(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	cli.Retransmits, cli.Backoffs, cli.ChecksumDrops = 7, 3, 2

	out, err := w.osA.ProcRead("/proc/net/tcp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "retransmits=7") ||
		!strings.Contains(out, "backoffs=3") ||
		!strings.Contains(out, "checksum_drops=2") {
		t.Errorf("counters missing from /proc/net/tcp:\n%s", out)
	}
	if !strings.Contains(out, "\ntcp local=30000") || !strings.Contains(out, "state=established") {
		t.Errorf("connection line missing from /proc/net/tcp:\n%s", out)
	}

	// Release removes the connection from the table.
	if err := srv.Release(); err != nil {
		t.Fatal(err)
	}
	out, err = w.osB.ProcRead("/proc/net/tcp")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "\ntcp local=") {
		t.Errorf("released connection still listed:\n%s", out)
	}
}

// Identical seeds must produce identical fault decisions — the property
// that makes a failing chaos run reproducible from its seed alone.
func TestTCPFaultDeterminism(t *testing.T) {
	run := func() ([]fault.Event, uint64) {
		w := newTCPWorld(t)
		inj := fault.New(fault.Config{Seed: 42, NetDropPPM: 150_000, NetCorruptPPM: 20_000})
		inj.SetEnabled(true)
		w.seg.Fault = inj
		cli, srv := dialPair(t, w)
		msg := bytes.Repeat([]byte("replay"), 500)
		if err := cli.Send(msg); err != nil {
			t.Fatal(err)
		}
		var got []byte
		w.pump(t, cli, srv, func() bool {
			got = append(got, srv.Recv()...)
			return len(got) >= len(msg)
		})
		return append([]fault.Event(nil), inj.Log...), w.ma.Clock.Cycles()
	}
	log1, cyc1 := run()
	log2, cyc2 := run()
	if len(log1) != len(log2) {
		t.Fatalf("fault logs diverged: %d vs %d events", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("fault log diverged at event %d: %v vs %v", i, log1[i], log2[i])
		}
	}
	if cyc1 != cyc2 {
		t.Fatalf("simulated time diverged: %d vs %d cycles", cyc1, cyc2)
	}
}
