package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// An application-level pager. When the kernel revokes physical pages
// (§3.3: revocation is *visible* so "library operating systems can guide
// deallocation"), a Swapper-equipped LibOS picks its own victim, writes
// the contents to its own swap extent, and releases the frame — instead of
// the default policy of dropping a page or the abort protocol's forced
// repossession. The page-out victim choice, the swap layout, and the
// page-in path are all application policy; the kernel only sees a
// capability-checked disk write and a page deallocation.
//
// This is the piece that makes "deallocate physical memory without
// informing applications" (the monolithic way) vs. visible revocation a
// lived difference: with the pager, revocation loses no data and the
// application decides what it can best afford to lose from RAM.

// swapSlot records where a paged-out page lives.
type swapSlot struct {
	block uint32 // offset within the swap extent
	pte   PTE    // the entry as it was when paged out (perms preserved)
}

// Swapper adds demand paging to a LibOS.
type Swapper struct {
	os    *LibOS
	dev   *AegisDev
	used  []bool              // swap-extent block occupancy
	out   map[uint32]swapSlot // page-aligned va → slot
	clean map[uint32]bool     // victim-selection FIFO state
	order []uint32            // FIFO of resident candidate vas
	// Stats.
	PageOuts, PageIns uint64
}

// NewSwapper allocates a swap extent of nblocks and wires the pager into
// the LibOS: revocation upcalls page out, faults on paged-out addresses
// page back in.
func NewSwapper(os *LibOS, nblocks uint32) (*Swapper, error) {
	dev, err := NewAegisDev(os, nblocks)
	if err != nil {
		return nil, err
	}
	sw := &Swapper{
		os:    os,
		dev:   dev,
		used:  make([]bool, nblocks),
		out:   make(map[uint32]swapSlot),
		clean: make(map[uint32]bool),
	}
	os.Env.NativeRevoke = sw.revoke
	prevFault := os.OnFault
	os.OnFault = func(o *LibOS, va uint32, write bool) bool {
		if sw.pageIn(va) {
			return true
		}
		if prevFault != nil {
			return prevFault(o, va, write)
		}
		return false
	}
	return sw, nil
}

// Track registers a page as pageable (applications choose what the pager
// may evict — pinned pages are simply never registered).
func (sw *Swapper) Track(va uint32) {
	va &^= hw.PageSize - 1
	sw.order = append(sw.order, va)
}

// Resident reports whether va currently has a physical page.
func (sw *Swapper) Resident(va uint32) bool {
	_, out := sw.out[va&^(hw.PageSize-1)]
	return !out
}

// revoke is the visible-revocation upcall: the kernel wants *a* page back.
// The pager complies by paging out a victim of its own choosing and, if
// the kernel asked for a specific frame that is not the victim's, by
// moving the victim's frame... in this simple pager the victim is chosen
// to *be* the owner of the requested frame when possible, else FIFO.
func (sw *Swapper) revoke(k *aegis.Kernel, frame uint32) bool {
	// Prefer the page actually occupying the requested frame.
	if pte, va := sw.os.PT.FindFrame(frame); pte != nil {
		return sw.pageOut(va) == nil
	}
	// Otherwise any pageable victim frees memory pressure.
	for _, va := range sw.order {
		if sw.Resident(va) {
			return sw.pageOut(va) == nil
		}
	}
	return false
}

// pageOut writes va's page to swap and releases its frame. When the env
// has an active trace context the whole eviction — the DMA to the swap
// extent plus the unmap — is one swap-out span, so revocation-driven
// disk waits show on a request's critical path.
func (sw *Swapper) pageOut(va uint32) error {
	va &^= hw.PageSize - 1
	if ctx := sw.os.Env.Trace; ctx.Valid() {
		span := sw.os.K.Spans.Begin(sw.os.K.M.Clock.Cycles(), ktrace.SpanSwapOut, uint32(sw.os.Env.ID), ctx, uint64(va))
		defer func() { sw.os.K.Spans.End(span, sw.os.K.M.Clock.Cycles()) }()
	}
	pte := sw.os.PT.Lookup(va)
	if pte == nil {
		return fmt.Errorf("exos: page-out of unmapped va %#x", va)
	}
	slot, err := sw.allocSlot()
	if err != nil {
		return err
	}
	saved := *pte
	// The page's own capability authorizes the DMA out of its frame.
	sw.dev.RegisterFrame(saved.Frame, saved.Guard)
	if err := sw.dev.WriteBlock(slot, saved.Frame); err != nil {
		sw.used[slot] = false
		return err
	}
	// Barrier before the frame is unmapped and recycled: the swap copy
	// is the page's only copy from here on, so it must be stable — a
	// power failure between frame reuse and an implicit later flush
	// would otherwise lose memory the application was promised.
	if err := sw.dev.Flush(); err != nil {
		sw.used[slot] = false
		return err
	}
	sw.os.Unmap(va)
	if err := sw.os.K.DeallocPage(saved.Frame, saved.Guard); err != nil {
		return err
	}
	sw.out[va] = swapSlot{block: slot, pte: saved}
	sw.PageOuts++
	return nil
}

// pageIn restores a paged-out page on fault, recording the refault —
// frame allocation plus the DMA back — as a swap-in span when the env
// has an active trace context.
func (sw *Swapper) pageIn(va uint32) bool {
	va &^= hw.PageSize - 1
	slot, ok := sw.out[va]
	if !ok {
		return false
	}
	if ctx := sw.os.Env.Trace; ctx.Valid() {
		span := sw.os.K.Spans.Begin(sw.os.K.M.Clock.Cycles(), ktrace.SpanSwapIn, uint32(sw.os.Env.ID), ctx, uint64(va))
		defer func() { sw.os.K.Spans.End(span, sw.os.K.M.Clock.Cycles()) }()
	}
	frame, guard, err := sw.os.K.AllocPage(sw.os.Env, aegis.AnyFrame)
	if err != nil {
		return false // memory still tight; the fault stands
	}
	sw.dev.RegisterFrame(frame, guard)
	if err := sw.dev.ReadBlock(slot.block, frame); err != nil {
		// Give the frame back: failing the fault must not leak the page
		// we just allocated (the swap slot still holds the data).
		_ = sw.os.K.DeallocPage(frame, guard)
		return false
	}
	pte := slot.pte
	pte.Frame = frame
	pte.Guard = guard
	pte.Perms &^= PTDirty // clean until written again
	sw.os.PT.Set(va, pte)
	delete(sw.out, va)
	sw.used[slot.block] = false
	sw.PageIns++
	return true
}

func (sw *Swapper) allocSlot() (uint32, error) {
	for i, u := range sw.used {
		if !u {
			sw.used[i] = true
			return uint32(i), nil
		}
	}
	return 0, fmt.Errorf("exos: swap extent full")
}
