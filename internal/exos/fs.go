package exos

import (
	"encoding/binary"
	"fmt"
	"sort"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
)

// An application-level file system. The kernel's storage interface is
// capability-guarded raw extents (internal/aegis/disk.go); everything a
// file system *is* — layout, naming, allocation, and above all the buffer
// cache and its replacement policy — is unprivileged library code here.
// That last part is the point: Cao et al. [10], cited in the paper's
// introduction, measured that application-controlled file caching cuts
// running time by up to 45%, and Stonebraker [47] catalogued how
// kernel-fixed policies hurt databases. With the cache in the library,
// an application replaces the policy by passing a different object.
//
// On-extent layout (all page-sized blocks):
//
//	block 0            superblock
//	block 1            block-allocation bitmap
//	blocks 2..2+ib-1   inode table (64-byte inodes)
//	blocks dataStart.. data
//
// Inode 0 is the root directory: a flat table of 32-byte entries.

// BlockDev abstracts the storage the file system runs on: ExOS supplies
// the capability-checked kernel extent (AegisDev); the monolithic
// baseline wraps the same engine with per-call crossing charges.
type BlockDev interface {
	ReadBlock(b uint32, frame uint32) error
	WriteBlock(b uint32, frame uint32) error
	// Flush is the durability barrier: every write accepted before the
	// call is stable when it returns (the disk's volatile write cache is
	// drained). Crash consistency is built on its ordering guarantee.
	Flush() error
	NumBlocks() uint32
}

// AegisDev is a kernel disk extent plus the capabilities to use it.
type AegisDev struct {
	K       *aegis.Kernel
	Start   uint32
	NBlocks uint32
	Guard   cap.Capability
	// frameCaps maps cache frames to their capabilities.
	frameCaps map[uint32]cap.Capability
}

// NewAegisDev allocates an extent of nblocks for the environment.
func NewAegisDev(os *LibOS, nblocks uint32) (*AegisDev, error) {
	start, guard, err := os.K.AllocExtent(os.Env, nblocks)
	if err != nil {
		return nil, err
	}
	return &AegisDev{K: os.K, Start: start, NBlocks: nblocks, Guard: guard,
		frameCaps: make(map[uint32]cap.Capability)}, nil
}

// RegisterFrame records the capability for a cache frame.
func (d *AegisDev) RegisterFrame(frame uint32, guard cap.Capability) {
	d.frameCaps[frame] = guard
}

// ReadBlock implements BlockDev over the kernel's checked DMA.
func (d *AegisDev) ReadBlock(b uint32, frame uint32) error {
	return d.K.DiskRead(d.Start, d.NBlocks, b, d.Guard, frame, d.frameCaps[frame])
}

// WriteBlock implements BlockDev.
func (d *AegisDev) WriteBlock(b uint32, frame uint32) error {
	return d.K.DiskWrite(d.Start, d.NBlocks, b, d.Guard, frame, d.frameCaps[frame])
}

// Flush implements BlockDev over the kernel's checked barrier call.
func (d *AegisDev) Flush() error {
	return d.K.DiskFlush(d.Start, d.NBlocks, d.Guard)
}

// NumBlocks implements BlockDev.
func (d *AegisDev) NumBlocks() uint32 { return d.NBlocks }

// --- Buffer cache -------------------------------------------------------

// CachePolicy decides evictions. It sees every access; Evict picks the
// victim. Implementations are application code — swapping one is the
// paper's "application-controlled file caching".
type CachePolicy interface {
	Name() string
	Touched(b uint32, transient bool)
	Removed(b uint32)
	Evict() (uint32, bool)
}

// cacheLine is one cached block.
type cacheLine struct {
	frame uint32
	dirty bool
}

// BufCache is the application-managed buffer cache.
type BufCache struct {
	mem    *hw.PhysMem
	clock  *hw.Clock
	dev    BlockDev
	policy CachePolicy
	lines  map[uint32]*cacheLine
	free   []uint32 // unused cache frames
	// onEvictDirty, when set, runs before a dirty victim would be written
	// back in place — the journal installs its commit here so an eviction
	// can never put an uncommitted metadata block on disk out of order.
	// The hook must leave the victim clean (a commit writes back every
	// dirty line).
	onEvictDirty func() error
	// Stats.
	Hits, Misses, Writebacks uint64
}

// NewBufCache builds a cache over the given frames.
func NewBufCache(mem *hw.PhysMem, clock *hw.Clock, dev BlockDev, frames []uint32, policy CachePolicy) *BufCache {
	return &BufCache{
		mem: mem, clock: clock, dev: dev, policy: policy,
		lines: make(map[uint32]*cacheLine),
		free:  append([]uint32(nil), frames...),
	}
}

// SetPolicy swaps the replacement policy (resident blocks re-register).
func (c *BufCache) SetPolicy(p CachePolicy) {
	for b := range c.lines {
		c.policy.Removed(b)
		p.Touched(b, false)
	}
	c.policy = p
}

// get returns the frame caching block b, reading it in if needed.
// transient marks the access as part of a scan the caller has advised
// about (the policy may prioritize it for eviction).
func (c *BufCache) get(b uint32, transient bool) (uint32, error) {
	c.clock.Tick(8) // hash lookup + bookkeeping: library code, charged
	if ln, ok := c.lines[b]; ok {
		c.Hits++
		c.policy.Touched(b, transient)
		return ln.frame, nil
	}
	c.Misses++
	frame, err := c.frameFor()
	if err != nil {
		return 0, err
	}
	if err := c.dev.ReadBlock(b, frame); err != nil {
		c.free = append(c.free, frame)
		return 0, err
	}
	c.lines[b] = &cacheLine{frame: frame}
	c.policy.Touched(b, transient)
	return frame, nil
}

// frameFor finds a free cache frame, evicting if necessary.
func (c *BufCache) frameFor() (uint32, error) {
	if len(c.free) > 0 {
		f := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		return f, nil
	}
	victim, ok := c.policy.Evict()
	if !ok {
		return 0, fmt.Errorf("exos: buffer cache empty but no free frame")
	}
	ln := c.lines[victim]
	if ln.dirty && c.onEvictDirty != nil {
		if err := c.onEvictDirty(); err != nil {
			return 0, err
		}
	}
	if ln.dirty {
		c.Writebacks++
		if err := c.dev.WriteBlock(victim, ln.frame); err != nil {
			return 0, err
		}
	}
	delete(c.lines, victim)
	c.policy.Removed(victim)
	return ln.frame, nil
}

// markDirty flags a resident block as modified.
func (c *BufCache) markDirty(b uint32) {
	if ln, ok := c.lines[b]; ok {
		ln.dirty = true
	}
}

// dirtyBlocks returns the dirty resident blocks in ascending block
// order. Sorted so the on-disk write order — and therefore the set of
// crash states a power failure can expose — is a deterministic function
// of the dirty set, never of map iteration order; the crash-point
// exploration test depends on this.
func (c *BufCache) dirtyBlocks() []uint32 {
	var bs []uint32
	for b, ln := range c.lines {
		if ln.dirty {
			bs = append(bs, b)
		}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	return bs
}

// Sync writes back every dirty block, in ascending block order.
func (c *BufCache) Sync() error {
	for _, b := range c.dirtyBlocks() {
		ln := c.lines[b]
		c.Writebacks++
		if err := c.dev.WriteBlock(b, ln.frame); err != nil {
			return err
		}
		ln.dirty = false
	}
	return nil
}

// TakeFrame permanently removes one frame from the cache's free pool
// for the caller's private use (the journal takes its scratch frame
// this way at mount time, before the cache has warmed up).
func (c *BufCache) TakeFrame() (uint32, error) {
	if len(c.free) == 0 {
		return 0, fmt.Errorf("exos: no free cache frame to take")
	}
	f := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return f, nil
}

// --- Policies -------------------------------------------------------------

// LRU is the classic kernel default: least-recently-used eviction.
type LRU struct {
	order []uint32 // front = LRU
	pos   map[uint32]int
}

// NewLRU makes an empty LRU policy.
func NewLRU() *LRU { return &LRU{pos: map[uint32]int{}} }

// Name implements CachePolicy.
func (l *LRU) Name() string { return "lru" }

// Touched implements CachePolicy.
func (l *LRU) Touched(b uint32, _ bool) {
	l.remove(b)
	l.pos[b] = len(l.order)
	l.order = append(l.order, b)
}

// Removed implements CachePolicy.
func (l *LRU) Removed(b uint32) { l.remove(b) }

// Evict implements CachePolicy.
func (l *LRU) Evict() (uint32, bool) {
	if len(l.order) == 0 {
		return 0, false
	}
	b := l.order[0]
	l.remove(b)
	return b, true
}

func (l *LRU) remove(b uint32) {
	i, ok := l.pos[b]
	if !ok {
		return
	}
	l.order = append(l.order[:i], l.order[i+1:]...)
	delete(l.pos, b)
	for j := i; j < len(l.order); j++ {
		l.pos[l.order[j]] = j
	}
}

// ScanAware is an application policy: blocks touched as part of an advised
// sequential scan are queued for immediate reuse instead of flooding the
// LRU list — the access-pattern knowledge only the application has.
type ScanAware struct {
	hot  *LRU
	scan []uint32
	in   map[uint32]bool
}

// NewScanAware makes the scan-resistant policy.
func NewScanAware() *ScanAware {
	return &ScanAware{hot: NewLRU(), in: map[uint32]bool{}}
}

// Name implements CachePolicy.
func (s *ScanAware) Name() string { return "scan-aware" }

// Touched implements CachePolicy.
func (s *ScanAware) Touched(b uint32, transient bool) {
	if transient {
		if !s.in[b] {
			s.in[b] = true
			s.scan = append(s.scan, b)
		}
		return
	}
	if s.in[b] {
		s.dropScan(b)
	}
	s.hot.Touched(b, false)
}

// Removed implements CachePolicy.
func (s *ScanAware) Removed(b uint32) {
	if s.in[b] {
		s.dropScan(b)
		return
	}
	s.hot.Removed(b)
}

// Evict implements CachePolicy: scan blocks go first.
func (s *ScanAware) Evict() (uint32, bool) {
	if len(s.scan) > 0 {
		b := s.scan[0]
		s.dropScan(b)
		return b, true
	}
	return s.hot.Evict()
}

func (s *ScanAware) dropScan(b uint32) {
	for i, x := range s.scan {
		if x == b {
			s.scan = append(s.scan[:i], s.scan[i+1:]...)
			break
		}
	}
	delete(s.in, b)
}

// --- The file system --------------------------------------------------------

const (
	fsMagic      = 0x4558_4653 // "EXFS"
	inodeSize    = 64
	inodesPerBlk = hw.PageSize / inodeSize
	nDirect      = 12
	dirEntSize   = 32
	dirNameLen   = 28
	// Inum 0 is the root directory.
	rootInum = 0
)

// Inum names an inode.
type Inum uint32

type superblock struct {
	nblocks   uint32
	ninodes   uint32
	bitmapBlk uint32
	inodeBlk  uint32
	dataBlk   uint32
	// Journal region, at the tail of the extent. journalBlks == 0 means
	// a legacy non-journaled image (Format leaves the fields zero, so
	// old images mount unchanged with no recovery pass).
	journalBlk  uint32
	journalBlks uint32
}

// FS is the library file system instance.
type FS struct {
	dev   BlockDev
	cache *BufCache
	mem   *hw.PhysMem
	clock *hw.Clock
	sb    superblock
	// jn is the write-ahead journal; nil for non-journaled images. When
	// set, Sync commits through the journal instead of writing metadata
	// in place (see journal.go).
	jn *Journal
	// sequential advice state (per-FS for simplicity; per-file in a
	// larger implementation).
	advSequential bool
}

// Advice values for Advise.
const (
	AdviceNormal = iota
	AdviceSequential
)

// Format writes a fresh file system and returns it mounted. The image
// is not journaled: metadata writes go to their home locations in
// place, and a power failure mid-Sync can tear them. FormatJournaled
// (journal.go) is the crash-consistent variant.
func Format(dev BlockDev, cache *BufCache, ninodes uint32) (*FS, error) {
	return format(dev, cache, ninodes, 0)
}

// format writes the common initial image; journalBlks > 0 reserves a
// journal region at the extent tail (FormatJournaled finishes the job).
func format(dev BlockDev, cache *BufCache, ninodes, journalBlks uint32) (*FS, error) {
	fs := &FS{dev: dev, cache: cache, mem: cache.mem, clock: cache.clock}
	ib := (ninodes + inodesPerBlk - 1) / inodesPerBlk
	fs.sb = superblock{
		nblocks:   dev.NumBlocks(),
		ninodes:   ninodes,
		bitmapBlk: 1,
		inodeBlk:  2,
		dataBlk:   2 + ib,
	}
	if journalBlks > 0 {
		if journalBlks >= fs.sb.nblocks {
			return nil, fmt.Errorf("exos: journal of %d blocks exceeds extent", journalBlks)
		}
		fs.sb.journalBlk = fs.sb.nblocks - journalBlks
		fs.sb.journalBlks = journalBlks
	}
	if fs.sb.dataBlk >= fs.dataEnd() {
		return nil, fmt.Errorf("exos: extent too small for %d inodes", ninodes)
	}
	// Superblock.
	frame, err := cache.get(0, false)
	if err != nil {
		return nil, err
	}
	page := fs.mem.Page(frame)
	clear(page)
	binary.LittleEndian.PutUint32(page[0:], fsMagic)
	binary.LittleEndian.PutUint32(page[4:], fs.sb.nblocks)
	binary.LittleEndian.PutUint32(page[8:], fs.sb.ninodes)
	binary.LittleEndian.PutUint32(page[12:], fs.sb.bitmapBlk)
	binary.LittleEndian.PutUint32(page[16:], fs.sb.inodeBlk)
	binary.LittleEndian.PutUint32(page[20:], fs.sb.dataBlk)
	binary.LittleEndian.PutUint32(page[24:], fs.sb.journalBlk)
	binary.LittleEndian.PutUint32(page[28:], fs.sb.journalBlks)
	fs.clock.Tick(6)
	cache.markDirty(0)
	// Zero bitmap and inode blocks.
	for b := fs.sb.bitmapBlk; b < fs.sb.dataBlk; b++ {
		f, err := cache.get(b, false)
		if err != nil {
			return nil, err
		}
		clear(fs.mem.Page(f))
		fs.clock.Tick(hw.PageSize / hw.WordSize / 8) // zeroing, cached line fills
		cache.markDirty(b)
	}
	// Root directory inode.
	if err := fs.writeInode(rootInum, inode{used: 1}); err != nil {
		return nil, err
	}
	return fs, fs.cache.Sync()
}

// Mount reads the superblock of an existing file system.
func Mount(dev BlockDev, cache *BufCache) (*FS, error) {
	fs := &FS{dev: dev, cache: cache, mem: cache.mem, clock: cache.clock}
	frame, err := cache.get(0, false)
	if err != nil {
		return nil, err
	}
	page := fs.mem.Page(frame)
	if binary.LittleEndian.Uint32(page[0:]) != fsMagic {
		return nil, fmt.Errorf("exos: bad file system magic")
	}
	fs.sb = superblock{
		nblocks:     binary.LittleEndian.Uint32(page[4:]),
		ninodes:     binary.LittleEndian.Uint32(page[8:]),
		bitmapBlk:   binary.LittleEndian.Uint32(page[12:]),
		inodeBlk:    binary.LittleEndian.Uint32(page[16:]),
		dataBlk:     binary.LittleEndian.Uint32(page[20:]),
		journalBlk:  binary.LittleEndian.Uint32(page[24:]),
		journalBlks: binary.LittleEndian.Uint32(page[28:]),
	}
	fs.clock.Tick(6)
	if fs.sb.journalBlks > 0 {
		if err := fs.enableJournal(); err != nil {
			return nil, err
		}
		if err := fs.jn.recover(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// dataEnd is one past the last allocatable data block: the journal
// region at the extent tail is never handed out by allocBlock.
func (fs *FS) dataEnd() uint32 {
	if fs.sb.journalBlks > 0 {
		return fs.sb.journalBlk
	}
	return fs.sb.nblocks
}

// Journal exposes the write-ahead journal (stats; nil if non-journaled).
func (fs *FS) Journal() *Journal { return fs.jn }

// Advise sets the access-pattern hint subsequent reads carry into the
// cache policy (the application-to-policy channel of [10]).
func (fs *FS) Advise(advice int) { fs.advSequential = advice == AdviceSequential }

// Cache exposes the buffer cache (stats, policy swap).
func (fs *FS) Cache() *BufCache { return fs.cache }

// inode is the in-memory form: 12 direct blocks plus one single-indirect
// block of 1024 entries.
type inode struct {
	size     uint32
	used     uint32
	direct   [nDirect]uint32
	indirect uint32
}

func (fs *FS) inodeLoc(i Inum) (blk uint32, off uint32, err error) {
	if uint32(i) >= fs.sb.ninodes {
		return 0, 0, fmt.Errorf("exos: inode %d out of range", i)
	}
	return fs.sb.inodeBlk + uint32(i)/inodesPerBlk, (uint32(i) % inodesPerBlk) * inodeSize, nil
}

func (fs *FS) readInode(i Inum) (inode, error) {
	blk, off, err := fs.inodeLoc(i)
	if err != nil {
		return inode{}, err
	}
	frame, err := fs.cache.get(blk, false)
	if err != nil {
		return inode{}, err
	}
	p := fs.mem.Page(frame)[off:]
	var in inode
	in.size = binary.LittleEndian.Uint32(p[0:])
	in.used = binary.LittleEndian.Uint32(p[4:])
	for d := 0; d < nDirect; d++ {
		in.direct[d] = binary.LittleEndian.Uint32(p[8+4*d:])
	}
	in.indirect = binary.LittleEndian.Uint32(p[8+4*nDirect:])
	fs.clock.Tick(inodeSize / hw.WordSize)
	return in, nil
}

func (fs *FS) writeInode(i Inum, in inode) error {
	blk, off, err := fs.inodeLoc(i)
	if err != nil {
		return err
	}
	frame, err := fs.cache.get(blk, false)
	if err != nil {
		return err
	}
	p := fs.mem.Page(frame)[off:]
	binary.LittleEndian.PutUint32(p[0:], in.size)
	binary.LittleEndian.PutUint32(p[4:], in.used)
	for d := 0; d < nDirect; d++ {
		binary.LittleEndian.PutUint32(p[8+4*d:], in.direct[d])
	}
	binary.LittleEndian.PutUint32(p[8+4*nDirect:], in.indirect)
	fs.clock.Tick(inodeSize / hw.WordSize)
	fs.cache.markDirty(blk)
	return nil
}

// allocBlock finds a free data block in the bitmap.
func (fs *FS) allocBlock() (uint32, error) {
	frame, err := fs.cache.get(fs.sb.bitmapBlk, false)
	if err != nil {
		return 0, err
	}
	page := fs.mem.Page(frame)
	for b := fs.sb.dataBlk; b < fs.dataEnd(); b++ {
		byteIdx, bit := b/8, byte(1)<<(b%8)
		fs.clock.Tick(1)
		if page[byteIdx]&bit == 0 {
			page[byteIdx] |= bit
			fs.cache.markDirty(fs.sb.bitmapBlk)
			return b, nil
		}
	}
	return 0, fmt.Errorf("exos: file system full")
}

func (fs *FS) freeBlock(b uint32) error {
	frame, err := fs.cache.get(fs.sb.bitmapBlk, false)
	if err != nil {
		return err
	}
	fs.mem.Page(frame)[b/8] &^= byte(1) << (b % 8)
	fs.clock.Tick(2)
	fs.cache.markDirty(fs.sb.bitmapBlk)
	return nil
}

// indirectEntries is how many block pointers the indirect block holds.
const indirectEntries = hw.PageSize / hw.WordSize

// MaxFileSize is the largest file the direct plus single-indirect blocks
// hold (a little over 4 MB).
const MaxFileSize = (nDirect + indirectEntries) * hw.PageSize

// blockFor resolves file-block idx of an inode to a disk block, walking
// the indirect block through the cache. With alloc set, missing blocks
// (and the indirect block itself) are allocated; otherwise 0 means hole.
// It reports whether the inode was modified.
func (fs *FS) blockFor(in *inode, idx uint32, alloc bool) (blk uint32, changed bool, err error) {
	if idx < nDirect {
		if in.direct[idx] == 0 && alloc {
			b, err := fs.allocBlock()
			if err != nil {
				return 0, false, err
			}
			in.direct[idx] = b
			return b, true, nil
		}
		return in.direct[idx], false, nil
	}
	idx -= nDirect
	if idx >= indirectEntries {
		return 0, false, fmt.Errorf("exos: file block %d beyond maximum", idx+nDirect)
	}
	if in.indirect == 0 {
		if !alloc {
			return 0, false, nil
		}
		b, err := fs.allocBlock()
		if err != nil {
			return 0, false, err
		}
		frame, err := fs.cache.get(b, false)
		if err != nil {
			return 0, false, err
		}
		clear(fs.mem.Page(frame))
		fs.clock.Tick(hw.PageSize / hw.WordSize / 8)
		fs.cache.markDirty(b)
		in.indirect = b
		changed = true
	}
	frame, err := fs.cache.get(in.indirect, false)
	if err != nil {
		return 0, changed, err
	}
	p := fs.mem.Page(frame)[idx*hw.WordSize:]
	fs.clock.Tick(2)
	blk = binary.LittleEndian.Uint32(p)
	if blk == 0 && alloc {
		b, err := fs.allocBlock()
		if err != nil {
			return 0, changed, err
		}
		binary.LittleEndian.PutUint32(p, b)
		fs.cache.markDirty(in.indirect)
		blk = b
	}
	return blk, changed, nil
}

// Create makes an empty file and its directory entry.
func (fs *FS) Create(name string) (Inum, error) {
	if len(name) == 0 || len(name) > dirNameLen {
		return 0, fmt.Errorf("exos: bad file name %q", name)
	}
	if _, err := fs.Lookup(name); err == nil {
		return 0, fmt.Errorf("exos: %q exists", name)
	}
	// Find a free inode.
	var inum Inum
	found := false
	for i := Inum(1); uint32(i) < fs.sb.ninodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return 0, err
		}
		if in.used == 0 {
			inum, found = i, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("exos: out of inodes")
	}
	if err := fs.writeInode(inum, inode{used: 1}); err != nil {
		return 0, err
	}
	if err := fs.addDirEnt(name, inum); err != nil {
		return 0, err
	}
	return inum, nil
}

// Lookup resolves a name in the root directory.
func (fs *FS) Lookup(name string) (Inum, error) {
	root, err := fs.readInode(rootInum)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, dirEntSize)
	for off := uint32(0); off < root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return 0, err
		}
		if entName(buf) == name {
			return Inum(binary.LittleEndian.Uint32(buf[dirNameLen:])), nil
		}
	}
	return 0, fmt.Errorf("exos: %q not found", name)
}

func entName(e []byte) string {
	n := 0
	for n < dirNameLen && e[n] != 0 {
		n++
	}
	return string(e[:n])
}

func (fs *FS) addDirEnt(name string, inum Inum) error {
	root, err := fs.readInode(rootInum)
	if err != nil {
		return err
	}
	// Reuse a tombstone if present.
	buf := make([]byte, dirEntSize)
	off := uint32(0)
	for ; off < root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return err
		}
		if buf[0] == 0 {
			break
		}
	}
	clear(buf)
	copy(buf[:dirNameLen], name)
	binary.LittleEndian.PutUint32(buf[dirNameLen:], uint32(inum))
	return fs.WriteAt(rootInum, off, buf)
}

// Unlink removes a name and frees its file.
func (fs *FS) Unlink(name string) error {
	root, err := fs.readInode(rootInum)
	if err != nil {
		return err
	}
	buf := make([]byte, dirEntSize)
	for off := uint32(0); off < root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return err
		}
		if entName(buf) != name {
			continue
		}
		inum := Inum(binary.LittleEndian.Uint32(buf[dirNameLen:]))
		// Tombstone the entry.
		clear(buf)
		if err := fs.WriteAt(rootInum, off, buf); err != nil {
			return err
		}
		// Free the file's blocks and inode.
		in, err := fs.readInode(inum)
		if err != nil {
			return err
		}
		for d := 0; d < nDirect; d++ {
			if in.direct[d] != 0 {
				if err := fs.freeBlock(in.direct[d]); err != nil {
					return err
				}
			}
		}
		if in.indirect != 0 {
			frame, err := fs.cache.get(in.indirect, false)
			if err != nil {
				return err
			}
			page := fs.mem.Page(frame)
			for e := uint32(0); e < indirectEntries; e++ {
				if b := binary.LittleEndian.Uint32(page[e*hw.WordSize:]); b != 0 {
					if err := fs.freeBlock(b); err != nil {
						return err
					}
				}
			}
			fs.clock.Tick(indirectEntries / 8)
			if err := fs.freeBlock(in.indirect); err != nil {
				return err
			}
		}
		return fs.writeInode(inum, inode{})
	}
	return fmt.Errorf("exos: %q not found", name)
}

// Size reports a file's length.
func (fs *FS) Size(i Inum) (uint32, error) {
	in, err := fs.readInode(i)
	if err != nil {
		return 0, err
	}
	if in.used == 0 {
		return 0, fmt.Errorf("exos: inode %d not in use", i)
	}
	return in.size, nil
}

// ReadAt fills buf from the file starting at off; short reads at EOF.
func (fs *FS) ReadAt(i Inum, off uint32, buf []byte) (int, error) {
	in, err := fs.readInode(i)
	if err != nil {
		return 0, err
	}
	return fs.readAt(i, in, off, buf)
}

func (fs *FS) readAt(i Inum, in inode, off uint32, buf []byte) (int, error) {
	if off >= in.size {
		return 0, nil
	}
	n := uint32(len(buf))
	if off+n > in.size {
		n = in.size - off
	}
	done := uint32(0)
	for done < n {
		blkIdx := (off + done) / hw.PageSize
		blkOff := (off + done) % hw.PageSize
		blk, _, err := fs.blockFor(&in, blkIdx, false)
		if err != nil {
			return int(done), err
		}
		chunk := hw.PageSize - blkOff
		if chunk > n-done {
			chunk = n - done
		}
		if blk == 0 {
			// Hole in a sparse file: reads as zeros, no disk traffic.
			clear(buf[done : done+chunk])
			fs.clock.Tick(uint64((chunk + 3) / 4))
			done += chunk
			continue
		}
		frame, err := fs.cache.get(blk, fs.advSequential)
		if err != nil {
			return int(done), err
		}
		fs.mem.CopyOut(buf[done:done+chunk], frame<<hw.PageShift+blkOff)
		done += chunk
	}
	return int(done), nil
}

// WriteAt stores buf into the file at off, growing it as needed (bounded
// by the direct blocks).
func (fs *FS) WriteAt(i Inum, off uint32, buf []byte) error {
	in, err := fs.readInode(i)
	if err != nil {
		return err
	}
	if in.used == 0 {
		return fmt.Errorf("exos: inode %d not in use", i)
	}
	end := off + uint32(len(buf))
	if end > MaxFileSize {
		return fmt.Errorf("exos: file too large (%d > %d)", end, MaxFileSize)
	}
	done := uint32(0)
	for done < uint32(len(buf)) {
		blkIdx := (off + done) / hw.PageSize
		blkOff := (off + done) % hw.PageSize
		blk, _, err := fs.blockFor(&in, blkIdx, true)
		if err != nil {
			return err
		}
		frame, err := fs.cache.get(blk, false)
		if err != nil {
			return err
		}
		chunk := hw.PageSize - blkOff
		if chunk > uint32(len(buf))-done {
			chunk = uint32(len(buf)) - done
		}
		fs.mem.CopyIn(frame<<hw.PageShift+blkOff, buf[done:done+chunk])
		fs.cache.markDirty(blk)
		done += chunk
	}
	if end > in.size {
		in.size = end
	}
	return fs.writeInode(i, in)
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Inum Inum
	Size uint32
}

// List enumerates the root directory.
func (fs *FS) List() ([]DirEntry, error) {
	root, err := fs.readInode(rootInum)
	if err != nil {
		return nil, err
	}
	var out []DirEntry
	buf := make([]byte, dirEntSize)
	for off := uint32(0); off < root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return nil, err
		}
		if buf[0] == 0 { // tombstone
			continue
		}
		inum := Inum(binary.LittleEndian.Uint32(buf[dirNameLen:]))
		size, err := fs.Size(inum)
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{Name: entName(buf), Inum: inum, Size: size})
	}
	return out, nil
}

// Rename atomically gives file old the name new, replacing (and
// freeing) any existing file of that name. Under a journaled mount the
// whole operation — tombstone, replacement free, entry rewrite — lands
// in one commit, so a crash exposes either both names' old binding or
// the new one, never an intermediate.
func (fs *FS) Rename(old, new string) error {
	if len(new) == 0 || len(new) > dirNameLen {
		return fmt.Errorf("exos: bad file name %q", new)
	}
	if old == new {
		return nil
	}
	inum, err := fs.Lookup(old)
	if err != nil {
		return err
	}
	if _, err := fs.Lookup(new); err == nil {
		if err := fs.Unlink(new); err != nil {
			return err
		}
	}
	root, err := fs.readInode(rootInum)
	if err != nil {
		return err
	}
	buf := make([]byte, dirEntSize)
	for off := uint32(0); off < root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return err
		}
		if entName(buf) != old || Inum(binary.LittleEndian.Uint32(buf[dirNameLen:])) != inum {
			continue
		}
		clear(buf)
		copy(buf[:dirNameLen], new)
		binary.LittleEndian.PutUint32(buf[dirNameLen:], uint32(inum))
		return fs.WriteAt(rootInum, off, buf)
	}
	return fmt.Errorf("exos: %q not found", old)
}

// Sync makes every completed operation durable: through the journal
// commit on a journaled mount (atomic — a crash yields either the
// previous Sync's state or this one), or a plain ordered write-back on
// a legacy mount (not crash-consistent; that is what the journal is
// for).
func (fs *FS) Sync() error {
	if fs.jn != nil {
		return fs.jn.commit()
	}
	return fs.cache.Sync()
}

// NewFSCache is the convenience constructor ExOS applications use: it
// allocates cacheFrames physical pages (registering their capabilities
// with the device) and builds the cache.
func NewFSCache(os *LibOS, dev *AegisDev, cacheFrames int, policy CachePolicy) (*BufCache, error) {
	frames := make([]uint32, 0, cacheFrames)
	for i := 0; i < cacheFrames; i++ {
		f, guard, err := os.K.AllocPage(os.Env, aegis.AnyFrame)
		if err != nil {
			return nil, err
		}
		dev.RegisterFrame(f, guard)
		frames = append(frames, f)
	}
	return NewBufCache(os.K.M.Phys, os.K.M.Clock, dev, frames, policy), nil
}
