package exos

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/hw"
)

// Mount-time structural audit: the fsck-style cross-check that the
// journal's block-level atomicity actually composed into a consistent
// file system. Replay/rollback (journal.go) guarantees each Sync is
// all-or-nothing; Audit proves the invariants that atomicity is
// supposed to preserve — no block owned twice, no bitmap leaks, no
// directory entry naming a dead inode, no allocated inode without a
// name. The chaos harness runs it after every reboot; a single
// violation fails the run.

// Audit walks the whole file system through the buffer cache and
// returns one human-readable line per structural violation (empty means
// clean). I/O errors abort the walk; a truncated audit proves nothing.
func (fs *FS) Audit() ([]string, error) {
	var bad []string
	sb := fs.sb

	// Superblock geometry.
	if sb.bitmapBlk != 1 || sb.inodeBlk != 2 || sb.dataBlk < sb.inodeBlk {
		bad = append(bad, fmt.Sprintf("superblock layout invalid: bitmap=%d inodes=%d data=%d",
			sb.bitmapBlk, sb.inodeBlk, sb.dataBlk))
	}
	if sb.dataBlk >= fs.dataEnd() || sb.nblocks > fs.dev.NumBlocks() {
		bad = append(bad, fmt.Sprintf("superblock ranges invalid: data=[%d,%d) nblocks=%d",
			sb.dataBlk, fs.dataEnd(), sb.nblocks))
		return bad, nil // further walking would index garbage
	}

	// Pass 1: every block pointer of every used inode — in range, and
	// owned exactly once.
	owner := make(map[uint32]Inum)
	named := make(map[Inum]int)
	claim := func(i Inum, b uint32, what string) {
		fs.clock.Tick(2)
		if b < sb.dataBlk || b >= fs.dataEnd() {
			bad = append(bad, fmt.Sprintf("inode %d: %s block %d outside data range [%d,%d)",
				i, what, b, sb.dataBlk, fs.dataEnd()))
			return
		}
		if prev, dup := owner[b]; dup {
			bad = append(bad, fmt.Sprintf("block %d referenced twice: inode %d and inode %d",
				b, prev, i))
			return
		}
		owner[b] = i
	}
	for i := Inum(0); uint32(i) < sb.ninodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return bad, err
		}
		if in.used == 0 {
			continue
		}
		if in.size > MaxFileSize {
			bad = append(bad, fmt.Sprintf("inode %d: size %d exceeds maximum", i, in.size))
		}
		for d := 0; d < nDirect; d++ {
			if in.direct[d] != 0 {
				claim(i, in.direct[d], "direct")
			}
		}
		if in.indirect != 0 {
			claim(i, in.indirect, "indirect")
			frame, err := fs.cache.get(in.indirect, false)
			if err != nil {
				return bad, err
			}
			page := fs.mem.Page(frame)
			for e := uint32(0); e < indirectEntries; e++ {
				if b := binary.LittleEndian.Uint32(page[e*hw.WordSize:]); b != 0 {
					claim(i, b, "indirect-entry")
				}
			}
			fs.clock.Tick(indirectEntries / 8)
		}
	}

	// Pass 2: the allocation bitmap must equal the reference map — a set
	// bit nobody references is a leak, a referenced block with a clear
	// bit is a use-after-free waiting to happen. Bits outside the data
	// range must never be set (metadata and journal blocks are not
	// bitmap-managed).
	frame, err := fs.cache.get(sb.bitmapBlk, false)
	if err != nil {
		return bad, err
	}
	bitmap := fs.mem.Page(frame)
	for b := uint32(0); b < sb.nblocks; b++ {
		set := bitmap[b/8]&(byte(1)<<(b%8)) != 0
		fs.clock.Tick(1)
		if b < sb.dataBlk || b >= fs.dataEnd() {
			if set {
				bad = append(bad, fmt.Sprintf("bitmap bit set for non-data block %d", b))
			}
			continue
		}
		_, referenced := owner[b]
		if set && !referenced {
			bad = append(bad, fmt.Sprintf("block %d allocated but unreferenced (leak)", b))
		}
		if !set && referenced {
			bad = append(bad, fmt.Sprintf("block %d referenced by inode %d but free in bitmap",
				b, owner[b]))
		}
	}

	// Pass 3: the root directory — well-formed entries, live targets, no
	// duplicate names, each file named exactly once.
	root, err := fs.readInode(rootInum)
	if err != nil {
		return bad, err
	}
	if root.used == 0 {
		bad = append(bad, "root inode not in use")
		return bad, nil
	}
	if root.size%dirEntSize != 0 {
		bad = append(bad, fmt.Sprintf("root directory size %d not a multiple of %d",
			root.size, dirEntSize))
	}
	names := make(map[string]uint32)
	buf := make([]byte, dirEntSize)
	for off := uint32(0); off+dirEntSize <= root.size; off += dirEntSize {
		if _, err := fs.readAt(rootInum, root, off, buf); err != nil {
			return bad, err
		}
		if buf[0] == 0 { // tombstone
			continue
		}
		name := entName(buf)
		inum := Inum(binary.LittleEndian.Uint32(buf[dirNameLen:]))
		if prev, dup := names[name]; dup {
			bad = append(bad, fmt.Sprintf("duplicate directory entry %q (offsets %d and %d)",
				name, prev, off))
		}
		names[name] = off
		if uint32(inum) >= sb.ninodes {
			bad = append(bad, fmt.Sprintf("entry %q names out-of-range inode %d", name, inum))
			continue
		}
		in, err := fs.readInode(inum)
		if err != nil {
			return bad, err
		}
		if in.used == 0 {
			bad = append(bad, fmt.Sprintf("entry %q names free inode %d (dangling)", name, inum))
		}
		named[inum]++
	}
	for i := Inum(1); uint32(i) < sb.ninodes; i++ {
		in, err := fs.readInode(i)
		if err != nil {
			return bad, err
		}
		if in.used == 0 {
			continue
		}
		switch named[i] {
		case 0:
			bad = append(bad, fmt.Sprintf("inode %d in use but has no directory entry (orphan)", i))
		case 1:
		default:
			bad = append(bad, fmt.Sprintf("inode %d has %d directory entries (links unsupported)",
				i, named[i]))
		}
	}
	return bad, nil
}
