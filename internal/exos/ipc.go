package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// IPC abstractions (§6.1): built by *application code* on two Aegis
// primitives — physical pages shared by capability, and protected control
// transfer. "Aegis's efficient protected control transfer allows
// applications to construct a wide array of efficient IPC primitives by
// trading performance for additional functionality."

// Pipe is the ExOS pipe: a shared-memory circular buffer plus directed
// yield. Both ends hold the same physical frame under their own virtual
// mappings; the buffer layout is: word 0 head, word 1 tail, words 2..N-1
// data ring.
type Pipe struct {
	k         *aegis.Kernel
	base      uint32 // physical base of the ring frame
	self      *LibOS
	peer      *aegis.Env
	slots     uint32
	optimized bool
}

const (
	pipeHead = 0
	pipeTail = hw.WordSize
	pipeData = 2 * hw.WordSize
)

// NewPipe connects two library OS instances with a fresh shared ring. The
// creator allocates the page and grants the peer a read/write capability
// (applications, not the kernel, decide sharing policy).
func NewPipe(a, b *LibOS) (*Pipe, *Pipe, error) {
	frame, guard, err := a.K.AllocPage(a.Env, aegis.AnyFrame)
	if err != nil {
		return nil, nil, err
	}
	base := frame << hw.PageShift
	slots := uint32((hw.PageSize - pipeData) / hw.WordSize)
	pa := &Pipe{k: a.K, base: base, self: a, peer: b.Env, slots: slots}
	pb := &Pipe{k: b.K, base: base, self: b, peer: a.Env, slots: slots}
	_ = guard // both ends may map the frame; the ring is accessed via its physical page here
	return pa, pb, nil
}

// SetOptimized selects the pipe' variant of Table 8: the buffer-management
// generality (variable-length records, head/tail wraparound checks) is
// replaced by a single-word mailbox protocol.
func (p *Pipe) SetOptimized(on bool) { p.optimized = on }

// Write puts one word into the ring. It never blocks in the benchmarks'
// regime (ring >> in-flight words); a full ring yields to the reader.
func (p *Pipe) Write(v uint32) {
	p.self.Enter()
	phys := p.k.M.Phys
	if p.optimized {
		// pipe': single-slot mailbox — one store + one flag store.
		phys.WriteWord(p.base+pipeData, v)
		phys.WriteWord(p.base+pipeHead, 1)
		return
	}
	p.k.M.Clock.Tick(6) // stub: bounds/wrap arithmetic
	for {
		head := phys.ReadWord(p.base + pipeHead)
		tail := phys.ReadWord(p.base + pipeTail)
		if (head+1)%p.slots != tail%p.slots {
			phys.WriteWord(p.base+pipeData+(head%p.slots)*hw.WordSize, v)
			phys.WriteWord(p.base+pipeHead, head+1)
			return
		}
		p.k.Yield(p.peer.ID)
	}
}

// TryRead removes one word if available.
func (p *Pipe) TryRead() (uint32, bool) {
	p.self.Enter()
	phys := p.k.M.Phys
	if p.optimized {
		if phys.ReadWord(p.base+pipeHead) == 0 {
			return 0, false
		}
		v := phys.ReadWord(p.base + pipeData)
		phys.WriteWord(p.base+pipeHead, 0)
		return v, true
	}
	p.k.M.Clock.Tick(6)
	head := phys.ReadWord(p.base + pipeHead)
	tail := phys.ReadWord(p.base + pipeTail)
	if head == tail {
		return 0, false
	}
	v := phys.ReadWord(p.base + pipeData + (tail%p.slots)*hw.WordSize)
	phys.WriteWord(p.base+pipeTail, tail+1)
	return v, true
}

// Read blocks (donating the slice to the writer) until a word arrives.
func (p *Pipe) Read() uint32 {
	for {
		if v, ok := p.TryRead(); ok {
			return v
		}
		p.k.Yield(p.peer.ID)
	}
}

// Shm is the shared-memory ping-pong primitive of Table 8: "shm: time for
// two processes to 'ping-pong' using a shared memory location". One word
// of state in a shared frame; turn-taking by directed yield.
type Shm struct {
	k    *aegis.Kernel
	base uint32
	self *LibOS
	peer *aegis.Env
}

// NewShm builds both ends over a fresh shared frame.
func NewShm(a, b *LibOS) (*Shm, *Shm, error) {
	frame, _, err := a.K.AllocPage(a.Env, aegis.AnyFrame)
	if err != nil {
		return nil, nil, err
	}
	base := frame << hw.PageShift
	return &Shm{k: a.K, base: base, self: a, peer: b.Env}, &Shm{k: b.K, base: base, self: b, peer: a.Env}, nil
}

// Store writes the shared word.
func (s *Shm) Store(v uint32) {
	s.self.Enter()
	s.k.M.Phys.WriteWord(s.base, v)
}

// Load reads the shared word.
func (s *Shm) Load() uint32 {
	s.self.Enter()
	return s.k.M.Phys.ReadWord(s.base)
}

// AwaitChange yields to the peer until the word differs from old, then
// returns its value.
func (s *Shm) AwaitChange(old uint32) uint32 {
	for {
		if v := s.Load(); v != old {
			return v
		}
		s.k.Yield(s.peer.ID)
	}
}

// RPC ------------------------------------------------------------------

// Handler is a server procedure: four word arguments in, two results out
// (the register-file message of the PCT contract).
type Handler func(args [4]uint32) [2]uint32

// Server exports procedures over protected control transfer.
type Server struct {
	os    *LibOS
	procs map[uint32]Handler
	// Trusted servers save/restore only the registers they use; untrusting
	// clients do the full callee-saved save around the call (Table 12).
	replyTo aegis.EnvID
	args    [4]uint32
	res     [2]uint32
	proc    uint32
}

// NewServer attaches an RPC dispatcher to a library OS instance.
func NewServer(os *LibOS) *Server {
	s := &Server{os: os, procs: make(map[uint32]Handler)}
	os.Env.NativeEntry = s.entry
	return s
}

// Register exports a procedure under an identifier.
func (s *Server) Register(proc uint32, h Handler) { s.procs[proc] = h }

// entry is the server's protected entry point: demultiplex the procedure
// identifier (carried in a register), run it, and reply with a protected
// call back to the caller.
func (s *Server) entry(k *aegis.Kernel, caller aegis.EnvID) {
	k.M.Clock.Tick(8) // server stub: demux + frame setup
	// The caller's PCT installed its span context in our environment; the
	// handler runs as a serve span under it, and any work the handler
	// does (packet sends, nested calls) parents under the serve span.
	var serve ktrace.SpanRef
	if s.os.Env.Trace.Valid() {
		serve = k.Spans.Begin(k.M.Clock.Cycles(), ktrace.SpanIPCServe, uint32(s.os.Env.ID), s.os.Env.Trace, uint64(s.proc))
		s.os.Env.Trace = serve.Ctx()
	}
	h, ok := s.procs[s.proc]
	if !ok {
		s.res = [2]uint32{^uint32(0), 0}
	} else {
		s.res = h(s.args)
	}
	k.Spans.End(serve, k.M.Clock.Cycles())
	if err := k.ProtCall(caller, false); err != nil {
		// Caller vanished; drop the reply.
		_ = err
	}
	s.os.Env.Trace = ktrace.SpanContext{} // idle between requests
}

// Client calls a Server over PCT.
type Client struct {
	os      *LibOS
	srv     *Server
	trusted bool
	replied bool
}

// NewClient connects a caller to a server. trusted selects tlrpc (§7.1):
// the client trusts the server to preserve callee-saved registers, so the
// stub skips the save/restore of the full callee-saved set.
func NewClient(os *LibOS, srv *Server, trusted bool) *Client {
	c := &Client{os: os, srv: srv, trusted: trusted}
	os.Env.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {
		// Reply entry: the server's PCT lands here.
		c.replied = true
	}
	return c
}

// Call invokes proc with four word arguments, returning two results. The
// arguments and results travel in registers across the PCT, never through
// memory.
func (c *Client) Call(proc uint32, args [4]uint32) ([2]uint32, error) {
	k := c.os.K
	c.os.Enter() // the call is issued from the client's environment
	// The call span brackets issue-to-reply. The reply PCT copies the
	// server's context back into this environment (registers are the
	// message, and so is the trace), so the pre-call context is saved
	// and restored around the round trip.
	saved := c.os.Env.Trace
	var call ktrace.SpanRef
	if saved.Valid() {
		call = k.Spans.Begin(k.M.Clock.Cycles(), ktrace.SpanIPCCall, uint32(c.os.Env.ID), saved, uint64(proc))
		c.os.Env.Trace = call.Ctx()
	}
	if !c.trusted {
		// lrpc stub: save and later restore all callee-saved registers
		// (the server is not trusted to).
		k.M.Clock.Tick(hw.NumCalleeSaved)
	}
	k.M.Clock.Tick(4) // stub prologue
	c.srv.proc = proc
	c.srv.args = args
	c.replied = false
	if err := k.ProtCall(c.srv.os.Env.ID, false); err != nil {
		c.os.Env.Trace = saved
		return [2]uint32{}, err
	}
	if !c.replied {
		c.os.Env.Trace = saved
		return [2]uint32{}, fmt.Errorf("exos: rpc reply lost")
	}
	if !c.trusted {
		k.M.Clock.Tick(hw.NumCalleeSaved)
	} else {
		k.M.Clock.Tick(2) // tlrpc: the server restored what it used
	}
	k.Spans.End(call, k.M.Clock.Cycles())
	c.os.Env.Trace = saved
	return c.srv.res, nil
}
