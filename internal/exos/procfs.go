package exos

import (
	"fmt"
	"strconv"
	"strings"

	"exokernel/internal/aegis"
)

// /proc-style introspection (the read side of "visible resource
// management"). The kernel's accounting registry is public state — an
// exokernel has no secrets about who holds what — and ExOS renders it as
// the familiar procfs text protocol so applications (and the tooling in
// cmd/exotrace) can audit themselves and their neighbours.
//
// Paths:
//
//	/proc/stat        kernel-wide counters
//	/proc/self/status this environment's account
//	/proc/<id>/status environment <id>'s account
//
// Reads charge the simulated clock for the work they model: a protected
// entry into the registry plus a word-copy of the rendered text.

// ProcRead returns the contents of an introspection path.
func (os *LibOS) ProcRead(path string) (string, error) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) < 2 || parts[0] != "proc" {
		return "", fmt.Errorf("exos: no such proc path %q", path)
	}
	os.K.M.Clock.Tick(12) // protected entry into the registry
	var out string
	switch {
	case len(parts) == 2 && parts[1] == "stat":
		out = formatStat(os.K.GlobalStats())
	case len(parts) == 3 && parts[2] == "status":
		id := os.Env.ID
		if parts[1] != "self" {
			n, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				return "", fmt.Errorf("exos: bad environment id %q", parts[1])
			}
			id = aegis.EnvID(n)
		}
		e, ok := os.K.Env(id)
		if !ok {
			return "", fmt.Errorf("exos: no environment %d", id)
		}
		out = formatStatus(e, os.K.Account(id))
	default:
		return "", fmt.Errorf("exos: no such proc path %q", path)
	}
	os.K.M.Clock.Tick(uint64((len(out) + 3) / 4)) // copy out the text
	return out, nil
}

// formatStat renders the kernel-wide counters as key-value lines.
func formatStat(s aegis.Stats) string {
	var b strings.Builder
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("syscalls", s.Syscalls)
	kv("exceptions", s.Exceptions)
	kv("tlb_misses", s.TLBMisses)
	kv("stlb_hits", s.STLBHits)
	kv("tlb_upcalls", s.TLBUpcalls)
	kv("prot_calls", s.ProtCalls)
	kv("timer_ticks", s.TimerTicks)
	kv("pkt_delivered", s.PktDelivered)
	kv("pkt_dropped", s.PktDropped)
	kv("ash_runs", s.ASHRuns)
	kv("revocations", s.Revocations)
	kv("aborts", s.Aborts)
	kv("killed_envs", s.KilledEnvs)
	return b.String()
}

// formatStatus renders one environment's account.
func formatStatus(e *aegis.Env, a aegis.EnvAccount) string {
	var b strings.Builder
	state := "live"
	if e.Dead {
		state = "dead"
	}
	fmt.Fprintf(&b, "env %d\nstate %s\n", e.ID, state)
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("cycles", a.Cycles)
	kv("syscalls", a.Syscalls)
	kv("exceptions", a.Exceptions)
	kv("tlb_misses", a.TLBMisses)
	kv("tlb_upcalls", a.TLBUpcalls)
	kv("pkt_delivered", a.PktDelivered)
	kv("frames_held", a.Frames)
	kv("extents_held", a.Extents)
	kv("endpoints_held", a.Endpoints)
	kv("slices", e.Slices)
	return b.String()
}
