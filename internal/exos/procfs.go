package exos

import (
	"fmt"
	"strconv"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/metrics"
)

// /proc-style introspection (the read side of "visible resource
// management"). The kernel's accounting registry is public state — an
// exokernel has no secrets about who holds what — and ExOS renders it as
// the familiar procfs text protocol so applications (and the tooling in
// cmd/exotrace) can audit themselves and their neighbours.
//
// Paths:
//
//	/proc/machine     the hardware underneath: model, clock rate, cycle
//	                  count, memory/TLB/disk geometry, and the flight
//	                  recorder's census (the local slice of what the
//	                  fleet bus aggregates across machines)
//	/proc/stat        kernel-wide counters + histogram summary
//	/proc/histograms  kernel-wide cycle-latency histograms, including
//	                  the per-syscall-number breakdown
//	/proc/self/status this environment's account
//	/proc/<id>/status environment <id>'s account
//	/proc/self/hist   this environment's latency histograms
//	/proc/<id>/hist   environment <id>'s latency histograms (a destroyed
//	                  environment reads back zeroed: its histograms are
//	                  reclaimed with its other resources)
//
// Reads charge the simulated clock for the work they model: a protected
// entry into the registry plus a word-copy of the rendered text.

// ProcRead returns the contents of an introspection path.
func (os *LibOS) ProcRead(path string) (string, error) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) < 2 || parts[0] != "proc" {
		return "", fmt.Errorf("exos: no such proc path %q", path)
	}
	os.K.M.Clock.Tick(12) // protected entry into the registry
	var out string
	switch {
	case len(parts) == 2 && parts[1] == "machine":
		out = formatMachine(os.K)
	case len(parts) == 2 && parts[1] == "stat":
		out = formatStat(os.K)
	case len(parts) == 2 && parts[1] == "histograms":
		out = formatHistograms(os.K)
	case len(parts) == 3 && parts[1] == "net" && parts[2] == "tcp":
		out = formatNetTCP(os.Net)
	case len(parts) == 3 && (parts[2] == "status" || parts[2] == "hist"):
		id := os.Env.ID
		if parts[1] != "self" {
			n, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				return "", fmt.Errorf("exos: bad environment id %q", parts[1])
			}
			id = aegis.EnvID(n)
		}
		e, ok := os.K.Env(id)
		if !ok {
			return "", fmt.Errorf("exos: no environment %d", id)
		}
		if parts[2] == "hist" {
			out = formatEnvHist(os.K, e)
		} else {
			out = formatStatus(e, os.K.Account(id))
		}
	default:
		return "", fmt.Errorf("exos: no such proc path %q", path)
	}
	os.K.M.Clock.Tick(uint64((len(out) + 3) / 4)) // copy out the text
	return out, nil
}

// histLine renders one histogram summary as a parseable line:
// "hist <name> <count> <min> <mean> <p50> <p90> <p99> <max>" (cycles).
func histLine(b *strings.Builder, name string, s metrics.Snapshot) {
	fmt.Fprintf(b, "hist %s %d %d %.1f %d %d %d %d\n",
		name, s.Count, s.Min, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// histHeader is the column legend written before histogram lines.
const histHeader = "# hist <op> <count> <min> <mean> <p50> <p90> <p99> <max> cycles\n"

// formatHistograms renders every kernel-wide cycle-latency histogram:
// the operation classes, then the per-syscall-number breakdown (only
// numbers that were actually invoked).
func formatHistograms(k *aegis.Kernel) string {
	var b strings.Builder
	b.WriteString(histHeader)
	for op := aegis.OpClass(0); op < aegis.NumOpClasses; op++ {
		histLine(&b, op.String(), k.Stats.OpSnapshot(op))
	}
	for code := uint32(0); code < aegis.NumSyscallHists; code++ {
		s := k.Stats.SyscallSnapshot(code)
		if s.Count == 0 {
			continue
		}
		histLine(&b, "syscall/"+aegis.SyscallName(code), s)
	}
	return b.String()
}

// formatEnvHist renders one environment's latency histograms. After
// DestroyEnv every line reads zero — reclaimed, like the frames.
func formatEnvHist(k *aegis.Kernel, e *aegis.Env) string {
	var b strings.Builder
	state := "live"
	if e.Dead {
		state = "dead"
	}
	fmt.Fprintf(&b, "env %d\nstate %s\n", e.ID, state)
	b.WriteString(histHeader)
	for op := aegis.OpClass(0); op < aegis.NumOpClasses; op++ {
		histLine(&b, op.String(), k.Stats.EnvOpSnapshot(e.ID, op))
	}
	return b.String()
}

// formatMachine renders the hardware this kernel multiplexes: the model
// and clock, the resource geometry, and the flight recorder's census.
// All of it is observation of state that already exists — the same facts
// the fleet bus reads when this machine is a member.
func formatMachine(k *aegis.Kernel) string {
	c := k.M.Config
	var b strings.Builder
	fmt.Fprintf(&b, "model %s\n", c.Name)
	fmt.Fprintf(&b, "mhz %g\n", c.MHz)
	fmt.Fprintf(&b, "cycles %d\n", k.M.Clock.Cycles())
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("mem_pages", uint64(c.MemPages))
	kv("tlb_entries", uint64(c.TLBSize))
	kv("stlb_entries", uint64(c.STLBSize))
	kv("disk_blocks", uint64(c.DiskBlocks))
	kv("trace_total", k.Tracer.Total())
	kv("trace_held", uint64(k.Tracer.Len()))
	kv("trace_overwritten", k.Tracer.Dropped())
	return b.String()
}

// formatStat renders the kernel-wide counters as key-value lines,
// followed by a summary of the operation-class latency histograms (the
// full set, including the per-syscall breakdown, lives at
// /proc/histograms).
func formatStat(k *aegis.Kernel) string {
	s := k.GlobalStats()
	var b strings.Builder
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("syscalls", s.Syscalls)
	kv("exceptions", s.Exceptions)
	kv("tlb_misses", s.TLBMisses)
	kv("stlb_hits", s.STLBHits)
	kv("tlb_upcalls", s.TLBUpcalls)
	kv("prot_calls", s.ProtCalls)
	kv("timer_ticks", s.TimerTicks)
	kv("pkt_delivered", s.PktDelivered)
	kv("pkt_dropped", s.PktDropped)
	kv("ash_runs", s.ASHRuns)
	kv("revocations", s.Revocations)
	kv("aborts", s.Aborts)
	kv("killed_envs", s.KilledEnvs)
	kv("nic_rx_overflow", s.RxOverflow)
	d := k.M.Disk
	kv("disk_reads", d.Reads)
	kv("disk_writes", d.Writes)
	kv("disk_flushes", d.Flushes)
	kv("disk_flushed_blocks", d.FlushedBlocks)
	kv("disk_cache_dirty", uint64(d.CacheDirty()))
	kv("disk_power_fails", d.PowerFails)
	kv("disk_crash_kept", d.CrashKept)
	kv("disk_crash_lost", d.CrashLost)
	b.WriteString(histHeader)
	for op := aegis.OpClass(0); op < aegis.NumOpClasses; op++ {
		histLine(&b, op.String(), k.Stats.OpSnapshot(op))
	}
	return b.String()
}

// formatNetTCP renders the live TCP connections with their loss-recovery
// counters: one line per connection, open order, parseable key=value
// pairs. The transport is library code, so its internals are as
// inspectable as the kernel's.
func formatNetTCP(n *Net) string {
	var b strings.Builder
	b.WriteString("# tcp local=<port> remote=<ip>:<port> state=<s> retransmits backoffs checksum_drops out_of_order acked\n")
	if n == nil {
		return b.String()
	}
	for _, c := range n.conns {
		fmt.Fprintf(&b, "tcp local=%d remote=%d:%d state=%s retransmits=%d backoffs=%d checksum_drops=%d out_of_order=%d acked=%d\n",
			c.localPort, c.remoteIP, c.remotePort, c.State(),
			c.Retransmits, c.Backoffs, c.ChecksumDrops, c.OutOfOrder, c.Acked)
	}
	return b.String()
}

// formatStatus renders one environment's account.
func formatStatus(e *aegis.Env, a aegis.EnvAccount) string {
	var b strings.Builder
	state := "live"
	if e.Dead {
		state = "dead"
	}
	fmt.Fprintf(&b, "env %d\nstate %s\n", e.ID, state)
	kv := func(k string, v uint64) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	kv("cycles", a.Cycles)
	kv("syscalls", a.Syscalls)
	kv("exceptions", a.Exceptions)
	kv("tlb_misses", a.TLBMisses)
	kv("tlb_upcalls", a.TLBUpcalls)
	kv("pkt_delivered", a.PktDelivered)
	kv("frames_held", a.Frames)
	kv("extents_held", a.Extents)
	kv("endpoints_held", a.Endpoints)
	kv("slices", e.Slices)
	return b.String()
}
