package exos

import (
	"bytes"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
)

type tcpWorld struct {
	seg      *ether.Segment
	ma, mb   *hw.Machine
	ka, kb   *aegis.Kernel
	osA, osB *LibOS
	na, nb   *Net
}

func newTCPWorld(t *testing.T) *tcpWorld {
	t.Helper()
	w := &tcpWorld{seg: ether.NewSegment()}
	w.ma = hw.NewMachine(hw.DEC5000)
	w.mb = hw.NewMachine(hw.DEC5000)
	w.ka = aegis.New(w.ma)
	w.kb = aegis.New(w.mb)
	w.seg.Attach(w.ma)
	w.seg.Attach(w.mb)
	w.na = NewNet(w.ka, tMacA, tIPA)
	w.nb = NewNet(w.kb, tMacB, tIPB)
	var err error
	if w.osA, err = Boot(w.ka); err != nil {
		t.Fatal(err)
	}
	if w.osB, err = Boot(w.kb); err != nil {
		t.Fatal(err)
	}
	return w
}

// pump runs both endpoints' protocol processing until quiescent or the
// predicate holds. Clock advance between rounds lets retransmission
// timers expire.
func (w *tcpWorld) pump(t *testing.T, a, b *TCPConn, done func() bool) {
	t.Helper()
	for round := 0; round < 400; round++ {
		a.Process()
		b.Process()
		if done() {
			return
		}
		w.ma.Clock.Tick(2000)
		w.mb.Clock.Tick(2000)
		w.seg.Sync()
	}
	t.Fatalf("pump did not converge: a=%v b=%v", a.State(), b.State())
}

func dialPair(t *testing.T, w *tcpWorld) (*TCPConn, *TCPConn) {
	t.Helper()
	srv, err := ListenTCP(w.nb, w.osB, 80)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialTCP(w.na, w.osA, 30000, tMacB, tIPB, 80)
	if err != nil {
		t.Fatal(err)
	}
	w.pump(t, cli, srv, func() bool { return cli.Established() && srv.Established() })
	return cli, srv
}

func TestTCPHandshake(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	if cli.State() != "established" || srv.State() != "established" {
		t.Errorf("states: %v / %v", cli.State(), srv.State())
	}
	if cli.Retransmits != 0 || srv.Retransmits != 0 {
		t.Errorf("lossless handshake retransmitted: %d/%d", cli.Retransmits, srv.Retransmits)
	}
}

func TestTCPDataTransfer(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	msg := bytes.Repeat([]byte("exokernel!"), 300) // 3000 bytes: 6 segments
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.pump(t, cli, srv, func() bool {
		got = append(got, srv.Recv()...)
		return len(got) >= len(msg)
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted: %d bytes, want %d", len(got), len(msg))
	}
	// Both directions.
	reply := []byte("ack from the server side")
	if err := srv.Send(reply); err != nil {
		t.Fatal(err)
	}
	var back []byte
	w.pump(t, cli, srv, func() bool {
		back = append(back, cli.Recv()...)
		return len(back) >= len(reply)
	})
	if !bytes.Equal(back, reply) {
		t.Fatalf("reverse stream corrupted: %q", back)
	}
}

func TestTCPRetransmissionUnderLoss(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	// Drop roughly a third of frames, aperiodically (seeded generator, so
	// runs stay deterministic without the pathological lockstep a strict
	// every-Nth pattern produces).
	rng := uint64(0x5DEECE66D)
	w.seg.Drop = func(from *hw.Machine, frame []byte) bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>33%3 == 0
	}
	msg := bytes.Repeat([]byte("lossy-channel-data."), 200) // ~3.8 KB
	if err := cli.Send(msg); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.pump(t, cli, srv, func() bool {
		got = append(got, srv.Recv()...)
		return len(got) >= len(msg)
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("stream corrupted under loss: %d bytes, want %d", len(got), len(msg))
	}
	if cli.Retransmits == 0 {
		t.Error("no retransmissions despite 33% loss")
	}
	if w.seg.Dropped == 0 {
		t.Error("loss injector never fired")
	}
}

func TestTCPHandshakeSurvivesSynLoss(t *testing.T) {
	w := newTCPWorld(t)
	srv, err := ListenTCP(w.nb, w.osB, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the first two frames (the SYN and the SYN|ACK retry).
	n := 0
	w.seg.Drop = func(from *hw.Machine, frame []byte) bool {
		n++
		return n <= 2
	}
	cli, err := DialTCP(w.na, w.osA, 30001, tMacB, tIPB, 80)
	if err != nil {
		t.Fatal(err)
	}
	w.pump(t, cli, srv, func() bool { return cli.Established() && srv.Established() })
	if cli.Retransmits == 0 {
		t.Error("client never retransmitted its SYN")
	}
}

func TestTCPCloseBothDirections(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	if err := cli.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	w.pump(t, cli, srv, func() bool {
		srv.Recv()
		if srv.State() == "close-wait" {
			srv.Close()
		}
		return cli.Closed() && srv.Closed()
	})
	if !cli.Closed() || !srv.Closed() {
		t.Errorf("states after close: %v / %v", cli.State(), srv.State())
	}
	if err := cli.Send([]byte("too late")); err == nil {
		t.Error("send on closed connection succeeded")
	}
}

func TestTCPWindowLimitsInflight(t *testing.T) {
	w := newTCPWorld(t)
	cli, _ := dialPair(t, w)
	// Queue far more than the window; without processing ACKs, at most
	// tcpWindowSegs segments may be in flight.
	big := make([]byte, 20*tcpMSS)
	if err := cli.Send(big); err != nil {
		t.Fatal(err)
	}
	if len(cli.inflight) > tcpWindowSegs {
		t.Errorf("inflight = %d, window is %d", len(cli.inflight), tcpWindowSegs)
	}
	if len(cli.pending) == 0 {
		t.Error("nothing queued beyond the window?")
	}
}

func TestTCPKernelDemuxPerConnection(t *testing.T) {
	// Two concurrent connections to one server port: the kernel's merged
	// filter trie routes each flow to its own endpoint.
	w := newTCPWorld(t)
	srv1, err := ListenTCP(w.nb, w.osB, 80)
	if err != nil {
		t.Fatal(err)
	}
	cli1, err := DialTCP(w.na, w.osA, 40001, tMacB, tIPB, 80)
	if err != nil {
		t.Fatal(err)
	}
	w.pump(t, cli1, srv1, func() bool { return cli1.Established() && srv1.Established() })

	srv2, err := ListenTCP(w.nb, w.osB, 81)
	if err != nil {
		t.Fatal(err)
	}
	cli2, err := DialTCP(w.na, w.osA, 40002, tMacB, tIPB, 81)
	if err != nil {
		t.Fatal(err)
	}
	w.pump(t, cli2, srv2, func() bool { return cli2.Established() && srv2.Established() })

	if err := cli1.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := cli2.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	var g1, g2 []byte
	w.pump(t, cli1, srv1, func() bool {
		srv2.Process()
		g1 = append(g1, srv1.Recv()...)
		g2 = append(g2, srv2.Recv()...)
		return len(g1) >= 3 && len(g2) >= 3
	})
	if string(g1) != "one" || string(g2) != "two" {
		t.Errorf("demux crossed streams: %q / %q", g1, g2)
	}
}

func TestTCPFieldHelpers(t *testing.T) {
	f := pkt.Flow{Proto: pkt.ProtoTCP, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, f, []byte("x"))
	pkt.SetTCP(frame, 111, 222, pkt.TCPSyn|pkt.TCPAck, 999)
	if pkt.TCPSeq(frame) != 111 || pkt.TCPAckNum(frame) != 222 {
		t.Error("seq/ack round trip failed")
	}
	if pkt.TCPFlags(frame) != pkt.TCPSyn|pkt.TCPAck {
		t.Error("flags round trip failed")
	}
	if pkt.TCPWindow(frame) != 999 {
		t.Error("window round trip failed")
	}
	if !pkt.IsTCP(frame) {
		t.Error("IsTCP false for TCP frame")
	}
	if pkt.IsTCP([]byte{1, 2}) {
		t.Error("IsTCP true for garbage")
	}
}

func TestTCPRelease(t *testing.T) {
	w := newTCPWorld(t)
	cli, srv := dialPair(t, w)
	if err := srv.Release(); err != nil {
		t.Fatal(err)
	}
	if !srv.Closed() {
		t.Error("released connection not closed")
	}
	// Frames for the released connection are dropped by the kernel.
	if err := cli.Send([]byte("anyone there?")); err != nil {
		t.Fatal(err)
	}
	if w.kb.Stats.PktDropped == 0 {
		t.Error("frames for a released connection were delivered")
	}
	if err := srv.Release(); err == nil {
		t.Error("double release succeeded")
	}
}
