// Package exos is the library operating system (§6 of the paper): UNIX-ish
// abstractions — virtual memory, IPC, scheduling, networking — implemented
// entirely at application level on the Aegis primitives. Nothing in here
// is trusted by the kernel or by other applications; a different library OS
// (or a specialized one, §7) can coexist on the same machine.
//
// ExOS code is modelled as native Go hooks attached to an Aegis
// environment. Every hook charges the simulated clock for the work it
// performs (page-table walks, register saves, buffer copies), so measured
// costs come from executed paths. VM-run programs can attach the same
// hooks: the program faults, Aegis dispatches, and the ExOS hook services
// the fault exactly as downloaded handler code would.
package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

// LibOS is one application's library operating system instance.
type LibOS struct {
	K   *aegis.Kernel
	Env *aegis.Env
	PT  PageTable

	// Net is the network multiplexor this LibOS last bound a socket or
	// connection through (set by Net.Bind and the TCP opens). ProcRead
	// uses it to render /proc/net/tcp; nil until networking is used.
	Net *Net

	// OnFault is the application's memory-fault handler ("signal handler"
	// in UNIX terms; the dispatch substrate for DSM, GC barriers, and the
	// Appel-Li trap benchmark). It returns true if the fault was resolved
	// and the faulting instruction should be retried.
	OnFault func(os *LibOS, va uint32, write bool) bool
	// OnExc handles non-memory exceptions (unaligned access, overflow,
	// coprocessor unusable). Return value as aegis.Resume.
	OnExc func(os *LibOS, t aegis.TrapInfo) aegis.Resume

	// Faults counts faults delivered to OnFault.
	Faults uint64
	// Yields counts voluntary slice donations made by the default
	// interrupt context.
	Yields uint64
}

// Boot creates an environment and attaches a LibOS to it. code may be nil
// for native applications.
func Boot(k *aegis.Kernel) (*LibOS, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	return Attach(k, env), nil
}

// Attach wires ExOS handlers onto an existing environment (including
// VM-run environments created with kernel.NewEnv(code)).
func Attach(k *aegis.Kernel, env *aegis.Env) *LibOS {
	os := &LibOS{K: k, Env: env, PT: NewPageTable(k)}
	env.NativeTLBMiss = os.tlbMiss
	env.NativeExc = os.exception
	env.NativeInt = os.timerInterrupt
	env.NativeRevoke = os.revoke
	return os
}

// tlbMiss is ExOS's addressing context: the application-level TLB refill
// handler. It walks the application's own page table and asks the kernel
// to install the binding (presenting the page capability).
func (os *LibOS) tlbMiss(k *aegis.Kernel, va uint32, write bool) bool {
	pte := os.PT.Lookup(va)
	if pte == nil || pte.Perms&PTValid == 0 {
		return false // unmapped: becomes a fault
	}
	if write && pte.Perms&PTWrite == 0 {
		return false // write to read-only: becomes a protection fault
	}
	return os.installPTE(va, pte, write)
}

// installPTE loads a page-table entry into the hardware: read-only until
// the first write so the dirty bit is maintained by software, as on any
// R3000-era system.
func (os *LibOS) installPTE(va uint32, pte *PTE, write bool) bool {
	var perms uint8
	if write {
		pte.Perms |= PTDirty
	}
	if pte.Perms&PTWrite != 0 && pte.Perms&PTDirty != 0 {
		perms = hw.PermWrite
	}
	pte.Perms |= PTRef
	if err := os.K.InstallMapping(os.Env, va, pte.Frame, perms, pte.Guard); err != nil {
		return false
	}
	return true
}

// exception is ExOS's exception context. Protection faults repair the
// dirty-tracking state or forward to the application's fault handler;
// other causes go to OnExc.
func (os *LibOS) exception(k *aegis.Kernel, t aegis.TrapInfo) {
	switch t.Cause {
	case hw.ExcTLBMod, hw.ExcTLBMissL, hw.ExcTLBMissS:
		write := t.Cause != hw.ExcTLBMissL
		pte := os.PT.Lookup(t.BadVAddr)
		if pte != nil && pte.Perms&PTValid != 0 && (!write || pte.Perms&PTWrite != 0) {
			// Dirty-tracking refresh: upgrade the mapping in place.
			if os.installPTE(t.BadVAddr, pte, write) {
				k.ReturnFromException(os.Env, aegis.ResumeRetry)
				return
			}
		}
		// Copy-on-write sharing is library machinery, like dirty tracking:
		// break it before consulting the application's handler.
		if write && os.cowFault(t.BadVAddr) {
			k.ReturnFromException(os.Env, aegis.ResumeRetry)
			return
		}
		// Application-visible fault.
		os.Faults++
		if os.OnFault != nil {
			os.chargeUpcall()
			if os.OnFault(os, t.BadVAddr, write) {
				k.ReturnFromException(os.Env, aegis.ResumeRetry)
				return
			}
		}
		k.Kill(os.Env, t)
	default:
		if os.OnExc != nil {
			os.chargeUpcall()
			k.ReturnFromException(os.Env, os.OnExc(os, t))
			return
		}
		k.Kill(os.Env, t)
	}
}

// chargeUpcall accounts for entering the application's registered handler:
// the stub saves the caller-saved registers it will use and establishes
// the handler frame (about a dozen stores and loads of user code).
func (os *LibOS) chargeUpcall() {
	os.K.M.Clock.Tick(14)
}

// timerInterrupt is ExOS's interrupt context: "the application's handlers
// are responsible for general-purpose context switching: saving and
// restoring live registers, releasing locks, etc." The default saves the
// register file and donates the slice to the next environment.
func (os *LibOS) timerInterrupt(k *aegis.Kernel) {
	k.M.Clock.Tick(hw.NumRegs + 6) // save live registers + epilogue
	os.Yields++
	k.Yield(aegis.YieldNext)
}

// revoke is ExOS's visible-revocation handler: release the named page.
// The default policy complies immediately: it removes its own page-table
// entries for the frame and deallocates it. Library operating systems
// with write-back state override OnRevoke via SetRevokeHandler.
func (os *LibOS) revoke(k *aegis.Kernel, frame uint32) bool {
	pte, va := os.PT.FindFrame(frame)
	if pte == nil {
		return false
	}
	guard := pte.Guard // Unmap clears the entry; keep the capability
	os.Unmap(va)
	return k.DeallocPage(frame, guard) == nil
}

// Enter establishes this LibOS's environment as the running one, donating
// the current slice to it if another environment is running (a charged
// directed yield). IPC operations call it so that cross-environment
// hand-offs pay the real context-switch cost even though the experiment
// driver is a single thread of Go control.
func (os *LibOS) Enter() {
	if os.K.CurEnv() != os.Env {
		os.K.Yield(os.Env.ID)
	}
}

// String identifies the instance in diagnostics.
func (os *LibOS) String() string {
	return fmt.Sprintf("exos(env %d)", os.Env.ID)
}
