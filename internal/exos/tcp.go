package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/dpf"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
)

// A reliable byte-stream protocol at application level — the §6.3/§7.2
// argument taken past UDP: because the transport is library code, an
// application can specialize it (the paper's ExOS successors built
// Cheetah, a webserver with a merged TCP/file cache, on exactly this
// freedom). This TCP-lite implements the three-way handshake, cumulative
// acknowledgements, retransmission from a timer on the *simulated* clock,
// in-order delivery, and FIN teardown. Congestion control and window
// scaling are out of scope; the window is a fixed segment count.
//
// Like everything else in ExOS, the kernel's only involvement is the
// downloaded packet filter that routes this connection's frames and the
// copy into the socket buffer at interrupt time.

// TCP connection states.
type tcpState int

const (
	tcpClosed tcpState = iota
	tcpListen
	tcpSynSent
	tcpSynRcvd
	tcpEstablished
	tcpFinWait
	tcpCloseWait
	tcpClosedDone
)

func (s tcpState) String() string {
	return [...]string{"closed", "listen", "syn-sent", "syn-rcvd",
		"established", "fin-wait", "close-wait", "done"}[s]
}

// tcpMSS is the payload bytes per segment.
const tcpMSS = 512

// tcpWindowSegs is the fixed send window, in segments.
const tcpWindowSegs = 4

// tcpRTOCycles is the retransmission timeout: ~4 wire round trips.
const tcpRTOCycles = 8 * 3160

// tcpSegment is an unacknowledged in-flight segment.
type tcpSegment struct {
	seq     uint32
	data    []byte
	fin     bool
	sentAt  uint64
	retries int
	// ctx is the request context captured when the application queued the
	// data. It lives with the segment, not the connection, so every
	// transmission attempt — including retransmits long after Env.Trace
	// moved on — carries the same causal identity on the wire.
	ctx ktrace.SpanContext
}

// tcpPending is queued application data awaiting window space (fin marks
// the FIN pseudo-segment).
type tcpPending struct {
	data []byte
	fin  bool
	ctx  ktrace.SpanContext
}

// tcpRx is one raw frame delivered at interrupt time, with the delivery
// span's context (zero when untraced).
type tcpRx struct {
	frame []byte
	ctx   ktrace.SpanContext
}

// TCPConn is one end of a connection.
type TCPConn struct {
	net   *Net
	os    *LibOS
	ep    *aegis.Endpoint
	id    dpf.FilterID
	state tcpState

	localPort  uint16
	remoteMAC  pkt.Addr
	remoteIP   uint32
	remotePort uint16

	sndNxt, sndUna uint32
	rcvNxt         uint32

	inflight []tcpSegment
	pending  []tcpPending // queued beyond the window
	rxFrames []tcpRx      // raw frames delivered at interrupt time
	recvBuf  []byte       // in-order application data
	finSeen  bool

	// Stats.
	Retransmits, Acked, OutOfOrder uint64
	// ChecksumDrops counts received segments discarded for a bad
	// checksum (corrupted on the wire); Backoffs counts retransmissions
	// sent with a doubled (or more) timeout. Both surface in
	// /proc/net/tcp so loss-recovery behaviour is auditable.
	ChecksumDrops, Backoffs uint64
}

// State reports the connection state (diagnostics).
func (c *TCPConn) State() string { return c.state.String() }

// newTCPConn binds the connection's filter: a fully-specified flow filter
// so concurrent connections on one port demultiplex in the kernel, not in
// the library.
func newTCPConn(n *Net, os *LibOS, localPort uint16, remIP uint32, remPort uint16) (*TCPConn, error) {
	var f dpf.Filter
	if remIP == 0 {
		f = dpf.PortFilter(pkt.ProtoTCP, localPort) // listener: any peer
	} else {
		f = dpf.FlowFilter(pkt.Flow{
			Proto: pkt.ProtoTCP,
			SrcIP: remIP, DstIP: n.IP,
			SrcPort: remPort, DstPort: localPort,
		})
	}
	id, err := n.Engine.Insert(f)
	if err != nil {
		return nil, err
	}
	ep, err := n.K.InstallFilter(os.Env, engineFilter{n, id})
	if err != nil {
		return nil, err
	}
	c := &TCPConn{net: n, os: os, ep: ep, id: id, localPort: localPort,
		remoteIP: remIP, remotePort: remPort}
	ep.Deliver = c.deliver
	n.eps[id] = ep
	n.conns = append(n.conns, c)
	os.Net = n
	return c, nil
}

// Release unbinds the connection's endpoint and filter (after Close has
// run the protocol teardown, or to abandon a connection outright).
func (c *TCPConn) Release() error {
	c.state = tcpClosedDone
	c.net.K.RemoveEndpoint(c.ep)
	delete(c.net.eps, c.id)
	kept := c.net.conns[:0]
	for _, o := range c.net.conns {
		if o != c {
			kept = append(kept, o)
		}
	}
	c.net.conns = kept
	return c.net.Engine.Remove(c.id)
}

// deliver runs at interrupt level: copy and queue; protocol processing
// happens when the application runs (Process).
func (c *TCPConn) deliver(k *aegis.Kernel, frame []byte) {
	start := k.M.Clock.Cycles()
	buf := make([]byte, len(frame))
	copy(buf, frame)
	k.M.Clock.Tick(uint64((len(frame) + 3) / 4))
	var ctx ktrace.SpanContext
	if wc := wireParse(buf); wc.Valid() {
		rx := k.Spans.Begin(start, ktrace.SpanRx, uint32(c.os.Env.ID), wc, uint64(len(frame)))
		k.Spans.End(rx, k.M.Clock.Cycles())
		ctx = rx.Ctx()
	}
	c.rxFrames = append(c.rxFrames, tcpRx{frame: buf, ctx: ctx})
}

// DialTCP starts an active open. The caller pumps both endpoints'
// Process() until Established.
func DialTCP(n *Net, os *LibOS, localPort uint16, remMAC pkt.Addr, remIP uint32, remPort uint16) (*TCPConn, error) {
	c, err := newTCPConn(n, os, localPort, remIP, remPort)
	if err != nil {
		return nil, err
	}
	c.remoteMAC = remMAC
	c.sndNxt = 1000 // fixed ISS: the simulation is deterministic by design
	c.sndUna = c.sndNxt
	c.state = tcpSynSent
	c.sendSeg(tcpSegment{seq: c.sndNxt}, pkt.TCPSyn)
	c.inflight = append(c.inflight, tcpSegment{seq: c.sndNxt, sentAt: os.K.M.Clock.Cycles()})
	c.sndNxt++
	return c, nil
}

// ListenTCP starts a passive open for one inbound connection.
func ListenTCP(n *Net, os *LibOS, port uint16) (*TCPConn, error) {
	c, err := newTCPConn(n, os, port, 0, 0)
	if err != nil {
		return nil, err
	}
	c.sndNxt = 5000
	c.sndUna = c.sndNxt
	c.state = tcpListen
	return c, nil
}

// Established reports whether the handshake completed.
func (c *TCPConn) Established() bool { return c.state == tcpEstablished || c.state == tcpCloseWait }

// Closed reports whether both directions have shut down.
func (c *TCPConn) Closed() bool { return c.state == tcpClosedDone }

// Send queues application data for transmission.
func (c *TCPConn) Send(data []byte) error {
	if c.state != tcpEstablished && c.state != tcpCloseWait {
		return fmt.Errorf("exos: tcp send in state %v", c.state)
	}
	for off := 0; off < len(data); off += tcpMSS {
		end := off + tcpMSS
		if end > len(data) {
			end = len(data)
		}
		seg := make([]byte, end-off)
		copy(seg, data[off:end])
		c.pending = append(c.pending, tcpPending{data: seg, ctx: c.os.Env.Trace})
	}
	c.os.K.M.Clock.Tick(uint64((len(data)+3)/4) + 10) // segmentation copy
	c.fill()
	return nil
}

// Recv drains the in-order receive buffer.
func (c *TCPConn) Recv() []byte {
	out := c.recvBuf
	c.recvBuf = nil
	return out
}

// Close sends FIN after all queued data.
func (c *TCPConn) Close() {
	switch c.state {
	case tcpEstablished:
		c.state = tcpFinWait
	case tcpCloseWait:
		c.state = tcpClosedDone // our FIN answers theirs
	default:
		c.state = tcpClosedDone
		return
	}
	c.pending = append(c.pending, tcpPending{fin: true, ctx: c.os.Env.Trace})
	c.fill()
}

// fill moves queued segments into the window.
func (c *TCPConn) fill() {
	for len(c.inflight) < tcpWindowSegs && len(c.pending) > 0 {
		p := c.pending[0]
		c.pending = c.pending[1:]
		seg := tcpSegment{seq: c.sndNxt, data: p.data, fin: p.fin, ctx: p.ctx}
		c.sendSeg(seg, c.segFlags(seg))
		if seg.fin {
			c.sndNxt++
		} else {
			c.sndNxt += uint32(len(p.data))
		}
		seg.sentAt = c.os.K.M.Clock.Cycles()
		c.inflight = append(c.inflight, seg)
	}
}

func (c *TCPConn) segFlags(seg tcpSegment) byte {
	if seg.fin {
		return pkt.TCPFin | pkt.TCPAck
	}
	return pkt.TCPAck
}

// sendSeg transmits one segment (protocol header work charged).
func (c *TCPConn) sendSeg(seg tcpSegment, flags byte) {
	f := pkt.Flow{
		Proto: pkt.ProtoTCP,
		SrcIP: c.net.IP, DstIP: c.remoteIP,
		SrcPort: c.localPort, DstPort: c.remotePort,
	}
	frame := pkt.Build(c.remoteMAC, c.net.MAC, f, seg.data)
	pkt.SetTCP(frame, seg.seq, c.rcvNxt, flags, tcpWindowSegs*tcpMSS)
	pkt.SetTCPChecksum(frame)
	// Each transmission attempt is its own span under the segment's
	// request context (a retransmit shows up as a second tx span), and
	// the wire carries the attempt's identity.
	var tx ktrace.SpanRef
	if seg.ctx.Valid() {
		tx = c.os.K.Spans.Begin(c.os.K.M.Clock.Cycles(), ktrace.SpanTCPTx, uint32(c.os.Env.ID), seg.ctx, uint64(len(seg.data)))
		wireStamp(frame, tx.Ctx())
	}
	// Header work plus one pass over the segment for the checksum. The
	// span closes before the NIC hand-off: segment delivery is synchronous
	// and remote processing time is wire time, not transmit work.
	c.os.K.M.Clock.Tick(uint64(pkt.TCPLen/4) + 8 + uint64((len(frame)+3)/4))
	c.os.K.Spans.End(tx, c.os.K.M.Clock.Cycles())
	c.os.K.M.NIC.Send(hw.Packet{Data: frame})
}

// sendAck transmits a bare acknowledgement.
func (c *TCPConn) sendAck() {
	c.sendSeg(tcpSegment{seq: c.sndNxt}, pkt.TCPAck)
}

// Process runs the protocol: handle received frames, deliver in-order
// data, retire acknowledged segments, and retransmit on timeout. The
// application (or its scheduler slice) calls it; there is no kernel timer
// involvement beyond the clock.
func (c *TCPConn) Process() {
	for len(c.rxFrames) > 0 {
		fr := c.rxFrames[0]
		c.rxFrames = c.rxFrames[1:]
		c.handle(fr.frame, fr.ctx)
	}
	c.retransmit()
	c.fill()
}

func (c *TCPConn) handle(frame []byte, rxCtx ktrace.SpanContext) {
	if !pkt.IsTCP(frame) {
		return
	}
	c.os.K.M.Clock.Tick(12) // header validation + state demux
	// Verify before trusting a single header field: a corrupted segment is
	// dropped silently, and the peer's retransmission timer recovers it.
	// (Acking a bad segment would teach the sender a lie.)
	c.os.K.M.Clock.Tick(uint64((len(frame) + 3) / 4))
	if !pkt.TCPChecksumOK(frame) {
		c.ChecksumDrops++
		return
	}
	flags := pkt.TCPFlags(frame)
	seq := pkt.TCPSeq(frame)
	flow, _ := pkt.ParseFlow(frame)

	switch c.state {
	case tcpListen:
		if flags&pkt.TCPSyn == 0 {
			return
		}
		// Learn the peer; answer SYN|ACK.
		c.remoteIP = flow.SrcIP
		c.remotePort = flow.SrcPort
		copy(c.remoteMAC[:], frame[6:12])
		c.rcvNxt = seq + 1
		c.state = tcpSynRcvd
		c.sendSeg(tcpSegment{seq: c.sndNxt}, pkt.TCPSyn|pkt.TCPAck)
		c.inflight = append(c.inflight, tcpSegment{seq: c.sndNxt, sentAt: c.os.K.M.Clock.Cycles()})
		c.sndNxt++
		return
	case tcpSynSent:
		if flags&(pkt.TCPSyn|pkt.TCPAck) != pkt.TCPSyn|pkt.TCPAck {
			return
		}
		c.rcvNxt = seq + 1
		c.ackUpTo(pkt.TCPAckNum(frame))
		c.state = tcpEstablished
		c.sendAck()
		return
	case tcpSynRcvd:
		if flags&pkt.TCPAck != 0 {
			c.ackUpTo(pkt.TCPAckNum(frame))
			c.state = tcpEstablished
		}
		// Fall through to data handling: the ACK may carry data.
	}

	if flags&pkt.TCPAck != 0 {
		c.ackUpTo(pkt.TCPAckNum(frame))
	}
	payload := pkt.Payload(frame)
	dataEnd := seq + uint32(len(payload))
	hasFin := flags&pkt.TCPFin != 0

	if len(payload) > 0 || hasFin {
		if seq == c.rcvNxt {
			if len(payload) > 0 {
				var rv ktrace.SpanRef
				if rxCtx.Valid() {
					rv = c.os.K.Spans.Begin(c.os.K.M.Clock.Cycles(), ktrace.SpanRecv, uint32(c.os.Env.ID), rxCtx, uint64(len(payload)))
				}
				c.recvBuf = append(c.recvBuf, payload...)
				c.os.K.M.Clock.Tick(uint64((len(payload) + 3) / 4))
				c.rcvNxt = dataEnd
				if rv.Ctx().Valid() {
					c.os.K.Spans.End(rv, c.os.K.M.Clock.Cycles())
					// In-order data continues the sender's request on this
					// machine: adopt its context.
					c.os.Env.Trace = rv.Ctx()
				}
			}
			if hasFin {
				c.rcvNxt++
				c.finSeen = true
				switch c.state {
				case tcpEstablished:
					c.state = tcpCloseWait
				case tcpFinWait:
					c.state = tcpClosedDone
				}
			}
		} else {
			// Out of order (a retransmission gap): drop; cumulative ACK
			// below asks for what we need. Simplicity over SACK.
			c.OutOfOrder++
		}
		c.sendAck()
	}
	if c.state == tcpFinWait && c.finAcked() && c.finSeen {
		c.state = tcpClosedDone
	}
}

// ackUpTo retires in-flight segments covered by a cumulative ACK.
func (c *TCPConn) ackUpTo(ack uint32) {
	if int32(ack-c.sndUna) <= 0 {
		return
	}
	c.sndUna = ack
	kept := c.inflight[:0]
	for _, seg := range c.inflight {
		segEnd := seg.seq + uint32(len(seg.data))
		if seg.fin || len(seg.data) == 0 {
			segEnd = seg.seq + 1
		}
		if int32(segEnd-ack) <= 0 {
			c.Acked++
			continue
		}
		kept = append(kept, seg)
	}
	c.inflight = kept
	if c.state == tcpFinWait && c.finAcked() && c.finSeen {
		c.state = tcpClosedDone
	}
}

// finAcked reports whether our FIN (if sent) has been acknowledged.
func (c *TCPConn) finAcked() bool {
	for _, seg := range c.inflight {
		if seg.fin {
			return false
		}
	}
	return len(c.pending) == 0
}

// retransmit resends timed-out segments (the application's clock, the
// application's policy).
func (c *TCPConn) retransmit() {
	now := c.os.K.M.Clock.Cycles()
	for i := range c.inflight {
		seg := &c.inflight[i]
		// Exponential backoff: doubling the timeout per retry breaks the
		// lockstep a fixed RTO can fall into under periodic loss.
		backoff := uint(seg.retries)
		if backoff > 6 {
			backoff = 6
		}
		if now-seg.sentAt < tcpRTOCycles<<backoff {
			continue
		}
		flags := c.segFlags(*seg)
		if len(seg.data) == 0 && !seg.fin {
			// A bare sequence-consuming segment is a handshake segment.
			if c.state == tcpSynSent {
				flags = pkt.TCPSyn
			} else {
				flags = pkt.TCPSyn | pkt.TCPAck // SYN|ACK (even if since established)
			}
		}
		c.sendSeg(*seg, flags)
		seg.sentAt = now
		seg.retries++
		c.Retransmits++
		if backoff > 0 {
			c.Backoffs++
		}
	}
}
