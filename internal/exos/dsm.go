package exos

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
)

// Distributed shared memory between two machines — the application the
// paper keeps returning to when it argues for fast protection traps and
// fast messaging ([5, 50], §5.3, §6). Everything here is library code:
// coherence state lives beside the page table, faults drive the protocol,
// and pages travel as UDP payloads through downloaded packet filters. The
// kernel contributes three fast paths — exception dispatch to the handler,
// capability-checked remapping, and interrupt-time message delivery — and
// no policy.
//
// Protocol (two nodes, single writer / multiple readers, the in-machine
// example's protocol with a wire in the middle):
//
//	read fault  → ReadReq to peer → peer downgrades to read-shared and
//	              replies PageRead with the bytes → map local copy RO
//	write fault → WriteReq to peer → peer invalidates its copy and replies
//	              PageWrite (bytes included iff we had no copy) → map RW

// DSM message opcodes (first payload byte).
const (
	dsmReadReq byte = iota + 1
	dsmWriteReq
	dsmPageRead  // + va + page bytes
	dsmPageWrite // + va + page bytes (empty if requester already had a copy)
)

// dsmState is this node's right to a page.
type dsmState byte

const (
	dsmInvalid dsmState = iota
	dsmReadShared
	dsmWritable
)

// dsmEntry is per-page coherence state plus the local backing frame.
type dsmEntry struct {
	state dsmState
	frame uint32
	guard cap.Capability
}

// DSMNode is one participant.
type DSMNode struct {
	os      *LibOS
	sock    *UDPSocket
	peerMAC pkt.Addr
	peerIP  uint32
	port    uint16

	pages map[uint32]*dsmEntry

	// Pump drives the simulation while this node waits for a reply; the
	// caller supplies it (typically: run the peer machine one round).
	Pump func()

	// Stats.
	ReadFaults, WriteFaults, PagesSent uint64
}

// NewDSMNode attaches a DSM instance to a LibOS, bound to a UDP port and
// peered with the given remote.
func NewDSMNode(n *Net, os *LibOS, port uint16, peerMAC pkt.Addr, peerIP uint32) (*DSMNode, error) {
	sock, err := n.Bind(os, port)
	if err != nil {
		return nil, err
	}
	d := &DSMNode{os: os, sock: sock, peerMAC: peerMAC, peerIP: peerIP,
		port: port, pages: make(map[uint32]*dsmEntry)}
	prev := os.OnFault
	os.OnFault = func(o *LibOS, va uint32, write bool) bool {
		if d.fault(va, write) {
			return true
		}
		if prev != nil {
			return prev(o, va, write)
		}
		return false
	}
	return d, nil
}

// AddPage registers a shared page at va. Exactly one node calls it with
// initial=true (it starts as the writable owner); the other registers the
// same va with initial=false (invalid until first touch).
func (d *DSMNode) AddPage(va uint32, initial bool) error {
	va &^= hw.PageSize - 1
	if _, dup := d.pages[va]; dup {
		return fmt.Errorf("exos: dsm page %#x already registered", va)
	}
	e := &dsmEntry{}
	if initial {
		frame, guard, err := d.os.K.AllocPage(d.os.Env, aegis.AnyFrame)
		if err != nil {
			return err
		}
		e.frame, e.guard, e.state = frame, guard, dsmWritable
		if err := d.os.Map(va, frame, guard, true); err != nil {
			return err
		}
		pte := d.os.PT.Lookup(va)
		pte.Perms |= PTDirty // owner maps writable immediately
	}
	d.pages[va] = e
	return nil
}

// Service answers protocol requests that arrived on this node's socket.
// Call it from the node's scheduling slice (or a pump loop). The
// environment's active trace context is saved around the loop: TryRecv
// adopts each incoming request's context (so the reply send parents
// under the requester's span), and none of it may leak into whatever
// this env does next.
func (d *DSMNode) Service() {
	saved := d.os.Env.Trace
	defer func() { d.os.Env.Trace = saved }()
	for {
		data, _, ok := d.sock.TryRecv()
		if !ok {
			return
		}
		d.handle(data)
	}
}

func (d *DSMNode) send(op byte, va uint32, page []byte) {
	msg := make([]byte, 5+len(page))
	msg[0] = op
	binary.LittleEndian.PutUint32(msg[1:], va)
	copy(msg[5:], page)
	d.sock.SendTo(d.peerMAC, d.peerIP, d.port, msg)
}

// handle processes one protocol message.
func (d *DSMNode) handle(msg []byte) {
	if len(msg) < 5 {
		return
	}
	op := msg[0]
	va := binary.LittleEndian.Uint32(msg[1:])
	e := d.pages[va]
	if e == nil {
		return
	}
	switch op {
	case dsmReadReq:
		// Downgrade to read-shared and ship the bytes.
		if e.state == dsmWritable {
			e.state = dsmReadShared
			d.os.Unmap(va)
			if err := d.os.Map(va, e.frame, e.guard, false); err != nil {
				return
			}
		}
		d.PagesSent++
		d.send(dsmPageRead, va, d.os.K.M.Phys.Page(e.frame))
	case dsmWriteReq:
		// Invalidate our copy; include bytes only if we had the latest.
		var page []byte
		if e.state != dsmInvalid {
			page = d.os.K.M.Phys.Page(e.frame)
		}
		d.PagesSent++
		d.send(dsmPageWrite, va, page)
		if e.state != dsmInvalid {
			d.os.Unmap(va)
			e.state = dsmInvalid
		}
	case dsmPageRead, dsmPageWrite:
		// Replies are consumed by the fault path (awaitReply); one landing
		// here is stale and ignored.
	}
}

// fault is the coherence protocol's fault side. When the faulting env
// has an active trace context, the whole transfer — request, the wait
// for the peer, and the remap — is recorded as one dsm-xfer span, with
// the protocol's UDP sends parented under it so the cross-machine wire
// crossings appear on the critical path.
func (d *DSMNode) fault(va uint32, write bool) bool {
	va &^= hw.PageSize - 1
	e := d.pages[va]
	if e == nil {
		return false
	}
	saved := d.os.Env.Trace
	var span ktrace.SpanRef
	if saved.Valid() {
		span = d.os.K.Spans.Begin(d.os.K.M.Clock.Cycles(), ktrace.SpanDSM, uint32(d.os.Env.ID), saved, uint64(va))
		d.os.Env.Trace = span.Ctx()
	}
	defer func() {
		// Restore unconditionally: the request loop's TryRecv adopts
		// drained-frame contexts into Env.Trace.
		d.os.Env.Trace = saved
		d.os.K.Spans.End(span, d.os.K.M.Clock.Cycles())
	}()
	if write {
		d.WriteFaults++
		reply := d.request(dsmWriteReq, va)
		if reply == nil {
			return false
		}
		if e.state == dsmInvalid {
			if !d.ensureFrame(e) {
				return false
			}
			if len(reply) >= hw.PageSize {
				d.os.K.M.Phys.CopyIn(e.frame<<hw.PageShift, reply[:hw.PageSize])
			}
		}
		e.state = dsmWritable
		d.os.Unmap(va)
		if err := d.os.Map(va, e.frame, e.guard, true); err != nil {
			return false
		}
		pte := d.os.PT.Lookup(va)
		pte.Perms |= PTDirty
		return true
	}
	d.ReadFaults++
	reply := d.request(dsmReadReq, va)
	if reply == nil || len(reply) < hw.PageSize {
		return false
	}
	if !d.ensureFrame(e) {
		return false
	}
	d.os.K.M.Phys.CopyIn(e.frame<<hw.PageShift, reply[:hw.PageSize])
	e.state = dsmReadShared
	d.os.Unmap(va)
	return d.os.Map(va, e.frame, e.guard, false) == nil
}

// ensureFrame gives an invalid entry a local backing frame.
func (d *DSMNode) ensureFrame(e *dsmEntry) bool {
	if e.frame != 0 || e.guard.Rights != 0 {
		return true
	}
	frame, guard, err := d.os.K.AllocPage(d.os.Env, aegis.AnyFrame)
	if err != nil {
		return false
	}
	e.frame, e.guard = frame, guard
	return true
}

// request sends a protocol request and pumps until the matching reply
// arrives (other messages are serviced in the meantime).
func (d *DSMNode) request(op byte, va uint32) []byte {
	d.send(op, va, nil)
	want := dsmPageRead
	if op == dsmWriteReq {
		want = dsmPageWrite
	}
	for tries := 0; tries < 100000; tries++ {
		if data, _, ok := d.sock.TryRecv(); ok {
			if len(data) >= 5 && data[0] == want && binary.LittleEndian.Uint32(data[1:]) == va {
				return data[5:]
			}
			d.handle(data) // a concurrent request from the peer
			continue
		}
		if d.Pump == nil {
			return nil
		}
		d.Pump()
	}
	return nil
}

// State reports the node's right to a page (diagnostics and tests).
func (d *DSMNode) State(va uint32) string {
	e := d.pages[va&^(hw.PageSize-1)]
	if e == nil {
		return "unregistered"
	}
	return [...]string{"invalid", "read-shared", "writable"}[e.state]
}
