package exos

import (
	"encoding/binary"
	"fmt"

	"exokernel/internal/hw"
)

// Write-ahead intent journal: the library-level crash-consistency layer
// over the raw disk's volatile write cache (hw.Disk). The kernel's part
// of the story is unchanged — capability-checked block DMA plus one new
// primitive, the Flush barrier (aegis.DiskFlush); *when* to journal,
// what to checksum, and how to recover are application decisions, which
// is exactly the paper's division of labor for stable storage.
//
// The journal is physical redo logging of whole blocks (full-data
// journaling: every dirty cache block travels through the journal, so a
// torn in-place overwrite is impossible — the home location is only
// written after the commit record is stable). One Sync = one
// transaction:
//
//	1. descriptor + copy blocks -> journal region     (Flush: intent)
//	2. checksummed commit record -> journal region    (Flush: commit)
//	3. home-location writes, ascending block order    (Flush: checkpoint)
//	4. done marker (unflushed; loss only re-runs an idempotent replay)
//
// A crash before barrier 2 leaves the commit record invalid — recovery
// rolls the transaction back by ignoring it (the home locations were
// never touched). A crash after barrier 2 finds a valid commit record —
// recovery verifies every copy block against its descriptor checksum
// and replays them to their home locations (idempotent, so a crash
// during recovery is just another recovery). Any checksum mismatch —
// a torn journal write, a bit rotted on the platter — demotes the
// transaction to a rollback: a corrupt journal is never replayed.
//
// Layout, at the tail of the extent ([journalBlk, journalBlk+journalBlks)):
//
//	journalBlk             descriptor: magic, count, txn, count×{home, sum}
//	journalBlk+1 .. +slots copy blocks (slots = journalBlks-2)
//	journalBlk+blks-1      commit record: magic, state, txn, count, checksum
//
// The commit checksum covers the descriptor's (count, txn, entries)
// bytes, binding record to descriptor; each entry's sum is FNV-1a over
// the copy block's contents. The cache is sized at mount to fit one
// transaction (capacity ≤ slots), so a Sync is always a single atomic
// transaction — there is no multi-chunk case to tear.

const (
	jMagic         = 0x4558_4A4C // "EXJL"
	jStateCommit   = 1
	jStateDone     = 2
	jDescHdrSize   = 16 // magic, count, txn
	jEntSize       = 8  // home, sum
	jMinJournalLen = 3  // descriptor + 1 slot + commit record
)

// Journal is the write-ahead journal of one mounted FS. Exported fields
// are the crash/recovery census the chaos harness and tests read.
type Journal struct {
	fs      *FS
	scratch uint32 // private frame for descriptor/commit/copy staging
	seq     uint64 // last durable transaction id

	// Commit-side stats.
	Commits, CommittedBlocks uint64
	// Recovery-side stats: transactions replayed at mount, transactions
	// rolled back (invalid or corrupt journal — never replayed), blocks
	// rewritten by replay, and whether the last mount needed no action.
	Replayed, RolledBack, ReplayedBlocks uint64
	LastMountClean                       bool
}

// enableJournal validates the superblock's journal region, takes the
// staging frame, sizes the cache against the journal, and installs the
// eviction hook so no uncommitted dirty block can reach its home
// location out of order.
func (fs *FS) enableJournal() error {
	sb := &fs.sb
	if sb.journalBlks < jMinJournalLen {
		return fmt.Errorf("exos: journal of %d blocks is too small", sb.journalBlks)
	}
	if sb.journalBlk < sb.dataBlk || sb.journalBlk+sb.journalBlks != sb.nblocks {
		return fmt.Errorf("exos: journal region [%d,+%d) outside extent of %d",
			sb.journalBlk, sb.journalBlks, sb.nblocks)
	}
	scratch, err := fs.cache.TakeFrame()
	if err != nil {
		return err
	}
	slots := sb.journalBlks - 2
	capacity := uint32(len(fs.cache.free) + len(fs.cache.lines))
	if capacity > slots {
		return fmt.Errorf("exos: cache of %d frames cannot commit through %d journal slots",
			capacity, slots)
	}
	fs.jn = &Journal{fs: fs, scratch: scratch}
	fs.cache.onEvictDirty = fs.jn.commit
	return nil
}

func (j *Journal) descBlk() uint32         { return j.fs.sb.journalBlk }
func (j *Journal) copyBlk(i uint32) uint32 { return j.fs.sb.journalBlk + 1 + i }
func (j *Journal) commitBlk() uint32 {
	return j.fs.sb.journalBlk + j.fs.sb.journalBlks - 1
}

// sumRange is FNV-1a over a byte range, charged at one pass over the
// data — checksumming is real library work, same rate as ReliableDev.
func (j *Journal) sumRange(p []byte) uint32 {
	j.fs.clock.Tick(uint64(len(p) / 4))
	h := uint32(2166136261)
	for _, b := range p {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// commit makes the cache's dirty set durable as one atomic transaction.
// It is FS.Sync on a journaled mount, and the cache's eviction hook.
func (j *Journal) commit() error {
	c := j.fs.cache
	dirty := c.dirtyBlocks()
	if len(dirty) == 0 {
		return nil
	}
	if uint32(len(dirty)) > j.fs.sb.journalBlks-2 {
		return fmt.Errorf("exos: %d dirty blocks exceed journal capacity", len(dirty))
	}
	txn := j.seq + 1

	// Descriptor: staged in the scratch frame, then journaled.
	page := j.fs.mem.Page(j.scratch)
	clear(page)
	binary.LittleEndian.PutUint32(page[0:], jMagic)
	binary.LittleEndian.PutUint32(page[4:], uint32(len(dirty)))
	binary.LittleEndian.PutUint64(page[8:], txn)
	for i, b := range dirty {
		sum := j.sumRange(j.fs.mem.Page(c.lines[b].frame))
		binary.LittleEndian.PutUint32(page[jDescHdrSize+jEntSize*i:], b)
		binary.LittleEndian.PutUint32(page[jDescHdrSize+jEntSize*i+4:], sum)
	}
	j.fs.clock.Tick(uint64(16 + 2*len(dirty)))
	descSum := j.sumRange(page[4 : jDescHdrSize+jEntSize*len(dirty)])
	if err := c.dev.WriteBlock(j.descBlk(), j.scratch); err != nil {
		return err
	}
	// Copy blocks, straight from the cache lines (ascending home order).
	for i, b := range dirty {
		if err := c.dev.WriteBlock(j.copyBlk(uint32(i)), c.lines[b].frame); err != nil {
			return err
		}
	}
	if err := c.dev.Flush(); err != nil { // barrier 1: intent durable
		return err
	}

	// Commit record.
	clear(page[:32])
	binary.LittleEndian.PutUint32(page[0:], jMagic)
	binary.LittleEndian.PutUint32(page[4:], jStateCommit)
	binary.LittleEndian.PutUint64(page[8:], txn)
	binary.LittleEndian.PutUint32(page[16:], uint32(len(dirty)))
	binary.LittleEndian.PutUint32(page[20:], descSum)
	j.fs.clock.Tick(8)
	if err := c.dev.WriteBlock(j.commitBlk(), j.scratch); err != nil {
		return err
	}
	if err := c.dev.Flush(); err != nil { // barrier 2: committed
		return err
	}

	// Home-location writes. From here the transaction is guaranteed:
	// any crash below is repaired by replay from the journal.
	for _, b := range dirty {
		ln := c.lines[b]
		c.Writebacks++
		if err := c.dev.WriteBlock(b, ln.frame); err != nil {
			return err
		}
		ln.dirty = false
	}
	if err := c.dev.Flush(); err != nil { // barrier 3: checkpoint
		return err
	}

	// Done marker: tells the next mount no replay is needed. Deliberately
	// left in the disk's write cache — losing it costs one idempotent
	// replay, never correctness.
	binary.LittleEndian.PutUint32(page[4:], jStateDone)
	j.fs.clock.Tick(2)
	if err := c.dev.WriteBlock(j.commitBlk(), j.scratch); err != nil {
		return err
	}
	j.seq = txn
	j.Commits++
	j.CommittedBlocks += uint64(len(dirty))
	return nil
}

// recover is the mount-time pass: decide replay vs rollback from the
// journal alone, touching home locations only for a proven-intact
// committed transaction. Idempotent — a crash during recovery leaves a
// state recover handles identically next mount.
func (j *Journal) recover() error {
	c := j.fs.cache
	mem := j.fs.mem

	if err := c.dev.ReadBlock(j.descBlk(), j.scratch); err != nil {
		return err
	}
	page := mem.Page(j.scratch)
	if binary.LittleEndian.Uint32(page[0:]) != jMagic {
		// Freshly formatted journal: nothing was ever committed.
		j.LastMountClean = true
		return nil
	}
	count := binary.LittleEndian.Uint32(page[4:])
	txn := binary.LittleEndian.Uint64(page[8:])
	if txn > j.seq {
		j.seq = txn // never mint a transaction id the journal has seen
	}
	if count == 0 || count > j.fs.sb.journalBlks-2 {
		return j.rollback(txn)
	}
	descSum := j.sumRange(page[4 : jDescHdrSize+jEntSize*count])
	type ent struct{ home, sum uint32 }
	entries := make([]ent, count)
	for i := range entries {
		entries[i].home = binary.LittleEndian.Uint32(page[jDescHdrSize+jEntSize*i:])
		entries[i].sum = binary.LittleEndian.Uint32(page[jDescHdrSize+jEntSize*i+4:])
	}
	j.fs.clock.Tick(uint64(2 * count))

	if err := c.dev.ReadBlock(j.commitBlk(), j.scratch); err != nil {
		return err
	}
	cMagic := binary.LittleEndian.Uint32(page[0:])
	cState := binary.LittleEndian.Uint32(page[4:])
	cTxn := binary.LittleEndian.Uint64(page[8:])
	cCount := binary.LittleEndian.Uint32(page[16:])
	cSum := binary.LittleEndian.Uint32(page[20:])
	j.fs.clock.Tick(8)
	if cMagic == jMagic && cTxn > j.seq {
		j.seq = cTxn
	}
	if cMagic == jMagic && cState == jStateDone && cTxn == txn {
		// The transaction was fully checkpointed before the crash (or
		// this is a clean remount).
		j.LastMountClean = true
		return nil
	}
	if cMagic != jMagic || cState != jStateCommit || cTxn != txn ||
		cCount != count || cSum != descSum {
		// No valid commit record for this descriptor: the crash hit
		// before the commit barrier, or the record is corrupt. Either
		// way the home locations were never touched — roll back.
		return j.rollback(txn)
	}

	// Valid commit record: verify every copy block before touching any
	// home location. One corrupt copy poisons the whole transaction —
	// partial replay would be worse than none.
	for i, e := range entries {
		if e.home >= j.fs.sb.journalBlk {
			// A committed descriptor never targets the journal region;
			// treat the claim as corruption, not instruction.
			return j.rollback(txn)
		}
		if err := c.dev.ReadBlock(j.copyBlk(uint32(i)), j.scratch); err != nil {
			return err
		}
		if j.sumRange(page) != e.sum {
			return j.rollback(txn)
		}
	}
	// Replay (redo): rewrite every home location from its journal copy.
	for i, e := range entries {
		if err := c.dev.ReadBlock(j.copyBlk(uint32(i)), j.scratch); err != nil {
			return err
		}
		if err := c.dev.WriteBlock(e.home, j.scratch); err != nil {
			return err
		}
	}
	if err := c.dev.Flush(); err != nil {
		return err
	}
	j.Replayed++
	j.ReplayedBlocks += uint64(count)
	return j.writeMarker(txn, jStateDone, true)
}

// rollback discards a transaction that must not be replayed (no valid
// commit record, or a corrupt journal) by writing a durable done marker
// for it, so later mounts see a clean journal instead of re-judging the
// same wreckage.
func (j *Journal) rollback(txn uint64) error {
	j.RolledBack++
	return j.writeMarker(txn, jStateDone, true)
}

// writeMarker stamps the commit record with a state for txn.
func (j *Journal) writeMarker(txn uint64, state uint32, flush bool) error {
	page := j.fs.mem.Page(j.scratch)
	clear(page[:32])
	binary.LittleEndian.PutUint32(page[0:], jMagic)
	binary.LittleEndian.PutUint32(page[4:], state)
	binary.LittleEndian.PutUint64(page[8:], txn)
	j.fs.clock.Tick(8)
	if err := j.fs.cache.dev.WriteBlock(j.commitBlk(), j.scratch); err != nil {
		return err
	}
	if flush {
		return j.fs.cache.dev.Flush()
	}
	return nil
}

// FormatJournaled writes a fresh crash-consistent file system: the
// Format image plus a zeroed journal region of journalBlks blocks at
// the extent tail, everything flushed stable before return (mkfs must
// not itself be a crash hazard for the mounted lifetime that follows).
func FormatJournaled(dev BlockDev, cache *BufCache, ninodes, journalBlks uint32) (*FS, error) {
	fs, err := format(dev, cache, ninodes, journalBlks)
	if err != nil {
		return nil, err
	}
	if err := fs.enableJournal(); err != nil {
		return nil, err
	}
	// Zero the journal region so recovery finds no transaction.
	page := fs.mem.Page(fs.jn.scratch)
	clear(page)
	fs.clock.Tick(hw.PageSize / hw.WordSize / 8)
	for b := fs.sb.journalBlk; b < fs.sb.journalBlk+fs.sb.journalBlks; b++ {
		if err := dev.WriteBlock(b, fs.jn.scratch); err != nil {
			return nil, err
		}
	}
	if err := dev.Flush(); err != nil {
		return nil, err
	}
	return fs, nil
}
