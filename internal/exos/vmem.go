package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
)

// Application-level virtual memory (§6.2): "ExOS provides a rudimentary
// virtual memory system (its size is approximately 1000 lines of heavily
// commented code)". The page table is an application data structure the
// kernel never sees; the kernel only verifies capabilities when bindings
// are installed. Because the table is ours, operations the kernel would
// otherwise mediate — a dirty-bit query, a protection change — are a table
// write plus (at most) a TLB invalidate.

// PTE permission/state bits.
const (
	PTValid = 1 << iota
	PTWrite
	PTDirty
	PTRef
	// PTCOW marks a logically-writable page currently shared copy-on-write
	// (set by Fork, cleared when the library breaks the sharing).
	PTCOW
)

// PTE is one application page-table entry.
type PTE struct {
	Frame uint32
	Perms uint8
	Guard cap.Capability
}

// PageTable is the page-table abstraction. It is an *application data
// structure*: "an exokernel allows application-level libraries to define
// virtual memory ... abstractions", and "page-table structures ... cannot
// be modified in micro-kernels" (§8) — here they can, by implementing
// this interface. Two structures ship: the dense two-level tree
// (TwoLevelPT, the default) and a hashed inverted table (InvertedPT) that
// wins for sparse address spaces. The kernel sees neither; it only ever
// sees the InstallMapping calls the refill handler makes.
type PageTable interface {
	// Name identifies the structure in diagnostics.
	Name() string
	// Lookup walks the table for va, charging the walk; nil if unmapped.
	Lookup(va uint32) *PTE
	// Set installs (or clears, with zero perms) the entry for va.
	Set(va uint32, e PTE)
	// FindFrame locates the entry mapping a physical frame (revocation
	// path only).
	FindFrame(frame uint32) (*PTE, uint32)
	// Entries reports the number of valid entries.
	Entries() int
	// SizeWords reports the structure's memory footprint in words —
	// the space cost an application weighs when picking a structure.
	SizeWords() int
	// Walk visits every valid entry until fn returns false.
	Walk(fn func(va uint32, pte *PTE) bool)
}

// ptLookupCycles is the cost of one two-level table walk in application
// code: two dependent loads plus index arithmetic.
const ptLookupCycles = 6

// TwoLevelPT is the dense two-level tree (the MIPS-classic layout).
type TwoLevelPT struct {
	k       *aegis.Kernel
	dir     map[uint32][]PTE // top index → second-level table (1024 entries)
	entries int
}

// NewPageTable creates the default page table (two-level).
func NewPageTable(k *aegis.Kernel) *TwoLevelPT {
	return &TwoLevelPT{k: k, dir: make(map[uint32][]PTE)}
}

// Name implements PageTable.
func (pt *TwoLevelPT) Name() string { return "two-level" }

// Entries implements PageTable.
func (pt *TwoLevelPT) Entries() int { return pt.entries }

// SizeWords implements PageTable: each allocated second-level table is
// 1024 four-word entries plus one directory word.
func (pt *TwoLevelPT) SizeWords() int { return len(pt.dir) * (1024*4 + 1) }

// Lookup implements PageTable.
func (pt *TwoLevelPT) Lookup(va uint32) *PTE {
	pt.k.M.Clock.Tick(ptLookupCycles)
	vpn := va >> hw.PageShift
	tbl, ok := pt.dir[vpn>>10]
	if !ok {
		return nil
	}
	pte := &tbl[vpn&1023]
	if pte.Perms&PTValid == 0 {
		return nil
	}
	return pte
}

// Set implements PageTable, creating the second-level table on demand.
func (pt *TwoLevelPT) Set(va uint32, e PTE) {
	pt.k.M.Clock.Tick(ptLookupCycles)
	vpn := va >> hw.PageShift
	tbl, ok := pt.dir[vpn>>10]
	if !ok {
		tbl = make([]PTE, 1024)
		pt.dir[vpn>>10] = tbl
	}
	old := tbl[vpn&1023].Perms&PTValid != 0
	now := e.Perms&PTValid != 0
	if !old && now {
		pt.entries++
	} else if old && !now {
		pt.entries--
	}
	tbl[vpn&1023] = e
}

// Walk implements PageTable.
func (pt *TwoLevelPT) Walk(fn func(va uint32, pte *PTE) bool) {
	for hi, tbl := range pt.dir {
		for lo := range tbl {
			if tbl[lo].Perms&PTValid != 0 {
				if !fn((hi<<10|uint32(lo))<<hw.PageShift, &tbl[lo]) {
					return
				}
			}
		}
	}
}

// FindFrame implements PageTable (linear scan; revocation path only).
func (pt *TwoLevelPT) FindFrame(frame uint32) (*PTE, uint32) {
	for hi, tbl := range pt.dir {
		for lo := range tbl {
			if tbl[lo].Perms&PTValid != 0 && tbl[lo].Frame == frame {
				return &tbl[lo], (hi<<10 | uint32(lo)) << hw.PageShift
			}
		}
	}
	return nil, 0
}

// AllocAndMap allocates a fresh physical page and maps it at va,
// write-enabled. It returns the frame.
func (os *LibOS) AllocAndMap(va uint32) (uint32, error) {
	frame, guard, err := os.K.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		return 0, err
	}
	return frame, os.Map(va, frame, guard, true)
}

// Map enters a page into the application's table. The mapping is lazy:
// the first touch takes a TLB miss and the refill handler installs the
// binding (read-only first, for software dirty tracking).
func (os *LibOS) Map(va uint32, frame uint32, guard cap.Capability, writable bool) error {
	if va%hw.PageSize != 0 {
		return fmt.Errorf("exos: map of unaligned va %#x", va)
	}
	perms := uint8(PTValid)
	if writable {
		perms |= PTWrite
	}
	os.PT.Set(va, PTE{Frame: frame, Perms: perms, Guard: guard})
	return nil
}

// Unmap removes a mapping from the table and the hardware, returning the
// old entry.
func (os *LibOS) Unmap(va uint32) PTE {
	old := PTE{}
	if pte := os.PT.Lookup(va); pte != nil {
		old = *pte
		os.PT.Set(va, PTE{})
	}
	os.K.UnmapPage(os.Env, va)
	return old
}

// Protect write-protects one page (the Appel-Li "prot1" operation): flip
// the table bit and drop the cached binding so the next write faults.
func (os *LibOS) Protect(va uint32) error {
	pte := os.PT.Lookup(va)
	if pte == nil {
		return fmt.Errorf("exos: protect of unmapped va %#x", va)
	}
	pte.Perms &^= PTWrite
	os.K.UnmapPage(os.Env, va)
	return nil
}

// ProtectN write-protects a batch of pages ("prot100"). Application-level
// batching: one loop, no per-page system call.
func (os *LibOS) ProtectN(vas []uint32) error {
	for _, va := range vas {
		if err := os.Protect(va); err != nil {
			return err
		}
	}
	return nil
}

// Unprotect re-enables writes ("unprot100" / the trap-handler fix-up). The
// binding is reinstalled immediately — no extra fault on the next access.
func (os *LibOS) Unprotect(va uint32) error {
	pte := os.PT.Lookup(va)
	if pte == nil {
		return fmt.Errorf("exos: unprotect of unmapped va %#x", va)
	}
	pte.Perms |= PTWrite | PTDirty
	if !os.installPTE(va, pte, true) {
		return fmt.Errorf("exos: reinstall failed for va %#x", va)
	}
	return nil
}

// IsDirty queries the software dirty bit ("dirty": "the base cost of
// looking up a virtual address in ExOS's page-table structure" — no
// system call, no TLB examination).
func (os *LibOS) IsDirty(va uint32) bool {
	pte := os.PT.Lookup(va)
	return pte != nil && pte.Perms&PTDirty != 0
}

// Touch simulates an application load from va: on a cached binding it is
// one memory reference; otherwise it takes the full TLB-miss path through
// the kernel and this LibOS's refill handler.
func (os *LibOS) Touch(va uint32) error {
	return os.access(va, false)
}

// TouchWrite simulates an application store to va.
func (os *LibOS) TouchWrite(va uint32) error {
	return os.access(va, true)
}

// access performs one application memory reference against the machine's
// MMU, retrying after fault service like restarted hardware would.
// Ten retries bound pathological livelock (e.g. a fault handler that does
// not repair the fault).
func (os *LibOS) access(va uint32, write bool) error {
	m := os.K.M
	for try := 0; try < 10; try++ {
		pa, exc := m.Translate(va, write)
		if exc == hw.ExcNone {
			if write {
				m.Phys.WriteWord(pa, m.Phys.ReadWord(pa)+1)
			} else {
				m.Phys.ReadWord(pa)
			}
			return nil
		}
		m.RaiseException(exc, m.CPU.PC, va)
		if os.Env.Dead {
			return fmt.Errorf("exos: environment killed by fault at %#x", va)
		}
	}
	return fmt.Errorf("exos: fault at %#x not repaired after retries", va)
}
