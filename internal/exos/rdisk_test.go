package exos

import (
	"fmt"
	"testing"

	"exokernel/internal/hw"
)

// flakyDev is a BlockDev test double: a backing store in host memory,
// with scripted error and corruption behaviour.
type flakyDev struct {
	mem      *hw.PhysMem
	blocks   map[uint32][]byte
	readErrs int // fail this many reads, then succeed
	corrupts int // deliver this many reads with a flipped byte, then clean
}

func (d *flakyDev) ReadBlock(b uint32, frame uint32) error {
	if d.readErrs > 0 {
		d.readErrs--
		return fmt.Errorf("flaky: injected read error on block %d", b)
	}
	data, ok := d.blocks[b]
	if !ok {
		data = make([]byte, hw.PageSize)
	}
	page := d.mem.Page(frame)
	copy(page, data)
	if d.corrupts > 0 {
		d.corrupts--
		page[17] ^= 0x40
	}
	return nil
}

func (d *flakyDev) WriteBlock(b uint32, frame uint32) error {
	buf := make([]byte, hw.PageSize)
	copy(buf, d.mem.Page(frame))
	d.blocks[b] = buf
	return nil
}

func (d *flakyDev) Flush() error { return nil }

func (d *flakyDev) NumBlocks() uint32 { return 64 }

func reliableWorld() (*ReliableDev, *flakyDev, *hw.Machine, uint32) {
	m := hw.NewMachine(hw.DEC5000)
	dev := &flakyDev{mem: m.Phys, blocks: make(map[uint32][]byte)}
	r := NewReliableDev(dev, m.Phys, m.Clock)
	frame, _ := m.Phys.AllocFrame()
	return r, dev, m, frame
}

func TestReliableDevRetriesTransientErrors(t *testing.T) {
	r, dev, m, frame := reliableWorld()
	page := m.Phys.Page(frame)
	for i := range page {
		page[i] = byte(i * 7)
	}
	if err := r.WriteBlock(3, frame); err != nil {
		t.Fatal(err)
	}

	dev.readErrs = 2 // two transient failures, then success
	clear := make([]byte, hw.PageSize)
	copy(page, clear)
	before := m.Clock.Cycles()
	if err := r.ReadBlock(3, frame); err != nil {
		t.Fatalf("read failed despite retry budget: %v", err)
	}
	if r.Retries != 2 {
		t.Errorf("Retries = %d, want 2", r.Retries)
	}
	if m.Clock.Cycles()-before < retryBackoffCycles+2*retryBackoffCycles {
		t.Error("backoff did not charge the simulated clock")
	}
	if page[5] != byte(5*7) {
		t.Error("recovered read returned wrong data")
	}
}

func TestReliableDevCatchesCorruption(t *testing.T) {
	r, dev, m, frame := reliableWorld()
	page := m.Phys.Page(frame)
	for i := range page {
		page[i] = byte(i)
	}
	if err := r.WriteBlock(9, frame); err != nil {
		t.Fatal(err)
	}

	dev.corrupts = 1 // first read delivers a flipped byte
	if err := r.ReadBlock(9, frame); err != nil {
		t.Fatalf("read failed: %v", err)
	}
	if r.ChecksumRejects != 1 {
		t.Errorf("ChecksumRejects = %d, want 1", r.ChecksumRejects)
	}
	if page[17] != 17 {
		t.Error("corrupted data was handed to the caller")
	}
}

func TestReliableDevBoundedFailure(t *testing.T) {
	r, dev, _, frame := reliableWorld()
	dev.readErrs = 1000 // dead controller
	if err := r.ReadBlock(0, frame); err == nil {
		t.Fatal("read of a dead device succeeded")
	}
	if r.Failures != 1 {
		t.Errorf("Failures = %d, want 1", r.Failures)
	}
	if r.Retries != uint64(r.budget()) {
		t.Errorf("Retries = %d, want the budget %d", r.Retries, r.budget())
	}
}

// An unverifiable read (block never written through the wrapper) passes
// through without a checksum claim — the wrapper must not invent one.
func TestReliableDevUnverifiedReadPasses(t *testing.T) {
	r, dev, _, frame := reliableWorld()
	dev.blocks[5] = make([]byte, hw.PageSize)
	dev.corrupts = 1
	if err := r.ReadBlock(5, frame); err != nil {
		t.Fatalf("unverifiable read failed: %v", err)
	}
	if r.ChecksumRejects != 0 {
		t.Error("rejected a block it had no checksum for")
	}
}
