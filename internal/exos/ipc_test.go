package exos

import (
	"testing"
	"testing/quick"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

func bootPair(t *testing.T) (*hw.Machine, *aegis.Kernel, *LibOS, *LibOS) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	a, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, a, b
}

func TestPipeFIFO(t *testing.T) {
	_, _, a, b := bootPair(t)
	pa, pb, err := NewPipe(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 10; i++ {
		pa.Write(i * 3)
	}
	for i := uint32(0); i < 10; i++ {
		if got := pb.Read(); got != i*3 {
			t.Fatalf("read %d, want %d", got, i*3)
		}
	}
	if _, ok := pb.TryRead(); ok {
		t.Error("empty pipe read succeeded")
	}
}

func TestPipeOptimizedMailbox(t *testing.T) {
	_, _, a, b := bootPair(t)
	pa, pb, err := NewPipe(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pa.SetOptimized(true)
	pb.SetOptimized(true)
	pa.Write(77)
	if got, ok := pb.TryRead(); !ok || got != 77 {
		t.Fatalf("mailbox read = %d, %v", got, ok)
	}
	if _, ok := pb.TryRead(); ok {
		t.Error("mailbox read twice")
	}
}

func TestPipeWrapAround(t *testing.T) {
	_, _, a, b := bootPair(t)
	pa, pb, err := NewPipe(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Push more words than the ring holds, in chunks, reading behind.
	const rounds = 3000
	for i := uint32(0); i < rounds; i++ {
		pa.Write(i)
		if got := pb.Read(); got != i {
			t.Fatalf("wraparound broke at %d: got %d", i, got)
		}
	}
}

func TestPipeChargesContextSwitch(t *testing.T) {
	m, _, a, b := bootPair(t)
	pa, pb, err := NewPipe(a, b)
	if err != nil {
		t.Fatal(err)
	}
	pa.Write(1)
	before := m.Clock.Cycles()
	pb.Read()
	// The read hands control from a's environment to b's: a directed
	// yield with its register save must be charged.
	if got := m.Clock.Cycles() - before; got < 64 {
		t.Errorf("read charged %d cycles; cross-env hand-off should include a context switch", got)
	}
}

func TestShmPingPong(t *testing.T) {
	_, _, a, b := bootPair(t)
	sa, sb, err := NewShm(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sa.Store(5)
	if got := sb.Load(); got != 5 {
		t.Fatalf("shm load = %d", got)
	}
	if got := sb.AwaitChange(4); got != 5 {
		t.Fatalf("AwaitChange = %d", got)
	}
}

func TestRPCBasic(t *testing.T) {
	_, _, sOS, cOS := bootPair(t)
	srv := NewServer(sOS)
	srv.Register(1, func(args [4]uint32) [2]uint32 {
		return [2]uint32{args[0] + args[1], args[2]}
	})
	cli := NewClient(cOS, srv, false)
	res, err := cli.Call(1, [4]uint32{7, 8, 9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 15 || res[1] != 9 {
		t.Errorf("res = %v", res)
	}
	// Unknown procedure returns the failure sentinel.
	res, err = cli.Call(42, [4]uint32{})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != ^uint32(0) {
		t.Errorf("unknown proc res = %v", res)
	}
}

func TestRPCRepeatedCallsStable(t *testing.T) {
	_, _, sOS, cOS := bootPair(t)
	srv := NewServer(sOS)
	srv.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{args[0] * 2, 0} })
	cli := NewClient(cOS, srv, false)
	for i := uint32(1); i <= 100; i++ {
		res, err := cli.Call(1, [4]uint32{i})
		if err != nil || res[0] != i*2 {
			t.Fatalf("call %d: %v %v", i, res, err)
		}
	}
}

func TestTLRPCCheaperThanLRPC(t *testing.T) {
	m, _, sOS, cOS := bootPair(t)
	srv := NewServer(sOS)
	srv.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{1, 0} })
	l := NewClient(cOS, srv, false)
	warm := func(c *Client) {
		if _, err := c.Call(1, [4]uint32{}); err != nil {
			t.Fatal(err)
		}
	}
	warm(l)
	c0 := m.Clock.Cycles()
	warm(l)
	lrpcCost := m.Clock.Cycles() - c0

	tc := NewClient(cOS, srv, true)
	warm(tc)
	c0 = m.Clock.Cycles()
	warm(tc)
	tlrpcCost := m.Clock.Cycles() - c0
	if tlrpcCost >= lrpcCost {
		t.Errorf("tlrpc (%d cycles) not cheaper than lrpc (%d)", tlrpcCost, lrpcCost)
	}
}

func TestTwoServersCoexist(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	s1OS, _ := Boot(k)
	s2OS, _ := Boot(k)
	cOS, _ := Boot(k)
	s1 := NewServer(s1OS)
	s1.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{100, 0} })
	s2 := NewServer(s2OS)
	s2.Register(1, func(args [4]uint32) [2]uint32 { return [2]uint32{200, 0} })
	c1 := NewClient(cOS, s1, false)
	if res, _ := c1.Call(1, [4]uint32{}); res[0] != 100 {
		t.Errorf("server1 res = %v", res)
	}
	c2 := NewClient(cOS, s2, false)
	if res, _ := c2.Call(1, [4]uint32{}); res[0] != 200 {
		t.Errorf("server2 res = %v", res)
	}
}

// Property: any word sequence traverses a pipe unchanged (FIFO integrity
// through the shared-memory ring).
func TestQuickPipeFIFO(t *testing.T) {
	f := func(words []uint32) bool {
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		a, err := Boot(k)
		if err != nil {
			return false
		}
		b, err := Boot(k)
		if err != nil {
			return false
		}
		pa, pb, err := NewPipe(a, b)
		if err != nil {
			return false
		}
		if len(words) > 256 {
			words = words[:256]
		}
		for _, w := range words {
			pa.Write(w)
		}
		for _, w := range words {
			if pb.Read() != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
