package exos

import (
	"testing"
	"testing/quick"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

func bootInverted(t *testing.T) (*hw.Machine, *aegis.Kernel, *LibOS) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.UsePageTable(NewInvertedPT(k, 8)); err != nil {
		t.Fatal(err)
	}
	return m, k, os
}

func TestInvertedPTFullVMPath(t *testing.T) {
	// The whole ExOS VM machinery — lazy refill, dirty tracking,
	// protection faults — must work unchanged over the alternative
	// structure: the kernel never knew about the structure anyway.
	_, k, os := bootInverted(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if !os.IsDirty(va) {
		t.Error("dirty bit lost in inverted table")
	}
	if err := os.Protect(va); err != nil {
		t.Fatal(err)
	}
	faults := 0
	os.OnFault = func(o *LibOS, fva uint32, write bool) bool {
		faults++
		return o.Unprotect(fva&^(hw.PageSize-1)) == nil
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
	if k.Stats.TLBUpcalls == 0 {
		t.Error("no refills went through the inverted table")
	}
}

func TestInvertedPTSparseFootprint(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	two := NewPageTable(k)
	inv := NewInvertedPT(k, 8)
	// 64 pages spread one per 4 MB region — a sparse persistent-store
	// layout. The dense tree pays a whole second-level table per region.
	for i := uint32(0); i < 64; i++ {
		va := i << 22
		e := PTE{Frame: i + 1, Perms: PTValid}
		two.Set(va, e)
		inv.Set(va, e)
	}
	if two.Entries() != 64 || inv.Entries() != 64 {
		t.Fatalf("entries: %d / %d", two.Entries(), inv.Entries())
	}
	if inv.SizeWords() >= two.SizeWords()/10 {
		t.Errorf("inverted (%d words) should be >10x smaller than two-level (%d words) when sparse",
			inv.SizeWords(), two.SizeWords())
	}
	// Both resolve every mapping.
	for i := uint32(0); i < 64; i++ {
		va := i << 22
		a := two.Lookup(va)
		b := inv.Lookup(va)
		if a == nil || b == nil || a.Frame != b.Frame {
			t.Fatalf("lookup mismatch at %#x", va)
		}
	}
	if inv.Lookup(0x123000) != nil {
		t.Error("inverted table resolved an unmapped page")
	}
}

func TestInvertedPTRemoveShortensChains(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	inv := NewInvertedPT(k, 2) // tiny: force collisions
	for i := uint32(0); i < 16; i++ {
		inv.Set(i<<hw.PageShift, PTE{Frame: i + 1, Perms: PTValid})
	}
	if inv.Entries() != 16 {
		t.Fatalf("entries = %d", inv.Entries())
	}
	for i := uint32(0); i < 16; i += 2 {
		inv.Set(i<<hw.PageShift, PTE{})
	}
	if inv.Entries() != 8 {
		t.Errorf("entries after removal = %d", inv.Entries())
	}
	for i := uint32(0); i < 16; i++ {
		got := inv.Lookup(i << hw.PageShift)
		if i%2 == 0 && got != nil {
			t.Errorf("removed entry %d still resolves", i)
		}
		if i%2 == 1 && (got == nil || got.Frame != i+1) {
			t.Errorf("surviving entry %d lost", i)
		}
	}
}

func TestUsePageTableRefusesPopulated(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.AllocAndMap(0x1000_0000); err != nil {
		t.Fatal(err)
	}
	if err := os.UsePageTable(NewInvertedPT(k, 8)); err == nil {
		t.Error("populated-table swap accepted")
	}
}

// Property: the two structures are observationally equivalent under any
// sequence of Set/Lookup operations.
func TestQuickPTEquivalence(t *testing.T) {
	type op struct {
		VPN   uint16
		Frame uint16
		Del   bool
	}
	f := func(ops []op) bool {
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		two := NewPageTable(k)
		inv := NewInvertedPT(k, 4)
		for _, o := range ops {
			va := uint32(o.VPN) << hw.PageShift
			if o.Del {
				two.Set(va, PTE{})
				inv.Set(va, PTE{})
			} else {
				e := PTE{Frame: uint32(o.Frame), Perms: PTValid | PTWrite}
				two.Set(va, e)
				inv.Set(va, e)
			}
			a, b := two.Lookup(va), inv.Lookup(va)
			if (a == nil) != (b == nil) {
				return false
			}
			if a != nil && (a.Frame != b.Frame || a.Perms != b.Perms) {
				return false
			}
		}
		return two.Entries() == inv.Entries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
