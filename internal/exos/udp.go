package exos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/dpf"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/pkt"
)

// Application-level networking (§6.3, §7.2): ExOS implements UDP entirely
// in the library. Demultiplexing is a downloaded DPF filter; delivery is a
// copy into the socket's buffer when the application is scheduled, or an
// ASH reply straight from the kernel's interrupt context.

// Net is the per-machine network multiplexor: it owns the merged DPF
// engine (acting as the "trusted server" that installs filters) and routes
// classified frames to sockets.
type Net struct {
	K      *aegis.Kernel
	Engine *dpf.Engine
	MAC    pkt.Addr
	IP     uint32
	eps    map[dpf.FilterID]*aegis.Endpoint
	// conns lists live TCP connections, in open order, for /proc/net/tcp.
	conns []*TCPConn
}

// NewNet attaches a network multiplexor to a kernel.
func NewNet(k *aegis.Kernel, mac pkt.Addr, ip uint32) *Net {
	n := &Net{K: k, Engine: dpf.NewEngine(), MAC: mac, IP: ip, eps: make(map[dpf.FilterID]*aegis.Endpoint)}
	k.SetDemux(n.demux)
	// The library owns the frame format, so it teaches the kernel where
	// trace context lives (for ASH dispatch, which runs in the kernel).
	k.SetTraceWire(wireParse, wireStamp)
	return n
}

// demux classifies a frame through the shared compiled trie.
func (n *Net) demux(frame []byte) (*aegis.Endpoint, uint64, bool) {
	id, cycles, ok := n.Engine.Classify(frame)
	if !ok {
		return nil, cycles, false
	}
	ep, ok := n.eps[id]
	return ep, cycles, ok
}

// engineFilter adapts (engine, id) to the per-endpoint Filter interface;
// it is only consulted if the shared demux is disabled.
type engineFilter struct {
	n  *Net
	id dpf.FilterID
}

func (f engineFilter) Match(frame []byte) (bool, uint64) {
	id, cycles, ok := f.n.Engine.Classify(frame)
	return ok && id == f.id, cycles
}

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	Net  *Net
	os   *LibOS
	Port uint16
	EP   *aegis.Endpoint
	id   dpf.FilterID

	rx []rxFrame
	// Delivered counts frames copied into the socket buffer.
	Delivered uint64
}

type rxFrame struct {
	flow    pkt.Flow
	payload []byte
	// ctx is the delivery span's context (zero if the frame carried no
	// valid trace context): the recv span parents under it when the
	// application drains the frame.
	ctx ktrace.SpanContext
}

// Bind creates a socket for a local UDP port: it downloads the filter and
// wires native delivery (copy into the socket buffer, charged per word).
func (n *Net) Bind(os *LibOS, port uint16) (*UDPSocket, error) {
	id, err := n.Engine.Insert(dpf.PortFilter(pkt.ProtoUDP, port))
	if err != nil {
		return nil, err
	}
	ep, err := n.K.InstallFilter(os.Env, engineFilter{n, id})
	if err != nil {
		return nil, err
	}
	s := &UDPSocket{Net: n, os: os, Port: port, EP: ep, id: id}
	ep.Deliver = s.deliver
	n.eps[id] = ep
	os.Net = n
	return s, nil
}

// Close unbinds the socket: the endpoint is removed and the downloaded
// filter uninstalled (the demux trie recompiles without it).
func (s *UDPSocket) Close() error {
	s.Net.K.RemoveEndpoint(s.EP)
	delete(s.Net.eps, s.id)
	return s.Net.Engine.Remove(s.id)
}

// deliver runs at interrupt level: copy the frame into the socket buffer
// (one charged word move per 4 bytes — the single copy of the exokernel
// path) and let the application find it when it runs.
func (s *UDPSocket) deliver(k *aegis.Kernel, frame []byte) {
	flow, ok := pkt.ParseFlow(frame)
	if !ok {
		return
	}
	start := k.M.Clock.Cycles()
	payload := pkt.Payload(frame)
	buf := make([]byte, len(payload))
	copy(buf, payload)
	k.M.Clock.Tick(uint64((len(frame) + 3) / 4))
	var ctx ktrace.SpanContext
	if wc := wireParse(frame); wc.Valid() {
		rx := k.Spans.Begin(start, ktrace.SpanRx, uint32(s.os.Env.ID), wc, uint64(len(payload)))
		k.Spans.End(rx, k.M.Clock.Cycles())
		ctx = rx.Ctx()
	}
	s.rx = append(s.rx, rxFrame{flow: flow, payload: buf, ctx: ctx})
	s.Delivered++
}

// SendTo transmits payload to a destination. The header build and the copy
// into the transmit buffer are application-level work, charged per word.
func (s *UDPSocket) SendTo(dstMAC pkt.Addr, dstIP uint32, dstPort uint16, payload []byte) {
	f := pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: s.Net.IP, DstIP: dstIP, SrcPort: s.Port, DstPort: dstPort}
	frame := pkt.Build(dstMAC, s.Net.MAC, f, payload)
	var tx ktrace.SpanRef
	if s.os.Env.Trace.Valid() {
		tx = s.os.K.Spans.Begin(s.os.K.M.Clock.Cycles(), ktrace.SpanUDPTx, uint32(s.os.Env.ID), s.os.Env.Trace, uint64(len(payload)))
		wireStamp(frame, tx.Ctx())
	}
	s.os.K.M.Clock.Tick(uint64(pkt.UDPPayload/4) + 4) // header composition + checksum arithmetic
	// The span closes before the NIC hand-off: segment delivery is
	// synchronous and can advance this clock through remote processing
	// (an ASH reply), which is wire time, not transmit work.
	s.os.K.Spans.End(tx, s.os.K.M.Clock.Cycles())
	s.os.K.M.NIC.Send(hw.Packet{Data: frame})
}

// TryRecv returns the next received payload without blocking. The drain
// is application work: queue bookkeeping plus the copy of the payload into
// the caller's buffer.
func (s *UDPSocket) TryRecv() ([]byte, pkt.Flow, bool) {
	s.os.K.M.Clock.Tick(8) // queue check + header bookkeeping
	if len(s.rx) == 0 {
		return nil, pkt.Flow{}, false
	}
	fr := s.rx[0]
	s.rx = s.rx[1:]
	var rv ktrace.SpanRef
	if fr.ctx.Valid() {
		rv = s.os.K.Spans.Begin(s.os.K.M.Clock.Cycles(), ktrace.SpanRecv, uint32(s.os.Env.ID), fr.ctx, uint64(len(fr.payload)))
	}
	s.os.K.M.Clock.Tick(uint64((len(fr.payload)+3)/4) + 10)
	if rv.Ctx().Valid() {
		s.os.K.Spans.End(rv, s.os.K.M.Clock.Cycles())
		// The drained message's trace becomes the environment's active
		// context: the application's response joins the request's tree.
		s.os.Env.Trace = rv.Ctx()
	}
	return fr.payload, fr.flow, true
}

// Recv blocks (yielding the slice) until a payload arrives.
func (s *UDPSocket) Recv() ([]byte, pkt.Flow) {
	for {
		if data, flow, ok := s.TryRecv(); ok {
			return data, flow
		}
		s.os.K.Yield(aegis.YieldNext)
	}
}

// AttachEchoASH downloads the echo handler onto this socket's endpoint:
// from then on, arriving frames are answered from the kernel's interrupt
// context without scheduling the application — the Figure 2 fast path.
func (s *UDPSocket) AttachEchoASH() error {
	frame, guard, err := s.os.K.AllocPage(s.os.Env, aegis.AnyFrame)
	if err != nil {
		return err
	}
	_, err = s.os.K.InstallASH(s.EP, EchoASH(), frame, guard)
	if err != nil {
		return fmt.Errorf("exos: echo ASH rejected: %w", err)
	}
	return nil
}

// Pending reports how many received payloads await the application.
func (s *UDPSocket) Pending() int { return len(s.rx) }
