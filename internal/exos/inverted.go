package exos

import (
	"errors"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

// InvertedPT is an alternative page-table structure: a hash table keyed by
// virtual page number with chained collisions — the layout PA-RISC and
// POWER used in hardware [28], here chosen freely by an application
// because the structure is its own. Space is proportional to the number
// of *mappings*, not to the span of the address space, so it wins for
// sparse address spaces (persistent stores, DSM heaps with wide layouts);
// lookups pay a hash and an expected-O(1) chain walk instead of two
// dependent array indexes.
//
// Being able to make this trade per application is the §8 claim that
// "page-table structures ... cannot be modified in micro-kernels" — and
// can here.
type InvertedPT struct {
	k       *aegis.Kernel
	buckets [][]iptEntry
	mask    uint32
	entries int
}

type iptEntry struct {
	vpn uint32
	pte PTE
}

// iptLookupCycles: hash arithmetic + one bucket probe. Slightly more than
// the two-level walk's best case; the win is space, not time.
const iptLookupCycles = 7

// NewInvertedPT creates an inverted table with 2^logBuckets buckets.
func NewInvertedPT(k *aegis.Kernel, logBuckets uint) *InvertedPT {
	n := 1 << logBuckets
	return &InvertedPT{k: k, buckets: make([][]iptEntry, n), mask: uint32(n - 1)}
}

// Name implements PageTable.
func (pt *InvertedPT) Name() string { return "inverted" }

// Entries implements PageTable.
func (pt *InvertedPT) Entries() int { return pt.entries }

// SizeWords implements PageTable: bucket headers plus 5 words per entry.
func (pt *InvertedPT) SizeWords() int { return len(pt.buckets) + pt.entries*5 }

func (pt *InvertedPT) hash(vpn uint32) uint32 {
	h := vpn * 0x9E3779B9 // Fibonacci hashing
	return (h >> 16) & pt.mask
}

// Lookup implements PageTable.
func (pt *InvertedPT) Lookup(va uint32) *PTE {
	vpn := va >> hw.PageShift
	bucket := pt.buckets[pt.hash(vpn)]
	// Charge the hash plus one probe per chained entry inspected.
	cost := uint64(iptLookupCycles)
	for i := range bucket {
		cost += 2
		if bucket[i].vpn == vpn {
			pt.k.M.Clock.Tick(cost)
			if bucket[i].pte.Perms&PTValid == 0 {
				return nil
			}
			return &bucket[i].pte
		}
	}
	pt.k.M.Clock.Tick(cost)
	return nil
}

// Set implements PageTable.
func (pt *InvertedPT) Set(va uint32, e PTE) {
	vpn := va >> hw.PageShift
	h := pt.hash(vpn)
	bucket := pt.buckets[h]
	pt.k.M.Clock.Tick(iptLookupCycles)
	for i := range bucket {
		if bucket[i].vpn == vpn {
			old := bucket[i].pte.Perms&PTValid != 0
			now := e.Perms&PTValid != 0
			if !old && now {
				pt.entries++
			} else if old && !now {
				pt.entries--
			}
			if !now {
				// Remove dead entries so chains stay short.
				pt.buckets[h] = append(bucket[:i], bucket[i+1:]...)
				return
			}
			bucket[i].pte = e
			return
		}
	}
	if e.Perms&PTValid != 0 {
		pt.buckets[h] = append(bucket, iptEntry{vpn: vpn, pte: e})
		pt.entries++
	}
}

// Walk implements PageTable.
func (pt *InvertedPT) Walk(fn func(va uint32, pte *PTE) bool) {
	for _, bucket := range pt.buckets {
		for i := range bucket {
			if bucket[i].pte.Perms&PTValid != 0 {
				if !fn(bucket[i].vpn<<hw.PageShift, &bucket[i].pte) {
					return
				}
			}
		}
	}
}

// FindFrame implements PageTable (revocation path).
func (pt *InvertedPT) FindFrame(frame uint32) (*PTE, uint32) {
	for _, bucket := range pt.buckets {
		for i := range bucket {
			if bucket[i].pte.Perms&PTValid != 0 && bucket[i].pte.Frame == frame {
				return &bucket[i].pte, bucket[i].vpn << hw.PageShift
			}
		}
	}
	return nil, 0
}

// UsePageTable selects this LibOS's page-table structure. Applications
// pick a structure before mapping anything (the choice is a layout
// decision, like picking a hash function); swapping a populated table is
// refused rather than migrated.
func (os *LibOS) UsePageTable(pt PageTable) error {
	if os.PT != nil && os.PT.Entries() > 0 {
		return errPopulatedPT
	}
	os.PT = pt
	return nil
}

// errPopulatedPT is returned by UsePageTable on a non-empty table.
var errPopulatedPT = errors.New("exos: cannot swap a populated page table")
