package exos

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"exokernel/internal/fault"
	"exokernel/internal/hw"
)

// rawDev drives the machine's disk directly — no kernel, no capabilities —
// so crash tests can place a file system on a bare machine and power-cycle
// it without rebuilding a LibOS around every reboot.
type rawDev struct {
	m *hw.Machine
	n uint32
}

func (d rawDev) ReadBlock(b uint32, frame uint32) error {
	return d.m.Disk.ReadBlock(b, d.m.Phys, frame)
}

func (d rawDev) WriteBlock(b uint32, frame uint32) error {
	return d.m.Disk.WriteBlock(b, d.m.Phys, frame)
}

func (d rawDev) Flush() error      { return d.m.Disk.Flush() }
func (d rawDev) NumBlocks() uint32 { return d.n }

const (
	crashFSBlocks  = 64
	crashFSJournal = 18 // 16 slots ≥ the 15-frame cache capacity below
	crashFSInodes  = 16
	crashFSFrames  = 16
)

func crashCache(t *testing.T, m *hw.Machine, dev BlockDev, nframes int) *BufCache {
	t.Helper()
	frames := make([]uint32, 0, nframes)
	for i := 0; i < nframes; i++ {
		f, ok := m.Phys.AllocFrame()
		if !ok {
			t.Fatal("out of physical frames")
		}
		frames = append(frames, f)
	}
	return NewBufCache(m.Phys, m.Clock, dev, frames, NewLRU())
}

func fillBytes(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*13)
	}
	return b
}

// fsState is the harness's model of directory contents: name → file bytes.
type fsState map[string][]byte

func (s fsState) clone() fsState {
	c := make(fsState, len(s))
	for k, v := range s {
		c[k] = v // values are never mutated in place, only replaced
	}
	return c
}

func stateEqual(a, b fsState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(v, b[k]) {
			return false
		}
	}
	return true
}

// fsSnapshot reads the whole tree back through the (possibly freshly
// recovered) file system.
func fsSnapshot(fs *FS) (fsState, error) {
	ents, err := fs.List()
	if err != nil {
		return nil, err
	}
	st := make(fsState)
	for _, e := range ents {
		buf := make([]byte, e.Size)
		if n, err := fs.ReadAt(e.Inum, 0, buf); err != nil || uint32(n) != e.Size {
			return nil, fmt.Errorf("read %q: %d bytes, %v", e.Name, n, err)
		}
		st[e.Name] = buf
	}
	return st, nil
}

// crashStep mutates the file system and the model identically. Steps never
// write to the device themselves (the cache below is sized to hold the whole
// working set), so every disk-write boundary in the workload falls inside a
// Sync — which is what makes the two-candidate recovery check (acked vs
// pending) exact.
type crashStep struct {
	name  string
	apply func(fs *FS, st fsState) error
}

var crashWorkload = []crashStep{
	{"create-f0", func(fs *FS, st fsState) error {
		i, err := fs.Create("f0")
		if err != nil {
			return err
		}
		data := fillBytes(0xA0, 900)
		if err := fs.WriteAt(i, 0, data); err != nil {
			return err
		}
		st["f0"] = data
		return nil
	}},
	{"create-f1", func(fs *FS, st fsState) error {
		i, err := fs.Create("f1")
		if err != nil {
			return err
		}
		data := fillBytes(0xB1, 6000)
		if err := fs.WriteAt(i, 0, data); err != nil {
			return err
		}
		st["f1"] = data
		return nil
	}},
	{"grow-f0", func(fs *FS, st fsState) error {
		i, err := fs.Lookup("f0")
		if err != nil {
			return err
		}
		data := fillBytes(0xC2, 5000) // fully covers the old 900 bytes
		if err := fs.WriteAt(i, 0, data); err != nil {
			return err
		}
		st["f0"] = data
		return nil
	}},
	{"rename-f0-g0", func(fs *FS, st fsState) error {
		if err := fs.Rename("f0", "g0"); err != nil {
			return err
		}
		st["g0"] = st["f0"]
		delete(st, "f0")
		return nil
	}},
	{"replace-f1", func(fs *FS, st fsState) error {
		i, err := fs.Create("f2")
		if err != nil {
			return err
		}
		data := fillBytes(0xD3, 1800)
		if err := fs.WriteAt(i, 0, data); err != nil {
			return err
		}
		if err := fs.Rename("f2", "f1"); err != nil {
			return err
		}
		st["f1"] = data
		return nil
	}},
	{"unlink-g0", func(fs *FS, st fsState) error {
		if err := fs.Unlink("g0"); err != nil {
			return err
		}
		delete(st, "g0")
		return nil
	}},
	{"create-f3", func(fs *FS, st fsState) error {
		i, err := fs.Create("f3")
		if err != nil {
			return err
		}
		data := fillBytes(0xE4, 2*hw.PageSize)
		if err := fs.WriteAt(i, 0, data); err != nil {
			return err
		}
		st["f3"] = data
		return nil
	}},
}

func newCrashFS(t *testing.T) (*hw.Machine, rawDev, *FS) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	dev := rawDev{m: m, n: crashFSBlocks}
	cache := crashCache(t, m, dev, crashFSFrames)
	fs, err := FormatJournaled(dev, cache, crashFSInodes, crashFSJournal)
	if err != nil {
		t.Fatal(err)
	}
	return m, dev, fs
}

// crashWorkloadWrites runs the workload fault-free and counts its
// disk-write boundaries — the size of the crash-point space.
func crashWorkloadWrites(t *testing.T) uint64 {
	t.Helper()
	m, _, fs := newCrashFS(t)
	start := m.Disk.Writes
	st := fsState{}
	for _, s := range crashWorkload {
		if err := s.apply(fs, st); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatalf("%s: sync: %v", s.name, err)
		}
	}
	return m.Disk.Writes - start
}

// runToCrash arms a power failure at the nth write boundary and drives the
// workload into it. Returns the last acknowledged state (after the most
// recent successful Sync) and the pending state (what the interrupted Sync
// would have produced).
func runToCrash(t *testing.T, fs *FS, m *hw.Machine, n uint64) (acked, pending fsState) {
	t.Helper()
	m.Disk.Power = fault.New(fault.Config{PowerFailAfterWrites: n})
	acked = fsState{}
	work := fsState{}
	for _, s := range crashWorkload {
		if err := s.apply(fs, work); err != nil {
			// Steps never write to the device, so a power failure can only
			// surface from Sync; anything else breaks the two-candidate model.
			t.Fatalf("crash point %d: power failed inside step %s: %v", n, s.name, err)
		}
		if err := fs.Sync(); err != nil {
			if !errors.Is(err, hw.ErrPowerFail) {
				t.Fatalf("crash point %d: %s sync: %v", n, s.name, err)
			}
			return acked, work.clone()
		}
		acked = work.clone()
	}
	t.Fatalf("crash point %d never fired (workload has too few writes)", n)
	return nil, nil
}

// remount power-cycles the machine's disk resolving cached-write fates with
// crashSeed, then mounts (running recovery) on a fresh cache.
func remount(t *testing.T, m *hw.Machine, dev rawDev, crashSeed uint64) *FS {
	t.Helper()
	m.Disk.Crash(crashSeed)
	m.Disk.Power = nil
	m.Disk.PowerOn()
	fs, err := Mount(dev, crashCache(t, m, dev, crashFSFrames))
	if err != nil {
		t.Fatalf("remount after crash (seed %d): %v", crashSeed, err)
	}
	return fs
}

func verifyRecovered(t *testing.T, fs *FS, acked, pending fsState, label string) {
	t.Helper()
	bad, err := fs.Audit()
	if err != nil {
		t.Fatalf("%s: audit: %v", label, err)
	}
	if len(bad) > 0 {
		t.Fatalf("%s: audit found %d violations: %v", label, len(bad), bad)
	}
	got, err := fsSnapshot(fs)
	if err != nil {
		t.Fatalf("%s: snapshot: %v", label, err)
	}
	if !stateEqual(got, acked) && !stateEqual(got, pending) {
		t.Fatalf("%s: recovered state matches neither the acknowledged nor the "+
			"pending model\n got: %v\nacked: %v\npending: %v",
			label, names(got), names(acked), names(pending))
	}
}

func names(st fsState) []string {
	var out []string
	for k, v := range st {
		out = append(out, fmt.Sprintf("%s(%d)", k, len(v)))
	}
	sort.Strings(out)
	return out
}

// TestCrashPointExploration is the acceptance-criterion sweep: power-fail
// at EVERY disk-write boundary of a create/write/rename/unlink workload,
// under two different cached-write fate seeds, and prove recovery at each —
// successful remount, clean structural audit, and a recovered state equal
// to either the last acknowledged Sync or the interrupted one (atomicity:
// nothing in between, nothing acknowledged lost).
func TestCrashPointExploration(t *testing.T) {
	w := crashWorkloadWrites(t)
	if w < 30 {
		t.Fatalf("workload has only %d write boundaries — sweep too thin", w)
	}
	var replays, rollbacks, cleans uint64
	for n := uint64(1); n <= w; n++ {
		for _, crashSeed := range []uint64{101, 202} {
			m, dev, fs := newCrashFS(t)
			acked, pending := runToCrash(t, fs, m, n)
			fs2 := remount(t, m, dev, crashSeed)
			label := fmt.Sprintf("crash point %d/%d seed %d", n, w, crashSeed)
			verifyRecovered(t, fs2, acked, pending, label)
			jn := fs2.Journal()
			replays += jn.Replayed
			rollbacks += jn.RolledBack
			if jn.LastMountClean {
				cleans++
			}
		}
	}
	// The sweep must exercise both recovery paths: crashes after the commit
	// barrier replay, crashes before it roll back.
	if replays == 0 || rollbacks == 0 {
		t.Fatalf("sweep census: %d replays, %d rollbacks — both paths must occur", replays, rollbacks)
	}
	t.Logf("swept %d crash points × 2 fate seeds: %d replays, %d rollbacks, %d clean mounts",
		w, replays, rollbacks, cleans)
}

// TestCrashDuringRecoveryIsIdempotent crashes the machine a second time in
// the middle of mount-time recovery itself: the journal's replay/rollback
// must be repeatable, so the third mount succeeds and lands in the same
// two-candidate envelope.
func TestCrashDuringRecoveryIsIdempotent(t *testing.T) {
	w := crashWorkloadWrites(t)
	for n := uint64(2); n <= w; n += 2 {
		m, dev, fs := newCrashFS(t)
		acked, pending := runToCrash(t, fs, m, n)

		// First crash, then arm a second power failure at the very first
		// write recovery performs (replay, or a rollback's done marker).
		m.Disk.Crash(101)
		m.Disk.PowerOn()
		m.Disk.Power = fault.New(fault.Config{PowerFailAfterWrites: 1})
		fs2, err := Mount(dev, crashCache(t, m, dev, crashFSFrames))
		if err != nil {
			if !errors.Is(err, hw.ErrPowerFail) {
				t.Fatalf("crash point %d: second mount: %v", n, err)
			}
			// Recovery was interrupted mid-write; crash again and remount
			// clean — recovery of a recovery must also converge.
			fs2 = remount(t, m, dev, 202)
		} else {
			// Recovery finished without a device write (clean journal) —
			// the armed failure never fired, which is itself fine.
			m.Disk.Power = nil
		}
		verifyRecovered(t, fs2, acked, pending, fmt.Sprintf("recovery-crash at point %d", n))
	}
}

// TestJournalCorruptionRollsBack is the bit-rot satellite: a committed but
// corrupted journal — descriptor, copy block, or commit record damaged on
// the platter — must be detected by checksum at recovery time and rolled
// back, never replayed. The FS is stacked on ReliableDev to mirror the
// production composition: ReliableDev's retry checksums are volatile and
// die with the machine, so the journal's own checksums are the only line
// of defense at mount time.
func TestJournalCorruptionRollsBack(t *testing.T) {
	// Journal block geometry for the 64-block image (journal at the tail).
	const (
		descBlk   = crashFSBlocks - crashFSJournal // 46
		copy0Blk  = descBlk + 1
		commitBlk = crashFSBlocks - 1
	)
	// setup drives the FS to the exact "crashed right after the commit
	// barrier" platter: two acknowledged Syncs, then a third transaction
	// whose descriptor+copies+commit record are all stable but whose home
	// locations were never written.
	setup := func(t *testing.T) (*hw.Machine, *ReliableDev, fsState, fsState) {
		m := hw.NewMachine(hw.DEC5000)
		rdev := NewReliableDev(rawDev{m: m, n: crashFSBlocks}, m.Phys, m.Clock)
		cache := crashCache(t, m, rdev, crashFSFrames)
		fs, err := FormatJournaled(rdev, cache, crashFSInodes, crashFSJournal)
		if err != nil {
			t.Fatal(err)
		}
		acked := fsState{}
		for _, s := range crashWorkload[:2] {
			if err := s.apply(fs, acked); err != nil {
				t.Fatal(err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		pending := acked.clone()
		if err := crashWorkload[2].apply(fs, pending); err != nil {
			t.Fatal(err)
		}
		// The commit writes desc (1), D copies (2..D+1), then — after the
		// intent barrier — the commit record at boundary D+2.
		d := uint64(len(fs.cache.dirtyBlocks()))
		m.Disk.Power = fault.New(fault.Config{PowerFailAfterWrites: d + 2})
		if err := fs.Sync(); !errors.Is(err, hw.ErrPowerFail) {
			t.Fatalf("sync: %v, want power failure at the commit record", err)
		}
		if dirty := m.Disk.CacheDirty(); dirty != 1 {
			t.Fatalf("disk cache holds %d blocks, want exactly the commit record", dirty)
		}
		// Power back on with the write cache intact and flush: the platter
		// now holds a fully committed, un-checkpointed transaction.
		m.Disk.Power = nil
		m.Disk.PowerOn()
		if err := m.Disk.Flush(); err != nil {
			t.Fatal(err)
		}
		return m, rdev, acked, pending
	}
	mount := func(t *testing.T, m *hw.Machine, rdev *ReliableDev) *FS {
		t.Helper()
		// A reboot: fresh ReliableDev (its checksum map is volatile) and a
		// fresh cache.
		fresh := NewReliableDev(rdev.Dev, m.Phys, m.Clock)
		fs, err := Mount(fresh, crashCache(t, m, fresh, crashFSFrames))
		if err != nil {
			t.Fatalf("mount: %v", err)
		}
		return fs
	}

	t.Run("intact-journal-replays", func(t *testing.T) {
		m, rdev, _, pending := setup(t)
		fs := mount(t, m, rdev)
		jn := fs.Journal()
		if jn.Replayed != 1 || jn.RolledBack != 0 {
			t.Fatalf("replayed=%d rolledback=%d, want the committed txn replayed",
				jn.Replayed, jn.RolledBack)
		}
		verifyRecovered(t, fs, pending, pending, "intact journal")
	})

	corruptions := []struct {
		name  string
		block uint32
		off   int
	}{
		{"descriptor-entry", descBlk, 17},
		{"copy-block-payload", copy0Blk, 100},
		{"commit-record-checksum", commitBlk, 20},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			m, rdev, acked, _ := setup(t)
			m.Disk.Peek(c.block)[c.off] ^= 0x40 // one flipped bit on the platter
			fs := mount(t, m, rdev)
			jn := fs.Journal()
			if jn.Replayed != 0 {
				t.Fatalf("corrupt %s was replayed", c.name)
			}
			if jn.RolledBack != 1 {
				t.Fatalf("corrupt %s: rolledback=%d, want 1", c.name, jn.RolledBack)
			}
			// Rollback means the acknowledged state, exactly.
			verifyRecovered(t, fs, acked, acked, c.name)
		})
	}

	t.Run("descriptor-magic-wiped", func(t *testing.T) {
		// A destroyed descriptor looks like a fresh journal: nothing to
		// judge, nothing replayed, acknowledged state intact.
		m, rdev, acked, _ := setup(t)
		m.Disk.Peek(descBlk)[0] ^= 0xFF
		fs := mount(t, m, rdev)
		jn := fs.Journal()
		if jn.Replayed != 0 || !jn.LastMountClean {
			t.Fatalf("replayed=%d clean=%v after magic wipe", jn.Replayed, jn.LastMountClean)
		}
		verifyRecovered(t, fs, acked, acked, "magic wipe")
	})
}

// TestJournalEvictionCommit squeezes the working set through a cache
// smaller than one step's dirty footprint: the eviction hook must commit
// mid-operation rather than let an uncommitted dirty block reach its home
// location, and the result must still mount and audit clean.
func TestJournalEvictionCommit(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	dev := rawDev{m: m, n: crashFSBlocks}
	cache := crashCache(t, m, dev, 6) // capacity 5 after the journal's scratch frame
	fs, err := FormatJournaled(dev, cache, crashFSInodes, crashFSJournal)
	if err != nil {
		t.Fatal(err)
	}
	i, err := fs.Create("wide")
	if err != nil {
		t.Fatal(err)
	}
	data := fillBytes(0x5A, 3*hw.PageSize) // bitmap+inode+dir+3 data > 5 frames
	if err := fs.WriteAt(i, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if c := fs.Journal().Commits; c < 2 {
		t.Fatalf("commits = %d, want an eviction-forced commit before the Sync", c)
	}
	fs2, err := Mount(dev, crashCache(t, m, dev, crashFSFrames))
	if err != nil {
		t.Fatal(err)
	}
	want := fsState{"wide": data}
	verifyRecovered(t, fs2, want, want, "eviction commit")
}

// orderDev records the block order of writes passing through.
type orderDev struct {
	BlockDev
	order *[]uint32
}

func (d orderDev) WriteBlock(b uint32, frame uint32) error {
	*d.order = append(*d.order, b)
	return d.BlockDev.WriteBlock(b, frame)
}

// TestSyncWritesAscendingBlockOrder pins the deterministic write-back
// order (sorted by block number) on a plain non-journaled mount — the
// property that makes the set of crash states a function of the dirty
// set, not of map iteration order.
func TestSyncWritesAscendingBlockOrder(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	var order []uint32
	dev := orderDev{BlockDev: rawDev{m: m, n: crashFSBlocks}, order: &order}
	cache := crashCache(t, m, dev, crashFSFrames)
	fs, err := Format(dev, cache, crashFSInodes)
	if err != nil {
		t.Fatal(err)
	}
	for fname, tag := range map[string]byte{"a": 1, "b": 2, "c": 3} {
		i, err := fs.Create(fname)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteAt(i, 0, fillBytes(tag, 2000)); err != nil {
			t.Fatal(err)
		}
	}
	order = order[:0]
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(order) < 4 {
		t.Fatalf("sync wrote only %d blocks", len(order))
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("sync write order not ascending: %v", order)
	}
}

func TestRename(t *testing.T) {
	_, _, fs := newCrashFS(t)
	i, err := fs.Create("old")
	if err != nil {
		t.Fatal(err)
	}
	data := fillBytes(0x11, 500)
	if err := fs.WriteAt(i, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("old"); err == nil {
		t.Fatal("old name still resolves")
	}
	got, err := fs.Lookup("new")
	if err != nil || got != i {
		t.Fatalf("new name → %d, %v", got, err)
	}
	buf := make([]byte, len(data))
	if _, err := fs.ReadAt(got, 0, buf); err != nil || !bytes.Equal(buf, data) {
		t.Fatal("rename lost file contents")
	}
	// Self-rename is a no-op.
	if err := fs.Rename("new", "new"); err != nil {
		t.Fatal(err)
	}
	// Missing source and bad destination both error.
	if err := fs.Rename("ghost", "x"); err == nil {
		t.Fatal("renaming a missing file succeeded")
	}
	if err := fs.Rename("new", ""); err == nil {
		t.Fatal("renaming to an empty name succeeded")
	}
}

func TestRenameReplacesExisting(t *testing.T) {
	_, _, fs := newCrashFS(t)
	src, err := fs.Create("src")
	if err != nil {
		t.Fatal(err)
	}
	srcData := fillBytes(0x22, 700)
	if err := fs.WriteAt(src, 0, srcData); err != nil {
		t.Fatal(err)
	}
	dst, err := fs.Create("dst")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt(dst, 0, fillBytes(0x33, 6000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("src", "dst"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup("dst")
	if err != nil || got != src {
		t.Fatalf("dst → %d, %v; want the renamed inode %d", got, err, src)
	}
	ents, err := fs.List()
	if err != nil || len(ents) != 1 {
		t.Fatalf("directory has %d entries, %v", len(ents), err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// The replaced file's inode and blocks must actually be freed — the
	// audit's leak and orphan passes prove it.
	if bad, err := fs.Audit(); err != nil || len(bad) > 0 {
		t.Fatalf("audit after replace: %v, %v", bad, err)
	}
}

// TestAuditDetectsDamage breaks invariants on purpose and checks the audit
// names each one — a checker that can't fail is not a gate.
func TestAuditDetectsDamage(t *testing.T) {
	t.Run("orphan-inode", func(t *testing.T) {
		_, _, fs := newCrashFS(t)
		if err := fs.writeInode(5, inode{used: 1}); err != nil {
			t.Fatal(err)
		}
		bad, err := fs.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) != 1 || !bytes.Contains([]byte(bad[0]), []byte("orphan")) {
			t.Fatalf("audit = %v, want one orphan violation", bad)
		}
	})
	t.Run("bitmap-leak", func(t *testing.T) {
		_, _, fs := newCrashFS(t)
		frame, err := fs.cache.get(fs.sb.bitmapBlk, false)
		if err != nil {
			t.Fatal(err)
		}
		b := fs.sb.dataBlk + 4
		fs.mem.Page(frame)[b/8] |= 1 << (b % 8)
		fs.cache.markDirty(fs.sb.bitmapBlk)
		bad, err := fs.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) != 1 || !bytes.Contains([]byte(bad[0]), []byte("leak")) {
			t.Fatalf("audit = %v, want one leak violation", bad)
		}
	})
	t.Run("dangling-entry", func(t *testing.T) {
		_, _, fs := newCrashFS(t)
		i, err := fs.Create("doomed")
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.writeInode(i, inode{}); err != nil { // free it behind the directory's back
			t.Fatal(err)
		}
		bad, err := fs.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) != 1 || !bytes.Contains([]byte(bad[0]), []byte("dangling")) {
			t.Fatalf("audit = %v, want one dangling-entry violation", bad)
		}
	})
	t.Run("clean-tree-is-clean", func(t *testing.T) {
		_, _, fs := newCrashFS(t)
		st := fsState{}
		for _, s := range crashWorkload {
			if err := s.apply(fs, st); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		bad, err := fs.Audit()
		if err != nil || len(bad) > 0 {
			t.Fatalf("audit of a healthy tree: %v, %v", bad, err)
		}
	})
}
