package exos

import (
	"bytes"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
	"exokernel/internal/sandbox"
)

var (
	tMacA = pkt.Addr{2, 0, 0, 0, 0, 1}
	tMacB = pkt.Addr{2, 0, 0, 0, 0, 2}
	tIPA  = pkt.IP(10, 1, 0, 1)
	tIPB  = pkt.IP(10, 1, 0, 2)
)

func twoMachines(t *testing.T) (ka, kb *aegis.Kernel, na, nb *Net, sa, sb *UDPSocket) {
	t.Helper()
	seg := ether.NewSegment()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	ka = aegis.New(ma)
	kb = aegis.New(mb)
	seg.Attach(ma)
	seg.Attach(mb)
	na = NewNet(ka, tMacA, tIPA)
	nb = NewNet(kb, tMacB, tIPB)
	osA, err := Boot(ka)
	if err != nil {
		t.Fatal(err)
	}
	osB, err := Boot(kb)
	if err != nil {
		t.Fatal(err)
	}
	sa, err = na.Bind(osA, 7)
	if err != nil {
		t.Fatal(err)
	}
	sb, err = nb.Bind(osB, 7)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestUDPSendReceive(t *testing.T) {
	_, _, _, _, sa, sb := twoMachines(t)
	sa.SendTo(tMacB, tIPB, 7, []byte("ping"))
	data, flow, ok := sb.TryRecv()
	if !ok {
		t.Fatal("no datagram delivered")
	}
	if string(data) != "ping" {
		t.Errorf("payload = %q", data)
	}
	if flow.SrcIP != tIPA || flow.SrcPort != 7 {
		t.Errorf("flow = %+v", flow)
	}
	if sb.Delivered != 1 || sb.Pending() != 0 {
		t.Errorf("delivered=%d pending=%d", sb.Delivered, sb.Pending())
	}
}

func TestUDPWrongPortDropped(t *testing.T) {
	ka, kb, _, _, sa, sb := twoMachines(t)
	sa.SendTo(tMacB, tIPB, 9999, []byte("stray"))
	if sb.Pending() != 0 {
		t.Error("datagram for port 9999 reached port 7 socket")
	}
	if kb.Stats.PktDropped != 1 {
		t.Errorf("receiver dropped = %d", kb.Stats.PktDropped)
	}
	_ = ka
}

func TestUDPEchoASHRoundTrip(t *testing.T) {
	_, kb, _, _, sa, sb := twoMachines(t)
	if err := sb.AttachEchoASH(); err != nil {
		t.Fatal(err)
	}
	sa.SendTo(tMacB, tIPB, 7, []byte("echo-me-please"))
	// The reply was generated in B's interrupt context during delivery —
	// no scheduling of B's application occurred.
	data, flow, ok := sa.TryRecv()
	if !ok {
		t.Fatal("no echo reply")
	}
	if !bytes.Equal(data, []byte("echo-me-please")) {
		t.Errorf("reply payload = %q", data)
	}
	if flow.SrcIP != tIPB || flow.DstIP != tIPA {
		t.Errorf("reply flow = %+v", flow)
	}
	if kb.Stats.ASHRuns != 1 {
		t.Errorf("ASHRuns = %d", kb.Stats.ASHRuns)
	}
	if sb.Delivered != 0 {
		t.Error("application buffer filled despite ASH")
	}
}

func TestEchoASHVerifies(t *testing.T) {
	code := EchoASH()
	res, err := sandbox.Verify(code, sandbox.PolicyASH)
	if err != nil {
		t.Fatalf("echo ASH rejected by the verifier: %v", err)
	}
	if res.MaxSteps != len(code) {
		t.Errorf("bound = %d, want %d", res.MaxSteps, len(code))
	}
}

func TestDemuxCyclesCharged(t *testing.T) {
	ka, _, _, _, sa, sb := twoMachines(t)
	_ = ka
	before := sb.os.K.M.Clock.Cycles()
	sa.SendTo(tMacB, tIPB, 7, []byte("x"))
	if sb.os.K.M.Clock.Cycles() == before {
		t.Error("delivery charged nothing on the receiving machine")
	}
}

func TestRecvBlocksViaYield(t *testing.T) {
	ka, _, _, _, sa, sb := twoMachines(t)
	_ = ka
	sa.SendTo(tMacB, tIPB, 7, []byte("later"))
	data, _ := sb.Recv()
	if string(data) != "later" {
		t.Errorf("Recv = %q", data)
	}
}

func TestMultipleSocketsPerMachine(t *testing.T) {
	seg := ether.NewSegment()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	kb := aegis.New(mb)
	seg.Attach(ma)
	seg.Attach(mb)
	na := NewNet(ka, tMacA, tIPA)
	nb := NewNet(kb, tMacB, tIPB)
	osA, _ := Boot(ka)
	osB1, _ := Boot(kb)
	osB2, _ := Boot(kb)
	sa, _ := na.Bind(osA, 1000)
	s7, err := nb.Bind(osB1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s9, err := nb.Bind(osB2, 9)
	if err != nil {
		t.Fatal(err)
	}
	sa.SendTo(tMacB, tIPB, 9, []byte("to-nine"))
	sa.SendTo(tMacB, tIPB, 7, []byte("to-seven"))
	if d, _, ok := s9.TryRecv(); !ok || string(d) != "to-nine" {
		t.Errorf("socket 9 got %q (%v)", d, ok)
	}
	if d, _, ok := s7.TryRecv(); !ok || string(d) != "to-seven" {
		t.Errorf("socket 7 got %q (%v)", d, ok)
	}
}

func TestUDPSocketClose(t *testing.T) {
	ka, kb, _, _, sa, sb := twoMachines(t)
	_ = ka
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	sa.SendTo(tMacB, tIPB, 7, []byte("into the void"))
	if sb.Pending() != 0 {
		t.Error("closed socket received a datagram")
	}
	if kb.Stats.PktDropped != 1 {
		t.Errorf("receiver dropped = %d, want 1", kb.Stats.PktDropped)
	}
	if err := sb.Close(); err == nil {
		t.Error("double close succeeded")
	}
}
