package exos

import (
	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/pkt"
)

// EchoASH generates the UDP echo handler: a real downloaded program in the
// simulated ISA, verified by the kernel's sandbox before installation. It
// demonstrates all four ASH abilities from §5.5.2 on the reply path:
// direct message vectoring (it reads the frame where the hardware put it),
// integrated processing (the copy and the header rewrite are one pass),
// message initiation (it transmits the reply itself), and control
// initiation (it runs with no application scheduling).
//
// The generated code is loop-free (the sandbox rejects back edges): the
// frame copy is unrolled to the benchmark frame size, the way a code
// generator specializing for a message channel would emit it.
func EchoASH() isa.Code {
	var code isa.Code
	emit := func(op isa.Op, rd, rs, rt uint8, imm int32) {
		code = append(code, isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt, Imm: imm})
	}
	const (
		t0   = hw.RegT0
		t1   = hw.RegT1
		zero = hw.RegZero
	)

	// Copy the frame into the sandbox, a word at a time, unrolled for the
	// 64-byte experiment frames (shorter frames read zeros; XMIT uses the
	// true length).
	for off := int32(0); off < 64; off += 4 {
		emit(isa.PKTLW, t0, zero, 0, off)
		emit(isa.SW, 0, zero, t0, off)
	}
	// Swap Ethernet source and destination (bytes 0-5 ↔ 6-11).
	for i := int32(0); i < 6; i++ {
		emit(isa.PKTLB, t0, zero, 0, 6+i)
		emit(isa.SB, 0, zero, t0, i)
		emit(isa.PKTLB, t1, zero, 0, i)
		emit(isa.SB, 0, zero, t1, 6+i)
	}
	// Swap IP source and destination addresses.
	for i := int32(0); i < 4; i++ {
		emit(isa.PKTLB, t0, zero, 0, int32(pkt.IPDst)+i)
		emit(isa.SB, 0, zero, t0, int32(pkt.IPSrc)+i)
		emit(isa.PKTLB, t1, zero, 0, int32(pkt.IPSrc)+i)
		emit(isa.SB, 0, zero, t1, int32(pkt.IPDst)+i)
	}
	// Swap UDP source and destination ports.
	for i := int32(0); i < 2; i++ {
		emit(isa.PKTLB, t0, zero, 0, int32(pkt.L4DstPort)+i)
		emit(isa.SB, 0, zero, t0, int32(pkt.L4SrcPort)+i)
		emit(isa.PKTLB, t1, zero, 0, int32(pkt.L4SrcPort)+i)
		emit(isa.SB, 0, zero, t1, int32(pkt.L4DstPort)+i)
	}
	// Transmit sandbox[0:len) and finish.
	emit(isa.PKTLEN, t1, 0, 0, 0)
	emit(isa.XMIT, 0, zero, t1, 0)
	emit(isa.HALT, 0, 0, 0, 0)
	return code
}
