package exos

import (
	"errors"
	"fmt"

	"exokernel/internal/hw"
)

// ReliableDev hardens any BlockDev against a faulty disk: transient I/O
// errors are retried with a bounded, doubling backoff, and every block
// written through the device is remembered by checksum so a read that
// comes back corrupted (bits rotted on the platter, or flipped by the
// fault injector) is detected and retried rather than handed to the file
// system as truth. This is library-level policy in the paper's sense —
// the kernel exposes the raw error; what to do about it is the
// application's decision, and a database would make a different one
// (write-ahead to a mirror, say) than this simple retry loop.
//
// The checksum catches corruption only for blocks written through this
// wrapper (it has nothing to compare a never-written block against), and
// a corrupt *write* is caught at the next read of that block. Stacking
// order matters: ReliableDev goes between the BufCache and the raw
// device, so the cache sees only verified data.
type ReliableDev struct {
	Dev   BlockDev
	Mem   *hw.PhysMem
	Clock *hw.Clock

	// MaxRetries bounds recovery attempts per operation (0 means
	// DefaultDiskRetries). The backoff before attempt n is
	// retryBackoffCycles << (n-1): a stuck controller gets geometrically
	// more slack, and a dead one fails the operation in bounded time.
	MaxRetries int

	sums map[uint32]uint32 // block -> FNV-1a of last written contents

	// Retries counts re-issued operations; ChecksumRejects counts reads
	// whose contents failed verification (each such read is retried);
	// Failures counts operations abandoned after the retry budget.
	Retries, ChecksumRejects, Failures uint64
}

// DefaultDiskRetries is the retry budget when MaxRetries is zero.
const DefaultDiskRetries = 4

// retryBackoffCycles is the pre-retry delay for the first retry (~82 µs
// at 25 MHz, on the order of one rotational miss), doubling per attempt.
const retryBackoffCycles = 2048

// NewReliableDev wraps a device. mem must be the physical memory the
// device DMAs into (checksums hash the landed frame contents).
func NewReliableDev(dev BlockDev, mem *hw.PhysMem, clock *hw.Clock) *ReliableDev {
	return &ReliableDev{Dev: dev, Mem: mem, Clock: clock, sums: make(map[uint32]uint32)}
}

func (r *ReliableDev) budget() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return DefaultDiskRetries
}

// blockSum hashes a frame's contents (FNV-1a), charging one pass over the
// block — verification is real work the library chooses to pay for.
func (r *ReliableDev) blockSum(frame uint32) uint32 {
	page := r.Mem.Page(frame)
	r.Clock.Tick(uint64(len(page) / 4))
	h := uint32(2166136261)
	for _, b := range page {
		h = (h ^ uint32(b)) * 16777619
	}
	return h
}

// ReadBlock reads with retry and, when the block's write-time checksum is
// known, verification of what the DMA delivered.
func (r *ReliableDev) ReadBlock(b uint32, frame uint32) error {
	want, verifiable := r.sums[b]
	var lastErr error
	for attempt := 0; attempt <= r.budget(); attempt++ {
		if attempt > 0 {
			r.Clock.Tick(retryBackoffCycles << (attempt - 1))
			r.Retries++
		}
		if err := r.Dev.ReadBlock(b, frame); err != nil {
			if errors.Is(err, hw.ErrPowerFail) {
				// Not transient: the machine is dead. Retrying
				// would only burn the backoff budget.
				r.Failures++
				return err
			}
			lastErr = err
			continue
		}
		if !verifiable || r.blockSum(frame) == want {
			return nil
		}
		r.ChecksumRejects++
		lastErr = fmt.Errorf("exos: block %d failed checksum verification", b)
	}
	r.Failures++
	return fmt.Errorf("exos: read of block %d failed after %d retries: %w",
		b, r.budget(), lastErr)
}

// WriteBlock writes with retry and remembers the checksum of what was
// sent, so later reads can verify. A write whose DMA corrupted the
// platter copy is therefore caught at read time, not silently trusted.
func (r *ReliableDev) WriteBlock(b uint32, frame uint32) error {
	sum := r.blockSum(frame)
	var lastErr error
	for attempt := 0; attempt <= r.budget(); attempt++ {
		if attempt > 0 {
			r.Clock.Tick(retryBackoffCycles << (attempt - 1))
			r.Retries++
		}
		if err := r.Dev.WriteBlock(b, frame); err != nil {
			if errors.Is(err, hw.ErrPowerFail) {
				r.Failures++
				return err
			}
			lastErr = err
			continue
		}
		r.sums[b] = sum
		return nil
	}
	r.Failures++
	return fmt.Errorf("exos: write of block %d failed after %d retries: %w",
		b, r.budget(), lastErr)
}

// Flush implements BlockDev: the barrier passes straight through (there
// is nothing to retry — a failed barrier means the machine is dead).
func (r *ReliableDev) Flush() error { return r.Dev.Flush() }

// NumBlocks implements BlockDev.
func (r *ReliableDev) NumBlocks() uint32 { return r.Dev.NumBlocks() }
