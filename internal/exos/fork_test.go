package exos

import (
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

const forkVA = 0x1000_0000

func parentWithPage(t *testing.T) (*hw.Machine, *aegis.Kernel, *LibOS, uint32) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	parent, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := parent.AllocAndMap(forkVA)
	if err != nil {
		t.Fatal(err)
	}
	// Put recognizable data in the page; the TouchWrite (which increments
	// the word) both dirties the page and leaves it at 0xC0FFEF.
	m.Phys.WriteWord(frame<<hw.PageShift, 0xC0FFEE)
	if err := parent.TouchWrite(forkVA); err != nil {
		t.Fatal(err)
	}
	return m, k, parent, frame
}

func frameOf(t *testing.T, os *LibOS, va uint32) uint32 {
	t.Helper()
	pte := os.PT.Lookup(va)
	if pte == nil {
		t.Fatalf("va %#x not mapped", va)
	}
	return pte.Frame
}

func TestForkSharesUntilWrite(t *testing.T) {
	m, _, parent, frame := parentWithPage(t)
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Shared frame, both readable.
	if frameOf(t, child, forkVA) != frame {
		t.Error("child does not share the parent's frame")
	}
	child.Enter()
	if err := child.Touch(forkVA); err != nil {
		t.Fatalf("child read failed: %v", err)
	}
	parent.Enter()
	if err := parent.Touch(forkVA); err != nil {
		t.Fatalf("parent read failed: %v", err)
	}
	// Reads did not break the sharing.
	if frameOf(t, child, forkVA) != frameOf(t, parent, forkVA) {
		t.Error("read broke COW sharing")
	}
	_ = m
}

func TestForkCopyOnWriteIsolation(t *testing.T) {
	m, _, parent, frame := parentWithPage(t)
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Child writes: gets a private copy carrying the old contents.
	child.Enter()
	if err := child.TouchWrite(forkVA); err != nil {
		t.Fatalf("child COW write failed: %v", err)
	}
	cf := frameOf(t, child, forkVA)
	if cf == frame {
		t.Fatal("child write did not copy")
	}
	if got := m.Phys.ReadWord(cf << hw.PageShift); got != 0xC0FFF0 {
		t.Errorf("child copy = %#x, want 0xC0FFF0 (inherited 0xC0FFEF, incremented)", got)
	}
	// Parent's page is untouched by the child's write.
	if got := m.Phys.ReadWord(frame << hw.PageShift); got != 0xC0FFEF {
		t.Errorf("parent page = %#x, want 0xC0FFEF", got)
	}
	// Parent write breaks its own COW marking too.
	parent.Enter()
	if err := parent.TouchWrite(forkVA); err != nil {
		t.Fatalf("parent COW write failed: %v", err)
	}
	if pte := parent.PT.Lookup(forkVA); pte.Perms&PTCOW != 0 {
		t.Error("parent still marked COW after write")
	}
	// And further writes are fault-free.
	faults := parent.Faults
	if err := parent.TouchWrite(forkVA); err != nil {
		t.Fatal(err)
	}
	if parent.Faults != faults {
		t.Error("post-break write faulted")
	}
}

func TestForkReadOnlyPagesSharedWithoutCOW(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	parent, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	frame, guard, err := k.AllocPage(parent.Env, aegis.AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Map(forkVA, frame, guard, false); err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	pte := child.PT.Lookup(forkVA)
	if pte == nil || pte.Perms&PTCOW != 0 {
		t.Errorf("read-only page should share without COW: %+v", pte)
	}
	child.Enter()
	if err := child.Touch(forkVA); err != nil {
		t.Errorf("child read of shared RO page failed: %v", err)
	}
}

func TestForkGrandchild(t *testing.T) {
	m, _, parent, _ := parentWithPage(t)
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	grand, err := child.Fork()
	if err != nil {
		t.Fatal(err)
	}
	grand.Enter()
	if err := grand.TouchWrite(forkVA); err != nil {
		t.Fatalf("grandchild COW write failed: %v", err)
	}
	gf := frameOf(t, grand, forkVA)
	if got := m.Phys.ReadWord(gf << hw.PageShift); got != 0xC0FFF0 {
		t.Errorf("grandchild copy = %#x, want 0xC0FFF0", got)
	}
	// Ancestors unaffected.
	child.Enter()
	if err := child.Touch(forkVA); err != nil {
		t.Fatal(err)
	}
}

func TestSharePage(t *testing.T) {
	m, k, parent, frame := parentWithPage(t)
	other, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.SharePage(forkVA, other); err != nil {
		t.Fatal(err)
	}
	other.Enter()
	if err := other.Touch(forkVA); err != nil {
		t.Fatalf("shared read failed: %v", err)
	}
	if frameOf(t, other, forkVA) != frame {
		t.Error("share did not map the same frame")
	}
	// The grant is read-only: a write is a real protection fault.
	if err := other.TouchWrite(forkVA); err == nil {
		t.Error("write through read-only share succeeded")
	}
	if err := parent.SharePage(0x7777_0000, other); err == nil {
		t.Error("share of unmapped page accepted")
	}
	_ = m
}
