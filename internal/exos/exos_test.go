package exos

import (
	"testing"
	"testing/quick"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

func boot2(t *testing.T) (*hw.Machine, *aegis.Kernel, *LibOS) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, os
}

func TestMapTouchLazyFault(t *testing.T) {
	_, k, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if k.Stats.TLBUpcalls != 0 {
		t.Fatal("mapping was not lazy")
	}
	if err := os.Touch(va); err != nil {
		t.Fatal(err)
	}
	if k.Stats.TLBUpcalls != 1 {
		t.Errorf("TLBUpcalls = %d, want 1 (first touch)", k.Stats.TLBUpcalls)
	}
	if err := os.Touch(va); err != nil {
		t.Fatal(err)
	}
	if k.Stats.TLBUpcalls != 1 {
		t.Error("second touch took an upcall; binding should be cached")
	}
}

func TestUnalignedMapRejected(t *testing.T) {
	_, _, os := boot2(t)
	frame, guard, err := os.K.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Map(0x1000_0004, frame, guard, true); err == nil {
		t.Error("unaligned map accepted")
	}
}

func TestDirtyTracking(t *testing.T) {
	_, _, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if os.IsDirty(va) {
		t.Error("fresh page dirty")
	}
	if err := os.Touch(va); err != nil { // read does not dirty
		t.Fatal(err)
	}
	if os.IsDirty(va) {
		t.Error("read marked the page dirty")
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if !os.IsDirty(va) {
		t.Error("write did not mark the page dirty")
	}
	if os.IsDirty(0x7777_0000) {
		t.Error("unmapped page reported dirty")
	}
}

func TestProtectFaultUnprotect(t *testing.T) {
	_, k, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if err := os.Protect(va); err != nil {
		t.Fatal(err)
	}
	// Reads still work on a write-protected page.
	if err := os.Touch(va); err != nil {
		t.Fatalf("read of protected page failed: %v", err)
	}
	faults := 0
	os.OnFault = func(o *LibOS, fva uint32, write bool) bool {
		faults++
		if !write || fva&^(hw.PageSize-1) != va {
			t.Errorf("fault va=%#x write=%v", fva, write)
		}
		return o.Unprotect(va) == nil
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Errorf("faults = %d", faults)
	}
	if os.Faults != 1 {
		t.Errorf("os.Faults = %d", os.Faults)
	}
	// Now writable without faulting.
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Error("extra fault after unprotect")
	}
	if err := os.Protect(0x9999_0000); err == nil {
		t.Error("protect of unmapped page accepted")
	}
	if err := os.Unprotect(0x9999_0000); err == nil {
		t.Error("unprotect of unmapped page accepted")
	}
	_ = k
}

func TestUnhandledFaultKills(t *testing.T) {
	_, _, os := boot2(t)
	if err := os.Touch(0x4444_0000); err == nil {
		t.Fatal("unmapped touch succeeded")
	}
	if !os.Env.Dead {
		t.Error("env survived unhandled fault")
	}
}

func TestUnmapReturnsEntryAndSevers(t *testing.T) {
	_, _, os := boot2(t)
	const va = 0x1000_0000
	frame, err := os.AllocAndMap(va)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Touch(va); err != nil {
		t.Fatal(err)
	}
	old := os.Unmap(va)
	if old.Frame != frame || old.Perms&PTValid == 0 {
		t.Errorf("Unmap returned %+v", old)
	}
	if os.PT.Lookup(va) != nil {
		t.Error("entry survived unmap")
	}
}

func TestPageTableFindFrame(t *testing.T) {
	_, _, os := boot2(t)
	const va = 0x2000_0000
	frame, err := os.AllocAndMap(va)
	if err != nil {
		t.Fatal(err)
	}
	pte, got := os.PT.FindFrame(frame)
	if pte == nil || got != va {
		t.Errorf("FindFrame = %v, %#x", pte, got)
	}
	if pte, _ := os.PT.FindFrame(99999); pte != nil {
		t.Error("FindFrame found a ghost")
	}
}

func TestRevocationDefaultComplies(t *testing.T) {
	_, k, os := boot2(t)
	const va = 0x2000_0000
	frame, err := os.AllocAndMap(va)
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != aegis.RevokeComplied {
		t.Errorf("outcome = %v", out)
	}
	if os.PT.Lookup(va) != nil {
		t.Error("page table still maps revoked page")
	}
}

func TestOnExcUpcall(t *testing.T) {
	m, _, os := boot2(t)
	hits := 0
	os.OnExc = func(o *LibOS, tr aegis.TrapInfo) aegis.Resume {
		hits++
		return aegis.ResumeSkip
	}
	m.RaiseException(hw.ExcOverflow, 10, 0)
	if hits != 1 {
		t.Errorf("OnExc hits = %d", hits)
	}
	if m.CPU.PC != 11 {
		t.Errorf("resume PC = %d, want 11 (skip)", m.CPU.PC)
	}
}

func TestTimerDefaultSavesAndYields(t *testing.T) {
	m, k, os := boot2(t)
	os2, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	k.SetQuantum(100)
	m.Clock.Tick(101)
	m.Timer.Check()
	m.PollInterrupts()
	if os.Yields != 1 {
		t.Errorf("Yields = %d", os.Yields)
	}
	if k.CurEnv() != os2.Env {
		t.Error("slice not donated to the next environment")
	}
}

// Property: dirty bit iff a write happened since mapping, across random
// op sequences.
func TestQuickDirtyBitSoundness(t *testing.T) {
	f := func(ops []uint8) bool {
		_, _, os := boot2t()
		const va = 0x3000_0000
		if _, err := os.AllocAndMap(va); err != nil {
			return false
		}
		wrote := false
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if os.Touch(va) != nil {
					return false
				}
			case 1:
				if os.TouchWrite(va) != nil {
					return false
				}
				wrote = true
			case 2:
				if os.IsDirty(va) != wrote {
					return false
				}
			}
		}
		return os.IsDirty(va) == wrote
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func boot2t() (*hw.Machine, *aegis.Kernel, *LibOS) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		panic(err)
	}
	return m, k, os
}
