package exos

import (
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/ether"
	"exokernel/internal/hw"
)

const dsmVA = 0x5000_0000
const dsmPort = 3111

func dsmPair(t *testing.T) (ma, mb *hw.Machine, a, b *DSMNode, osA, osB *LibOS) {
	t.Helper()
	seg := ether.NewSegment()
	ma = hw.NewMachine(hw.DEC5000)
	mb = hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	kb := aegis.New(mb)
	seg.Attach(ma)
	seg.Attach(mb)
	na := NewNet(ka, tMacA, tIPA)
	nb := NewNet(kb, tMacB, tIPB)
	var err error
	if osA, err = Boot(ka); err != nil {
		t.Fatal(err)
	}
	if osB, err = Boot(kb); err != nil {
		t.Fatal(err)
	}
	if a, err = NewDSMNode(na, osA, dsmPort, tMacB, tIPB); err != nil {
		t.Fatal(err)
	}
	if b, err = NewDSMNode(nb, osB, dsmPort, tMacA, tIPA); err != nil {
		t.Fatal(err)
	}
	// Pumping: while one node waits, the other services its queue. The
	// clocks tick so waiting costs simulated time like everything else.
	a.Pump = func() { b.Service(); ma.Clock.Tick(500); seg.Sync() }
	b.Pump = func() { a.Service(); mb.Clock.Tick(500); seg.Sync() }

	// Node A starts as owner of the shared page.
	if err := a.AddPage(dsmVA, true); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPage(dsmVA, false); err != nil {
		t.Fatal(err)
	}
	return
}

// word reads the shared word on a node through its own mapping.
func dsmWord(t *testing.T, n *DSMNode) uint32 {
	t.Helper()
	n.os.Enter()
	if err := n.os.Touch(dsmVA); err != nil {
		t.Fatalf("dsm read failed: %v", err)
	}
	pte := n.os.PT.Lookup(dsmVA)
	return n.os.K.M.Phys.ReadWord(pte.frameBase())
}

func dsmWrite(t *testing.T, n *DSMNode, v uint32) {
	t.Helper()
	n.os.Enter()
	if err := n.os.TouchWrite(dsmVA); err != nil {
		t.Fatalf("dsm write failed: %v", err)
	}
	pte := n.os.PT.Lookup(dsmVA)
	n.os.K.M.Phys.WriteWord(pte.frameBase(), v)
}

// frameBase locates a PTE's physical byte address.
func (p *PTE) frameBase() uint32 { return p.Frame << hw.PageShift }

func TestDSMCrossMachineCoherence(t *testing.T) {
	_, _, a, b, _, _ := dsmPair(t)

	// A (owner) writes; B reads across the wire.
	dsmWrite(t, a, 4242)
	if got := dsmWord(t, b); got != 4242 {
		t.Fatalf("B read %d, want 4242", got)
	}
	if b.ReadFaults != 1 {
		t.Errorf("B read faults = %d", b.ReadFaults)
	}
	if a.State(dsmVA) != "read-shared" || b.State(dsmVA) != "read-shared" {
		t.Errorf("states after read: %s / %s", a.State(dsmVA), b.State(dsmVA))
	}

	// B writes: ownership migrates over the network.
	dsmWrite(t, b, 777)
	if b.State(dsmVA) != "writable" {
		t.Errorf("B state = %s", b.State(dsmVA))
	}
	if a.State(dsmVA) != "invalid" {
		t.Errorf("A state = %s, want invalid after remote write", a.State(dsmVA))
	}

	// A reads the new value back across the wire.
	if got := dsmWord(t, a); got != 777 {
		t.Fatalf("A read %d, want 777", got)
	}
	if a.ReadFaults != 1 {
		t.Errorf("A read faults = %d", a.ReadFaults)
	}
}

func TestDSMRepeatedAccessNoExtraFaults(t *testing.T) {
	_, _, a, b, _, _ := dsmPair(t)
	dsmWrite(t, a, 1)
	dsmWord(t, b)
	faults := b.ReadFaults
	// Cached read-shared access: no protocol traffic.
	dsmWord(t, b)
	dsmWord(t, b)
	if b.ReadFaults != faults {
		t.Errorf("read-shared re-reads faulted: %d → %d", faults, b.ReadFaults)
	}
	sent := a.PagesSent + b.PagesSent
	dsmWord(t, a) // owner-side read: also quiet (A is read-shared with a copy)
	if a.PagesSent+b.PagesSent != sent {
		t.Error("local reads moved pages")
	}
}

func TestDSMPingPongOwnership(t *testing.T) {
	ma, _, a, b, _, _ := dsmPair(t)
	dsmWrite(t, a, 0)
	start := ma.Clock.Cycles()
	const rounds = 10
	for i := uint32(1); i <= rounds; i++ {
		dsmWrite(t, b, i*2)
		if got := dsmWord(t, a); got != i*2 {
			t.Fatalf("round %d: A saw %d", i, got)
		}
		dsmWrite(t, a, i*2+1)
		if got := dsmWord(t, b); got != i*2+1 {
			t.Fatalf("round %d: B saw %d", i, got)
		}
	}
	if a.WriteFaults < rounds || b.WriteFaults < rounds {
		t.Errorf("write faults: %d/%d, want >= %d each", a.WriteFaults, b.WriteFaults, rounds)
	}
	// Sanity on cost: each ownership migration is wire-bound (~2×126 µs),
	// so the whole ping-pong is on the order of tens of milliseconds.
	ms := ma.Micros(ma.Clock.Cycles()-start) / 1000
	if ms > 100 {
		t.Errorf("ping-pong took %.1f ms simulated; protocol overhead looks wrong", ms)
	}
}

func TestDSMUnregisteredFaultsFallThrough(t *testing.T) {
	_, _, _, b, _, osB := dsmPair(t)
	handled := false
	// The DSM chained the previous handler; an unrelated fault reaches it.
	osB.OnFault = func(o *LibOS, va uint32, write bool) bool {
		if b.fault(va, write) {
			return true
		}
		handled = true
		_, err := o.AllocAndMap(va &^ (hw.PageSize - 1))
		return err == nil
	}
	osB.Enter()
	if err := osB.Touch(0x7000_0000); err != nil {
		t.Fatal(err)
	}
	if !handled {
		t.Error("non-DSM fault did not fall through")
	}
	if b.State(0x7000_0000) != "unregistered" {
		t.Error("state accounting wrong")
	}
}
