package exos

import (
	"testing"

	"exokernel/internal/hw"
)

// TestGenerationalWriteBarrier builds the application the paper keeps
// motivating fast protection traps with ([5, 50]): a garbage collector's
// page-grained write barrier. Old-generation pages are write-protected;
// the first store into one faults, the (application!) handler records the
// page in the remembered set and unprotects it. The collector then only
// scans remembered pages for old→young pointers.
func TestGenerationalWriteBarrier(t *testing.T) {
	m, _, os := boot2t()
	const oldGenBase = 0x3000_0000
	const oldPages = 16

	vas := make([]uint32, oldPages)
	for i := range vas {
		vas[i] = oldGenBase + uint32(i)*hw.PageSize
		if _, err := os.AllocAndMap(vas[i]); err != nil {
			t.Fatal(err)
		}
		if err := os.TouchWrite(vas[i]); err != nil { // fault in
			t.Fatal(err)
		}
	}

	// Collector: close the old generation (end of a minor GC).
	remembered := map[uint32]bool{}
	os.OnFault = func(o *LibOS, va uint32, write bool) bool {
		if !write {
			return false
		}
		page := va &^ (hw.PageSize - 1)
		remembered[page] = true
		return o.Unprotect(page) == nil
	}
	if err := os.ProtectN(vas); err != nil {
		t.Fatal(err)
	}

	// Mutator: stores into pages 2, 5, and 11, several times each.
	dirty := []int{2, 5, 11}
	for _, p := range dirty {
		for rep := 0; rep < 4; rep++ {
			if err := os.TouchWrite(vas[p] + uint32(rep*8)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Exactly the dirtied pages are remembered, one fault each.
	if len(remembered) != len(dirty) {
		t.Fatalf("remembered set has %d pages, want %d", len(remembered), len(dirty))
	}
	for _, p := range dirty {
		if !remembered[vas[p]] {
			t.Errorf("page %d missing from remembered set", p)
		}
	}
	if os.Faults != uint64(len(dirty)) {
		t.Errorf("faults = %d, want %d (one barrier hit per page)", os.Faults, len(dirty))
	}

	// The barrier cost per first-store is microseconds, not the hundreds a
	// monolithic signal path costs (Table 10's point, embodied).
	if err := os.ProtectN(vas); err != nil {
		t.Fatal(err)
	}
	remembered = map[uint32]bool{}
	w := m.Clock.StartWatch()
	if err := os.TouchWrite(vas[7]); err != nil {
		t.Fatal(err)
	}
	if us := m.Micros(w.Elapsed()); us > 12 {
		t.Errorf("barrier hit cost %.1f us; application-level traps should be single-digit", us)
	}
}
