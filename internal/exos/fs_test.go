package exos

import (
	"bytes"
	"testing"
	"testing/quick"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

func newFS(t *testing.T, cacheFrames int, policy CachePolicy) (*hw.Machine, *aegis.Kernel, *LibOS, *FS) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAegisDev(os, 512)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFSCache(os, dev, cacheFrames, policy)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(dev, cache, 64)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, os, fs
}

func TestFSCreateWriteRead(t *testing.T) {
	_, _, _, fs := newFS(t, 16, NewLRU())
	inum, err := fs.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the kernel never saw this file system")
	if err := fs.WriteAt(inum, 0, data); err != nil {
		t.Fatal(err)
	}
	if size, _ := fs.Size(inum); size != uint32(len(data)) {
		t.Errorf("size = %d", size)
	}
	got := make([]byte, len(data))
	n, err := fs.ReadAt(inum, 0, got)
	if err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read = %q (%d, %v)", got, n, err)
	}
	// Lookup resolves the same inode.
	if found, err := fs.Lookup("hello.txt"); err != nil || found != inum {
		t.Errorf("lookup = %d, %v", found, err)
	}
}

func TestFSMultiBlockFileAndOffsets(t *testing.T) {
	_, _, _, fs := newFS(t, 16, NewLRU())
	inum, err := fs.Create("big")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*hw.PageSize+123)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := fs.WriteAt(inum, 0, data); err != nil {
		t.Fatal(err)
	}
	// Unaligned read spanning block boundaries.
	got := make([]byte, 5000)
	n, err := fs.ReadAt(inum, 3000, got)
	if err != nil || n != 5000 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data[3000:8000]) {
		t.Error("cross-block read corrupted")
	}
	// Read past EOF is short.
	n, err = fs.ReadAt(inum, uint32(len(data))-10, make([]byte, 100))
	if err != nil || n != 10 {
		t.Errorf("EOF read = %d, %v", n, err)
	}
	// Sparse overwrite in the middle.
	if err := fs.WriteAt(inum, 4096, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 3)
	fs.ReadAt(inum, 4096, small)
	if string(small) != "XYZ" {
		t.Errorf("overwrite read = %q", small)
	}
}

func TestFSIndirectBlocks(t *testing.T) {
	_, _, _, fs := newFS(t, 8, NewLRU())
	inum, err := fs.Create("large")
	if err != nil {
		t.Fatal(err)
	}
	// 40 blocks: well past the 12 direct blocks, into the indirect range.
	data := make([]byte, 40*hw.PageSize)
	for i := range data {
		data[i] = byte(i / 3)
	}
	if err := fs.WriteAt(inum, 0, data); err != nil {
		t.Fatal(err)
	}
	if size, _ := fs.Size(inum); size != uint32(len(data)) {
		t.Errorf("size = %d", size)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := fs.ReadAt(inum, 0, got); err != nil || n != len(data) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Error("indirect-range data corrupted")
	}
	// A read crossing the direct/indirect boundary.
	span := make([]byte, 2*hw.PageSize)
	off := uint32((nDirect - 1) * hw.PageSize)
	if _, err := fs.ReadAt(inum, off, span); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(span, data[off:off+2*hw.PageSize]) {
		t.Error("boundary-crossing read corrupted")
	}
	// Unlink frees everything, including the indirect chain.
	if err := fs.Unlink("large"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("large"); err != nil {
		t.Fatal(err)
	}
}

func TestFSLimitsAndErrors(t *testing.T) {
	_, _, _, fs := newFS(t, 16, NewLRU())
	if _, err := fs.Create(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := fs.Create("this-name-is-way-too-long-for-an-entry"); err == nil {
		t.Error("oversized name accepted")
	}
	inum, _ := fs.Create("f")
	if _, err := fs.Create("f"); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := fs.WriteAt(inum, MaxFileSize-1, []byte("ab")); err == nil {
		t.Error("write past max file size accepted")
	}
	if _, err := fs.Lookup("ghost"); err == nil {
		t.Error("lookup of missing file succeeded")
	}
	if _, err := fs.ReadAt(Inum(9999), 0, make([]byte, 1)); err == nil {
		t.Error("read of bad inode succeeded")
	}
}

func TestFSUnlinkFreesAndReuses(t *testing.T) {
	_, _, _, fs := newFS(t, 16, NewLRU())
	inum, _ := fs.Create("tmp")
	if err := fs.WriteAt(inum, 0, make([]byte, 2*hw.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("tmp"); err == nil {
		t.Error("unlinked file still resolvable")
	}
	// Space and the directory slot are reusable.
	if _, err := fs.Create("tmp"); err != nil {
		t.Fatalf("recreate failed: %v", err)
	}
	if err := fs.Unlink("never-there"); err == nil {
		t.Error("unlink of missing file succeeded")
	}
}

func TestFSPersistsThroughRemount(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAegisDev(os, 256)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewFSCache(os, dev, 8, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(dev, cache, 32)
	if err != nil {
		t.Fatal(err)
	}
	inum, _ := fs.Create("persist")
	if err := fs.WriteAt(inum, 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Remount with a fresh, cold cache over the same extent.
	cache2, err := NewFSCache(os, dev, 8, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, cache2)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := fs2.Lookup("persist")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := fs2.ReadAt(in2, 0, buf); err != nil || string(buf) != "durable" {
		t.Fatalf("remounted read = %q, %v", buf, err)
	}
}

func TestFSCapabilityGuardsDisk(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewAegisDev(os, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A second application's extent is out of reach: wrong capability.
	os2, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	dev2, err := NewAegisDev(os2, 64)
	if err != nil {
		t.Fatal(err)
	}
	frame, guard, err := k.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	// Reading dev2's extent with dev's capability must fail.
	if err := k.DiskRead(dev2.Start, dev2.NBlocks, 0, dev.Guard, frame, guard); err == nil {
		t.Error("cross-extent read with wrong capability succeeded")
	}
	// And out-of-range offsets must fail even with the right capability.
	if err := k.DiskRead(dev.Start, dev.NBlocks, dev.NBlocks, dev.Guard, frame, guard); err == nil {
		t.Error("out-of-extent read succeeded")
	}
}

func TestBufCacheEvictionAndWriteback(t *testing.T) {
	m, k, _, fs := newFS(t, 4, NewLRU())
	_ = k
	inum, _ := fs.Create("f")
	// Write 8 blocks through a 4-frame cache: must evict with writeback.
	data := make([]byte, 8*hw.PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteAt(inum, 0, data); err != nil {
		t.Fatal(err)
	}
	if fs.Cache().Writebacks == 0 {
		t.Error("no writebacks despite cache pressure")
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := fs.ReadAt(inum, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data corrupted through eviction")
	}
	if m.Disk.Reads == 0 || m.Disk.Writes == 0 {
		t.Error("disk never touched")
	}
}

func TestScanAwarePolicyProtectsHotSet(t *testing.T) {
	_, _, _, fs := newFS(t, 8, NewScanAware())
	hot, _ := fs.Create("hot")
	if err := fs.WriteAt(hot, 0, make([]byte, 4*hw.PageSize)); err != nil {
		t.Fatal(err)
	}
	scan, _ := fs.Create("scan")
	if err := fs.WriteAt(scan, 0, make([]byte, 8*hw.PageSize)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, hw.PageSize)
	// Warm the hot set.
	for b := uint32(0); b < 4; b++ {
		fs.ReadAt(hot, b*hw.PageSize, buf)
	}
	fs.Cache().Hits = 0
	fs.Cache().Misses = 0
	// Scan the big file with advice, then re-touch the hot set.
	fs.Advise(AdviceSequential)
	for b := uint32(0); b < 8; b++ {
		fs.ReadAt(scan, b*hw.PageSize, buf)
	}
	fs.Advise(AdviceNormal)
	for b := uint32(0); b < 4; b++ {
		fs.ReadAt(hot, b*hw.PageSize, buf)
	}
	// The hot set must have survived the scan.
	if fs.Cache().Hits < 4 {
		t.Errorf("hot set evicted by advised scan: hits=%d misses=%d",
			fs.Cache().Hits, fs.Cache().Misses)
	}
}

func TestLRUPolicyInvariants(t *testing.T) {
	l := NewLRU()
	l.Touched(1, false)
	l.Touched(2, false)
	l.Touched(3, false)
	l.Touched(1, false) // 1 becomes MRU
	if v, ok := l.Evict(); !ok || v != 2 {
		t.Errorf("evict = %d, want 2", v)
	}
	l.Removed(3)
	if v, ok := l.Evict(); !ok || v != 1 {
		t.Errorf("evict = %d, want 1", v)
	}
	if _, ok := l.Evict(); ok {
		t.Error("evict from empty succeeded")
	}
}

// Property: random write/read sequences behave like an in-memory file.
func TestQuickFSMatchesModel(t *testing.T) {
	type op struct {
		Write bool
		Off   uint16
		Len   uint8
		Fill  byte
	}
	f := func(ops []op) bool {
		m := hw.NewMachine(hw.DEC5000)
		k := aegis.New(m)
		os, err := Boot(k)
		if err != nil {
			return false
		}
		dev, err := NewAegisDev(os, 128)
		if err != nil {
			return false
		}
		cache, err := NewFSCache(os, dev, 4, NewLRU())
		if err != nil {
			return false
		}
		fs, err := Format(dev, cache, 16)
		if err != nil {
			return false
		}
		inum, err := fs.Create("model")
		if err != nil {
			return false
		}
		model := make([]byte, MaxFileSize)
		size := uint32(0)
		for _, o := range ops {
			off := uint32(o.Off) % (4 * hw.PageSize)
			n := uint32(o.Len)
			if o.Write {
				data := bytes.Repeat([]byte{o.Fill}, int(n))
				if fs.WriteAt(inum, off, data) != nil {
					return false
				}
				copy(model[off:off+n], data)
				if off+n > size {
					size = off + n
				}
			} else {
				buf := make([]byte, n)
				got, err := fs.ReadAt(inum, off, buf)
				if err != nil {
					return false
				}
				want := 0
				if off < size {
					want = int(min32(n, size-off))
				}
				if got != want || !bytes.Equal(buf[:got], model[off:off+uint32(got)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func TestFSList(t *testing.T) {
	_, _, _, fs := newFS(t, 8, NewLRU())
	for _, name := range []string{"alpha", "beta", "gamma"} {
		inum, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteAt(inum, 0, []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unlink("beta"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("List = %v", ents)
	}
	names := map[string]uint32{}
	for _, e := range ents {
		names[e.Name] = e.Size
	}
	if names["alpha"] != 5 || names["gamma"] != 5 {
		t.Errorf("entries wrong: %v", ents)
	}
	if _, tombstoned := names["beta"]; tombstoned {
		t.Error("unlinked file still listed")
	}
}
