package exos

import (
	"fmt"
	"strings"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/ktrace"
)

func TestProcReadStatAndStatus(t *testing.T) {
	m, _, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}

	stat, err := os.ProcRead("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stat, "tlb_upcalls 1") {
		t.Errorf("/proc/stat missing the TLB upcall:\n%s", stat)
	}

	status, err := os.ProcRead("/proc/self/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"env 1", "state live", "frames_held 2", "tlb_upcalls 1"} {
		if !strings.Contains(status, want) {
			t.Errorf("/proc/self/status missing %q:\n%s", want, status)
		}
	}
	// By-id addressing resolves to the same environment.
	byID, err := os.ProcRead("/proc/1/status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(byID, "frames_held 2") {
		t.Errorf("/proc/1/status disagrees:\n%s", byID)
	}

	// Cycles are attributed and the read itself is charged.
	before := m.Clock.Cycles()
	if _, err := os.ProcRead("/proc/stat"); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles() == before {
		t.Error("ProcRead consumed no simulated time")
	}
}

func TestProcReadMachine(t *testing.T) {
	m, k, os := boot2(t)
	out, err := os.ProcRead("/proc/machine")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model DEC5000/125", "mhz 25", "mem_pages 8192", "tlb_entries 64", "stlb_entries 4096", "trace_total 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("/proc/machine missing %q:\n%s", want, out)
		}
	}
	// The cycle count reported is the live clock (minus the entry charge,
	// which precedes rendering): reading again must report progress.
	if !strings.Contains(out, fmt.Sprintf("cycles %d", m.Clock.Cycles()-uint64((len(out)+3)/4))) {
		t.Errorf("/proc/machine cycle count is not the live clock:\n%s (clock now %d)", out, m.Clock.Cycles())
	}
	// With a flight recorder attached, the census is the recorder's.
	rec := ktrace.New(16)
	k.SetTracer(rec)
	k.Yield(os.Env.ID) // emit something
	out, err = os.ProcRead("/proc/machine")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, fmt.Sprintf("trace_total %d", rec.Total())) || rec.Total() == 0 {
		t.Errorf("/proc/machine trace census stale (recorder total %d):\n%s", rec.Total(), out)
	}
}

func TestProcReadErrors(t *testing.T) {
	_, _, os := boot2(t)
	for _, path := range []string{"", "/", "/proc", "/proc/nope", "/proc/self/nope", "/proc/99/status", "/proc/x/status", "/proc/99/hist", "/proc/x/hist"} {
		if _, err := os.ProcRead(path); err == nil {
			t.Errorf("ProcRead(%q) succeeded, want error", path)
		}
	}
}

func TestProcStatIncludesHistogramSummary(t *testing.T) {
	_, _, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	stat, err := os.ProcRead("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# hist", "hist syscall ", "hist exception ", "hist ctx-switch "} {
		if !strings.Contains(stat, want) {
			t.Errorf("/proc/stat missing histogram summary line %q:\n%s", want, stat)
		}
	}
}

func TestProcHistograms(t *testing.T) {
	_, k, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	out, err := os.ProcRead("/proc/histograms")
	if err != nil {
		t.Fatal(err)
	}
	// AllocAndMap goes through the kernel entry points directly (native
	// library-OS code, not VM syscalls), so assert on presence of every
	// class line plus a live count somewhere.
	for op := 0; op < int(aegis.NumOpClasses); op++ {
		name := aegis.OpClass(op).String()
		if !strings.Contains(out, "hist "+name+" ") {
			t.Errorf("/proc/histograms missing class %q:\n%s", name, out)
		}
	}
	// Force at least one syscall through the dispatcher so the
	// per-number section has content.
	if k.Stats.OpSnapshot(aegis.OpSyscall).Count == 0 {
		if got := strings.Count(out, "hist syscall/"); got != 0 {
			t.Errorf("per-syscall section has %d lines with no syscalls run", got)
		}
	}
}

func TestProcSelfHist(t *testing.T) {
	_, _, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}
	out, err := os.ProcRead("/proc/self/hist")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "env 1") || !strings.Contains(out, "state live") {
		t.Errorf("/proc/self/hist missing identity lines:\n%s", out)
	}
	byID, err := os.ProcRead("/proc/1/hist")
	if err != nil {
		t.Fatal(err)
	}
	if byID != out {
		t.Errorf("/proc/1/hist disagrees with /proc/self/hist:\n%s\nvs\n%s", byID, out)
	}
}

// TestProcHistDestroyedEnvIsReclaimed: a destroyed environment's
// histograms are reclaimed with its other resources — the read must
// return zeroed state, never stale samples.
func TestProcHistDestroyedEnvIsReclaimed(t *testing.T) {
	_, k, os := boot2(t)
	victim, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	const va = 0x2000_0000
	if _, err := victim.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	id := victim.Env.ID
	if k.Stats.EnvOpSnapshot(id, aegis.OpCtxSwitch).Count == 0 &&
		k.Stats.EnvOpSnapshot(id, aegis.OpSTLBRefill).Count == 0 {
		// Give it at least one recorded op via a directed yield pair.
		k.Yield(id)
		k.Yield(os.Env.ID)
	}
	k.DestroyEnv(victim.Env)

	out, err := os.ProcRead(fmt.Sprintf("/proc/%d/hist", id))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "state dead") {
		t.Errorf("destroyed environment not marked dead:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "hist ") {
			continue
		}
		f := strings.Fields(line)
		// hist <op> <count> <min> <mean> <p50> <p90> <p99> <max>
		for _, v := range f[2:] {
			if v != "0" && v != "0.0" {
				t.Errorf("destroyed environment reports stale histogram data: %q", line)
			}
		}
	}
}
