package exos

import (
	"strings"
	"testing"
)

func TestProcReadStatAndStatus(t *testing.T) {
	m, _, os := boot2(t)
	const va = 0x1000_0000
	if _, err := os.AllocAndMap(va); err != nil {
		t.Fatal(err)
	}
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}

	stat, err := os.ProcRead("/proc/stat")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stat, "tlb_upcalls 1") {
		t.Errorf("/proc/stat missing the TLB upcall:\n%s", stat)
	}

	status, err := os.ProcRead("/proc/self/status")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"env 1", "state live", "frames_held 2", "tlb_upcalls 1"} {
		if !strings.Contains(status, want) {
			t.Errorf("/proc/self/status missing %q:\n%s", want, status)
		}
	}
	// By-id addressing resolves to the same environment.
	byID, err := os.ProcRead("/proc/1/status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(byID, "frames_held 2") {
		t.Errorf("/proc/1/status disagrees:\n%s", byID)
	}

	// Cycles are attributed and the read itself is charged.
	before := m.Clock.Cycles()
	if _, err := os.ProcRead("/proc/stat"); err != nil {
		t.Fatal(err)
	}
	if m.Clock.Cycles() == before {
		t.Error("ProcRead consumed no simulated time")
	}
}

func TestProcReadErrors(t *testing.T) {
	_, _, os := boot2(t)
	for _, path := range []string{"", "/", "/proc", "/proc/nope", "/proc/self/nope", "/proc/99/status", "/proc/x/status"} {
		if _, err := os.ProcRead(path); err == nil {
			t.Errorf("ProcRead(%q) succeeded, want error", path)
		}
	}
}
