package exos

import (
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
)

func bootSwapper(t *testing.T) (*hw.Machine, *aegis.Kernel, *LibOS, *Swapper) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwapper(os, 32)
	if err != nil {
		t.Fatal(err)
	}
	return m, k, os, sw
}

func TestPagerSurvivesRevocation(t *testing.T) {
	m, k, os, sw := bootSwapper(t)
	const va = 0x1000_0000
	frame, err := os.AllocAndMap(va)
	if err != nil {
		t.Fatal(err)
	}
	sw.Track(va)
	m.Phys.WriteWord(frame<<hw.PageShift, 0xFACE)
	if err := os.TouchWrite(va); err != nil {
		t.Fatal(err)
	}

	// The kernel wants the frame back. The pager complies — visibly.
	out, err := k.RevokePage(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out != aegis.RevokeComplied {
		t.Fatalf("outcome = %v, want complied (pager wrote the page out)", out)
	}
	if sw.PageOuts != 1 {
		t.Errorf("PageOuts = %d", sw.PageOuts)
	}
	if sw.Resident(va) {
		t.Error("page still resident after page-out")
	}
	if m.Disk.Writes == 0 {
		t.Error("nothing written to the swap extent")
	}

	// Touch it again: the fault pages it back in with contents intact.
	if err := os.Touch(va); err != nil {
		t.Fatalf("page-in failed: %v", err)
	}
	if sw.PageIns != 1 {
		t.Errorf("PageIns = %d", sw.PageIns)
	}
	pte := os.PT.Lookup(va)
	if pte == nil {
		t.Fatal("page not remapped")
	}
	if got := m.Phys.ReadWord(pte.Frame << hw.PageShift); got != 0xFACE+1 {
		t.Errorf("paged-in word = %#x, want %#x", got, 0xFACE+1)
	}
	// Writable again after page-in (perms preserved).
	if err := os.TouchWrite(va); err != nil {
		t.Errorf("write after page-in failed: %v", err)
	}
}

func TestPagerFIFOVictimWhenFrameUnknown(t *testing.T) {
	m, k, os, sw := bootSwapper(t)
	vas := []uint32{0x1000_0000, 0x1000_1000, 0x1000_2000}
	for _, va := range vas {
		if _, err := os.AllocAndMap(va); err != nil {
			t.Fatal(err)
		}
		sw.Track(va)
		if err := os.TouchWrite(va); err != nil {
			t.Fatal(err)
		}
	}
	// Revoke a frame the pager does not map (another env's page): it
	// still frees memory by paging out its FIFO victim.
	other, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	oframe, _, err := k.AllocPage(other.Env, aegis.AnyFrame)
	if err != nil {
		t.Fatal(err)
	}
	_ = oframe
	// Ask the pager directly (the kernel would only upcall for its own
	// frames; this exercises the FIFO fallback).
	if !sw.revoke(k, 0xFFFF) {
		t.Fatal("pager refused")
	}
	if sw.Resident(vas[0]) {
		t.Error("FIFO victim (first tracked) still resident")
	}
	if !sw.Resident(vas[1]) || !sw.Resident(vas[2]) {
		t.Error("pager evicted more than asked")
	}
	_ = m
}

func TestPagerSwapExhaustion(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwapper(os, 1) // one-slot swap
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2; i++ {
		va := 0x1000_0000 + i*hw.PageSize
		if _, err := os.AllocAndMap(va); err != nil {
			t.Fatal(err)
		}
		sw.Track(va)
		if err := os.Touch(va); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.pageOut(0x1000_0000); err != nil {
		t.Fatal(err)
	}
	if err := sw.pageOut(0x1000_1000); err == nil {
		t.Error("page-out into a full swap extent succeeded")
	}
}

func TestPagerChainsToApplicationFaultHandler(t *testing.T) {
	m := hw.NewMachine(hw.DEC5000)
	k := aegis.New(m)
	os, err := Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	appFaults := 0
	os.OnFault = func(o *LibOS, va uint32, write bool) bool {
		appFaults++
		_, err := o.AllocAndMap(va &^ (hw.PageSize - 1))
		return err == nil
	}
	if _, err := NewSwapper(os, 8); err != nil {
		t.Fatal(err)
	}
	// A fault the pager knows nothing about still reaches the app handler.
	if err := os.Touch(0x4000_0000); err != nil {
		t.Fatal(err)
	}
	if appFaults != 1 {
		t.Errorf("application handler saw %d faults", appFaults)
	}
}
