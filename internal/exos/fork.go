package exos

import (
	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
)

// Copy-on-write fork, implemented entirely in the library: the process
// abstraction is one more thing a library OS builds from pages,
// capabilities, and fast protection faults. The kernel's contribution is
// three primitives it already had — a new environment, capability
// derivation, and TLB unmaps; the sharing/breaking policy is all here.
//
// Writable pages become PTCOW in both tables and lose their hardware
// write permission; the first write on either side faults, and the fault
// path below breaks the sharing with a private copy. (Frames are not
// reference-counted: the last sharer keeps the original frame. A page
// both sides copied leaves the original allocated until its owner exits —
// an accepted simplification documented here.)

// Fork creates a child LibOS whose address space is a copy-on-write image
// of the parent's. Child environment state (registers, handlers) starts
// fresh; the address space is what is inherited.
func (os *LibOS) Fork() (*LibOS, error) {
	child, err := Boot(os.K)
	if err != nil {
		return nil, err
	}
	type ent struct {
		va  uint32
		pte PTE
	}
	var parents []ent
	os.PT.Walk(func(va uint32, pte *PTE) bool {
		parents = append(parents, ent{va, *pte})
		return true
	})
	for _, e := range parents {
		// Walk cost: application work, ~4 cycles per entry.
		os.K.M.Clock.Tick(4)
		childPTE := e.pte
		if e.pte.Perms&PTWrite != 0 || e.pte.Perms&PTCOW != 0 {
			// Writable page: both sides lose hardware write access and
			// remember the page is logically writable via PTCOW.
			newPerms := (e.pte.Perms | PTCOW) &^ PTWrite
			parentPTE := e.pte
			parentPTE.Perms = newPerms
			os.PT.Set(e.va, parentPTE)
			os.K.UnmapPage(os.Env, e.va)
			childPTE.Perms = newPerms
		}
		// The child holds a derived capability: proof the parent granted
		// access, not a kernel bookkeeping entry.
		derived, ok := os.K.Auth.Derive(e.pte.Guard, e.pte.Guard.Rights)
		if !ok {
			derived = e.pte.Guard
		}
		childPTE.Guard = derived
		child.PT.Set(e.va, childPTE)
	}
	return child, nil
}

// cowBreak gives this LibOS a private copy of a shared page. Returns true
// if the fault is repaired.
func (os *LibOS) cowBreak(va uint32, pte *PTE) bool {
	va &^= hw.PageSize - 1
	newFrame, guard, err := os.K.AllocPage(os.Env, aegis.AnyFrame)
	if err != nil {
		return false
	}
	// Copy the page: application work, charged per word by CopyIn.
	src := os.K.M.Phys.Page(pte.Frame)
	os.K.M.Phys.CopyIn(newFrame<<hw.PageShift, src)
	newPTE := PTE{
		Frame: newFrame,
		Perms: (pte.Perms | PTWrite | PTDirty) &^ PTCOW,
		Guard: guard,
	}
	os.PT.Set(va, newPTE)
	os.K.UnmapPage(os.Env, va) // drop the stale shared binding
	return os.installPTE(va, os.PT.Lookup(va), true)
}

// cowFault is consulted by the exception path on write faults: it repairs
// COW pages and reports whether it did.
func (os *LibOS) cowFault(va uint32) bool {
	pte := os.PT.Lookup(va)
	if pte == nil || pte.Perms&PTCOW == 0 {
		return false
	}
	return os.cowBreak(va, pte)
}

// SharePage grants another LibOS read-only access to one of this
// instance's pages (the non-COW sharing primitive: shared libraries,
// read-only segments). The grant is a derived capability.
func (os *LibOS) SharePage(va uint32, with *LibOS) error {
	pte := os.PT.Lookup(va)
	if pte == nil {
		return errNotMapped
	}
	ro, ok := os.K.Auth.Derive(pte.Guard, cap.Read)
	if !ok {
		return errNoGrant
	}
	with.PT.Set(va, PTE{Frame: pte.Frame, Perms: PTValid, Guard: ro})
	return nil
}

var (
	errNotMapped = errorString("exos: page not mapped")
	errNoGrant   = errorString("exos: capability does not carry grant")
)

type errorString string

func (e errorString) Error() string { return string(e) }
