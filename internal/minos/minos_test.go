package minos

import (
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

func boot(t *testing.T) (*hw.Machine, *aegis.Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	return m, aegis.New(m)
}

func TestBootAllocStoreLoad(t *testing.T) {
	_, k := boot(t)
	task, err := Boot(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	task.Enter()
	va, err := task.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Store(va, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	got, err := task.Load(va)
	if err != nil || got != 0xBEEF {
		t.Fatalf("load = %#x, %v", got, err)
	}
	// Alignment and exhaustion.
	if va2, _ := task.Alloc(1); va2%4 != 0 {
		t.Error("allocation unaligned")
	}
	if _, err := task.Alloc(1 << 20); err == nil {
		t.Error("over-allocation succeeded")
	}
}

func TestEagerBindingsNeedNoHandler(t *testing.T) {
	m, k := boot(t)
	// 80 pages exceed the hardware TLB; the STLB serves the capacity
	// misses because the bindings were installed eagerly at boot. MinOS
	// never sees a TLB miss, despite installing no handler.
	task, err := Boot(k, 80)
	if err != nil {
		t.Fatal(err)
	}
	task.Enter()
	for i := 0; i < 80; i++ {
		va := HeapBase + uint32(i)*hw.PageSize
		if err := task.Store(va, uint32(i)); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	if k.Stats.TLBUpcalls != 0 {
		t.Errorf("%d misses escaped to the application", k.Stats.TLBUpcalls)
	}
	if task.Fatal != nil {
		t.Errorf("task died: %+v", task.Fatal)
	}
	_ = m
}

func TestFaultIsFatalAndContained(t *testing.T) {
	_, k := boot(t)
	task, err := Boot(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	other, err := exos.Boot(k) // an ExOS process beside it
	if err != nil {
		t.Fatal(err)
	}
	task.Enter()
	if err := task.Store(0x7777_0000, 1); err == nil {
		t.Fatal("out-of-map store succeeded")
	}
	if task.Fatal == nil || !task.Env.Dead {
		t.Error("fault was not fatal to the task")
	}
	// The neighbor is untouched and still works.
	if other.Env.Dead {
		t.Error("neighboring ExOS process died with the task")
	}
	other.Enter()
	if _, err := other.AllocAndMap(0x1000_0000); err != nil {
		t.Fatal(err)
	}
	if err := other.TouchWrite(0x1000_0000); err != nil {
		t.Errorf("neighbor broken after task fault: %v", err)
	}
}

func TestCoexistenceRPCFromExOS(t *testing.T) {
	// The §7 scene: an ExOS process and a MinOS task under one kernel,
	// talking through protected control transfer. Neither library knows
	// the other exists; the register contract is the whole interface.
	m, k := boot(t)
	task, err := Boot(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	task.Handler = func(args [4]uint32) [2]uint32 {
		return [2]uint32{args[0]*args[1] + args[2], 1}
	}
	client, err := exos.Boot(k)
	if err != nil {
		t.Fatal(err)
	}
	client.Enter()
	cpu := &m.CPU
	cpu.SetReg(hw.RegA0, 6)
	cpu.SetReg(hw.RegA1, 7)
	cpu.SetReg(hw.RegA2, 3)
	if err := k.ProtCall(task.Env.ID, false); err != nil {
		t.Fatal(err)
	}
	// MinOS computed and PCT'd back; the reply is in our registers.
	if got := cpu.Reg(hw.RegV0); got != 45 {
		t.Errorf("rpc result = %d, want 45", got)
	}
	if task.Calls != 1 {
		t.Errorf("calls = %d", task.Calls)
	}
	if k.CurEnv() != client.Env {
		t.Error("control did not return to the ExOS client")
	}
}

func TestExitReclaims(t *testing.T) {
	m, k := boot(t)
	free0 := m.Phys.FreeFrames()
	task, err := Boot(k, 8)
	if err != nil {
		t.Fatal(err)
	}
	task.Exit()
	if got := m.Phys.FreeFrames(); got != free0 {
		t.Errorf("free frames = %d, want %d (heap + save area reclaimed)", got, free0)
	}
}

func TestIsolationBetweenTasks(t *testing.T) {
	_, k := boot(t)
	a, err := Boot(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Boot(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Enter()
	if err := a.Store(HeapBase, 111); err != nil {
		t.Fatal(err)
	}
	b.Enter()
	if err := b.Store(HeapBase, 222); err != nil {
		t.Fatal(err)
	}
	// Same virtual address, different environments, different pages.
	a.Enter()
	if v, _ := a.Load(HeapBase); v != 111 {
		t.Errorf("a's word = %d (address spaces leaked)", v)
	}
	b.Enter()
	if v, _ := b.Load(HeapBase); v != 222 {
		t.Errorf("b's word = %d", v)
	}
}
