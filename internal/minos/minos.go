// Package minos is a second library operating system, deliberately tiny —
// living evidence for the paper's claim that different library operating
// systems "can coexist on the same machine and are fully protected by
// Aegis" (§7), and that specialization pays: applications that don't need
// UNIX shouldn't carry one.
//
// MinOS targets run-to-completion service tasks:
//
//   - the memory map is static: a heap of pages is allocated and its
//     bindings installed eagerly at boot. There is no page table, no fault
//     handler, no paging — capacity TLB misses are absorbed by the
//     kernel's software TLB, and a reference outside the map is a fatal
//     bug (recorded, task killed), not a signal;
//   - scheduling is purely cooperative: the task yields when it is done;
//     the time-slice interrupt just donates the slice onward;
//   - the only inbound interface is the protected entry point: MinOS tasks
//     are natural RPC servers.
//
// The whole personality is ~150 lines. An ExOS process with its paging,
// signals, sockets, and file system runs beside it under the same kernel;
// neither can touch the other's pages — the capabilities don't exist.
package minos

import (
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/hw"
)

// Task is a MinOS application instance.
type Task struct {
	K   *aegis.Kernel
	Env *aegis.Env

	heapBase uint32
	heapEnd  uint32
	brk      uint32
	guards   []cap.Capability

	// Handler is the task's RPC body: invoked on protected entry with the
	// caller's argument registers; its results go back in v0/v1 when it
	// replies.
	Handler func(args [4]uint32) [2]uint32

	// Fatal records the fault that killed the task, if any.
	Fatal *aegis.TrapInfo
	// Calls counts protected entries served.
	Calls uint64
}

// HeapBase is where every MinOS task's heap starts (address spaces are
// per-environment; the constant is a convention, not a conflict).
const HeapBase = 0x0800_0000

// Boot creates a task with heapPages of eagerly-bound memory.
func Boot(k *aegis.Kernel, heapPages int) (*Task, error) {
	env, err := k.NewEnv(nil)
	if err != nil {
		return nil, err
	}
	t := &Task{K: k, Env: env, heapBase: HeapBase, brk: HeapBase}
	for i := 0; i < heapPages; i++ {
		frame, guard, err := k.AllocPage(env, aegis.AnyFrame)
		if err != nil {
			return nil, err
		}
		va := HeapBase + uint32(i)*hw.PageSize
		// Eager binding: the miss path will be the kernel's STLB, never
		// this task (MinOS installs no TLB-miss handler at all).
		if err := k.InstallMapping(env, va, frame, hw.PermWrite, guard); err != nil {
			return nil, err
		}
		t.guards = append(t.guards, guard)
	}
	t.heapEnd = HeapBase + uint32(heapPages)*hw.PageSize

	env.NativeExc = func(k *aegis.Kernel, tr aegis.TrapInfo) {
		// No signals, no handlers: any fault is a bug in the task.
		t.Fatal = &tr
		k.Kill(env, tr)
	}
	env.NativeTLBMiss = func(k *aegis.Kernel, va uint32, write bool) bool {
		// Eager bindings mean a genuine miss escaping the software TLB is
		// an out-of-map reference: decline, so it lands in NativeExc.
		return false
	}
	env.NativeInt = func(k *aegis.Kernel) {
		// Cooperative personality: pass the slice on immediately.
		k.M.Clock.Tick(6)
		k.Yield(aegis.YieldNext)
	}
	env.NativeEntry = func(k *aegis.Kernel, caller aegis.EnvID) {
		t.Calls++
		k.M.Clock.Tick(6) // entry stub
		var res [2]uint32
		if t.Handler != nil {
			args := [4]uint32{
				k.M.CPU.Reg(hw.RegA0), k.M.CPU.Reg(hw.RegA1),
				k.M.CPU.Reg(hw.RegA2), k.M.CPU.Reg(hw.RegA3),
			}
			res = t.Handler(args)
		}
		k.M.CPU.SetReg(hw.RegV0, res[0])
		k.M.CPU.SetReg(hw.RegV1, res[1])
		if caller != 0 {
			if err := k.ProtCall(caller, false); err != nil {
				// Caller gone; nothing to reply to.
				_ = err
			}
		}
	}
	return t, nil
}

// Enter establishes the task's environment as the running one (a directed
// yield when another environment holds the CPU).
func (t *Task) Enter() {
	if t.K.CurEnv() != t.Env {
		t.K.Yield(t.Env.ID)
	}
}

// Alloc bump-allocates n bytes from the static heap (word-aligned).
// MinOS has no free: run-to-completion tasks release everything at exit.
func (t *Task) Alloc(n uint32) (uint32, error) {
	n = (n + hw.WordSize - 1) &^ (hw.WordSize - 1)
	if t.brk+n > t.heapEnd {
		return 0, fmt.Errorf("minos: heap exhausted (%d of %d bytes used)", t.brk-t.heapBase, t.heapEnd-t.heapBase)
	}
	va := t.brk
	t.brk += n
	t.K.M.Clock.Tick(3)
	return va, nil
}

// Store writes a word into the task's heap through the MMU. Hardware-TLB
// capacity misses are refilled by the kernel's software TLB and retried;
// anything else is a fatal fault.
func (t *Task) Store(va, v uint32) error {
	pa, err := t.translate(va, true)
	if err != nil {
		return err
	}
	t.K.M.Phys.WriteWord(pa, v)
	return nil
}

// Load reads a word from the task's heap.
func (t *Task) Load(va uint32) (uint32, error) {
	pa, err := t.translate(va, false)
	if err != nil {
		return 0, err
	}
	return t.K.M.Phys.ReadWord(pa), nil
}

func (t *Task) translate(va uint32, write bool) (uint32, error) {
	m := t.K.M
	for try := 0; try < 4; try++ {
		pa, exc := m.Translate(va, write)
		if exc == hw.ExcNone {
			return pa, nil
		}
		m.RaiseException(exc, m.CPU.PC, va)
		if t.Env.Dead {
			return 0, fmt.Errorf("minos: fatal %v at %#x", exc, va)
		}
	}
	return 0, fmt.Errorf("minos: unresolvable miss at %#x", va)
}

// Exit terminates the task and returns every resource to the kernel.
func (t *Task) Exit() {
	t.K.DestroyEnv(t.Env)
}
