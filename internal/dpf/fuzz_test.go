package dpf

import (
	"encoding/binary"
	"testing"
)

// FuzzCompile drives the filter compiler with arbitrary filter sets and
// frames, cross-checking the compiled trie classifier against a naive
// per-atom oracle. The compiler is the one dynamic-code-generation
// analogue in the tree (§5.5): bugs here silently misroute packets, so it
// gets adversarial input, not just the protocol filters the tests use.
//
// Input encoding (consumed byte-wise, zero-padded past the end):
//
//	[nf] then per filter: [na] then per atom:
//	    [off] [sizeSel] [mask:4BE] [val:4BE]
//	remaining bytes: the frame to classify
//
// sizeSel maps {0,1,2}→{1,2,4} and 3→3 (invalid, must be rejected);
// an off byte of 0xFF encodes a negative offset (must be rejected).
func FuzzCompile(f *testing.F) {
	// One filter, one atom, matching frame.
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0xFF, 0, 0, 0, 0x2A, 0x2A, 9, 9})
	// Two filters sharing a first atom, dispatching on a second.
	f.Add([]byte{
		2,
		2, 12, 1, 0, 0, 0, 0, 0, 0, 8, 0, 23, 0, 0, 0, 0, 0, 0, 0, 17,
		2, 12, 1, 0, 0, 0, 0, 0, 8, 0, 23, 0, 0, 0, 0, 0, 0, 0, 99,
		0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 8, 0,
	})
	// Invalid size selector and negative offset (error paths).
	f.Add([]byte{2, 1, 4, 3, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	// Prefix filter: one filter is a strict prefix of another.
	f.Add([]byte{
		2,
		1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x55,
		2, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0x55, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0x66,
		0x55, 0, 0x66, 1, 2, 3,
	})
	// Wide atoms with masks, short frame (out-of-bounds loads).
	f.Add([]byte{1, 2, 0, 2, 0, 0, 0xFF, 0, 0, 0, 0x30, 0, 30, 2, 0xF0, 0xF0, 0, 0, 0xAB, 0xCD, 0x31})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &reader{data: data}
		e := NewEngine()
		var live []FilterID
		nf := int(r.take())%4 + 1
		for i := 0; i < nf; i++ {
			na := int(r.take())%5 + 1
			filt := make(Filter, 0, na)
			for j := 0; j < na; j++ {
				off := int(r.take())
				if off == 0xFF {
					off = -1
				} else {
					off %= 40
				}
				size := []int{1, 2, 4, 3}[r.take()%4]
				filt = append(filt, Atom{
					Off: off, Size: size,
					Mask: r.u32(), Val: r.u32(),
				})
			}
			id, err := e.Insert(filt)
			bad := hasInvalidAtom(filt)
			if err == nil && bad {
				t.Fatalf("invalid filter %v accepted as %d", filt, id)
			}
			if err == nil {
				live = append(live, id)
			}
		}
		if e.Count() != len(live) {
			t.Fatalf("Count = %d, %d live", e.Count(), len(live))
		}

		frame := r.rest(64)
		check(t, e, live, frame)

		// Removal keeps survivors classifiable and never resurrects the
		// removed ID.
		if len(live) > 0 {
			victim := live[int(r.take())%len(live)]
			if err := e.Remove(victim); err != nil {
				t.Fatalf("Remove(%d): %v", victim, err)
			}
			if err := e.Remove(victim); err == nil {
				t.Fatalf("double Remove(%d) accepted", victim)
			}
			rest := make([]FilterID, 0, len(live)-1)
			for _, id := range live {
				if id != victim {
					rest = append(rest, id)
				}
			}
			id, _, _ := e.Classify(frame)
			if id == victim {
				t.Fatalf("removed filter %d still classifying", victim)
			}
			check(t, e, rest, frame)
		}
	})
}

// check compares the compiled classifier against the naive oracle: an
// accepted ID must genuinely match, a rejection must mean no live filter
// matches, and the charged cycles must be whole atom evaluations.
func check(t *testing.T, e *Engine, live []FilterID, frame []byte) {
	t.Helper()
	id, cycles, ok := e.Classify(frame)
	if ok != (id != None) {
		t.Fatalf("ok=%v but id=%d", ok, id)
	}
	if cycles%CyclesPerAtom != 0 {
		t.Fatalf("cycles %d not a multiple of %d", cycles, CyclesPerAtom)
	}
	if ok {
		if e.installed[id] == nil {
			t.Fatalf("classifier returned dead filter %d", id)
		}
		if !oracleMatches(e.installed[id], frame) {
			t.Fatalf("classifier accepted %d = %v for frame %x, oracle rejects",
				id, e.installed[id], frame)
		}
		return
	}
	for _, l := range live {
		if oracleMatches(e.installed[l], frame) {
			t.Fatalf("classifier missed filter %d = %v on frame %x",
				l, e.installed[l], frame)
		}
	}
}

// oracleMatches is the reference semantics: every atom's masked field
// equals its masked value, out-of-bounds loads fail the atom.
func oracleMatches(f Filter, p []byte) bool {
	for _, a := range f {
		mask := a.Mask
		if mask == 0 {
			mask = widthMask(a.Size)
		}
		var v uint32
		switch a.Size {
		case 1:
			if a.Off >= len(p) {
				return false
			}
			v = uint32(p[a.Off])
		case 2:
			if a.Off+2 > len(p) {
				return false
			}
			v = uint32(binary.BigEndian.Uint16(p[a.Off:]))
		default:
			if a.Off+4 > len(p) {
				return false
			}
			v = binary.BigEndian.Uint32(p[a.Off:])
		}
		if v&mask != a.Val&mask {
			return false
		}
	}
	return true
}

func hasInvalidAtom(f Filter) bool {
	for _, a := range f {
		if a.Off < 0 || (a.Size != 1 && a.Size != 2 && a.Size != 4) {
			return true
		}
	}
	return false
}

// reader consumes fuzz input, yielding zeros past the end so every input
// decodes to something.
type reader struct {
	data []byte
	i    int
}

func (r *reader) take() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *reader) u32() uint32 {
	var v uint32
	for k := 0; k < 4; k++ {
		v = v<<8 | uint32(r.take())
	}
	return v
}

func (r *reader) rest(max int) []byte {
	if r.i >= len(r.data) {
		return nil
	}
	out := r.data[r.i:]
	if len(out) > max {
		out = out[:max]
	}
	return out
}
