// Package dpf implements the Dynamic Packet Filter engine (§5.5 of the
// paper, and [22]): message demultiplexing that is "over an order of
// magnitude more efficient than previous systems", with the gain coming
// from *dynamic code generation* — filters are compiled when installed,
// not interpreted per packet.
//
// A filter is a conjunction of atoms, each comparing a masked field of the
// frame against a constant — a declarative language, which is what lets
// the engine merge filters: all installed filters are combined into a
// prefix trie, so shared protocol prefixes (EtherType == IP, proto == TCP)
// are evaluated once per packet, and points where many filters differ
// (port numbers) dispatch through a hash table.
//
// VCODE, the paper's code generator, emitted MIPS instructions at about
// ten instructions per generated instruction. The host equivalent here is
// compiling each trie node into a closure specialized to its offset,
// width, and mask, composed into a single classification function: no
// opcode dispatch, no operand decoding, no per-filter loop at match time.
// The interpreted baselines (internal/mpf, internal/pathfinder) run the
// same workloads for Table 7.
package dpf

import (
	"encoding/binary"
	"fmt"
)

// Atom accepts a frame when load(Off, Size) & Mask == Val. Size is 1, 2 or
// 4 bytes; multi-byte fields are big-endian (network order).
type Atom struct {
	Off  int
	Size int
	Mask uint32
	Val  uint32
}

// Filter is a conjunction of atoms. Atoms are evaluated in order; filters
// that share a prefix of atoms share the work.
type Filter []Atom

// FilterID names an installed filter. IDs are dense and assigned in
// installation order.
type FilterID int

// None is returned when no filter accepts a frame.
const None FilterID = -1

// CyclesPerAtom is the simulated cost of one compiled atom evaluation:
// load, mask, compare — straight-line generated code.
const CyclesPerAtom = 3

// classFn is a compiled classifier node: it returns the accepting filter
// and the number of atoms evaluated.
type classFn func(p []byte, atoms uint64) (FilterID, uint64)

// node is a trie node prior to compilation. Each node tests one atom key;
// equal-key filters merge, different-key filters at the same depth chain
// through alt.
type node struct {
	off, size int
	mask      uint32
	children  map[uint32]*node
	alt       *node    // sibling with a different key at this depth
	accept    FilterID // filter that terminates here (None otherwise)
}

func newNode() *node { return &node{accept: None, children: map[uint32]*node{}} }

// Engine holds the installed filters and the compiled classifier.
type Engine struct {
	root     *node
	compiled classFn
	count    int
	// installed retains each live filter's definition so the trie can be
	// rebuilt on removal (IDs are stable; removed slots hold nil).
	installed []Filter
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	e := &Engine{root: newNode()}
	e.recompile()
	return e
}

// Count reports the number of installed filters.
func (e *Engine) Count() int { return e.count }

// Remove uninstalls a filter. The trie is rebuilt from the survivors and
// recompiled — removal is a bind-time operation, like insertion; the
// match path never checks liveness.
func (e *Engine) Remove(id FilterID) error {
	if int(id) < 0 || int(id) >= len(e.installed) || e.installed[id] == nil {
		return fmt.Errorf("dpf: filter %d not installed", id)
	}
	e.installed[id] = nil
	e.count--
	e.rebuild()
	return nil
}

// rebuild reconstructs the trie from the live filters, keeping IDs.
func (e *Engine) rebuild() {
	e.root = newNode()
	for id, f := range e.installed {
		if f != nil {
			e.insertTrie(f, FilterID(id))
		}
	}
	e.recompile()
}

// Insert installs a filter and recompiles the classifier (code generation
// happens at bind time — its cost is paid once, never per packet).
func (e *Engine) Insert(f Filter) (FilterID, error) {
	if len(f) == 0 {
		return None, fmt.Errorf("dpf: empty filter")
	}
	for _, a := range f {
		if a.Size != 1 && a.Size != 2 && a.Size != 4 {
			return None, fmt.Errorf("dpf: atom size %d not in {1,2,4}", a.Size)
		}
		if a.Off < 0 {
			return None, fmt.Errorf("dpf: negative atom offset")
		}
	}
	id := FilterID(len(e.installed))
	if err := e.insertTrie(f, id); err != nil {
		return None, err
	}
	e.installed = append(e.installed, f)
	e.count++
	e.recompile()
	return id, nil
}

// insertTrie threads one filter's atoms into the trie.
func (e *Engine) insertTrie(f Filter, id FilterID) error {
	n := e.root
	for i, a := range f {
		mask := a.Mask
		if mask == 0 {
			mask = widthMask(a.Size)
		}
		n = descend(n, a.Off, a.Size, mask)
		child, ok := n.children[a.Val&mask]
		if !ok {
			child = newNode()
			n.children[a.Val&mask] = child
		}
		n = child
		if i == len(f)-1 {
			if n.accept != None {
				return fmt.Errorf("dpf: duplicate filter (collides with %d)", n.accept)
			}
			n.accept = id
		}
	}
	return nil
}

// descend finds or creates the node with the given key at this depth,
// walking the alt chain.
func descend(n *node, off, size int, mask uint32) *node {
	if len(n.children) == 0 && n.off == 0 && n.size == 0 {
		// Fresh node: claim the key.
		n.off, n.size, n.mask = off, size, mask
		return n
	}
	for cur := n; ; cur = cur.alt {
		if cur.off == off && cur.size == size && cur.mask == mask {
			return cur
		}
		if cur.alt == nil {
			alt := newNode()
			alt.off, alt.size, alt.mask = off, size, mask
			cur.alt = alt
			return alt
		}
	}
}

func widthMask(size int) uint32 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

// makeLoad generates the field accessor specialized to offset, width and
// mask — the closure-level analogue of emitting a load/mask instruction
// pair.
func makeLoad(off, size int, mask uint32) func(p []byte) (uint32, bool) {
	switch size {
	case 1:
		m8 := byte(mask)
		return func(p []byte) (uint32, bool) {
			if off >= len(p) {
				return 0, false
			}
			return uint32(p[off] & m8), true
		}
	case 2:
		m16 := uint16(mask)
		return func(p []byte) (uint32, bool) {
			if off+2 > len(p) {
				return 0, false
			}
			return uint32(binary.BigEndian.Uint16(p[off:]) & m16), true
		}
	default:
		return func(p []byte) (uint32, bool) {
			if off+4 > len(p) {
				return 0, false
			}
			return binary.BigEndian.Uint32(p[off:]) & mask, true
		}
	}
}

// recompile regenerates the classifier from the trie.
func (e *Engine) recompile() {
	reject := func(p []byte, atoms uint64) (FilterID, uint64) { return None, atoms }
	if e.count == 0 {
		e.compiled = reject
		return
	}
	e.compiled = compileNode(e.root, reject)
}

// compileNode emits the classifier for a node: evaluate this node's atom;
// on a match continue into the child; otherwise fall to the alt chain and
// ultimately to the failure continuation. The continuation style gives the
// classifier backtracking: committing into one filter's suffix and failing
// there falls back to the alternatives at this depth, so overlapping
// filters (a specific flow filter and a coarse port filter, say) resolve
// to the most specific match. Single-child nodes compile to a straight
// comparison; multi-child nodes compile to a map dispatch (DPF's
// hash-table disjunction).
func compileNode(n *node, fail classFn) classFn {
	load := makeLoad(n.off, n.size, n.mask)
	miss := fail
	if n.alt != nil {
		miss = compileNode(n.alt, fail)
	}

	if len(n.children) == 1 {
		// Straight-line compare against the single value.
		var val uint32
		var child *node
		for v, c := range n.children {
			val, child = v, c
		}
		childFn := compileChild(child, miss)
		return func(p []byte, atoms uint64) (FilterID, uint64) {
			v, ok := load(p)
			atoms++
			if !ok || v != val {
				return miss(p, atoms)
			}
			return childFn(p, atoms)
		}
	}

	// Hash-table dispatch over the children.
	table := make(map[uint32]classFn, len(n.children))
	for v, c := range n.children {
		table[v] = compileChild(c, miss)
	}
	return func(p []byte, atoms uint64) (FilterID, uint64) {
		v, ok := load(p)
		atoms++
		if !ok {
			return miss(p, atoms)
		}
		if fn, hit := table[v]; hit {
			return fn(p, atoms)
		}
		return miss(p, atoms)
	}
}

// compileChild compiles a child position: an accepting leaf returns its
// ID; an interior node keeps classifying, preferring the longer match and
// falling back to this position's acceptance (if any) before the outer
// failure continuation.
func compileChild(n *node, fail classFn) classFn {
	isLeaf := len(n.children) == 0 && n.off == 0 && n.size == 0
	if isLeaf {
		id := n.accept
		return func(p []byte, atoms uint64) (FilterID, uint64) { return id, atoms }
	}
	innerFail := fail
	if n.accept != None {
		id := n.accept
		innerFail = func(p []byte, atoms uint64) (FilterID, uint64) { return id, atoms }
	}
	return compileNode(n, innerFail)
}

// Classify runs the compiled classifier over a frame. It returns the
// accepting filter, the simulated cycle cost of the classification, and
// whether any filter matched.
func (e *Engine) Classify(p []byte) (FilterID, uint64, bool) {
	id, atoms := e.compiled(p, 0)
	return id, atoms * CyclesPerAtom, id != None
}
