package dpf

import (
	"testing"
	"testing/quick"

	"exokernel/internal/pkt"
)

func flowN(i int) pkt.Flow {
	return pkt.Flow{
		Proto: pkt.ProtoTCP,
		SrcIP: pkt.IP(10, 0, 0, byte(i+1)), DstIP: pkt.IP(10, 0, 0, 200),
		SrcPort: uint16(1000 + i), DstPort: uint16(2000 + i),
	}
}

func TestClassifyTenFilters(t *testing.T) {
	e := NewEngine()
	var ids []FilterID
	for i := 0; i < 10; i++ {
		id, err := e.Insert(FlowFilter(flowN(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if e.Count() != 10 {
		t.Fatalf("Count = %d", e.Count())
	}
	for i := 0; i < 10; i++ {
		frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(i), []byte("x"))
		id, cycles, ok := e.Classify(frame)
		if !ok || id != ids[i] {
			t.Errorf("flow %d classified as %d (ok=%v)", i, id, ok)
		}
		if cycles == 0 {
			t.Error("classification reported zero cycles")
		}
	}
}

func TestClassifySharedPrefixCost(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		if _, err := e.Insert(FlowFilter(flowN(i))); err != nil {
			t.Fatal(err)
		}
	}
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(9), []byte("x"))
	_, cycles, _ := e.Classify(frame)
	// Six atoms in the filter; the merged trie should evaluate exactly six
	// (shared prefixes evaluated once), not 60.
	if cycles != 6*CyclesPerAtom {
		t.Errorf("classification cost = %d cycles, want %d (6 atoms)", cycles, 6*CyclesPerAtom)
	}
}

func TestNoMatch(t *testing.T) {
	e := NewEngine()
	if _, _, ok := e.Classify([]byte{1, 2, 3}); ok {
		t.Error("empty engine matched")
	}
	if _, err := e.Insert(FlowFilter(flowN(0))); err != nil {
		t.Fatal(err)
	}
	other := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(5), nil)
	if id, _, ok := e.Classify(other); ok {
		t.Errorf("wrong flow matched filter %d", id)
	}
	if _, _, ok := e.Classify([]byte{0xFF}); ok {
		t.Error("truncated frame matched")
	}
}

func TestPortFilter(t *testing.T) {
	e := NewEngine()
	id, err := e.Insert(PortFilter(pkt.ProtoUDP, 53))
	if err != nil {
		t.Fatal(err)
	}
	f := pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: 1, DstIP: 2, SrcPort: 9999, DstPort: 53}
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, f, nil)
	if got, _, ok := e.Classify(frame); !ok || got != id {
		t.Errorf("port filter missed: %d %v", got, ok)
	}
	f.DstPort = 54
	frame = pkt.Build(pkt.Addr{}, pkt.Addr{}, f, nil)
	if _, _, ok := e.Classify(frame); ok {
		t.Error("port filter matched wrong port")
	}
}

func TestOverlappingPrefixFilters(t *testing.T) {
	// A fully-specified flow filter installed ahead of a coarse port
	// filter for the same destination port (the priority a library OS
	// uses for connected sockets vs. a listener). The specific filter
	// wins where it matches; packets that die partway down its atom
	// chain backtrack into the coarse filter.
	e := NewEngine()
	fine, err := e.Insert(FlowFilter(flowN(0)))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := e.Insert(PortFilter(pkt.ProtoTCP, uint16(2000)))
	if err != nil {
		t.Fatal(err)
	}
	full := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(0), nil)
	if id, _, _ := e.Classify(full); id != fine {
		t.Errorf("specific flow classified as %d, want %d", id, fine)
	}
	otherSrc := flowN(0)
	otherSrc.SrcPort = 7777
	frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, otherSrc, nil)
	if id, _, _ := e.Classify(frame); id != coarse {
		t.Errorf("coarse flow classified as %d, want %d", id, coarse)
	}
}

func TestDuplicateFilterRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Insert(FlowFilter(flowN(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(FlowFilter(flowN(1))); err == nil {
		t.Error("duplicate filter accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Insert(nil); err == nil {
		t.Error("empty filter accepted")
	}
	if _, err := e.Insert(Filter{{Off: 0, Size: 3, Val: 1}}); err == nil {
		t.Error("bad atom size accepted")
	}
	if _, err := e.Insert(Filter{{Off: -1, Size: 1, Val: 1}}); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestMaskedAtoms(t *testing.T) {
	e := NewEngine()
	// Match any packet whose first byte has the high bit set.
	id, err := e.Insert(Filter{{Off: 0, Size: 1, Mask: 0x80, Val: 0x80}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := e.Classify([]byte{0xC3}); !ok || got != id {
		t.Error("masked match failed")
	}
	if _, _, ok := e.Classify([]byte{0x7F}); ok {
		t.Error("masked non-match matched")
	}
}

// Property: for any pair of distinct flows, each classifies to its own
// filter and never to the other's.
func TestQuickDistinctFlows(t *testing.T) {
	f := func(aPort, bPort uint16, aIP, bIP uint32) bool {
		if aPort == bPort && aIP == bIP {
			return true
		}
		fa := pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: aIP, DstIP: 9, SrcPort: aPort, DstPort: 99}
		fb := pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: bIP, DstIP: 9, SrcPort: bPort, DstPort: 99}
		e := NewEngine()
		ida, err := e.Insert(FlowFilter(fa))
		if err != nil {
			return false
		}
		idb, err := e.Insert(FlowFilter(fb))
		if err != nil {
			return false
		}
		ga, _, oka := e.Classify(pkt.Build(pkt.Addr{}, pkt.Addr{}, fa, nil))
		gb, _, okb := e.Classify(pkt.Build(pkt.Addr{}, pkt.Addr{}, fb, nil))
		return oka && okb && ga == ida && gb == idb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRemoveFilter(t *testing.T) {
	e := NewEngine()
	var ids []FilterID
	for i := 0; i < 4; i++ {
		id, err := e.Insert(FlowFilter(flowN(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := e.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 3 {
		t.Errorf("Count = %d", e.Count())
	}
	// The removed flow no longer classifies; the others keep their IDs.
	gone := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(1), nil)
	if _, _, ok := e.Classify(gone); ok {
		t.Error("removed filter still matches")
	}
	for _, i := range []int{0, 2, 3} {
		frame := pkt.Build(pkt.Addr{}, pkt.Addr{}, flowN(i), nil)
		if got, _, ok := e.Classify(frame); !ok || got != ids[i] {
			t.Errorf("flow %d: id %d ok=%v after removal", i, got, ok)
		}
	}
	// Double remove fails; removal slot is not resurrected.
	if err := e.Remove(ids[1]); err == nil {
		t.Error("double remove succeeded")
	}
	if err := e.Remove(FilterID(99)); err == nil {
		t.Error("remove of unknown id succeeded")
	}
	// Reinserting the same flow works (new ID).
	id, err := e.Insert(FlowFilter(flowN(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := e.Classify(gone); !ok || got != id {
		t.Errorf("reinserted flow classifies as %d (ok=%v), want %d", got, ok, id)
	}
}
