package dpf

import "exokernel/internal/pkt"

// FlowFilter builds the canonical TCP/IP (or UDP/IP) demultiplexing filter
// for one flow: the six-atom conjunction over EtherType, IP protocol,
// source/destination address, and source/destination port. This is the
// filter shape of the paper's Table 7 workload ("packets destined for one
// of ten TCP/IP filters").
func FlowFilter(f pkt.Flow) Filter {
	return Filter{
		{Off: pkt.EtherType, Size: 2, Val: pkt.TypeIP},
		{Off: pkt.IPProto, Size: 1, Val: uint32(f.Proto)},
		{Off: pkt.IPSrc, Size: 4, Val: f.SrcIP},
		{Off: pkt.IPDst, Size: 4, Val: f.DstIP},
		{Off: pkt.L4SrcPort, Size: 2, Val: uint32(f.SrcPort)},
		{Off: pkt.L4DstPort, Size: 2, Val: uint32(f.DstPort)},
	}
}

// PortFilter builds a filter accepting any IP/UDP or IP/TCP frame for a
// local destination port — what a listening socket installs.
func PortFilter(proto byte, dstPort uint16) Filter {
	return Filter{
		{Off: pkt.EtherType, Size: 2, Val: pkt.TypeIP},
		{Off: pkt.IPProto, Size: 1, Val: uint32(proto)},
		{Off: pkt.L4DstPort, Size: 2, Val: uint32(dstPort)},
	}
}
