package ultrix

import (
	"fmt"

	"exokernel/internal/exos"
	"exokernel/internal/hw"
)

// The monolithic file system baseline. The on-disk engine is the same
// code as the library file system (importing it keeps the two comparable
// structurally); what makes it "the kernel's" is everything wrapped
// around it, which is exactly what the paper indicts:
//
//   - every operation is a system call — the full crossing is charged;
//   - data takes an extra copy (disk → kernel buffer cache → user buffer);
//   - the buffer cache policy is fixed LRU; there is no Advise, no policy
//     swap, no way for an application to tell the kernel it is about to
//     scan a huge file once.

// kernelDev gives the kernel FS raw disk access (no capabilities: the
// kernel trusts itself).
type kernelDev struct {
	m    *hw.Machine
	base uint32
	n    uint32
}

func (d kernelDev) ReadBlock(b uint32, frame uint32) error {
	return d.m.Disk.ReadBlock(d.base+b, d.m.Phys, frame)
}

func (d kernelDev) WriteBlock(b uint32, frame uint32) error {
	return d.m.Disk.WriteBlock(d.base+b, d.m.Phys, frame)
}

func (d kernelDev) Flush() error {
	return d.m.Disk.Flush()
}

func (d kernelDev) NumBlocks() uint32 { return d.n }

// KernelFS is the in-kernel file system.
type KernelFS struct {
	k  *Kernel
	fs *exos.FS
}

// NewKernelFS formats a kernel file system over raw disk blocks
// [base, base+nblocks) with a fixed-size, fixed-policy buffer cache.
func (k *Kernel) NewKernelFS(base, nblocks uint32, cacheFrames int, ninodes uint32) (*KernelFS, error) {
	frames := make([]uint32, 0, cacheFrames)
	for i := 0; i < cacheFrames; i++ {
		f, ok := k.M.Phys.AllocFrame()
		if !ok {
			return nil, fmt.Errorf("ultrix: out of memory for buffer cache")
		}
		frames = append(frames, f)
	}
	dev := kernelDev{m: k.M, base: base, n: nblocks}
	cache := exos.NewBufCache(k.M.Phys, k.M.Clock, dev, frames, exos.NewLRU())
	fs, err := exos.Format(dev, cache, ninodes)
	if err != nil {
		return nil, err
	}
	return &KernelFS{k: k, fs: fs}, nil
}

// Create is creat(2): crossing + engine work.
func (f *KernelFS) Create(p *Proc, name string) (exos.Inum, error) {
	f.k.syscallOverhead()
	return f.fs.Create(name)
}

// Open is open(2) (name resolution only; no fd table modelled).
func (f *KernelFS) Open(p *Proc, name string) (exos.Inum, error) {
	f.k.syscallOverhead()
	return f.fs.Lookup(name)
}

// Read is read(2): crossing, engine read into the kernel buffer, then the
// extra copyout to user space.
func (f *KernelFS) Read(p *Proc, i exos.Inum, off uint32, buf []byte) (int, error) {
	f.k.syscallOverhead()
	n, err := f.fs.ReadAt(i, off, buf)
	f.k.charge(uint64((n + 3) / 4)) // copyout
	return n, err
}

// Write is write(2): crossing, copyin, engine write.
func (f *KernelFS) Write(p *Proc, i exos.Inum, off uint32, buf []byte) error {
	f.k.syscallOverhead()
	f.k.charge(uint64((len(buf) + 3) / 4)) // copyin
	return f.fs.WriteAt(i, off, buf)
}

// Unlink is unlink(2).
func (f *KernelFS) Unlink(p *Proc, name string) error {
	f.k.syscallOverhead()
	return f.fs.Unlink(name)
}

// Sync is sync(2).
func (f *KernelFS) Sync(p *Proc) error {
	f.k.syscallOverhead()
	return f.fs.Sync()
}

// Stats exposes the kernel cache counters (for the harness; applications
// had no such view).
func (f *KernelFS) Stats() *exos.BufCache { return f.fs.Cache() }
