package ultrix

import (
	"bytes"
	"testing"

	"exokernel/internal/hw"
)

func TestKernelFSBasics(t *testing.T) {
	m, k := boot(t)
	p := k.NewProc(nil)
	fs, err := k.NewKernelFS(0, 256, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	inum, err := fs.Create(p, "passwd")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("root::0:0::/:/bin/sh")
	if err := fs.Write(p, inum, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if n, err := fs.Read(p, inum, 0, got); err != nil || n != len(data) || !bytes.Equal(got, data) {
		t.Fatalf("read = %q (%d, %v)", got, n, err)
	}
	if found, err := fs.Open(p, "passwd"); err != nil || found != inum {
		t.Errorf("open = %d, %v", found, err)
	}
	if err := fs.Unlink(p, "passwd"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open(p, "passwd"); err == nil {
		t.Error("open after unlink succeeded")
	}
	if err := fs.Sync(p); err != nil {
		t.Fatal(err)
	}
	_ = m
}

func TestKernelFSChargesCrossings(t *testing.T) {
	m, k := boot(t)
	p := k.NewProc(nil)
	fs, err := k.NewKernelFS(0, 256, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	inum, err := fs.Create(p, "f")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(p, inum, 0, make([]byte, hw.PageSize)); err != nil {
		t.Fatal(err)
	}
	// A fully cached read still pays the crossing + copyout.
	buf := make([]byte, hw.PageSize)
	fs.Read(p, inum, 0, buf) // warm
	before := m.Clock.Cycles()
	fs.Read(p, inum, 0, buf)
	cost := m.Clock.Cycles() - before
	if cost < costSaveAll+costKernelEntry+uint64(len(buf)/4) {
		t.Errorf("cached kernel read cost %d cycles; must include crossing and copyout", cost)
	}
}
