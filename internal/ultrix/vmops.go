package ultrix

import (
	"fmt"

	"exokernel/internal/hw"
)

// Kernel-mediated virtual memory: the Table 10 counterpart of ExOS's
// application-level operations. Every operation is a system call; the
// kernel walks its own structures and flushes translations with no
// knowledge of what the application is doing.

// MapPage allocates a physical page and maps it at va (the mmap/brk
// analogue). Pages start clean; the kernel maintains the dirty bit
// internally.
func (k *Kernel) MapPage(p *Proc, va uint32, writable bool) error {
	if va%hw.PageSize != 0 {
		return fmt.Errorf("ultrix: unaligned map at %#x", va)
	}
	k.syscallOverhead()
	frame, ok := k.M.Phys.AllocFrame()
	if !ok {
		return fmt.Errorf("ultrix: out of memory")
	}
	k.charge(costPmapPage)
	p.pt[va>>hw.PageShift] = upte{frame: frame, valid: true, writable: writable}
	return nil
}

// Mprotect changes protection on a range of pages: one syscall, then
// per-page pmap work and TLB shootdown.
func (k *Kernel) Mprotect(p *Proc, vas []uint32, writable bool) error {
	k.syscallOverhead()
	for _, va := range vas {
		vpn := va >> hw.PageShift
		pte, ok := p.pt[vpn]
		if !ok || !pte.valid {
			return fmt.Errorf("ultrix: mprotect of unmapped va %#x", va)
		}
		pte.writable = writable
		p.pt[vpn] = pte
		k.charge(costPmapPage)
		k.M.TLB.Invalidate(vpn, p.ASID)
	}
	return nil
}

// DirtyQuery: Ultrix has no interface for asking whether a page is dirty —
// the information exists in the kernel but is hidden from applications
// (the paper's Table 10 lists it as unavailable). The error is the result.
func (k *Kernel) DirtyQuery(p *Proc, va uint32) (bool, error) {
	return false, fmt.Errorf("ultrix: no dirty-page interface")
}

// Touch performs one application load at va through the MMU (faulting and
// refilling as the hardware dictates).
func (k *Kernel) Touch(p *Proc, va uint32) error { return k.access(p, va, false) }

// TouchWrite performs one application store at va.
func (k *Kernel) TouchWrite(p *Proc, va uint32) error { return k.access(p, va, true) }

func (k *Kernel) access(p *Proc, va uint32, write bool) error {
	m := k.M
	for try := 0; try < 10; try++ {
		pa, exc := m.Translate(va, write)
		if exc == hw.ExcNone {
			if write {
				m.Phys.WriteWord(pa, m.Phys.ReadWord(pa)+1)
			} else {
				m.Phys.ReadWord(pa)
			}
			return nil
		}
		m.RaiseException(exc, m.CPU.PC, va)
		if p.Dead {
			return fmt.Errorf("ultrix: process killed by fault at %#x", va)
		}
	}
	return fmt.Errorf("ultrix: fault at %#x not repaired", va)
}

// syscallOverhead charges the full crossing shared by every system call.
func (k *Kernel) syscallOverhead() {
	k.Stats.Syscalls++
	k.charge(costSaveAll + costKernelEntry + costSyscallDemux + costRestoreAll)
	k.M.Clock.Tick(hw.CostExcEntry + hw.CostExcReturn)
}
