package ultrix

import (
	"encoding/binary"

	"exokernel/internal/hw"
	"exokernel/internal/pkt"
)

// Kernel IPC and networking: the Table 8 and Table 11 baselines. A pipe is
// a kernel buffer behind read/write system calls — two copies and a
// sleep/wakeup per transfer, with a full context switch to hand the CPU to
// the peer. UDP goes through the socket layer: copyin, protocol output,
// and on receive: soft-interrupt input processing, socket-buffer append, a
// wakeup, and a scheduler pass before the application sees data.

// Pipe is a kernel pipe.
type Pipe struct {
	k   *Kernel
	buf []uint32
	// Reads/Writes count operations (diagnostics).
	Reads, Writes uint64
}

// NewPipe creates a kernel pipe object.
func (k *Kernel) NewPipe() *Pipe { return &Pipe{k: k} }

// WriteWord is the write(2) path for one word: syscall crossing, copyin,
// pipe bookkeeping, wakeup of any sleeping reader.
func (pp *Pipe) WriteWord(p *Proc, v uint32) {
	pp.k.syscallOverhead()
	pp.k.charge(costPipeKernel + 1 + costWakeup)
	pp.buf = append(pp.buf, v)
	pp.Writes++
}

// ReadWord is the read(2) path: syscall crossing, block if empty (a full
// context switch to the writer), copyout.
func (pp *Pipe) ReadWord(p *Proc) (uint32, bool) {
	pp.k.syscallOverhead()
	pp.k.charge(costPipeKernel)
	if len(pp.buf) == 0 {
		// Sleep: the kernel switches to another process; by the time the
		// reader runs again the writer must have filled the buffer.
		if next := pp.k.nextRunnable(); next != nil && next != pp.k.Cur() {
			pp.k.contextSwitch(next)
		}
		if len(pp.buf) == 0 {
			return 0, false
		}
	}
	v := pp.buf[0]
	pp.buf = pp.buf[1:]
	pp.k.charge(1) // copyout
	pp.Reads++
	return v, true
}

// SleepWakeupPair models one round of shared-memory synchronization done
// the only way a monolithic kernel offers it: the consumer blocks in a
// crossing (sleep), the kernel switches away, and the producer's wakeup is
// another full crossing. The shared data reference itself is one cycle —
// the synchronization is where the time goes (Table 8's shm row).
func (k *Kernel) SleepWakeupPair(p *Proc) {
	k.syscallOverhead() // consumer: block
	if next := k.nextRunnable(); next != nil && next != k.Cur() {
		k.contextSwitch(next)
	}
	k.syscallOverhead() // producer: wakeup crossing
	k.charge(costWakeup + 1)
}

// Socket is a kernel UDP socket.
type Socket struct {
	k     *Kernel
	owner *Proc
	Port  uint16
	MAC   pkt.Addr
	IP    uint32
	rx    [][]byte
	// Delivered counts datagrams appended to the socket buffer.
	Delivered uint64
}

// NewSocket binds a kernel UDP socket for a process.
func (k *Kernel) NewSocket(p *Proc, mac pkt.Addr, ip uint32, port uint16) *Socket {
	k.syscallOverhead() // socket(2) + bind(2), compressed to one crossing
	s := &Socket{k: k, owner: p, Port: port, MAC: mac, IP: ip}
	k.sockets = append(k.sockets, s)
	return s
}

// Sendto is the sendto(2) path: crossing, copyin of the payload, protocol
// output processing, interface queueing.
func (s *Socket) Sendto(dstMAC pkt.Addr, dstIP uint32, dstPort uint16, payload []byte) {
	s.k.syscallOverhead()
	s.k.charge(uint64((len(payload)+3)/4) + costUDPOut)
	f := pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: s.IP, DstIP: dstIP, SrcPort: s.Port, DstPort: dstPort}
	frame := pkt.Build(dstMAC, s.MAC, f, payload)
	s.k.M.NIC.Send(hw.Packet{Data: frame})
}

// TryRecv is the recvfrom(2) path when data is ready: crossing plus
// copyout. It returns false when the socket buffer is empty (the caller
// blocks by yielding the CPU through the scheduler).
func (s *Socket) TryRecv() ([]byte, pkt.Flow, bool) {
	s.k.syscallOverhead()
	if len(s.rx) == 0 {
		return nil, pkt.Flow{}, false
	}
	frame := s.rx[0]
	s.rx = s.rx[1:]
	flow, _ := pkt.ParseFlow(frame)
	payload := pkt.Payload(frame)
	s.k.charge(uint64((len(payload) + 3) / 4)) // copyout
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, flow, true
}

// netInput is the kernel's receive processing: for each frame, protocol
// input, PCB lookup, a copy into the matching socket buffer, and a wakeup.
// There are no application filters — demultiplexing is hardwired protocol
// knowledge in the kernel.
func (k *Kernel) netInput() {
	for {
		p, ok := k.M.NIC.Recv()
		if !ok {
			return
		}
		k.Stats.PktRx++
		flow, ok := pkt.ParseFlow(p.Data)
		if !ok || flow.Proto != pkt.ProtoUDP {
			continue
		}
		k.charge(costUDPIn)
		for _, s := range k.sockets {
			if s.Port == flow.DstPort {
				buf := make([]byte, len(p.Data))
				copy(buf, p.Data)
				k.charge(uint64((len(p.Data) + 3) / 4)) // sbappend copy
				s.rx = append(s.rx, buf)
				s.Delivered++
				k.charge(costWakeup)
				break
			}
		}
	}
}

// wordPayload helpers shared by the benchmarks.

// PutWord encodes a word payload.
func PutWord(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

// GetWord decodes a word payload.
func GetWord(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
