package ultrix

// Path-length model for the monolithic baseline, in cycles (1 instruction
// ≈ 1 cycle, as in internal/hw). The constants are structural estimates of
// Ultrix 4.2 / 4.3BSD-derived kernel paths on MIPS, chosen per the
// literature the paper cites (Ousterhout [39], Appel & Li [5], Thekkath &
// Levy [50]) and documented here so every simulated result traces to an
// auditable assumption. They encode the *shape* monolithic kernels pay
// for: full register-file saves, layered demultiplexing, kernel buffering,
// and scheduling before delivery. The paper's point is that these costs
// are architectural, not implementation sloppiness ("Ultrix ... is not a
// poorly tuned system").
const (
	// costSaveAll / costRestoreAll: 32 general registers plus mode/status
	// bookkeeping moved to and from the kernel stack on every crossing.
	costSaveAll    = 40
	costRestoreAll = 40

	// costKernelEntry: trap-vector indirection, kernel-stack switch,
	// interrupt-priority (spl) manipulation, AST checks.
	costKernelEntry = 100

	// costSyscallDemux: syscall-table dispatch, argument copyin and
	// validation scaffolding.
	costSyscallDemux = 60

	// costVMFault: the machine-independent vm_fault walk — map lookup,
	// object chain, page lookup, locking — before the kernel decides a
	// fault is the application's problem.
	costVMFault = 900

	// costSigSetup: building and copying out the signal frame and
	// sigcontext to the user stack.
	costSigSetup   = 80
	sigFrameWords  = 45
	costSigReturn  = 40 // sigcontext validation on the way back
	costPmapPage   = 120
	costTLBRefill  = 16 // the hand-tuned fast utlbmiss path
	costCtxSwitch  = 150
	costWakeup     = 100
	costUnalign    = 500 // in-kernel unaligned-access emulation
	costFPUEnable  = 800 // lazy FPU context enable + state load
	costUDPOut     = 500 // udp_output + ip_output + ifnet queueing
	costUDPIn      = 700 // softnet input, checksum, PCB lookup, sbappend
	costPipeKernel = 120 // pipe object locking and buffer bookkeeping
)
