// Package ultrix models the paper's baseline: a mature monolithic UNIX
// (Ultrix 4.2) on the same simulated hardware Aegis runs on. The kernel
// owns every abstraction — page tables, signals, pipes, sockets, the
// scheduler — so every application interaction crosses the full trap path
// with a complete register save, and every resource decision is made
// without application knowledge. Path lengths are built from the documented
// constants in costs.go plus real state manipulation on the shared hw
// substrate, so the comparison against Aegis/ExOS is between *implemented
// paths*, not between numbers.
package ultrix

import (
	"fmt"

	"exokernel/internal/hw"
	"exokernel/internal/isa"
	"exokernel/internal/vm"
)

// PID names a process.
type PID uint32

// upte is a kernel page-table entry (the application never sees it).
type upte struct {
	frame    uint32
	valid    bool
	writable bool
	dirty    bool
}

// Proc is a heavyweight UNIX process.
type Proc struct {
	PID  PID
	ASID uint8

	Regs [hw.NumRegs]uint32
	PC   uint32
	Code isa.Code

	pt map[uint32]upte // vpn → entry

	// sigVec holds VM handler PCs per cause; NativeSig models a native
	// handler and returns how to resume.
	sigVec    [16]uint32
	NativeSig func(k *Kernel, p *Proc, cause hw.Exc, va uint32) SigAction
	sigEPC    uint32

	// NativeRun is the body of a native process, run once per slice.
	NativeRun func(k *Kernel)

	Dead bool
	// Signals counts signals delivered to this process.
	Signals uint64
	// LastFault is diagnostic state for kills.
	LastFault hw.Exc
}

// SigAction is a native signal handler's resume decision.
type SigAction int

// Signal handler outcomes.
const (
	// SigRetry re-executes the faulting instruction.
	SigRetry SigAction = iota
	// SigSkip resumes after the faulting instruction.
	SigSkip
	// SigKill terminates the process (unhandled).
	SigKill
)

// SetSignalHandler installs a VM signal handler PC for a cause (the
// sigaction(2) analogue; the crossing cost is charged).
func (p *Proc) SetSignalHandler(cause hw.Exc, pc uint32) {
	p.sigVec[cause&15] = pc
}

// Stats counts kernel events.
type Stats struct {
	Syscalls   uint64
	Faults     uint64
	TLBMisses  uint64
	Signals    uint64
	CtxSwitch  uint64
	PktRx      uint64
	KilledProc uint64
}

// Kernel is the monolithic kernel.
type Kernel struct {
	M      *hw.Machine
	Interp *vm.Interp

	procs []*Proc
	cur   PID
	rrPos int
	// curCode mirrors the current process's code segment; republished in
	// install so Fetch needs no per-instruction nil guards.
	curCode isa.Code

	sockets []*Socket

	Stats Stats
}

// New boots the monolithic kernel on a machine.
func New(m *hw.Machine) *Kernel {
	k := &Kernel{M: m}
	k.Interp = vm.New(m, k)
	m.SetTrapHandler(k)
	return k
}

// NewProc creates a process (code nil for native).
func (k *Kernel) NewProc(code isa.Code) *Proc {
	p := &Proc{
		PID:  PID(len(k.procs) + 1),
		ASID: uint8(len(k.procs) + 1),
		Code: code,
		pt:   make(map[uint32]upte),
	}
	k.procs = append(k.procs, p)
	if k.cur == 0 {
		k.install(p)
	}
	return p
}

// Proc resolves a PID.
func (k *Kernel) Proc(pid PID) (*Proc, bool) {
	if pid == 0 || int(pid) > len(k.procs) {
		return nil, false
	}
	return k.procs[pid-1], true
}

// Cur returns the running process.
func (k *Kernel) Cur() *Proc {
	p, _ := k.Proc(k.cur)
	return p
}

func (k *Kernel) charge(n uint64) { k.M.Clock.Tick(n) }

func (k *Kernel) install(p *Proc) {
	cpu := &k.M.CPU
	cpu.Regs = p.Regs
	cpu.PC = p.PC
	cpu.ASID = p.ASID
	cpu.Mode = hw.ModeUser
	k.cur = p.PID
	k.curCode = p.Code
	k.Interp.SetCode(p.Code)
}

func (k *Kernel) save(p *Proc) {
	cpu := &k.M.CPU
	p.Regs = cpu.Regs
	p.PC = cpu.PC
}

// contextSwitch is the kernel's switch: full save/restore plus scheduler
// bookkeeping; processes have no say and no visibility.
func (k *Kernel) contextSwitch(to *Proc) {
	k.Stats.CtxSwitch++
	k.charge(costSaveAll + costCtxSwitch + costRestoreAll)
	k.M.Clock.Tick(hw.CostContextID)
	if cur := k.Cur(); cur != nil {
		k.save(cur)
	}
	k.install(to)
}

// nextRunnable picks the next live process round-robin.
func (k *Kernel) nextRunnable() *Proc {
	for i := 0; i < len(k.procs); i++ {
		k.rrPos = (k.rrPos + 1) % len(k.procs)
		if p := k.procs[k.rrPos]; !p.Dead {
			return p
		}
	}
	return nil
}

// Fetch implements vm.CodeSource. The nil guards are hoisted: curCode is
// republished in install, and a nil segment fails the bounds check.
func (k *Kernel) Fetch(pc uint32) (isa.Inst, hw.Exc) {
	if int(pc) >= len(k.curCode) {
		return isa.Inst{}, hw.ExcAddrErrL
	}
	return k.curCode[pc], hw.ExcNone
}

// HandleTrap is the monolithic trap entry: every crossing saves the full
// register file before the kernel even knows why it was entered.
func (k *Kernel) HandleTrap(m *hw.Machine) {
	cpu := &m.CPU
	switch cpu.Cause {
	case hw.ExcSyscall:
		k.syscall()
	case hw.ExcInterrupt:
		k.interrupt()
	case hw.ExcTLBMissL, hw.ExcTLBMissS:
		k.tlbMiss()
	case hw.ExcTLBMod:
		k.charge(costSaveAll + costKernelEntry)
		k.vmFault(cpu.BadVAddr, true)
	case hw.ExcAddrErrL, hw.ExcAddrErrS:
		// Ultrix fixes unaligned accesses inside the kernel; applications
		// never see them (hence "n/a" in the paper's Table 5).
		k.charge(costSaveAll + costKernelEntry + costUnalign + costRestoreAll)
		cpu.PC = cpu.EPC + 1
		cpu.Mode = hw.ModeUser
	case hw.ExcCoproc:
		// Lazy FPU enable: the kernel owns coprocessor state.
		k.charge(costSaveAll + costKernelEntry + costFPUEnable + costRestoreAll)
		cpu.FPUOn = true
		cpu.PC = cpu.EPC
		cpu.Mode = hw.ModeUser
	case hw.ExcOverflow, hw.ExcBreak, hw.ExcPriv:
		k.charge(costSaveAll + costKernelEntry)
		k.deliverSignal(cpu.Cause, 0)
	default:
		k.charge(costSaveAll + costKernelEntry)
		k.deliverSignal(cpu.Cause, cpu.BadVAddr)
	}
}

// tlbMiss refills from the kernel page table (the hand-tuned fast path);
// misses with no mapping fall into vm_fault and come out as signals.
func (k *Kernel) tlbMiss() {
	k.Stats.TLBMisses++
	cpu := &k.M.CPU
	p := k.Cur()
	if p == nil {
		k.Interp.RequestStop()
		return
	}
	k.charge(costTLBRefill)
	vpn := cpu.BadVAddr >> hw.PageShift
	pte, ok := p.pt[vpn]
	write := cpu.Cause == hw.ExcTLBMissS
	if ok && pte.valid && (!write || pte.writable) {
		var perms uint8 = hw.PermValid
		if pte.writable && (pte.dirty || write) {
			if write {
				pte.dirty = true
				p.pt[vpn] = pte
			}
			perms |= hw.PermWrite
		}
		k.M.TLB.WriteRandom(hw.TLBEntry{VPN: vpn, ASID: p.ASID, PFN: pte.frame, Perms: perms})
		cpu.PC = cpu.EPC
		cpu.Mode = hw.ModeUser
		return
	}
	k.charge(costSaveAll + costKernelEntry)
	k.vmFault(cpu.BadVAddr, write)
}

// vmFault is the machine-independent fault path: long, layered, and —
// when the fault turns out to be the application's — ending in a signal.
func (k *Kernel) vmFault(va uint32, write bool) {
	k.Stats.Faults++
	k.charge(costVMFault)
	p := k.Cur()
	if p == nil {
		k.Interp.RequestStop()
		return
	}
	vpn := va >> hw.PageShift
	pte, ok := p.pt[vpn]
	if ok && pte.valid && write && pte.writable {
		// Dirty-bit maintenance inside the kernel: mark and remap.
		pte.dirty = true
		p.pt[vpn] = pte
		k.M.TLB.WriteRandom(hw.TLBEntry{VPN: vpn, ASID: p.ASID, PFN: pte.frame, Perms: hw.PermValid | hw.PermWrite})
		cpu := &k.M.CPU
		cpu.PC = cpu.EPC
		cpu.Mode = hw.ModeUser
		return
	}
	k.deliverSignal(k.M.CPU.Cause, va)
}

// deliverSignal builds a signal frame on the user stack and transfers to
// the handler (or kills the process). The caller has charged the entry.
func (k *Kernel) deliverSignal(cause hw.Exc, va uint32) {
	cpu := &k.M.CPU
	p := k.Cur()
	if p == nil {
		k.Interp.RequestStop()
		return
	}
	k.Stats.Signals++
	p.Signals++
	k.charge(costSigSetup + sigFrameWords + costRestoreAll)
	if p.NativeSig != nil {
		action := p.NativeSig(k, p, cause, va)
		if action == SigKill {
			k.killProc(p, cause)
			return
		}
		// Handler returned: sigreturn path.
		k.charge(costSaveAll + costKernelEntry + costSyscallDemux + costSigReturn + sigFrameWords + costRestoreAll)
		cpu.PC = cpu.EPC
		if action == SigSkip {
			cpu.PC = cpu.EPC + 1
		}
		cpu.Mode = hw.ModeUser
		return
	}
	if vec := p.sigVec[cause&15]; vec != 0 {
		p.sigEPC = cpu.EPC
		cpu.PC = vec
		cpu.Mode = hw.ModeUser
		return
	}
	k.killProc(p, cause)
}

func (k *Kernel) killProc(p *Proc, cause hw.Exc) {
	p.Dead = true
	p.LastFault = cause
	k.Stats.KilledProc++
	if k.cur == p.PID {
		if next := k.nextRunnable(); next != nil && next != p {
			k.contextSwitch(next)
		} else {
			k.Interp.RequestStop()
		}
	}
}

// interrupt: timer slices and network input are kernel business; the
// application is never consulted.
func (k *Kernel) interrupt() {
	cpu := &k.M.CPU
	k.charge(costKernelEntry / 2)
	if cpu.Pending&hw.IRQNIC != 0 {
		cpu.Pending &^= hw.IRQNIC
		k.netInput()
	}
	if cpu.Pending&hw.IRQTimer != 0 {
		cpu.Pending &^= hw.IRQTimer
		if next := k.nextRunnable(); next != nil && next != k.Cur() {
			k.contextSwitch(next)
		}
	}
	cpu.PC = cpu.EPC
	if k.cur != 0 {
		cpu.Mode = hw.ModeUser
	}
}

// Syscall numbers for the VM ABI.
const (
	SysGetpid    = 20
	SysSigreturn = 103
	SysExit      = 1
)

// syscall: the full monolithic crossing for every call, however trivial.
func (k *Kernel) syscall() {
	k.Stats.Syscalls++
	cpu := &k.M.CPU
	p := k.Cur()
	if p == nil {
		k.Interp.RequestStop()
		return
	}
	k.charge(costSaveAll + costKernelEntry + costSyscallDemux)
	switch cpu.Reg(hw.RegV0) {
	case SysGetpid:
		cpu.SetReg(hw.RegV0, uint32(p.PID))
	case SysSigreturn:
		k.charge(costSigReturn + sigFrameWords)
		k.charge(costRestoreAll)
		if cpu.Reg(hw.RegA0) == 1 {
			cpu.PC = p.sigEPC + 1
		} else {
			cpu.PC = p.sigEPC
		}
		cpu.Mode = hw.ModeUser
		return
	case SysExit:
		k.charge(costRestoreAll)
		k.killProc(p, hw.ExcNone)
		return
	default:
		cpu.SetReg(hw.RegV0, ^uint32(0))
	}
	k.charge(costRestoreAll)
	cpu.PC = cpu.EPC + 1
	cpu.Mode = hw.ModeUser
	k.M.Clock.Tick(hw.CostExcReturn)
}

// Getpid is the native-process view of the null system call: the complete
// crossing, no useful work (Table 2's baseline row).
func (k *Kernel) Getpid(p *Proc) PID {
	k.Stats.Syscalls++
	k.charge(costSaveAll + costKernelEntry + costSyscallDemux + costRestoreAll)
	k.M.Clock.Tick(hw.CostExcEntry + hw.CostExcReturn)
	return p.PID
}

// RunRound dispatches one scheduling round of native processes, servicing
// devices first (network input happens in the kernel; applications just
// get buffered data).
func (k *Kernel) RunRound() bool {
	k.M.Timer.Check()
	cpu := &k.M.CPU
	if cpu.Pending&hw.IRQNIC != 0 {
		cpu.Pending &^= hw.IRQNIC
		k.netInput()
	}
	cpu.Pending &^= hw.IRQTimer
	p := k.nextRunnable()
	if p == nil {
		return false
	}
	if p != k.Cur() {
		k.contextSwitch(p)
	}
	if p.NativeRun != nil {
		p.NativeRun(k)
	}
	return true
}

func (k *Kernel) String() string { return fmt.Sprintf("ultrix(%d procs)", len(k.procs)) }
