package ultrix

import (
	"testing"

	"exokernel/internal/asm"
	"exokernel/internal/hw"
	"exokernel/internal/pkt"
	"exokernel/internal/vm"
)

func boot(t *testing.T) (*hw.Machine, *Kernel) {
	t.Helper()
	m := hw.NewMachine(hw.DEC5000)
	return m, New(m)
}

func TestGetpidCostsFullCrossing(t *testing.T) {
	m, k := boot(t)
	p := k.NewProc(nil)
	before := m.Clock.Cycles()
	if got := k.Getpid(p); got != p.PID {
		t.Errorf("Getpid = %d", got)
	}
	// The monolithic crossing must dwarf the Aegis ~20-cycle null call.
	if cost := m.Clock.Cycles() - before; cost < 150 {
		t.Errorf("getpid cost %d cycles; monolithic crossing should be heavyweight", cost)
	}
}

func TestVMSyscallGetpid(t *testing.T) {
	m, k := boot(t)
	code := asm.MustAssemble(`
		addiu v0, zero, 20
		syscall
		addu  s0, v0, zero
		halt
	`)
	p := k.NewProc(code)
	if r := k.Interp.Run(100); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(hw.RegS0) != uint32(p.PID) {
		t.Errorf("getpid via trap = %d", m.CPU.Reg(hw.RegS0))
	}
	if k.Stats.Syscalls != 1 {
		t.Errorf("Syscalls = %d", k.Stats.Syscalls)
	}
}

func TestMapPageAndTLBRefill(t *testing.T) {
	m, k := boot(t)
	code := asm.MustAssemble(`
		lui   t0, 0x1000
		addiu t1, zero, 9
		sw    t1, 0(t0)
		lw    t2, 0(t0)
		halt
	`)
	p := k.NewProc(code)
	if err := k.MapPage(p, 0x1000<<16, true); err != nil {
		t.Fatal(err)
	}
	if err := k.MapPage(p, 0x1000<<16|4, true); err == nil {
		t.Error("unaligned MapPage accepted")
	}
	if r := k.Interp.Run(1000); r != vm.StopHalt {
		t.Fatalf("run = %v (fault %v)", r, p.LastFault)
	}
	if m.CPU.Reg(hw.RegT2) != 9 {
		t.Errorf("t2 = %d", m.CPU.Reg(hw.RegT2))
	}
	if k.Stats.TLBMisses == 0 {
		t.Error("no TLB refills recorded")
	}
}

func TestKernelDirtyBitMaintenance(t *testing.T) {
	_, k := boot(t)
	p := k.NewProc(nil)
	const va = 0x2000_0000
	if err := k.MapPage(p, va, true); err != nil {
		t.Fatal(err)
	}
	if err := k.TouchWrite(p, va); err != nil {
		t.Fatal(err)
	}
	// The kernel tracked the dirty bit internally, but there is no way for
	// the application to ask (the paper's point).
	if _, err := k.DirtyQuery(p, va); err == nil {
		t.Error("DirtyQuery should be unsupported")
	}
}

func TestMprotectAndSignal(t *testing.T) {
	_, k := boot(t)
	p := k.NewProc(nil)
	const va = 0x2000_0000
	if err := k.MapPage(p, va, true); err != nil {
		t.Fatal(err)
	}
	if err := k.TouchWrite(p, va); err != nil {
		t.Fatal(err)
	}
	if err := k.Mprotect(p, []uint32{va}, false); err != nil {
		t.Fatal(err)
	}
	sigs := 0
	p.NativeSig = func(k *Kernel, pr *Proc, cause hw.Exc, fva uint32) SigAction {
		sigs++
		if err := k.Mprotect(pr, []uint32{fva &^ (hw.PageSize - 1)}, true); err != nil {
			return SigKill
		}
		return SigRetry
	}
	if err := k.TouchWrite(p, va); err != nil {
		t.Fatal(err)
	}
	if sigs != 1 {
		t.Errorf("signals = %d", sigs)
	}
	if err := k.Mprotect(p, []uint32{0x7777_0000}, false); err == nil {
		t.Error("mprotect of unmapped page accepted")
	}
}

func TestUnalignedFixedUpInKernel(t *testing.T) {
	m, k := boot(t)
	code := asm.MustAssemble(`
		lw    t0, 1(zero)
		addiu s0, zero, 1
		halt
	`)
	p := k.NewProc(code)
	if r := k.Interp.Run(100); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(hw.RegS0) != 1 {
		t.Error("execution did not continue after kernel fixup")
	}
	if p.Signals != 0 {
		t.Error("unaligned access raised a user-visible signal")
	}
}

func TestLazyFPUEnable(t *testing.T) {
	m, k := boot(t)
	code := asm.MustAssemble(`
		cop1
		cop1
		halt
	`)
	k.NewProc(code)
	before := m.Clock.Cycles()
	if r := k.Interp.Run(100); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if !m.CPU.FPUOn {
		t.Error("FPU not enabled")
	}
	if m.Clock.Cycles()-before < costFPUEnable {
		t.Error("FPU enable cost not charged")
	}
}

func TestVMSignalHandlerAndSigreturn(t *testing.T) {
	m, k := boot(t)
	code, labels, err := asm.AssembleWithLabels(`
		nop
	entry:
		lui  t0, 0x7fff
		add  t1, t0, t0
		addiu s0, zero, 7
		halt
	handler:
		addiu v0, zero, 103
		addiu a0, zero, 1
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProc(code)
	p.SetSignalHandler(hw.ExcOverflow, uint32(labels["handler"]))
	m.CPU.PC = uint32(labels["entry"])
	if r := k.Interp.Run(1000); r != vm.StopHalt {
		t.Fatalf("run = %v", r)
	}
	if m.CPU.Reg(hw.RegS0) != 7 {
		t.Error("did not resume after sigreturn")
	}
	if p.Signals != 1 {
		t.Errorf("Signals = %d", p.Signals)
	}
}

func TestUnhandledSignalKills(t *testing.T) {
	_, k := boot(t)
	code := asm.MustAssemble(`
		lui  t0, 0x7fff
		add  t1, t0, t0
		halt
	`)
	p := k.NewProc(code)
	k.NewProc(nil) // survivor
	if r := k.Interp.Run(100); r == vm.StopHalt {
		t.Fatal("program halted despite unhandled signal")
	}
	if !p.Dead {
		t.Error("proc survived unhandled signal")
	}
	if k.Stats.KilledProc != 1 {
		t.Errorf("KilledProc = %d", k.Stats.KilledProc)
	}
}

func TestPipeWordTransfer(t *testing.T) {
	_, k := boot(t)
	pa := k.NewProc(nil)
	pb := k.NewProc(nil)
	pipe := k.NewPipe()
	pipe.WriteWord(pa, 11)
	pipe.WriteWord(pa, 22)
	if v, ok := pipe.ReadWord(pb); !ok || v != 11 {
		t.Errorf("read = %d, %v", v, ok)
	}
	if v, ok := pipe.ReadWord(pb); !ok || v != 22 {
		t.Errorf("read = %d, %v", v, ok)
	}
	if _, ok := pipe.ReadWord(pb); ok {
		t.Error("empty pipe read succeeded")
	}
}

func TestPipeCostsDwarfExOS(t *testing.T) {
	m, k := boot(t)
	pa := k.NewProc(nil)
	pipe := k.NewPipe()
	before := m.Clock.Cycles()
	pipe.WriteWord(pa, 1)
	pipe.ReadWord(pa)
	if cost := m.Clock.Cycles() - before; cost < 400 {
		t.Errorf("pipe word transfer cost %d cycles; kernel path should be heavyweight", cost)
	}
}

func TestContextSwitchChargesAndSwaps(t *testing.T) {
	m, k := boot(t)
	a := k.NewProc(nil)
	b := k.NewProc(nil)
	m.CPU.SetReg(hw.RegS0, 777)
	before := m.Clock.Cycles()
	k.contextSwitch(b)
	if m.Clock.Cycles()-before < costSaveAll+costCtxSwitch {
		t.Error("context switch undercharged")
	}
	if m.CPU.Reg(hw.RegS0) == 777 {
		t.Error("register file leaked across processes")
	}
	k.contextSwitch(a)
	if m.CPU.Reg(hw.RegS0) != 777 {
		t.Error("register file not restored")
	}
}

func TestRunRoundSchedulesAndServicesNIC(t *testing.T) {
	m, k := boot(t)
	p := k.NewProc(nil)
	sock := k.NewSocket(p, [6]byte{1}, 0x0A000001, 7)
	ran := 0
	p.NativeRun = func(k *Kernel) { ran++ }
	// Hand-deliver a frame while interrupts are masked, then let RunRound
	// find it.
	m.CPU.IntrOn = false
	sock2 := k.NewSocket(p, [6]byte{1}, 0x0A000001, 8)
	_ = sock2
	frame := pkt.Build(pkt.Addr{1}, pkt.Addr{2},
		pkt.Flow{Proto: pkt.ProtoUDP, SrcIP: 0x0A000002, DstIP: 0x0A000001, SrcPort: 9, DstPort: 7},
		[]byte("hi"))
	m.NIC.Deliver(hw.Packet{Data: frame})
	m.CPU.IntrOn = true
	if !k.RunRound() {
		t.Fatal("RunRound found nothing")
	}
	if ran != 1 {
		t.Errorf("proc ran %d times", ran)
	}
	if sock.Delivered != 1 {
		t.Errorf("socket delivered = %d", sock.Delivered)
	}
	if d, _, ok := sock.TryRecv(); !ok || string(d) != "hi" {
		t.Errorf("recv = %q, %v", d, ok)
	}
}

func TestSocketSendCharges(t *testing.T) {
	m, k := boot(t)
	p := k.NewProc(nil)
	sock := k.NewSocket(p, [6]byte{1}, 0x0A000001, 7)
	before := m.Clock.Cycles()
	sock.Sendto([6]byte{2}, 0x0A000002, 9, []byte("data"))
	if m.Clock.Cycles()-before < costUDPOut {
		t.Error("sendto undercharged")
	}
	if m.NIC.TxCount != 1 {
		t.Error("frame not transmitted")
	}
}

func TestWordHelpers(t *testing.T) {
	if GetWord(PutWord(0xDEADBEEF)) != 0xDEADBEEF {
		t.Error("word helpers broken")
	}
	if GetWord([]byte{1}) != 0 {
		t.Error("short payload should decode to 0")
	}
}
