package chaos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestSoakRoundTrip: a small soak serializes to SOAK JSON and parses
// back identically, the trend table covers every window, and the
// deterministic witnesses replay bit-identically under the same config.
func TestSoakRoundTrip(t *testing.T) {
	cfg := SoakConfig{SeedStart: 5, Rounds: 2, EventsPerRound: 120}
	var seen int
	cfg.Progress = func(w SoakWindow) { seen++ }
	rep, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seen != 2 || len(rep.Windows) != 2 {
		t.Fatalf("windows: progress saw %d, report has %d, want 2", seen, len(rep.Windows))
	}
	if rep.Schema != SoakSchema || rep.SchemaVersion != SoakSchemaVersion {
		t.Fatalf("schema tag wrong: %q v%d", rep.Schema, rep.SchemaVersion)
	}
	if rep.Windows[1].Seed != 6 {
		t.Errorf("round 1 seed = %d, want rotated seed 6", rep.Windows[1].Seed)
	}
	if rep.TotalEvents < 2*cfg.EventsPerRound {
		t.Errorf("total events %d < budget %d", rep.TotalEvents, 2*cfg.EventsPerRound)
	}
	if rep.InvariantNS.Count == 0 {
		t.Error("pooled invariant-check histogram is empty")
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSoakJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("SOAK JSON did not round-trip:\n%+v\nvs\n%+v", rep, back)
	}

	table := rep.TrendTable()
	if !strings.Contains(table, "seeds 5..6") || strings.Count(table, "\n") < 4 {
		t.Errorf("trend table malformed:\n%s", table)
	}

	// Same config, fresh soak: the simulated witnesses are identical.
	rep2, err := Soak(SoakConfig{SeedStart: 5, Rounds: 2, EventsPerRound: 120})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Windows {
		a, b := rep.Windows[i], rep2.Windows[i]
		if a.TraceHash != b.TraceHash || a.SimCycles != b.SimCycles ||
			a.FaultEvents != b.FaultEvents || a.Steps != b.Steps {
			t.Errorf("round %d witnesses diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestParseSoakJSONRejectsForeign: the parser refuses other schemas and
// future versions instead of silently mis-diffing them.
func TestParseSoakJSONRejectsForeign(t *testing.T) {
	for _, doc := range []string{
		`{"schema":"aegis-bench","schema_version":1}`,
		`{"schema":"aegis-soak","schema_version":99}`,
		`not json`,
	} {
		if _, err := ParseSoakJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("ParseSoakJSON accepted %q", doc)
		}
	}
}
