// Package chaos is the randomized fault schedule with an invariant gate:
// two simulated machines run live workloads (a TCP transfer, a
// checksummed disk mill, environments allocating and mapping memory)
// while a seeded injector abuses the hardware underneath them and the
// harness abuses the kernel API above them — revocations against
// uncooperative owners, environment kills mid-schedule. After every step
// the kernels' bookkeeping invariants (aegis.CheckInvariants) must hold:
// no leaked frame, no drifted account, no stale translation, ever.
//
// Everything is keyed by one seed. The schedule generator and the fault
// injector both derive from it, the simulation is single-threaded, and
// no wall-clock or map-iteration order leaks into any decision, so a
// failing run is reproduced exactly by its seed — the Report carries the
// full fault log and trace fingerprint as the witness.
package chaos

import (
	"bytes"
	"fmt"
	"time"

	"exokernel/internal/aegis"
	"exokernel/internal/cap"
	"exokernel/internal/ether"
	"exokernel/internal/exos"
	"exokernel/internal/fault"
	"exokernel/internal/fleet"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/metrics"
	"exokernel/internal/pkt"
)

// InvariantProbe is the fleet-bus probe name under which the harness
// records each invariant-check's host-side latency (nanoseconds).
const InvariantProbe = "invariant_check_ns"

// Config parameterizes one chaos run.
type Config struct {
	// Seed keys both the fault injector and the operation schedule.
	Seed uint64
	// TargetFaults stops the schedule once the injector has recorded this
	// many events (default 1000).
	TargetFaults uint64
	// MaxSteps bounds the schedule regardless of fault count (default 20000).
	MaxSteps int
	// Fault overrides the injector rates; zero means aggressive defaults.
	Fault fault.Config

	// Bus, when non-nil, has both machines registered on it (names "A"
	// and "B") along with the run's live gauges — per-class fault counts,
	// step and workload counters — and the invariant-check latency probe,
	// so cmd/exotop (or any observer) can watch the run mid-flight
	// instead of reading a report after the fact. A Bus observes one run;
	// pass a fresh one per Run. Nil means Run keeps a private bus (the
	// report still carries the probe summary).
	Bus *fleet.Bus
	// OnStep, when non-nil, is called after each schedule step passes the
	// invariant gate. Observation only: it must not mutate the world or
	// tick a simulated clock, or seed-replay breaks.
	OnStep func(step int)

	// DisableSpans runs without causal span recorders — the control arm of
	// the "tracing is free" invariant (the run must be cycle-identical).
	DisableSpans bool

	// MinReboots keeps the schedule running (past TargetFaults if needed)
	// until machine C has been power-cycled and recovered at least this
	// many times, and fails the run if the floor is not met.
	MinReboots int
}

// DefaultFaultConfig returns the rates a chaos run uses when none are
// given: every fault class enabled, hot enough that a thousand events
// arrive within a few hundred schedule steps.
func DefaultFaultConfig(seed uint64) fault.Config {
	return fault.Config{
		Seed:            seed,
		NetDropPPM:      80_000,
		NetDupPPM:       30_000,
		NetCorruptPPM:   30_000,
		NetHoldPPM:      30_000,
		DiskReadErrPPM:  60_000,
		DiskWriteErrPPM: 40_000,
		DiskSlowPPM:     60_000,
		DiskCorruptPPM:  30_000,
		DiskSlowCycles:  5_000,
		RxPressurePPM:   40_000,
		RxPressureDepth: 64,
	}
}

// Report is the outcome of a run — the determinism witness (fault log,
// trace fingerprint, final clocks) plus the workload verdicts.
type Report struct {
	Seed  uint64
	Steps int

	// Fault census.
	FaultEvents uint64
	Counts      [fault.NumKinds]uint64
	Events      []fault.Event

	// Kernel-API abuse census.
	EnvsCreated, EnvsKilled        int
	Revocations, Complied, Aborted int

	// Workload verdicts.
	TCPBytesSent, TCPBytesGot int
	TCPIntact                 bool
	DiskWrites, DiskReads     int
	DiskErrs, DiskBadReads    int

	// Crash/reboot census (machine C, the journaled-FS machine; see
	// reboot.go). Reboots counts every power cycle, including crashes that
	// interrupted recovery itself; the mount counters classify what each
	// recovery pass found.
	Reboots          int
	ScheduledCrashes int
	MidIOCrashes     int
	RecoveryCrashes  int
	CrashKept        uint64
	CrashLost        uint64
	FSOps, FSSyncs   uint64
	MountsReplayed   uint64
	MountsRolledBack uint64
	MountsClean      uint64
	AuditViolations  int
	// FaultEventsC/EventsC are machine C's own fail-stop injector log —
	// part of the replay witness, separate from the A/B injector's.
	FaultEventsC uint64
	EventsC      []fault.Event

	// Determinism witness.
	CyclesA, CyclesB, CyclesC             uint64
	TraceTotalA, TraceTotalB, TraceTotalC uint64
	TraceHash                             uint64
	RxOverflowA, RxOverflowB              uint64

	// Causal-tracing census and completeness verdict: every TCP chunk the
	// client submits opens a request span, and the gate demands that the
	// assembled trees are whole — no orphan spans (a child whose parent
	// never made it into the stream) and no span left open — as long as
	// neither ring overwrote history. SpanHash fingerprints the merged
	// span stream; it joins the replay witness.
	SpanTotalA, SpanTotalB            uint64
	SpanDroppedA, SpanDroppedB        uint64
	SpanTraces, SpanOrphans, SpanOpen int
	SpanHash                          uint64

	// InvariantNS summarizes the host-side latency of every
	// aegis.CheckInvariants sweep the gate ran (both machines per check).
	// Host time, so informational — never part of the replay witness.
	InvariantNS metrics.Snapshot
}

// sched is the schedule's own splitmix64 stream — separate from the
// injector's so harness decisions and device decisions never alias.
type sched struct{ s uint64 }

func (r *sched) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *sched) intn(n int) int { return int(r.next() % uint64(n)) }

// chance draws a 1-in-n decision.
func (r *sched) chance(n int) bool { return r.intn(n) == 0 }

// revokePolicy is how a victim environment answers the revocation upcall.
type revokePolicy int

const (
	polLibOS  revokePolicy = iota // ExOS handler: complies when mapped
	polNone                       // no handler installed
	polRefuse                     // handler returns false
	polLie                        // handler claims success, releases nothing
)

// page is one tracked allocation of a victim.
type page struct {
	frame uint32
	guard cap.Capability
	va    uint32 // nonzero if mapped (LibOS victims map through the PT)
}

// victim is one expendable environment under the harness's control.
type victim struct {
	k     *aegis.Kernel
	env   *aegis.Env
	os    *exos.LibOS // nil unless polLibOS
	pol   revokePolicy
	pages []page
	vaSeq uint32
}

const (
	victimMaxPages = 8
	maxEnvsPerSide = 90 // ASIDs are 8-bit; stay far from wraparound
	tcpChunk       = 256
	tcpMaxAhead    = 16 * 1024 // stop sending when this far ahead of receipt
	diskBlocks     = 48
)

// world is the full two-machine chaos setup.
type world struct {
	cfg Config
	rng sched
	inj *fault.Injector

	seg    *ether.Segment
	ma, mb *hw.Machine
	ka, kb *aegis.Kernel

	recA, recB     *ktrace.Recorder
	spansA, spansB *ktrace.SpanRecorder

	// Machine C: the crash-and-reboot arm (reboot.go). kc/osC/fsC are the
	// *current incarnation* — replaced wholesale on every reboot.
	mc            *hw.Machine
	kc            *aegis.Kernel
	recC          *ktrace.Recorder
	spansC        *ktrace.SpanRecorder
	injC          *fault.Injector
	osC           *exos.LibOS
	fsC           *exos.FS
	ackedC, workC map[string][]byte

	// TCP service (never killed): client on A, server on B.
	cli, srv  *exos.TCPConn
	osA, osB  *exos.LibOS
	sent, got []byte

	// Disk service on A: a checksummed reliable device over a kernel
	// extent, with a host-side shadow of every verified write.
	rdev           *exos.ReliableDev
	diskOS         *exos.LibOS
	wFrame, rFrame uint32
	shadow         [diskBlocks][]byte

	victims []*victim
	rep     *Report

	bus     *fleet.Bus
	invHist *metrics.Hist // bus probe: host ns per invariant check
}

// Run executes one chaos schedule and returns its report. A non-nil
// error means a kernel invariant broke (or a workload check failed) —
// the report is still returned, as the witness.
func Run(cfg Config) (*Report, error) {
	if cfg.TargetFaults == 0 {
		cfg.TargetFaults = 1000
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 20000
	}
	if cfg.Fault == (fault.Config{}) {
		cfg.Fault = DefaultFaultConfig(cfg.Seed)
	}

	w, err := setup(cfg)
	if err != nil {
		return nil, err
	}
	rep := w.rep

	for step := 0; step < cfg.MaxSteps &&
		(w.inj.Total() < cfg.TargetFaults || rep.Reboots < cfg.MinReboots); step++ {
		rep.Steps = step + 1
		w.stepTraffic()
		w.stepDisk()
		if err := w.stepFS(); err != nil {
			w.finish()
			return rep, err
		}
		w.stepEnvs()
		if err := w.checkBoth(step); err != nil {
			w.finish()
			return rep, err
		}
		if cfg.OnStep != nil {
			cfg.OnStep(step)
		}
	}

	// Quiesce: injection off, drain the transport, verify the stream.
	if err := w.drain(); err != nil {
		w.finish()
		return rep, err
	}
	if err := w.checkBoth(rep.Steps); err != nil {
		w.finish()
		return rep, err
	}
	w.finish()

	if rep.FaultEvents < cfg.TargetFaults {
		return rep, fmt.Errorf("chaos: schedule exhausted at %d/%d fault events (seed %#x)",
			rep.FaultEvents, cfg.TargetFaults, cfg.Seed)
	}
	if rep.Reboots < cfg.MinReboots {
		return rep, fmt.Errorf("chaos: only %d/%d kill-and-reboot rounds completed (seed %#x)",
			rep.Reboots, cfg.MinReboots, cfg.Seed)
	}
	if !rep.TCPIntact {
		return rep, fmt.Errorf("chaos: TCP stream not intact: got %d of %d bytes (seed %#x)",
			rep.TCPBytesGot, rep.TCPBytesSent, cfg.Seed)
	}
	if rep.DiskBadReads > 0 {
		return rep, fmt.Errorf("chaos: %d disk reads returned wrong data undetected (seed %#x)",
			rep.DiskBadReads, cfg.Seed)
	}
	// Causal completeness: unless a span ring overwrote history, every
	// recorded span must close and every recorded child must find its
	// parent in the merged stream — fault injection may sever a request
	// mid-flight (a dropped frame ends the tree early), but it must never
	// leave a dangling reference.
	if rep.SpanDroppedA == 0 && rep.SpanDroppedB == 0 {
		if rep.SpanOrphans > 0 || rep.SpanOpen > 0 {
			return rep, fmt.Errorf("chaos: causal record broken: %d orphan, %d open spans across %d traces (seed %#x)",
				rep.SpanOrphans, rep.SpanOpen, rep.SpanTraces, cfg.Seed)
		}
	}
	return rep, nil
}

func setup(cfg Config) (*world, error) {
	w := &world{cfg: cfg, rng: sched{s: cfg.Seed ^ 0xC4A05}, rep: &Report{Seed: cfg.Seed}}
	w.inj = fault.New(cfg.Fault)
	w.seg = ether.NewSegment()
	w.ma = hw.NewMachine(hw.DEC5000)
	w.mb = hw.NewMachine(hw.DEC5000)
	w.ka = aegis.New(w.ma)
	w.kb = aegis.New(w.mb)
	w.seg.Attach(w.ma)
	w.seg.Attach(w.mb)

	// Flight recorders on both kernels; injected faults interleave into
	// machine A's stream (the injector is shared; the choice is fixed, so
	// it is as deterministic as everything else).
	w.recA, w.recB = ktrace.New(4096), ktrace.New(4096)
	w.ka.SetTracer(w.recA)
	w.kb.SetTracer(w.recB)
	w.inj.Observe = func(e fault.Event) {
		w.recA.Emit(w.ma.Clock.Cycles(), ktrace.KindFaultInject, 0, uint64(e.Kind), e.Arg, 0)
	}

	// Causal span recorders, sized so no default-length run wraps (the
	// completeness gate only fires when nothing was overwritten). Span
	// collection is pure observation: the control arm with DisableSpans
	// set must land on identical clocks and the identical fault log.
	if !cfg.DisableSpans {
		w.spansA = ktrace.NewSpans(1<<17, cfg.Seed^0x51A)
		w.spansB = ktrace.NewSpans(1<<17, cfg.Seed^0x51B)
		w.ka.SetSpans(w.spansA)
		w.kb.SetSpans(w.spansB)
	}

	// Wire the injector under every device.
	w.seg.Fault = w.inj
	w.ma.Disk.Fault = w.inj
	w.mb.Disk.Fault = w.inj
	w.ma.NIC.Fault = w.inj
	w.mb.NIC.Fault = w.inj

	// Machine C: the crash-and-reboot arm, with its own fail-stop
	// injector (reboot.go).
	if err := w.setupC(); err != nil {
		return nil, err
	}

	// Fleet bus: both machines, the run's live gauges, and the
	// invariant-check latency probe. The per-step counters used to exist
	// only in the final report; through the bus they are observable while
	// the schedule is still running.
	w.bus = cfg.Bus
	if w.bus == nil {
		w.bus = fleet.NewBus()
	}
	w.bus.Register("A", w.ma, w.ka, w.recA)
	w.bus.Register("B", w.mb, w.kb, w.recB)
	w.bus.Register("C", w.mc, w.kc, w.recC)
	if w.spansA != nil {
		w.bus.AttachSpans("A", w.spansA)
		w.bus.AttachSpans("B", w.spansB)
		w.bus.AttachSpans("C", w.spansC)
	}
	w.invHist = w.bus.Probe(InvariantProbe)
	w.bus.AddGauge("steps", func() uint64 { return uint64(w.rep.Steps) })
	w.bus.AddGauge("fault_events", w.inj.Total)
	for k := 0; k < fault.NumKinds; k++ {
		k := k
		w.bus.AddGauge("faults/"+fault.Kind(k).String(), func() uint64 { return w.inj.Counts[k] })
	}
	w.bus.AddGauge("envs_created", func() uint64 { return uint64(w.rep.EnvsCreated) })
	w.bus.AddGauge("envs_killed", func() uint64 { return uint64(w.rep.EnvsKilled) })
	w.bus.AddGauge("revocations", func() uint64 { return uint64(w.rep.Revocations) })
	w.bus.AddGauge("tcp_sent_bytes", func() uint64 { return uint64(len(w.sent)) })
	w.bus.AddGauge("tcp_recv_bytes", func() uint64 { return uint64(len(w.got)) })
	w.bus.AddGauge("disk_writes", func() uint64 { return uint64(w.rep.DiskWrites) })
	w.bus.AddGauge("disk_reads", func() uint64 { return uint64(w.rep.DiskReads) })
	w.bus.AddGauge("disk_errs", func() uint64 { return uint64(w.rep.DiskErrs) })
	w.bus.AddGauge("reboots", func() uint64 { return uint64(w.rep.Reboots) })
	w.bus.AddGauge("fs_syncs", func() uint64 { return w.rep.FSSyncs })

	// TCP service pair.
	macA := pkt.Addr{0x02, 0, 0, 0, 0, 0xA}
	macB := pkt.Addr{0x02, 0, 0, 0, 0, 0xB}
	na := exos.NewNet(w.ka, macA, 0x0A000001)
	nb := exos.NewNet(w.kb, macB, 0x0A000002)
	osA, err := exos.Boot(w.ka)
	if err != nil {
		return nil, err
	}
	osB, err := exos.Boot(w.kb)
	if err != nil {
		return nil, err
	}
	w.osA, w.osB = osA, osB
	if w.srv, err = exos.ListenTCP(nb, osB, 80); err != nil {
		return nil, err
	}
	if w.cli, err = exos.DialTCP(na, osA, 30000, macB, 0x0A000002, 80); err != nil {
		return nil, err
	}

	// Disk service on A.
	w.diskOS, err = exos.Boot(w.ka)
	if err != nil {
		return nil, err
	}
	dev, err := exos.NewAegisDev(w.diskOS, diskBlocks)
	if err != nil {
		return nil, err
	}
	wf, wg, err := w.ka.AllocPage(w.diskOS.Env, aegis.AnyFrame)
	if err != nil {
		return nil, err
	}
	rf, rg, err := w.ka.AllocPage(w.diskOS.Env, aegis.AnyFrame)
	if err != nil {
		return nil, err
	}
	dev.RegisterFrame(wf, wg)
	dev.RegisterFrame(rf, rg)
	w.wFrame, w.rFrame = wf, rf
	w.rdev = exos.NewReliableDev(dev, w.ma.Phys, w.ma.Clock)

	// Seed victims on both machines.
	for i := 0; i < 6; i++ {
		if err := w.spawnVictim(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// stepTraffic advances the TCP workload one round under fire.
func (w *world) stepTraffic() {
	if len(w.sent)-len(w.got) < tcpMaxAhead && w.rng.chance(2) {
		chunk := make([]byte, tcpChunk)
		for i := range chunk {
			chunk[i] = byte(w.rng.next())
		}
		// Each submitted chunk is one causally-traced request: the root
		// span covers the submit, and the per-segment contexts carry it
		// through every (re)transmission to the server's recv spans. Send
		// fails until the handshake completes (which itself runs under
		// fire); only bytes the transport accepted are owed back.
		req := w.osA.BeginRequest(uint64(len(w.sent)))
		if w.cli.Send(chunk) == nil {
			w.sent = append(w.sent, chunk...)
		}
		w.osA.EndRequest(req)
	}
	w.cli.Process()
	w.srv.Process()
	w.got = append(w.got, w.srv.Recv()...)
	w.ma.Clock.Tick(2000)
	w.mb.Clock.Tick(2000)
	w.seg.Sync()
}

// stepDisk runs the disk mill: a verified write, or a read-back checked
// against the host shadow. A read may fail (injected error, or corruption
// the checksum caught) — that is recovery working; what it may never do
// is succeed with wrong bytes.
func (w *world) stepDisk() {
	if !w.rng.chance(2) {
		return
	}
	b := uint32(w.rng.intn(diskBlocks))
	if w.shadow[b] == nil || w.rng.chance(3) { // write
		pg := w.ma.Phys.Page(w.wFrame)
		for i := range pg {
			pg[i] = byte(w.rng.next())
		}
		w.rep.DiskWrites++
		if err := w.rdev.WriteBlock(b, w.wFrame); err != nil {
			w.rep.DiskErrs++
			// Failed writes leave the shadow stale; forget the block
			// rather than compare against an unknown platter state.
			w.shadow[b] = nil
			return
		}
		w.shadow[b] = append([]byte(nil), pg...)
		return
	}
	w.rep.DiskReads++
	if err := w.rdev.ReadBlock(b, w.rFrame); err != nil {
		w.rep.DiskErrs++
		return
	}
	if !bytes.Equal(w.ma.Phys.Page(w.rFrame), w.shadow[b]) {
		w.rep.DiskBadReads++
	}
}

// stepEnvs abuses the kernel resource API on the victim pool.
func (w *world) stepEnvs() {
	if len(w.victims) > 0 {
		v := w.victims[w.rng.intn(len(w.victims))]
		switch w.rng.intn(4) {
		case 0:
			w.victimAlloc(v)
		case 1:
			w.victimFree(v)
		case 2:
			w.victimRevoke(v)
		case 3:
			if w.rng.chance(5) {
				w.killVictim(v)
			}
		}
	}
	if w.rng.chance(8) {
		_ = w.spawnVictim()
	}
}

func (w *world) spawnVictim() error {
	if w.rep.EnvsCreated >= 2*maxEnvsPerSide {
		return nil
	}
	k := w.ka
	if w.rng.chance(2) {
		k = w.kb
	}
	pol := revokePolicy(w.rng.intn(4))
	v := &victim{k: k, pol: pol}
	if pol == polLibOS {
		os, err := exos.Boot(k)
		if err != nil {
			return err
		}
		v.os, v.env = os, os.Env
	} else {
		env, err := k.NewEnv(nil)
		if err != nil {
			return err
		}
		v.env = env
		switch pol {
		case polRefuse:
			env.NativeRevoke = func(*aegis.Kernel, uint32) bool { return false }
		case polLie:
			env.NativeRevoke = func(*aegis.Kernel, uint32) bool { return true }
		}
	}
	w.victims = append(w.victims, v)
	w.rep.EnvsCreated++
	return nil
}

func (w *world) victimAlloc(v *victim) {
	if len(v.pages) >= victimMaxPages {
		return
	}
	if v.os != nil {
		va := (uint32(v.vaSeq) + 0x40) << hw.PageShift
		v.vaSeq++
		frame, err := v.os.AllocAndMap(va)
		if err != nil {
			return
		}
		v.pages = append(v.pages, page{frame: frame, va: va})
		return
	}
	frame, guard, err := v.k.AllocPage(v.env, aegis.AnyFrame)
	if err != nil {
		return
	}
	v.pages = append(v.pages, page{frame: frame, guard: guard})
}

func (w *world) victimFree(v *victim) {
	if len(v.pages) == 0 {
		return
	}
	i := w.rng.intn(len(v.pages))
	p := v.pages[i]
	if v.os != nil {
		pte := v.os.Unmap(p.va)
		_ = v.k.DeallocPage(p.frame, pte.Guard)
	} else {
		_ = v.k.DeallocPage(p.frame, p.guard)
	}
	v.pages = append(v.pages[:i], v.pages[i+1:]...)
}

// victimRevoke is the kernel-initiated path: every revocation must
// resolve to complied or aborted, and the page is gone either way.
func (w *world) victimRevoke(v *victim) {
	if len(v.pages) == 0 {
		return
	}
	i := w.rng.intn(len(v.pages))
	p := v.pages[i]
	out, _ := v.k.RevokePage(p.frame)
	w.rep.Revocations++
	switch out {
	case aegis.RevokeComplied:
		w.rep.Complied++
	case aegis.RevokeAborted:
		w.rep.Aborted++
	}
	if v.os != nil && out == aegis.RevokeAborted {
		// The ExOS handler only clears its PT entry when it complies;
		// after a forced abort the harness clears the stale entry the
		// way a real library OS would on seeing its repossession vector.
		v.os.PT.Set(p.va, exos.PTE{})
	}
	v.pages = append(v.pages[:i], v.pages[i+1:]...)
}

func (w *world) killVictim(v *victim) {
	w.inj.Note(fault.EnvKill, uint64(v.env.ID))
	v.k.DestroyEnv(v.env)
	w.rep.EnvsKilled++
	for i, o := range w.victims {
		if o == v {
			w.victims = append(w.victims[:i], w.victims[i+1:]...)
			break
		}
	}
}

// checkBoth runs the kernel invariant gate on both machines, recording
// the sweep's host-side latency on the bus probe. The timing is pure
// observation (host clock, not simulated), so it cannot perturb the
// schedule or the replay witness — but its trend over a long soak is the
// early warning that the audits stopped scaling.
func (w *world) checkBoth(step int) error {
	start := time.Now()
	errA := w.ka.CheckInvariants()
	errB := w.kb.CheckInvariants()
	errC := w.kc.CheckInvariants()
	w.invHist.Record(uint64(time.Since(start)))
	if errA != nil {
		return fmt.Errorf("chaos: machine A, step %d, seed %#x: %w", step, w.cfg.Seed, errA)
	}
	if errB != nil {
		return fmt.Errorf("chaos: machine B, step %d, seed %#x: %w", step, w.cfg.Seed, errB)
	}
	if errC != nil {
		return fmt.Errorf("chaos: machine C, step %d, seed %#x: %w", step, w.cfg.Seed, errC)
	}
	return nil
}

// drain turns injection off and pumps the transport until every sent
// byte arrived (bounded; the retransmission backoff caps the wait).
func (w *world) drain() error {
	w.inj.SetEnabled(false)
	for round := 0; round < 4000 && len(w.got) < len(w.sent); round++ {
		w.cli.Process()
		w.srv.Process()
		w.got = append(w.got, w.srv.Recv()...)
		w.ma.Clock.Tick(50_000)
		w.mb.Clock.Tick(50_000)
		w.seg.Sync()
	}
	return nil
}

// finish freezes the report.
func (w *world) finish() {
	r := w.rep
	r.FaultEvents = w.inj.Total()
	r.Counts = w.inj.Counts
	r.Events = append([]fault.Event(nil), w.inj.Log...)
	r.TCPBytesSent, r.TCPBytesGot = len(w.sent), len(w.got)
	r.TCPIntact = bytes.Equal(w.sent, w.got)
	r.CyclesA, r.CyclesB = w.ma.Clock.Cycles(), w.mb.Clock.Cycles()
	r.CyclesC = w.mc.Clock.Cycles()
	r.TraceTotalA, r.TraceTotalB = w.recA.Total(), w.recB.Total()
	r.TraceTotalC = w.recC.Total()
	r.TraceHash = traceHash(w.recA, w.recB, w.recC)
	r.FaultEventsC = w.injC.Total()
	r.EventsC = append([]fault.Event(nil), w.injC.Log...)
	r.RxOverflowA = w.ka.GlobalStats().RxOverflow
	r.RxOverflowB = w.kb.GlobalStats().RxOverflow
	r.InvariantNS = w.invHist.Snapshot()
	if w.spansA != nil {
		r.SpanTotalA, r.SpanTotalB = w.spansA.Total(), w.spansB.Total()
		r.SpanDroppedA, r.SpanDroppedB = w.spansA.Dropped(), w.spansB.Dropped()
		merged := w.bus.MergedSpans()
		for _, tr := range fleet.AssembleTraces(merged) {
			r.SpanTraces++
			r.SpanOrphans += len(tr.Orphans)
			r.SpanOpen += tr.Open
		}
		r.SpanHash = spanHash(merged)
	}
}

// spanHash fingerprints the merged span stream (every field of every
// span, machine tag included) — the "identical causal record" witness.
func spanHash(spans []ktrace.SourcedSpan) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xFF)) * 1099511628211
			v >>= 8
		}
	}
	for _, s := range spans {
		for i := 0; i < len(s.Machine); i++ {
			h = (h ^ uint64(s.Machine[i])) * 1099511628211
		}
		mix(uint64(s.Trace))
		mix(uint64(s.ID))
		mix(uint64(s.Parent))
		mix(uint64(s.Env))
		mix(uint64(s.Kind))
		mix(s.Start)
		mix(s.End)
		mix(s.Arg)
	}
	return h
}

// traceHash fingerprints both kernels' event windows (FNV-1a over every
// field) — the "identical ktrace sequence" witness without shipping the
// full buffers.
func traceHash(recs ...*ktrace.Recorder) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xFF)) * 1099511628211
			v >>= 8
		}
	}
	for _, rec := range recs {
		for _, e := range rec.Events() {
			mix(e.Cycle)
			mix(uint64(e.Kind))
			mix(uint64(e.Env))
			mix(e.Arg0)
			mix(e.Arg1)
			mix(e.Arg2)
		}
	}
	return h
}
