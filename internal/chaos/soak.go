package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"exokernel/internal/fleet"
	"exokernel/internal/metrics"
)

// The soak gate: a long-horizon chaos driver. One soak is R rounds of
// the two-machine chaos schedule, each round a fresh world under a
// rotating seed (SeedStart, SeedStart+1, ...), each required to pass the
// full invariant gate. What the gate *trends* — rather than passes or
// fails — is scale: invariant-check latency, fault events per host
// second, and host wall time per 10⁵ events, window by window. A scale
// regression in the kernel's audits or hot paths shows up as a drifting
// trend long before it becomes a timeout in someone's CI.
//
// The output is versioned SOAK JSON (schema below), the soak sibling of
// BENCH JSON: deterministic fields (seeds, fault counts, sim cycles,
// trace hashes) replay bit-identically; host-time fields are the
// informational trend. `make soak` runs the 10⁶-event configuration;
// scripts/check.sh runs a 10⁴-event smoke; SOAK_baseline.json is the
// committed first trend to diff against.

// SoakSchema discriminates SOAK JSON files from other JSON.
const SoakSchema = "aegis-soak"

// SoakSchemaVersion is bumped on any incompatible schema change.
const SoakSchemaVersion = 1

// SoakConfig parameterizes one soak.
type SoakConfig struct {
	// SeedStart seeds round 0; round i uses SeedStart + i.
	SeedStart uint64
	// Rounds is the number of chaos runs (default 4).
	Rounds int
	// EventsPerRound is each round's fault-event target (default 2500).
	// Rounds × EventsPerRound is the soak's total event budget.
	EventsPerRound uint64
	// Progress, when non-nil, sees each window as it completes.
	Progress func(SoakWindow)
	// OnBus, when non-nil, sees each round's fleet bus before the round
	// runs — cmd/exotop hooks live rendering here.
	OnBus func(round int, bus *fleet.Bus)
}

// SoakWindow is one round's measurements: the deterministic witness
// (seed, events, steps, cycles, trace hash) plus the host-side trend
// fields.
type SoakWindow struct {
	Round       int    `json:"round"`
	Seed        uint64 `json:"seed"`
	FaultEvents uint64 `json:"fault_events"`
	Steps       int    `json:"steps"`
	Reboots     int    `json:"reboots"`    // machine C kill-and-reboot rounds
	SimCycles   uint64 `json:"sim_cycles"` // all machines' clocks, summed
	TraceEvents uint64 `json:"trace_events"`
	TraceHash   string `json:"trace_hash"` // replay witness, hex

	WallNS        int64   `json:"wall_ns"`
	EventsPerSec  float64 `json:"events_per_sec"`
	WallNSPer100K float64 `json:"wall_ns_per_100k_events"`

	InvariantNS metrics.Snapshot `json:"invariant_ns"`
}

// SoakReport is the SOAK JSON document.
type SoakReport struct {
	Schema         string `json:"schema"`
	SchemaVersion  int    `json:"schema_version"`
	SeedStart      uint64 `json:"seed_start"`
	Rounds         int    `json:"rounds"`
	EventsPerRound uint64 `json:"events_per_round"`

	TotalEvents   uint64  `json:"total_events"`
	TotalSteps    int     `json:"total_steps"`
	TotalWallNS   int64   `json:"total_wall_ns"`
	EventsPerSec  float64 `json:"events_per_sec"`
	WallNSPer100K float64 `json:"wall_ns_per_100k_events"`

	// InvariantNS pools every round's invariant-check latency histogram
	// (bucket merge, not snapshot averaging).
	InvariantNS metrics.Snapshot `json:"invariant_ns"`

	Windows []SoakWindow `json:"windows"`
}

// Soak runs the configured rounds. A non-nil error means some round
// broke an invariant or a workload check; the report still carries every
// completed window (and the failing round's seed is in the error).
func Soak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if cfg.EventsPerRound == 0 {
		cfg.EventsPerRound = 2500
	}
	rep := &SoakReport{
		Schema:         SoakSchema,
		SchemaVersion:  SoakSchemaVersion,
		SeedStart:      cfg.SeedStart,
		Rounds:         cfg.Rounds,
		EventsPerRound: cfg.EventsPerRound,
	}
	var pooled metrics.Hist
	for round := 0; round < cfg.Rounds; round++ {
		seed := cfg.SeedStart + uint64(round)
		bus := fleet.NewBus()
		if cfg.OnBus != nil {
			cfg.OnBus(round, bus)
		}
		// The default step bound is sized for the default event target;
		// scale it with the per-round budget (the schedule injects a
		// fraction of a fault per step).
		maxSteps := 3*int(cfg.EventsPerRound) + 20000
		start := time.Now()
		run, err := Run(Config{Seed: seed, TargetFaults: cfg.EventsPerRound, MaxSteps: maxSteps, Bus: bus})
		wall := time.Since(start)
		if err != nil {
			return rep, fmt.Errorf("soak: round %d: %w", round, err)
		}
		w := SoakWindow{
			Round:       round,
			Seed:        seed,
			FaultEvents: run.FaultEvents,
			Steps:       run.Steps,
			Reboots:     run.Reboots,
			SimCycles:   run.CyclesA + run.CyclesB + run.CyclesC,
			TraceEvents: run.TraceTotalA + run.TraceTotalB + run.TraceTotalC,
			TraceHash:   fmt.Sprintf("%016x", run.TraceHash),
			WallNS:      wall.Nanoseconds(),
			InvariantNS: run.InvariantNS,
		}
		if s := wall.Seconds(); s > 0 {
			w.EventsPerSec = float64(run.FaultEvents) / s
		}
		if run.FaultEvents > 0 {
			w.WallNSPer100K = float64(wall.Nanoseconds()) / (float64(run.FaultEvents) / 1e5)
		}
		pooled.Merge(bus.Probe(InvariantProbe))
		rep.Windows = append(rep.Windows, w)
		rep.TotalEvents += w.FaultEvents
		rep.TotalSteps += w.Steps
		rep.TotalWallNS += w.WallNS
		if cfg.Progress != nil {
			cfg.Progress(w)
		}
	}
	if s := float64(rep.TotalWallNS) / 1e9; s > 0 {
		rep.EventsPerSec = float64(rep.TotalEvents) / s
	}
	if rep.TotalEvents > 0 {
		rep.WallNSPer100K = float64(rep.TotalWallNS) / (float64(rep.TotalEvents) / 1e5)
	}
	rep.InvariantNS = pooled.Snapshot()
	return rep, nil
}

// WriteJSON writes the report as indented SOAK JSON.
func (r *SoakReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseSoakJSON reads a SOAK JSON document back (for diffing against a
// committed baseline).
func ParseSoakJSON(rd io.Reader) (*SoakReport, error) {
	var r SoakReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	if r.Schema != SoakSchema {
		return nil, fmt.Errorf("soak: schema %q, want %q", r.Schema, SoakSchema)
	}
	if r.SchemaVersion != SoakSchemaVersion {
		return nil, fmt.Errorf("soak: schema version %d, want %d", r.SchemaVersion, SoakSchemaVersion)
	}
	return &r, nil
}

// TrendTable renders the window-by-window trend as aligned text — the
// human read of the SOAK JSON, one row per round.
func (r *SoakReport) TrendTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soak: %d rounds x %d events, seeds %d..%d\n",
		r.Rounds, r.EventsPerRound, r.SeedStart, r.SeedStart+uint64(r.Rounds)-1)
	b.WriteString("round  seed       events   steps  reboots   ev/sec   wall_ms/100k   inv_p50_ns  inv_p99_ns\n")
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "%5d  %-9d %7d  %6d  %7d  %7.0f  %13.1f  %11d  %10d\n",
			w.Round, w.Seed, w.FaultEvents, w.Steps, w.Reboots, w.EventsPerSec,
			w.WallNSPer100K/1e6, w.InvariantNS.P50, w.InvariantNS.P99)
	}
	fmt.Fprintf(&b, "total  %d events, %d steps, %.0f ev/sec, %.1f wall_ms/100k, invariant p50=%dns p99=%dns max=%dns\n",
		r.TotalEvents, r.TotalSteps, r.EventsPerSec, r.WallNSPer100K/1e6,
		r.InvariantNS.P50, r.InvariantNS.P99, r.InvariantNS.Max)
	return b.String()
}
