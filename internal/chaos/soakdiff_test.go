package chaos

import (
	"strings"
	"testing"

	"exokernel/internal/metrics"
)

// soakFixture builds a minimal comparable SOAK report.
func soakFixture() *SoakReport {
	return &SoakReport{
		Schema: SoakSchema, SchemaVersion: SoakSchemaVersion,
		SeedStart: 1, Rounds: 2, EventsPerRound: 100,
		TotalEvents: 200, EventsPerSec: 1000, WallNSPer100K: 5e8,
		InvariantNS: metrics.Snapshot{Count: 10, P50: 20000, P99: 60000, Max: 90000},
		Windows: []SoakWindow{
			{Round: 0, Seed: 1, FaultEvents: 100, Steps: 500, SimCycles: 1 << 20, TraceHash: "00aa"},
			{Round: 1, Seed: 2, FaultEvents: 100, Steps: 520, SimCycles: 1 << 21, TraceHash: "00bb"},
		},
	}
}

func TestSoakDiffSelfPasses(t *testing.T) {
	a := soakFixture()
	r := DiffSoak(a, a, 0.3)
	if !r.OK() {
		t.Fatalf("self-diff failed:\n%s", r.Render())
	}
	if r.Compared != 4 || !r.Comparable {
		t.Fatalf("compared=%d comparable=%v", r.Compared, r.Comparable)
	}
	if !strings.Contains(r.Render(), "gate: PASS") {
		t.Fatalf("render missing PASS:\n%s", r.Render())
	}
}

func TestSoakDiffTrendGate(t *testing.T) {
	old, cur := soakFixture(), soakFixture()
	cur.EventsPerSec = old.EventsPerSec * 0.5     // throughput halved: worse
	cur.WallNSPer100K = old.WallNSPer100K * 2     // wall cost doubled: worse
	cur.InvariantNS.P50 = old.InvariantNS.P50 / 2 // got faster: improvement
	r := DiffSoak(old, cur, 0.3)
	if r.OK() {
		t.Fatalf("gate passed a halved throughput:\n%s", r.Render())
	}
	if len(r.Regressions) != 2 {
		t.Fatalf("regressions = %d, want 2:\n%s", len(r.Regressions), r.Render())
	}
	if len(r.Improvements) != 1 {
		t.Fatalf("improvements = %d, want 1:\n%s", len(r.Improvements), r.Render())
	}
	// Within tolerance: no regression.
	mild := soakFixture()
	mild.EventsPerSec = old.EventsPerSec * 0.9
	if r := DiffSoak(old, mild, 0.3); !r.OK() {
		t.Fatalf("10%% drift failed a 30%% gate:\n%s", r.Render())
	}
}

func TestSoakDiffWitnessGate(t *testing.T) {
	old, cur := soakFixture(), soakFixture()
	cur.Windows[1].TraceHash = "00cc"
	cur.Windows[1].SimCycles++
	r := DiffSoak(old, cur, 0.3)
	if r.OK() {
		t.Fatalf("witness mismatch passed the gate:\n%s", r.Render())
	}
	if len(r.WitnessDiffs) != 2 {
		t.Fatalf("witness diffs = %d, want 2:\n%s", len(r.WitnessDiffs), r.Render())
	}
	// Different configurations: the witness comparison is skipped, trends
	// still gate.
	foreign := soakFixture()
	foreign.SeedStart = 99
	foreign.Windows[0].TraceHash = "ffff"
	r = DiffSoak(old, foreign, 0.3)
	if !r.Comparable {
		// expected
	} else {
		t.Fatalf("different configs marked comparable")
	}
	if len(r.WitnessDiffs) != 0 || !r.OK() {
		t.Fatalf("incomparable files produced witness diffs:\n%s", r.Render())
	}
}
