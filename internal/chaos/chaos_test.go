package chaos

import (
	"testing"

	"exokernel/internal/fault"
)

// A moderate run: several hundred faults across every class, invariants
// after every step, stream intact at the end. This is the same gate
// `make chaos` runs at full size.
func TestChaosRun(t *testing.T) {
	rep, err := Run(Config{Seed: 1, TargetFaults: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultEvents < 400 {
		t.Errorf("only %d fault events", rep.FaultEvents)
	}
	// Coverage must span the three fault families.
	wire := rep.Counts[fault.NetDrop] + rep.Counts[fault.NetDup] +
		rep.Counts[fault.NetCorrupt] + rep.Counts[fault.NetHold]
	disk := rep.Counts[fault.DiskReadErr] + rep.Counts[fault.DiskWriteErr] +
		rep.Counts[fault.DiskSlow] + rep.Counts[fault.DiskCorrupt]
	if wire == 0 || disk == 0 || rep.Counts[fault.EnvKill] == 0 {
		t.Errorf("fault families not all exercised: wire=%d disk=%d kills=%d",
			wire, disk, rep.Counts[fault.EnvKill])
	}
	if !rep.TCPIntact {
		t.Errorf("TCP stream damaged: %d of %d bytes", rep.TCPBytesGot, rep.TCPBytesSent)
	}
	if rep.DiskBadReads != 0 {
		t.Errorf("%d undetected bad disk reads", rep.DiskBadReads)
	}
	// The abort protocol was actually provoked (uncooperative victims).
	if rep.Revocations == 0 || rep.Aborted == 0 {
		t.Errorf("revocation not exercised: %d revocations, %d aborts",
			rep.Revocations, rep.Aborted)
	}
	if rep.Revocations != rep.Complied+rep.Aborted {
		t.Errorf("unresolved revocations: %d != %d + %d",
			rep.Revocations, rep.Complied, rep.Aborted)
	}
	if rep.EnvsKilled == 0 {
		t.Error("no environments were killed")
	}
}

// The reproducibility gate: the same seed must yield the identical fault
// log, trace fingerprint, and final simulated clocks.
func TestChaosDeterminism(t *testing.T) {
	cfg := Config{Seed: 0xD00D, TargetFaults: 250}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("fault logs diverged: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("fault log diverged at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if a.TraceHash != b.TraceHash || a.TraceTotalA != b.TraceTotalA || a.TraceTotalB != b.TraceTotalB {
		t.Errorf("ktrace diverged: hash %#x/%#x totals %d+%d vs %d+%d",
			a.TraceHash, b.TraceHash, a.TraceTotalA, a.TraceTotalB, b.TraceTotalA, b.TraceTotalB)
	}
	if a.CyclesA != b.CyclesA || a.CyclesB != b.CyclesB {
		t.Errorf("simulated time diverged: %d/%d vs %d/%d",
			a.CyclesA, a.CyclesB, b.CyclesA, b.CyclesB)
	}
	if a.Steps != b.Steps {
		t.Errorf("step counts diverged: %d vs %d", a.Steps, b.Steps)
	}
}

// Different seeds must explore different schedules (sanity that the seed
// actually steers the run).
func TestChaosSeedsDiffer(t *testing.T) {
	a, err := Run(Config{Seed: 10, TargetFaults: 150})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 11, TargetFaults: 150})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash == b.TraceHash {
		t.Error("different seeds produced identical traces")
	}
}
