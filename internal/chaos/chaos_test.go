package chaos

import (
	"testing"

	"exokernel/internal/fault"
)

// A moderate run: several hundred faults across every class, invariants
// after every step, stream intact at the end. This is the same gate
// `make chaos` runs at full size.
func TestChaosRun(t *testing.T) {
	rep, err := Run(Config{Seed: 1, TargetFaults: 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultEvents < 400 {
		t.Errorf("only %d fault events", rep.FaultEvents)
	}
	// Coverage must span the three fault families.
	wire := rep.Counts[fault.NetDrop] + rep.Counts[fault.NetDup] +
		rep.Counts[fault.NetCorrupt] + rep.Counts[fault.NetHold]
	disk := rep.Counts[fault.DiskReadErr] + rep.Counts[fault.DiskWriteErr] +
		rep.Counts[fault.DiskSlow] + rep.Counts[fault.DiskCorrupt]
	if wire == 0 || disk == 0 || rep.Counts[fault.EnvKill] == 0 {
		t.Errorf("fault families not all exercised: wire=%d disk=%d kills=%d",
			wire, disk, rep.Counts[fault.EnvKill])
	}
	if !rep.TCPIntact {
		t.Errorf("TCP stream damaged: %d of %d bytes", rep.TCPBytesGot, rep.TCPBytesSent)
	}
	if rep.DiskBadReads != 0 {
		t.Errorf("%d undetected bad disk reads", rep.DiskBadReads)
	}
	// The abort protocol was actually provoked (uncooperative victims).
	if rep.Revocations == 0 || rep.Aborted == 0 {
		t.Errorf("revocation not exercised: %d revocations, %d aborts",
			rep.Revocations, rep.Aborted)
	}
	if rep.Revocations != rep.Complied+rep.Aborted {
		t.Errorf("unresolved revocations: %d != %d + %d",
			rep.Revocations, rep.Complied, rep.Aborted)
	}
	if rep.EnvsKilled == 0 {
		t.Error("no environments were killed")
	}
	// The causal record was collected and is whole: requests were traced,
	// nothing wrapped, and Run's own gate already rejected orphans/opens.
	if rep.SpanTotalA == 0 || rep.SpanTotalB == 0 || rep.SpanTraces == 0 {
		t.Errorf("no causal spans recorded: A=%d B=%d traces=%d",
			rep.SpanTotalA, rep.SpanTotalB, rep.SpanTraces)
	}
	if rep.SpanDroppedA != 0 || rep.SpanDroppedB != 0 {
		t.Errorf("span rings wrapped: dropped A=%d B=%d", rep.SpanDroppedA, rep.SpanDroppedB)
	}
	if rep.SpanOrphans != 0 || rep.SpanOpen != 0 {
		t.Errorf("causal record broken: %d orphans, %d open", rep.SpanOrphans, rep.SpanOpen)
	}
}

// The reproducibility gate: the same seed must yield the identical fault
// log, trace fingerprint, and final simulated clocks.
func TestChaosDeterminism(t *testing.T) {
	cfg := Config{Seed: 0xD00D, TargetFaults: 250}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("fault logs diverged: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("fault log diverged at %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	if a.TraceHash != b.TraceHash || a.TraceTotalA != b.TraceTotalA || a.TraceTotalB != b.TraceTotalB {
		t.Errorf("ktrace diverged: hash %#x/%#x totals %d+%d vs %d+%d",
			a.TraceHash, b.TraceHash, a.TraceTotalA, a.TraceTotalB, b.TraceTotalA, b.TraceTotalB)
	}
	if a.CyclesA != b.CyclesA || a.CyclesB != b.CyclesB {
		t.Errorf("simulated time diverged: %d/%d vs %d/%d",
			a.CyclesA, a.CyclesB, b.CyclesA, b.CyclesB)
	}
	if a.Steps != b.Steps {
		t.Errorf("step counts diverged: %d vs %d", a.Steps, b.Steps)
	}
	if a.SpanHash != b.SpanHash || a.SpanTotalA != b.SpanTotalA || a.SpanTotalB != b.SpanTotalB {
		t.Errorf("span record diverged: hash %#x/%#x totals %d+%d vs %d+%d",
			a.SpanHash, b.SpanHash, a.SpanTotalA, a.SpanTotalB, b.SpanTotalA, b.SpanTotalB)
	}
}

// TestSpanCollectionIsFree pins the tentpole invariant under fire: a run
// with causal span recorders attached is cycle-identical — same clocks,
// same fault log, same ktrace fingerprint — to the same seed without
// them. Tracing is observation, never participation, even while the
// injector is corrupting the frames that carry the trace context.
func TestSpanCollectionIsFree(t *testing.T) {
	on, err := Run(Config{Seed: 0xFEE, TargetFaults: 250})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{Seed: 0xFEE, TargetFaults: 250, DisableSpans: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.CyclesA != off.CyclesA || on.CyclesB != off.CyclesB {
		t.Errorf("span collection moved the clocks: on=(%d,%d) off=(%d,%d)",
			on.CyclesA, on.CyclesB, off.CyclesA, off.CyclesB)
	}
	if on.TraceHash != off.TraceHash {
		t.Errorf("span collection changed the ktrace stream: %#x vs %#x",
			on.TraceHash, off.TraceHash)
	}
	if len(on.Events) != len(off.Events) {
		t.Fatalf("fault logs diverged: %d vs %d events", len(on.Events), len(off.Events))
	}
	for i := range on.Events {
		if on.Events[i] != off.Events[i] {
			t.Fatalf("fault log diverged at %d: %v vs %v", i, on.Events[i], off.Events[i])
		}
	}
	if on.SpanTotalA == 0 {
		t.Error("traced run recorded no spans")
	}
	if off.SpanTotalA != 0 || off.SpanHash != 0 {
		t.Error("control arm recorded spans")
	}
}

// Different seeds must explore different schedules (sanity that the seed
// actually steers the run).
func TestChaosSeedsDiffer(t *testing.T) {
	a, err := Run(Config{Seed: 10, TargetFaults: 150})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 11, TargetFaults: 150})
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceHash == b.TraceHash {
		t.Error("different seeds produced identical traces")
	}
}
