package chaos

import (
	"fmt"
	"strings"
)

// The soak-trend gate: compare two SOAK JSON documents the way benchdiff
// compares BENCH JSON. Two kinds of comparison, with very different
// strictness:
//
//   - Determinism witnesses (seeds, fault counts, steps, simulated
//     cycles, trace hashes) are simulated-side facts. When the two files
//     ran the same configuration, these must match bit for bit — any
//     difference means the simulation itself changed, and no tolerance
//     applies.
//   - Trend metrics (events per host second, wall ns per 10⁵ events,
//     invariant-check latency percentiles) are host-side facts. They wear
//     a fractional tolerance, because hosts differ run to run.

// SoakDiffEntry is one trend metric's comparison. Delta is the raw
// fractional change (new-old)/old; Worse normalizes direction (true when
// the change is a degradation, whatever the metric's polarity).
type SoakDiffEntry struct {
	Metric   string
	Old, New float64
	Delta    float64
	Worse    bool
}

func (e SoakDiffEntry) String() string {
	return fmt.Sprintf("%s: %.4g -> %.4g (%+.1f%%)", e.Metric, e.Old, e.New, e.Delta*100)
}

// SoakDiffReport is the outcome of comparing two SOAK files.
type SoakDiffReport struct {
	Threshold  float64 // fractional tolerance on trend metrics
	Comparable bool    // same (seed_start, rounds, events_per_round)
	Compared   int     // trend metrics checked

	// WitnessDiffs are simulated-side mismatches between same-config
	// files; each one fails the gate outright.
	WitnessDiffs []string

	Regressions  []SoakDiffEntry
	Improvements []SoakDiffEntry
}

// OK reports whether the gate passes.
func (r *SoakDiffReport) OK() bool {
	return len(r.Regressions) == 0 && len(r.WitnessDiffs) == 0
}

// Render formats the report for humans.
func (r *SoakDiffReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soakdiff: %d trend metrics compared, threshold %.1f%%\n", r.Compared, r.Threshold*100)
	if !r.Comparable {
		b.WriteString("  note: different soak configurations; determinism witnesses not compared\n")
	}
	for _, d := range r.WitnessDiffs {
		fmt.Fprintf(&b, "  WITNESS     %s\n", d)
	}
	for _, d := range r.Regressions {
		fmt.Fprintf(&b, "  REGRESSION  %s\n", d)
	}
	for _, d := range r.Improvements {
		fmt.Fprintf(&b, "  improvement %s\n", d)
	}
	if r.OK() {
		b.WriteString("  gate: PASS\n")
	} else {
		fmt.Fprintf(&b, "  gate: FAIL (%d witness diffs, %d regressions)\n",
			len(r.WitnessDiffs), len(r.Regressions))
	}
	return b.String()
}

// DiffSoak compares two SOAK reports. threshold is fractional (0.3 =
// 30%) and applies only to the host-side trend metrics; the same file
// diffed against itself always passes with zero deltas.
func DiffSoak(oldR, newR *SoakReport, threshold float64) *SoakDiffReport {
	r := &SoakDiffReport{Threshold: threshold}
	r.Comparable = oldR.SeedStart == newR.SeedStart &&
		oldR.Rounds == newR.Rounds &&
		oldR.EventsPerRound == newR.EventsPerRound

	if r.Comparable {
		if len(oldR.Windows) != len(newR.Windows) {
			r.WitnessDiffs = append(r.WitnessDiffs,
				fmt.Sprintf("window count %d vs %d", len(oldR.Windows), len(newR.Windows)))
		}
		n := len(oldR.Windows)
		if len(newR.Windows) < n {
			n = len(newR.Windows)
		}
		for i := 0; i < n; i++ {
			ow, nw := oldR.Windows[i], newR.Windows[i]
			for _, f := range []struct {
				name     string
				old, new string
			}{
				{"seed", fmt.Sprint(ow.Seed), fmt.Sprint(nw.Seed)},
				{"fault_events", fmt.Sprint(ow.FaultEvents), fmt.Sprint(nw.FaultEvents)},
				{"steps", fmt.Sprint(ow.Steps), fmt.Sprint(nw.Steps)},
				{"reboots", fmt.Sprint(ow.Reboots), fmt.Sprint(nw.Reboots)},
				{"sim_cycles", fmt.Sprint(ow.SimCycles), fmt.Sprint(nw.SimCycles)},
				{"trace_hash", ow.TraceHash, nw.TraceHash},
			} {
				if f.old != f.new {
					r.WitnessDiffs = append(r.WitnessDiffs,
						fmt.Sprintf("window %d %s: %s vs %s", i, f.name, f.old, f.new))
				}
			}
		}
	}

	// Trend metrics: polarity-aware tolerance. higherBetter metrics
	// regress downward; the rest regress upward.
	for _, m := range []struct {
		name         string
		old, new     float64
		higherBetter bool
	}{
		{"events_per_sec", oldR.EventsPerSec, newR.EventsPerSec, true},
		{"wall_ns_per_100k_events", oldR.WallNSPer100K, newR.WallNSPer100K, false},
		{"invariant_p50_ns", float64(oldR.InvariantNS.P50), float64(newR.InvariantNS.P50), false},
		{"invariant_p99_ns", float64(oldR.InvariantNS.P99), float64(newR.InvariantNS.P99), false},
	} {
		if m.old <= 0 {
			continue
		}
		r.Compared++
		delta := (m.new - m.old) / m.old
		e := SoakDiffEntry{Metric: m.name, Old: m.old, New: m.new, Delta: delta}
		worse := delta
		if m.higherBetter {
			worse = -delta
		}
		switch {
		case worse > threshold:
			e.Worse = true
			r.Regressions = append(r.Regressions, e)
		case worse < -threshold:
			r.Improvements = append(r.Improvements, e)
		}
	}
	return r
}
