package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"exokernel/internal/aegis"
	"exokernel/internal/exos"
	"exokernel/internal/fault"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// Machine C: the crash-and-reboot arm of the schedule. A third machine —
// off the ether segment, so its death never perturbs the TCP peers beyond
// what their own retransmission already absorbs — runs a journaled file
// system workload while its injector pulls the power at disk-I/O
// boundaries and the schedule pulls it between operations. Every crash is
// a whole-machine stop: the disk's un-flushed write cache is resolved by
// a seeded coin per block, the machine reboots with memory and kernel
// gone, a *fresh* kernel boots, remounts (running journal recovery), and
// must then pass the structural audit, the two-candidate content model
// (recovered state ≡ last acknowledged Sync, or the interrupted one —
// nothing else), and the kernel invariant sweep, before the workload
// resumes on the survivor.
//
// The fault model for this machine is fail-stop: power failure and latency
// only, no silent media corruption — a journal without redundancy cannot
// recover a platter that lies, and mixing byzantine faults in would turn
// every audit failure into noise. Byzantine disk faults stay on machine
// A's mill, where ReliableDev's checksums are the defense under test.

const (
	cFSBlocks  = 128
	cFSJournal = 34 // 32 slots ≥ the 31-frame cache capacity below
	cFSInodes  = 16
	cFSFrames  = 32 // holds the whole working set: commits happen only in Sync
)

// cNames is the fixed file-name pool of the machine-C workload.
var cNames = [...]string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}

// cFaultConfig is machine C's injector: fail-stop only.
func cFaultConfig(seed uint64) fault.Config {
	return fault.Config{
		Seed:           seed ^ 0xC12A5,
		PowerFailPPM:   1_500,
		DiskSlowPPM:    30_000,
		DiskSlowCycles: 5_000,
	}
}

// setupC builds machine C: hardware, injector, and the first formatted
// mount. Injection starts only after the format is stable — mkfs is not
// part of the crash model.
func (w *world) setupC() error {
	w.mc = hw.NewMachine(hw.DEC5000)
	w.recC = ktrace.New(4096)
	if !w.cfg.DisableSpans {
		w.spansC = ktrace.NewSpans(1<<17, w.cfg.Seed^0x51C)
	}
	w.injC = fault.New(cFaultConfig(w.cfg.Seed))
	w.injC.SetEnabled(false)
	w.mc.Disk.Fault = w.injC
	w.mc.Disk.Power = w.injC
	w.injC.Observe = func(e fault.Event) {
		w.recC.Emit(w.mc.Clock.Cycles(), ktrace.KindFaultInject, 0, uint64(e.Kind), e.Arg, 0)
	}

	w.kc = aegis.New(w.mc)
	w.kc.SetTracer(w.recC)
	if w.spansC != nil {
		w.kc.SetSpans(w.spansC)
	}
	os, err := exos.Boot(w.kc)
	if err != nil {
		return err
	}
	dev, err := exos.NewAegisDev(os, cFSBlocks)
	if err != nil {
		return err
	}
	cache, err := exos.NewFSCache(os, dev, cFSFrames, exos.NewLRU())
	if err != nil {
		return err
	}
	fs, err := exos.FormatJournaled(dev, cache, cFSInodes, cFSJournal)
	if err != nil {
		return err
	}
	w.osC, w.fsC = os, fs
	w.ackedC = map[string][]byte{}
	w.workC = map[string][]byte{}
	w.injC.SetEnabled(true)
	return nil
}

// stepFS advances the machine-C workload one round: maybe a scheduled
// power cut, maybe one file operation followed by a Sync — either of
// which the injector may turn into a mid-I/O crash.
func (w *world) stepFS() error {
	// Scheduled whole-machine power cut, untied to any I/O boundary.
	if w.rng.chance(12) {
		w.rep.ScheduledCrashes++
		w.injC.Note(fault.PowerFail, uint64(w.rep.Reboots))
		w.mc.Disk.PowerOff()
		return w.crashRebootC()
	}
	if !w.rng.chance(2) {
		return nil
	}
	if err := w.fsOp(); err != nil {
		if errors.Is(err, hw.ErrPowerFail) {
			w.rep.MidIOCrashes++
			return w.crashRebootC()
		}
		return fmt.Errorf("chaos: machine C fs op: %w", err)
	}
	w.rep.FSOps++
	if err := w.fsC.Sync(); err != nil {
		if errors.Is(err, hw.ErrPowerFail) {
			w.rep.MidIOCrashes++
			return w.crashRebootC()
		}
		return fmt.Errorf("chaos: machine C sync: %w", err)
	}
	w.rep.FSSyncs++
	w.ackedC = cloneState(w.workC)
	return nil
}

// fsOp performs one random create/overwrite/rename/unlink against the
// journaled FS and mirrors it into the pending model. The model is only
// updated once the whole operation succeeded; a power failure partway
// leaves nothing on disk (operations never write — only Sync does), so
// the recovered state must equal the acknowledged model exactly.
func (w *world) fsOp() error {
	name := cNames[w.rng.intn(len(cNames))]
	_, lookErr := w.fsC.Lookup(name)
	switch {
	case lookErr != nil: // absent: create and fill
		i, err := w.fsC.Create(name)
		if err != nil {
			return err
		}
		data := w.randFileData()
		if err := w.fsC.WriteAt(i, 0, data); err != nil {
			return err
		}
		w.workC[name] = data
	case w.rng.chance(4): // unlink
		if err := w.fsC.Unlink(name); err != nil {
			return err
		}
		delete(w.workC, name)
	case w.rng.chance(3): // rename, possibly replacing the target
		to := cNames[w.rng.intn(len(cNames))]
		if err := w.fsC.Rename(name, to); err != nil {
			return err
		}
		if to != name {
			w.workC[to] = w.workC[name]
			delete(w.workC, name)
		}
	default: // overwrite from offset 0; a longer old tail survives
		i, err := w.fsC.Lookup(name)
		if err != nil {
			return err
		}
		data := w.randFileData()
		if err := w.fsC.WriteAt(i, 0, data); err != nil {
			return err
		}
		if old := w.workC[name]; len(old) > len(data) {
			data = append(data, old[len(data):]...)
		}
		w.workC[name] = data
	}
	return nil
}

// randFileData draws 1..2 blocks of schedule-seeded bytes.
func (w *world) randFileData() []byte {
	n := 1 + w.rng.intn(2*hw.PageSize)
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(w.rng.next())
	}
	return data
}

// crashRebootC is the kill-and-reboot round: resolve the write cache's
// fate, reboot the hardware, boot a fresh kernel, remount (recovery may
// itself crash — that is just another reboot), then gate on the audit,
// the content model, and the invariant sweep before resuming.
func (w *world) crashRebootC() error {
	w.crashC()
	for attempt := 0; ; attempt++ {
		err := w.bootMountC()
		if err == nil {
			break
		}
		if !errors.Is(err, hw.ErrPowerFail) {
			return fmt.Errorf("chaos: machine C remount after reboot %d (seed %#x): %w",
				w.rep.Reboots, w.cfg.Seed, err)
		}
		if attempt >= 16 {
			return fmt.Errorf("chaos: machine C: %d consecutive crashes during recovery (seed %#x)",
				attempt+1, w.cfg.Seed)
		}
		w.rep.RecoveryCrashes++
		w.crashC()
	}

	// Verification reads must not themselves lose power: pause injection
	// (the generator stops, so the seeded sequence resumes unshifted).
	w.injC.SetEnabled(false)
	bad, err := w.fsC.Audit()
	if err != nil {
		return fmt.Errorf("chaos: machine C audit after reboot %d: %w", w.rep.Reboots, err)
	}
	if len(bad) > 0 {
		w.rep.AuditViolations += len(bad)
		return fmt.Errorf("chaos: machine C audit after reboot %d (seed %#x): %d violations, first: %s",
			w.rep.Reboots, w.cfg.Seed, len(bad), bad[0])
	}
	got, err := w.snapshotC()
	if err != nil {
		return fmt.Errorf("chaos: machine C snapshot after reboot %d: %w", w.rep.Reboots, err)
	}
	if !stateEq(got, w.ackedC) && !stateEq(got, w.workC) {
		return fmt.Errorf("chaos: machine C reboot %d (seed %#x): recovered state matches neither the acknowledged nor the interrupted Sync",
			w.rep.Reboots, w.cfg.Seed)
	}
	if err := w.kc.CheckInvariants(); err != nil {
		return fmt.Errorf("chaos: machine C after reboot %d: %w", w.rep.Reboots, err)
	}
	w.injC.SetEnabled(true)

	// The recovered state is the new baseline.
	w.ackedC = got
	w.workC = cloneState(got)
	return nil
}

// crashC power-fails the machine: seeded per-block fate for the cached
// writes, then a whole-machine reboot (memory, TLB, kernel all gone; the
// clock and the stable platter survive).
func (w *world) crashC() {
	w.rep.Reboots++
	kept, lost := w.mc.Disk.Crash(w.rng.next())
	w.rep.CrashKept += uint64(kept)
	w.rep.CrashLost += uint64(lost)
	w.recC.Emit(w.mc.Clock.Cycles(), ktrace.KindPowerFail, 0, uint64(kept), uint64(lost), 0)
	w.mc.Reboot()
	w.recC.Emit(w.mc.Clock.Cycles(), ktrace.KindReboot, 0, uint64(w.rep.Reboots), 0, 0)
}

// bootMountC boots a fresh kernel on the rebooted hardware and remounts
// the file system — the journal recovery pass runs inside Mount. The new
// kernel re-registers on the fleet bus under the same name, so exotop
// keeps one "C" row across incarnations.
func (w *world) bootMountC() error {
	w.kc = aegis.New(w.mc)
	w.kc.SetTracer(w.recC)
	if w.spansC != nil {
		w.kc.SetSpans(w.spansC)
	}
	if w.bus != nil {
		w.bus.Register("C", w.mc, w.kc, w.recC)
		if w.spansC != nil {
			w.bus.AttachSpans("C", w.spansC)
		}
	}
	os, err := exos.Boot(w.kc)
	if err != nil {
		return err
	}
	dev, err := exos.NewAegisDev(os, cFSBlocks) // first-fit: same extent every boot
	if err != nil {
		return err
	}
	cache, err := exos.NewFSCache(os, dev, cFSFrames, exos.NewLRU())
	if err != nil {
		return err
	}
	fs, err := exos.Mount(dev, cache)
	if err != nil {
		return err
	}
	w.osC, w.fsC = os, fs
	if jn := fs.Journal(); jn != nil {
		switch {
		case jn.Replayed > 0:
			w.rep.MountsReplayed++
		case jn.RolledBack > 0:
			w.rep.MountsRolledBack++
		default:
			w.rep.MountsClean++
		}
		w.recC.Emit(w.mc.Clock.Cycles(), ktrace.KindFSRecovery, 0, jn.Replayed, jn.RolledBack, 0)
	}
	return nil
}

// snapshotC reads the whole recovered tree back for the model check.
func (w *world) snapshotC() (map[string][]byte, error) {
	ents, err := w.fsC.List()
	if err != nil {
		return nil, err
	}
	st := make(map[string][]byte, len(ents))
	for _, e := range ents {
		buf := make([]byte, e.Size)
		if n, err := w.fsC.ReadAt(e.Inum, 0, buf); err != nil || uint32(n) != e.Size {
			return nil, fmt.Errorf("read %q: %d bytes, %v", e.Name, n, err)
		}
		st[e.Name] = buf
	}
	return st, nil
}

func cloneState(s map[string][]byte) map[string][]byte {
	c := make(map[string][]byte, len(s))
	for k, v := range s {
		c[k] = v // contents are replaced wholesale, never edited in place
	}
	return c
}

func stateEq(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if !bytes.Equal(v, b[k]) {
			return false
		}
	}
	return true
}
