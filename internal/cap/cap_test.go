package cap

import (
	"testing"
	"testing/quick"
)

func TestMintAndCheck(t *testing.T) {
	a := NewAuthority([]byte("k"))
	c := a.Mint(42, Read|Write)
	if !a.Check(c, Read) || !a.Check(c, Write) || !a.Check(c, Read|Write) {
		t.Error("valid capability rejected")
	}
	if a.Check(c, Grant) {
		t.Error("capability granted a right it does not carry")
	}
}

func TestForgeryRejected(t *testing.T) {
	a := NewAuthority([]byte("k"))
	c := a.Mint(42, Read)
	// Tampered resource.
	forged := c
	forged.Resource = 43
	if a.Check(forged, Read) {
		t.Error("resource-tampered capability accepted")
	}
	// Escalated rights.
	forged = c
	forged.Rights = Read | Write
	if a.Check(forged, Write) {
		t.Error("rights-escalated capability accepted")
	}
	// Zero-value capability.
	if a.Check(Capability{Resource: 42, Rights: Read}, Read) {
		t.Error("unsigned capability accepted")
	}
}

func TestAuthoritiesAreIndependent(t *testing.T) {
	a := NewAuthority([]byte("a"))
	b := NewAuthority([]byte("b"))
	c := a.Mint(1, Read)
	if b.Check(c, Read) {
		t.Error("capability crossed authority boundary")
	}
}

func TestDerive(t *testing.T) {
	a := NewAuthority(nil)
	parent := a.Mint(7, Read|Write|Grant)
	child, ok := a.Derive(parent, Read)
	if !ok {
		t.Fatal("derive failed")
	}
	if !a.Check(child, Read) {
		t.Error("derived capability invalid")
	}
	if a.Check(child, Write) {
		t.Error("derived capability carries un-derived right")
	}
	// Deriving beyond the parent's rights fails.
	if _, ok := a.Derive(a.Mint(7, Read|Grant), Write); ok {
		t.Error("derive escalated rights")
	}
	// Deriving from a non-Grant capability fails.
	if _, ok := a.Derive(a.Mint(7, Read|Write), Read); ok {
		t.Error("derive without Grant succeeded")
	}
	// Derived capabilities without Grant cannot be re-derived.
	if _, ok := a.Derive(child, Read); ok {
		t.Error("re-derive from non-Grant child succeeded")
	}
}

// Property: Check(Mint(r, rights), need) succeeds iff need ⊆ rights.
func TestQuickMintCheck(t *testing.T) {
	a := NewAuthority([]byte("q"))
	f := func(resource uint64, rights, need uint8) bool {
		r := Rights(rights) & (Read | Write | Grant)
		n := Rights(need) & (Read | Write | Grant)
		c := a.Mint(resource, r)
		return a.Check(c, n) == (r&n == n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a MAC from one (resource, rights) pair never validates another.
func TestQuickNoCrossValidation(t *testing.T) {
	a := NewAuthority([]byte("q"))
	f := func(r1, r2 uint64) bool {
		if r1 == r2 {
			return true
		}
		c := a.Mint(r1, Read)
		c.Resource = r2
		return !a.Check(c, Read)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
