// Package cap implements self-authenticating capabilities, after Chaum and
// Fabry [12], which the prototype exokernel uses for secure bindings to
// physical memory: "when a library operating system allocates a physical
// memory page, the exokernel creates a secure binding for that page by
// recording the owner and the read and write capabilities specified by the
// library operating system."
//
// A capability is an unforgeable token over (resource, rights): the kernel
// mints it with a keyed MAC and later validates presented tokens without a
// lookup table. Applications may pass capabilities to each other to grant
// access — the kernel does not track or care who holds one.
package cap

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

// Rights is a bitmask of access rights carried by a capability.
type Rights uint8

// Access rights.
const (
	Read Rights = 1 << iota
	Write
	Grant // may mint derived capabilities with fewer rights
)

// Capability is a self-authenticating token: resource identity, rights, and
// a MAC binding them to the minting authority's key.
type Capability struct {
	Resource uint64
	Rights   Rights
	mac      [16]byte
}

// Authority mints and validates capabilities. The kernel owns one; its key
// never leaves it.
type Authority struct {
	key [32]byte
}

// NewAuthority creates an authority from seed material. A zero seed is
// valid (deterministic tests); real kernels pass entropy.
func NewAuthority(seed []byte) *Authority {
	a := &Authority{}
	sum := sha256.Sum256(append([]byte("exokernel-cap-v1"), seed...))
	a.key = sum
	return a
}

func (a *Authority) sign(resource uint64, rights Rights) [16]byte {
	mac := hmac.New(sha256.New, a.key[:])
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:8], resource)
	buf[8] = byte(rights)
	mac.Write(buf[:])
	var out [16]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Mint creates a capability for a resource with the given rights.
func (a *Authority) Mint(resource uint64, rights Rights) Capability {
	return Capability{Resource: resource, Rights: rights, mac: a.sign(resource, rights)}
}

// Check validates a presented capability: it must be authentic and carry
// every right in need.
func (a *Authority) Check(c Capability, need Rights) bool {
	if c.Rights&need != need {
		return false
	}
	want := a.sign(c.Resource, c.Rights)
	return hmac.Equal(want[:], c.mac[:])
}

// Derive mints a capability with a subset of c's rights. It fails unless c
// is authentic and carries Grant.
func (a *Authority) Derive(c Capability, rights Rights) (Capability, bool) {
	if !a.Check(c, Grant) {
		return Capability{}, false
	}
	if rights&c.Rights != rights {
		return Capability{}, false
	}
	return a.Mint(c.Resource, rights), true
}
