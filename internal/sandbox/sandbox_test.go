package sandbox

import (
	"strings"
	"testing"
	"testing/quick"

	"exokernel/internal/asm"
	"exokernel/internal/isa"
)

func verifySrc(t *testing.T, src string, policy Policy) (Result, error) {
	t.Helper()
	return Verify(asm.MustAssemble(src), policy)
}

func TestAcceptsLoopFreeASH(t *testing.T) {
	res, err := verifySrc(t, `
		pktlw t0, 0(zero)
		sw    t0, 0(zero)
		pktlen t1
		xmit  zero, t1
		halt
	`, PolicyASH)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxSteps != 5 {
		t.Errorf("MaxSteps = %d, want 5", res.MaxSteps)
	}
}

func TestAcceptsForwardBranches(t *testing.T) {
	if _, err := verifySrc(t, `
		pktlb t0, 0(zero)
		beq   t0, zero, skip
		addiu t1, zero, 1
	skip:
		halt
	`, PolicyASH); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBackwardBranch(t *testing.T) {
	_, err := verifySrc(t, `
	loop:
		addiu t0, t0, 1
		bne   t0, t1, loop
		halt
	`, PolicyASH)
	wantRejected(t, err, "backward branch")
}

func TestRejectsSelfBranch(t *testing.T) {
	_, err := Verify(isa.Code{{Op: isa.J, Imm: 0}, {Op: isa.HALT}}, PolicyASH)
	wantRejected(t, err, "backward branch")
}

func TestRejectsPrivileged(t *testing.T) {
	for _, op := range []isa.Op{isa.TLBWR, isa.RFE} {
		_, err := Verify(isa.Code{{Op: op}, {Op: isa.HALT}}, PolicyASH)
		wantRejected(t, err, "privileged")
	}
}

func TestRejectsIndirectJumps(t *testing.T) {
	for _, op := range []isa.Op{isa.JR, isa.JALR} {
		_, err := Verify(isa.Code{{Op: op, Rs: 31}, {Op: isa.HALT}}, PolicyASH)
		wantRejected(t, err, "indirect jump")
	}
}

func TestPolicyDifferences(t *testing.T) {
	// SYSCALL: handlers return through it; ASHs must not make them.
	sys := isa.Code{{Op: isa.SYSCALL}, {Op: isa.HALT}}
	if _, err := Verify(sys, PolicyHandler); err != nil {
		t.Errorf("handler syscall rejected: %v", err)
	}
	if _, err := Verify(sys, PolicyASH); err == nil {
		t.Error("ASH syscall accepted")
	}
	// Packet primitives: only in ASHs.
	pkt := isa.Code{{Op: isa.PKTLEN, Rd: 8}, {Op: isa.HALT}}
	if _, err := Verify(pkt, PolicyASH); err != nil {
		t.Errorf("ASH pktlen rejected: %v", err)
	}
	if _, err := Verify(pkt, PolicyHandler); err == nil {
		t.Error("handler pktlen accepted")
	}
}

func TestRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := Verify(nil, PolicyASH); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := Verify(isa.Code{{Op: isa.Op(200)}}, PolicyASH); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Verify(isa.Code{{Op: isa.BREAK}, {Op: isa.HALT}}, PolicyASH); err == nil {
		t.Error("break accepted")
	}
	if _, err := Verify(isa.Code{{Op: isa.COP1}, {Op: isa.HALT}}, PolicyASH); err == nil {
		t.Error("cop1 accepted")
	}
}

func TestRejectsOutOfRangeTarget(t *testing.T) {
	_, err := Verify(isa.Code{{Op: isa.J, Imm: 99}, {Op: isa.HALT}}, PolicyASH)
	wantRejected(t, err, "out of range")
	_, err = Verify(isa.Code{{Op: isa.BEQ, Imm: -1}, {Op: isa.HALT}}, PolicyASH)
	wantRejected(t, err, "out of range")
}

func wantRejected(t *testing.T, err error, sub string) {
	t.Helper()
	if err == nil {
		t.Fatalf("program accepted, want rejection containing %q", sub)
	}
	if !strings.Contains(err.Error(), sub) {
		t.Fatalf("error = %v, want substring %q", err, sub)
	}
}

// Property: the bound is sound — any accepted program of length n can
// execute at most n instructions, because every branch strictly advances.
func TestQuickBoundEqualsLength(t *testing.T) {
	ops := []isa.Op{isa.ADDU, isa.ADDIU, isa.AND, isa.SLL, isa.LW, isa.SW, isa.NOP}
	f := func(seed []uint8) bool {
		code := make(isa.Code, 0, len(seed)+1)
		for i, b := range seed {
			op := ops[int(b)%len(ops)]
			in := isa.Inst{Op: op, Rd: b % 32, Rs: (b >> 2) % 32, Imm: int32(b)}
			if b%5 == 0 {
				// Sprinkle in forward branches.
				in = isa.Inst{Op: isa.BEQ, Imm: int32(i + 1)}
			}
			code = append(code, in)
		}
		code = append(code, isa.Inst{Op: isa.HALT})
		res, err := Verify(code, PolicyASH)
		if err != nil {
			return true // rejection is always sound
		}
		return res.MaxSteps == len(code)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
