// Package sandbox statically verifies code an application asks the kernel
// to download (application-specific handlers, user exception handlers the
// kernel tail-calls). Safety follows the paper's recipe — "made safe by a
// combination of code inspection [18] and sandboxing [52]":
//
//   - instruction whitelist: no privileged instructions, only operations the
//     execution context permits;
//   - memory sandboxing: loads and stores are legal because the VM masks
//     their addresses into the handler's scratch region; the verifier only
//     has to confirm no instruction escapes the masked dialect;
//   - bounded runtime: the verifier computes an upper bound on executed
//     instructions by rejecting back edges (no loops) unless the caller
//     grants a dynamic step budget. Bounded code can run when the
//     application is not scheduled — the property ASHs depend on.
package sandbox

import (
	"fmt"

	"exokernel/internal/isa"
)

// Policy selects which instruction dialect is allowed.
type Policy int

// Policies.
const (
	// PolicyASH is for handlers that run inside the kernel on message
	// arrival: ALU ops, sandboxed memory, packet primitives, forward
	// control flow, HALT.
	PolicyASH Policy = iota
	// PolicyHandler is for application exception handlers: like ASH but
	// with the packet primitives excluded and SYSCALL allowed (handlers
	// return to the kernel via a system call).
	PolicyHandler
)

// Result carries the verifier's findings.
type Result struct {
	// MaxSteps is a static bound on executed instructions (loop-free code:
	// path length ≤ code length).
	MaxSteps int
}

// Error describes a rejected program.
type Error struct {
	PC  int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sandbox: pc %d: %s", e.PC, e.Msg) }

// Verify inspects code under a policy. On success the kernel may install
// the code; the returned bound lets it budget execution time.
func Verify(code isa.Code, policy Policy) (Result, error) {
	if len(code) == 0 {
		return Result{}, &Error{0, "empty program"}
	}
	for pc, in := range code {
		if !in.Op.Valid() {
			return Result{}, &Error{pc, "invalid opcode"}
		}
		switch in.Op {
		case isa.TLBWR, isa.RFE:
			return Result{}, &Error{pc, fmt.Sprintf("privileged instruction %s", in.Op)}
		case isa.PKTLW, isa.PKTLB, isa.PKTLEN, isa.XMIT:
			if policy != PolicyASH {
				return Result{}, &Error{pc, fmt.Sprintf("%s outside ASH context", in.Op)}
			}
		case isa.SYSCALL:
			if policy != PolicyHandler {
				return Result{}, &Error{pc, "syscall not allowed in ASH"}
			}
		case isa.BREAK, isa.COP1:
			return Result{}, &Error{pc, fmt.Sprintf("%s not allowed in downloaded code", in.Op)}
		case isa.JR, isa.JALR:
			// Indirect jumps defeat the static runtime bound.
			return Result{}, &Error{pc, "indirect jump not allowed in downloaded code"}
		case isa.J, isa.JAL, isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ:
			t := int(in.Imm)
			if t < 0 || t > len(code) {
				return Result{}, &Error{pc, fmt.Sprintf("branch target %d out of range", t)}
			}
			if t <= pc {
				return Result{}, &Error{pc, fmt.Sprintf("backward branch to %d (unbounded runtime)", t)}
			}
		}
	}
	// Loop-free: every instruction executes at most once.
	return Result{MaxSteps: len(code)}, nil
}
