package fleet

import (
	"fmt"
	"strings"

	"exokernel/internal/aegis"
	"exokernel/internal/metrics"
)

// RenderTop renders a snapshot as the exotop screen: a fleet summary
// line, one row per machine, the busiest environments across the fleet,
// and the harness gauges and probes. With a previous snapshot it adds
// per-machine rate columns — deltas normalized to simulated
// milliseconds, so even the "live" rates are functions of simulated
// time only and the rendering stays deterministic for a deterministic
// run. maxEnvs caps the environment table (0 = all live environments).
func RenderTop(cur, prev *Snapshot, maxEnvs int) string {
	var b strings.Builder

	// Fleet summary.
	var envs, live int
	var traceTotal, traceDropped uint64
	var spanTotal, spanDropped uint64
	for _, m := range cur.Machines {
		for _, e := range m.Envs {
			envs++
			if !e.Dead {
				live++
			}
		}
		traceTotal += m.TraceTotal
		traceDropped += m.TraceDropped
		spanTotal += m.SpanTotal
		spanDropped += m.SpanDropped
	}
	fmt.Fprintf(&b, "fleet  machines=%d  envs=%d live / %d total  trace=%d events (%d overwritten)",
		len(cur.Machines), live, envs, traceTotal, traceDropped)
	if spanTotal > 0 {
		fmt.Fprintf(&b, "  spans=%d (%d dropped)", spanTotal, spanDropped)
	}
	b.WriteString("\n")

	// Per-machine counters.
	b.WriteString("\nmachine        cycles      sim_us  syscalls    exc  tlbmiss  stlb%  upcall   pkt_in  pkt_drop  rx_ovf  revoke  kills\n")
	for _, m := range cur.Machines {
		s := m.Stats
		stlbPct := 0.0
		if s.TLBMisses > 0 {
			stlbPct = 100 * float64(s.STLBHits) / float64(s.TLBMisses)
		}
		fmt.Fprintf(&b, "%-8s %12d  %10.1f  %8d  %5d  %7d  %5.1f  %6d  %7d  %8d  %6d  %6d  %5d\n",
			m.Name, m.Cycles, m.SimMicros(), s.Syscalls, s.Exceptions, s.TLBMisses,
			stlbPct, s.TLBUpcalls, s.PktDelivered, s.PktDropped, s.RxOverflow,
			s.Revocations, s.KilledEnvs)
		if prev != nil {
			if pm := prev.machine(m.Name); pm != nil && m.Cycles > pm.Cycles {
				simMS := float64(m.Cycles-pm.Cycles) / (m.MHz * 1000)
				ps := pm.Stats
				fmt.Fprintf(&b, "%-8s %12s  %10s  %8.1f  %5.1f  %7.1f  %5s  %6.1f  %7.1f  %8.1f  %6.1f  %6.1f  %5.1f  /sim_ms\n",
					"", "", "",
					rate(s.Syscalls-ps.Syscalls, simMS), rate(s.Exceptions-ps.Exceptions, simMS),
					rate(s.TLBMisses-ps.TLBMisses, simMS), "",
					rate(s.TLBUpcalls-ps.TLBUpcalls, simMS), rate(s.PktDelivered-ps.PktDelivered, simMS),
					rate(s.PktDropped-ps.PktDropped, simMS), rate(s.RxOverflow-ps.RxOverflow, simMS),
					rate(s.Revocations-ps.Revocations, simMS), rate(s.KilledEnvs-ps.KilledEnvs, simMS))
			}
		}
	}

	// Busiest environments fleet-wide, by attributed cycles. Dead
	// environments keep their activity counters (post-mortem reads), so
	// they are listed while they out-rank live ones, marked dead.
	type envRow struct {
		machine string
		e       EnvSnap
	}
	var rows []envRow
	for _, m := range cur.Machines {
		for _, e := range m.Envs {
			rows = append(rows, envRow{machine: m.Name, e: e})
		}
	}
	// Insertion sort by (cycles desc, machine order, env id) — stable and
	// deterministic for the small tables a top view shows.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].e.Acct.Cycles > rows[j-1].e.Acct.Cycles; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	if maxEnvs > 0 && len(rows) > maxEnvs {
		rows = rows[:maxEnvs]
	}
	if len(rows) > 0 {
		b.WriteString("\nmachine  env  state       cycles  syscalls  tlbmiss  upcall  pkt_in  frames  extents  endpts  slices\n")
		for _, r := range rows {
			state := "live"
			if r.e.Dead {
				state = "dead"
			}
			a := r.e.Acct
			fmt.Fprintf(&b, "%-8s %3d  %-5s %12d  %8d  %7d  %6d  %6d  %6d  %7d  %6d  %6d\n",
				r.machine, r.e.ID, state, a.Cycles, a.Syscalls, a.TLBMisses,
				a.TLBUpcalls, a.PktDelivered, a.Frames, a.Extents, a.Endpoints, r.e.Slices)
		}
	}

	// Kernel operation latencies (simulated cycles), pooled across the
	// fleet by bucket merge — the distribution view a single mean hides.
	pooled := poolOps(cur)
	header := false
	for op := aegis.OpClass(0); op < aegis.NumOpClasses; op++ {
		s := pooled[op]
		if s.Count == 0 {
			continue
		}
		if !header {
			b.WriteString("\nop latency (sim cycles, fleet-wide)   count      min     mean      p50      p99      max\n")
			header = true
		}
		fmt.Fprintf(&b, "  %-33s %7d  %7d  %7.1f  %7d  %7d  %7d\n",
			op.String(), s.Count, s.Min, s.Mean, s.P50, s.P99, s.Max)
	}

	if len(cur.Gauges) > 0 {
		b.WriteString("\ngauges\n")
		for _, g := range cur.Gauges {
			fmt.Fprintf(&b, "  %-28s %12d\n", g.Name, g.Value)
		}
	}
	if len(cur.Probes) > 0 {
		b.WriteString("\nprobes (host ns)\n")
		for _, p := range cur.Probes {
			s := p.Snap
			fmt.Fprintf(&b, "  %-28s n=%d p50=%d p99=%d max=%d\n",
				p.Name, s.Count, s.P50, s.P99, s.Max)
		}
	}
	return b.String()
}

// machine finds a snapshot's machine by name (nil if absent).
func (s *Snapshot) machine(name string) *MachineSnap {
	for i := range s.Machines {
		if s.Machines[i].Name == name {
			return &s.Machines[i]
		}
	}
	return nil
}

// rate is a per-simulated-millisecond delta (0 when the window is empty).
func rate(delta uint64, simMS float64) float64 {
	if simMS <= 0 {
		return 0
	}
	return float64(delta) / simMS
}

// poolOps merges each operation class's snapshot across machines. The
// per-machine data are already collapsed to summaries, so the pool is a
// count-weighted combination: exact for count/min/max/mean, and the
// quantiles are the count-weighted largest per-machine quantile — the
// conservative (upper-bound) fleet tail.
func poolOps(s *Snapshot) [aegis.NumOpClasses]metrics.Snapshot {
	var out [aegis.NumOpClasses]metrics.Snapshot
	for op := range out {
		var pool metrics.Snapshot
		var sum float64
		for _, m := range s.Machines {
			ms := m.Ops[op]
			if ms.Count == 0 {
				continue
			}
			if pool.Count == 0 || ms.Min < pool.Min {
				pool.Min = ms.Min
			}
			if ms.Max > pool.Max {
				pool.Max = ms.Max
			}
			if ms.P50 > pool.P50 {
				pool.P50 = ms.P50
			}
			if ms.P90 > pool.P90 {
				pool.P90 = ms.P90
			}
			if ms.P99 > pool.P99 {
				pool.P99 = ms.P99
			}
			pool.Count += ms.Count
			sum += ms.Mean * float64(ms.Count)
		}
		if pool.Count > 0 {
			pool.Mean = sum / float64(pool.Count)
		}
		out[op] = pool
	}
	return out
}
