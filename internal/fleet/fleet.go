// Package fleet is the multi-machine observability bus: N simulated
// machines — each with its Aegis kernel, accounting registry, and ktrace
// flight recorder — register as members, and the bus renders them as one
// system. It snapshots every member's counters in one call, merges every
// member's trace window into a single cycle-ordered stream with a
// machine dimension, and exports the merged stream as one Perfetto
// timeline with a process track per machine.
//
// The bus inherits the observation contract of ktrace and metrics:
// aggregation is observation, never participation. Snapshot, MergedEvents
// and the exporters read registries and recorders but never tick a
// simulated clock — observing a fleet costs zero simulated cycles
// (pinned by TestFleetObservationIsFree), so a run observed continuously
// is cycle-identical to one observed never. That is the paper's
// discipline at datacenter scale: the kernel (and here, the harness
// around many kernels) multiplexes; measurement and policy stay outside
// the cost model.
//
// Harness-side series ride the same bus: probes are named host-time
// histograms (e.g. the chaos gate's invariant-check latency) and gauges
// are named counters sampled at snapshot time (e.g. faults injected by
// class). They carry host-side facts, so they never appear in simulated
// exports — only in top views and SOAK trends.
package fleet

import (
	"io"
	"sort"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
	"exokernel/internal/metrics"
	"exokernel/internal/prof"
)

// Member is one registered machine: the hardware (for its clock and
// config), the kernel (for its registry), and the flight recorder (which
// may be nil — a member without tracing still snapshots counters).
type Member struct {
	Name string
	M    *hw.Machine
	K    *aegis.Kernel
	Rec  *ktrace.Recorder
	// Spans is the member's causal span recorder (nil when request
	// tracing is off); attach with Bus.AttachSpans.
	Spans *ktrace.SpanRecorder
	// Prof is the member's cycle profiler (nil when profiling is off);
	// attach with Bus.AttachProf.
	Prof *prof.Profiler
}

// probe is a named host-side histogram owned by the bus.
type probe struct {
	name string
	h    metrics.Hist
}

// gauge is a named counter sampled at snapshot time.
type gauge struct {
	name string
	fn   func() uint64
}

// Bus aggregates members, probes, and gauges. A Bus observes one run;
// re-registering a name replaces the member (and likewise for gauges),
// so a harness that restarts its world on the same bus never presents
// stale machines.
type Bus struct {
	members []*Member
	probes  []*probe
	gauges  []gauge
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Register adds a machine to the fleet (replacing any member with the
// same name) and returns its member record. Registration order fixes the
// machine's track position in merged exports.
func (b *Bus) Register(name string, m *hw.Machine, k *aegis.Kernel, rec *ktrace.Recorder) *Member {
	mb := &Member{Name: name, M: m, K: k, Rec: rec}
	for i, old := range b.members {
		if old.Name == name {
			b.members[i] = mb
			return mb
		}
	}
	b.members = append(b.members, mb)
	return mb
}

// Members returns the registered machines in registration order.
func (b *Bus) Members() []*Member { return b.members }

// MachineNames returns the member names in registration order — the pid
// assignment of merged exports.
func (b *Bus) MachineNames() []string {
	names := make([]string, len(b.members))
	for i, m := range b.members {
		names[i] = m.Name
	}
	return names
}

// Probe returns the named host-side histogram, creating it on first use.
// Probe order is first-use order, which snapshots preserve.
func (b *Bus) Probe(name string) *metrics.Hist {
	for _, p := range b.probes {
		if p.name == name {
			return &p.h
		}
	}
	p := &probe{name: name}
	b.probes = append(b.probes, p)
	return &p.h
}

// AddGauge registers (or replaces) a named counter sampled at snapshot
// time. The function must be cheap and must not tick any simulated clock.
func (b *Bus) AddGauge(name string, fn func() uint64) {
	for i := range b.gauges {
		if b.gauges[i].name == name {
			b.gauges[i].fn = fn
			return
		}
	}
	b.gauges = append(b.gauges, gauge{name: name, fn: fn})
}

// EnvSnap is one environment's slice of a machine snapshot.
type EnvSnap struct {
	ID     aegis.EnvID
	Dead   bool
	Slices uint64
	Acct   aegis.EnvAccount
}

// MachineSnap is one member's counters at a snapshot instant.
type MachineSnap struct {
	Name   string
	MHz    float64
	Cycles uint64
	Stats  aegis.Stats
	Envs   []EnvSnap

	// Flight-recorder census (zero when the member has no recorder).
	TraceTotal   uint64
	TraceHeld    int
	TraceDropped uint64

	// Span-recorder census (zero when request tracing is off).
	SpanTotal   uint64
	SpanHeld    int
	SpanDropped uint64

	// Kernel-wide operation-latency summaries (simulated cycles).
	Ops [aegis.NumOpClasses]metrics.Snapshot
}

// SimMicros converts this machine's cycle count to simulated
// microseconds.
func (ms *MachineSnap) SimMicros() float64 {
	if ms.MHz <= 0 {
		return 0
	}
	return float64(ms.Cycles) / ms.MHz
}

// ProbeSnap is one probe's summary at a snapshot instant.
type ProbeSnap struct {
	Name string
	Snap metrics.Snapshot
}

// GaugeSnap is one gauge's value at a snapshot instant.
type GaugeSnap struct {
	Name  string
	Value uint64
}

// Snapshot is the whole fleet's counters at one instant.
type Snapshot struct {
	Machines []MachineSnap
	Probes   []ProbeSnap
	Gauges   []GaugeSnap
}

// Snapshot reads every member's registry, recorder census, and the bus's
// probes and gauges. Pure observation: no simulated clock moves, so a
// run interleaved with snapshots is cycle-identical to one without.
func (b *Bus) Snapshot() *Snapshot {
	s := &Snapshot{Machines: make([]MachineSnap, 0, len(b.members))}
	for _, mb := range b.members {
		ms := MachineSnap{
			Name:         mb.Name,
			MHz:          mb.M.Config.MHz,
			Cycles:       mb.M.Clock.Cycles(),
			Stats:        mb.K.GlobalStats(),
			TraceTotal:   mb.Rec.Total(),
			TraceHeld:    mb.Rec.Len(),
			TraceDropped: mb.Rec.Dropped(),
			SpanTotal:    mb.Spans.Total(),
			SpanHeld:     mb.Spans.Len(),
			SpanDropped:  mb.Spans.Dropped(),
		}
		for op := aegis.OpClass(0); op < aegis.NumOpClasses; op++ {
			ms.Ops[op] = mb.K.Stats.OpSnapshot(op)
		}
		accts := mb.K.Accounts()
		for _, e := range mb.K.Envs() {
			es := EnvSnap{ID: e.ID, Dead: e.Dead, Slices: e.Slices}
			if int(e.ID) <= len(accts) {
				es.Acct = accts[e.ID-1]
			}
			ms.Envs = append(ms.Envs, es)
		}
		s.Machines = append(s.Machines, ms)
	}
	for _, p := range b.probes {
		s.Probes = append(s.Probes, ProbeSnap{Name: p.name, Snap: p.h.Snapshot()})
	}
	for _, g := range b.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.fn()})
	}
	return s
}

// MergedEvents merges every member's held trace window into one stream
// ordered by cycle stamp, tagged with the member name. Each machine has
// its own simulated clock; ordering by cycle is the fleet-wide "happened
// at the same simulated time" view. Ties break by registration order,
// then by each recorder's own emission order, so the merge is
// deterministic: the same recorders always merge to the same stream.
func (b *Bus) MergedEvents() []ktrace.SourcedEvent {
	type tagged struct {
		ev  ktrace.SourcedEvent
		mi  int // member index
		seq int // emission order within the member
	}
	var all []tagged
	for mi, mb := range b.members {
		for seq, e := range mb.Rec.Events() {
			all = append(all, tagged{
				ev:  ktrace.SourcedEvent{Machine: mb.Name, Event: e},
				mi:  mi,
				seq: seq,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.Cycle != all[j].ev.Cycle {
			return all[i].ev.Cycle < all[j].ev.Cycle
		}
		if all[i].mi != all[j].mi {
			return all[i].mi < all[j].mi
		}
		return all[i].seq < all[j].seq
	})
	out := make([]ktrace.SourcedEvent, len(all))
	for i, t := range all {
		out[i] = t.ev
	}
	return out
}

// WriteChrome exports the merged stream as one Chrome/Perfetto timeline
// with a process track per machine, using the first member's clock rate
// as the time base (the fleet runs homogeneous configs today; a mixed
// fleet would need per-track scaling). Deterministic: same recorders,
// same bytes.
func (b *Bus) WriteChrome(w io.Writer) error {
	mhz := float64(0)
	if len(b.members) > 0 {
		mhz = b.members[0].M.Config.MHz
	}
	return ktrace.WriteChromeMerged(w, b.MergedEvents(), b.MachineNames(), mhz)
}

// WriteJSONL exports the merged stream as machine-tagged JSONL.
func (b *Bus) WriteJSONL(w io.Writer) error {
	return ktrace.WriteJSONLSourced(w, b.MergedEvents())
}
