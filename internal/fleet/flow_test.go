package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// mkSpan builds one sourced span for assembly tests.
func mkSpan(machine string, trace, id, parent uint64, kind ktrace.SpanKind, env uint32, start, end uint64) ktrace.SourcedSpan {
	return ktrace.SourcedSpan{
		Machine: machine,
		Span: ktrace.Span{
			Trace: ktrace.TraceID(trace), ID: ktrace.SpanID(id),
			Parent: ktrace.SpanID(parent), Env: env, Kind: kind,
			Start: start, End: end,
		},
	}
}

func TestAssembleTraces(t *testing.T) {
	spans := []ktrace.SourcedSpan{
		mkSpan("A", 1, 10, 0, ktrace.SpanReq, 1, 0, 500),
		mkSpan("A", 1, 11, 10, ktrace.SpanUDPTx, 1, 100, 200),
		mkSpan("B", 1, 12, 11, ktrace.SpanRx, 2, 350, 400),
		mkSpan("B", 1, 13, 99, ktrace.SpanRecv, 2, 380, 0), // parent missing -> orphan, open
		mkSpan("A", 2, 20, 0, ktrace.SpanReq, 1, 600, 700),
	}
	traces := AssembleTraces(spans)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	tr := traces[0]
	if tr.ID != 1 || tr.Spans != 4 || tr.Open != 1 || len(tr.Orphans) != 1 {
		t.Fatalf("trace 1 shape: id=%d spans=%d open=%d orphans=%d", tr.ID, tr.Spans, tr.Open, len(tr.Orphans))
	}
	if len(tr.Roots) != 1 || tr.Roots[0].Span.ID != 10 {
		t.Fatalf("trace 1 roots wrong: %+v", tr.Roots)
	}
	if got := tr.Duration(); got != 500 {
		t.Fatalf("duration = %d, want 500", got)
	}
	if traces[1].ID != 2 {
		t.Fatalf("trace order: second is %d, want 2", traces[1].ID)
	}
	// The rx span hangs off udp-tx, not the root.
	tx := tr.Roots[0].Children[0]
	if tx.Span.ID != 11 || len(tx.Children) != 1 || tx.Children[0].Span.ID != 12 {
		t.Fatalf("tree shape wrong under root: %+v", tx)
	}
}

func TestAssembleTracesCrossTraceParentIsOrphan(t *testing.T) {
	spans := []ktrace.SourcedSpan{
		mkSpan("A", 1, 10, 0, ktrace.SpanReq, 1, 0, 100),
		// Parent span exists but belongs to a different trace: still an orphan.
		mkSpan("A", 2, 11, 10, ktrace.SpanRx, 1, 50, 60),
	}
	traces := AssembleTraces(spans)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if len(traces[1].Orphans) != 1 {
		t.Fatalf("cross-trace parent not flagged as orphan: %+v", traces[1])
	}
}

func TestCriticalPathWireAndQueue(t *testing.T) {
	spans := []ktrace.SourcedSpan{
		mkSpan("A", 1, 10, 0, ktrace.SpanReq, 1, 0, 500),
		mkSpan("A", 1, 11, 10, ktrace.SpanUDPTx, 1, 100, 200),
		mkSpan("B", 1, 12, 11, ktrace.SpanRx, 2, 350, 400),   // wire gap 150
		mkSpan("B", 1, 13, 12, ktrace.SpanRecv, 2, 420, 450), // queue gap 20
	}
	tr := AssembleTraces(spans)[0]
	path, bd := CriticalPath(tr)
	want := []struct {
		id   uint64
		kind string
		wait uint64
	}{
		{10, WaitNone, 0},
		{11, WaitIn, 100},
		{12, WaitWire, 150},
		{13, WaitQueue, 20},
	}
	if len(path) != len(want) {
		t.Fatalf("path hops = %d, want %d", len(path), len(want))
	}
	for i, w := range want {
		h := path[i]
		if uint64(h.Node.Span.ID) != w.id || h.WaitKind != w.kind || h.Wait != w.wait {
			t.Fatalf("hop %d = span %d kind %q wait %d, want span %d kind %q wait %d",
				i, h.Node.Span.ID, h.WaitKind, h.Wait, w.id, w.kind, w.wait)
		}
	}
	if bd.Total != 500 || bd.Wire != 150 || bd.Queue != 20 || bd.Handler != 330 {
		t.Fatalf("breakdown = %+v", bd)
	}
}

func TestCriticalPathPicksDeepestSubtree(t *testing.T) {
	spans := []ktrace.SourcedSpan{
		mkSpan("A", 1, 1, 0, ktrace.SpanReq, 1, 0, 100),
		mkSpan("A", 1, 2, 1, ktrace.SpanIPCCall, 1, 10, 300), // ends later itself...
		mkSpan("A", 1, 3, 1, ktrace.SpanIPCCall, 1, 20, 250),
		mkSpan("A", 1, 4, 3, ktrace.SpanDisk, 1, 30, 600), // ...but this subtree ends last
	}
	tr := AssembleTraces(spans)[0]
	path, bd := CriticalPath(tr)
	var ids []uint64
	for _, h := range path {
		ids = append(ids, uint64(h.Node.Span.ID))
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 4 {
		t.Fatalf("path ids = %v, want [1 3 4]", ids)
	}
	if bd.Total != 600 {
		t.Fatalf("total = %d, want 600", bd.Total)
	}
}

func TestRenderTraceDeterministic(t *testing.T) {
	spans := []ktrace.SourcedSpan{
		mkSpan("A", 7, 10, 0, ktrace.SpanReq, 1, 0, 500),
		mkSpan("A", 7, 11, 10, ktrace.SpanUDPTx, 1, 100, 200),
		mkSpan("B", 7, 12, 11, ktrace.SpanRx, 2, 350, 400),
		mkSpan("B", 7, 13, 99, ktrace.SpanRecv, 2, 380, 0),
	}
	tr := AssembleTraces(spans)[0]
	var a, b bytes.Buffer
	RenderTrace(&a, tr)
	RenderTrace(&b, tr)
	if a.String() != b.String() {
		t.Fatalf("render not deterministic")
	}
	out := a.String()
	for _, want := range []string{
		"trace 0x7", "orphans=1", "! orphan", "critical path (3 hops):",
		"+150 wire+queue", "breakdown:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	var j bytes.Buffer
	if err := WriteTraceJSON(&j, tr); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(j.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if doc["orphans"].(float64) != 1 || doc["wire_cycles"].(float64) != 150 {
		t.Fatalf("trace JSON fields wrong: %v", doc)
	}
}

func TestMergedSpansAndAttach(t *testing.T) {
	bus := NewBus()
	ma := hw.NewMachine(hw.DEC5000)
	mb := hw.NewMachine(hw.DEC5000)
	bus.Register("A", ma, aegis.New(ma), ktrace.New(16))
	bus.Register("B", mb, aegis.New(mb), ktrace.New(16))

	if bus.AttachSpans("nope", ktrace.NewSpans(8, 1)) {
		t.Fatalf("AttachSpans accepted unknown member")
	}
	ra := ktrace.NewSpans(8, 1)
	rb := ktrace.NewSpans(8, 2)
	if !bus.AttachSpans("A", ra) || !bus.AttachSpans("B", rb) {
		t.Fatalf("AttachSpans rejected registered members")
	}

	r1 := ra.Begin(100, ktrace.SpanReq, 1, ktrace.SpanContext{}, 0)
	r2 := rb.Begin(50, ktrace.SpanReq, 2, ktrace.SpanContext{}, 0)
	ra.End(r1, 120)
	rb.End(r2, 60)

	merged := bus.MergedSpans()
	if len(merged) != 2 {
		t.Fatalf("merged = %d spans, want 2", len(merged))
	}
	if merged[0].Machine != "B" || merged[1].Machine != "A" {
		t.Fatalf("merge order wrong: %s then %s", merged[0].Machine, merged[1].Machine)
	}

	// Snapshot surfaces the span census.
	snap := bus.Snapshot()
	if snap.Machines[0].SpanTotal != 1 || snap.Machines[0].SpanHeld != 1 {
		t.Fatalf("span census missing from snapshot: %+v", snap.Machines[0])
	}
}
