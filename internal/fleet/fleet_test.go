// Tests live in fleet_test (external) so they can drive the chaos
// harness — internal/chaos imports internal/fleet, so an internal test
// package would be an import cycle.
package fleet_test

import (
	"bytes"
	"testing"

	"exokernel/internal/aegis"
	"exokernel/internal/chaos"
	"exokernel/internal/fleet"
	"exokernel/internal/hw"
	"exokernel/internal/ktrace"
)

// twoMachines builds a scripted two-machine fleet with deterministic
// activity: machine A runs two environments through yields and page
// allocations, machine B runs one. Every cycle is simulated, so the
// world (and anything rendered from it) is bit-stable across runs.
func twoMachines(t *testing.T) *fleet.Bus {
	t.Helper()
	bus := fleet.NewBus()

	ma := hw.NewMachine(hw.DEC5000)
	ka := aegis.New(ma)
	recA := ktrace.New(1024)
	ka.SetTracer(recA)
	bus.Register("A", ma, ka, recA)
	a1, err := ka.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ka.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := ka.AllocPage(a1, aegis.AnyFrame); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ka.AllocPage(a2, aegis.AnyFrame); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !ka.Yield(a2.ID) || !ka.Yield(a1.ID) {
			t.Fatal("yield failed on A")
		}
	}

	mb := hw.NewMachine(hw.DEC5000)
	kb := aegis.New(mb)
	recB := ktrace.New(1024)
	kb.SetTracer(recB)
	bus.Register("B", mb, kb, recB)
	b1, err := kb.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := kb.AllocPage(b1, aegis.AnyFrame); err != nil {
		t.Fatal(err)
	}
	if !kb.Yield(b1.ID) {
		t.Fatal("yield failed on B")
	}

	bus.AddGauge("steps", func() uint64 { return 42 })
	return bus
}

// TestFleetObservationIsFree pins the bus's half of the observation
// contract at fleet scale: a chaos run observed continuously (snapshot,
// merge, and render after every step) is cycle-identical and
// trace-identical to the same seed never observed. If any bus read ever
// ticked a simulated clock, the determinism witnesses would split.
func TestFleetObservationIsFree(t *testing.T) {
	cfg := chaos.Config{Seed: 7, TargetFaults: 150}
	quiet, err := chaos.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	bus := fleet.NewBus()
	watched := cfg
	watched.Bus = bus
	var prev *fleet.Snapshot
	watched.OnStep = func(step int) {
		s := bus.Snapshot()
		_ = fleet.RenderTop(s, prev, 8)
		prev = s
		if step%16 == 0 {
			_ = bus.MergedEvents()
			var sink bytes.Buffer
			if err := bus.WriteChrome(&sink); err != nil {
				t.Fatalf("step %d: WriteChrome: %v", step, err)
			}
		}
	}
	observed, err := chaos.Run(watched)
	if err != nil {
		t.Fatal(err)
	}

	if quiet.CyclesA != observed.CyclesA || quiet.CyclesB != observed.CyclesB {
		t.Errorf("observation perturbed the clocks: %d/%d unobserved vs %d/%d observed",
			quiet.CyclesA, quiet.CyclesB, observed.CyclesA, observed.CyclesB)
	}
	if quiet.TraceHash != observed.TraceHash {
		t.Errorf("observation perturbed the trace: hash %#x unobserved vs %#x observed",
			quiet.TraceHash, observed.TraceHash)
	}
	if quiet.FaultEvents != observed.FaultEvents || quiet.Steps != observed.Steps {
		t.Errorf("observation perturbed the schedule: %d events/%d steps vs %d/%d",
			quiet.FaultEvents, quiet.Steps, observed.FaultEvents, observed.Steps)
	}
}

// TestMergedChromeByteIdentical pins merged-export determinism: two runs
// of the same chaos seed merge to byte-identical Perfetto files, with
// one process track per machine.
func TestMergedChromeByteIdentical(t *testing.T) {
	render := func() []byte {
		bus := fleet.NewBus()
		if _, err := chaos.Run(chaos.Config{Seed: 3, TargetFaults: 120, Bus: bus}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := bus.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, different merged Perfetto bytes (%d vs %d bytes)", len(first), len(second))
	}
	for _, want := range []string{`"machine A"`, `"machine B"`, `"process_name"`} {
		if !bytes.Contains(first, []byte(want)) {
			t.Errorf("merged export missing %s", want)
		}
	}
}

// TestMergedEventsOrdering: the merged stream is cycle-ordered with
// registration order breaking ties, and every event keeps its source
// machine.
func TestMergedEventsOrdering(t *testing.T) {
	bus := twoMachines(t)
	events := bus.MergedEvents()
	if len(events) == 0 {
		t.Fatal("scripted world merged to an empty stream")
	}
	machines := map[string]int{}
	for i, e := range events {
		machines[e.Machine]++
		if i == 0 {
			continue
		}
		p := events[i-1]
		if e.Cycle < p.Cycle {
			t.Fatalf("event %d out of order: cycle %d after %d", i, e.Cycle, p.Cycle)
		}
		if e.Cycle == p.Cycle && p.Machine == "B" && e.Machine == "A" {
			t.Fatalf("event %d breaks registration-order tie-break: A after B at cycle %d", i, e.Cycle)
		}
	}
	if machines["A"] == 0 || machines["B"] == 0 {
		t.Errorf("merged stream lost a machine: %v", machines)
	}

	var jsonl bytes.Buffer
	if err := bus.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	back, truncated, err := ktrace.ParseJSONLSourced(&jsonl)
	if err != nil || truncated != 0 {
		t.Fatalf("merged JSONL did not round-trip: err=%v truncated=%d", err, truncated)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back), len(events))
	}
	for i := range back {
		if back[i] != events[i] {
			t.Fatalf("event %d changed in round trip: %+v vs %+v", i, back[i], events[i])
		}
	}
}

// TestRegisterReplacesByName: re-registering a name swaps the member in
// place, so a harness restarting its world never shows stale machines.
func TestRegisterReplacesByName(t *testing.T) {
	bus := fleet.NewBus()
	m1 := hw.NewMachine(hw.DEC5000)
	k1 := aegis.New(m1)
	bus.Register("A", m1, k1, nil)
	m2 := hw.NewMachine(hw.DEC5000)
	k2 := aegis.New(m2)
	bus.Register("A", m2, k2, nil)
	if n := len(bus.Members()); n != 1 {
		t.Fatalf("re-registering a name grew the fleet to %d members", n)
	}
	if bus.Members()[0].M != m2 {
		t.Error("re-registering a name kept the old machine")
	}
	bus.AddGauge("g", func() uint64 { return 1 })
	bus.AddGauge("g", func() uint64 { return 2 })
	s := bus.Snapshot()
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 2 {
		t.Errorf("re-adding a gauge did not replace it: %+v", s.Gauges)
	}
}

// TestProbeIsStable: the same name always returns the same histogram.
func TestProbeIsStable(t *testing.T) {
	bus := fleet.NewBus()
	h := bus.Probe("lat")
	h.Record(10)
	if got := bus.Probe("lat"); got != h {
		t.Fatal("Probe returned a different histogram for the same name")
	}
	s := bus.Snapshot()
	if len(s.Probes) != 1 || s.Probes[0].Name != "lat" || s.Probes[0].Snap.Count != 1 {
		t.Errorf("probe snapshot wrong: %+v", s.Probes)
	}
}
