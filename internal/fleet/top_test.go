package fleet_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exokernel/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderTopGolden pins the exotop -once rendering over the scripted
// two-machine world: every number in the view derives from simulated
// state, so the screen is byte-stable. `go test ./internal/fleet
// -run Golden -update` rewrites the golden after an intentional change.
func TestRenderTopGolden(t *testing.T) {
	bus := twoMachines(t)
	got := fleet.RenderTop(bus.Snapshot(), nil, 8)

	path := filepath.Join("testdata", "exotop_once.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("RenderTop drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRenderTopRates: with a previous snapshot, machines that advanced
// get a /sim_ms rate row — computed from simulated time only.
func TestRenderTopRates(t *testing.T) {
	bus := twoMachines(t)
	first := bus.Snapshot()
	// Advance machine A deterministically.
	a := bus.Members()[0]
	env, err := a.K.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !a.K.Yield(env.ID) || !a.K.Yield(1) {
			t.Fatal("yield failed")
		}
	}
	second := bus.Snapshot()
	out := fleet.RenderTop(second, first, 8)
	if !strings.Contains(out, "/sim_ms") {
		t.Errorf("no rate row despite clock progress:\n%s", out)
	}
	// Rendering twice from the same snapshots is identical (pure function).
	if out != fleet.RenderTop(second, first, 8) {
		t.Error("RenderTop is not deterministic for fixed snapshots")
	}
}
