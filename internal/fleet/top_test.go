package fleet_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exokernel/internal/fleet"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRenderTopGolden pins the exotop -once rendering over the scripted
// two-machine world: every number in the view derives from simulated
// state, so the screen is byte-stable. `go test ./internal/fleet
// -run Golden -update` rewrites the golden after an intentional change.
func TestRenderTopGolden(t *testing.T) {
	bus := twoMachines(t)
	got := fleet.RenderTop(bus.Snapshot(), nil, 8)

	path := filepath.Join("testdata", "exotop_once.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("RenderTop drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestRenderTopRates: with a previous snapshot, machines that advanced
// get a /sim_ms rate row — computed from simulated time only.
func TestRenderTopRates(t *testing.T) {
	bus := twoMachines(t)
	first := bus.Snapshot()
	// Advance machine A deterministically.
	a := bus.Members()[0]
	env, err := a.K.NewEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if !a.K.Yield(env.ID) || !a.K.Yield(1) {
			t.Fatal("yield failed")
		}
	}
	second := bus.Snapshot()
	out := fleet.RenderTop(second, first, 8)
	if !strings.Contains(out, "/sim_ms") {
		t.Errorf("no rate row despite clock progress:\n%s", out)
	}
	// Rendering twice from the same snapshots is identical (pure function).
	if out != fleet.RenderTop(second, first, 8) {
		t.Error("RenderTop is not deterministic for fixed snapshots")
	}
}

// TestRenderTopLiveFrames pins the live mode (the exotop redraw loop):
// a sequence of frames, each rendered against the previous snapshot the
// way runChaos does. The whole frame sequence must be deterministic —
// rebuilding the world and replaying the same schedule renders
// byte-identical frames — and every frame after the first must carry
// rate rows, because the rates derive from simulated time only.
func TestRenderTopLiveFrames(t *testing.T) {
	const frames = 4
	render := func() []string {
		bus := twoMachines(t)
		a := bus.Members()[0]
		env, err := a.K.NewEnv(nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		var prev *fleet.Snapshot
		for f := 0; f < frames; f++ {
			// Deterministic inter-frame activity: the scripted analogue of
			// chaos schedule steps between redraws.
			for i := 0; i < 10*(f+1); i++ {
				if !a.K.Yield(env.ID) || !a.K.Yield(1) {
					t.Fatal("yield failed")
				}
			}
			cur := bus.Snapshot()
			out = append(out, fleet.RenderTop(cur, prev, 8))
			prev = cur
		}
		return out
	}

	first, second := render(), render()
	for f := 0; f < frames; f++ {
		if first[f] != second[f] {
			t.Errorf("frame %d not reproducible across identical runs:\n--- run1 ---\n%s\n--- run2 ---\n%s",
				f, first[f], second[f])
		}
		if f == 0 {
			if strings.Contains(first[f], "/sim_ms") {
				t.Error("frame 0 has rate rows without a previous snapshot")
			}
			continue
		}
		if !strings.Contains(first[f], "/sim_ms") {
			t.Errorf("frame %d missing rate rows:\n%s", f, first[f])
		}
	}
	// The frames advance: consecutive frames must differ (the world moved).
	for f := 1; f < frames; f++ {
		if first[f] == first[f-1] {
			t.Errorf("frames %d and %d identical despite scheduled activity", f-1, f)
		}
	}
}
