package fleet

import "exokernel/internal/prof"

// Profile aggregation: the bus's machine dimension applied to cycle
// profiles. Each member may carry a profiler; MergedProfiles snapshots
// them all under the member names so one PROF file describes the fleet.

// AttachProf attaches a cycle profiler to the named member (nil
// detaches), wiring the kernel and interpreter hooks. Returns false if
// no such member is registered.
func (b *Bus) AttachProf(name string, p *prof.Profiler) bool {
	for _, mb := range b.members {
		if mb.Name == name {
			mb.Prof = p
			if mb.K != nil {
				mb.K.SetProf(p)
			}
			return true
		}
	}
	return false
}

// MergedProfiles snapshots every profiled member in registration order,
// overriding each profile's machine dimension with the member name (the
// bus's naming is authoritative, exactly as in MergedEvents).
func (b *Bus) MergedProfiles() []prof.Profile {
	var out []prof.Profile
	for _, mb := range b.members {
		if mb.Prof == nil {
			continue
		}
		p := mb.Prof.Snapshot()
		p.Machine = mb.Name
		out = append(out, p)
	}
	return out
}
