package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"exokernel/internal/ktrace"
)

// Causal-flow analysis: turn the fleet's per-machine span streams into
// per-request trees and answer "where did this request spend its
// cycles". Same observation contract as the rest of the bus — merging,
// assembly, and rendering never touch a simulated clock.
//
// Cross-machine latency arithmetic compares cycle stamps from different
// machines' clocks directly. That is valid here for the same reason
// WriteChrome shares one time base: the fleet runs homogeneous clock
// configs. A mixed-rate fleet would need per-machine scaling first.

// AttachSpans attaches a span recorder to the named member (nil detaches).
// Returns false if no such member is registered.
func (b *Bus) AttachSpans(name string, r *ktrace.SpanRecorder) bool {
	for _, mb := range b.members {
		if mb.Name == name {
			mb.Spans = r
			return true
		}
	}
	return false
}

// WriteChromeSpans exports the merged span stream as a Chrome/Perfetto
// timeline with flow arrows along every causal edge, sharing the pid
// assignment of WriteChrome so the two timelines line up.
func (b *Bus) WriteChromeSpans(w io.Writer) error {
	mhz := float64(0)
	if len(b.members) > 0 {
		mhz = b.members[0].M.Config.MHz
	}
	return ktrace.WriteChromeSpans(w, b.MergedSpans(), b.MachineNames(), mhz)
}

// MergedSpans merges every member's held span window into one stream
// ordered by start cycle, tagged with the member name. Ties break by
// registration order, then emission order — deterministic, like
// MergedEvents.
func (b *Bus) MergedSpans() []ktrace.SourcedSpan {
	type tagged struct {
		sp  ktrace.SourcedSpan
		mi  int
		seq int
	}
	var all []tagged
	for mi, mb := range b.members {
		if mb.Spans == nil {
			continue
		}
		for seq, s := range mb.Spans.Spans() {
			all = append(all, tagged{
				sp:  ktrace.SourcedSpan{Machine: mb.Name, Span: s},
				mi:  mi,
				seq: seq,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sp.Start != all[j].sp.Start {
			return all[i].sp.Start < all[j].sp.Start
		}
		if all[i].mi != all[j].mi {
			return all[i].mi < all[j].mi
		}
		return all[i].seq < all[j].seq
	})
	out := make([]ktrace.SourcedSpan, len(all))
	for i, t := range all {
		out[i] = t.sp
	}
	return out
}

// SpanNode is one span in an assembled trace tree.
type SpanNode struct {
	ktrace.SourcedSpan
	Children []*SpanNode
}

// Trace is one assembled request tree.
type Trace struct {
	ID    ktrace.TraceID
	Roots []*SpanNode // spans with Parent == 0 (normally exactly one)
	// Orphans are spans whose parent is not in the stream: evidence of a
	// broken causal chain (a wrapped ring, a parent recorded on a machine
	// whose recorder was not merged). The chaos gate asserts none.
	Orphans []*SpanNode
	Spans   int
	Open    int // spans that never closed (End == 0)
}

// Duration is the trace's end-to-end extent in cycles: first root start
// to the latest end anywhere in the tree.
func (t *Trace) Duration() uint64 {
	if len(t.Roots) == 0 {
		return 0
	}
	var walk func(n *SpanNode) uint64
	walk = func(n *SpanNode) uint64 {
		latest := n.End
		if latest == 0 {
			latest = n.Start
		}
		for _, c := range n.Children {
			if e := walk(c); e > latest {
				latest = e
			}
		}
		return latest
	}
	var latest uint64
	for _, r := range t.Roots {
		if e := walk(r); e > latest {
			latest = e
		}
	}
	return latest - t.Roots[0].Start
}

// AssembleTraces groups a merged span stream into per-request trees.
// Deterministic: traces are ordered by first span start (then trace ID),
// children by start cycle (then machine, then span ID).
func AssembleTraces(spans []ktrace.SourcedSpan) []*Trace {
	byID := make(map[ktrace.SpanID]*SpanNode, len(spans))
	traces := map[ktrace.TraceID]*Trace{}
	var order []*Trace
	nodes := make([]*SpanNode, 0, len(spans))
	for i := range spans {
		n := &SpanNode{SourcedSpan: spans[i]}
		nodes = append(nodes, n)
		byID[n.Span.ID] = n
		tr, ok := traces[n.Span.Trace]
		if !ok {
			tr = &Trace{ID: n.Span.Trace}
			traces[n.Span.Trace] = tr
			order = append(order, tr)
		}
		tr.Spans++
		if n.End == 0 {
			tr.Open++
		}
	}
	for _, n := range nodes {
		tr := traces[n.Span.Trace]
		switch {
		case n.Parent == 0:
			tr.Roots = append(tr.Roots, n)
		default:
			p, ok := byID[n.Parent]
			if !ok || p.Span.Trace != n.Span.Trace {
				tr.Orphans = append(tr.Orphans, n)
			} else {
				p.Children = append(p.Children, n)
			}
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.Machine != b.Machine {
				return a.Machine < b.Machine
			}
			return a.Span.ID < b.Span.ID
		})
	}
	// The merged stream is start-ordered, so first-seen trace order is
	// already "by first span start"; keep it.
	return order
}

// Wait classification for a critical-path hop.
const (
	WaitNone  = ""           // the root: nothing precedes it
	WaitIn    = "handler"    // span began inside its still-running parent
	WaitQueue = "queue"      // same machine, parent finished before this began
	WaitWire  = "wire+queue" // cross-machine gap: transmission plus queueing
)

// Hop is one step of the critical path.
type Hop struct {
	Node     *SpanNode
	Wait     uint64 // cycles from the causal predecessor to this start
	WaitKind string
}

// PathBreakdown decomposes a trace's end-to-end latency along the
// critical path into where the cycles went.
type PathBreakdown struct {
	Total   uint64 // end-to-end, first root start to latest end
	Handler uint64 // cycles spent executing spans (Total minus the waits)
	Queue   uint64 // same-machine scheduling/queue gaps
	Wire    uint64 // cross-machine gaps (transmission + remote queueing)
}

// CriticalPath walks a trace from its root to the latest-ending leaf,
// the chain that bounds the request's completion time. Each hop reports
// how long the request waited between the previous span and this one,
// and what kind of wait it was.
func CriticalPath(tr *Trace) ([]Hop, PathBreakdown) {
	if len(tr.Roots) == 0 {
		return nil, PathBreakdown{}
	}
	effEnd := func(n *SpanNode) uint64 {
		latest := n.End
		if latest < n.Start {
			latest = n.Start
		}
		return latest
	}
	// latestLeafEnd memoizes nothing — trees are request-sized.
	var deepEnd func(n *SpanNode) uint64
	deepEnd = func(n *SpanNode) uint64 {
		latest := effEnd(n)
		for _, c := range n.Children {
			if e := deepEnd(c); e > latest {
				latest = e
			}
		}
		return latest
	}
	path := []Hop{{Node: tr.Roots[0], WaitKind: WaitNone}}
	cur := tr.Roots[0]
	for len(cur.Children) > 0 {
		// The child whose subtree ends last bounds completion; ties go to
		// the later starter, then deterministic order.
		best := cur.Children[0]
		bestEnd := deepEnd(best)
		for _, c := range cur.Children[1:] {
			e := deepEnd(c)
			if e > bestEnd || (e == bestEnd && c.Start > best.Start) {
				best, bestEnd = c, e
			}
		}
		hop := Hop{Node: best}
		switch {
		case best.Machine != cur.Machine:
			hop.WaitKind = WaitWire
			if cur.End != 0 && best.Start > cur.End {
				hop.Wait = best.Start - cur.End
			}
		case cur.End != 0 && cur.End <= best.Start:
			hop.WaitKind = WaitQueue
			hop.Wait = best.Start - cur.End
		default:
			hop.WaitKind = WaitIn
			if best.Start > cur.Start {
				hop.Wait = best.Start - cur.Start
			}
		}
		path = append(path, hop)
		cur = best
	}
	bd := PathBreakdown{Total: tr.Duration()}
	for _, h := range path {
		switch h.WaitKind {
		case WaitQueue:
			bd.Queue += h.Wait
		case WaitWire:
			bd.Wire += h.Wait
		}
	}
	if waits := bd.Queue + bd.Wire; bd.Total > waits {
		bd.Handler = bd.Total - waits
	}
	return path, bd
}

// RenderTrace renders one assembled trace as a text tree plus its
// critical path and latency breakdown. Deterministic: same spans, same
// bytes.
func RenderTrace(w io.Writer, tr *Trace) {
	fmt.Fprintf(w, "trace %#x  spans=%d open=%d orphans=%d total=%d cycles\n",
		uint64(tr.ID), tr.Spans, tr.Open, len(tr.Orphans), tr.Duration())
	onPath := map[*SpanNode]bool{}
	path, bd := CriticalPath(tr)
	for _, h := range path {
		onPath[h.Node] = true
	}
	var render func(n *SpanNode, depth int)
	render = func(n *SpanNode, depth int) {
		mark := " "
		if onPath[n] {
			mark = "*"
		}
		dur := "open"
		if n.End != 0 {
			dur = fmt.Sprintf("%d", n.End-n.Start)
		}
		fmt.Fprintf(w, "%s %s%s%v [%s env%d] start=%d dur=%s arg=%d\n",
			mark, strings.Repeat("  ", depth), treeBranch(depth), n.Kind, n.Machine, n.Env, n.Start, dur, n.Arg)
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	for _, r := range tr.Roots {
		render(r, 0)
	}
	for _, o := range tr.Orphans {
		fmt.Fprintf(w, "! orphan %v [%s env%d] start=%d parent=%#x\n",
			o.Kind, o.Machine, o.Env, o.Start, uint64(o.Parent))
	}
	fmt.Fprintf(w, "critical path (%d hops):\n", len(path))
	for _, h := range path {
		n := h.Node
		wait := ""
		if h.WaitKind != WaitNone && h.WaitKind != WaitIn {
			wait = fmt.Sprintf("  +%d %s", h.Wait, h.WaitKind)
		}
		fmt.Fprintf(w, "  %v [%s env%d] start=%d%s\n", n.Kind, n.Machine, n.Env, n.Start, wait)
	}
	fmt.Fprintf(w, "breakdown: total=%d handler=%d queue=%d wire=%d cycles\n",
		bd.Total, bd.Handler, bd.Queue, bd.Wire)
}

func treeBranch(depth int) string {
	if depth == 0 {
		return ""
	}
	return "└ "
}

// jsonSpan mirrors SpanNode for export.
type jsonSpan struct {
	Machine  string     `json:"machine"`
	Env      uint32     `json:"env"`
	Kind     string     `json:"kind"`
	ID       uint64     `json:"id"`
	Start    uint64     `json:"start"`
	End      uint64     `json:"end,omitempty"`
	Arg      uint64     `json:"arg,omitempty"`
	Critical bool       `json:"critical,omitempty"`
	Children []jsonSpan `json:"children,omitempty"`
}

type jsonTrace struct {
	Trace     uint64     `json:"trace"`
	Spans     int        `json:"spans"`
	Open      int        `json:"open"`
	Orphans   int        `json:"orphans"`
	Total     uint64     `json:"total_cycles"`
	Handler   uint64     `json:"handler_cycles"`
	Queue     uint64     `json:"queue_cycles"`
	Wire      uint64     `json:"wire_cycles"`
	Roots     []jsonSpan `json:"tree"`
	OrphanSet []jsonSpan `json:"orphan_spans,omitempty"`
}

// WriteTraceJSON exports one assembled trace (tree, critical-path marks,
// breakdown) as a single JSON document.
func WriteTraceJSON(w io.Writer, tr *Trace) error {
	path, bd := CriticalPath(tr)
	onPath := map[*SpanNode]bool{}
	for _, h := range path {
		onPath[h.Node] = true
	}
	var conv func(n *SpanNode) jsonSpan
	conv = func(n *SpanNode) jsonSpan {
		js := jsonSpan{
			Machine: n.Machine, Env: n.Env, Kind: n.Kind.String(),
			ID: uint64(n.Span.ID), Start: n.Start, End: n.End, Arg: n.Arg,
			Critical: onPath[n],
		}
		for _, c := range n.Children {
			js.Children = append(js.Children, conv(c))
		}
		return js
	}
	jt := jsonTrace{
		Trace: uint64(tr.ID), Spans: tr.Spans, Open: tr.Open,
		Orphans: len(tr.Orphans), Total: bd.Total,
		Handler: bd.Handler, Queue: bd.Queue, Wire: bd.Wire,
	}
	for _, r := range tr.Roots {
		jt.Roots = append(jt.Roots, conv(r))
	}
	for _, o := range tr.Orphans {
		jt.OrphanSet = append(jt.OrphanSet, conv(o))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}
