package pkt

import "encoding/binary"

// TCP header field access. Offsets are relative to the frame start (the
// TCP header begins after the Ethernet and IP headers). Only the fields
// the library TCP uses are exposed.

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPAck = 1 << 4
)

const (
	tcpSeqOff   = EtherLen + IPLen + 4
	tcpAckOff   = EtherLen + IPLen + 8
	tcpFlagsOff = EtherLen + IPLen + 13
	tcpWinOff   = EtherLen + IPLen + 14
	tcpCkOff    = EtherLen + IPLen + 16
)

// SetTCP fills the sequence, acknowledgement, flag, and window fields of a
// frame built with Build (proto TCP).
func SetTCP(frame []byte, seq, ack uint32, flags byte, window uint16) {
	binary.BigEndian.PutUint32(frame[tcpSeqOff:], seq)
	binary.BigEndian.PutUint32(frame[tcpAckOff:], ack)
	frame[tcpFlagsOff] = flags
	binary.BigEndian.PutUint16(frame[tcpWinOff:], window)
}

// TCPSeq reads the sequence number.
func TCPSeq(frame []byte) uint32 { return binary.BigEndian.Uint32(frame[tcpSeqOff:]) }

// TCPAckNum reads the acknowledgement number.
func TCPAckNum(frame []byte) uint32 { return binary.BigEndian.Uint32(frame[tcpAckOff:]) }

// TCPFlags reads the flag byte.
func TCPFlags(frame []byte) byte { return frame[tcpFlagsOff] }

// TCPWindow reads the advertised window.
func TCPWindow(frame []byte) uint16 { return binary.BigEndian.Uint16(frame[tcpWinOff:]) }

// IsTCP reports whether a frame is long enough to carry the TCP fields.
func IsTCP(frame []byte) bool {
	return len(frame) >= EtherLen+IPLen+TCPLen && frame[IPProto] == ProtoTCP
}

// TCPChecksum computes the segment checksum: an FNV-1a hash over the TCP
// header and payload (the checksum field itself taken as zero), folded to
// 16 bits. The format deviates from RFC 793's ones'-complement sum on
// purpose — the Internet checksum cannot see a 0x0000↔0xFFFF word flip,
// and this wire's fault injector flips exactly one byte, so the library
// TCP wants a code with no blind spots for that error class. Both ends
// are library code; the wire format is theirs to choose (§6.3).
//
// Coverage stops at the end of the IP datagram: the trace-context
// trailer has its own check (traceopt.go), so a corrupted trace option
// costs a span parent, never a data segment.
func TCPChecksum(frame []byte) uint16 {
	const (
		offsetBasis = 2166136261
		prime       = 16777619
	)
	end := EtherLen + int(binary.BigEndian.Uint16(frame[EtherLen+2:]))
	if end > len(frame) {
		end = len(frame)
	}
	h := uint32(offsetBasis)
	for i := EtherLen + IPLen; i < end; i++ {
		b := frame[i]
		if i == tcpCkOff || i == tcpCkOff+1 {
			b = 0
		}
		h = (h ^ uint32(b)) * prime
	}
	return uint16(h>>16) ^ uint16(h)
}

// SetTCPChecksum stamps the checksum field.
func SetTCPChecksum(frame []byte) {
	binary.BigEndian.PutUint16(frame[tcpCkOff:], TCPChecksum(frame))
}

// TCPChecksumOK verifies a received segment against its stamped checksum.
func TCPChecksumOK(frame []byte) bool {
	return binary.BigEndian.Uint16(frame[tcpCkOff:]) == TCPChecksum(frame)
}
