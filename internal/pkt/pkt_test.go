package pkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleFlow() Flow {
	return Flow{Proto: ProtoUDP, SrcIP: IP(10, 0, 0, 1), DstIP: IP(10, 0, 0, 2), SrcPort: 1234, DstPort: 80}
}

func TestBuildParseRoundTrip(t *testing.T) {
	f := sampleFlow()
	payload := []byte("hello exokernel")
	frame := Build(Addr{1}, Addr{2}, f, payload)
	got, ok := ParseFlow(frame)
	if !ok {
		t.Fatal("ParseFlow failed")
	}
	if got != f {
		t.Errorf("flow = %+v, want %+v", got, f)
	}
	if !bytes.Equal(Payload(frame), payload) {
		t.Errorf("payload = %q", Payload(frame))
	}
	if len(frame) != EtherLen+IPLen+UDPLen+len(payload)+TraceOptLen {
		t.Errorf("frame length = %d", len(frame))
	}
}

func TestBuildTCP(t *testing.T) {
	f := sampleFlow()
	f.Proto = ProtoTCP
	frame := Build(Addr{1}, Addr{2}, f, []byte("x"))
	if len(frame) != EtherLen+IPLen+TCPLen+1+TraceOptLen {
		t.Errorf("tcp frame length = %d", len(frame))
	}
	got, ok := ParseFlow(frame)
	if !ok || got.Proto != ProtoTCP || got.DstPort != 80 {
		t.Errorf("tcp parse = %+v, %v", got, ok)
	}
	if string(Payload(frame)) != "x" {
		t.Errorf("tcp payload = %q", Payload(frame))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, ok := ParseFlow(nil); ok {
		t.Error("nil frame parsed")
	}
	if _, ok := ParseFlow(make([]byte, 10)); ok {
		t.Error("short frame parsed")
	}
	// Non-IP ethertype.
	frame := Build(Addr{}, Addr{}, sampleFlow(), nil)
	frame[EtherType] = 0x08
	frame[EtherType+1] = 0x06 // ARP
	if _, ok := ParseFlow(frame); ok {
		t.Error("ARP frame parsed as IP flow")
	}
	// Unknown IP protocol.
	frame = Build(Addr{}, Addr{}, sampleFlow(), nil)
	frame[IPProto] = 99
	if _, ok := ParseFlow(frame); ok {
		t.Error("unknown protocol parsed")
	}
}

func TestReplySwapsDirection(t *testing.T) {
	f := sampleFlow()
	r := f.Reply()
	if r.SrcIP != f.DstIP || r.DstIP != f.SrcIP || r.SrcPort != f.DstPort || r.DstPort != f.SrcPort {
		t.Errorf("Reply = %+v", r)
	}
	if r.Reply() != f {
		t.Error("double Reply is not identity")
	}
}

func TestIPComposition(t *testing.T) {
	if IP(1, 2, 3, 4) != 0x01020304 {
		t.Errorf("IP = %#x", IP(1, 2, 3, 4))
	}
}

func TestChecksumPopulated(t *testing.T) {
	frame := Build(Addr{}, Addr{}, sampleFlow(), nil)
	if frame[EtherLen+10] == 0 && frame[EtherLen+11] == 0 {
		t.Error("IP checksum not populated")
	}
}

// Property: any flow round-trips through Build/ParseFlow, and payloads are
// preserved byte-for-byte.
func TestQuickRoundTrip(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcP, dstP uint16, tcp bool, payload []byte) bool {
		fl := Flow{Proto: ProtoUDP, SrcIP: srcIP, DstIP: dstIP, SrcPort: srcP, DstPort: dstP}
		if tcp {
			fl.Proto = ProtoTCP
		}
		frame := Build(Addr{9}, Addr{8}, fl, payload)
		got, ok := ParseFlow(frame)
		return ok && got == fl && bytes.Equal(Payload(frame), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
