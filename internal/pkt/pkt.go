// Package pkt builds and parses the simulated network's frame formats:
// Ethernet II, a minimal IPv4 header (no options), and UDP/TCP headers.
// The kernel never looks inside frames — only packet filters and library
// operating systems do — so this package is shared by the filter engines,
// the ExOS protocol stack, and the benchmarks.
package pkt

import "encoding/binary"

// Header sizes and offsets (bytes).
const (
	EtherLen   = 14
	IPLen      = 20
	UDPLen     = 8
	TCPLen     = 20
	EtherType  = 12 // offset of the EtherType field
	TypeIP     = 0x0800
	TypeARP    = 0x0806
	ProtoTCP   = 6
	ProtoUDP   = 17
	IPProto    = EtherLen + 9  // offset of the IP protocol byte
	IPSrc      = EtherLen + 12 // offset of the source address
	IPDst      = EtherLen + 16
	L4SrcPort  = EtherLen + IPLen
	L4DstPort  = EtherLen + IPLen + 2
	UDPPayload = EtherLen + IPLen + UDPLen
)

// Addr is a 6-byte link-layer address.
type Addr [6]byte

// Flow names one UDP/TCP flow endpoint pair.
type Flow struct {
	Proto            byte // ProtoUDP or ProtoTCP
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// Build composes a frame for the flow carrying payload. dst/src are the
// link-layer addresses. Every frame ends with a zeroed trace-context
// trailer (TraceOptLen bytes past the IP datagram; see traceopt.go) so
// frame length never depends on whether a trace is active.
func Build(dst, src Addr, f Flow, payload []byte) []byte {
	hlen := EtherLen + IPLen + UDPLen
	if f.Proto == ProtoTCP {
		hlen = EtherLen + IPLen + TCPLen
	}
	b := make([]byte, hlen+len(payload)+TraceOptLen)
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[EtherType:], TypeIP)

	ip := b[EtherLen:]
	ip[0] = 0x45 // v4, 5-word header
	binary.BigEndian.PutUint16(ip[2:], uint16(hlen-EtherLen+len(payload)))
	ip[8] = 64 // TTL
	ip[9] = f.Proto
	binary.BigEndian.PutUint32(ip[12:], f.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], f.DstIP)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:IPLen]))

	l4 := b[EtherLen+IPLen:]
	binary.BigEndian.PutUint16(l4[0:], f.SrcPort)
	binary.BigEndian.PutUint16(l4[2:], f.DstPort)
	if f.Proto == ProtoUDP {
		binary.BigEndian.PutUint16(l4[4:], uint16(UDPLen+len(payload)))
		copy(l4[UDPLen:], payload)
	} else {
		l4[12] = 5 << 4 // data offset
		copy(l4[TCPLen:], payload)
	}
	return b
}

// Payload returns the transport payload of a frame built by Build. The
// payload ends where the IP datagram does — the trace-context trailer
// (and anything else past the datagram) is not payload.
func Payload(frame []byte) []byte {
	if len(frame) < EtherLen+IPLen {
		return nil
	}
	off := EtherLen + IPLen + UDPLen
	if frame[IPProto] == ProtoTCP {
		off = EtherLen + IPLen + TCPLen
	}
	end := EtherLen + int(binary.BigEndian.Uint16(frame[EtherLen+2:]))
	if end > len(frame) {
		end = len(frame)
	}
	if end < off {
		return nil
	}
	return frame[off:end]
}

// ParseFlow extracts the flow identifiers of a frame (zero Flow if the
// frame is not IP/UDP/TCP).
func ParseFlow(frame []byte) (Flow, bool) {
	if len(frame) < EtherLen+IPLen || binary.BigEndian.Uint16(frame[EtherType:]) != TypeIP {
		return Flow{}, false
	}
	f := Flow{
		Proto: frame[IPProto],
		SrcIP: binary.BigEndian.Uint32(frame[IPSrc:]),
		DstIP: binary.BigEndian.Uint32(frame[IPDst:]),
	}
	if f.Proto != ProtoUDP && f.Proto != ProtoTCP {
		return Flow{}, false
	}
	min := EtherLen + IPLen + UDPLen
	if f.Proto == ProtoTCP {
		min = EtherLen + IPLen + TCPLen
	}
	if len(frame) < min {
		return Flow{}, false
	}
	f.SrcPort = binary.BigEndian.Uint16(frame[L4SrcPort:])
	f.DstPort = binary.BigEndian.Uint16(frame[L4DstPort:])
	return f, true
}

// Reply swaps the direction of a flow.
func (f Flow) Reply() Flow {
	return Flow{Proto: f.Proto, SrcIP: f.DstIP, DstIP: f.SrcIP, SrcPort: f.DstPort, DstPort: f.SrcPort}
}

// IP composes a dotted-quad address.
func IP(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		if i == 10 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(h[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
