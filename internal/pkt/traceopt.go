package pkt

import "encoding/binary"

// Trace-context option: a fixed 24-byte trailer carried after the
// transport payload of every frame Build composes. It carries the causal
// identity of the request the packet belongs to (ktrace span context), so
// a receiver can parent its delivery span under the sender's — the one
// piece of metadata that turns two machines' traces into one tree.
//
// Two deliberate properties:
//
//   - The trailer is ALWAYS present, zeroed when no trace is active.
//     Frame length — and therefore every per-word DMA/copy charge and
//     every fault-injector corruption offset — never depends on whether
//     span collection is enabled. That is what makes "tracing is free"
//     a cycle-identity statement rather than an approximation.
//
//   - The trailer sits OUTSIDE the IP datagram (located at
//     EtherLen + IP total length) and carries its own 16-bit check. The
//     transport checksum does not cover it, so a fault that corrupts the
//     trace context can never drop a data segment; the receiver just
//     sees an invalid option and starts a fresh root span. Degraded
//     observability, intact data.
const (
	// TraceOptLen is the trailer size in bytes:
	// magic(2) "XT" | version(1) | reserved(1) | trace ID(8) | span ID(8)
	// | check(2) | pad(2).
	TraceOptLen = 24

	traceOptMagic0 = 'X'
	traceOptMagic1 = 'T'
	traceOptVer    = 1
)

// traceOptOff locates the trailer: just past the IP datagram. Returns -1
// if the frame is not IP-shaped or too short to hold one.
func traceOptOff(frame []byte) int {
	if len(frame) < EtherLen+IPLen || binary.BigEndian.Uint16(frame[EtherType:]) != TypeIP {
		return -1
	}
	off := EtherLen + int(binary.BigEndian.Uint16(frame[EtherLen+2:]))
	if off+TraceOptLen > len(frame) {
		return -1
	}
	return off
}

// traceOptCheck folds FNV-1a over the identity bytes of a trailer.
func traceOptCheck(opt []byte) uint16 {
	const (
		offsetBasis = 2166136261
		prime       = 16777619
	)
	h := uint32(offsetBasis)
	for i := 0; i < 20; i++ {
		h = (h ^ uint32(opt[i])) * prime
	}
	return uint16(h>>16) ^ uint16(h)
}

// StampTraceOpt writes trace/span identifiers into a frame's trailer.
// Zero identifiers clear the trailer back to "no trace". No-op on frames
// without room for the option.
func StampTraceOpt(frame []byte, trace, span uint64) {
	off := traceOptOff(frame)
	if off < 0 {
		return
	}
	opt := frame[off : off+TraceOptLen]
	if trace == 0 || span == 0 {
		for i := range opt {
			opt[i] = 0
		}
		return
	}
	opt[0], opt[1], opt[2], opt[3] = traceOptMagic0, traceOptMagic1, traceOptVer, 0
	binary.BigEndian.PutUint64(opt[4:], trace)
	binary.BigEndian.PutUint64(opt[12:], span)
	binary.BigEndian.PutUint16(opt[20:], traceOptCheck(opt))
	opt[22], opt[23] = 0, 0
}

// TraceOpt reads a frame's trace-context trailer. ok is false — and the
// identifiers zero — when the trailer is absent, never stamped, or fails
// its own check (e.g. the fault injector flipped a byte in it): the
// receiver then treats the packet as the start of a new trace.
func TraceOpt(frame []byte) (trace, span uint64, ok bool) {
	off := traceOptOff(frame)
	if off < 0 {
		return 0, 0, false
	}
	opt := frame[off : off+TraceOptLen]
	if opt[0] != traceOptMagic0 || opt[1] != traceOptMagic1 || opt[2] != traceOptVer {
		return 0, 0, false
	}
	if binary.BigEndian.Uint16(opt[20:]) != traceOptCheck(opt) {
		return 0, 0, false
	}
	trace = binary.BigEndian.Uint64(opt[4:])
	span = binary.BigEndian.Uint64(opt[12:])
	if trace == 0 || span == 0 {
		return 0, 0, false
	}
	return trace, span, true
}
