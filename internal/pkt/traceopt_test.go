package pkt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTraceOptAbsentByDefault(t *testing.T) {
	frame := Build(Addr{1}, Addr{2}, sampleFlow(), []byte("payload"))
	if _, _, ok := TraceOpt(frame); ok {
		t.Error("fresh frame claims a trace context")
	}
}

func TestTraceOptStampParse(t *testing.T) {
	for _, proto := range []byte{ProtoUDP, ProtoTCP} {
		f := sampleFlow()
		f.Proto = proto
		payload := []byte("some bytes here")
		frame := Build(Addr{1}, Addr{2}, f, payload)
		StampTraceOpt(frame, 0xDEAD, 0xBEEF)
		tr, sp, ok := TraceOpt(frame)
		if !ok || tr != 0xDEAD || sp != 0xBEEF {
			t.Fatalf("proto %d: TraceOpt = %#x %#x %v", proto, tr, sp, ok)
		}
		// The option never leaks into the payload view.
		if !bytes.Equal(Payload(frame), payload) {
			t.Errorf("proto %d: payload = %q", proto, Payload(frame))
		}
		// Clearing restores "no trace".
		StampTraceOpt(frame, 0, 0)
		if _, _, ok := TraceOpt(frame); ok {
			t.Errorf("proto %d: cleared frame still parses", proto)
		}
	}
}

func TestTraceOptOutsideTCPChecksum(t *testing.T) {
	f := sampleFlow()
	f.Proto = ProtoTCP
	frame := Build(Addr{1}, Addr{2}, f, []byte("data"))
	SetTCP(frame, 100, 200, TCPAck, 4096)
	SetTCPChecksum(frame)
	if !TCPChecksumOK(frame) {
		t.Fatal("checksum fails on clean frame")
	}
	// Stamping the trace option must not disturb the transport checksum …
	StampTraceOpt(frame, 7, 9)
	if !TCPChecksumOK(frame) {
		t.Error("stamping trace option broke TCP checksum")
	}
	// … and corrupting the option must break the option, not the segment.
	frame[len(frame)-10] ^= 0x40
	if !TCPChecksumOK(frame) {
		t.Error("trace-option corruption dropped the segment")
	}
	if _, _, ok := TraceOpt(frame); ok {
		t.Error("corrupted option still parses")
	}
}

// Property: a single corrupted byte anywhere in the trailer never yields
// a valid option with different identifiers — it parses as the original
// or not at all. (Fixed rand source: the 16-bit check admits rare
// collisions in principle, so the test pins one known-good sample set.)
func TestQuickTraceOptCorruption(t *testing.T) {
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(42)), MaxCount: 2000}
	f := func(trace, span uint64, off uint16, xor byte) bool {
		frame := Build(Addr{3}, Addr{4}, sampleFlow(), []byte("q"))
		StampTraceOpt(frame, trace, span)
		pos := len(frame) - TraceOptLen + int(off)%TraceOptLen
		frame[pos] ^= xor
		tr, sp, ok := TraceOpt(frame)
		if !ok {
			return true
		}
		wantOK := trace != 0 && span != 0
		return wantOK && tr == trace && sp == span
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
