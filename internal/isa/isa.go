// Package isa defines the instruction set of the simulated RISC machine: a
// small MIPS-flavored, 32-register ISA. It exists so that *untrusted code
// can be represented as data*: application exception handlers, downloaded
// application-specific handlers (ASHs), and example programs are sequences
// of these instructions, executed by internal/vm and vetted by
// internal/sandbox before the kernel will run them.
package isa

import "fmt"

// Op is an opcode.
type Op uint8

// Opcodes. Arithmetic follows MIPS conventions: ADD/ADDI trap on signed
// overflow (the source of the paper's "overflow" exception benchmark);
// the -U forms wrap.
const (
	NOP Op = iota

	// Three-register ALU: rd = rs op rt.
	ADD  // trapping add
	ADDU // wrapping add
	SUB
	MUL
	DIV // signed divide; divide-by-zero raises Break
	REM
	AND
	OR
	XOR
	NOR
	SLT  // rd = (rs < rt) signed
	SLTU // rd = (rs < rt) unsigned

	// Immediate ALU: rd = rs op imm.
	ADDI  // trapping add immediate
	ADDIU // wrapping add immediate
	ANDI
	ORI
	XORI
	SLTI
	LUI // rd = imm << 16
	SLL // rd = rs << imm
	SRL // rd = rs >> imm (logical)
	SRA // rd = rs >> imm (arithmetic)

	// Memory: address = rs + imm. Word/half accesses must be aligned or
	// they raise the address-error exception ("unalign" in Table 5).
	LW
	LH
	LHU
	LB
	LBU
	SW
	SH
	SB

	// Control. Branch/jump targets are absolute instruction indexes
	// resolved by the assembler. Branches compare rs (and rt for BEQ/BNE).
	BEQ
	BNE
	BLEZ
	BGTZ
	BLTZ
	BGEZ
	J
	JAL // r31 = return address
	JR
	JALR

	// System.
	SYSCALL // raises the syscall exception; code in v0, args in a0-a3
	BREAK   // raises the breakpoint exception
	COP1    // floating-point placeholder; raises "coprocessor unusable" when the FPU is disabled
	HALT    // stops the interpreter (end of a standalone program or handler)

	// Privileged (kernel mode only; user-mode use raises ExcPriv).
	TLBWR // write TLB entry: a0=vpn|asid<<24, a1=pfn|perms<<28
	RFE   // return from exception: resume at EPC with prior mode

	// ASH message primitives, valid only inside a verified ASH running in
	// the kernel's message context (anywhere else they raise ExcPriv).
	// They implement "direct, dynamic message vectoring": the handler
	// reads the incoming message and builds/sends replies itself.
	PKTLW // rd = word at packet[rs+imm]
	PKTLB // rd = byte at packet[rs+imm]
	PKTLEN
	XMIT // transmit sandbox bytes [rs, rs+rt) as a frame

	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", ADDU: "addu", SUB: "sub", MUL: "mul", DIV: "div",
	REM: "rem", AND: "and", OR: "or", XOR: "xor", NOR: "nor", SLT: "slt",
	SLTU: "sltu", ADDI: "addi", ADDIU: "addiu", ANDI: "andi", ORI: "ori",
	XORI: "xori", SLTI: "slti", LUI: "lui", SLL: "sll", SRL: "srl", SRA: "sra",
	LW: "lw", LH: "lh", LHU: "lhu", LB: "lb", LBU: "lbu", SW: "sw", SH: "sh",
	SB: "sb", BEQ: "beq", BNE: "bne", BLEZ: "blez", BGTZ: "bgtz", BLTZ: "bltz",
	BGEZ: "bgez", J: "j", JAL: "jal", JR: "jr", JALR: "jalr",
	SYSCALL: "syscall", BREAK: "break", COP1: "cop1", HALT: "halt",
	TLBWR: "tlbwr", RFE: "rfe", PKTLW: "pktlw", PKTLB: "pktlb",
	PKTLEN: "pktlen", XMIT: "xmit",
}

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < numOps }

// Inst is one decoded instruction. The simulator stores code as []Inst
// (a Harvard-style instruction store); the register fields follow the
// usual rd/rs/rt roles and Imm carries immediates and resolved targets.
type Inst struct {
	Op     Op
	Rd     uint8
	Rs, Rt uint8
	Imm    int32
}

// Code is an instruction segment. The program counter is an index into it.
type Code []Inst

func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT, RFE, SYSCALL, BREAK, COP1:
		return i.Op.String()
	case ADD, ADDU, SUB, MUL, DIV, REM, AND, OR, XOR, NOR, SLT, SLTU:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	case ADDI, ADDIU, ANDI, ORI, XORI, SLTI, SLL, SRL, SRA:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case LUI:
		return fmt.Sprintf("lui r%d, %d", i.Rd, i.Imm)
	case LW, LH, LHU, LB, LBU, PKTLW, PKTLB:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs)
	case SW, SH, SB:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rt, i.Imm, i.Rs)
	case BEQ, BNE:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs, i.Rt, i.Imm)
	case BLEZ, BGTZ, BLTZ, BGEZ:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rs, i.Imm)
	case J, JAL:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case JR:
		return fmt.Sprintf("jr r%d", i.Rs)
	case JALR:
		return fmt.Sprintf("jalr r%d, r%d", i.Rd, i.Rs)
	case PKTLEN:
		return fmt.Sprintf("pktlen r%d", i.Rd)
	case XMIT:
		return fmt.Sprintf("xmit r%d, r%d", i.Rs, i.Rt)
	default:
		return i.Op.String()
	}
}

// Disassemble renders a code segment with instruction indexes.
func Disassemble(code Code) string {
	out := ""
	for pc, in := range code {
		out += fmt.Sprintf("%4d: %s\n", pc, in)
	}
	return out
}
